// Districtheating: a city-scale, year-long run mixing per-room digital
// heaters with building-level digital boilers (§II-B2), showing the
// seasonal capacity law of §III-C and the §IV pricing consequence: the
// fleet's available compute follows the heat demand, boilers flatten the
// curve, and the spot price moves inversely with capacity.
//
//	go run ./examples/districtheating
package main

import (
	"fmt"

	"df3/internal/city"
	"df3/internal/pricing"
	"df3/internal/sim"
)

func main() {
	cfg := city.DefaultConfig()
	cfg.Calendar = sim.JanuaryStart
	cfg.Buildings = 4
	cfg.RoomsPerBuilding = 6
	cfg.BoilerBuildings = 2 // half the city heats from digital boilers
	cfg.ControlPeriod = 300
	cfg.HeatingSeasonFirst = 10
	cfg.HeatingSeasonLast = 4

	c := city.Build(cfg)
	stop := c.SaturateDCC(1800, 128) // customers queue all year
	defer stop()

	fmt.Println("=== district heating: heaters + boilers over one year ===")
	c.Run(sim.Year)

	monthOf := func(t float64) int { return cfg.Calendar.MonthOfYear(t) }
	months, caps := c.CapacitySeries.Bucket(monthOf)
	_, heaterCaps := c.HeaterCapacity.Bucket(monthOf)
	_, boilerCaps := c.BoilerCapacity.Bucket(monthOf)
	_, temps := c.OutdoorSeries.Bucket(monthOf)
	curve := pricing.DefaultSpotCurve()
	max := c.Fleet.MaxCapacity()

	fmt.Println("\nmonth  heaters  boilers  total  avail  spot €/core-h  outdoor °C")
	for i, m := range months {
		avail := caps[i] / max
		fmt.Printf("%5d  %7.1f  %7.1f  %5.1f  %5.2f  %13.4f  %10.1f\n",
			m, heaterCaps[i], boilerCaps[i], caps[i], avail, curve.Price(avail), temps[i])
	}
	fmt.Println("\nheater capacity follows the heat demand (§III-C); the boilers'")
	fmt.Println("water buffer and year-round hot-water draw flatten their curve.")

	it, _, heat := c.Fleet.Energy(c.Engine.Now())
	fmt.Printf("\nyear total: %.0f kWh compute, %.0f kWh delivered heat, %.0f kWh boiler waste\n",
		it.KWh(), heat.KWh(), c.WastedBoilerHeat().KWh())
	fmt.Printf("dcc output: %.0f core-hours across the year\n", c.MW.DCC.WorkDone/3600)

	inBand := 0.0
	for _, r := range c.Rooms() {
		inBand += r.Comfort.InBandFraction()
	}
	fmt.Printf("comfort: %.0f%% of occupied time in band across %d rooms\n",
		100*inBand/float64(len(c.Rooms())), len(c.Rooms()))
}
