// Finance: the paper's bank customers (§II-A — "this platform is used by
// major banks and financial services in France"). Every weekday at 19:00 a
// Monte-Carlo risk batch of several thousand scenario evaluations lands on
// the city; it must finish before markets open at 07:00. The example runs
// two weeks of nightly batches alongside the usual edge traffic and prints
// the deadline scorecard plus what the night shift did for the buildings'
// heating bill.
//
//	go run ./examples/finance
package main

import (
	"fmt"

	"df3/internal/city"
	"df3/internal/sim"
)

func main() {
	cfg := city.DefaultConfig()
	cfg.Buildings = 4
	cfg.RoomsPerBuilding = 6

	c := city.Build(cfg)
	horizon := 14 * sim.Day
	outcome := c.StartFinanceTraffic(horizon)
	c.StartEdgeTraffic(horizon, 1) // the building keeps its day job
	c.Run(horizon + 12*sim.Hour)   // drain past the last 07:00 deadline

	fmt.Println("=== overnight risk batches on the district fleet ===")
	fmt.Printf("batches: %d submitted, %d on time, %d late\n",
		outcome.Submitted, outcome.OnTime, outcome.Late)
	fmt.Printf("tasks: %d scenario evaluations, %.0f core-hours total\n",
		c.MW.DCC.TasksDone.Value(), c.MW.DCC.WorkDone/3600)
	fmt.Printf("edge kept its deadlines too: %d served, miss rate %.2f%%\n",
		c.MW.Edge.Served.Value(), 100*c.MW.Edge.MissRate())

	it, _, heat := c.Fleet.Energy(c.Engine.Now())
	fmt.Printf("energy: %.0f kWh consumed, %.0f kWh became heating (%.0f%%)\n",
		it.KWh(), heat.KWh(), 100*float64(heat)/float64(it))
	resistor := c.ResistorEnergy().KWh()
	fmt.Printf("the backup resistor still supplied %.0f kWh of heating —\n", resistor)
	fmt.Println("ten nightly batches barely warm four buildings; the operator has")
	fmt.Println("room to sell far more night compute (exactly the §II-C supply/demand")
	fmt.Println("gap the middleware is meant to arbitrage).")
}
