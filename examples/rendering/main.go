// Rendering: a scaled replay of the Qarnot render platform's 2016 load —
// 600 000 images for 11 000 000 CPU-hours (§III) — on a winter city of
// digital heaters. Every frame computed is heat delivered to someone's
// living room; the example prints the campaign's progress and the heat
// ledger.
//
//	go run ./examples/rendering
package main

import (
	"fmt"

	"df3/internal/city"
	"df3/internal/rng"
	"df3/internal/sim"
	"df3/internal/workload"
)

func main() {
	const scale = 4000 // 1/4000 of the real campaign: 150 frames

	cfg := city.DefaultConfig()
	cfg.Buildings = 6
	cfg.RoomsPerBuilding = 8
	cfg.ControlPeriod = 300
	c := city.Build(cfg)

	job := workload.RenderCampaign(rng.New(1), scale)
	fmt.Printf("=== render campaign: %d frames, %.0f CPU-hours (1/%d of 2016) ===\n",
		len(job.TaskWork), job.TotalWork()/3600, scale)
	fmt.Printf("fleet: %d buildings × %d Q.rads = %.0f cores max\n",
		cfg.Buildings, cfg.RoomsPerBuilding, c.Fleet.MaxCapacity())

	c.SubmitCampaign(job)

	frames := int64(len(job.TaskWork))
	for day := 1; day <= 60; day++ {
		c.Run(sim.Time(day) * sim.Day)
		done := c.MW.DCC.TasksDone.Value()
		_, _, heat := c.Fleet.Energy(c.Engine.Now())
		fmt.Printf("day %2d: %3d/%d frames, fleet at %4.1f/%2.0f cores, %6.0f kWh heat delivered\n",
			day, done, frames, c.Fleet.Capacity(), c.Fleet.MaxCapacity(), heat.KWh())
		if done >= frames {
			break
		}
	}

	d := &c.MW.DCC
	it, _, heat := c.Fleet.Energy(c.Engine.Now())
	fmt.Printf("\ncampaign complete: %d frames in %.1f days\n",
		d.TasksDone.Value(), c.Engine.Now()/sim.Day)
	fmt.Printf("energy: %.0f kWh of compute became %.0f kWh of building heat (%.0f%%)\n",
		it.KWh(), heat.KWh(), 100*float64(heat)/float64(it))
	inBand := 0.0
	for _, r := range c.Rooms() {
		inBand += r.Comfort.InBandFraction()
	}
	fmt.Printf("hosts stayed comfortable %.0f%% of occupied time while the farm ran\n",
		100*inBand/float64(len(c.Rooms())))
}
