// Smartbuilding: the audio alarm-detection scenario of the paper's
// reference [11] — an office building whose Q.rads run near-real-time
// sound-classification inferences from in-room sensors, alongside periodic
// sense-compute-actuate loops, while the same machines render for cloud
// customers. Compares the direct (in-room) and indirect (gateway) request
// paths and shows the preemption machinery protecting deadlines.
//
//	go run ./examples/smartbuilding
package main

import (
	"fmt"

	"df3/internal/city"
	"df3/internal/offload"
	"df3/internal/sim"
)

func main() {
	cfg := city.DefaultConfig()
	cfg.Buildings = 2
	cfg.RoomsPerBuilding = 10
	cfg.Offices = true
	cfg.ComfortSetpoint = 20
	cfg.Middleware.Offload = offload.PreemptPolicy{}

	horizon := 3 * sim.Day

	fmt.Println("=== smart office building: alarm detection on DF heaters ===")

	run := func(direct bool) {
		c := city.Build(cfg)
		// Keep the fleet busy with cloud rendering: edge requests must
		// carve their slots out of a loaded platform.
		stop := c.SaturateDCC(1800, 64)
		defer stop()
		if direct {
			c.StartDirectEdgeTraffic(horizon, 1.5)
		} else {
			c.StartEdgeTraffic(horizon, 1.5)
		}
		c.Run(horizon + sim.Hour)
		e := &c.MW.Edge
		mode := "indirect (via edge gateway)"
		if direct {
			mode = "direct (in-room server)  "
		}
		fmt.Printf("%s: %6d served, median %5.1f ms, p99 %5.1f ms, miss %.2f%%, %d preemptions, %d fallbacks\n",
			mode, e.Served.Value(), e.Latency.Median()*1000, e.Latency.P99()*1000,
			100*e.MissRate(), e.Preemptions.Value(), e.DirectFallbacks.Value())
	}
	run(false)
	run(true)

	// A separate sense-compute-actuate pass: HVAC-style 10 ms inferences
	// every 30 s from every room (§III-B's sense-compute-actuate loops).
	{
		c := city.Build(cfg)
		stop := c.SaturateDCC(1800, 64)
		defer stop()
		c.StartSenseLoops(sim.Day, 30)
		c.Run(sim.Day + sim.Hour)
		e := &c.MW.Edge
		fmt.Printf("sense-compute-actuate loops : %6d served, median %5.1f ms, miss %.2f%%\n",
			e.Served.Value(), e.Latency.Median()*1000, 100*e.MissRate())
	}

	fmt.Println("\nboth alarm paths meet the 500 ms deadline. On this saturated fleet")
	fmt.Println("nearly every direct request finds its in-room server full and falls")
	fmt.Println("back to the gateway, which preempts cloud work for it — the §II-C")
	fmt.Println("direct-path latency win only exists on an unloaded platform (see E8);")
	fmt.Println("what the middleware actually buys you is the preemption machinery.")
}
