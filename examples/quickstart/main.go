// Quickstart: the smallest complete DF3 scenario — one building whose
// rooms are heated by Q.rads, serving all three flows for one simulated
// day. Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"df3/internal/city"
	"df3/internal/sim"
)

func main() {
	cfg := city.DefaultConfig()
	cfg.Buildings = 1
	cfg.RoomsPerBuilding = 4

	c := city.Build(cfg)

	// Flow 1 (heating) runs by itself: every room has a thermostat loop.
	// Flow 2 (Internet/DCC): a render-farm style job stream.
	c.StartDCCTraffic(sim.Day, 1.0)
	// Flow 3 (local edge): alarm-detection inference requests.
	c.StartEdgeTraffic(sim.Day, 1.0)

	c.Run(sim.Day + sim.Hour)

	fmt.Println("=== quickstart: one building, one day, three flows ===")
	for _, r := range c.Rooms() {
		fmt.Printf("room %d: %.1f°C, comfortable %.0f%% of occupied time\n",
			r.Index, float64(r.Zone.Temp), 100*r.Comfort.InBandFraction())
	}

	e := &c.MW.Edge
	fmt.Printf("edge: served %d requests, median %.0f ms, p99 %.0f ms, miss rate %.1f%%\n",
		e.Served.Value(), e.Latency.Median()*1000, e.Latency.P99()*1000, 100*e.MissRate())

	d := &c.MW.DCC
	fmt.Printf("dcc: %d jobs (%d tasks, %.0f core-hours) at mean stretch %.1f\n",
		d.JobsDone.Value(), d.TasksDone.Value(), d.WorkDone/3600, d.JobStretch.Mean())

	it, _, heat := c.Fleet.Energy(c.Engine.Now())
	fmt.Printf("energy: %.1f kWh consumed, %.1f kWh delivered as room heat (PUE %.3f)\n",
		it.KWh(), heat.KWh(), c.Fleet.PUE(c.Engine.Now()))
}
