// Package df3 is a full reimplementation of the DF3 model from "How Future
// Buildings Could Redefine Distributed Computing" (Ngoko, Sainthérant,
// Cérin, Trystram — IPDPS Workshops 2018): one platform serving district
// heating, distributed cloud computing and edge computing from the same
// fleet of data-furnace servers.
//
// The library is organised as a deterministic discrete-event simulator
// (internal/sim) under physical substrates (thermal, weather, power,
// server, network), the DF3 middleware itself (internal/core), the
// scenario layer (internal/city), comparators (internal/baseline) and the
// experiment harness (internal/experiments). See DESIGN.md for the system
// inventory and the per-experiment index, EXPERIMENTS.md for measured
// results, and README.md for a tour.
//
// Entry points:
//
//	cmd/df3sim    — run one city scenario from flags
//	cmd/df3bench  — regenerate every figure/claim of the paper
//	examples/     — four runnable walkthroughs
//	bench_test.go — testing.B benchmarks, one per experiment
package df3
