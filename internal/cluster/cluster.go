// Package cluster forms clusters of DF servers for the DF3 gateways.
//
// §III-B of the paper: "To decide on the components of clusters, we can
// either use clustering techniques developed in wireless sensor networks or
// define clusters as the set of DF servers of a physical building or
// district." This package implements both: the trivial per-building
// grouping, a geographic grid (districts), and Lloyd's k-means on server
// coordinates as the WSN-style technique.
package cluster

import (
	"math"
	"sort"

	"df3/internal/rng"
)

// Point is a position in the city plane, in meters.
type Point struct{ X, Y float64 }

// Dist returns the Euclidean distance between two points.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Site is one DF server location.
type Site struct {
	// ID indexes the site in the scenario's server list.
	ID int
	// Pos is the site position.
	Pos Point
	// Building identifies the building hosting the site.
	Building int
}

// Assignment maps each cluster to the IDs of its member sites. Clusters
// and members are emitted in deterministic (sorted) order.
type Assignment [][]int

// Sizes returns the member count of each cluster.
func (a Assignment) Sizes() []int {
	s := make([]int, len(a))
	for i, c := range a {
		s[i] = len(c)
	}
	return s
}

// PerBuilding groups sites by their building — the paper's simplest option.
func PerBuilding(sites []Site) Assignment {
	byB := map[int][]int{}
	for _, s := range sites {
		byB[s.Building] = append(byB[s.Building], s.ID)
	}
	keys := make([]int, 0, len(byB))
	for k := range byB {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make(Assignment, 0, len(keys))
	for _, k := range keys {
		members := byB[k]
		sort.Ints(members)
		out = append(out, members)
	}
	return out
}

// Grid groups sites into square districts of the given cell size.
func Grid(sites []Site, cell float64) Assignment {
	if cell <= 0 {
		panic("cluster: non-positive grid cell")
	}
	type key struct{ cx, cy int }
	byCell := map[key][]int{}
	for _, s := range sites {
		k := key{int(math.Floor(s.Pos.X / cell)), int(math.Floor(s.Pos.Y / cell))}
		byCell[k] = append(byCell[k], s.ID)
	}
	keys := make([]key, 0, len(byCell))
	for k := range byCell {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].cx != keys[j].cx {
			return keys[i].cx < keys[j].cx
		}
		return keys[i].cy < keys[j].cy
	})
	out := make(Assignment, 0, len(keys))
	for _, k := range keys {
		members := byCell[k]
		sort.Ints(members)
		out = append(out, members)
	}
	return out
}

// KMeans clusters sites into k groups with Lloyd's algorithm, seeded by
// k-means++ style farthest-point initialisation on the given stream. Empty
// clusters are dropped from the result.
func KMeans(sites []Site, k int, stream *rng.Stream, iters int) Assignment {
	if k <= 0 {
		panic("cluster: k must be positive")
	}
	if len(sites) == 0 {
		return nil
	}
	if k > len(sites) {
		k = len(sites)
	}
	// Farthest-point init: pick a random first centre, then repeatedly the
	// site farthest from every chosen centre.
	centres := make([]Point, 0, k)
	centres = append(centres, sites[stream.Intn(len(sites))].Pos)
	for len(centres) < k {
		bestD, bestI := -1.0, 0
		for i, s := range sites {
			d := math.Inf(1)
			for _, c := range centres {
				if dd := s.Pos.Dist(c); dd < d {
					d = dd
				}
			}
			if d > bestD {
				bestD, bestI = d, i
			}
		}
		centres = append(centres, sites[bestI].Pos)
	}

	assign := make([]int, len(sites))
	for it := 0; it < iters; it++ {
		changed := false
		for i, s := range sites {
			best, bestD := 0, math.Inf(1)
			for c, ctr := range centres {
				if d := s.Pos.Dist(ctr); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Recompute centres.
		var sx, sy = make([]float64, k), make([]float64, k)
		var n = make([]int, k)
		for i, s := range sites {
			c := assign[i]
			sx[c] += s.Pos.X
			sy[c] += s.Pos.Y
			n[c]++
		}
		for c := 0; c < k; c++ {
			if n[c] > 0 {
				centres[c] = Point{sx[c] / float64(n[c]), sy[c] / float64(n[c])}
			}
		}
		if !changed {
			break
		}
	}

	groups := make(Assignment, k)
	for i, s := range sites {
		groups[assign[i]] = append(groups[assign[i]], s.ID)
	}
	out := make(Assignment, 0, k)
	for _, g := range groups {
		if len(g) > 0 {
			sort.Ints(g)
			out = append(out, g)
		}
	}
	return out
}

// MeanIntraDistance returns the average distance from each site to the
// centroid of its cluster — lower is tighter clustering, which translates
// into shorter gateway-to-worker network paths.
func MeanIntraDistance(sites []Site, a Assignment) float64 {
	pos := map[int]Point{}
	for _, s := range sites {
		pos[s.ID] = s.Pos
	}
	total, n := 0.0, 0
	for _, members := range a {
		if len(members) == 0 {
			continue
		}
		var cx, cy float64
		for _, id := range members {
			cx += pos[id].X
			cy += pos[id].Y
		}
		c := Point{cx / float64(len(members)), cy / float64(len(members))}
		for _, id := range members {
			total += pos[id].Dist(c)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// SizeImbalance returns max/mean cluster size — 1 is perfectly balanced.
func SizeImbalance(a Assignment) float64 {
	if len(a) == 0 {
		return 0
	}
	maxS, sum := 0, 0
	for _, c := range a {
		if len(c) > maxS {
			maxS = len(c)
		}
		sum += len(c)
	}
	mean := float64(sum) / float64(len(a))
	if mean == 0 {
		return 0
	}
	return float64(maxS) / mean
}
