package cluster

import (
	"testing"
	"testing/quick"

	"df3/internal/rng"
)

func square(n int, spread float64, stream *rng.Stream) []Site {
	sites := make([]Site, n)
	for i := range sites {
		sites[i] = Site{
			ID:       i,
			Pos:      Point{stream.Float64() * spread, stream.Float64() * spread},
			Building: i / 4,
		}
	}
	return sites
}

func covers(t *testing.T, a Assignment, n int) {
	t.Helper()
	seen := map[int]bool{}
	for _, c := range a {
		for _, id := range c {
			if seen[id] {
				t.Fatalf("site %d in two clusters", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != n {
		t.Fatalf("assignment covers %d of %d sites", len(seen), n)
	}
}

func TestPerBuilding(t *testing.T) {
	sites := square(20, 100, rng.New(1))
	a := PerBuilding(sites)
	covers(t, a, 20)
	if len(a) != 5 {
		t.Errorf("%d clusters, want 5 buildings", len(a))
	}
	for _, c := range a {
		if len(c) != 4 {
			t.Errorf("building cluster size %d, want 4", len(c))
		}
		b := sites[c[0]].Building
		for _, id := range c {
			if sites[id].Building != b {
				t.Error("cluster mixes buildings")
			}
		}
	}
}

func TestGrid(t *testing.T) {
	sites := []Site{
		{ID: 0, Pos: Point{10, 10}},
		{ID: 1, Pos: Point{20, 20}},
		{ID: 2, Pos: Point{110, 10}},
		{ID: 3, Pos: Point{110, 120}},
	}
	a := Grid(sites, 100)
	covers(t, a, 4)
	if len(a) != 3 {
		t.Errorf("%d grid cells, want 3", len(a))
	}
}

func TestGridPanicsOnBadCell(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for zero cell")
		}
	}()
	Grid(nil, 0)
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	s := rng.New(3)
	var sites []Site
	for i := 0; i < 30; i++ { // blob A around (0,0)
		sites = append(sites, Site{ID: i, Pos: Point{s.Normal(0, 5), s.Normal(0, 5)}})
	}
	for i := 30; i < 60; i++ { // blob B around (1000,1000)
		sites = append(sites, Site{ID: i, Pos: Point{s.Normal(1000, 5), s.Normal(1000, 5)}})
	}
	a := KMeans(sites, 2, rng.New(4), 50)
	covers(t, a, 60)
	if len(a) != 2 {
		t.Fatalf("%d clusters, want 2", len(a))
	}
	// Each cluster must be pure: all members from one blob.
	for _, c := range a {
		blob := c[0] < 30
		for _, id := range c {
			if (id < 30) != blob {
				t.Error("k-means mixed the blobs")
			}
		}
	}
}

func TestKMeansKLargerThanSites(t *testing.T) {
	sites := square(3, 100, rng.New(5))
	a := KMeans(sites, 10, rng.New(6), 10)
	covers(t, a, 3)
}

func TestKMeansDeterministic(t *testing.T) {
	sites := square(40, 500, rng.New(7))
	a := KMeans(sites, 4, rng.New(8), 30)
	b := KMeans(sites, 4, rng.New(8), 30)
	if len(a) != len(b) {
		t.Fatal("nondeterministic cluster count")
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatal("nondeterministic cluster sizes")
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("nondeterministic membership")
			}
		}
	}
}

func TestKMeansTighterThanGridOnBlobs(t *testing.T) {
	// Geographic blobs that straddle grid-cell boundaries: k-means should
	// produce tighter clusters.
	s := rng.New(9)
	var sites []Site
	centres := []Point{{95, 95}, {205, 95}, {95, 205}, {205, 205}}
	id := 0
	for _, c := range centres {
		for i := 0; i < 15; i++ {
			sites = append(sites, Site{ID: id, Pos: Point{s.Normal(c.X, 8), s.Normal(c.Y, 8)}})
			id++
		}
	}
	km := KMeans(sites, 4, rng.New(10), 50)
	gr := Grid(sites, 100)
	if MeanIntraDistance(sites, km) >= MeanIntraDistance(sites, gr) {
		t.Errorf("k-means (%v) not tighter than grid (%v)",
			MeanIntraDistance(sites, km), MeanIntraDistance(sites, gr))
	}
}

func TestMetricsEdgeCases(t *testing.T) {
	if MeanIntraDistance(nil, nil) != 0 {
		t.Error("empty intra distance should be 0")
	}
	if SizeImbalance(nil) != 0 {
		t.Error("empty imbalance should be 0")
	}
	if got := SizeImbalance(Assignment{{1, 2}, {3, 4}}); got != 1 {
		t.Errorf("balanced imbalance = %v", got)
	}
	if got := SizeImbalance(Assignment{{1, 2, 3}, {4}}); got != 1.5 {
		t.Errorf("imbalance = %v, want 1.5", got)
	}
}

// Property: every clustering covers all sites exactly once, for arbitrary
// site layouts.
func TestCoverageProperty(t *testing.T) {
	f := func(seed uint64, n8, k8 uint8) bool {
		n := int(n8%60) + 1
		k := int(k8%10) + 1
		s := rng.New(seed)
		sites := square(n, 1000, s)
		check := func(a Assignment) bool {
			seen := map[int]bool{}
			for _, c := range a {
				for _, id := range c {
					if seen[id] {
						return false
					}
					seen[id] = true
				}
			}
			return len(seen) == n
		}
		return check(PerBuilding(sites)) &&
			check(Grid(sites, 250)) &&
			check(KMeans(sites, k, s.Fork(1), 20))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
