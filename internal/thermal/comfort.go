package thermal

import (
	"df3/internal/metrics"
	"df3/internal/units"
)

// Comfort accumulates thermal-comfort statistics for a zone against its
// setpoint — the quantity behind the paper's Fig. 4 and its claim that DF
// servers "reach the same level of comfort as other heating systems" [7].
//
// Heating-season semantics: a tick is comfortable when the zone is no more
// than Band below the active setpoint and not absolutely overheated
// (above OverheatLimit). Sitting above a *setback* setpoint is not
// discomfort — a slowly cooling room at 19 °C against a 17 °C night
// setback is fine.
type Comfort struct {
	// Band is the tolerated shortfall below the setpoint.
	Band float64
	// OverheatLimit is the absolute temperature above which any tick
	// counts as uncomfortable.
	OverheatLimit float64

	temp      metrics.Series
	deviation metrics.Stats
	inBand    float64 // seconds spent within the band
	occupied  float64 // seconds evaluated
}

// NewComfort returns a tracker with the given comfort band (e.g. 1.5 K)
// and a 26 °C overheat limit.
func NewComfort(band float64) *Comfort {
	return &Comfort{Band: band, OverheatLimit: 26}
}

// Observe records the zone temperature against the active setpoint for a
// tick of dt seconds. Pass occupied=false to skip comfort accounting (nobody
// home) while still recording the temperature trace.
func (c *Comfort) Observe(t float64, dt float64, temp, setpoint units.Celsius, occupied bool) {
	c.temp.Add(t, float64(temp))
	if !occupied {
		return
	}
	dev := float64(temp) - float64(setpoint)
	c.deviation.Observe(dev)
	c.occupied += dt
	if dev >= -c.Band && float64(temp) <= c.OverheatLimit {
		c.inBand += dt
	}
}

// Trace returns the recorded temperature series.
func (c *Comfort) Trace() *metrics.Series { return &c.temp }

// InBandFraction returns the fraction of occupied time spent inside the
// comfort band.
func (c *Comfort) InBandFraction() float64 {
	if c.occupied == 0 {
		return 0
	}
	return c.inBand / c.occupied
}

// MeanDeviation returns the mean signed deviation from the setpoint during
// occupied time.
func (c *Comfort) MeanDeviation() float64 { return c.deviation.Mean() }

// MonthlyMeans folds the temperature trace into per-month averages using
// the calendar key function — this is exactly the Fig. 4 output.
func (c *Comfort) MonthlyMeans(monthOf func(t float64) int) (months []int, means []float64) {
	return c.temp.Bucket(monthOf)
}
