// Package thermal models rooms and water loops as lumped RC networks.
//
// A Zone is one heated room: its air (plus furniture) is a single thermal
// capacitance C coupled to the outdoors through a resistance R, with heat
// injected by the DF server, by occupants and appliances, and by solar
// gains:
//
//	C · dT/dt = Q_heater + Q_gains − (T − T_out)/R
//
// The model is integrated explicitly at the simulator's thermal tick
// (60 s by default), which is far below the zone time constant R·C
// (tens of hours), so explicit Euler is stable and accurate here.
//
// A WaterLoop models the thermal buffer of a digital boiler (§II-B2): the
// computing rack heats a water volume which the building draws heat from;
// the buffer is what lets boilers keep computing when instantaneous heat
// demand is low — at the price of waste heat, which the paper's §III-C
// worries about.
package thermal

import (
	"df3/internal/units"
)

// Zone is a lumped-capacitance room model.
type Zone struct {
	// R is the envelope resistance in K/W: a 20 m² room with decent
	// insulation loses ~1 W per 0.01 K of indoor-outdoor difference.
	R float64
	// C is the heat capacitance in J/K.
	C float64
	// Temp is the current zone air temperature.
	Temp units.Celsius
}

// RoomSpec describes a room class for the scenario builder.
type RoomSpec struct {
	R       float64       // K/W
	C       float64       // J/K
	Initial units.Celsius // temperature at scenario start
}

// Typical room specs. A single 500 W Q.rad is the *sole* heater of its
// room, so deployments target low-energy buildings where the design loss
// at ΔT ≈ 20 K stays well below the heater's output, leaving warm-up
// margin (the sizing rule for electric heating).
var (
	// Apartment is a low-energy (RT2012-class) apartment room: 10 W/K
	// envelope, design loss ≈ 200 W at ΔT = 20 K (τ = R·C ≈ 69 h).
	Apartment = RoomSpec{R: 0.10, C: 2.5e6, Initial: 17}
	// Office is a larger office space with more ventilation (τ ≈ 89 h).
	Office = RoomSpec{R: 0.08, C: 4e6, Initial: 17}
	// OldBuilding is a renovated pre-war room at the upper edge of what
	// one Q.rad can heat: design loss ≈ 440 W at ΔT = 20 K (τ ≈ 37 h).
	OldBuilding = RoomSpec{R: 0.045, C: 3e6, Initial: 15}
)

// NewZone builds a zone from a spec.
func NewZone(spec RoomSpec) *Zone {
	return &Zone{R: spec.R, C: spec.C, Temp: spec.Initial}
}

// Step advances the zone by dt seconds with heater power qHeater and other
// internal gains qGains (occupants, appliances, solar), given the outdoor
// temperature. It returns the new zone temperature.
func (z *Zone) Step(dt float64, qHeater, qGains units.Watt, outdoor units.Celsius) units.Celsius {
	loss := (float64(z.Temp) - float64(outdoor)) / z.R
	dT := (float64(qHeater) + float64(qGains) - loss) * dt / z.C
	z.Temp += units.Celsius(dT)
	return z.Temp
}

// SteadyStatePower returns the heater power that holds the zone at target
// forever, net of gains: (target − outdoor)/R − gains, floored at zero.
func (z *Zone) SteadyStatePower(target, outdoor units.Celsius, gains units.Watt) units.Watt {
	p := (float64(target)-float64(outdoor))/z.R - float64(gains)
	if p < 0 {
		p = 0
	}
	return units.Watt(p)
}

// TimeConstant returns R·C in seconds — how fast the room drifts.
func (z *Zone) TimeConstant() float64 { return z.R * z.C }

// VentLoss models occupant window venting: in a low-energy envelope the
// internal gains (sun, people, the DF server's floor load) can overshoot
// the comfort ceiling, and residents vent. The window opens proportionally
// over one kelvin above the ceiling and exchanges air at coeff W/K against
// the outdoors. Returns the heat removed (≥ 0); zero when the outdoors is
// warmer than the room.
func VentLoss(temp, ceiling, outdoor units.Celsius, coeff float64) units.Watt {
	if temp <= ceiling || temp <= outdoor {
		return 0
	}
	open := float64(temp - ceiling)
	if open > 1 {
		open = 1
	}
	return units.Watt(open * coeff * float64(temp-outdoor))
}

// UHIIntensity estimates the urban-heat-island contribution of rejected
// heat (§III-A, refs [9][10]): the steady street-level temperature rise
// from a mean anthropogenic heat flux over a district. The sensitivity
// follows the empirical UHI literature's ~1 K per 25 W/m² of district
// flux for mid-latitude European cities; it is a first-order screening
// number, not a microclimate model.
func UHIIntensity(rejected units.Watt, areaM2 float64) units.Celsius {
	if areaM2 <= 0 {
		return 0
	}
	const kelvinPerWm2 = 1.0 / 25.0
	return units.Celsius(float64(rejected) / areaM2 * kelvinPerWm2)
}

// WaterLoop is the thermal buffer of a digital boiler: a water volume heated
// by the rack and cooled by the building's heat draw plus standing losses.
type WaterLoop struct {
	// C is the buffer capacitance in J/K (4186 J/(kg·K) × kg of water).
	C float64
	// LossCoeff is the standing loss to the plant room in W/K.
	LossCoeff float64
	// Temp is the loop temperature.
	Temp units.Celsius
	// MaxTemp is the safety cap: above it the rack must shed load, and any
	// heat beyond the building draw is dumped (waste heat).
	MaxTemp units.Celsius
	// wasted accumulates dumped heat in joules.
	wasted units.Joule
}

// NewWaterLoop returns a loop buffering the given mass of water in kg.
func NewWaterLoop(waterKg float64) *WaterLoop {
	return &WaterLoop{
		C:         4186 * waterKg,
		LossCoeff: 15,
		Temp:      40,
		MaxTemp:   75,
	}
}

// Step advances the loop by dt seconds: the rack injects qRack, the building
// draws qDraw, the plant room sits at ambient. Heat that would push the loop
// past MaxTemp is dumped and accounted as waste.
func (w *WaterLoop) Step(dt float64, qRack, qDraw units.Watt, ambient units.Celsius) units.Celsius {
	loss := (float64(w.Temp) - float64(ambient)) * w.LossCoeff
	net := float64(qRack) - float64(qDraw) - loss
	newT := float64(w.Temp) + net*dt/w.C
	if newT > float64(w.MaxTemp) {
		// Energy above the cap is dumped to the environment.
		excess := (newT - float64(w.MaxTemp)) * w.C
		w.wasted += units.Joule(excess)
		newT = float64(w.MaxTemp)
	}
	if newT < float64(ambient) {
		// The loop cannot fall below plant-room ambient.
		newT = float64(ambient)
	}
	w.Temp = units.Celsius(newT)
	return w.Temp
}

// Wasted returns the cumulative dumped heat.
func (w *WaterLoop) Wasted() units.Joule { return w.wasted }

// Headroom returns how much more energy the buffer can absorb before
// hitting MaxTemp.
func (w *WaterLoop) Headroom() units.Joule {
	h := (float64(w.MaxTemp) - float64(w.Temp)) * w.C
	if h < 0 {
		h = 0
	}
	return units.Joule(h)
}
