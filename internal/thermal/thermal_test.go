package thermal

import (
	"math"
	"testing"
	"testing/quick"

	"df3/internal/units"
)

func TestZoneCoolsTowardOutdoor(t *testing.T) {
	z := NewZone(Apartment)
	z.Temp = 20
	for i := 0; i < 6*24*60; i++ { // 6 days unheated, 1-min steps
		z.Step(60, 0, 0, 0)
	}
	if z.Temp > 3.5 {
		t.Errorf("room still at %v after 6 days unheated with 0°C outside", z.Temp)
	}
	if z.Temp < 0 {
		t.Errorf("room dropped below outdoor temperature: %v", z.Temp)
	}
}

func TestZoneSteadyState(t *testing.T) {
	z := NewZone(Apartment)
	z.Temp = 20
	outdoor := units.Celsius(0)
	p := z.SteadyStatePower(20, outdoor, 0)
	// 20 K / 0.10 K/W = 200 W: a low-energy room well inside the Q.rad's
	// 500 W output, as the sizing rule requires.
	if math.Abs(float64(p)-200) > 1e-9 {
		t.Fatalf("steady-state power = %v, want 200 W", p)
	}
	for i := 0; i < 24*60; i++ {
		z.Step(60, p, 0, outdoor)
	}
	if math.Abs(float64(z.Temp)-20) > 0.01 {
		t.Errorf("steady-state hold drifted to %v", z.Temp)
	}
}

func TestZoneHeatsUp(t *testing.T) {
	z := NewZone(Apartment)
	z.Temp = 15
	before := z.Temp
	for i := 0; i < 6*60; i++ {
		z.Step(60, 500, 0, 5)
	}
	if z.Temp <= before {
		t.Errorf("heated room did not warm: %v -> %v", before, z.Temp)
	}
}

func TestGainsReduceHeaterNeed(t *testing.T) {
	z := NewZone(Apartment)
	p0 := z.SteadyStatePower(20, 0, 0)
	p1 := z.SteadyStatePower(20, 0, 200)
	if float64(p1) != float64(p0)-200 {
		t.Errorf("gains not subtracted: %v vs %v", p0, p1)
	}
	if z.SteadyStatePower(20, 25, 0) != 0 {
		t.Error("steady-state power should floor at 0 when outdoor is warmer")
	}
}

func TestTimeConstant(t *testing.T) {
	z := NewZone(Apartment)
	tc := z.TimeConstant()
	if tc < 3600 || tc > 1e6 {
		t.Errorf("implausible time constant %v s", tc)
	}
}

// Property: with bounded inputs, a zone stepped any number of times stays
// between outdoor temperature and a physical maximum (energy balance: the
// fixed point of the ODE with max power).
func TestZoneBoundedProperty(t *testing.T) {
	f := func(steps uint16, heat8 uint8, out8 int8) bool {
		z := NewZone(Apartment)
		z.Temp = 18
		heater := units.Watt(float64(heat8) * 4) // 0..1020 W
		outdoor := units.Celsius(float64(out8) / 4)
		maxT := float64(outdoor) + float64(heater)*z.R + 1e-6
		minT := math.Min(float64(outdoor), 18)
		for i := 0; i < int(steps); i++ {
			v := float64(z.Step(60, heater, 0, outdoor))
			if v != v || v > math.Max(maxT, 18)+1e-6 || v < minT-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: zone temperature is monotone in heater power — more heat never
// yields a colder room after the same step sequence.
func TestZoneMonotoneInPower(t *testing.T) {
	f := func(pa, pb uint8, out int8) bool {
		lo, hi := float64(pa)*4, float64(pb)*4
		if lo > hi {
			lo, hi = hi, lo
		}
		za, zb := NewZone(Office), NewZone(Office)
		for i := 0; i < 500; i++ {
			za.Step(60, units.Watt(lo), 0, units.Celsius(out))
			zb.Step(60, units.Watt(hi), 0, units.Celsius(out))
		}
		return float64(zb.Temp) >= float64(za.Temp)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWaterLoopBuffers(t *testing.T) {
	w := NewWaterLoop(1000) // 1 t of water
	start := w.Temp
	for i := 0; i < 3600; i++ { // 1 h of 20 kW rack, no draw
		w.Step(1, 20000, 0, 15)
	}
	if w.Temp <= start {
		t.Error("loop did not warm under rack heat")
	}
	if w.Temp > w.MaxTemp {
		t.Errorf("loop exceeded MaxTemp: %v", w.Temp)
	}
}

func TestWaterLoopWasteAboveCap(t *testing.T) {
	w := NewWaterLoop(100) // small buffer saturates fast
	for i := 0; i < 7200; i++ {
		w.Step(1, 20000, 0, 15)
	}
	if w.Wasted() <= 0 {
		t.Error("saturated loop recorded no waste heat")
	}
	if w.Temp != w.MaxTemp {
		t.Errorf("saturated loop at %v, want MaxTemp %v", w.Temp, w.MaxTemp)
	}
}

func TestWaterLoopDrawCools(t *testing.T) {
	w := NewWaterLoop(1000)
	w.Temp = 60
	for i := 0; i < 3600; i++ {
		w.Step(1, 0, 30000, 15) // building draws 30 kW
	}
	if w.Temp >= 60 {
		t.Error("loop did not cool under draw")
	}
	if w.Temp < 15 {
		t.Errorf("loop fell below ambient: %v", w.Temp)
	}
}

func TestWaterLoopHeadroom(t *testing.T) {
	w := NewWaterLoop(500)
	h0 := w.Headroom()
	w.Temp = w.MaxTemp
	if w.Headroom() != 0 {
		t.Errorf("headroom at cap = %v", w.Headroom())
	}
	if h0 <= 0 {
		t.Errorf("initial headroom = %v", h0)
	}
}

func TestComfortInBand(t *testing.T) {
	c := NewComfort(1.5)
	// 10 ticks at setpoint, 10 ticks far below, all occupied.
	for i := 0; i < 10; i++ {
		c.Observe(float64(i)*60, 60, 20, 20, true)
	}
	for i := 10; i < 20; i++ {
		c.Observe(float64(i)*60, 60, 14, 20, true)
	}
	if got := c.InBandFraction(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("in-band fraction = %v, want 0.5", got)
	}
	if c.MeanDeviation() >= 0 {
		t.Errorf("mean deviation = %v, want negative", c.MeanDeviation())
	}
}

func TestComfortSkipsUnoccupied(t *testing.T) {
	c := NewComfort(1)
	c.Observe(0, 60, 10, 20, false)
	if c.InBandFraction() != 0 && c.occupied != 0 {
		t.Error("unoccupied tick was counted")
	}
	if c.Trace().Len() != 1 {
		t.Error("temperature trace must record unoccupied ticks too")
	}
}

func TestComfortMonthlyMeans(t *testing.T) {
	c := NewComfort(1)
	// Month 0: 20°, month 1: 22°.
	c.Observe(0, 60, 20, 20, true)
	c.Observe(1, 60, 20, 20, true)
	c.Observe(100, 60, 22, 20, true)
	months, means := c.MonthlyMeans(func(t float64) int {
		if t < 50 {
			return 0
		}
		return 1
	})
	if len(months) != 2 || means[0] != 20 || means[1] != 22 {
		t.Errorf("monthly means = %v %v", months, means)
	}
}

func TestUHIIntensity(t *testing.T) {
	// 25 W/m² over the district ≈ 1 K of street-level warming.
	if got := UHIIntensity(25*40000, 40000); math.Abs(float64(got)-1) > 1e-9 {
		t.Errorf("UHI at 25 W/m² = %v, want 1 K", got)
	}
	if UHIIntensity(1000, 0) != 0 {
		t.Error("zero area should yield 0")
	}
	if UHIIntensity(0, 1000) != 0 {
		t.Error("zero rejection should yield 0")
	}
}
