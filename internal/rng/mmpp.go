package rng

// MMPP is a two-state Markov-modulated Poisson process used for bursty
// request arrivals (the paper's "peak of requests", §III-B). The process
// alternates between a calm state and a burst state, each holding for an
// exponential sojourn, and emits arrivals at the state's rate.
type MMPP struct {
	stream *Stream

	// Rates of the two states (arrivals per second).
	CalmRate  float64
	BurstRate float64
	// Mean sojourn times of the two states (seconds).
	CalmHold  float64
	BurstHold float64

	inBurst   bool
	stateEnds float64 // absolute time at which the current state ends
	now       float64
}

// NewMMPP constructs a two-state MMPP starting in the calm state at time 0.
func NewMMPP(stream *Stream, calmRate, burstRate, calmHold, burstHold float64) *MMPP {
	m := &MMPP{
		stream:    stream,
		CalmRate:  calmRate,
		BurstRate: burstRate,
		CalmHold:  calmHold,
		BurstHold: burstHold,
	}
	m.stateEnds = stream.Exp(1 / calmHold)
	return m
}

// rate returns the arrival rate of the current state.
func (m *MMPP) rate() float64 {
	if m.inBurst {
		return m.BurstRate
	}
	return m.CalmRate
}

// Next returns the absolute time of the next arrival after the previous one.
// Successive calls walk forward through the process.
func (m *MMPP) Next() float64 {
	for {
		gap := m.stream.Exp(m.rate())
		if m.now+gap <= m.stateEnds {
			m.now += gap
			return m.now
		}
		// The candidate arrival falls past the state boundary: advance to
		// the boundary and re-draw in the next state (memorylessness makes
		// this exact).
		m.now = m.stateEnds
		m.inBurst = !m.inBurst
		hold := m.CalmHold
		if m.inBurst {
			hold = m.BurstHold
		}
		m.stateEnds = m.now + m.stream.Exp(1/hold)
	}
}

// InBurst reports whether the process is currently in its burst state.
func (m *MMPP) InBurst() bool { return m.inBurst }
