package rng

import "math"

// Zipf draws from a bounded Zipf distribution over {0, …, N−1} with
// exponent s — the classic popularity law of content requests (map tiles,
// video segments): rank-k items are requested with probability ∝ 1/k^s.
// Sampling is by binary search on a precomputed CDF, O(log N) per draw.
type Zipf struct {
	stream *Stream
	cdf    []float64
}

// NewZipf builds a sampler over n items with exponent s (s > 0; s ≈ 0.8–1.2
// matches measured web/content workloads).
func NewZipf(stream *Stream, n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: Zipf needs at least one item")
	}
	if s <= 0 {
		panic("rng: Zipf exponent must be positive")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), s)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	return &Zipf{stream: stream, cdf: cdf}
}

// N returns the item count.
func (z *Zipf) N() int { return len(z.cdf) }

// Draw returns the next item index (0 is the most popular).
func (z *Zipf) Draw() int {
	u := z.stream.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// HeadMass returns the probability mass of the first k items — the best
// possible hit rate of a cache holding exactly the k most popular items.
func (z *Zipf) HeadMass(k int) float64 {
	if k <= 0 {
		return 0
	}
	if k >= len(z.cdf) {
		return 1
	}
	return z.cdf[k-1]
}
