// Package rng provides deterministic random number streams and the
// distributions used by the df3 workload and climate generators.
//
// Every stochastic component of the simulator owns a Stream derived from an
// explicit seed, so that a scenario is fully reproducible from its seed and
// independent components do not perturb each other's draws when one of them
// is reconfigured. The generator is SplitMix64, which is tiny, fast, passes
// BigCrush for the use we make of it, and — unlike math/rand's global
// source — trivially forkable.
package rng

import "math"

// Stream is a deterministic pseudo-random stream. The zero value is a valid
// stream seeded with 0; prefer New with a scenario seed.
type Stream struct {
	state uint64
}

// New returns a stream seeded with seed.
func New(seed uint64) *Stream { return &Stream{state: seed} }

// Fork derives an independent child stream. The label decorrelates children
// forked from the same parent state.
func (s *Stream) Fork(label uint64) *Stream {
	// Mix the label through one splitmix round so Fork(1) and Fork(2)
	// diverge immediately.
	z := s.Uint64() + 0x9e3779b97f4a7c15*label
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	return &Stream{state: z}
}

// ForkNamed derives an independent child stream keyed by a human-readable
// label ("shard-3", "city-17/offload"). The label is folded through FNV-1a
// into a Fork label, so substream identity depends only on the parent state
// and the string — never on fork order elsewhere in the program. The sharded
// kernel uses it to give every shard and logical process its own substream:
// draws inside one shard then cannot perturb another's, which is what keeps
// an N-shard run byte-identical to the serial one.
func (s *Stream) ForkNamed(label string) *Stream {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime64
	}
	return s.Fork(h)
}

// Uint64 returns the next 64 pseudo-random bits (SplitMix64).
func (s *Stream) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform draw in [0,1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform draw in [0,n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Uniform returns a uniform draw in [lo,hi).
func (s *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Bool returns true with probability p.
func (s *Stream) Bool(p float64) bool { return s.Float64() < p }

// Exp returns an exponential draw with the given rate (mean 1/rate).
func (s *Stream) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	u := s.Float64()
	// 1-u is in (0,1]; Log of it is finite.
	return -math.Log(1-u) / rate
}

// Normal returns a normal draw with the given mean and standard deviation,
// via the Marsaglia polar method.
func (s *Stream) Normal(mean, stddev float64) float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q == 0 || q >= 1 {
			continue
		}
		return mean + stddev*u*math.Sqrt(-2*math.Log(q)/q)
	}
}

// LogNormal returns a log-normal draw where the underlying normal has the
// given mu and sigma.
func (s *Stream) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// Pareto returns a Pareto draw with minimum xm and shape alpha. Heavy-tailed
// job sizes in the DCC workload use this.
func (s *Stream) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		panic("rng: Pareto with non-positive parameter")
	}
	u := s.Float64()
	return xm / math.Pow(1-u, 1/alpha)
}

// Poisson returns a Poisson draw with the given mean (Knuth for small means,
// normal approximation above 64 to stay O(1)).
func (s *Stream) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		n := int(math.Round(s.Normal(mean, math.Sqrt(mean))))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= s.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Shuffle permutes the first n elements using swap, Fisher–Yates style.
func (s *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, s.Intn(i+1))
	}
}

// Perm returns a random permutation of [0,n).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
