package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seed diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("streams with different seeds collided %d/100 times", same)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Fork(1)
	c2 := parent.Fork(2)
	if c1.Uint64() == c2.Uint64() {
		t.Error("forked children with different labels produced equal first draw")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(4)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) only produced %d distinct values in 1000 draws", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestExpMean(t *testing.T) {
	s := New(6)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := s.Exp(2.0)
		if v < 0 {
			t.Fatalf("Exp produced negative %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Exp(2) mean = %v, want ~0.5", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(8)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Normal(10, 3)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("Normal mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.05 {
		t.Errorf("Normal stddev = %v, want ~3", math.Sqrt(variance))
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := New(9)
	for i := 0; i < 10000; i++ {
		if v := s.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal produced non-positive %v", v)
		}
	}
}

func TestParetoBounds(t *testing.T) {
	s := New(10)
	for i := 0; i < 10000; i++ {
		if v := s.Pareto(2, 1.5); v < 2 {
			t.Fatalf("Pareto(2,1.5) produced %v below xm", v)
		}
	}
}

func TestParetoMean(t *testing.T) {
	// Mean of Pareto(xm, a) with a>1 is a*xm/(a-1). Use a=3 so the
	// variance is finite and the estimate converges.
	s := New(11)
	const n = 400000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Pareto(1, 3)
	}
	mean := sum / n
	if math.Abs(mean-1.5) > 0.02 {
		t.Errorf("Pareto(1,3) mean = %v, want ~1.5", mean)
	}
}

func TestPoissonMean(t *testing.T) {
	s := New(12)
	for _, mean := range []float64{0.5, 4, 30, 200} {
		const n = 50000
		sum := 0
		for i := 0; i < n; i++ {
			sum += s.Poisson(mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean) > mean*0.03+0.05 {
			t.Errorf("Poisson(%v) mean = %v", mean, got)
		}
	}
}

func TestPoissonZeroMean(t *testing.T) {
	if got := New(1).Poisson(0); got != 0 {
		t.Errorf("Poisson(0) = %d", got)
	}
	if got := New(1).Poisson(-3); got != 0 {
		t.Errorf("Poisson(-3) = %d", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(13)
	p := s.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm(50) invalid: %v", p)
		}
		seen[v] = true
	}
}

// Property: Uniform(lo,hi) with lo<hi stays inside [lo,hi).
func TestUniformProperty(t *testing.T) {
	s := New(14)
	f := func(a, b float64) bool {
		if a != a || b != b || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		lo, hi := a, b
		if lo == hi {
			return true
		}
		if lo > hi {
			lo, hi = hi, lo
		}
		if math.IsInf(hi-lo, 0) { // spread overflows float64; undefined
			return true
		}
		v := s.Uniform(lo, hi)
		return v >= lo && v <= hi // rounding may land exactly on hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Exp draws are non-negative for any positive rate.
func TestExpNonNegativeProperty(t *testing.T) {
	s := New(15)
	f := func(r float64) bool {
		rate := math.Abs(r)
		if rate == 0 || math.IsInf(rate, 0) || rate != rate {
			return true
		}
		return s.Exp(rate) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMMPPMonotone(t *testing.T) {
	m := NewMMPP(New(16), 1, 20, 100, 10)
	prev := 0.0
	for i := 0; i < 10000; i++ {
		next := m.Next()
		if next <= prev {
			t.Fatalf("MMPP arrivals not strictly increasing: %v after %v", next, prev)
		}
		prev = next
	}
}

func TestMMPPBurstiness(t *testing.T) {
	// With a 20x burst rate, mean inter-arrival across a long horizon must
	// sit strictly between the two pure-Poisson means.
	m := NewMMPP(New(17), 1, 20, 50, 50)
	const n = 100000
	prev, sum := 0.0, 0.0
	for i := 0; i < n; i++ {
		next := m.Next()
		sum += next - prev
		prev = next
	}
	mean := sum / n
	if mean <= 1.0/20 || mean >= 1.0 {
		t.Errorf("MMPP mean inter-arrival = %v, want in (0.05, 1)", mean)
	}
}

func TestZipfBounds(t *testing.T) {
	z := NewZipf(New(20), 100, 1.0)
	for i := 0; i < 10000; i++ {
		v := z.Draw()
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf draw out of range: %d", v)
		}
	}
	if z.N() != 100 {
		t.Errorf("N = %d", z.N())
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(New(21), 1000, 1.0)
	counts := map[int]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Draw()]++
	}
	// Rank 0 should dominate rank 99 by roughly 100:1 under s=1.
	if counts[0] < counts[99]*20 {
		t.Errorf("rank0=%d rank99=%d: not Zipf-skewed", counts[0], counts[99])
	}
	// Head mass sanity: the top 100 of 1000 items carry >60% of traffic.
	if hm := z.HeadMass(100); hm < 0.6 {
		t.Errorf("head mass of top 10%% = %v", hm)
	}
	if z.HeadMass(0) != 0 || z.HeadMass(5000) != 1 {
		t.Error("head mass bounds wrong")
	}
}

func TestZipfPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewZipf(New(1), 0, 1) },
		func() { NewZipf(New(1), 10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid Zipf accepted")
				}
			}()
			f()
		}()
	}
}
