package workload

import (
	"math"
	"testing"
	"testing/quick"

	"df3/internal/rng"
	"df3/internal/sim"
)

func TestEdgeGenEmits(t *testing.T) {
	e := sim.New()
	g := DefaultEdgeGen(rng.New(1), 8)
	var reqs []EdgeRequest
	g.Start(e, 2*sim.Hour, func(r EdgeRequest) { reqs = append(reqs, r) })
	e.Run(2 * sim.Hour)
	if len(reqs) == 0 {
		t.Fatal("no edge requests emitted")
	}
	for i, r := range reqs {
		if r.Work <= 0 || r.Deadline != 0.5 || r.Input <= 0 {
			t.Fatalf("request %d malformed: %+v", i, r)
		}
		if r.Device < 0 || r.Device >= 8 {
			t.Fatalf("request %d device out of range: %d", i, r.Device)
		}
		if i > 0 && r.ID <= reqs[i-1].ID {
			t.Fatal("IDs not strictly increasing")
		}
	}
}

func TestEdgeGenDeterministic(t *testing.T) {
	run := func() []float64 {
		e := sim.New()
		g := DefaultEdgeGen(rng.New(5), 4)
		var works []float64
		g.Start(e, sim.Hour, func(r EdgeRequest) { works = append(works, r.Work) })
		e.Run(sim.Hour)
		return works
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d", i)
		}
	}
}

func TestEdgeGenStopsAtUntil(t *testing.T) {
	e := sim.New()
	g := DefaultEdgeGen(rng.New(2), 1)
	count := 0
	g.Start(e, sim.Hour, func(EdgeRequest) { count++ })
	e.Run(10 * sim.Hour)
	after := count
	e.Run(20 * sim.Hour)
	if count != after {
		t.Error("generator kept emitting past until")
	}
}

func TestEdgeGenMeanWork(t *testing.T) {
	e := sim.New()
	g := DefaultEdgeGen(rng.New(3), 1)
	g.CalmRate = 5 // denser stream for the estimate
	var sum float64
	n := 0
	g.Start(e, 24*sim.Hour, func(r EdgeRequest) { sum += r.Work; n++ })
	e.Run(24 * sim.Hour)
	mean := sum / float64(n)
	// lognormal(0, 0.4) has mean exp(0.08) ≈ 1.083.
	want := 0.05 * math.Exp(0.4*0.4/2)
	if math.Abs(mean-want)/want > 0.15 {
		t.Errorf("mean work = %v, want ~%v", mean, want)
	}
}

func TestSenseLoopPeriodic(t *testing.T) {
	e := sim.New()
	s := &SenseLoop{Period: 10, Work: 0.01, Input: 100, Output: 10, Device: 3}
	var at []sim.Time
	s.Start(e, 95, func(r EdgeRequest) {
		at = append(at, e.Now())
		if r.Deadline != 10 || r.Device != 3 {
			t.Errorf("malformed sense request: %+v", r)
		}
	})
	e.Run(200)
	if len(at) != 9 { // t=10..90
		t.Fatalf("emitted %d requests, want 9: %v", len(at), at)
	}
	for i, tt := range at {
		if tt != sim.Time(10*(i+1)) {
			t.Errorf("request %d at %v", i, tt)
		}
	}
}

func TestDCCGenEmitsJobs(t *testing.T) {
	e := sim.New()
	g := DefaultDCCGen(rng.New(4), sim.JanuaryStart, 0.01)
	var jobs []BatchJob
	g.Start(e, sim.Day, func(j BatchJob) { jobs = append(jobs, j) })
	e.Run(sim.Day)
	if len(jobs) == 0 {
		t.Fatal("no DCC jobs emitted")
	}
	for _, j := range jobs {
		if len(j.TaskWork) < 20 || len(j.TaskWork) > 80 {
			t.Errorf("job has %d frames", len(j.TaskWork))
		}
		for _, w := range j.TaskWork {
			if w < 120 {
				t.Errorf("frame below WorkMin: %v", w)
			}
		}
		if j.TotalWork() <= 0 {
			t.Error("empty job")
		}
	}
}

func TestDCCGenBusinessHours(t *testing.T) {
	e := sim.New()
	g := DefaultDCCGen(rng.New(6), sim.JanuaryStart, 0.02)
	day, night := 0, 0
	g.Start(e, 20*sim.Day, func(j BatchJob) {
		h := sim.JanuaryStart.HourOfDay(e.Now())
		if h >= 8 && h < 20 && !sim.JanuaryStart.IsWeekend(e.Now()) {
			day++
		} else {
			night++
		}
	})
	e.Run(20 * sim.Day)
	if day == 0 || night == 0 {
		t.Fatalf("degenerate split day=%d night=%d", day, night)
	}
	// Business hours are ~36% of the week but carry 4x the rate: expect a
	// clear majority of jobs during the day.
	if float64(day)/float64(day+night) < 0.55 {
		t.Errorf("business-hours share = %v, want > 0.55", float64(day)/float64(day+night))
	}
}

func TestRenderCampaignScale(t *testing.T) {
	j := RenderCampaign(rng.New(7), 1000)
	if len(j.TaskWork) != 600 {
		t.Fatalf("campaign has %d frames, want 600", len(j.TaskWork))
	}
	// Total work should approximate 11 000 CPU-hours (scaled): mean frame
	// 66 core-hours.
	totalHours := j.TotalWork() / 3600
	if totalHours < 8000 || totalHours > 14500 {
		t.Errorf("campaign work = %v CPU-hours, want ~11000", totalHours)
	}
}

// Property: every generated frame and every edge work draw is positive and
// finite for arbitrary seeds.
func TestGeneratorsPositiveProperty(t *testing.T) {
	f := func(seed uint64) bool {
		j := RenderCampaign(rng.New(seed), 10000)
		for _, w := range j.TaskWork {
			if !(w > 0) || math.IsInf(w, 0) {
				return false
			}
		}
		e := sim.New()
		ok := true
		g := DefaultEdgeGen(rng.New(seed), 3)
		g.Start(e, 30*sim.Minute, func(r EdgeRequest) {
			if !(r.Work > 0) || math.IsInf(r.Work, 0) {
				ok = false
			}
		})
		e.Run(30 * sim.Minute)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
