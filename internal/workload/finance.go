package workload

import (
	"df3/internal/rng"
	"df3/internal/sim"
	"df3/internal/units"
)

// FinanceGen emits Monte-Carlo risk-evaluation batches — the paper's other
// flagship DCC customer ("this platform is used by major banks and
// financial services in France", §II-A). Unlike render jobs, finance
// batches are many small independent tasks (scenario evaluations) with a
// business deadline: the overnight risk run must finish before markets
// open.
type FinanceGen struct {
	Stream   *rng.Stream
	Calendar sim.Calendar
	// SubmitHour is the local hour the nightly batch lands (e.g. 19).
	SubmitHour float64
	// DueHour is the next-day hour results are needed by (e.g. 7).
	DueHour float64
	// TasksMin/TasksMax bound the scenario count per batch.
	TasksMin, TasksMax int
	// TaskMean is the mean per-scenario work in core-seconds.
	TaskMean float64

	nextID uint64
}

// DefaultFinanceGen is a nightly 2000–6000-scenario risk batch of ~8 s
// evaluations, due at 07:00.
func DefaultFinanceGen(stream *rng.Stream, cal sim.Calendar) *FinanceGen {
	return &FinanceGen{
		Stream:     stream,
		Calendar:   cal,
		SubmitHour: 19,
		DueHour:    7,
		TasksMin:   2000,
		TasksMax:   6000,
		TaskMean:   8,
	}
}

// Batch is one nightly run with its business deadline.
type Batch struct {
	Job BatchJob
	// Due is the absolute deadline for the whole batch.
	Due sim.Time
}

// Start submits one batch per weekday evening until `until`.
func (g *FinanceGen) Start(e *sim.Engine, until sim.Time, submit func(b Batch)) {
	day := 0
	var schedule func()
	schedule = func() {
		at := sim.Time(day)*sim.Day + sim.Time(g.SubmitHour)*sim.Hour
		day++
		if at > until {
			return
		}
		e.AtTransient(at, func() {
			if !g.Calendar.IsWeekend(e.Now()) {
				submit(Batch{Job: g.makeBatch(), Due: at + g.window()})
			}
			schedule()
		})
	}
	schedule()
}

// window returns the submit→due span.
func (g *FinanceGen) window() sim.Time {
	h := 24 - g.SubmitHour + g.DueHour
	return sim.Time(h) * sim.Hour
}

// makeBatch draws one nightly batch.
func (g *FinanceGen) makeBatch() BatchJob {
	g.nextID++
	n := g.TasksMin
	if g.TasksMax > g.TasksMin {
		n += g.Stream.Intn(g.TasksMax - g.TasksMin + 1)
	}
	j := BatchJob{
		ID:       1_000_000 + g.nextID,
		TaskWork: make([]float64, n),
		Input:    50 * units.KB, // market data snapshot per scenario
		Output:   5 * units.KB,
	}
	for i := range j.TaskWork {
		// Scenario evaluations are near-uniform with a small spread.
		j.TaskWork[i] = g.TaskMean * g.Stream.Uniform(0.7, 1.3)
	}
	return j
}
