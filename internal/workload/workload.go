// Package workload generates the request streams of the DF3 model's two
// computing flows (§II-C):
//
//   - Internet (DCC) requests: batch jobs — 3D rendering frames and
//     Monte-Carlo financial pricing, the actual customers of the Qarnot
//     platform the paper cites — arriving through the operator middleware.
//   - Local (edge) requests: latency-bound inference triggered by building
//     sensors, modelled on the audio alarm-detection application of ref
//     [11], plus periodic sense-compute-actuate loops.
//
// Heating requests (the first flow) are setpoint schedules and live in
// package regulator.
//
// All generators are deterministic given their stream and run on the
// simulation engine via callbacks.
package workload

import (
	"math"

	"df3/internal/rng"
	"df3/internal/sim"
	"df3/internal/units"
)

// EdgeRequest is one latency-bound local computing request.
type EdgeRequest struct {
	ID uint64
	// Work is core-seconds at full speed.
	Work float64
	// Deadline is the relative latency bound for the response.
	Deadline sim.Time
	// Input and Output are the payload sizes.
	Input, Output units.Byte
	// Device indexes the emitting device within its building.
	Device int
}

// BatchJob is one Internet/DCC job: a bag of independent single-core tasks
// (render frames, Monte-Carlo batches).
type BatchJob struct {
	ID uint64
	// TaskWork holds the work of each task in core-seconds.
	TaskWork []float64
	// Input and Output are per-task payload sizes.
	Input, Output units.Byte
}

// TotalWork returns the summed work of all tasks.
func (j *BatchJob) TotalWork() float64 {
	s := 0.0
	for _, w := range j.TaskWork {
		s += w
	}
	return s
}

// EdgeGen emits alarm-detection style edge requests as a Markov-modulated
// Poisson process: long calm stretches, short bursts when something happens
// in the building.
type EdgeGen struct {
	Stream *rng.Stream
	// CalmRate and BurstRate are arrivals/second in each MMPP state.
	CalmRate, BurstRate float64
	// CalmHold and BurstHold are the mean state sojourns in seconds.
	CalmHold, BurstHold float64
	// MeanWork is the mean inference work in core-seconds.
	MeanWork float64
	// Deadline is the relative response bound.
	Deadline sim.Time
	// Devices is the number of emitting devices to attribute requests to.
	Devices int

	nextID uint64
}

// DefaultEdgeGen returns the reference alarm-detection generator: ~50 ms
// inferences with a 500 ms bound on 16 kB audio windows.
func DefaultEdgeGen(stream *rng.Stream, devices int) *EdgeGen {
	return &EdgeGen{
		Stream:    stream,
		CalmRate:  0.2,
		BurstRate: 6,
		CalmHold:  600,
		BurstHold: 20,
		MeanWork:  0.05,
		Deadline:  0.5,
		Devices:   devices,
	}
}

// Start emits requests on the engine until `until`, invoking submit for
// each. Work is lognormal around MeanWork (σ=0.4); payloads are a 16 kB
// audio window in and a 200 B verdict out.
func (g *EdgeGen) Start(e *sim.Engine, until sim.Time, submit func(r EdgeRequest)) {
	m := rng.NewMMPP(g.Stream.Fork(1), g.CalmRate, g.BurstRate, g.CalmHold, g.BurstHold)
	body := g.Stream.Fork(2)
	var schedule func()
	schedule = func() {
		at := m.Next()
		if at > until {
			return
		}
		e.AtTransient(at, func() {
			g.nextID++
			r := EdgeRequest{
				ID:       g.nextID,
				Work:     g.MeanWork * body.LogNormal(0, 0.4),
				Deadline: g.Deadline,
				Input:    16 * units.KB,
				Output:   200,
			}
			if g.Devices > 0 {
				r.Device = body.Intn(g.Devices)
			}
			submit(r)
			schedule()
		})
	}
	schedule()
}

// SenseLoop is a periodic sense-compute-actuate device (§III-B): every
// Period it emits a small fixed-work request with a bound of one period.
type SenseLoop struct {
	Period sim.Time
	Work   float64
	Input  units.Byte
	Output units.Byte
	Device int

	nextID uint64
}

// Start emits one request per period until `until`. Loops share the
// engine's tick domain for their period, so a city of sense loops costs
// one heap event per round.
func (s *SenseLoop) Start(e *sim.Engine, until sim.Time, submit func(r EdgeRequest)) {
	var sub *sim.Sub
	sub = e.Domain(s.Period).Subscribe(func(now sim.Time) {
		if now > until {
			sub.Stop()
			return
		}
		s.nextID++
		submit(EdgeRequest{
			ID:       s.nextID,
			Work:     s.Work,
			Deadline: s.Period,
			Input:    s.Input,
			Output:   s.Output,
			Device:   s.Device,
		})
	})
}

// DCCGen emits batch jobs with Poisson arrivals modulated by business hours
// (the paper notes Internet request arrivals follow business opportunity,
// not seasons, §II-C).
type DCCGen struct {
	Stream   *rng.Stream
	Calendar sim.Calendar
	// BaseRate is the mean arrival rate in jobs/second at business hours.
	BaseRate float64
	// NightFactor scales the rate outside business hours.
	NightFactor float64
	// FramesMin/FramesMax bound the per-job task count (uniform).
	FramesMin, FramesMax int
	// WorkMin is the minimum per-task work; tasks are Pareto(WorkMin,
	// WorkAlpha), the heavy tail measured on render farms.
	WorkMin   float64
	WorkAlpha float64

	nextID uint64
}

// DefaultDCCGen returns the reference render-farm generator: jobs of
// 20–80 frames, frames of 2+ minutes with a Pareto tail.
func DefaultDCCGen(stream *rng.Stream, cal sim.Calendar, rate float64) *DCCGen {
	return &DCCGen{
		Stream:      stream,
		Calendar:    cal,
		BaseRate:    rate,
		NightFactor: 0.25,
		FramesMin:   20,
		FramesMax:   80,
		WorkMin:     120,
		WorkAlpha:   2.2,
	}
}

// rate returns the arrival rate at time t.
func (g *DCCGen) rate(t sim.Time) float64 {
	h := g.Calendar.HourOfDay(t)
	if h >= 8 && h < 20 && !g.Calendar.IsWeekend(t) {
		return g.BaseRate
	}
	return g.BaseRate * g.NightFactor
}

// Start emits jobs until `until` by thinning a Poisson process at the peak
// rate (exact for piecewise-constant rates).
func (g *DCCGen) Start(e *sim.Engine, until sim.Time, submit func(j BatchJob)) {
	arr := g.Stream.Fork(1)
	body := g.Stream.Fork(2)
	peak := g.BaseRate
	var schedule func(from sim.Time)
	schedule = func(from sim.Time) {
		at := from + arr.Exp(peak)
		if at > until {
			return
		}
		e.AtTransient(at, func() {
			// Thinning: accept with prob rate(at)/peak.
			if arr.Float64() < g.rate(at)/peak {
				submit(g.makeJob(body))
			}
			schedule(at)
		})
	}
	schedule(0)
}

// makeJob draws one batch job.
func (g *DCCGen) makeJob(s *rng.Stream) BatchJob {
	g.nextID++
	n := g.FramesMin
	if g.FramesMax > g.FramesMin {
		n += s.Intn(g.FramesMax - g.FramesMin + 1)
	}
	j := BatchJob{
		ID:       g.nextID,
		TaskWork: make([]float64, n),
		Input:    5 * units.MB,
		Output:   2 * units.MB,
	}
	for i := range j.TaskWork {
		j.TaskWork[i] = s.Pareto(g.WorkMin, g.WorkAlpha)
	}
	return j
}

// RenderCampaign builds the fixed-size batch of the paper's 2016 figures —
// 600 000 images for 11 000 000 CPU-hours — scaled down by `scale` (e.g.
// 1000 gives 600 frames totalling 11 000 CPU-hours of work).
func RenderCampaign(stream *rng.Stream, scale int) BatchJob {
	const frames = 600000
	const cpuHours = 11000000
	n := frames / scale
	meanWork := float64(cpuHours) * 3600 / float64(frames)
	j := BatchJob{ID: 1, TaskWork: make([]float64, n), Input: 5 * units.MB, Output: 2 * units.MB}
	// Lognormal with the campaign's mean: σ=0.6, μ adjusted so the mean
	// matches exp(μ+σ²/2)=meanWork.
	const sigma = 0.6
	mu := math.Log(meanWork) - sigma*sigma/2
	for i := range j.TaskWork {
		j.TaskWork[i] = stream.LogNormal(mu, sigma)
	}
	return j
}
