package workload

import (
	"testing"

	"df3/internal/rng"
	"df3/internal/sim"
)

func TestFinanceGenNightlyBatches(t *testing.T) {
	e := sim.New()
	g := DefaultFinanceGen(rng.New(1), sim.JanuaryStart)
	var batches []Batch
	g.Start(e, 7*sim.Day, func(b Batch) { batches = append(batches, b) })
	e.Run(8 * sim.Day)
	// One batch per weekday: 5 in the first week (time zero is Monday).
	if len(batches) != 5 {
		t.Fatalf("%d batches, want 5 weekday runs", len(batches))
	}
	for i, b := range batches {
		if len(b.Job.TaskWork) < 2000 || len(b.Job.TaskWork) > 6000 {
			t.Errorf("batch %d has %d scenarios", i, len(b.Job.TaskWork))
		}
		// Due 12 h after submission (19:00 → 07:00).
		if b.Due <= 0 {
			t.Errorf("batch %d missing deadline", i)
		}
		for _, w := range b.Job.TaskWork {
			if w < 8*0.7 || w > 8*1.3 {
				t.Fatalf("scenario work %v out of uniform band", w)
			}
		}
	}
}

func TestFinanceGenWindow(t *testing.T) {
	g := DefaultFinanceGen(rng.New(2), sim.JanuaryStart)
	if got := g.window(); got != 12*sim.Hour {
		t.Errorf("window = %v, want 12h", got)
	}
}

func TestFinanceGenSkipsWeekends(t *testing.T) {
	e := sim.New()
	g := DefaultFinanceGen(rng.New(3), sim.JanuaryStart)
	var days []int
	g.Start(e, 14*sim.Day, func(b Batch) {
		days = append(days, int(e.Now()/sim.Day))
	})
	e.Run(15 * sim.Day)
	for _, d := range days {
		dow := d % 7
		if dow == 5 || dow == 6 {
			t.Errorf("batch submitted on weekend day %d", d)
		}
	}
	if len(days) != 10 {
		t.Errorf("%d batches over two weeks, want 10", len(days))
	}
}

func TestFinanceBatchFitsOvernight(t *testing.T) {
	// Sanity: a nightly batch (≤ 6000 × ~8 s ≈ 13.3 core-hours) fits the
	// 12 h window on a handful of cores — the sizing that makes DF fleets
	// attractive for this workload.
	g := DefaultFinanceGen(rng.New(4), sim.JanuaryStart)
	b := g.makeBatch()
	coreHours := b.TotalWork() / 3600
	if coreHours > 16 {
		t.Errorf("nightly batch is %v core-hours; sizing off", coreHours)
	}
}
