package obs

import (
	"sync"
	"sync/atomic"

	"df3/internal/sim"
	"df3/internal/trace"
)

// Sampled is a head-sampling facade over a trace.Recorder for the live
// ingest path, where the arrival names its class ("edge", "dcc") and
// tenant. BeginRoot consults the policy once, at the root: a sampled-out
// request gets span id 0, and — because the whole trace API treats id 0
// as a no-op — every child begin, end and instant downstream vanishes
// without the call sites checking anything. The decision is a
// deterministic hash, so a replayed WAL samples the same requests.
//
// Unlike the recorder it wraps, Sampled is concurrency-safe: live ingest
// begins spans on the driver goroutine (arrivals apply between slices)
// but outcome callbacks fire from whichever shard worker settles the
// request mid-window, so every span operation takes the wrapper's mutex.
// The recorder must stay private to the wrapper for that to hold.
type Sampled struct {
	mu     sync.Mutex
	rec    *trace.Recorder
	policy Policy

	admitted   atomic.Uint64
	sampledOut atomic.Uint64
}

// NewSampled wraps rec (nil is allowed: every method no-ops, mirroring
// the nil-recorder contract of the trace package).
func NewSampled(rec *trace.Recorder, policy Policy) *Sampled {
	return &Sampled{rec: rec, policy: policy}
}

// Recorder returns the wrapped recorder (nil when tracing is off). Only
// touch it when no spans can be in flight — after shutdown, for export.
func (s *Sampled) Recorder() *trace.Recorder {
	if s == nil {
		return nil
	}
	return s.rec
}

// BeginRoot opens a request root span, or returns 0 when the policy
// samples the request out.
func (s *Sampled) BeginRoot(t sim.Time, stage, class string, tenant, traceID uint64) trace.SpanID {
	if s == nil || s.rec == nil {
		return 0
	}
	if !s.policy.KeepTenant(class, tenant, traceID) {
		s.sampledOut.Add(1)
		return 0
	}
	s.admitted.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rec.BeginSpan(t, stage, traceID, 0)
}

// BeginSpan opens a child span under parent. A zero parent means the
// root was sampled out (or tracing is off), so the child is too.
func (s *Sampled) BeginSpan(t sim.Time, stage string, traceID uint64, parent trace.SpanID) trace.SpanID {
	if s == nil || s.rec == nil || parent == 0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rec.BeginSpan(t, stage, traceID, parent)
}

// EndSpan closes an open span; id 0 is a no-op.
func (s *Sampled) EndSpan(t sim.Time, id trace.SpanID) { s.EndSpanDetail(t, id, "") }

// EndSpanDetail is EndSpan with an annotation.
func (s *Sampled) EndSpanDetail(t sim.Time, id trace.SpanID, detail string) {
	if s == nil || s.rec == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rec.EndSpanDetail(t, id, detail)
}

// Instant records a point annotation under parent; sampled-out parents
// (id 0) record nothing.
func (s *Sampled) Instant(t sim.Time, stage string, traceID uint64, parent trace.SpanID, detail string) {
	if s == nil || s.rec == nil || parent == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rec.Instant(t, stage, traceID, parent, detail)
}

// Admitted returns how many roots passed sampling.
func (s *Sampled) Admitted() uint64 {
	if s == nil {
		return 0
	}
	return s.admitted.Load()
}

// SampledOut returns how many roots the policy rejected.
func (s *Sampled) SampledOut() uint64 {
	if s == nil {
		return 0
	}
	return s.sampledOut.Load()
}
