package obs

import (
	"bytes"
	"strings"
	"testing"

	df3metrics "df3/internal/metrics"
	"df3/internal/trace"
)

func TestSampledRootDecisionPropagates(t *testing.T) {
	rec := trace.NewRecorder(0)
	s := NewSampled(rec, Policy{Class: map[string]int{"edge": -1, "dcc": 1}})

	// Sampled-out root: everything downstream must vanish.
	root := s.BeginRoot(0, "ingest:edge", "edge", 3, 100)
	if root != 0 {
		t.Fatalf("edge root sampled in despite drop policy: id %d", root)
	}
	child := s.BeginSpan(1, "apply", 100, root)
	if child != 0 {
		t.Fatalf("child of sampled-out root got id %d", child)
	}
	s.Instant(1, "outcome", 100, root, "served")
	s.EndSpan(2, root)
	if got := len(rec.Spans()); got != 0 {
		t.Fatalf("recorder holds %d spans after sampled-out request", got)
	}
	if rec.UnmatchedEnds() != 0 || rec.OrphanBegins() != 0 {
		t.Fatalf("hygiene counters moved: unmatched %d orphans %d",
			rec.UnmatchedEnds(), rec.OrphanBegins())
	}

	// Admitted root: the full tree records.
	root = s.BeginRoot(0, "ingest:dcc", "dcc", 3, 101)
	if root == 0 {
		t.Fatal("dcc root sampled out despite keep policy")
	}
	child = s.BeginSpan(1, "apply", 0, root)
	s.EndSpan(2, child)
	s.Instant(2, "outcome", 0, root, "served")
	s.EndSpan(3, root)
	if got := len(rec.Spans()); got != 3 {
		t.Fatalf("recorder holds %d spans, want 3", got)
	}
	if s.Admitted() != 1 || s.SampledOut() != 1 {
		t.Errorf("admitted %d sampled-out %d, want 1 and 1", s.Admitted(), s.SampledOut())
	}
}

func TestSampledNilSafe(t *testing.T) {
	var s *Sampled
	if id := s.BeginRoot(0, "x", "edge", 1, 1); id != 0 {
		t.Fatal("nil Sampled returned a span id")
	}
	s.EndSpan(1, 0)
	s.Instant(1, "x", 0, 0, "")
	if s.Admitted() != 0 || s.SampledOut() != 0 {
		t.Fatal("nil Sampled counted something")
	}
	// Nil recorder inside a non-nil wrapper.
	s2 := NewSampled(nil, Policy{})
	if id := s2.BeginRoot(0, "x", "edge", 1, 1); id != 0 {
		t.Fatal("nil-recorder Sampled returned a span id")
	}
	if s2.Recorder() != nil {
		t.Fatal("Recorder() should be nil")
	}
}

func TestRegisterRuntimeExports(t *testing.T) {
	reg := df3metrics.NewRegistry()
	RegisterRuntime(reg)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{
		"df3_go_goroutines",
		"df3_go_heap_objects_bytes",
		"df3_go_memory_total_bytes",
		"df3_go_gc_cycles_total",
		`df3_go_gc_pause_seconds{quantile="0.99"}`,
	} {
		if !strings.Contains(out, name) {
			t.Errorf("exposition missing %s:\n%s", name, out)
		}
	}
	// A live process always has goroutines.
	parsed, err := df3metrics.ParsePrometheus(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if parsed["df3_go_goroutines"] < 1 {
		t.Errorf("df3_go_goroutines = %v, want >= 1", parsed["df3_go_goroutines"])
	}
}
