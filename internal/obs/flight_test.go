package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"df3/internal/metrics"
	"df3/internal/trace"
)

// span pushes one completed span through a recorder.
func span(r *trace.Recorder, t float64, stage string, traceID uint64) {
	id := r.BeginSpan(t, stage, traceID, 0)
	r.EndSpan(t+1, id)
}

func TestFlightRingWraparound(t *testing.T) {
	f := NewFlight(4, Policy{})
	rec := trace.NewRecorder(0)
	f.Attach("src", rec)

	for i := 0; i < 10; i++ {
		span(rec, float64(i), "stage", uint64(i+1))
	}
	snap := f.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(snap))
	}
	// The four most recent traces (7..10) survive, oldest first.
	for i, sp := range snap {
		if want := uint64(7 + i); sp.Trace != want {
			t.Errorf("snap[%d].Trace = %d, want %d", i, sp.Trace, want)
		}
		if sp.Src != "src" {
			t.Errorf("snap[%d].Src = %q", i, sp.Src)
		}
	}
	st := f.Stats()
	if len(st) != 1 {
		t.Fatalf("stats: %v", st)
	}
	if st[0].Kept != 10 || st[0].Evicted != 6 || st[0].SampledOut != 0 {
		t.Errorf("stats = %+v, want kept 10 evicted 6 sampled_out 0", st[0])
	}
}

func TestFlightSamplingDeterministicAndCounted(t *testing.T) {
	f := NewFlight(1024, Policy{Default: 4})
	rec := trace.NewRecorder(0)
	f.Attach("src", rec)

	const n = 4000
	for i := 0; i < n; i++ {
		span(rec, float64(i), "stage", uint64(i+1))
	}
	st := f.Stats()[0]
	if st.Kept+st.SampledOut != n {
		t.Fatalf("kept %d + sampled_out %d != %d", st.Kept, st.SampledOut, n)
	}
	// Hash sampling at 1-in-4 over sequential keys: expect ~n/4 within a
	// loose tolerance.
	if st.Kept < n/8 || st.Kept > n/2 {
		t.Errorf("kept %d of %d at rate 4: outside [n/8, n/2]", st.Kept, n)
	}
	// Determinism: a second identical run keeps exactly the same spans.
	f2 := NewFlight(1024, Policy{Default: 4})
	rec2 := trace.NewRecorder(0)
	f2.Attach("src", rec2)
	for i := 0; i < n; i++ {
		span(rec2, float64(i), "stage", uint64(i+1))
	}
	a, b := f.Snapshot(), f2.Snapshot()
	if len(a) != len(b) {
		t.Fatalf("reruns kept %d vs %d spans", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("span %d differs between identical runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestFlightPerClassPolicy(t *testing.T) {
	f := NewFlight(1024, Policy{Default: 1, Class: map[string]int{"noise": -1}})
	rec := trace.NewRecorder(0)
	f.Attach("src", rec)
	for i := 0; i < 50; i++ {
		span(rec, float64(i), "keepme", uint64(i+1))
		span(rec, float64(i), "noise", uint64(i+1))
	}
	for _, sp := range f.Snapshot() {
		if sp.Stage == "noise" {
			t.Fatalf("noise span retained despite drop rate: %+v", sp)
		}
	}
	st := f.Stats()[0]
	if st.Kept != 50 || st.SampledOut != 50 {
		t.Errorf("stats = %+v, want kept 50 sampled_out 50", st)
	}
}

// TestFlightConcurrentScrape exercises the lock structure under -race:
// several sources record while readers snapshot, summarize and scrape.
func TestFlightConcurrentScrape(t *testing.T) {
	f := NewFlight(64, Policy{})
	reg := metrics.NewRegistry()
	hooks := make([]func(trace.Span), 4)
	for i := range hooks {
		hooks[i] = f.Hook("src-" + string(rune('a'+i)))
	}
	f.Register(reg)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i, hook := range hooks {
		wg.Add(1)
		go func(i int, hook func(trace.Span)) {
			defer wg.Done()
			for n := 0; n < 5000; n++ {
				hook(trace.Span{ID: trace.SpanID(n + 1), Stage: "work",
					Trace: uint64(i*100000 + n), Begin: float64(n), End: float64(n + 1)})
			}
		}(i, hook)
	}
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			f.Snapshot()
			f.Summary()
			f.Stats()
			var buf bytes.Buffer
			if err := reg.WritePrometheus(&buf); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-readerDone

	if got := len(f.Snapshot()); got != 4*64 {
		t.Errorf("retained %d spans, want %d", got, 4*64)
	}
}

func TestFlightNDJSONAndSummary(t *testing.T) {
	f := NewFlight(64, Policy{})
	rec := trace.NewRecorder(0)
	f.Attach("city-0", rec)

	// One request tree: root with two children covering part of it.
	root := rec.BeginSpan(0, "request", 42, 0)
	q := rec.BeginSpan(1, "queue", 0, root)
	rec.EndSpan(3, q)
	c := rec.BeginSpan(3, "compute", 0, root)
	rec.EndSpan(9, c)
	rec.EndSpan(10, root)

	var buf bytes.Buffer
	if err := f.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("NDJSON lines = %d, want 3: %q", len(lines), buf.String())
	}
	var fs FlightSpan
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &fs); err != nil {
		t.Fatal(err)
	}
	if fs.Src != "city-0" || fs.Stage != "request" || fs.Trace != 42 {
		t.Errorf("last line = %+v, want the request root", fs)
	}

	sum := f.Summary()
	if sum.Spans != 3 {
		t.Errorf("summary spans = %d, want 3", sum.Spans)
	}
	if sum.SlowestRoot == nil || sum.SlowestRoot.Stage != "request" {
		t.Fatalf("slowest root = %+v, want request", sum.SlowestRoot)
	}
	// Critical path: request[0,1) queue[1,3) request[3,3) compute[3,9) request[9,10).
	var stages []string
	for _, seg := range sum.Critical {
		if seg.To > seg.From {
			stages = append(stages, seg.Stage)
		}
	}
	want := []string{"request", "queue", "compute", "request"}
	if len(stages) != len(want) {
		t.Fatalf("critical path stages = %v, want %v", stages, want)
	}
	for i := range want {
		if stages[i] != want[i] {
			t.Fatalf("critical path stages = %v, want %v", stages, want)
		}
	}
	if len(sum.Stages) == 0 || sum.Stages[0].Stage != "request" {
		t.Errorf("stage summary = %+v, want request first (largest total)", sum.Stages)
	}
}

func TestFlightRegisterExportsCounters(t *testing.T) {
	f := NewFlight(8, Policy{})
	rec := trace.NewRecorder(0)
	f.Attach("src", rec)
	reg := metrics.NewRegistry()
	f.Register(reg)
	span(rec, 0, "stage", 1)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`df3_flight_spans_kept_total{src="src"} 1`,
		`df3_flight_sources 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
