// Package obs is the live observability plane: an always-on flight
// recorder holding the most recent completed spans at bounded memory
// (flight.go), deterministic head-sampling policies (this file), a
// sampling span facade for live ingest (sampled.go), and a bridge from
// the Go runtime's own metrics into the df3 registry (runtime.go).
//
// Everything here is pure observation. Sampling decisions are hash-based
// — no RNG stream is consumed, no wall clock is read — so a simulation
// with the flight recorder attached is byte-identical to one without it
// (checksum-asserted in city tests).
package obs

// Policy decides which spans the flight recorder retains and which live
// ingest requests get a trace at all. Rates are "keep 1 in N": 1 keeps
// everything, 100 keeps one in a hundred, a negative rate drops the class
// outright. A zero rate means "no opinion" and defers to the next tier.
// Lookup order: Tenant override (when a tenant is known), then Class,
// then Default; an all-zero Policy keeps everything.
//
// Decisions are deterministic functions of (class, tenant, key): the same
// request sampled twice — live and on replay, or at root and at child —
// resolves identically. That is what lets sampling live outside the
// determinism boundary: it steers only what is observed, never what runs.
type Policy struct {
	// Default is the base keep-1-in-N rate.
	Default int
	// Class maps a span stage / ingest class to its own rate.
	Class map[string]int
	// Tenant overrides by tenant id — e.g. keep every span of a tenant
	// under investigation while the fleet samples 1-in-1000.
	Tenant map[uint64]int
}

// rate resolves the keep-1-in-N rate for a class, honouring a tenant
// override when one applies.
func (p Policy) rate(class string, tenant uint64, haveTenant bool) int {
	if haveTenant {
		if r, ok := p.Tenant[tenant]; ok && r != 0 {
			return r
		}
	}
	if r, ok := p.Class[class]; ok && r != 0 {
		return r
	}
	if p.Default != 0 {
		return p.Default
	}
	return 1
}

// Keep reports whether a span of the given class with correlation key
// (normally the trace id) is retained. A zero key hashes the class name
// instead, so uncorrelated spans (machine windows) still sample at the
// configured rate class-by-class rather than all-or-nothing globally.
func (p Policy) Keep(class string, key uint64) bool {
	return keepAt(p.rate(class, 0, false), class, key)
}

// KeepTenant is Keep with a tenant override consulted first — the live
// ingest path, where the arrival names its tenant.
func (p Policy) KeepTenant(class string, tenant, key uint64) bool {
	return keepAt(p.rate(class, tenant, true), class, key)
}

func keepAt(rate int, class string, key uint64) bool {
	switch {
	case rate < 0:
		return false
	case rate <= 1:
		return true
	}
	if key == 0 {
		key = hashString(class)
	}
	return mix(key)%uint64(rate) == 0
}

// hashString is FNV-1a over the class name.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix is the SplitMix64 finalizer: sequential keys (injection sequence
// numbers, tenant ids) land uniformly across residues, so "1 in N" keeps
// close to 1/N of a sequential id space instead of a single stripe.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
