package obs

import "testing"

func TestPolicyTiers(t *testing.T) {
	p := Policy{
		Default: -1, // drop unless overridden
		Class:   map[string]int{"edge": 1, "dcc": -1},
		Tenant:  map[uint64]int{7: 1},
	}
	cases := []struct {
		class  string
		tenant uint64
		key    uint64
		want   bool
	}{
		{"edge", 1, 10, true},   // class rate 1 keeps all
		{"dcc", 1, 10, false},   // class rate -1 drops all
		{"dcc", 7, 10, true},    // tenant override wins over class
		{"other", 1, 10, false}, // default -1 drops
		{"other", 7, 10, true},  // tenant override wins over default
	}
	for _, c := range cases {
		if got := p.KeepTenant(c.class, c.tenant, c.key); got != c.want {
			t.Errorf("KeepTenant(%q, %d, %d) = %v, want %v", c.class, c.tenant, c.key, got, c.want)
		}
	}
}

func TestPolicyZeroValueKeepsAll(t *testing.T) {
	var p Policy
	for key := uint64(0); key < 100; key++ {
		if !p.Keep("anything", key) {
			t.Fatalf("zero policy dropped key %d", key)
		}
	}
}

func TestPolicyDeterministicAndRoughlyUniform(t *testing.T) {
	p := Policy{Default: 10}
	kept := 0
	for key := uint64(1); key <= 10000; key++ {
		a, b := p.Keep("c", key), p.Keep("c", key)
		if a != b {
			t.Fatalf("key %d: verdict not deterministic", key)
		}
		if a {
			kept++
		}
	}
	// 1-in-10 over 10k sequential keys: expect ~1000, allow wide slack.
	if kept < 600 || kept > 1500 {
		t.Errorf("kept %d of 10000 at rate 10", kept)
	}
}

func TestPolicyZeroKeyFallsBackToClassHash(t *testing.T) {
	p := Policy{Default: 2}
	// With key 0 the verdict must still be deterministic per class.
	if p.Keep("class-a", 0) != p.Keep("class-a", 0) {
		t.Error("key-0 verdict unstable")
	}
}
