package obs

import (
	"math"
	"runtime/metrics"

	df3metrics "df3/internal/metrics"
)

// Runtime metric names bridged into the registry. Each scrape reads the
// sample fresh (runtime/metrics.Read is cheap for single samples), so the
// exposition always reflects the process now — GC pressure during WAL
// replay, goroutine growth under ingest load — without a collector
// goroutine.
const (
	rmGoroutines = "/sched/goroutines:goroutines"
	rmHeapBytes  = "/memory/classes/heap/objects:bytes"
	rmTotalBytes = "/memory/classes/total:bytes"
	rmGCCycles   = "/gc/cycles/total:gc-cycles"
	rmGCPauses   = "/gc/pauses:seconds"
)

// RegisterRuntime bridges the Go runtime's own metrics into reg under
// df3_go_* names: live goroutines, heap object bytes, total runtime
// memory, completed GC cycles, and the p50/p99/max of the GC
// stop-the-world pause distribution. These are process facts, not
// simulation facts — they sit outside the determinism boundary and are
// exported read-through, evaluated at scrape time.
func RegisterRuntime(reg *df3metrics.Registry) {
	reg.GaugeFunc("df3_go_goroutines", "live goroutines", nil,
		func() float64 { return readUint(rmGoroutines) })
	reg.GaugeFunc("df3_go_heap_objects_bytes", "bytes of live heap objects", nil,
		func() float64 { return readUint(rmHeapBytes) })
	reg.GaugeFunc("df3_go_memory_total_bytes", "total bytes of memory mapped by the Go runtime", nil,
		func() float64 { return readUint(rmTotalBytes) })
	reg.CounterFunc("df3_go_gc_cycles_total", "completed GC cycles", nil,
		func() int64 { return int64(readUint(rmGCCycles)) })
	for _, q := range []struct {
		label string
		p     float64
	}{{"0.5", 0.5}, {"0.99", 0.99}, {"1", 1}} {
		q := q
		reg.GaugeFunc("df3_go_gc_pause_seconds",
			"GC stop-the-world pause quantiles since process start",
			df3metrics.Labels{"quantile": q.label},
			func() float64 { return pauseQuantile(q.p) })
	}
}

// readUint reads one runtime metric, tolerating metrics absent from the
// running toolchain (KindBad → 0).
func readUint(name string) float64 {
	s := [1]metrics.Sample{{Name: name}}
	metrics.Read(s[:])
	if s[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return float64(s[0].Value.Uint64())
}

// pauseQuantile extracts quantile p from the runtime's GC pause
// histogram. Buckets are cumulative-counted from Counts/Buckets; the
// returned value is the upper bound of the bucket holding the quantile.
func pauseQuantile(p float64) float64 {
	s := [1]metrics.Sample{{Name: rmGCPauses}}
	metrics.Read(s[:])
	if s[0].Value.Kind() != metrics.KindFloat64Histogram {
		return 0
	}
	h := s[0].Value.Float64Histogram()
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	want := uint64(p * float64(total))
	if want >= total {
		want = total - 1
	}
	var seen uint64
	for i, c := range h.Counts {
		seen += c
		if seen > want {
			// Bucket i spans (Buckets[i], Buckets[i+1]]; report the finite
			// upper edge (the last bucket's upper edge may be +Inf — fall
			// back to its lower edge).
			up := h.Buckets[i+1]
			if math.IsInf(up, 1) {
				return h.Buckets[i]
			}
			return up
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}
