package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"df3/internal/metrics"
	"df3/internal/trace"
)

// Flight is the always-on flight recorder: a set of bounded rings, one
// per span source (one per city recorder, one for live ingest), each fed
// by a trace.Recorder sink hook. The hot path — a span completing on a
// shard worker — takes one sampling hash and one uncontended mutex; shard
// workers never share a ring, so they never contend with each other, only
// with an in-flight scrape of the same source. Readers (the /v1/traces
// handler, df3top's summary) snapshot the rings without touching the
// driver: streaming recent telemetry never stops the simulation, and
// keeps working while a recovering daemon 503s its Sync-using handlers.
type Flight struct {
	capacity int
	policy   Policy

	mu    sync.Mutex
	rings []*flightRing
}

// flightRing is one source's bounded span buffer.
type flightRing struct {
	label string

	mu      sync.Mutex
	buf     []trace.Span
	head    int
	kept    uint64
	evicted uint64

	sampledOut atomic.Uint64
}

// FlightSpan is one line of the /v1/traces NDJSON stream: a completed
// span plus the source ring it came from (span ids are only unique within
// a source).
type FlightSpan struct {
	Src string `json:"src"`
	trace.Span
}

// NewFlight returns a flight recorder whose per-source rings hold up to
// capacity spans each (minimum 1), retaining spans the policy admits.
func NewFlight(capacity int, policy Policy) *Flight {
	if capacity < 1 {
		capacity = 1
	}
	return &Flight{capacity: capacity, policy: policy}
}

// Hook registers a new span source and returns the sink to install with
// trace.Recorder.SetSink. Each source gets its own ring and label.
func (f *Flight) Hook(label string) func(trace.Span) {
	s := &flightRing{label: label, buf: make([]trace.Span, 0, f.capacity)}
	f.mu.Lock()
	f.rings = append(f.rings, s)
	f.mu.Unlock()
	return func(sp trace.Span) {
		if !f.policy.Keep(sp.Stage, sp.Trace) {
			s.sampledOut.Add(1)
			return
		}
		s.mu.Lock()
		if len(s.buf) == cap(s.buf) {
			s.buf[s.head] = sp
			s.head++
			if s.head == cap(s.buf) {
				s.head = 0
			}
			s.evicted++
		} else {
			s.buf = append(s.buf, sp)
		}
		s.kept++
		s.mu.Unlock()
	}
}

// Attach is Hook plus the SetSink call.
func (f *Flight) Attach(label string, r *trace.Recorder) {
	r.SetSink(f.Hook(label))
}

// snapshot copies one ring in completion order.
func (s *flightRing) snapshot() []trace.Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]trace.Span, 0, len(s.buf))
	out = append(out, s.buf[s.head:]...)
	return append(out, s.buf[:s.head]...)
}

// Snapshot returns the retained spans of every source, ordered
// deterministically by (End, Begin, Src, ID).
func (f *Flight) Snapshot() []FlightSpan {
	f.mu.Lock()
	rings := append([]*flightRing(nil), f.rings...)
	f.mu.Unlock()
	var out []FlightSpan
	for _, s := range rings {
		for _, sp := range s.snapshot() {
			out = append(out, FlightSpan{Src: s.label, Span: sp})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.End != b.End {
			return a.End < b.End
		}
		if a.Begin != b.Begin {
			return a.Begin < b.Begin
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.ID < b.ID
	})
	return out
}

// WriteNDJSON streams the current snapshot, one FlightSpan per line —
// the GET /v1/traces body.
func (f *Flight) WriteNDJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, sp := range f.Snapshot() {
		if err := enc.Encode(sp); err != nil {
			return err
		}
	}
	return nil
}

// SinkStats is one source's bookkeeping: spans admitted into the ring,
// spans the policy sampled out, and ring evictions (admitted but since
// overwritten). Kept − Evicted spans are currently retained.
type SinkStats struct {
	Src        string `json:"src"`
	Kept       uint64 `json:"kept"`
	SampledOut uint64 `json:"sampled_out"`
	Evicted    uint64 `json:"evicted"`
}

// Stats returns per-source counters in Hook registration order.
func (f *Flight) Stats() []SinkStats {
	f.mu.Lock()
	rings := append([]*flightRing(nil), f.rings...)
	f.mu.Unlock()
	out := make([]SinkStats, 0, len(rings))
	for _, s := range rings {
		s.mu.Lock()
		st := SinkStats{Src: s.label, Kept: s.kept, Evicted: s.evicted}
		s.mu.Unlock()
		st.SampledOut = s.sampledOut.Load()
		out = append(out, st)
	}
	return out
}

// FlightSummary is the online roll-up of the recorder's current window:
// per-stage latency statistics plus the critical path of the slowest
// retained root span — computed from the rings alone, without stopping
// the driver.
type FlightSummary struct {
	Spans  int                  `json:"spans"`
	Stages []trace.StageSummary `json:"stages"`
	// SlowestRoot identifies the root the critical path decomposes.
	SlowestRoot *FlightSpan     `json:"slowest_root,omitempty"`
	Critical    []trace.PathSeg `json:"critical_path,omitempty"`
	Sinks       []SinkStats     `json:"sinks"`
}

// Summary computes the online FlightSummary. The critical path is taken
// within the slowest root's own source ring (span ids are per-source);
// children the ring has already evicted simply shorten the path.
func (f *Flight) Summary() FlightSummary {
	f.mu.Lock()
	rings := append([]*flightRing(nil), f.rings...)
	f.mu.Unlock()

	var all []trace.Span
	var slowest *FlightSpan
	var slowestRing []trace.Span
	for _, s := range rings {
		spans := s.snapshot()
		all = append(all, spans...)
		// Roots sorts by descending duration; only each ring's slowest
		// competes.
		if roots := trace.Roots(spans); len(roots) > 0 {
			root := roots[0]
			if slowest == nil ||
				root.Duration() > slowest.Duration() ||
				(root.Duration() == slowest.Duration() && s.label < slowest.Src) {
				slowest = &FlightSpan{Src: s.label, Span: root}
				slowestRing = spans
			}
		}
	}
	sum := FlightSummary{
		Spans:  len(all),
		Stages: trace.SummarizeStages(all),
		Sinks:  f.Stats(),
	}
	if slowest != nil {
		sum.SlowestRoot = slowest
		sum.Critical = trace.CriticalPath(slowestRing, slowest.ID)
	}
	return sum
}

// Register exposes the recorder's health through the metrics registry:
// per-source kept/sampled-out/evicted counters and the source count. Call
// after every Hook has been registered (df3d does so post-build); sources
// hooked later are still recorded, just not individually exported.
func (f *Flight) Register(reg *metrics.Registry) {
	f.mu.Lock()
	rings := append([]*flightRing(nil), f.rings...)
	f.mu.Unlock()
	reg.GaugeFunc("df3_flight_sources", "flight recorder span sources", nil,
		func() float64 {
			f.mu.Lock()
			defer f.mu.Unlock()
			return float64(len(f.rings))
		})
	reg.GaugeFunc("df3_flight_ring_capacity", "per-source span ring bound", nil,
		func() float64 { return float64(f.capacity) })
	for _, s := range rings {
		s := s
		lbl := metrics.Labels{"src": s.label}
		reg.CounterFunc("df3_flight_spans_kept_total", "spans admitted into the flight ring", lbl,
			func() int64 {
				s.mu.Lock()
				defer s.mu.Unlock()
				return int64(s.kept)
			})
		reg.CounterFunc("df3_flight_spans_sampled_out_total", "spans rejected by the sampling policy", lbl,
			func() int64 { return int64(s.sampledOut.Load()) })
		reg.CounterFunc("df3_flight_spans_evicted_total", "admitted spans overwritten by newer ones", lbl,
			func() int64 {
				s.mu.Lock()
				defer s.mu.Unlock()
				return int64(s.evicted)
			})
	}
}
