package offload

import (
	"testing"
	"testing/quick"
)

var all = []Policy{RejectPolicy{}, DelayPolicy{}, PreemptPolicy{},
	VerticalPolicy{}, HorizontalPolicy{}, Smart{}}

func TestEveryPolicyRunsWhenFree(t *testing.T) {
	c := Context{FreeSlots: 3}
	for _, p := range all {
		if got := p.Decide(c); got != Run {
			t.Errorf("%s with free slots decided %v", p.Name(), got)
		}
	}
}

func TestRejectPolicy(t *testing.T) {
	if got := (RejectPolicy{}).Decide(Context{}); got != Reject {
		t.Errorf("full cluster -> %v", got)
	}
}

func TestDelayPolicy(t *testing.T) {
	p := DelayPolicy{}
	if got := p.Decide(Context{QueueCap: 2, QueueLen: 1}); got != Queue {
		t.Errorf("room in queue -> %v", got)
	}
	if got := p.Decide(Context{QueueCap: 2, QueueLen: 2}); got != Reject {
		t.Errorf("full queue -> %v", got)
	}
	if got := p.Decide(Context{}); got != Queue {
		t.Errorf("unbounded queue -> %v", got)
	}
}

func TestPreemptPolicy(t *testing.T) {
	p := PreemptPolicy{}
	if got := p.Decide(Context{CanPreempt: true}); got != Preempt {
		t.Errorf("victim available -> %v", got)
	}
	if got := p.Decide(Context{CanPreempt: false}); got != Queue {
		t.Errorf("no victim -> %v", got)
	}
}

func TestVerticalPolicy(t *testing.T) {
	p := VerticalPolicy{}
	if got := p.Decide(Context{Slack: 0.5, VerticalRTT: 0.07}); got != Vertical {
		t.Errorf("enough slack -> %v", got)
	}
	if got := p.Decide(Context{Slack: 0.05, VerticalRTT: 0.07}); got != Queue {
		t.Errorf("too little slack -> %v", got)
	}
}

func TestHorizontalPolicy(t *testing.T) {
	p := HorizontalPolicy{}
	base := Context{NeighborFree: 2, Slack: 0.5, HorizontalRTT: 0.01}
	if got := p.Decide(base); got != Horizontal {
		t.Errorf("neighbour free -> %v", got)
	}
	c := base
	c.Forwarded = true
	if got := p.Decide(c); got != Queue {
		t.Errorf("already forwarded -> %v (must not ping-pong)", got)
	}
	c = base
	c.NeighborFree = 0
	if got := p.Decide(c); got != Queue {
		t.Errorf("neighbour full -> %v", got)
	}
}

func TestSmartPreference(t *testing.T) {
	s := Smart{}
	// Preempt beats horizontal beats vertical.
	c := Context{CanPreempt: true, NeighborFree: 5, Slack: 1, HorizontalRTT: 0.01, VerticalRTT: 0.07}
	if got := s.Decide(c); got != Preempt {
		t.Errorf("smart with victim -> %v", got)
	}
	c.CanPreempt = false
	if got := s.Decide(c); got != Horizontal {
		t.Errorf("smart without victim -> %v", got)
	}
	c.NeighborFree = 0
	if got := s.Decide(c); got != Vertical {
		t.Errorf("smart without neighbour -> %v", got)
	}
	c.Slack = 0.01 // below both RTTs: nothing remote can help
	if got := s.Decide(c); got != Queue {
		t.Errorf("smart with no slack -> %v", got)
	}
	c.QueueCap = 1
	c.QueueLen = 1
	if got := s.Decide(c); got != Reject {
		t.Errorf("smart with full queue -> %v", got)
	}
}

func TestNamesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range all {
		if seen[p.Name()] {
			t.Errorf("duplicate policy name %q", p.Name())
		}
		seen[p.Name()] = true
	}
}

// Property: no policy ever forwards a request that was already forwarded
// (hop limit), and every decision is a valid Action.
func TestNoPingPongProperty(t *testing.T) {
	f := func(free, qlen uint8, slack float64, canPreempt bool, nfree uint8) bool {
		c := Context{
			FreeSlots:     int(free % 4),
			QueueLen:      int(qlen),
			Slack:         slack,
			CanPreempt:    canPreempt,
			NeighborFree:  int(nfree % 4),
			HorizontalRTT: 0.01,
			VerticalRTT:   0.07,
			Forwarded:     true,
		}
		for _, p := range all {
			a := p.Decide(c)
			if a == Horizontal {
				return false
			}
			if a < Run || a > Reject {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
