package offload_test

import (
	"fmt"

	"df3/internal/offload"
)

// ExampleSmart walks the decision ladder of the paper's §III-B automated
// system on a saturated cluster.
func ExampleSmart() {
	s := offload.Smart{}
	base := offload.Context{
		FreeSlots:     0,
		Slack:         0.4,
		HorizontalRTT: 0.01,
		VerticalRTT:   0.07,
		QueueCap:      8,
	}

	withVictim := base
	withVictim.CanPreempt = true
	fmt.Println("victim available:", s.Decide(withVictim))

	withNeighbor := base
	withNeighbor.NeighborFree = 4
	fmt.Println("neighbour free:", s.Decide(withNeighbor))

	fmt.Println("only the datacenter left:", s.Decide(base))

	tight := base
	tight.Slack = 0.01
	fmt.Println("no slack for the WAN:", s.Decide(tight))
	// Output:
	// victim available: preempt
	// neighbour free: horizontal
	// only the datacenter left: vertical
	// no slack for the WAN: queue
}
