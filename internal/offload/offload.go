// Package offload implements the peak-management decision policies of
// §III-B: when an edge request arrives and "the cluster is full", the
// gateway can reject it, delay it, preempt DCC work [14], offload
// vertically to the datacenter, or offload horizontally to a neighbouring
// cluster [15][16]. The paper recommends "to modelize the computational
// problem as a decision problem that can be solved by an automated
// system" — Smart is that automated decision system; the pure policies
// exist as experiment arms and ablations.
//
// Policies are pure decision functions over a Context snapshot, so they are
// trivially unit-testable and the middleware stays free of policy logic.
package offload

import "df3/internal/sim"

// Action is the gateway's decision for one edge request.
type Action int

const (
	// Run places the request on a local worker immediately.
	Run Action = iota
	// Queue delays the request in the local edge queue.
	Queue
	// Preempt evicts a DCC task from a local worker and runs there.
	Preempt
	// Horizontal forwards to a neighbouring cluster's edge gateway.
	Horizontal
	// Vertical forwards to the remote datacenter.
	Vertical
	// Reject drops the request.
	Reject
)

func (a Action) String() string {
	switch a {
	case Run:
		return "run"
	case Queue:
		return "queue"
	case Preempt:
		return "preempt"
	case Horizontal:
		return "horizontal"
	case Vertical:
		return "vertical"
	default:
		return "reject"
	}
}

// Context is the gateway's view when deciding.
type Context struct {
	// FreeSlots is the number of local worker slots able to run now.
	FreeSlots int
	// QueueLen and QueueCap describe the local edge queue (cap 0 =
	// unbounded).
	QueueLen, QueueCap int
	// Slack is the request's remaining latency budget after subtracting
	// its expected local execution time.
	Slack sim.Time
	// CanPreempt reports whether a DCC victim exists on a local worker.
	CanPreempt bool
	// NeighborFree is the best neighbour cluster's free slot count.
	NeighborFree int
	// HorizontalRTT is the round-trip to that neighbour.
	HorizontalRTT sim.Time
	// VerticalRTT is the round-trip to the datacenter.
	VerticalRTT sim.Time
	// Forwarded marks requests that already took a horizontal hop; they
	// must not be forwarded again (hop limit 1, which keeps the
	// cooperation model of [16] analysable).
	Forwarded bool
}

// queueHasRoom reports whether the local queue can absorb the request.
func (c Context) queueHasRoom() bool {
	return c.QueueCap == 0 || c.QueueLen < c.QueueCap
}

// Policy decides the action for one request.
type Policy interface {
	Decide(c Context) Action
	Name() string
}

// RejectPolicy drops anything that cannot run immediately.
type RejectPolicy struct{}

// Decide implements Policy.
func (RejectPolicy) Decide(c Context) Action {
	if c.FreeSlots > 0 {
		return Run
	}
	return Reject
}

// Name implements Policy.
func (RejectPolicy) Name() string { return "reject" }

// DelayPolicy queues and waits — "decide not to scale but to delay the
// processing" (§III-B).
type DelayPolicy struct{}

// Decide implements Policy.
func (DelayPolicy) Decide(c Context) Action {
	if c.FreeSlots > 0 {
		return Run
	}
	if c.queueHasRoom() {
		return Queue
	}
	return Reject
}

// Name implements Policy.
func (DelayPolicy) Name() string { return "delay" }

// PreemptPolicy evicts DCC work to make room, queueing when no victim
// exists.
type PreemptPolicy struct{}

// Decide implements Policy.
func (PreemptPolicy) Decide(c Context) Action {
	if c.FreeSlots > 0 {
		return Run
	}
	if c.CanPreempt {
		return Preempt
	}
	if c.queueHasRoom() {
		return Queue
	}
	return Reject
}

// Name implements Policy.
func (PreemptPolicy) Name() string { return "preempt" }

// VerticalPolicy sends overflow to the datacenter when the latency budget
// allows, queueing otherwise.
type VerticalPolicy struct{}

// Decide implements Policy.
func (VerticalPolicy) Decide(c Context) Action {
	if c.FreeSlots > 0 {
		return Run
	}
	if c.Slack > c.VerticalRTT {
		return Vertical
	}
	if c.queueHasRoom() {
		return Queue
	}
	return Reject
}

// Name implements Policy.
func (VerticalPolicy) Name() string { return "vertical" }

// HorizontalPolicy sends overflow to the best neighbour cluster when it has
// room and the budget allows, queueing otherwise.
type HorizontalPolicy struct{}

// Decide implements Policy.
func (HorizontalPolicy) Decide(c Context) Action {
	if c.FreeSlots > 0 {
		return Run
	}
	if !c.Forwarded && c.NeighborFree > 0 && c.Slack > c.HorizontalRTT {
		return Horizontal
	}
	if c.queueHasRoom() {
		return Queue
	}
	return Reject
}

// Name implements Policy.
func (HorizontalPolicy) Name() string { return "horizontal" }

// Smart is the paper's recommended automated decision system: run locally
// when possible; otherwise prefer the cheapest action that can still meet
// the deadline — preempt (no network cost), then horizontal (metro RTT),
// then vertical (Internet RTT), then queue, then reject.
type Smart struct{}

// Decide implements Policy.
func (Smart) Decide(c Context) Action {
	if c.FreeSlots > 0 {
		return Run
	}
	if c.CanPreempt {
		return Preempt
	}
	if !c.Forwarded && c.NeighborFree > 0 && c.Slack > c.HorizontalRTT {
		return Horizontal
	}
	if c.Slack > c.VerticalRTT {
		return Vertical
	}
	if c.queueHasRoom() && c.Slack > 0 {
		return Queue
	}
	if c.queueHasRoom() {
		return Queue
	}
	return Reject
}

// Name implements Policy.
func (Smart) Name() string { return "smart" }
