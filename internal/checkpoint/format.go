// Package checkpoint implements crash-safe snapshots of df3 simulations:
// a versioned, CRC-protected binary container plus the domain logic that
// captures a city.Federation into it and verifies a rebuilt federation
// against it.
//
// df3 snapshots are *logical*. A Go closure — and the event heap is a heap
// of closures — cannot be serialised, so no byte-level heap dump exists.
// Instead the determinism contract (everything downstream of the seed,
// enforced by df3lint) makes simulation state a pure function of (build
// recipe, external-input log), and a checkpoint seals exactly that recipe
// together with the state's fingerprints: per-engine clocks, sequence
// counters, fired counts and heap digests, the shard partition, and the
// federation checksum. Restore re-executes the recipe and then *proves*
// bit-for-bit equivalence against the fingerprints before the run is
// allowed to continue — a continuation from a verified restore is
// byte-identical to the uninterrupted run, the same equivalence bar the
// sharded kernel holds against serial execution.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// File container layout (all integers little-endian):
//
//	magic   [8]byte  "DF3CKPT\n"
//	version uint32
//	count   uint32                   number of sections
//	count × section:
//	    kind   uint32
//	    length uint64                payload bytes
//	    crc    uint32                CRC-32 (IEEE) of the payload
//	    payload [length]byte
//	footer  uint32                   CRC-32 (IEEE) of everything before it
//
// Per-section CRCs localise corruption ("the engines section is bad");
// the footer CRC catches truncation after the last section and any damage
// to the framing itself.

// Magic identifies a df3 checkpoint file.
var Magic = [8]byte{'D', 'F', '3', 'C', 'K', 'P', 'T', '\n'}

// FormatVersion is the container version this build reads and writes.
const FormatVersion uint32 = 1

// Section kinds. Unknown kinds are preserved by the container layer so a
// newer writer's optional sections don't break an older reader.
const (
	// SectionMeta carries the fixed-size Meta block.
	SectionMeta uint32 = 1
	// SectionConfig carries the caller-opaque build recipe (df3d and
	// df3bench store JSON; the container does not interpret it).
	SectionConfig uint32 = 2
	// SectionEngines carries the per-city sim.EngineState array.
	SectionEngines uint32 = 3
	// SectionPartition carries the city→shard assignment.
	SectionPartition uint32 = 4
)

// Errors the reader distinguishes. ErrTruncated means the file ends
// mid-structure (a crash during the checkpoint write itself); ErrCorrupt
// means the bytes are complete but wrong (bit rot, torn overwrite). Both
// mean "try an older checkpoint".
var (
	ErrTruncated = errors.New("checkpoint: truncated file")
	ErrCorrupt   = errors.New("checkpoint: corrupt file")
)

// Section is one length-prefixed, CRC-protected payload.
type Section struct {
	Kind uint32
	Data []byte
}

// writeContainer emits sections in order with framing and CRCs.
func writeContainer(w io.Writer, sections []Section) error {
	crc := crc32.NewIEEE()
	out := io.MultiWriter(w, crc)
	if _, err := out.Write(Magic[:]); err != nil {
		return err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], FormatVersion)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(sections)))
	if _, err := out.Write(hdr[:8]); err != nil {
		return err
	}
	for _, s := range sections {
		var sh [16]byte
		binary.LittleEndian.PutUint32(sh[0:4], s.Kind)
		binary.LittleEndian.PutUint64(sh[4:12], uint64(len(s.Data)))
		binary.LittleEndian.PutUint32(sh[12:16], crc32.ChecksumIEEE(s.Data))
		if _, err := out.Write(sh[:]); err != nil {
			return err
		}
		if _, err := out.Write(s.Data); err != nil {
			return err
		}
	}
	var foot [4]byte
	binary.LittleEndian.PutUint32(foot[:], crc.Sum32())
	_, err := w.Write(foot[:])
	return err
}

// readContainer parses and validates a container, returning its sections.
func readContainer(r io.Reader) ([]Section, error) {
	crc := crc32.NewIEEE()
	tee := io.TeeReader(r, crc)
	var magic [8]byte
	if _, err := io.ReadFull(tee, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: missing magic: %v", ErrTruncated, err)
	}
	if magic != Magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, magic[:])
	}
	var hdr [8]byte
	if _, err := io.ReadFull(tee, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: missing header: %v", ErrTruncated, err)
	}
	version := binary.LittleEndian.Uint32(hdr[0:4])
	if version != FormatVersion {
		return nil, fmt.Errorf("%w: format version %d, this build reads %d", ErrCorrupt, version, FormatVersion)
	}
	count := binary.LittleEndian.Uint32(hdr[4:8])
	const maxSections = 1 << 10
	if count > maxSections {
		return nil, fmt.Errorf("%w: implausible section count %d", ErrCorrupt, count)
	}
	sections := make([]Section, 0, count)
	for i := uint32(0); i < count; i++ {
		var sh [16]byte
		if _, err := io.ReadFull(tee, sh[:]); err != nil {
			return nil, fmt.Errorf("%w: section %d header: %v", ErrTruncated, i, err)
		}
		kind := binary.LittleEndian.Uint32(sh[0:4])
		length := binary.LittleEndian.Uint64(sh[4:12])
		want := binary.LittleEndian.Uint32(sh[12:16])
		const maxSection = 1 << 32
		if length > maxSection {
			return nil, fmt.Errorf("%w: section %d claims %d bytes", ErrCorrupt, i, length)
		}
		// Copy rather than pre-allocate: a corrupt length field must fail
		// at EOF, not commit gigabytes up front.
		var payload bytes.Buffer
		if _, err := io.CopyN(&payload, tee, int64(length)); err != nil {
			return nil, fmt.Errorf("%w: section %d payload: %v", ErrTruncated, i, err)
		}
		data := payload.Bytes()
		if got := crc32.ChecksumIEEE(data); got != want {
			return nil, fmt.Errorf("%w: section %d (kind %d) CRC %#x, want %#x", ErrCorrupt, i, kind, got, want)
		}
		sections = append(sections, Section{Kind: kind, Data: data})
	}
	sum := crc.Sum32() // everything framed so far, before the footer
	var foot [4]byte
	if _, err := io.ReadFull(r, foot[:]); err != nil {
		return nil, fmt.Errorf("%w: missing footer: %v", ErrTruncated, err)
	}
	if got := binary.LittleEndian.Uint32(foot[:]); got != sum {
		return nil, fmt.Errorf("%w: footer CRC %#x, want %#x", ErrCorrupt, got, sum)
	}
	return sections, nil
}

// binWriter appends fixed-width little-endian values to a buffer.
type binWriter struct{ buf []byte }

func (b *binWriter) u32(v uint32) {
	b.buf = binary.LittleEndian.AppendUint32(b.buf, v)
}
func (b *binWriter) u64(v uint64) {
	b.buf = binary.LittleEndian.AppendUint64(b.buf, v)
}
func (b *binWriter) i64(v int64)   { b.u64(uint64(v)) }
func (b *binWriter) f64(v float64) { b.u64(math.Float64bits(v)) }

// binReader consumes fixed-width little-endian values from a buffer.
type binReader struct {
	buf []byte
	err error
}

func (b *binReader) take(n int) []byte {
	if b.err != nil {
		return nil
	}
	if len(b.buf) < n {
		b.err = fmt.Errorf("%w: section payload short by %d bytes", ErrCorrupt, n-len(b.buf))
		return nil
	}
	out := b.buf[:n]
	b.buf = b.buf[n:]
	return out
}

func (b *binReader) u32() uint32 {
	if p := b.take(4); p != nil {
		return binary.LittleEndian.Uint32(p)
	}
	return 0
}

func (b *binReader) u64() uint64 {
	if p := b.take(8); p != nil {
		return binary.LittleEndian.Uint64(p)
	}
	return 0
}

func (b *binReader) i64() int64     { return int64(b.u64()) }
func (b *binReader) f64() float64   { return math.Float64frombits(b.u64()) }
func (b *binReader) leftover() bool { return b.err == nil && len(b.buf) != 0 }
