package checkpoint

import (
	"fmt"
	"io"

	"df3/internal/city"
	"df3/internal/sim"
)

// Meta is the fixed-size header block of a snapshot. The statefp
// contract keeps Encode and Read covering every field, so a new header
// field cannot ship with a reader that silently drops it.
//
//df3:statefp df3/internal/checkpoint.Snapshot.Encode df3/internal/checkpoint.Read
type Meta struct {
	// SimTime is the federation clock at capture.
	SimTime sim.Time
	// Checksum is Federation.Checksum at SimTime — the one-number summary
	// a restore must reproduce.
	Checksum uint64
	// NextSeq is the injection sequence counter the serving plane resumes
	// at (0 for batch runs, which have no external inputs).
	NextSeq uint64
	// WALOffset is the durable arrival-log length, in bytes, this snapshot
	// covers: everything before it was flushed and fsynced before the
	// snapshot was written, so recovery replays the log to WALOffset and
	// treats only the suffix as a possibly-torn crash tail.
	WALOffset int64
	// Horizon is the run's simulated end, so a resumed batch run knows
	// where the original was headed.
	Horizon sim.Time
	// Cities and Shards describe the federation shape (redundant with the
	// config recipe, but cheap to validate before a full rebuild).
	Cities, Shards int
}

// Snapshot is one decoded checkpoint.
type Snapshot struct {
	Meta Meta
	// Config is the caller-opaque build recipe (df3d and df3bench store
	// JSON). A restore must rebuild from a byte-identical recipe; Verify
	// checks it when the caller passes the current recipe.
	Config []byte
	// Engines is the per-city (per-shard LP) engine state, in city order.
	Engines []sim.EngineState
	// Partition is the city→shard assignment — the merge metadata that
	// makes per-shard snapshots compose deterministically.
	Partition []int
}

// Snapshotter is anything that can capture itself into a snapshot — the
// live serving plane implements it under its driver mutex, the batch
// long-run loop between Run segments.
type Snapshotter interface {
	Snapshot() (*Snapshot, error)
}

// Capture snapshots a quiescent federation. The caller supplies the parts
// the federation cannot know: its own build recipe and the serving-plane
// cursors (NextSeq, WALOffset, Horizon) already filled into meta; SimTime,
// Checksum, Cities, Shards and the state sections are read from f.
func Capture(f *city.Federation, meta Meta, config []byte) *Snapshot {
	meta.SimTime = f.Now()
	meta.Checksum = f.Checksum()
	meta.Cities = len(f.Cities)
	meta.Shards = f.Kernel.Shards()
	return &Snapshot{
		Meta:      meta,
		Config:    append([]byte(nil), config...),
		Engines:   f.EngineStates(),
		Partition: f.Partition(),
	}
}

// Verify proves a rebuilt-and-replayed federation reached exactly the
// snapshotted state: shape, partition, every engine's kernel state, and
// the federation checksum. config, when non-nil, must match the recipe
// sealed in the snapshot. Any divergence is fatal for a restore —
// continuing would silently fork history.
func Verify(f *city.Federation, s *Snapshot, config []byte) error {
	if config != nil && string(config) != string(s.Config) {
		return fmt.Errorf("checkpoint: build recipe mismatch: snapshot sealed %s, rebuilding with %s", s.Config, config)
	}
	if got := len(f.Cities); got != s.Meta.Cities {
		return fmt.Errorf("checkpoint: rebuilt federation has %d cities, snapshot %d", got, s.Meta.Cities)
	}
	if got := f.Kernel.Shards(); got != s.Meta.Shards {
		return fmt.Errorf("checkpoint: rebuilt federation has %d shards, snapshot %d", got, s.Meta.Shards)
	}
	part := f.Partition()
	if len(part) != len(s.Partition) {
		return fmt.Errorf("checkpoint: partition length %d, snapshot %d", len(part), len(s.Partition))
	}
	for i := range part {
		if part[i] != s.Partition[i] {
			return fmt.Errorf("checkpoint: city %d on shard %d, snapshot had shard %d", i, part[i], s.Partition[i])
		}
	}
	if got := f.Now(); got != s.Meta.SimTime {
		return fmt.Errorf("checkpoint: rebuilt federation at sim time %v, snapshot at %v", got, s.Meta.SimTime)
	}
	if err := f.RestoreEngineStates(s.Engines); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if got := f.Checksum(); got != s.Meta.Checksum {
		return fmt.Errorf("checkpoint: rebuilt checksum %#x, snapshot %#x", got, s.Meta.Checksum)
	}
	return nil
}

// Encode writes the snapshot as one container.
func (s *Snapshot) Encode(w io.Writer) error {
	var meta binWriter
	meta.f64(float64(s.Meta.SimTime))
	meta.u64(s.Meta.Checksum)
	meta.u64(s.Meta.NextSeq)
	meta.i64(s.Meta.WALOffset)
	meta.f64(float64(s.Meta.Horizon))
	meta.u32(uint32(s.Meta.Cities))
	meta.u32(uint32(s.Meta.Shards))

	var eng binWriter
	eng.u32(uint32(len(s.Engines)))
	for _, e := range s.Engines {
		eng.f64(float64(e.Now))
		eng.u64(e.Seq)
		eng.u64(e.Fired)
		eng.u64(uint64(e.Pending))
		eng.u64(e.HeapDigest)
	}

	var part binWriter
	part.u32(uint32(len(s.Partition)))
	for _, p := range s.Partition {
		part.u32(uint32(p))
	}

	return writeContainer(w, []Section{
		{Kind: SectionMeta, Data: meta.buf},
		{Kind: SectionConfig, Data: s.Config},
		{Kind: SectionEngines, Data: eng.buf},
		{Kind: SectionPartition, Data: part.buf},
	})
}

// Read parses and validates one snapshot.
func Read(r io.Reader) (*Snapshot, error) {
	sections, err := readContainer(r)
	if err != nil {
		return nil, err
	}
	s := &Snapshot{}
	var haveMeta, haveEngines, havePartition bool
	for _, sec := range sections {
		switch sec.Kind {
		case SectionMeta:
			br := binReader{buf: sec.Data}
			s.Meta.SimTime = sim.Time(br.f64())
			s.Meta.Checksum = br.u64()
			s.Meta.NextSeq = br.u64()
			s.Meta.WALOffset = br.i64()
			s.Meta.Horizon = sim.Time(br.f64())
			s.Meta.Cities = int(br.u32())
			s.Meta.Shards = int(br.u32())
			if br.err != nil {
				return nil, fmt.Errorf("meta section: %w", br.err)
			}
			if br.leftover() {
				return nil, fmt.Errorf("%w: meta section has %d trailing bytes", ErrCorrupt, len(br.buf))
			}
			haveMeta = true
		case SectionConfig:
			s.Config = sec.Data
		case SectionEngines:
			br := binReader{buf: sec.Data}
			n := int(br.u32())
			const maxEngines = 1 << 24
			if br.err == nil && n > maxEngines {
				return nil, fmt.Errorf("%w: engines section claims %d engines", ErrCorrupt, n)
			}
			for i := 0; i < n && br.err == nil; i++ {
				s.Engines = append(s.Engines, sim.EngineState{
					Now:        sim.Time(br.f64()),
					Seq:        br.u64(),
					Fired:      br.u64(),
					Pending:    int(br.u64()),
					HeapDigest: br.u64(),
				})
			}
			if br.err != nil {
				return nil, fmt.Errorf("engines section: %w", br.err)
			}
			if br.leftover() {
				return nil, fmt.Errorf("%w: engines section has %d trailing bytes", ErrCorrupt, len(br.buf))
			}
			haveEngines = true
		case SectionPartition:
			br := binReader{buf: sec.Data}
			n := int(br.u32())
			const maxCities = 1 << 24
			if br.err == nil && n > maxCities {
				return nil, fmt.Errorf("%w: partition section claims %d cities", ErrCorrupt, n)
			}
			for i := 0; i < n && br.err == nil; i++ {
				s.Partition = append(s.Partition, int(br.u32()))
			}
			if br.err != nil {
				return nil, fmt.Errorf("partition section: %w", br.err)
			}
			havePartition = true
		default:
			// Unknown optional section from a newer writer: skip.
		}
	}
	if !haveMeta || !haveEngines || !havePartition {
		return nil, fmt.Errorf("%w: missing required section (meta %v, engines %v, partition %v)",
			ErrCorrupt, haveMeta, haveEngines, havePartition)
	}
	if len(s.Engines) != s.Meta.Cities {
		return nil, fmt.Errorf("%w: %d engine states for %d cities", ErrCorrupt, len(s.Engines), s.Meta.Cities)
	}
	if len(s.Partition) != s.Meta.Cities {
		return nil, fmt.Errorf("%w: partition covers %d of %d cities", ErrCorrupt, len(s.Partition), s.Meta.Cities)
	}
	return s, nil
}
