package checkpoint

import (
	"bytes"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"testing"

	"df3/internal/city"
	"df3/internal/sim"
)

// buildSmall constructs the federation every checkpoint test replays
// against: identical arguments build identical federations.
func buildSmall(cities, shards int) *city.Federation {
	cfg := city.DefaultConfig()
	cfg.Buildings = 2
	cfg.RoomsPerBuilding = 3
	cfg.DatacenterNodes = 2
	return city.BuildFederation(city.FederationConfig{
		Seed: 11, Cities: cities, Shards: shards, City: cfg,
	})
}

// startTraffic arms the deterministic workload to the horizon. Traffic
// arming is part of the build recipe: a resumed run must arm with the same
// horizon before fast-forwarding.
func startTraffic(f *city.Federation, horizon sim.Time) {
	f.StartEdgeTraffic(horizon, 0.5)
	f.StartDCCTraffic(horizon, 2)
	f.StartInterCityDCC(horizon, 2)
}

// TestSnapshotRoundTrip: encode/decode preserves every field bit for bit.
func TestSnapshotRoundTrip(t *testing.T) {
	f := buildSmall(3, 2)
	startTraffic(f, 4*sim.Hour)
	f.Run(2 * sim.Hour)
	snap := Capture(f, Meta{NextSeq: 42, WALOffset: 1234, Horizon: 4 * sim.Hour}, []byte(`{"recipe":1}`))

	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.Meta != snap.Meta {
		t.Fatalf("meta round-trip:\n got %+v\nwant %+v", got.Meta, snap.Meta)
	}
	if string(got.Config) != string(snap.Config) {
		t.Fatalf("config round-trip: %q != %q", got.Config, snap.Config)
	}
	if len(got.Engines) != len(snap.Engines) {
		t.Fatalf("engines: %d != %d", len(got.Engines), len(snap.Engines))
	}
	for i := range got.Engines {
		if got.Engines[i] != snap.Engines[i] {
			t.Fatalf("engine %d: %+v != %+v", i, got.Engines[i], snap.Engines[i])
		}
	}
	for i := range got.Partition {
		if got.Partition[i] != snap.Partition[i] {
			t.Fatalf("partition %d: %d != %d", i, got.Partition[i], snap.Partition[i])
		}
	}
}

// TestContainerRejectsDamage: every byte flip is caught, and truncation at
// any prefix is ErrTruncated or ErrCorrupt — never a silent success.
func TestContainerRejectsDamage(t *testing.T) {
	f := buildSmall(2, 1)
	startTraffic(f, sim.Hour)
	f.Run(sim.Hour)
	snap := Capture(f, Meta{}, []byte("cfg"))
	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	for i := 0; i < len(raw); i++ {
		damaged := append([]byte(nil), raw...)
		damaged[i] ^= 0x80
		if _, err := Read(bytes.NewReader(damaged)); err == nil {
			t.Fatalf("bit flip at byte %d of %d accepted", i, len(raw))
		}
	}
	for _, cut := range []int{0, 4, len(raw) / 2, len(raw) - 1} {
		_, err := Read(bytes.NewReader(raw[:cut]))
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d: err %v, want ErrTruncated/ErrCorrupt", cut, err)
		}
	}
}

// resumeEquivalence runs the acceptance bar at one shard count: a run
// checkpointed at T and resumed (rebuild, re-arm, fast-forward, verify,
// continue) reaches a Federation.Checksum byte-identical to the
// uninterrupted run.
func resumeEquivalence(t *testing.T, shards int) {
	t.Helper()
	const (
		ckptAt  = 2 * sim.Hour
		horizon = 6 * sim.Hour
	)
	recipe := []byte(`{"cities":4,"shards":?}`)

	// Uninterrupted reference.
	ref := buildSmall(4, shards)
	startTraffic(ref, horizon)
	ref.Run(horizon)
	want := ref.Checksum()
	if ref.Summarize().EdgeServed == 0 {
		t.Fatal("reference served nothing; equivalence is vacuous")
	}

	// Run A: checkpoint mid-flight (the "crashing" process).
	a := buildSmall(4, shards)
	startTraffic(a, horizon)
	a.Run(ckptAt)
	snap := Capture(a, Meta{Horizon: horizon}, recipe)
	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		t.Fatal(err)
	}

	// Run B: restore — rebuild, re-arm, fast-forward to T, verify, continue.
	loaded, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	b := buildSmall(4, shards)
	startTraffic(b, loaded.Meta.Horizon)
	b.Run(loaded.Meta.SimTime)
	if err := Verify(b, loaded, recipe); err != nil {
		t.Fatalf("verify after fast-forward: %v", err)
	}
	b.Run(loaded.Meta.Horizon)
	if got := b.Checksum(); got != want {
		t.Fatalf("resumed checksum %#x != uninterrupted %#x", got, want)
	}
}

func TestResumeChecksumSerial(t *testing.T)  { resumeEquivalence(t, 1) }
func TestResumeChecksumSharded(t *testing.T) { resumeEquivalence(t, 2) }

// TestVerifyCatchesDivergence: a federation replayed to the wrong instant,
// or built from a different recipe, is rejected.
func TestVerifyCatchesDivergence(t *testing.T) {
	const horizon = 4 * sim.Hour
	f := buildSmall(3, 2)
	startTraffic(f, horizon)
	f.Run(2 * sim.Hour)
	snap := Capture(f, Meta{Horizon: horizon}, []byte("recipe-a"))

	short := buildSmall(3, 2)
	startTraffic(short, horizon)
	short.Run(sim.Hour)
	if err := Verify(short, snap, nil); err == nil {
		t.Fatal("under-replayed federation accepted")
	}
	if err := Verify(short, snap, []byte("recipe-b")); err == nil {
		t.Fatal("recipe mismatch accepted")
	}
	wrongShape := buildSmall(2, 2)
	if err := Verify(wrongShape, snap, nil); err == nil {
		t.Fatal("wrong city count accepted")
	}

	exact := buildSmall(3, 2)
	startTraffic(exact, horizon)
	exact.Run(2 * sim.Hour)
	if err := Verify(exact, snap, []byte("recipe-a")); err != nil {
		t.Fatalf("exact twin rejected: %v", err)
	}
}

// TestWriteAtomicLatest: the newest valid file wins; corrupt newer files
// are skipped and reported; an empty dir is fs.ErrNotExist.
func TestWriteAtomicLatest(t *testing.T) {
	dir := t.TempDir()
	if _, _, _, err := Latest(dir); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("empty dir: err %v, want fs.ErrNotExist", err)
	}

	f := buildSmall(2, 1)
	startTraffic(f, 4*sim.Hour)
	f.Run(sim.Hour)
	if _, err := WriteAtomic(dir, Capture(f, Meta{}, nil)); err != nil {
		t.Fatal(err)
	}
	f.Run(2 * sim.Hour)
	second := Capture(f, Meta{}, nil)
	p2, err := WriteAtomic(dir, second)
	if err != nil {
		t.Fatal(err)
	}

	got, path, skipped, err := Latest(dir)
	if err != nil || path != p2 || len(skipped) != 0 {
		t.Fatalf("Latest: path %q skipped %v err %v, want %q", path, skipped, err, p2)
	}
	if got.Meta.Checksum != second.Meta.Checksum {
		t.Fatalf("Latest returned the wrong snapshot")
	}

	// Corrupt the newest: Latest falls back to the older one.
	raw, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(p2, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	got, path, skipped, err = Latest(dir)
	if err != nil {
		t.Fatalf("Latest after corruption: %v", err)
	}
	if filepath.Base(path) == filepath.Base(p2) || len(skipped) != 1 {
		t.Fatalf("corrupt newest not skipped: path %q skipped %v", path, skipped)
	}
	if got.Meta.SimTime != sim.Hour {
		t.Fatalf("fell back to snapshot at %v, want %v", got.Meta.SimTime, sim.Time(sim.Hour))
	}
}
