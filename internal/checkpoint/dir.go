package checkpoint

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Checkpoint files are named ck-<sim seconds, zero-padded>.df3ck so a
// lexicographic sort is a sim-time sort. The zero-padding covers sim times
// up to 10^12 s (≈ 31700 years), far past any scenario horizon.

// FileExt is the checkpoint file extension.
const FileExt = ".df3ck"

// FileName returns the canonical name for a snapshot at sim time t.
func FileName(t float64) string {
	return fmt.Sprintf("ck-%013.0f%s", t, FileExt)
}

// WriteAtomic durably stores a snapshot in dir: write to a temp file,
// fsync it, rename into place, fsync the directory. A crash at any point
// leaves either the previous state or a complete, valid new file — never
// a half-written checkpoint under the canonical name (half-written temp
// files are invisible to Latest and harmless).
func WriteAtomic(dir string, s *Snapshot) (path string, err error) {
	path = filepath.Join(dir, FileName(float64(s.Meta.SimTime)))
	tmp, err := os.CreateTemp(dir, "ck-*.tmp")
	if err != nil {
		return "", err
	}
	defer func() {
		if err != nil {
			os.Remove(tmp.Name())
		}
	}()
	if err = s.Encode(tmp); err != nil {
		tmp.Close()
		return "", err
	}
	if err = tmp.Sync(); err != nil {
		tmp.Close()
		return "", err
	}
	if err = tmp.Close(); err != nil {
		return "", err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return "", err
	}
	if d, derr := os.Open(dir); derr == nil {
		// Directory fsync makes the rename itself durable; best-effort on
		// filesystems that refuse it.
		_ = d.Sync()
		_ = d.Close()
	}
	return path, nil
}

// Latest returns the newest valid snapshot in dir, its path, and the list
// of checkpoint files that were skipped as truncated or corrupt (newest
// first). A missing or empty directory returns fs.ErrNotExist.
func Latest(dir string) (s *Snapshot, path string, skipped []string, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, "", nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), "ck-") && strings.HasSuffix(e.Name(), FileExt) {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, "", nil, fmt.Errorf("no checkpoints in %s: %w", dir, fs.ErrNotExist)
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	for _, name := range names {
		p := filepath.Join(dir, name)
		snap, rerr := readFile(p)
		if rerr != nil {
			if errors.Is(rerr, ErrCorrupt) || errors.Is(rerr, ErrTruncated) {
				skipped = append(skipped, name)
				continue
			}
			return nil, "", skipped, rerr
		}
		return snap, p, skipped, nil
	}
	return nil, "", skipped, fmt.Errorf("all %d checkpoints in %s invalid: %w", len(names), dir, ErrCorrupt)
}

// ReadFile loads one snapshot from disk.
func ReadFile(path string) (*Snapshot, error) { return readFile(path) }

func readFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
