// Package cache implements the byte-budgeted LRU cache that DF3 edge
// gateways use for the §II-A "low-bandwidth neighborhood applications":
// map tiles, TV segments and other content that a neighbourhood requests
// over and over. Serving the popular head from the gateway keeps the
// response on the building LAN and takes the traffic off the Internet
// backhaul — the content-delivery half of the edge argument (the paper's
// §V nod to CDN infrastructure).
package cache

import (
	"container/list"

	"df3/internal/units"
)

// LRU is a size-bounded least-recently-used cache keyed by uint64 (tile
// or segment ids). The zero value is unusable; use New.
type LRU struct {
	capacity units.Byte
	used     units.Byte
	order    *list.List // front = most recent
	items    map[uint64]*list.Element

	hits      int64
	misses    int64
	evictions int64
}

type entry struct {
	key  uint64
	size units.Byte
}

// New returns an empty cache with the given byte capacity. Zero capacity
// is legal and caches nothing (the E16 baseline arm).
func New(capacity units.Byte) *LRU {
	return &LRU{
		capacity: capacity,
		order:    list.New(),
		items:    map[uint64]*list.Element{},
	}
}

// Get looks the key up, promoting it on hit. It returns the stored size.
func (c *LRU) Get(key uint64) (units.Byte, bool) {
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return 0, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*entry).size, true
}

// Put inserts (or refreshes) the key with the given size, evicting the
// least-recently-used entries as needed. Objects larger than the whole
// capacity are not cached.
func (c *LRU) Put(key uint64, size units.Byte) {
	if size <= 0 || size > c.capacity {
		return
	}
	if el, ok := c.items[key]; ok {
		c.used += size - el.Value.(*entry).size
		el.Value.(*entry).size = size
		c.order.MoveToFront(el)
	} else {
		c.items[key] = c.order.PushFront(&entry{key: key, size: size})
		c.used += size
	}
	for c.used > c.capacity {
		tail := c.order.Back()
		if tail == nil {
			break
		}
		ev := tail.Value.(*entry)
		c.order.Remove(tail)
		delete(c.items, ev.key)
		c.used -= ev.size
		c.evictions++
	}
}

// Len returns the number of cached objects.
func (c *LRU) Len() int { return len(c.items) }

// Used returns the bytes currently held.
func (c *LRU) Used() units.Byte { return c.used }

// Capacity returns the byte budget.
func (c *LRU) Capacity() units.Byte { return c.capacity }

// Hits, Misses and Evictions expose the counters.
func (c *LRU) Hits() int64      { return c.hits }
func (c *LRU) Misses() int64    { return c.misses }
func (c *LRU) Evictions() int64 { return c.evictions }

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (c *LRU) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}
