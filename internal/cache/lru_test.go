package cache

import (
	"testing"
	"testing/quick"

	"df3/internal/rng"
	"df3/internal/units"
)

func TestHitAndMiss(t *testing.T) {
	c := New(100)
	if _, ok := c.Get(1); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(1, 40)
	if sz, ok := c.Get(1); !ok || sz != 40 {
		t.Fatalf("get after put: %v %v", sz, ok)
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Errorf("counters hits=%d misses=%d", c.Hits(), c.Misses())
	}
	if c.HitRate() != 0.5 {
		t.Errorf("hit rate = %v", c.HitRate())
	}
}

func TestEvictsLRU(t *testing.T) {
	c := New(100)
	c.Put(1, 40)
	c.Put(2, 40)
	c.Get(1)     // 1 is now most recent
	c.Put(3, 40) // must evict 2
	if _, ok := c.Get(2); ok {
		t.Error("LRU entry survived eviction")
	}
	if _, ok := c.Get(1); !ok {
		t.Error("recently-used entry was evicted")
	}
	if _, ok := c.Get(3); !ok {
		t.Error("new entry missing")
	}
	if c.Evictions() != 1 {
		t.Errorf("evictions = %d", c.Evictions())
	}
}

func TestOversizedObjectNotCached(t *testing.T) {
	c := New(100)
	c.Put(1, 200)
	if c.Len() != 0 || c.Used() != 0 {
		t.Error("oversized object was cached")
	}
	c.Put(2, 0)
	if c.Len() != 0 {
		t.Error("zero-size object was cached")
	}
}

func TestRefreshChangesSize(t *testing.T) {
	c := New(100)
	c.Put(1, 30)
	c.Put(1, 60)
	if c.Used() != 60 || c.Len() != 1 {
		t.Errorf("used=%v len=%d after refresh", c.Used(), c.Len())
	}
}

func TestZeroCapacity(t *testing.T) {
	c := New(0)
	c.Put(1, 10)
	if c.Len() != 0 {
		t.Error("zero-capacity cache stored an object")
	}
	if _, ok := c.Get(1); ok {
		t.Error("zero-capacity cache hit")
	}
}

// Property: the cache never exceeds its capacity and its accounting (Used
// = Σ sizes of items) stays exact under arbitrary operation sequences.
func TestCapacityInvariantProperty(t *testing.T) {
	f := func(seed uint64, ops uint16) bool {
		s := rng.New(seed)
		c := New(units.Byte(1000))
		for i := 0; i < int(ops); i++ {
			key := uint64(s.Intn(50))
			if s.Bool(0.5) {
				c.Put(key, units.Byte(s.Intn(400)+1))
			} else {
				c.Get(key)
			}
			if c.Used() > c.Capacity() {
				return false
			}
			var sum units.Byte
			//df3:unordered-ok entry sizes are integer-valued float64s, so FP addition is exact in any order
			for _, el := range c.items {
				sum += el.Value.(*entry).size
			}
			if sum != c.Used() {
				return false
			}
			if c.order.Len() != len(c.items) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: on a Zipf stream, a cache big enough for the k most popular
// items achieves at least (roughly) the head mass of those k items.
func TestZipfHitRateMatchesHeadMass(t *testing.T) {
	s := rng.New(9)
	z := rng.NewZipf(s, 1000, 1.0)
	const objSize = 10
	const k = 100
	c := New(units.Byte(k * objSize))
	for i := 0; i < 200000; i++ {
		id := uint64(z.Draw())
		if _, ok := c.Get(id); !ok {
			c.Put(id, objSize)
		}
	}
	// LRU is not the clairvoyant most-popular cache: tail requests churn
	// it, so allow a realistic gap below the ideal head mass.
	want := z.HeadMass(k)
	if got := c.HitRate(); got < want-0.15 {
		t.Errorf("hit rate %v well below head mass %v", got, want)
	}
	if got := c.HitRate(); got > want+0.02 {
		t.Errorf("hit rate %v above the ideal bound %v — accounting bug", got, want)
	}
}
