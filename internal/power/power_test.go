package power

import (
	"math"
	"testing"
	"testing/quick"

	"df3/internal/units"
)

func TestDefaultLevelsValid(t *testing.T) {
	tab := DefaultLevels()
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	if tab.Top().Speed != 1 || tab.Top().PowerFrac != 1 {
		t.Errorf("top level = %+v", tab.Top())
	}
	if tab.Bottom().Speed >= tab.Top().Speed {
		t.Error("bottom not slower than top")
	}
}

func TestValidateRejectsBadTables(t *testing.T) {
	bad := []Table{
		{},
		{{Speed: 0, PowerFrac: 0.5}},
		{{Speed: 0.5, PowerFrac: 0.5}, {Speed: 0.4, PowerFrac: 0.8}},
		{{Speed: 0.5, PowerFrac: 0.5}}, // top speed != 1
	}
	for i, tab := range bad {
		if err := tab.Validate(); err == nil {
			t.Errorf("table %d validated but is invalid", i)
		}
	}
}

func TestForBudget(t *testing.T) {
	tab := DefaultLevels()
	// Full budget picks the top level.
	l, ok := tab.ForBudget(1.0)
	if !ok || l.Speed != 1 {
		t.Errorf("budget 1.0 -> %+v ok=%v", l, ok)
	}
	// Tiny budget cannot even run the bottom level.
	l, ok = tab.ForBudget(0.001)
	if ok {
		t.Errorf("budget 0.001 should not be satisfiable, got %+v", l)
	}
	if l.Speed != tab.Bottom().Speed {
		t.Error("unsatisfiable budget should return bottom level")
	}
	// Mid budget picks a mid level whose PowerFrac <= budget.
	l, ok = tab.ForBudget(0.5)
	if !ok || l.PowerFrac > 0.5 {
		t.Errorf("budget 0.5 -> %+v ok=%v", l, ok)
	}
}

// Property: ForBudget is monotone — a larger budget never yields a slower
// level — and the returned level respects the budget whenever ok.
func TestForBudgetMonotoneProperty(t *testing.T) {
	tab := DefaultLevels()
	f := func(a, b float64) bool {
		fa, fb := math.Abs(a), math.Abs(b)
		fa -= math.Floor(fa)
		fb -= math.Floor(fb)
		if fa > fb {
			fa, fb = fb, fa
		}
		la, oka := tab.ForBudget(fa)
		lb, okb := tab.ForBudget(fb)
		if oka && la.PowerFrac > fa {
			return false
		}
		if okb && lb.PowerFrac > fb {
			return false
		}
		return lb.Speed >= la.Speed || !oka
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func qradModel() Model {
	return Model{
		IdleW:        30,
		DynamicW:     470,
		Levels:       DefaultLevels(),
		HeatFraction: 0.95,
	}
}

func TestDrawBounds(t *testing.T) {
	m := qradModel()
	top := m.Levels.Top()
	if got := m.Draw(top, 0); got != 30 {
		t.Errorf("idle draw = %v", got)
	}
	if got := m.Draw(top, 1); got != 500 {
		t.Errorf("full draw = %v", got)
	}
	if got := m.Draw(top, 2); got != 500 { // clamped
		t.Errorf("over-utilisation draw = %v", got)
	}
	if got := m.Draw(top, -1); got != 30 { // clamped
		t.Errorf("negative-utilisation draw = %v", got)
	}
	if m.MaxDraw() != 500 {
		t.Errorf("max draw = %v", m.MaxDraw())
	}
}

func TestLowerLevelDrawsLess(t *testing.T) {
	m := qradModel()
	lo := m.Draw(m.Levels.Bottom(), 1)
	hi := m.Draw(m.Levels.Top(), 1)
	if lo >= hi {
		t.Errorf("bottom level draw %v not below top %v", lo, hi)
	}
	// Cubic law: half frequency ≈ 1/8 dynamic power.
	half, _ := m.Levels.ForBudget(0.2)
	frac := half.PowerFrac / math.Pow(half.Speed, 3)
	if math.Abs(frac-1) > 1e-9 {
		t.Errorf("power law not cubic: %v", frac)
	}
}

func TestFacilityDraw(t *testing.T) {
	dc := Model{IdleW: 100, DynamicW: 200, Levels: DefaultLevels(), CoolingOverhead: 0.5}
	top := dc.Levels.Top()
	if got := dc.FacilityDraw(top, 1); got != 450 {
		t.Errorf("facility draw = %v, want 450", got)
	}
	df := qradModel()
	if got := df.FacilityDraw(top, 1); got != df.Draw(top, 1) {
		t.Error("DF server should have no facility overhead")
	}
}

func TestMeterIntegration(t *testing.T) {
	var m Meter
	m.Update(0, 100, 150, 95)
	m.Update(10, 200, 300, 190) // first 10 s at 100/150/95 W
	m.Flush(20)                 // next 10 s at 200/300/190 W
	if got := m.ITEnergy(); got != 3000 {
		t.Errorf("IT energy = %v, want 3000 J", got)
	}
	if got := m.FacilityEnergy(); got != 4500 {
		t.Errorf("facility energy = %v, want 4500 J", got)
	}
	if got := m.UsefulHeat(); got != 2850 {
		t.Errorf("heat = %v, want 2850 J", got)
	}
	if got := m.PUE(); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("PUE = %v, want 1.5", got)
	}
}

func TestMeterPUEUndefinedAtStart(t *testing.T) {
	var m Meter
	if m.PUE() != 0 {
		t.Error("PUE before any energy should be 0")
	}
}

func TestMeterFlushIdempotent(t *testing.T) {
	var m Meter
	m.Update(0, 100, 100, 0)
	m.Flush(10)
	e := m.ITEnergy()
	m.Flush(10)
	if m.ITEnergy() != e {
		t.Error("flushing twice at the same time changed energy")
	}
}

// Property: meter energy is additive and non-decreasing under arbitrary
// positive power schedules.
func TestMeterMonotoneProperty(t *testing.T) {
	f := func(powers []uint16) bool {
		var m Meter
		t0 := 0.0
		prev := units.Joule(0)
		for _, p := range powers {
			w := units.Watt(p % 1000)
			m.Update(t0, w, w, w)
			t0 += 1
			m.Flush(t0)
			if m.ITEnergy() < prev {
				return false
			}
			prev = m.ITEnergy()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
