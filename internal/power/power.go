// Package power models processor power draw under dynamic voltage and
// frequency scaling (DVFS) and accounts fleet energy and PUE.
//
// The paper's heat regulator (§III-B) "implements a DVFS based technique to
// guarantee that the energy consumed corresponds to the heat demand" [17].
// We model a machine's CPUs as sharing one DVFS operating point; dynamic
// power follows the classic P ∝ f·V² ≈ f³ law on top of a static floor.
package power

import (
	"fmt"
	"sort"

	"df3/internal/units"
)

// Level is one DVFS operating point.
type Level struct {
	// Freq is the clock frequency.
	Freq units.Hz
	// Speed is the relative compute speed in (0,1], 1 at the top level.
	Speed float64
	// PowerFrac is the fraction of the machine's dynamic power range drawn
	// when fully loaded at this level, in (0,1].
	PowerFrac float64
}

// Table is an ordered set of DVFS levels, ascending by speed.
type Table []Level

// DefaultLevels models a 1.2–3.2 GHz mobile-class part with the cubic
// frequency-power law the DVFS literature reports for this range [17].
func DefaultLevels() Table {
	freqs := []float64{1.2e9, 1.6e9, 2.0e9, 2.4e9, 2.8e9, 3.2e9}
	t := make(Table, len(freqs))
	fmax := freqs[len(freqs)-1]
	for i, f := range freqs {
		r := f / fmax
		t[i] = Level{Freq: units.Hz(f), Speed: r, PowerFrac: r * r * r}
	}
	return t
}

// Validate checks the table is non-empty, ascending and normalised.
func (t Table) Validate() error {
	if len(t) == 0 {
		return fmt.Errorf("power: empty DVFS table")
	}
	for i, l := range t {
		if l.Speed <= 0 || l.Speed > 1 || l.PowerFrac <= 0 || l.PowerFrac > 1 {
			return fmt.Errorf("power: level %d out of range: %+v", i, l)
		}
		if i > 0 && t[i-1].Speed >= l.Speed {
			return fmt.Errorf("power: levels not ascending at %d", i)
		}
	}
	if t[len(t)-1].Speed != 1 {
		return fmt.Errorf("power: top level speed must be 1")
	}
	return nil
}

// Top returns the highest level.
func (t Table) Top() Level { return t[len(t)-1] }

// Bottom returns the lowest level.
func (t Table) Bottom() Level { return t[0] }

// ForBudget returns the highest level whose fully-loaded dynamic power
// fraction does not exceed frac, and true; if even the bottom level exceeds
// frac it returns the bottom level and false (caller should gate cores or
// power off instead).
func (t Table) ForBudget(frac float64) (Level, bool) {
	i := sort.Search(len(t), func(i int) bool { return t[i].PowerFrac > frac })
	if i == 0 {
		return t[0], false
	}
	return t[i-1], true
}

// Model is the electrical model of one machine.
type Model struct {
	// IdleW is drawn whenever the machine is powered on, at any level.
	IdleW units.Watt
	// DynamicW is the additional draw at full load on the top level; at
	// level l with utilisation u the machine draws
	// IdleW + DynamicW·l.PowerFrac·u.
	DynamicW units.Watt
	// Levels is the DVFS table.
	Levels Table
	// HeatFraction is the share of electrical power delivered as useful
	// heat to the host environment (≈0.95 for a free-cooled Q.rad; ~0 for
	// a datacenter node whose heat is rejected by chillers).
	HeatFraction float64
	// CoolingOverhead is extra facility power per compute watt (chillers,
	// fans): 0 for DF servers, ≈0.5 for a classical datacenter. This is
	// what drives PUE.
	CoolingOverhead float64
}

// Draw returns electrical power drawn by the machine proper at level l with
// core utilisation u in [0,1], excluding facility overhead.
func (m Model) Draw(l Level, u float64) units.Watt {
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	return m.IdleW + units.Watt(float64(m.DynamicW)*l.PowerFrac*u)
}

// FacilityDraw returns total power including cooling overhead.
func (m Model) FacilityDraw(l Level, u float64) units.Watt {
	return units.Watt(float64(m.Draw(l, u)) * (1 + m.CoolingOverhead))
}

// MaxDraw returns the machine's peak draw (top level, fully loaded).
func (m Model) MaxDraw() units.Watt { return m.IdleW + m.DynamicW }

// Meter integrates energy for one machine or one fleet. It assumes
// piecewise-constant power between Update calls (which the event-driven
// simulator guarantees: power only changes at events).
type Meter struct {
	lastT     float64
	lastIT    units.Watt // IT (server) power
	lastFac   units.Watt // facility power incl. cooling
	lastHeat  units.Watt // useful heat delivered
	itEnergy  units.Joule
	facEnergy units.Joule
	heat      units.Joule
	started   bool
}

// Update records that from time t onward the machine draws it/fac watts and
// delivers heat watts of useful heat. Energy is integrated since the
// previous Update.
func (e *Meter) Update(t float64, it, fac, heat units.Watt) {
	if e.started {
		dt := t - e.lastT
		e.itEnergy += units.Joule(float64(e.lastIT) * dt)
		e.facEnergy += units.Joule(float64(e.lastFac) * dt)
		e.heat += units.Joule(float64(e.lastHeat) * dt)
	}
	e.started = true
	e.lastT, e.lastIT, e.lastFac, e.lastHeat = t, it, fac, heat
}

// Flush integrates up to time t without changing the power state.
func (e *Meter) Flush(t float64) { e.Update(t, e.lastIT, e.lastFac, e.lastHeat) }

// ITEnergy returns cumulative server energy.
func (e *Meter) ITEnergy() units.Joule { return e.itEnergy }

// FacilityEnergy returns cumulative total energy including overheads.
func (e *Meter) FacilityEnergy() units.Joule { return e.facEnergy }

// UsefulHeat returns cumulative heat delivered to hosts.
func (e *Meter) UsefulHeat() units.Joule { return e.heat }

// PUE returns facility energy over IT energy — the metric behind the
// paper's "PUE of 1.026" claim (§II-A). Returns 0 before any energy flows.
func (e *Meter) PUE() float64 {
	if e.itEnergy == 0 {
		return 0
	}
	return float64(e.facEnergy) / float64(e.itEnergy)
}
