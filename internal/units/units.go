// Package units defines the physical quantities used throughout df3 and
// helpers to format them.
//
// The simulator works in SI base units: watts for power, joules for energy,
// degrees Celsius for temperature (the thermal models only ever use
// temperature differences and ambient ranges, so Celsius is safe), bytes for
// data sizes and seconds for durations (see package sim for the time type).
// Quantities are plain float64 named types so that arithmetic stays free of
// conversions while signatures remain self-documenting.
package units

import "fmt"

// Watt is electrical or thermal power in watts.
type Watt float64

// Joule is energy in joules.
type Joule float64

// Celsius is a temperature in degrees Celsius.
type Celsius float64

// Byte is a data size in bytes.
type Byte float64

// Hz is a processor frequency in hertz.
type Hz float64

// Common multiples.
const (
	KW Watt = 1e3
	MW Watt = 1e6

	KJ  Joule = 1e3
	MJ  Joule = 1e6
	GJ  Joule = 1e9
	KWh Joule = 3.6e6 // one kilowatt-hour

	KB Byte = 1e3
	MB Byte = 1e6
	GB Byte = 1e9

	MHz Hz = 1e6
	GHz Hz = 1e9
)

// WattHours converts an energy to watt-hours.
func (j Joule) WattHours() float64 { return float64(j) / 3600 }

// KWh converts an energy to kilowatt-hours.
func (j Joule) KWh() float64 { return float64(j) / float64(KWh) }

// String formats power with an adaptive unit prefix.
func (w Watt) String() string {
	switch {
	case w >= MW || w <= -MW:
		return fmt.Sprintf("%.2fMW", float64(w)/1e6)
	case w >= KW || w <= -KW:
		return fmt.Sprintf("%.2fkW", float64(w)/1e3)
	default:
		return fmt.Sprintf("%.1fW", float64(w))
	}
}

// String formats energy with an adaptive unit prefix.
func (j Joule) String() string {
	switch {
	case j >= GJ || j <= -GJ:
		return fmt.Sprintf("%.2fGJ", float64(j)/1e9)
	case j >= MJ || j <= -MJ:
		return fmt.Sprintf("%.2fMJ", float64(j)/1e6)
	case j >= KJ || j <= -KJ:
		return fmt.Sprintf("%.2fkJ", float64(j)/1e3)
	default:
		return fmt.Sprintf("%.1fJ", float64(j))
	}
}

// String formats a temperature.
func (c Celsius) String() string { return fmt.Sprintf("%.1f°C", float64(c)) }

// String formats a data size with an adaptive unit prefix.
func (b Byte) String() string {
	switch {
	case b >= GB || b <= -GB:
		return fmt.Sprintf("%.2fGB", float64(b)/1e9)
	case b >= MB || b <= -MB:
		return fmt.Sprintf("%.2fMB", float64(b)/1e6)
	case b >= KB || b <= -KB:
		return fmt.Sprintf("%.2fkB", float64(b)/1e3)
	default:
		return fmt.Sprintf("%.0fB", float64(b))
	}
}

// String formats a frequency.
func (h Hz) String() string {
	switch {
	case h >= GHz:
		return fmt.Sprintf("%.2fGHz", float64(h)/1e9)
	case h >= MHz:
		return fmt.Sprintf("%.0fMHz", float64(h)/1e6)
	default:
		return fmt.Sprintf("%.0fHz", float64(h))
	}
}

// Clamp limits v to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Lerp linearly interpolates between a and b by t in [0,1].
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }
