package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEnergyConversions(t *testing.T) {
	if got := KWh.WattHours(); got != 1000 {
		t.Errorf("1 kWh = %v Wh, want 1000", got)
	}
	if got := (2 * KWh).KWh(); got != 2 {
		t.Errorf("2 kWh round-trips to %v", got)
	}
	if got := Joule(3600).WattHours(); got != 1 {
		t.Errorf("3600 J = %v Wh, want 1", got)
	}
}

func TestPowerString(t *testing.T) {
	cases := []struct {
		in   Watt
		want string
	}{
		{500, "500.0W"},
		{20 * KW, "20.00kW"},
		{3 * MW, "3.00MW"},
		{0, "0.0W"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Watt(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestEnergyString(t *testing.T) {
	cases := []struct {
		in   Joule
		want string
	}{
		{500, "500.0J"},
		{5 * KJ, "5.00kJ"},
		{2 * MJ, "2.00MJ"},
		{7 * GJ, "7.00GJ"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Joule(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestByteString(t *testing.T) {
	cases := []struct {
		in   Byte
		want string
	}{
		{12, "12B"},
		{3 * KB, "3.00kB"},
		{4 * MB, "4.00MB"},
		{5 * GB, "5.00GB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Byte(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestHzString(t *testing.T) {
	if got := (3200 * MHz).String(); got != "3.20GHz" {
		t.Errorf("got %q", got)
	}
	if got := (800 * MHz).String(); got != "800MHz" {
		t.Errorf("got %q", got)
	}
	if got := Hz(50).String(); got != "50Hz" {
		t.Errorf("got %q", got)
	}
}

func TestCelsiusString(t *testing.T) {
	if got := Celsius(20.04).String(); got != "20.0°C" {
		t.Errorf("got %q", got)
	}
}

func TestClampBounds(t *testing.T) {
	if got := Clamp(5, 0, 1); got != 1 {
		t.Errorf("Clamp(5,0,1) = %v", got)
	}
	if got := Clamp(-5, 0, 1); got != 0 {
		t.Errorf("Clamp(-5,0,1) = %v", got)
	}
	if got := Clamp(0.5, 0, 1); got != 0.5 {
		t.Errorf("Clamp(0.5,0,1) = %v", got)
	}
}

// Property: Clamp always lands inside [lo,hi] for well-ordered bounds, and
// is the identity for in-range values.
func TestClampProperty(t *testing.T) {
	f := func(v, a, b float64) bool {
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		got := Clamp(v, lo, hi)
		if got < lo || got > hi {
			return false
		}
		if v >= lo && v <= hi && got != v {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Lerp endpoints are exact and midpoints lie between the bounds.
func TestLerpProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if a != a || b != b { // skip NaN inputs
			return true
		}
		if math.Abs(a) > 1e100 || math.Abs(b) > 1e100 {
			return true // a+(b-a) loses the endpoint in the last ulp
		}
		return Lerp(a, b, 0) == a && Lerp(a, b, 1) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	mid := Lerp(10, 20, 0.5)
	if mid != 15 {
		t.Errorf("Lerp(10,20,0.5) = %v", mid)
	}
}
