package chaoskit

import (
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestFreePort(t *testing.T) {
	p, err := FreePort()
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0 || p > 65535 {
		t.Fatalf("implausible port %d", p)
	}
	l, err := net.Listen("tcp", "127.0.0.1:"+itoa(p))
	if err != nil {
		t.Fatalf("reserved port %d not bindable: %v", p, err)
	}
	l.Close()
}

func itoa(n int) string {
	b := [8]byte{}
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestProcCaptureAndWait(t *testing.T) {
	p, err := Start("sh", "-c", "echo out-line; echo err-line >&2")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Wait(10 * time.Second); err != nil {
		t.Fatalf("wait: %v", err)
	}
	out := p.Output()
	if !strings.Contains(out, "out-line") || !strings.Contains(out, "err-line") {
		t.Fatalf("output missing streams: %q", out)
	}
}

func TestProcKill9(t *testing.T) {
	p, err := Start("sleep", "60")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Kill9(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	// Already reaped: Wait must return immediately with the kill verdict.
	err = p.Wait(time.Second)
	if err == nil || !strings.Contains(err.Error(), "killed") {
		t.Fatalf("wait after kill = %v, want signal: killed", err)
	}
}

func TestWaitReady(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/readyz" {
			http.NotFound(w, r)
			return
		}
		if calls.Add(1) < 3 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	if err := WaitReady(srv.URL, 10*time.Second); err != nil {
		t.Fatalf("server became ready but WaitReady failed: %v", err)
	}
	if n := calls.Load(); n < 3 {
		t.Fatalf("WaitReady polled %d times, want >= 3", n)
	}
}

func TestWaitReadyTimeout(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	if err := WaitReady(srv.URL, 200*time.Millisecond); err == nil {
		t.Fatal("WaitReady returned nil against a permanently recovering server")
	}
}

func TestChecksum(t *testing.T) {
	out := "df3d: signal received, draining\n# df3d federation checksum: 0xdeadbeef00000001\n# df3d final metrics snapshot\n"
	sum, ok := Checksum(out)
	if !ok || sum != "0xdeadbeef00000001" {
		t.Fatalf("Checksum = %q, %v", sum, ok)
	}
	if _, ok := Checksum("no fingerprint here"); ok {
		t.Fatal("Checksum matched output without a checksum line")
	}
}
