package chaoskit

import (
	"fmt"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildMultiNode compiles df3node and df3coord into tmp and returns
// their paths.
func buildMultiNode(t *testing.T) (df3node, df3coord string) {
	t.Helper()
	tmp := t.TempDir()
	df3node = filepath.Join(tmp, "df3node")
	df3coord = filepath.Join(tmp, "df3coord")
	for _, b := range []struct{ bin, pkg string }{
		{df3node, "df3/cmd/df3node"},
		{df3coord, "df3/cmd/df3coord"},
	} {
		cmd := exec.Command("go", "build", "-o", b.bin, b.pkg)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", b.pkg, err, out)
		}
	}
	return df3node, df3coord
}

// startWorkers boots n df3node processes on ephemeral ports and waits
// for each to accept, returning the worker addresses.
func startWorkers(t *testing.T, g *Group, df3node string, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		port, err := FreePort()
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = fmt.Sprintf("127.0.0.1:%d", port)
		if _, err := g.Start(df3node, "-addr", addrs[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i, addr := range addrs {
		if err := WaitPort(addr, 30*time.Second); err != nil {
			t.Fatalf("worker %d: %v\n%s", i, err, g.Procs()[i].Output())
		}
	}
	return addrs
}

// TestMultiNodeChecksumMatchesSerial is the cross-process determinism
// contract with real binaries: a coordinator driving two df3node worker
// processes must print byte-identical output (tables and checksum line)
// to the same coordinator running its partitions in-process.
func TestMultiNodeChecksumMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("process e2e (builds binaries, real sockets); skipped in -short")
	}
	df3node, df3coord := buildMultiNode(t)
	scenario := []string{"-cities", "4", "-days", "0.5", "-shards", "2",
		"-buildings", "3", "-rooms", "4", "-intercity", "4"}

	var g Group
	defer g.KillAll()
	addrs := startWorkers(t, &g, df3node, 2)

	coord, err := Start(df3coord, append([]string{"-workers", strings.Join(addrs, ",")}, scenario...)...)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Kill9()
	if err := coord.Wait(3 * time.Minute); err != nil {
		t.Fatalf("df3coord: %v\n%s", err, coord.Output())
	}
	if err := g.WaitAll(30 * time.Second); err != nil {
		t.Fatalf("worker exit: %v", err)
	}
	for i, p := range g.Procs() {
		if !strings.Contains(p.Output(), "clean shutdown") {
			t.Errorf("worker %d did not shut down cleanly:\n%s", i, p.Output())
		}
	}

	serial, err := Start(df3coord, append([]string{"-nodes", "2"}, scenario...)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := serial.Wait(3 * time.Minute); err != nil {
		t.Fatalf("df3coord -nodes 2: %v\n%s", err, serial.Output())
	}

	// stdout must match line for line; stderr carries wall timings and
	// worker logs and legitimately differs. Proc captures both streams,
	// so compare the deterministic subset: table lines + checksum.
	remoteSum, ok := CoordChecksum(coord.Output())
	if !ok {
		t.Fatalf("no checksum in remote output:\n%s", coord.Output())
	}
	serialSum, ok := CoordChecksum(serial.Output())
	if !ok {
		t.Fatalf("no checksum in serial output:\n%s", serial.Output())
	}
	if remoteSum != serialSum {
		t.Fatalf("remote checksum %s != serial %s\n--- remote ---\n%s\n--- serial ---\n%s",
			remoteSum, serialSum, coord.Output(), serial.Output())
	}
	for _, metric := range []string{"edge served", "dcc jobs done", "events fired", "cross-node messages"} {
		r, s := tableLine(coord.Output(), metric), tableLine(serial.Output(), metric)
		if r == "" || r != s {
			t.Errorf("table line %q: remote %q != serial %q", metric, r, s)
		}
	}
	t.Logf("2-process checksum %s matches in-process run", remoteSum)
}

// tableLine finds the first report line containing the metric name.
func tableLine(output, metric string) string {
	for _, line := range strings.Split(output, "\n") {
		if strings.Contains(line, metric) {
			return strings.TrimSpace(line)
		}
	}
	return ""
}

// TestMultiNodeWorkerDeathFailsFast: SIGKILL one worker mid-run; the
// coordinator must exit non-zero promptly (the dead TCP peer surfaces as
// a read error, not a hung barrier), and must not print a checksum.
func TestMultiNodeWorkerDeathFailsFast(t *testing.T) {
	if testing.Short() {
		t.Skip("process e2e (builds binaries, kills processes); skipped in -short")
	}
	df3node, df3coord := buildMultiNode(t)

	var g Group
	defer g.KillAll()
	// A scenario big enough to still be mid-run when the kill lands.
	addrs := startWorkers(t, &g, df3node, 2)
	coord, err := Start(df3coord, "-workers", strings.Join(addrs, ","),
		"-cities", "6", "-days", "30", "-shards", "2", "-timeout", "1m")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Kill9()

	// Wait until the run is actually underway (both workers assigned),
	// then crash one.
	deadline := wallNow().Add(30 * time.Second)
	for !strings.Contains(g.Procs()[1].Output(), "assigned") {
		if !wallNow().Before(deadline) {
			t.Fatalf("worker 1 never assigned\ncoord:\n%s\nworker:\n%s",
				coord.Output(), g.Procs()[1].Output())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := g.Procs()[1].Kill9(); err != nil {
		t.Fatal(err)
	}

	err = coord.Wait(30 * time.Second)
	if err == nil {
		t.Fatalf("coordinator exited 0 after losing a worker:\n%s", coord.Output())
	}
	if _, ok := err.(*exec.ExitError); !ok {
		t.Fatalf("coordinator did not exit on its own: %v\n%s", err, coord.Output())
	}
	if _, ok := CoordChecksum(coord.Output()); ok {
		t.Fatalf("coordinator printed a checksum for a broken run:\n%s", coord.Output())
	}
	if !strings.Contains(coord.Output(), "worker") {
		t.Errorf("failure does not name the worker:\n%s", coord.Output())
	}
}
