// Package chaoskit drives process-level crash testing: start a real
// daemon under real load, SIGKILL it mid-run, restart it, and interrogate
// what came back. The kit deliberately works at the OS boundary —
// processes, sockets, signals — because that is where crash-safety claims
// live: an in-process test cannot lose an unflushed buffer the way
// kill -9 does.
//
// Everything here runs on the wall clock by necessity; none of it feeds
// the simulation.
package chaoskit

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"
)

// wallNow is chaoskit's single sanctioned wall-clock read.
func wallNow() time.Time {
	return time.Now() //df3:allow(detrand) chaoskit kills and restarts real OS processes; wall deadlines bound the harness, never the sim
}

// lockedBuffer is a concurrency-safe output sink: the child writes from
// its own pipes while the test reads mid-run.
type lockedBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// Proc is one managed child process with combined stdout+stderr capture.
type Proc struct {
	cmd     *exec.Cmd
	out     *lockedBuffer
	waited  chan struct{}
	waitErr error // written once before waited closes
}

// Start launches the command and begins reaping it in the background.
func Start(name string, args ...string) (*Proc, error) {
	p := &Proc{out: &lockedBuffer{}, waited: make(chan struct{})}
	p.cmd = exec.Command(name, args...)
	p.cmd.Stdout = p.out
	p.cmd.Stderr = p.out
	if err := p.cmd.Start(); err != nil {
		return nil, err
	}
	go func() {
		p.waitErr = p.cmd.Wait()
		close(p.waited)
	}()
	return p, nil
}

// Kill9 delivers SIGKILL — no handlers, no drains, no flushes, the real
// crash — and reaps the child.
func (p *Proc) Kill9() error {
	if err := p.cmd.Process.Kill(); err != nil {
		return err
	}
	<-p.waited
	return nil
}

// Signal forwards sig (e.g. syscall.SIGTERM for a graceful drain).
func (p *Proc) Signal(sig os.Signal) error {
	return p.cmd.Process.Signal(sig)
}

// Wait blocks until the child exits, returning its Wait error, or fails
// after timeout with the process still running.
func (p *Proc) Wait(timeout time.Duration) error {
	select {
	case <-p.waited:
		return p.waitErr
	case <-time.After(timeout):
		return fmt.Errorf("process %d still running after %v", p.cmd.Process.Pid, timeout)
	}
}

// Output returns everything the child has written so far.
func (p *Proc) Output() string {
	return p.out.String()
}

// WaitReady polls base+"/readyz" until the server reports serving or the
// timeout passes. Connection refusals and 503s (a recovering daemon) are
// the expected states on the way up.
func WaitReady(base string, timeout time.Duration) error {
	client := &http.Client{Timeout: 2 * time.Second}
	deadline := wallNow().Add(timeout)
	for {
		resp, err := client.Get(base + "/readyz")
		if err == nil {
			code := resp.StatusCode
			_ = resp.Body.Close()
			if code == http.StatusOK {
				return nil
			}
		}
		if !wallNow().Before(deadline) {
			if err != nil {
				return fmt.Errorf("not ready after %v: %w", timeout, err)
			}
			return fmt.Errorf("not ready after %v", timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// WaitPort polls a TCP address until something accepts a connection or
// the timeout passes — the readiness probe for wire-protocol workers
// (df3node), which have no HTTP surface to GET.
func WaitPort(addr string, timeout time.Duration) error {
	deadline := wallNow().Add(timeout)
	for {
		conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err == nil {
			return conn.Close()
		}
		if !wallNow().Before(deadline) {
			return fmt.Errorf("%s not accepting after %v: %w", addr, timeout, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// Group manages a fleet of children started together — a coordinator's
// workers, typically — so a failing test can always reap everything it
// spawned.
type Group struct {
	procs []*Proc
	names []string
}

// Start launches one more member and tracks it.
func (g *Group) Start(name string, args ...string) (*Proc, error) {
	p, err := Start(name, args...)
	if err != nil {
		return nil, err
	}
	g.procs = append(g.procs, p)
	g.names = append(g.names, name)
	return p, nil
}

// Procs returns the members in start order.
func (g *Group) Procs() []*Proc { return g.procs }

// KillAll SIGKILLs and reaps every member still running; safe to defer
// alongside individual kills (killing a reaped process is a no-op error
// that is ignored).
func (g *Group) KillAll() {
	for _, p := range g.procs {
		select {
		case <-p.waited:
		default:
			_ = p.Kill9()
		}
	}
}

// WaitAll waits for every member, returning the first failure with the
// member's name and output attached.
func (g *Group) WaitAll(timeout time.Duration) error {
	for i, p := range g.procs {
		if err := p.Wait(timeout); err != nil {
			return fmt.Errorf("%s: %w\n%s", g.names[i], err, p.Output())
		}
	}
	return nil
}

// FreePort reserves an ephemeral localhost TCP port and releases it for
// the child to bind. The close-to-bind window is a real race, acceptable
// in tests.
func FreePort() (int, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	port := l.Addr().(*net.TCPAddr).Port
	return port, l.Close()
}

// Fingerprint extracts the value of the first output line with the given
// prefix — the shape of every df3 checksum line.
func Fingerprint(output, prefix string) (string, bool) {
	for _, line := range strings.Split(output, "\n") {
		if strings.HasPrefix(line, prefix) {
			return strings.TrimSpace(strings.TrimPrefix(line, prefix)), true
		}
	}
	return "", false
}

// Checksum extracts the "# df3d federation checksum:" fingerprint from a
// process's output — the one number two runs are compared by.
func Checksum(output string) (string, bool) {
	return Fingerprint(output, "# df3d federation checksum: ")
}

// CoordChecksum extracts df3coord's federation checksum line.
func CoordChecksum(output string) (string, bool) {
	return Fingerprint(output, "# df3coord federation checksum: ")
}
