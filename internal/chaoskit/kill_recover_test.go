package chaoskit

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"syscall"
	"testing"
	"time"
)

// TestKillRecoverChecksum is the process-chaos contract for the crash-safe
// serving plane, end to end with real binaries:
//
//  1. df3d -live runs with a WAL and periodic checkpoints, df3load drives
//     it with retry enabled;
//  2. df3d is SIGKILLed mid-run — no drain, no flush beyond what -wal-fsync
//     already made durable;
//  3. the restarted df3d recovers (checkpoint + WAL suffix) and keeps
//     serving the same df3load run;
//  4. after a graceful drain, the recovered federation checksum must equal
//     an offline df3d -replay of the stitched WAL — the uninterrupted
//     reference for exactly this arrival history.
func TestKillRecoverChecksum(t *testing.T) {
	if testing.Short() {
		t.Skip("process chaos e2e (builds binaries, kills processes); skipped in -short")
	}
	tmp := t.TempDir()
	df3d := filepath.Join(tmp, "df3d")
	df3load := filepath.Join(tmp, "df3load")
	for _, b := range []struct{ bin, pkg string }{
		{df3d, "df3/cmd/df3d"},
		{df3load, "df3/cmd/df3load"},
	} {
		cmd := exec.Command("go", "build", "-o", b.bin, b.pkg)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", b.pkg, err, out)
		}
	}

	port, err := FreePort()
	if err != nil {
		t.Fatal(err)
	}
	addr := fmt.Sprintf("127.0.0.1:%d", port)
	url := "http://" + addr
	wal := filepath.Join(tmp, "wal.ndjson")
	ckpt := filepath.Join(tmp, "ckpt")
	daemonArgs := []string{
		"-live", "-addr", addr, "-speed", "300", "-max-slice", "5",
		"-cities", "2", "-shards", "2", "-buildings", "2", "-rooms", "3",
		"-arrival-log", wal, "-checkpoint-dir", ckpt, "-checkpoint-every", "5",
		"-wal-fsync",
	}

	d1, err := Start(df3d, daemonArgs...)
	if err != nil {
		t.Fatal(err)
	}
	defer d1.Kill9()
	if err := WaitReady(url, 30*time.Second); err != nil {
		t.Fatalf("first df3d: %v\n%s", err, d1.Output())
	}

	load, err := Start(df3load,
		"-url", url, "-rate", "150", "-duration", "6s", "-seed", "3",
		"-retry", "-wait-ready", "30s")
	if err != nil {
		t.Fatal(err)
	}
	defer load.Kill9()

	// Let the run write at least two checkpoints before the crash, so
	// recovery has a non-trivial prefix to restore and a suffix to replay.
	for i := 0; ; i++ {
		entries, _ := os.ReadDir(ckpt)
		if len(entries) >= 2 {
			break
		}
		if i > 20000 {
			t.Fatalf("no checkpoints after 20s\n%s", d1.Output())
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(500 * time.Millisecond) // accumulate some post-checkpoint WAL suffix
	if err := d1.Kill9(); err != nil {
		t.Fatal(err)
	}

	d2, err := Start(df3d, daemonArgs...)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Kill9()
	if err := WaitReady(url, 60*time.Second); err != nil {
		t.Fatalf("restarted df3d never became ready: %v\n%s", err, d2.Output())
	}
	if out := d2.Output(); !regexp.MustCompile(`recovering`).MatchString(out) {
		t.Fatalf("restarted df3d shows no recovery banner:\n%s", out)
	}

	if err := load.Wait(60 * time.Second); err != nil {
		t.Fatalf("df3load: %v\n%s", err, load.Output())
	}

	if err := d2.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d2.Wait(30 * time.Second); err != nil {
		t.Fatalf("df3d drain: %v\n%s", err, d2.Output())
	}
	recovered, ok := Checksum(d2.Output())
	if !ok {
		t.Fatalf("no checksum line in recovered df3d output:\n%s", d2.Output())
	}

	// The recovered run's metrics must show real post-restart state: the
	// per-city served counters are rebuilt by replay plus live traffic.
	servedRe := regexp.MustCompile(`df3_city_edge_served_total\{[^}]*\} (\d+)`)
	var served int
	for _, m := range servedRe.FindAllStringSubmatch(d2.Output(), -1) {
		n, _ := strconv.Atoi(m[1])
		served += n
	}
	if served == 0 {
		t.Fatalf("recovered df3d served nothing:\n%s", d2.Output())
	}

	// Offline reference: replay the stitched WAL (pre-crash prefix + torn
	// tail + post-restart suffix) through a fresh federation.
	replay, err := Start(df3d, "-replay", wal,
		"-cities", "2", "-shards", "2", "-buildings", "2", "-rooms", "3")
	if err != nil {
		t.Fatal(err)
	}
	if err := replay.Wait(60 * time.Second); err != nil {
		t.Fatalf("df3d -replay: %v\n%s", err, replay.Output())
	}
	reference, ok := Checksum(replay.Output())
	if !ok {
		t.Fatalf("no checksum line in replay output:\n%s", replay.Output())
	}

	if recovered != reference {
		t.Fatalf("recovered checksum %s != replay reference %s\n--- recovered df3d ---\n%s\n--- replay ---\n%s",
			recovered, reference, d2.Output(), replay.Output())
	}
	t.Logf("recovered checksum %s matches offline replay (served %d, load:\n%s)", recovered, served, load.Output())
}
