package weather

import (
	"testing"
	"testing/quick"

	"df3/internal/sim"
	"df3/internal/units"
)

func TestDeterminism(t *testing.T) {
	a := New(Paris, sim.JanuaryStart, 42)
	b := New(Paris, sim.JanuaryStart, 42)
	for h := 0; h < 24*30; h++ {
		tt := sim.Time(h) * sim.Hour
		if a.OutdoorTemp(tt) != b.OutdoorTemp(tt) {
			t.Fatalf("generators with equal seed diverged at hour %d", h)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(Paris, sim.JanuaryStart, 1)
	b := New(Paris, sim.JanuaryStart, 2)
	diff := 0
	for h := 0; h < 100; h++ {
		tt := sim.Time(h) * sim.Hour
		if a.OutdoorTemp(tt) != b.OutdoorTemp(tt) {
			diff++
		}
	}
	if diff < 90 {
		t.Errorf("different seeds matched too often: only %d/100 differ", diff)
	}
}

func TestSeasonality(t *testing.T) {
	g := New(Paris, sim.JanuaryStart, 7)
	var winter, summer float64
	n := 0
	for d := 0; d < 30; d++ {
		for h := 0; h < 24; h++ {
			tw := (sim.Time(d)*24 + sim.Time(h)) * sim.Hour
			ts := tw + 181*sim.Day
			winter += float64(g.OutdoorTemp(tw))
			summer += float64(g.OutdoorTemp(ts))
			n++
		}
	}
	winter /= float64(n)
	summer /= float64(n)
	if summer-winter < 8 {
		t.Errorf("summer (%v) not clearly warmer than winter (%v)", summer, winter)
	}
}

func TestDiurnalCycle(t *testing.T) {
	// Averaged over many days, afternoons must be warmer than nights.
	g := New(Paris, sim.JanuaryStart, 8)
	var night, day float64
	const days = 60
	for d := 0; d < days; d++ {
		base := sim.Time(d) * sim.Day
		night += float64(g.OutdoorTemp(base + 3*sim.Hour))
		day += float64(g.OutdoorTemp(base + 15*sim.Hour))
	}
	if (day-night)/days < 2 {
		t.Errorf("day/night delta too small: %v", (day-night)/days)
	}
}

func TestPlausibleRange(t *testing.T) {
	g := New(Paris, sim.JanuaryStart, 9)
	for h := 0; h < 24*365; h++ {
		v := float64(g.OutdoorTemp(sim.Time(h) * sim.Hour))
		if v < -25 || v > 45 {
			t.Fatalf("implausible Paris temperature %v at hour %d", v, h)
		}
	}
}

func TestClimatesOrdered(t *testing.T) {
	mean := func(c Climate, seed uint64) float64 {
		g := New(c, sim.JanuaryStart, seed)
		sum := 0.0
		for h := 0; h < 24*365; h += 6 {
			sum += float64(g.OutdoorTemp(sim.Time(h) * sim.Hour))
		}
		return sum / float64(24*365/6)
	}
	st, pa, se := mean(Stockholm, 1), mean(Paris, 1), mean(Seville, 1)
	if !(st < pa && pa < se) {
		t.Errorf("climate means not ordered: stockholm=%v paris=%v seville=%v", st, pa, se)
	}
}

func TestConstantGenerator(t *testing.T) {
	g := Constant(20)
	for _, tt := range []sim.Time{0, sim.Hour, sim.Day, sim.Year} {
		if got := g.OutdoorTemp(tt); got < 19.99 || got > 20.01 {
			t.Errorf("constant generator returned %v at %v", got, tt)
		}
	}
}

func TestCalendarAnchor(t *testing.T) {
	// A November-anchored generator must start cold (its month-0 mean well
	// below the July mean of the same generator).
	g := New(Paris, sim.NovemberStart, 11)
	nov, jul := 0.0, 0.0
	for h := 0; h < 24*20; h++ {
		nov += float64(g.OutdoorTemp(sim.Time(h) * sim.Hour))
		jul += float64(g.OutdoorTemp(sim.Time(h)*sim.Hour + 8*sim.Month))
	}
	if jul-nov < 24*20*4 { // at least 4 degrees mean difference
		t.Errorf("November-anchored generator not colder at start: nov=%v jul=%v", nov/(24*20), jul/(24*20))
	}
}

// Property: temperature at any time within 3 years is finite and inside a
// physically sane band for every built-in climate.
func TestBoundedProperty(t *testing.T) {
	gens := []*Generator{
		New(Paris, sim.JanuaryStart, 21),
		New(Stockholm, sim.JanuaryStart, 22),
		New(Seville, sim.JanuaryStart, 23),
	}
	f := func(hours uint32) bool {
		tt := sim.Time(hours%(3*365*24)) * sim.Hour
		for _, g := range gens {
			v := float64(g.OutdoorTemp(tt))
			if v != v || v < -40 || v > 55 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: querying out of order returns the same values as querying in
// order (the lazy grid must not depend on query order).
func TestQueryOrderIndependence(t *testing.T) {
	a := New(Paris, sim.JanuaryStart, 31)
	b := New(Paris, sim.JanuaryStart, 31)
	times := []sim.Time{100 * sim.Hour, 5 * sim.Hour, 720 * sim.Hour, 5 * sim.Hour}
	var va []units.Celsius
	for _, tt := range times {
		va = append(va, a.OutdoorTemp(tt))
	}
	// Reverse order on b.
	var vb = make([]units.Celsius, len(times))
	for i := len(times) - 1; i >= 0; i-- {
		vb[i] = b.OutdoorTemp(times[i])
	}
	for i := range times {
		if va[i] != vb[i] {
			t.Errorf("query order changed value at %v: %v vs %v", times[i], va[i], vb[i])
		}
	}
}
