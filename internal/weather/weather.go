// Package weather generates synthetic outdoor climate traces.
//
// The paper's deployments (Qarnot sites, Fig. 4) sit in a Paris-like
// climate; heat demand — and therefore the compute capacity of the DF
// fleet — follows outdoor temperature. The generator combines an annual
// harmonic, a diurnal harmonic, an AR(1) noise process and occasional
// multi-day cold snaps. It is deterministic given its seed and is evaluated
// lazily on an hourly grid with linear interpolation between grid points,
// so that every consumer of the same Generator sees the same weather.
package weather

import (
	"math"

	"df3/internal/rng"
	"df3/internal/sim"
	"df3/internal/units"
)

// Climate parameterises the generator.
type Climate struct {
	// AnnualMean is the yearly mean outdoor temperature.
	AnnualMean units.Celsius
	// AnnualAmplitude is the half swing between winter and summer means.
	AnnualAmplitude float64
	// DiurnalAmplitude is the half swing between night and afternoon.
	DiurnalAmplitude float64
	// NoiseStdDev is the stationary standard deviation of the AR(1) term.
	NoiseStdDev float64
	// NoiseCorrHours is the correlation time of the AR(1) term in hours.
	NoiseCorrHours float64
	// SnapProbPerDay is the daily probability a cold snap begins.
	SnapProbPerDay float64
	// SnapDepth is the temperature drop at the centre of a snap.
	SnapDepth float64
	// SnapDays is the mean duration of a snap in days.
	SnapDays float64
}

// Paris is a climate resembling the Île-de-France deployments of the paper:
// ~12 °C annual mean, −5..35 °C extremes, occasional week-long cold snaps.
var Paris = Climate{
	AnnualMean:       12,
	AnnualAmplitude:  8,
	DiurnalAmplitude: 4,
	NoiseStdDev:      3,
	NoiseCorrHours:   36,
	SnapProbPerDay:   0.02,
	SnapDepth:        7,
	SnapDays:         4,
}

// Stockholm is a colder climate for sensitivity studies.
var Stockholm = Climate{
	AnnualMean:       7,
	AnnualAmplitude:  11,
	DiurnalAmplitude: 3,
	NoiseStdDev:      3.5,
	NoiseCorrHours:   36,
	SnapProbPerDay:   0.04,
	SnapDepth:        9,
	SnapDays:         5,
}

// Seville is a hot climate where heaters are almost never needed; it is the
// stress case for the paper's §III-C stability discussion.
var Seville = Climate{
	AnnualMean:       19,
	AnnualAmplitude:  8,
	DiurnalAmplitude: 6,
	NoiseStdDev:      2,
	NoiseCorrHours:   24,
	SnapProbPerDay:   0.005,
	SnapDepth:        4,
	SnapDays:         2,
}

// Generator produces an outdoor temperature for any simulated time.
type Generator struct {
	climate Climate
	cal     sim.Calendar
	stream  *rng.Stream

	grid []float64 // hourly noise+snap offsets, grown lazily
	ar   float64   // AR(1) state at the end of grid
	snap float64   // remaining snap hours (counts down)
}

// New returns a generator for the climate, anchored to the calendar so
// simulated time zero lands on the right season.
func New(c Climate, cal sim.Calendar, seed uint64) *Generator {
	return &Generator{climate: c, cal: cal, stream: rng.New(seed)}
}

// Climate returns the generator's climate parameters.
func (g *Generator) Climate() Climate { return g.climate }

// baseline is the deterministic harmonic part of the temperature.
func (g *Generator) baseline(t sim.Time) float64 {
	doy := g.cal.DayOfYear(t)
	hod := g.cal.HourOfDay(t)
	// Coldest around mid-January (day 15), warmest mid-July.
	annual := -g.climate.AnnualAmplitude * math.Cos(2*math.Pi*(doy-15)/365)
	// Coldest around 05:00, warmest around 15:00.
	diurnal := -g.climate.DiurnalAmplitude * math.Cos(2*math.Pi*(hod-3)/24)
	return float64(g.climate.AnnualMean) + annual + diurnal
}

// extend grows the hourly offset grid to cover index i.
func (g *Generator) extend(i int) {
	phi := math.Exp(-1 / g.climate.NoiseCorrHours)
	innov := g.climate.NoiseStdDev * math.Sqrt(1-phi*phi)
	for len(g.grid) <= i {
		g.ar = phi*g.ar + g.stream.Normal(0, innov)
		off := g.ar
		// Cold snap process, evaluated on day boundaries.
		if len(g.grid)%24 == 0 && g.snap <= 0 && g.stream.Bool(g.climate.SnapProbPerDay) {
			g.snap = math.Max(24, g.stream.Exp(1/(g.climate.SnapDays*24)))
		}
		if g.snap > 0 {
			off -= g.climate.SnapDepth
			g.snap--
		}
		g.grid = append(g.grid, off)
	}
}

// offset returns the stochastic temperature offset at time t, linearly
// interpolated between hourly grid points.
func (g *Generator) offset(t sim.Time) float64 {
	h := t / sim.Hour
	i := int(h)
	if i < 0 {
		i = 0
		h = 0
	}
	g.extend(i + 1)
	frac := h - float64(i)
	return g.grid[i]*(1-frac) + g.grid[i+1]*frac
}

// OutdoorTemp returns the outdoor temperature at simulated time t.
func (g *Generator) OutdoorTemp(t sim.Time) units.Celsius {
	return units.Celsius(g.baseline(t) + g.offset(t))
}

// Constant returns a degenerate generator pinned to a fixed temperature —
// useful in unit tests of the thermal stack.
func Constant(temp units.Celsius) *Generator {
	return &Generator{
		climate: Climate{AnnualMean: temp},
		stream:  rng.New(0),
	}
}
