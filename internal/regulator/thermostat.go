// Package regulator implements the paper's heat regulator (§III-B): the
// control loop that turns a host's comfort demand into a power budget for
// the DF server, "a DVFS based technique to guarantee that the energy
// consumed corresponds to the heat demand".
//
// Two controller families are provided — bang-bang hysteresis and a
// proportional band — plus the loops that bind a thermal zone, a weather
// generator and a machine together on the simulation engine. A boiler
// variant regulates on water-loop temperature instead of room temperature.
package regulator

import (
	"df3/internal/units"
)

// Thermostat converts (room temperature, setpoint) into the fraction of
// maximum heater power requested, in [0,1].
type Thermostat interface {
	Fraction(temp, setpoint units.Celsius) float64
}

// Hysteresis is a bang-bang controller with a symmetric deadband: full
// power below setpoint−Band, off above setpoint+Band, holding its previous
// state in between. This is the classic electric-heater thermostat and the
// ablation baseline.
type Hysteresis struct {
	Band float64
	on   bool
}

// Fraction implements Thermostat.
func (h *Hysteresis) Fraction(temp, setpoint units.Celsius) float64 {
	switch {
	case float64(temp) < float64(setpoint)-h.Band:
		h.on = true
	case float64(temp) > float64(setpoint)+h.Band:
		h.on = false
	}
	if h.on {
		return 1
	}
	return 0
}

// Proportional requests power linearly within a band around the setpoint:
// full power at setpoint−Band, zero at setpoint+Band. Combined with the
// machine's DVFS quantisation this is the paper's regulator: heat output
// tracks demand smoothly instead of slamming between 0 and 100%.
type Proportional struct {
	Band float64
}

// Fraction implements Thermostat.
func (p Proportional) Fraction(temp, setpoint units.Celsius) float64 {
	if p.Band <= 0 {
		if float64(temp) < float64(setpoint) {
			return 1
		}
		return 0
	}
	return units.Clamp((float64(setpoint)+p.Band-float64(temp))/(2*p.Band), 0, 1)
}

// PI adds an integral term to the proportional band, removing the steady
// state offset a pure P controller leaves under constant losses.
type PI struct {
	Band float64
	// Ki is the integral gain per control tick.
	Ki float64
	// IMax caps the integral contribution (anti-windup).
	IMax    float64
	integ   float64
	primedP Proportional
}

// Fraction implements Thermostat.
func (c *PI) Fraction(temp, setpoint units.Celsius) float64 {
	c.primedP.Band = c.Band
	p := c.primedP.Fraction(temp, setpoint)
	err := float64(setpoint) - float64(temp)
	c.integ += c.Ki * err
	c.integ = units.Clamp(c.integ, -c.IMax, c.IMax)
	return units.Clamp(p+c.integ, 0, 1)
}
