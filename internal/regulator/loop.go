package regulator

import (
	"df3/internal/server"
	"df3/internal/sim"
	"df3/internal/thermal"
	"df3/internal/units"
	"df3/internal/weather"
)

// HeaterLoop binds one thermal zone, one DF heater machine, a thermostat
// and a setpoint schedule into a closed control loop on the engine.
//
// Each control tick it (1) integrates the zone over the elapsed tick using
// the machine's *metered* heat (exact, since machine power is piecewise
// constant between events), (2) reads the schedule and thermostat, and
// (3) sets the machine's power budget for the next tick. When the computing
// load cannot produce the requested heat (no Internet requests — the
// paper's supply/demand mismatch, §II-C), an optional resistive backup
// element tops up the difference so comfort never depends on cloud demand.
type HeaterLoop struct {
	Zone       *thermal.Zone
	Machine    *server.Machine
	Thermostat Thermostat
	Schedule   Schedule
	Weather    *weather.Generator
	// Gains returns non-heater internal gains (occupants, sun, appliances).
	Gains func(t sim.Time) units.Watt
	// Backup enables the resistive top-up element.
	Backup bool
	// Comfort optionally accumulates comfort statistics.
	Comfort *thermal.Comfort
	// Derate, when set, scales the electrical budget (machine and
	// resistor alike) by its value in [0,1] — the §III-A smart-grid
	// demand-response hook: the grid operator asks the fleet to shed
	// load, and the room's thermal inertia rides through.
	Derate func(t sim.Time) float64

	lastHeat       units.Joule // machine meter reading at last tick
	resistorW      units.Watt  // resistor power during the current tick
	resistorEnergy units.Joule
	requested      units.Watt // last requested heat power
	sub            *sim.Sub
}

// VentCoeffWPerK is the air-exchange coefficient of an opened window.
const VentCoeffWPerK = 40.0

// VentCeiling is the temperature above which occupants start venting: a
// margin over the active setpoint, or an absolute bound when heating is
// off (setpoint 0, summer).
func VentCeiling(setpoint units.Celsius) units.Celsius {
	if setpoint <= 0 {
		return 25
	}
	return setpoint + 1.5
}

// Start begins the control loop with the given tick period (60 s is the
// reference configuration). All loops of one period share the engine's
// tick domain, so a building of rooms costs one heap event per control
// round rather than one per room.
func (h *HeaterLoop) Start(e *sim.Engine, period sim.Time) {
	if h.Gains == nil {
		h.Gains = func(sim.Time) units.Watt { return 0 }
	}
	h.Machine.FlushMeter()
	h.lastHeat = h.Machine.Meter().UsefulHeat()
	h.sub = e.Domain(period).Subscribe(func(now sim.Time) { h.tick(now, period) })
}

// Stop halts the loop.
func (h *HeaterLoop) Stop() {
	if h.sub != nil {
		h.sub.Stop()
	}
}

func (h *HeaterLoop) tick(now sim.Time, dt sim.Time) {
	// 1. Integrate the zone over the elapsed tick with the exact average
	// machine heat plus the resistor contribution chosen last tick.
	h.Machine.FlushMeter()
	heatJ := h.Machine.Meter().UsefulHeat() - h.lastHeat
	h.lastHeat = h.Machine.Meter().UsefulHeat()
	avgMachineHeat := units.Watt(float64(heatJ) / dt)
	h.resistorEnergy += units.Joule(float64(h.resistorW) * dt)
	outdoor := h.Weather.OutdoorTemp(now)
	gains := h.Gains(now)
	setpoint, occupied := h.Schedule.At(now)
	vent := thermal.VentLoss(h.Zone.Temp, VentCeiling(setpoint), outdoor, VentCoeffWPerK)
	h.Zone.Step(dt, avgMachineHeat+h.resistorW, gains-vent, outdoor)
	frac := 0.0
	if setpoint > 0 {
		frac = h.Thermostat.Fraction(h.Zone.Temp, setpoint)
	}
	derate := 1.0
	if h.Derate != nil {
		derate = units.Clamp(h.Derate(now), 0, 1)
	}
	maxHeat := float64(h.Machine.Model.MaxDraw()) * h.Machine.Model.HeatFraction
	h.requested = units.Watt(frac * maxHeat * derate)

	// 3. Apply: budget the machine; the resistor covers next tick's
	// expected shortfall between requested heat and what computing will
	// plausibly deliver (measured as what it delivers right now).
	h.Machine.SetBudget(units.Watt(frac * float64(h.Machine.Model.MaxDraw()) * derate))
	if h.Backup {
		shortfall := float64(h.requested) - float64(h.Machine.HeatOutput())
		if shortfall < 0 {
			shortfall = 0
		}
		h.resistorW = units.Watt(shortfall)
	} else {
		h.resistorW = 0
	}

	if h.Comfort != nil {
		h.Comfort.Observe(now, dt, h.Zone.Temp, setpoint, occupied && setpoint > 0)
	}
}

// Requested returns the heat power most recently requested by the host.
func (h *HeaterLoop) Requested() units.Watt { return h.requested }

// ResistorEnergy returns the cumulative backup-resistor energy — heat the
// operator had to deliver without monetising it as compute.
func (h *HeaterLoop) ResistorEnergy() units.Joule { return h.resistorEnergy }

// BoilerLoop regulates a digital boiler (§II-B2): the machine heats a water
// loop; the building draws from the loop; the regulator holds the loop near
// its target temperature. Because the buffer decouples compute from
// instantaneous room demand, a boiler sustains computing through demand
// troughs — and wastes heat if it keeps computing with no draw (§III-C).
type BoilerLoop struct {
	Loop    *thermal.WaterLoop
	Machine *server.Machine
	// Target is the loop temperature the regulator holds.
	Target units.Celsius
	// Band is the proportional band around the target.
	Band float64
	// Draw returns the building's current heat draw from the loop.
	Draw func(t sim.Time) units.Watt
	// Ambient returns the plant-room temperature.
	Ambient func(t sim.Time) units.Celsius
	// AlwaysOn keeps the machine at full budget regardless of loop
	// temperature (the "always generates heat" stress case of §III-C;
	// excess heat above MaxTemp is dumped as waste).
	AlwaysOn bool
	// Derate is the demand-response hook (see HeaterLoop.Derate).
	Derate func(t sim.Time) float64

	lastHeat units.Joule
	sub      *sim.Sub
}

// Start begins the control loop on the engine's shared tick domain.
func (b *BoilerLoop) Start(e *sim.Engine, period sim.Time) {
	if b.Ambient == nil {
		b.Ambient = func(sim.Time) units.Celsius { return 18 }
	}
	b.Machine.FlushMeter()
	b.lastHeat = b.Machine.Meter().UsefulHeat()
	b.sub = e.Domain(period).Subscribe(func(now sim.Time) { b.tick(now, period) })
}

// Stop halts the loop.
func (b *BoilerLoop) Stop() {
	if b.sub != nil {
		b.sub.Stop()
	}
}

func (b *BoilerLoop) tick(now sim.Time, dt sim.Time) {
	b.Machine.FlushMeter()
	heatJ := b.Machine.Meter().UsefulHeat() - b.lastHeat
	b.lastHeat = b.Machine.Meter().UsefulHeat()
	avgHeat := units.Watt(float64(heatJ) / dt)
	b.Loop.Step(dt, avgHeat, b.Draw(now), b.Ambient(now))

	derate := 1.0
	if b.Derate != nil {
		derate = units.Clamp(b.Derate(now), 0, 1)
	}
	if b.AlwaysOn {
		b.Machine.SetBudget(units.Watt(float64(b.Machine.Model.MaxDraw()) * derate))
		return
	}
	frac := units.Clamp((float64(b.Target)+b.Band-float64(b.Loop.Temp))/(2*b.Band), 0, 1)
	b.Machine.SetBudget(units.Watt(frac * float64(b.Machine.Model.MaxDraw()) * derate))
}
