package regulator

import (
	"df3/internal/sim"
	"df3/internal/thermal"
	"df3/internal/units"
)

// Collaborative implements the §II-C collaborative heating request: "set
// the mean temperature in rooms of an apartment to a certain value". The
// coordinator owns the zones of one dwelling and hands each room a derived
// schedule whose setpoint is biased by the dwelling-mean error, so warm
// rooms back off while cold rooms push, and the *mean* converges to the
// target even when individual rooms differ in insulation or heater size.
type Collaborative struct {
	// Target is the requested mean temperature.
	Target units.Celsius
	// MaxBias bounds how far an individual room's setpoint may be pushed
	// away from the target (default 2 K via NewCollaborative).
	MaxBias float64

	zones []*thermal.Zone
	sub   *sim.Sub
	// cached setpoint, refreshed once per control tick when bound.
	cachedAt sim.Time
	cached   units.Celsius
	bound    bool
}

// NewCollaborative returns a coordinator for the given zones.
func NewCollaborative(target units.Celsius, zones ...*thermal.Zone) *Collaborative {
	return &Collaborative{Target: target, MaxBias: 2, zones: zones}
}

// Attach adds a zone to the dwelling and returns its index for ScheduleFor.
func (c *Collaborative) Attach(z *thermal.Zone) int {
	c.zones = append(c.zones, z)
	return len(c.zones) - 1
}

// Mean returns the current mean temperature across the dwelling.
func (c *Collaborative) Mean() units.Celsius {
	if len(c.zones) == 0 {
		return 0
	}
	sum := 0.0
	for _, z := range c.zones {
		sum += float64(z.Temp)
	}
	return units.Celsius(sum / float64(len(c.zones)))
}

// Bind registers the coordinator on the engine's control tick domain:
// once per period it snapshots the dwelling-mean setpoint, and every
// room's schedule query that tick reads the snapshot. Bind before starting
// the room loops so the snapshot precedes them in the tick order. This
// turns the coordinator from O(rooms) work per schedule query (O(rooms²)
// per control round, with each room seeing a mean polluted by earlier
// rooms' partial updates) into one O(rooms) pass per round over a
// consistent temperature snapshot.
func (c *Collaborative) Bind(e *sim.Engine, period sim.Time) {
	if c.bound {
		return
	}
	c.bound = true
	c.cachedAt = -1
	c.sub = e.Domain(period).Subscribe(func(now sim.Time) {
		c.cached = c.setpoint()
		c.cachedAt = now
	})
}

// Unbind removes the coordinator from its tick domain and returns it to
// lazy per-query evaluation.
func (c *Collaborative) Unbind() {
	if c.bound {
		c.sub.Stop()
		c.sub = nil
		c.bound = false
	}
}

// setpoint derives the common room setpoint from the current mean error.
func (c *Collaborative) setpoint() units.Celsius {
	bias := units.Clamp(float64(c.Target)-float64(c.Mean()), -c.MaxBias, c.MaxBias)
	return units.Celsius(units.Clamp(float64(c.Target)+bias,
		float64(c.Target)-c.MaxBias, float64(c.Target)+c.MaxBias))
}

// ScheduleFor returns the derived schedule for zone i. Always occupied:
// collaborative requests are explicit comfort demands.
func (c *Collaborative) ScheduleFor(i int) Schedule {
	return collaborativeSchedule{coord: c, index: i}
}

type collaborativeSchedule struct {
	coord *Collaborative
	index int
}

// At implements Schedule: each room aims for the target plus the mean
// error (clamped), so the population steers its average onto the target.
// A bound coordinator serves the per-tick snapshot; an unbound one
// computes on demand.
func (s collaborativeSchedule) At(t float64) (units.Celsius, bool) {
	c := s.coord
	if c.bound && t == float64(c.cachedAt) {
		return c.cached, true
	}
	return c.setpoint(), true
}
