package regulator

import (
	"df3/internal/sim"
	"df3/internal/units"
)

// Schedule yields the active heating setpoint and whether the zone is
// occupied at a simulated time. Heating requests in the paper's first flow
// (§II-C) are exactly these setpoints.
type Schedule interface {
	At(t sim.Time) (setpoint units.Celsius, occupied bool)
}

// ConstantSchedule pins a single setpoint, always occupied. Useful in tests
// and for the always-on Fig. 4 runs.
type ConstantSchedule units.Celsius

// At implements Schedule.
func (c ConstantSchedule) At(sim.Time) (units.Celsius, bool) {
	return units.Celsius(c), true
}

// HomeSchedule models a residence: comfort temperature in the morning and
// evening, setback at night and while the household is away at work, full
// presence on weekends.
type HomeSchedule struct {
	Calendar sim.Calendar
	// Comfort is the occupied setpoint (e.g. 21 °C).
	Comfort units.Celsius
	// Setback is the night/away setpoint (e.g. 17 °C).
	Setback units.Celsius
}

// At implements Schedule.
func (h HomeSchedule) At(t sim.Time) (units.Celsius, bool) {
	hour := h.Calendar.HourOfDay(t)
	weekend := h.Calendar.IsWeekend(t)
	switch {
	case hour < 6:
		return h.Setback, true // asleep: present but setback
	case hour < 8.5:
		return h.Comfort, true // morning
	case hour < 17.5 && !weekend:
		return h.Setback, false // at work
	case hour < 23:
		return h.Comfort, true // evening / weekend day
	default:
		return h.Setback, true
	}
}

// OfficeSchedule models an office: comfort during business hours on
// weekdays, deep setback otherwise.
type OfficeSchedule struct {
	Calendar sim.Calendar
	Comfort  units.Celsius
	Setback  units.Celsius
}

// At implements Schedule.
func (o OfficeSchedule) At(t sim.Time) (units.Celsius, bool) {
	hour := o.Calendar.HourOfDay(t)
	if o.Calendar.IsWeekend(t) || hour < 7.5 || hour >= 19 {
		return o.Setback, false
	}
	return o.Comfort, true
}

// SeasonalOff wraps a schedule and disables heating (setpoint 0, treated as
// no demand) outside the heating season — the paper's §III-C point that
// summer heat demand collapses and takes DF compute capacity with it.
type SeasonalOff struct {
	Inner    Schedule
	Calendar sim.Calendar
	// FirstMonth and LastMonth bound the heating season inclusive,
	// wrapping over new year (e.g. 10..4 for October to April).
	FirstMonth, LastMonth int
}

// InSeason reports whether t falls inside the heating season.
func (s SeasonalOff) InSeason(t sim.Time) bool {
	m := s.Calendar.MonthOfYear(t)
	if s.FirstMonth <= s.LastMonth {
		return m >= s.FirstMonth && m <= s.LastMonth
	}
	return m >= s.FirstMonth || m <= s.LastMonth
}

// At implements Schedule.
func (s SeasonalOff) At(t sim.Time) (units.Celsius, bool) {
	if !s.InSeason(t) {
		return 0, false
	}
	return s.Inner.At(t)
}
