package regulator

import (
	"math"
	"testing"
	"testing/quick"

	"df3/internal/server"
	"df3/internal/sim"
	"df3/internal/thermal"
	"df3/internal/units"
	"df3/internal/weather"
)

func TestHysteresisSwitching(t *testing.T) {
	h := &Hysteresis{Band: 0.5}
	if h.Fraction(18, 20) != 1 {
		t.Error("cold room did not switch on")
	}
	// Inside the band it holds the previous state.
	if h.Fraction(20.2, 20) != 1 {
		t.Error("in-band did not hold ON state")
	}
	if h.Fraction(20.6, 20) != 0 {
		t.Error("warm room did not switch off")
	}
	if h.Fraction(19.8, 20) != 0 {
		t.Error("in-band did not hold OFF state")
	}
	if h.Fraction(19.4, 20) != 1 {
		t.Error("cold again did not switch back on")
	}
}

func TestProportionalShape(t *testing.T) {
	p := Proportional{Band: 1}
	if p.Fraction(18, 20) != 1 {
		t.Error("far below setpoint should be full power")
	}
	if p.Fraction(22, 20) != 0 {
		t.Error("far above setpoint should be zero")
	}
	if got := p.Fraction(20, 20); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("at setpoint fraction = %v, want 0.5", got)
	}
	if got := p.Fraction(19.5, 20); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("fraction = %v, want 0.75", got)
	}
}

func TestProportionalZeroBand(t *testing.T) {
	p := Proportional{}
	if p.Fraction(19, 20) != 1 || p.Fraction(21, 20) != 0 {
		t.Error("zero-band proportional should degrade to on/off")
	}
}

// Property: every thermostat returns a fraction in [0,1] and is
// monotonically non-increasing in room temperature.
func TestThermostatProperty(t *testing.T) {
	f := func(t1, t2 float64, sp float64) bool {
		a := math.Mod(math.Abs(t1), 40)
		b := math.Mod(math.Abs(t2), 40)
		if a > b {
			a, b = b, a
		}
		set := units.Celsius(15 + math.Mod(math.Abs(sp), 10))
		p := Proportional{Band: 1}
		fa, fb := p.Fraction(units.Celsius(a), set), p.Fraction(units.Celsius(b), set)
		if fa < 0 || fa > 1 || fb < 0 || fb > 1 {
			return false
		}
		return fa >= fb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPIRemovesOffset(t *testing.T) {
	// Under a constant disturbance a P controller settles below setpoint;
	// the PI controller should settle closer.
	run := func(th Thermostat) float64 {
		e := sim.New()
		m := server.QradSpec().Build(e, "m")
		zone := thermal.NewZone(thermal.Apartment)
		loop := &HeaterLoop{
			Zone: zone, Machine: m, Thermostat: th,
			Schedule: ConstantSchedule(21),
			Weather:  weather.Constant(0),
			Backup:   true,
		}
		loop.Start(e, 60)
		// Keep machine busy so compute heat is available.
		for i := 0; i < m.Cores; i++ {
			m.Start(&server.Task{Work: 1e9})
		}
		e.Run(60 * sim.Hour)
		return float64(zone.Temp)
	}
	p := run(Proportional{Band: 1})
	pi := run(&PI{Band: 1, Ki: 0.002, IMax: 0.5})
	if math.Abs(pi-21) > math.Abs(p-21)+0.05 {
		t.Errorf("PI offset (%v) worse than P offset (%v)", pi-21, p-21)
	}
}

func TestHomeScheduleShape(t *testing.T) {
	h := HomeSchedule{Calendar: sim.JanuaryStart, Comfort: 21, Setback: 17}
	// 7 am Monday: comfort, occupied.
	sp, occ := h.At(7 * sim.Hour)
	if sp != 21 || !occ {
		t.Errorf("morning = %v/%v", sp, occ)
	}
	// 1 pm Monday: away.
	sp, occ = h.At(13 * sim.Hour)
	if sp != 17 || occ {
		t.Errorf("workday = %v/%v", sp, occ)
	}
	// 1 pm Saturday: occupied comfort.
	sp, occ = h.At(5*sim.Day + 13*sim.Hour)
	if sp != 21 || !occ {
		t.Errorf("weekend = %v/%v", sp, occ)
	}
	// 2 am: setback, present.
	sp, occ = h.At(2 * sim.Hour)
	if sp != 17 || !occ {
		t.Errorf("night = %v/%v", sp, occ)
	}
}

func TestOfficeScheduleShape(t *testing.T) {
	o := OfficeSchedule{Calendar: sim.JanuaryStart, Comfort: 20, Setback: 15}
	if sp, occ := o.At(10 * sim.Hour); sp != 20 || !occ {
		t.Error("office should be at comfort on weekday morning")
	}
	if sp, occ := o.At(22 * sim.Hour); sp != 15 || occ {
		t.Error("office should set back at night")
	}
	if _, occ := o.At(5*sim.Day + 10*sim.Hour); occ {
		t.Error("office occupied on Saturday")
	}
}

func TestSeasonalOff(t *testing.T) {
	s := SeasonalOff{
		Inner:      ConstantSchedule(21),
		Calendar:   sim.JanuaryStart,
		FirstMonth: 10, LastMonth: 4,
	}
	if !s.InSeason(0) { // January
		t.Error("January should be in season")
	}
	if s.InSeason(6 * sim.Month) { // July
		t.Error("July should be out of season")
	}
	if sp, _ := s.At(6 * sim.Month); sp != 0 {
		t.Errorf("summer setpoint = %v, want 0", sp)
	}
	if sp, occ := s.At(0); sp != 21 || !occ {
		t.Error("winter setpoint should pass through")
	}
}

func TestHeaterLoopHoldsSetpoint(t *testing.T) {
	e := sim.New()
	m := server.QradSpec().Build(e, "m")
	zone := thermal.NewZone(thermal.Apartment)
	zone.Temp = 20 // heating already established; we test the hold
	comfort := thermal.NewComfort(1.5)
	loop := &HeaterLoop{
		Zone: zone, Machine: m,
		Thermostat: Proportional{Band: 0.8},
		Schedule:   ConstantSchedule(20),
		Weather:    weather.Constant(2),
		Backup:     true,
		Comfort:    comfort,
	}
	loop.Start(e, 60)
	// Saturate the machine with batch work so compute heat is available.
	for i := 0; i < m.Cores; i++ {
		m.Start(&server.Task{Work: 1e9})
	}
	e.Run(72 * sim.Hour)
	if math.Abs(float64(zone.Temp)-20) > 1.6 {
		t.Errorf("zone settled at %v, want ~20", zone.Temp)
	}
	if comfort.InBandFraction() < 0.8 {
		t.Errorf("in-band fraction = %v", comfort.InBandFraction())
	}
}

func TestHeaterLoopBackupCoversIdleMachine(t *testing.T) {
	// No computing load at all: with backup the room still reaches the
	// setpoint, and the resistor records the energy.
	e := sim.New()
	m := server.QradSpec().Build(e, "m")
	zone := thermal.NewZone(thermal.Apartment)
	loop := &HeaterLoop{
		Zone: zone, Machine: m,
		Thermostat: Proportional{Band: 0.8},
		Schedule:   ConstantSchedule(20),
		Weather:    weather.Constant(0),
		Backup:     true,
	}
	loop.Start(e, 60)
	e.Run(72 * sim.Hour)
	if float64(zone.Temp) < 18 {
		t.Errorf("backup did not keep room warm: %v", zone.Temp)
	}
	if loop.ResistorEnergy() <= 0 {
		t.Error("resistor energy not recorded")
	}
}

func TestHeaterLoopNoBackupIdleMachineStaysCold(t *testing.T) {
	e := sim.New()
	m := server.QradSpec().Build(e, "m")
	zone := thermal.NewZone(thermal.Apartment)
	zone.Temp = 10
	loop := &HeaterLoop{
		Zone: zone, Machine: m,
		Thermostat: Proportional{Band: 0.8},
		Schedule:   ConstantSchedule(20),
		Weather:    weather.Constant(0),
		Backup:     false,
	}
	loop.Start(e, 60)
	e.Run(48 * sim.Hour)
	// An idle machine draws only idle power even when budgeted: without
	// backup the room cannot reach the setpoint.
	if float64(zone.Temp) > 15 {
		t.Errorf("idle machine warmed room to %v without backup", zone.Temp)
	}
}

func TestHeaterLoopSheddingWhenWarm(t *testing.T) {
	e := sim.New()
	m := server.QradSpec().Build(e, "m")
	zone := thermal.NewZone(thermal.Apartment)
	zone.Temp = 26 // warm room: thermostat must cut the machine
	loop := &HeaterLoop{
		Zone: zone, Machine: m,
		Thermostat: Proportional{Band: 0.8},
		Schedule:   ConstantSchedule(20),
		Weather:    weather.Constant(24),
	}
	loop.Start(e, 60)
	for i := 0; i < m.Cores; i++ {
		m.Start(&server.Task{Work: 1e9})
	}
	e.Run(2 * sim.Hour)
	if m.Budget() > 0 {
		t.Errorf("machine budget = %v with a warm room", m.Budget())
	}
	if m.RunningTasks() != 0 {
		t.Error("tasks still progressing on a heat-gated machine")
	}
}

func TestBoilerLoopHoldsTarget(t *testing.T) {
	e := sim.New()
	m := server.BoilerSpec().Build(e, "boiler")
	wl := thermal.NewWaterLoop(2000)
	loop := &BoilerLoop{
		Loop: wl, Machine: m, Target: 55, Band: 5,
		Draw: func(sim.Time) units.Watt { return 8000 },
	}
	loop.Start(e, 60)
	for i := 0; i < m.Cores; i++ {
		m.Start(&server.Task{Work: 1e9})
	}
	e.Run(48 * sim.Hour)
	if math.Abs(float64(wl.Temp)-55) > 6 {
		t.Errorf("loop settled at %v, want ~55", wl.Temp)
	}
}

func TestBoilerAlwaysOnWastes(t *testing.T) {
	run := func(alwaysOn bool) units.Joule {
		e := sim.New()
		m := server.BoilerSpec().Build(e, "boiler")
		wl := thermal.NewWaterLoop(2000)
		loop := &BoilerLoop{
			Loop: wl, Machine: m, Target: 55, Band: 5,
			Draw:     func(sim.Time) units.Watt { return 0 }, // summer: no draw
			AlwaysOn: alwaysOn,
		}
		loop.Start(e, 60)
		for i := 0; i < m.Cores; i++ {
			m.Start(&server.Task{Work: 1e9})
		}
		e.Run(7 * sim.Day)
		return wl.Wasted()
	}
	regulated := run(false)
	always := run(true)
	if always <= regulated {
		t.Errorf("always-on waste (%v) not above regulated (%v)", always, regulated)
	}
	if always <= 0 {
		t.Error("always-on boiler with no draw recorded no waste")
	}
}

func TestHeaterLoopDerate(t *testing.T) {
	e := sim.New()
	m := server.QradSpec().Build(e, "m")
	zone := thermal.NewZone(thermal.OldBuilding)
	zone.Temp = 15 // far below setpoint: thermostat wants full power
	derated := false
	loop := &HeaterLoop{
		Zone: zone, Machine: m,
		Thermostat: Proportional{Band: 0.8},
		Schedule:   ConstantSchedule(21),
		Weather:    weather.Constant(0),
		Derate: func(sim.Time) float64 {
			if derated {
				return 0.2
			}
			return 1
		},
	}
	loop.Start(e, 60)
	e.Run(10 * 60)
	full := float64(m.Budget())
	if full < 400 {
		t.Fatalf("full budget = %v, want near max", full)
	}
	derated = true
	e.Run(12 * 60)
	if got := float64(m.Budget()); got > full*0.25 {
		t.Errorf("derated budget = %v, want ≤ 0.2×%v", got, full)
	}
}

func TestBoilerLoopDerate(t *testing.T) {
	e := sim.New()
	m := server.BoilerSpec().Build(e, "boiler")
	wl := thermal.NewWaterLoop(2000)
	wl.Temp = 40 // cold loop: regulator wants full power
	loop := &BoilerLoop{
		Loop: wl, Machine: m, Target: 55, Band: 5,
		Draw:   func(sim.Time) units.Watt { return 8000 },
		Derate: func(sim.Time) float64 { return 0.3 },
	}
	loop.Start(e, 60)
	e.Run(5 * 60)
	if got := float64(m.Budget()); got > 0.31*float64(m.Model.MaxDraw()) {
		t.Errorf("derated boiler budget = %v", got)
	}
}
