package regulator

import (
	"math"
	"testing"

	"df3/internal/server"
	"df3/internal/sim"
	"df3/internal/thermal"
	"df3/internal/weather"
)

func TestCollaborativeMean(t *testing.T) {
	z1 := thermal.NewZone(thermal.Apartment)
	z2 := thermal.NewZone(thermal.Apartment)
	z1.Temp, z2.Temp = 18, 22
	c := NewCollaborative(21, z1, z2)
	if got := c.Mean(); got != 20 {
		t.Errorf("mean = %v", got)
	}
}

func TestCollaborativeEmptyMean(t *testing.T) {
	c := NewCollaborative(21)
	if c.Mean() != 0 {
		t.Error("empty coordinator mean should be 0")
	}
}

func TestCollaborativeBiasDirection(t *testing.T) {
	z := thermal.NewZone(thermal.Apartment)
	z.Temp = 18 // dwelling cold: setpoints must push above target
	c := NewCollaborative(21, z)
	sp, occ := c.ScheduleFor(0).At(0)
	if !occ {
		t.Error("collaborative schedule must report occupied")
	}
	if float64(sp) <= 21 {
		t.Errorf("cold dwelling setpoint = %v, want > target", sp)
	}
	z.Temp = 24 // dwelling warm: setpoints back off
	sp, _ = c.ScheduleFor(0).At(0)
	if float64(sp) >= 21 {
		t.Errorf("warm dwelling setpoint = %v, want < target", sp)
	}
}

func TestCollaborativeBiasClamped(t *testing.T) {
	z := thermal.NewZone(thermal.Apartment)
	z.Temp = 5 // extremely cold: bias must clamp at MaxBias
	c := NewCollaborative(21, z)
	sp, _ := c.ScheduleFor(0).At(0)
	if float64(sp) > 23 {
		t.Errorf("setpoint %v exceeds target+MaxBias", sp)
	}
}

// TestCollaborativeConvergesMean drives an apartment of unequal rooms (one
// leaky, one tight) and checks the *mean* lands on target even though the
// leaky room alone would undershoot.
func TestCollaborativeConvergesMean(t *testing.T) {
	e := sim.New()
	leaky := thermal.NewZone(thermal.OldBuilding)
	tight := thermal.NewZone(thermal.Apartment)
	leaky.Temp, tight.Temp = 19, 19
	coord := NewCollaborative(21, leaky, tight)

	for i, z := range []*thermal.Zone{leaky, tight} {
		m := server.QradSpec().Build(e, "m")
		loop := &HeaterLoop{
			Zone: z, Machine: m,
			Thermostat: Proportional{Band: 0.8},
			Schedule:   coord.ScheduleFor(i),
			Weather:    weather.Constant(0),
			Backup:     true,
		}
		loop.Start(e, 60)
	}
	e.Run(72 * sim.Hour)
	if got := float64(coord.Mean()); math.Abs(got-21) > 0.8 {
		t.Errorf("dwelling mean = %v, want ~21", got)
	}
	// The tight room should run warmer than the leaky one can manage,
	// compensating for it.
	if float64(tight.Temp) < float64(leaky.Temp) {
		t.Errorf("tight room (%v) not compensating for leaky room (%v)",
			tight.Temp, leaky.Temp)
	}
}
