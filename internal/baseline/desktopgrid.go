package baseline

import (
	"fmt"

	"df3/internal/metrics"
	"df3/internal/rng"
	"df3/internal/server"
	"df3/internal/sim"
	"df3/internal/workload"
)

// GridPC is one volunteer desktop: a machine whose budget is slammed to
// zero whenever its owner is at the keyboard (BOINC-style suspension) and
// restored when they leave.
type GridPC struct {
	M *server.Machine
	// OwnerPresent mirrors the availability process.
	OwnerPresent bool
	// Interruptions counts owner arrivals that suspended running work —
	// the discomfort proxy of §I (the owner notices the machine busy).
	Interruptions int
}

// DesktopGrid is the opportunistic volunteer platform. It uses the pull
// scheduling model of BOINC-class middleware: volunteer clients poll the
// coordinator for work on a minute-scale interval, which is what makes the
// platform structurally unable to serve sub-second deadlines regardless of
// raw capacity — the paper's §I point.
type DesktopGrid struct {
	// PathDelay is the one-way network delay between a requester and any
	// volunteer (volunteers are scattered across the city).
	PathDelay sim.Time
	// MeanPresent and MeanAway are the exponential sojourns of the owner
	// availability process, in seconds.
	MeanPresent, MeanAway float64
	// PollInterval is how often each volunteer client asks for work.
	PollInterval sim.Time

	engine *sim.Engine
	stream *rng.Stream
	pcs    []*GridPC
	queue  []*gridReq

	// Latency samples served response times; Served/Missed/Expired count
	// outcomes (Expired = dropped after exceeding 100× its deadline).
	Latency metrics.Sample
	Served  metrics.Counter
	Missed  metrics.Counter
}

type gridReq struct {
	work     float64
	deadline sim.Time // absolute; 0 none
	arrival  sim.Time
}

// NewDesktopGrid builds a grid of n volunteer PCs with everyone initially
// away (machines available).
func NewDesktopGrid(e *sim.Engine, n int, seed uint64) *DesktopGrid {
	g := &DesktopGrid{
		PathDelay:    0.005,
		MeanPresent:  45 * 60,
		MeanAway:     30 * 60,
		PollInterval: 60,
		engine:       e,
		stream:       rng.New(seed),
	}
	for i := 0; i < n; i++ {
		m := server.DesktopPCSpec().Build(e, fmt.Sprintf("pc-%d", i))
		pc := &GridPC{M: m}
		g.pcs = append(g.pcs, pc)
		g.scheduleToggle(pc)
		// Pull model: each client polls for work on its own phase.
		e.After(g.stream.Uniform(0, float64(g.PollInterval)), func() {
			g.poll(pc)
		})
	}
	return g
}

// poll is one client's periodic work request.
func (g *DesktopGrid) poll(pc *GridPC) {
	if !pc.OwnerPresent {
		for pc.M.FreeSlots() > 0 && len(g.queue) > 0 {
			g.startOn(pc, g.queue[0])
			g.queue = g.queue[1:]
		}
	}
	g.engine.After(g.PollInterval, func() { g.poll(pc) })
}

// PCs returns the volunteer machines.
func (g *DesktopGrid) PCs() []*GridPC { return g.pcs }

// scheduleToggle arms the next owner arrival/departure for a PC.
func (g *DesktopGrid) scheduleToggle(pc *GridPC) {
	mean := g.MeanAway
	if pc.OwnerPresent {
		mean = g.MeanPresent
	}
	g.engine.After(g.stream.Exp(1/mean), func() {
		pc.OwnerPresent = !pc.OwnerPresent
		if pc.OwnerPresent {
			if pc.M.RunningTasks() > 0 {
				pc.Interruptions++
			}
			pc.M.SetBudget(0) // owner back: suspend volunteer work
		} else {
			pc.M.SetBudget(pc.M.Model.MaxDraw())
		}
		g.scheduleToggle(pc)
	})
}

// Submit sends a request to the grid coordinator. It waits there until a
// volunteer polls for work.
func (g *DesktopGrid) Submit(r workload.EdgeRequest) {
	req := &gridReq{work: r.Work, arrival: g.engine.Now()}
	if r.Deadline > 0 {
		req.deadline = g.engine.Now() + r.Deadline
	}
	// Requester → coordinator path.
	g.engine.After(g.PathDelay, func() {
		g.queue = append(g.queue, req)
	})
}

// startOn runs one queued request on a polling volunteer.
func (g *DesktopGrid) startOn(pc *GridPC, req *gridReq) {
	task := &server.Task{Work: req.work}
	task.OnDone = func(at sim.Time) {
		g.engine.After(g.PathDelay, func() {
			lat := g.engine.Now() - req.arrival
			g.Latency.Observe(lat)
			g.Served.Inc()
			if req.deadline != 0 && g.engine.Now() > req.deadline {
				g.Missed.Inc()
			}
		})
	}
	if !pc.M.Start(task) {
		panic("baseline: grid poll picked a full PC")
	}
}

// QueueLen returns the number of waiting requests.
func (g *DesktopGrid) QueueLen() int { return len(g.queue) }

// MissRate returns missed/served (queued-forever requests excluded; report
// QueueLen separately).
func (g *DesktopGrid) MissRate() float64 {
	return metrics.Rate(g.Missed.Value(), g.Served.Value())
}

// Interruptions sums owner interruptions across PCs.
func (g *DesktopGrid) Interruptions() int {
	n := 0
	for _, pc := range g.pcs {
		n += pc.Interruptions
	}
	return n
}
