package baseline

import (
	"testing"

	"df3/internal/offload"
	"df3/internal/sim"
	"df3/internal/workload"
)

func TestAlwaysVertical(t *testing.T) {
	p := AlwaysVertical{}
	if p.Decide(offload.Context{FreeSlots: 100}) != offload.Vertical {
		t.Error("cloud-only policy must always go vertical")
	}
	if p.Name() != "cloud-only" {
		t.Errorf("name = %q", p.Name())
	}
}

func TestGridServesWhenOwnersAway(t *testing.T) {
	e := sim.New()
	g := NewDesktopGrid(e, 4, 1)
	for i := 0; i < 20; i++ {
		i := i
		e.At(sim.Time(i)*10, func() {
			g.Submit(workload.EdgeRequest{Work: 0.05, Deadline: 0.5})
		})
	}
	e.Run(sim.Hour)
	if g.Served.Value() == 0 {
		t.Fatal("grid served nothing with owners initially away")
	}
}

func TestGridSuspendsOnOwnerReturn(t *testing.T) {
	e := sim.New()
	g := NewDesktopGrid(e, 1, 2)
	pc := g.PCs()[0]
	// Long task; force the owner home mid-flight by direct toggle: use a
	// short MeanAway so a return happens quickly.
	g.Submit(workload.EdgeRequest{Work: 1e5, Deadline: 0})
	e.Run(sim.Day)
	if pc.Interruptions == 0 {
		t.Error("owner never interrupted a running task over a day")
	}
}

func TestGridMissesTightDeadlines(t *testing.T) {
	// With owners present half the time, sub-second deadlines are missed
	// whenever the submission lands during a presence window.
	e := sim.New()
	g := NewDesktopGrid(e, 2, 3)
	g.MeanPresent = 600
	g.MeanAway = 600
	n := 500
	for i := 0; i < n; i++ {
		i := i
		e.At(sim.Time(i)*30, func() {
			g.Submit(workload.EdgeRequest{Work: 0.05, Deadline: 0.5})
		})
	}
	e.Run(5 * sim.Hour)
	missed := g.Missed.Value()
	pending := int64(g.QueueLen())
	if missed+pending == 0 {
		t.Error("grid missed nothing despite 50% owner presence")
	}
}

func TestGridDeterministic(t *testing.T) {
	run := func() int64 {
		e := sim.New()
		g := NewDesktopGrid(e, 3, 7)
		for i := 0; i < 50; i++ {
			i := i
			e.At(sim.Time(i)*20, func() {
				g.Submit(workload.EdgeRequest{Work: 0.1, Deadline: 1})
			})
		}
		e.Run(sim.Hour)
		return g.Served.Value()*1000 + g.Missed.Value()
	}
	if run() != run() {
		t.Error("desktop grid not deterministic")
	}
}
