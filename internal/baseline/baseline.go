// Package baseline implements the two comparator platforms the paper
// argues against (§I, §V):
//
//   - CloudOnly: every request crosses the Internet to a classical
//     datacenter — the latency and PUE foil for DF3.
//   - DesktopGrid: a BOINC-style opportunistic volunteer grid where work
//     only progresses while the PC's owner is away, the paper's argument
//     for why desktop grids cannot host real-time edge workloads.
package baseline

import (
	"df3/internal/offload"
)

// AlwaysVertical is an offload policy that sends every request to the
// datacenter. Wiring it into the DF3 middleware with worker-less clusters
// yields the cloud-only baseline on identical network and workload code
// paths.
type AlwaysVertical struct{}

// Decide implements offload.Policy.
func (AlwaysVertical) Decide(offload.Context) offload.Action { return offload.Vertical }

// Name implements offload.Policy.
func (AlwaysVertical) Name() string { return "cloud-only" }
