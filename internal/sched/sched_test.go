package sched

import (
	"sort"
	"testing"
	"testing/quick"

	"df3/internal/rng"
	"df3/internal/server"
	"df3/internal/sim"
)

func task(work float64) *server.Task { return &server.Task{Work: work} }

func TestFCFSOrder(t *testing.T) {
	q := NewQueue(FCFS)
	for i := 0; i < 5; i++ {
		q.Push(&Item{Task: task(float64(5 - i))})
	}
	for i := 0; i < 5; i++ {
		it := q.Pop()
		if it.Task.Work != float64(5-i) {
			t.Fatalf("FCFS pop %d returned work %v", i, it.Task.Work)
		}
	}
	if q.Pop() != nil {
		t.Error("pop from empty queue should be nil")
	}
}

func TestSJFOrder(t *testing.T) {
	q := NewQueue(SJF)
	works := []float64{30, 10, 20}
	for _, w := range works {
		q.Push(&Item{Task: task(w)})
	}
	got := []float64{q.Pop().Task.Work, q.Pop().Task.Work, q.Pop().Task.Work}
	want := []float64{10, 20, 30}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SJF order = %v", got)
		}
	}
}

func TestEDFOrder(t *testing.T) {
	q := NewQueue(EDF)
	q.Push(&Item{Task: task(1), Deadline: 50})
	q.Push(&Item{Task: task(1), Deadline: 10})
	q.Push(&Item{Task: task(1)}) // no deadline sorts last
	q.Push(&Item{Task: task(1), Deadline: 30})
	ds := []sim.Time{q.Pop().Deadline, q.Pop().Deadline, q.Pop().Deadline, q.Pop().Deadline}
	want := []sim.Time{10, 30, 50, 0}
	for i := range want {
		if ds[i] != want[i] {
			t.Fatalf("EDF order = %v", ds)
		}
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	q := NewQueue(EDF)
	a := &Item{Task: task(1), Deadline: 10}
	b := &Item{Task: task(1), Deadline: 10}
	q.Push(a)
	q.Push(b)
	if q.Pop() != a || q.Pop() != b {
		t.Error("equal deadlines did not pop in arrival order")
	}
}

func TestRemove(t *testing.T) {
	q := NewQueue(FCFS)
	a, b, c := &Item{Task: task(1)}, &Item{Task: task(2)}, &Item{Task: task(3)}
	q.Push(a)
	q.Push(b)
	q.Push(c)
	if !q.Remove(b) {
		t.Fatal("remove failed")
	}
	if q.Remove(b) {
		t.Fatal("double remove succeeded")
	}
	if q.Pop() != a || q.Pop() != c || q.Len() != 0 {
		t.Error("queue corrupted after remove")
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	q := NewQueue(FCFS)
	if q.Peek() != nil {
		t.Error("peek on empty should be nil")
	}
	a := &Item{Task: task(1)}
	q.Push(a)
	if q.Peek() != a || q.Len() != 1 {
		t.Error("peek misbehaved")
	}
}

// Property: for any mix of deadlines, EDF pops in non-decreasing deadline
// order with zero-deadline items last.
func TestEDFProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		q := NewQueue(EDF)
		for _, d := range raw {
			q.Push(&Item{Task: task(1), Deadline: sim.Time(d % 100)})
		}
		var popped []sim.Time
		for q.Len() > 0 {
			popped = append(popped, q.Pop().Deadline)
		}
		// All non-zero ascending, zeros at the end.
		firstZero := len(popped)
		for i, d := range popped {
			if d == 0 {
				firstZero = i
				break
			}
		}
		for i := firstZero; i < len(popped); i++ {
			if popped[i] != 0 {
				return false
			}
		}
		return sort.SliceIsSorted(popped[:firstZero], func(i, j int) bool {
			return popped[i] < popped[j]
		})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func newPoolN(e *sim.Engine, n int, policy Policy) *Pool {
	ms := make([]*server.Machine, n)
	for i := range ms {
		ms[i] = server.QradSpec().Build(e, "m")
	}
	return NewPool(e, policy, ms)
}

func TestPoolRunsEverything(t *testing.T) {
	e := sim.New()
	p := newPoolN(e, 2, FCFS)
	done := 0
	for i := 0; i < 100; i++ {
		tk := task(10)
		tk.OnDone = func(sim.Time) { done++ }
		p.Submit(tk, 0, nil)
	}
	e.Run(sim.Hour)
	if done != 100 {
		t.Errorf("completed %d/100 tasks", done)
	}
}

func TestPoolQueuesBeyondCapacity(t *testing.T) {
	e := sim.New()
	p := newPoolN(e, 1, FCFS) // 16 slots
	for i := 0; i < 20; i++ {
		p.Submit(task(100), 0, nil)
	}
	if p.Queue.Len() != 4 {
		t.Errorf("queue length = %d, want 4", p.Queue.Len())
	}
	if p.FreeSlots() != 0 {
		t.Errorf("free slots = %d", p.FreeSlots())
	}
	e.Run(250)
	if p.Queue.Len() != 0 {
		t.Errorf("queue not drained: %d", p.Queue.Len())
	}
}

func TestPoolWaitStats(t *testing.T) {
	e := sim.New()
	p := newPoolN(e, 1, FCFS)
	for i := 0; i < 17; i++ { // one more than slots
		p.Submit(task(100), 0, nil)
	}
	e.Run(1000)
	if p.WaitStats().Count() != 17 {
		t.Errorf("wait count = %d", p.WaitStats().Count())
	}
	if p.WaitStats().Max() < 99 {
		t.Errorf("max wait = %v, want ~100", p.WaitStats().Max())
	}
}

func TestPoolOverflow(t *testing.T) {
	e := sim.New()
	p := newPoolN(e, 1, FCFS)
	p.QueueCap = 2
	overflowed := 0
	p.OnOverflow = func(it *Item) bool { overflowed++; return true }
	for i := 0; i < 30; i++ {
		p.Submit(task(1000), 0, nil)
	}
	if overflowed != 12 { // 16 slots + 2 queued = 18 absorbed
		t.Errorf("overflowed = %d, want 12", overflowed)
	}
	if p.Dropped() != 0 {
		t.Errorf("dropped = %d with consuming overflow", p.Dropped())
	}
}

func TestPoolDropsWithoutOverflowHandler(t *testing.T) {
	e := sim.New()
	p := newPoolN(e, 1, FCFS)
	p.QueueCap = 1
	for i := 0; i < 20; i++ {
		p.Submit(task(1000), 0, nil)
	}
	if p.Dropped() != 3 { // 16 + 1 = 17 absorbed
		t.Errorf("dropped = %d, want 3", p.Dropped())
	}
}

func TestPlacementLeastLoaded(t *testing.T) {
	e := sim.New()
	p := newPoolN(e, 2, FCFS)
	p.Placement = LeastLoaded
	for i := 0; i < 8; i++ {
		p.Submit(task(1e6), 0, nil)
	}
	a := p.Machines()[0].AssignedTasks()
	b := p.Machines()[1].AssignedTasks()
	if a != 4 || b != 4 {
		t.Errorf("least-loaded split = %d/%d, want 4/4", a, b)
	}
}

func TestPlacementFirstFit(t *testing.T) {
	e := sim.New()
	p := newPoolN(e, 2, FCFS)
	p.Placement = FirstFit
	for i := 0; i < 8; i++ {
		p.Submit(task(1e6), 0, nil)
	}
	if p.Machines()[0].AssignedTasks() != 8 || p.Machines()[1].AssignedTasks() != 0 {
		t.Error("first-fit did not pack onto the first machine")
	}
}

func TestPlacementFastestFirst(t *testing.T) {
	e := sim.New()
	p := newPoolN(e, 2, FCFS)
	p.Placement = FastestFirst
	p.Machines()[0].SetBudget(200) // slow it down
	p.Submit(task(10), 0, nil)
	if p.Machines()[1].AssignedTasks() != 1 {
		t.Error("fastest-first did not pick the full-speed machine")
	}
}

func TestPoolRedispatchOnBudgetGrowth(t *testing.T) {
	e := sim.New()
	p := newPoolN(e, 1, FCFS)
	m := p.Machines()[0]
	m.SetBudget(0)
	done := false
	tk := task(10)
	tk.OnDone = func(sim.Time) { done = true }
	p.Submit(tk, 0, nil)
	e.Run(100)
	if done {
		t.Fatal("task ran on powered-off machine")
	}
	m.SetBudget(500)
	e.Run(200)
	if !done {
		t.Error("task not dispatched after budget growth")
	}
}

// Property: the pool conserves tasks — submitted = completed + queued +
// assigned + dropped + overflowed at every point.
func TestPoolConservationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		s := rng.New(seed)
		e := sim.New()
		p := newPoolN(e, 2, FCFS)
		p.QueueCap = 5
		overflow := 0
		p.OnOverflow = func(it *Item) bool {
			if s.Bool(0.5) {
				overflow++
				return true
			}
			return false
		}
		done, submitted := 0, 0
		for i := 0; i < 200; i++ {
			tk := task(1 + s.Float64()*100)
			tk.OnDone = func(sim.Time) { done++ }
			p.Submit(tk, 0, nil)
			submitted++
			if s.Bool(0.3) {
				e.Run(e.Now() + s.Float64()*10)
			}
		}
		e.Run(e.Now() + 1e6)
		assigned := 0
		for _, m := range p.Machines() {
			assigned += m.AssignedTasks()
		}
		total := done + p.Queue.Len() + assigned + int(p.Dropped()) + overflow
		return total == submitted && p.Queue.Len() == 0 && assigned == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
