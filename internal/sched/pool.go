package sched

import (
	"df3/internal/metrics"
	"df3/internal/server"
	"df3/internal/sim"
)

// Placement selects which machine receives the next task.
type Placement int

const (
	// LeastLoaded places on the machine with the most free slots —
	// spreads heat production evenly across hosts.
	LeastLoaded Placement = iota
	// FirstFit places on the first machine with a free slot — packs work
	// onto few machines, concentrating heat.
	FirstFit
	// FastestFirst places on the machine with the highest current per-core
	// speed — best for latency-bound edge requests when DVFS levels
	// diverge across the cluster.
	FastestFirst
)

func (p Placement) String() string {
	switch p {
	case FirstFit:
		return "first-fit"
	case FastestFirst:
		return "fastest-first"
	default:
		return "least-loaded"
	}
}

// Pool dispatches a queue onto a set of machines. It re-dispatches
// whenever a machine reports new capacity (task finished, budget grew).
type Pool struct {
	Queue     *Queue
	Placement Placement

	engine   *sim.Engine
	machines []*server.Machine
	wait     metrics.Stats
	// OnOverflow, when set, is offered each item that cannot be placed
	// immediately; returning true consumes the item (e.g. offloaded),
	// false re-queues it. Used by the offloading policies of §III-B.
	OnOverflow func(it *Item) bool
	// QueueCap bounds the queue length; beyond it, items overflow
	// unconditionally (and are dropped if OnOverflow refuses them).
	// Zero means unbounded.
	QueueCap int
	dropped  metrics.Counter
}

// NewPool builds a pool over the machines, hooking their capacity events.
func NewPool(e *sim.Engine, policy Policy, machines []*server.Machine) *Pool {
	p := &Pool{Queue: NewQueue(policy), engine: e, machines: machines}
	for _, m := range machines {
		m.OnCapacity(p.Dispatch)
	}
	return p
}

// Machines returns the pool's machines.
func (p *Pool) Machines() []*server.Machine { return p.machines }

// Submit enqueues a task and attempts dispatch. Deadline is absolute (0 =
// none); ctx rides along on the item.
func (p *Pool) Submit(task *server.Task, deadline sim.Time, ctx any) {
	it := &Item{Task: task, Enqueued: p.engine.Now(), Deadline: deadline, Ctx: ctx}
	if p.QueueCap > 0 && p.Queue.Len() >= p.QueueCap && p.FreeSlots() == 0 {
		if p.OnOverflow == nil || !p.OnOverflow(it) {
			p.dropped.Inc()
		}
		return
	}
	p.Queue.Push(it)
	p.Dispatch()
}

// FreeSlots sums free slots across the pool.
func (p *Pool) FreeSlots() int {
	n := 0
	for _, m := range p.machines {
		n += m.FreeSlots()
	}
	return n
}

// Capacity sums current compute capacity across the pool.
func (p *Pool) Capacity() float64 {
	c := 0.0
	for _, m := range p.machines {
		c += m.Capacity()
	}
	return c
}

// pick returns the machine for the next task per the placement rule, or
// nil when no machine has a free slot.
func (p *Pool) pick() *server.Machine {
	var best *server.Machine
	for _, m := range p.machines {
		if m.FreeSlots() == 0 {
			continue
		}
		switch p.Placement {
		case FirstFit:
			return m
		case FastestFirst:
			if best == nil || m.Speed() > best.Speed() {
				best = m
			}
		default: // LeastLoaded
			if best == nil || m.FreeSlots() > best.FreeSlots() {
				best = m
			}
		}
	}
	return best
}

// Dispatch places queued items on machines until either is exhausted.
func (p *Pool) Dispatch() {
	for p.Queue.Len() > 0 {
		m := p.pick()
		if m == nil {
			return
		}
		it := p.Queue.Pop()
		p.wait.Observe(p.engine.Now() - it.Enqueued)
		if !m.Start(it.Task) {
			// The pick said there was a slot; a failure here is a logic
			// error worth failing loudly on.
			panic("sched: placement picked a full machine")
		}
	}
}

// WaitStats returns queue-wait statistics for dispatched items.
func (p *Pool) WaitStats() *metrics.Stats { return &p.wait }

// Dropped returns the number of items dropped on overflow.
func (p *Pool) Dropped() int64 { return p.dropped.Value() }
