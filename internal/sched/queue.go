// Package sched provides the queueing and dispatch primitives the DF3
// gateways are built from: priority queues under FCFS / SJF / EDF
// disciplines and a worker pool that places queued tasks on machines.
//
// The paper's §III-B requires real-time edge requests (EDF with deadlines)
// to coexist with batch DCC work (FCFS/SJF), possibly preempting it; the
// gateway in package core composes these primitives into that behaviour.
package sched

import (
	"container/heap"

	"df3/internal/server"
	"df3/internal/sim"
)

// Policy is a queue discipline.
type Policy int

const (
	// FCFS serves in arrival order.
	FCFS Policy = iota
	// SJF serves the shortest remaining task first.
	SJF
	// EDF serves the earliest absolute deadline first.
	EDF
)

func (p Policy) String() string {
	switch p {
	case SJF:
		return "sjf"
	case EDF:
		return "edf"
	default:
		return "fcfs"
	}
}

// Item is one queued task with its scheduling attributes.
type Item struct {
	Task *server.Task
	// Enqueued is the time the item entered the queue.
	Enqueued sim.Time
	// Deadline is the absolute deadline (0 = none; sorts last under EDF).
	Deadline sim.Time
	// Ctx carries opaque per-request context back to the dispatcher.
	Ctx any

	seq   uint64
	index int
}

// Queue is a priority queue under one policy. The zero value is not ready;
// use NewQueue.
type Queue struct {
	policy Policy
	items  itemHeap
	nextSq uint64
}

// NewQueue returns an empty queue with the given discipline.
func NewQueue(p Policy) *Queue { return &Queue{policy: p} }

// Policy returns the queue's discipline.
func (q *Queue) Policy() Policy { return q.policy }

// Len returns the number of queued items.
func (q *Queue) Len() int { return len(q.items.items) }

// Push enqueues an item.
func (q *Queue) Push(it *Item) {
	it.seq = q.nextSq
	q.nextSq++
	q.items.policy = q.policy
	heap.Push(&q.items, it)
}

// Pop dequeues the highest-priority item, or nil when empty.
func (q *Queue) Pop() *Item {
	if q.Len() == 0 {
		return nil
	}
	return heap.Pop(&q.items).(*Item)
}

// Peek returns the head without removing it, or nil when empty.
func (q *Queue) Peek() *Item {
	if q.Len() == 0 {
		return nil
	}
	return q.items.items[0]
}

// Remove deletes an item from any position (e.g. a request whose deadline
// already lapsed). Returns false if the item is not queued.
func (q *Queue) Remove(it *Item) bool {
	if it.index < 0 || it.index >= q.Len() || q.items.items[it.index] != it {
		return false
	}
	heap.Remove(&q.items, it.index)
	return true
}

// itemHeap orders items by the queue policy; ties break by arrival seq so
// the order is deterministic and starvation-free within a priority class.
type itemHeap struct {
	policy Policy
	items  []*Item
}

func (h *itemHeap) Len() int { return len(h.items) }

func (h *itemHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	switch h.policy {
	case SJF:
		if a.Task.Work != b.Task.Work {
			return a.Task.Work < b.Task.Work
		}
	case EDF:
		da, db := a.Deadline, b.Deadline
		// Zero deadline sorts after any real deadline.
		switch {
		case da == 0 && db != 0:
			return false
		case da != 0 && db == 0:
			return true
		case da != db:
			return da < db
		}
	}
	return a.seq < b.seq
}

func (h *itemHeap) Swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].index = i
	h.items[j].index = j
}

func (h *itemHeap) Push(x any) {
	it := x.(*Item)
	it.index = len(h.items)
	h.items = append(h.items, it)
}

func (h *itemHeap) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	it.index = -1
	h.items = old[:n-1]
	return it
}
