package city

import (
	"testing"

	"df3/internal/sim"
	"df3/internal/weather"
)

func smallCfg() Config {
	cfg := DefaultConfig()
	cfg.Buildings = 2
	cfg.RoomsPerBuilding = 3
	cfg.DatacenterNodes = 2
	return cfg
}

func TestBuildShape(t *testing.T) {
	c := Build(smallCfg())
	if len(c.Buildings) != 2 {
		t.Fatalf("%d buildings", len(c.Buildings))
	}
	if len(c.MW.Clusters()) != 2 {
		t.Fatalf("%d clusters", len(c.MW.Clusters()))
	}
	if len(c.Rooms()) != 6 {
		t.Fatalf("%d rooms", len(c.Rooms()))
	}
	for _, b := range c.Buildings {
		if len(b.Cluster.Workers()) != 3 {
			t.Errorf("building %d has %d workers", b.Index, len(b.Cluster.Workers()))
		}
		if len(b.Cluster.Neighbors()) != 1 {
			t.Errorf("building %d has %d neighbours", b.Index, len(b.Cluster.Neighbors()))
		}
	}
	if c.Fleet.MaxCapacity() != 6*16 {
		t.Errorf("fleet capacity = %v", c.Fleet.MaxCapacity())
	}
}

func TestComfortHoldsWithSaturatedFleet(t *testing.T) {
	cfg := smallCfg()
	c := Build(cfg)
	stop := c.SaturateDCC(600, 64)
	defer stop()
	c.Run(3 * sim.Day)
	for _, r := range c.Rooms() {
		if r.Comfort.InBandFraction() < 0.7 {
			t.Errorf("room b%d-r%d in-band fraction %v", r.Building, r.Index, r.Comfort.InBandFraction())
		}
	}
}

func TestEdgeTrafficServed(t *testing.T) {
	cfg := smallCfg()
	c := Build(cfg)
	stop := c.SaturateDCC(600, 32)
	defer stop()
	c.StartEdgeTraffic(sim.Day, 1)
	c.Run(sim.Day)
	if c.MW.Edge.Arrived() == 0 {
		t.Fatal("no edge traffic arrived")
	}
	if rate := c.MW.Edge.MissRate(); rate > 0.1 {
		t.Errorf("edge miss rate = %v", rate)
	}
}

func TestDirectEdgeTraffic(t *testing.T) {
	cfg := smallCfg()
	c := Build(cfg)
	c.StartDirectEdgeTraffic(12*sim.Hour, 1)
	c.Run(12 * sim.Hour)
	if c.MW.Edge.Served.Value() == 0 {
		t.Fatal("no direct requests served")
	}
}

func TestSenseLoops(t *testing.T) {
	cfg := smallCfg()
	c := Build(cfg)
	c.StartSenseLoops(sim.Hour, 60)
	c.Run(sim.Hour)
	// 6 rooms × ~59 periods.
	if c.MW.Edge.Served.Value() < 300 {
		t.Errorf("sense loops served = %d", c.MW.Edge.Served.Value())
	}
	if c.MW.Edge.MissRate() > 0.05 {
		t.Errorf("sense miss rate = %v", c.MW.Edge.MissRate())
	}
}

func TestDCCTraffic(t *testing.T) {
	cfg := smallCfg()
	c := Build(cfg)
	c.StartDCCTraffic(2*sim.Day, 0.5)
	c.Run(4 * sim.Day)
	if c.MW.DCC.JobsDone.Value() == 0 {
		t.Fatal("no DCC jobs completed")
	}
	if c.MW.DCC.WorkDone <= 0 {
		t.Error("no work credited")
	}
}

func TestBoilerBuilding(t *testing.T) {
	cfg := smallCfg()
	cfg.BoilerBuildings = 1
	c := Build(cfg)
	b0 := c.Buildings[0]
	if b0.Boiler == nil {
		t.Fatal("building 0 has no boiler")
	}
	// Boiler building: 1 boiler worker; heater building: 3 workers.
	if len(b0.Cluster.Workers()) != 1 {
		t.Errorf("boiler cluster has %d workers", len(b0.Cluster.Workers()))
	}
	if b0.Rooms[0].Worker != nil || b0.Rooms[0].Loop != nil {
		t.Error("boiler building rooms should have no per-room heater")
	}
	stop := c.SaturateDCC(600, 64)
	defer stop()
	c.Run(3 * sim.Day)
	// The boiler must keep its rooms within reach of the setpoint.
	for _, r := range b0.Rooms {
		if r.Comfort.InBandFraction() < 0.5 {
			t.Errorf("boiler room %d in-band = %v (temp %v)", r.Index, r.Comfort.InBandFraction(), r.Zone.Temp)
		}
	}
}

func TestMonthlyComfortOutput(t *testing.T) {
	cfg := smallCfg()
	cfg.SampleEvery = sim.Hour
	c := Build(cfg)
	stop := c.SaturateDCC(600, 32)
	defer stop()
	c.Run(40 * sim.Day) // spans November into December
	months, means := c.MonthlyComfort()
	if len(months) < 2 {
		t.Fatalf("months = %v", months)
	}
	if months[0] != 11 && months[len(months)-1] != 12 {
		t.Errorf("expected Nov/Dec, got %v", months)
	}
	for i, m := range means {
		if m < 15 || m > 25 {
			t.Errorf("month %d mean temp %v out of plausible band", months[i], m)
		}
	}
}

func TestSeriesSampled(t *testing.T) {
	cfg := smallCfg()
	c := Build(cfg)
	c.Run(2 * sim.Day)
	if c.CapacitySeries.Len() < 40 {
		t.Errorf("capacity samples = %d", c.CapacitySeries.Len())
	}
	if c.OutdoorSeries.Len() != c.CapacitySeries.Len() {
		t.Error("series lengths diverge")
	}
}

func TestSites(t *testing.T) {
	cfg := smallCfg()
	cfg.BoilerBuildings = 1
	c := Build(cfg)
	sites := c.Sites()
	// Building 0: 1 boiler site; building 1: 3 worker sites.
	if len(sites) != 4 {
		t.Fatalf("%d sites", len(sites))
	}
	seen := map[int]bool{}
	for _, s := range sites {
		if seen[s.ID] {
			t.Error("duplicate site id")
		}
		seen[s.ID] = true
	}
}

func TestDeterministicCity(t *testing.T) {
	run := func() (int64, float64) {
		c := Build(smallCfg())
		c.StartEdgeTraffic(sim.Day, 1)
		stop := c.SaturateDCC(600, 16)
		defer stop()
		c.Run(sim.Day)
		return c.MW.Edge.Served.Value(), c.MW.Edge.Latency.Mean()
	}
	s1, l1 := run()
	s2, l2 := run()
	if s1 != s2 || l1 != l2 {
		t.Errorf("city runs diverged: %d/%v vs %d/%v", s1, l1, s2, l2)
	}
}

func TestCollaborativeCity(t *testing.T) {
	cfg := smallCfg()
	cfg.Collaborative = true
	c := Build(cfg)
	stop := c.SaturateDCC(600, 32)
	defer stop()
	c.Run(3 * sim.Day)
	for _, b := range c.Buildings {
		if b.Coordinator == nil {
			t.Fatal("collaborative building missing coordinator")
		}
		mean := float64(b.Coordinator.Mean())
		if mean < 19.5 || mean > 22.5 {
			t.Errorf("building %d mean = %v, want ~21", b.Index, mean)
		}
	}
}

func TestCollaborativeSkipsBoilerBuildings(t *testing.T) {
	cfg := smallCfg()
	cfg.Collaborative = true
	cfg.BoilerBuildings = 1
	c := Build(cfg)
	if c.Buildings[0].Coordinator != nil {
		t.Error("boiler building should not get a coordinator")
	}
	if c.Buildings[1].Coordinator == nil {
		t.Error("heater building should get a coordinator")
	}
}

func TestSubmitCampaignShards(t *testing.T) {
	cfg := smallCfg()
	c := Build(cfg)
	job := workloadJob(10)
	c.SubmitCampaign(job)
	c.Run(sim.Hour)
	if got := c.MW.DCC.TasksDone.Value(); got != 10 {
		t.Errorf("campaign tasks done = %d, want 10", got)
	}
	// All shards complete => jobs done equals number of non-empty shards.
	if got := c.MW.DCC.JobsDone.Value(); got != int64(len(c.Buildings)) {
		t.Errorf("campaign shards done = %d, want %d", got, len(c.Buildings))
	}
}

func TestFinanceTrafficMeetsOvernightWindow(t *testing.T) {
	cfg := smallCfg()
	cfg.Buildings = 3
	cfg.RoomsPerBuilding = 6 // 288 cores max; nightly batch ~13 core-hours
	c := Build(cfg)
	out := c.StartFinanceTraffic(5 * sim.Day)
	c.Run(7 * sim.Day)
	if out.Submitted == 0 {
		t.Fatal("no finance batches submitted")
	}
	if out.OnTime+out.Late != out.Submitted {
		t.Errorf("outcome mismatch: %d+%d != %d", out.OnTime, out.Late, out.Submitted)
	}
	if out.Late > 0 {
		t.Errorf("%d/%d overnight batches late on an amply sized fleet", out.Late, out.Submitted)
	}
}

func TestSevilleSummerIdlesFleet(t *testing.T) {
	// A hot climate out of heating season: heater capacity collapses to
	// the always-on service floor (1 core per heater), §III-C's stability
	// worry made concrete.
	cfg := smallCfg()
	cfg.Climate = weather.Seville
	cfg.Calendar = sim.Calendar{StartDayOfYear: 6 * 365.0 / 12} // July
	cfg.HeatingSeasonFirst = 10
	cfg.HeatingSeasonLast = 4
	c := Build(cfg)
	stop := c.SaturateDCC(600, 64)
	defer stop()
	c.Run(3 * sim.Day)
	perHeater := c.HeaterFleet.Capacity() / float64(len(c.HeaterFleet.Machines))
	if perHeater > 1.01 {
		t.Errorf("summer Seville capacity %v cores/heater, want the 1-core floor", perHeater)
	}
	// Nobody overheats their home for compute: rooms stay below the vent
	// ceiling despite saturation demand.
	for _, r := range c.Rooms() {
		if float64(r.Zone.Temp) > 40 {
			t.Errorf("room at %v in summer", r.Zone.Temp)
		}
	}
}
