// Package city assembles full DF3 scenarios: buildings of rooms with DF
// heaters (or boiler plants), thermostat loops, a building LAN per cluster,
// metro links between buildings, an operator and a remote datacenter. It is
// the scenario layer every experiment and example builds on.
package city

import (
	"fmt"
	"sort"

	"df3/internal/cluster"
	"df3/internal/core"
	"df3/internal/metrics"
	"df3/internal/network"
	"df3/internal/regulator"
	"df3/internal/rng"
	"df3/internal/server"
	"df3/internal/sim"
	"df3/internal/thermal"
	"df3/internal/units"
	"df3/internal/weather"
)

// Config describes a city scenario.
type Config struct {
	// Seed drives every stochastic component.
	Seed uint64
	// Calendar anchors simulated time zero on the civil calendar.
	Calendar sim.Calendar
	// Climate drives the weather generator.
	Climate weather.Climate
	// Buildings and RoomsPerBuilding size the city.
	Buildings        int
	RoomsPerBuilding int
	// BoilerBuildings converts the first n buildings to digital-boiler
	// plants (one boiler heating all rooms) instead of per-room heaters.
	BoilerBuildings int
	// RoomSpec is the thermal class of rooms.
	RoomSpec thermal.RoomSpec
	// HeaterSpec is the DF server model in heater rooms.
	HeaterSpec server.Spec
	// BoilerSpec is the DF server model in boiler plants.
	BoilerSpec server.Spec
	// Offices makes buildings use office schedules instead of homes.
	Offices bool
	// ComfortSetpoint and SetbackSetpoint parameterise schedules.
	ComfortSetpoint, SetbackSetpoint units.Celsius
	// HeatingSeason bounds heating months (first, last, wrapping); zero
	// values mean always-on heating.
	HeatingSeasonFirst, HeatingSeasonLast int
	// Backup enables the resistive top-up in heater rooms.
	Backup bool
	// ProportionalBand is the thermostat band; <= 0 selects hysteresis.
	ProportionalBand float64
	// Middleware is the DF3 middleware configuration.
	Middleware core.Config
	// DatacenterNodes sizes the remote datacenter.
	DatacenterNodes int
	// ControlPeriod is the thermostat/thermal tick (default 60 s).
	ControlPeriod sim.Time
	// SampleEvery is the metrics sampling period (default 1 h; 0 disables).
	SampleEvery sim.Time
	// AlwaysOnBoilers keeps boiler machines at full power regardless of
	// loop temperature (the §III-C waste-heat stress case).
	AlwaysOnBoilers bool
	// MTBF enables failure injection when positive: each DF machine fails
	// after an exponential uptime with this mean (free cooling ages
	// processors, §III-C) and returns to service after an exponential
	// repair time of mean MTTR.
	MTBF sim.Time
	// MTTR is the mean repair time (default 4 h when MTBF is set).
	MTTR sim.Time
	// LinkMTBF enables link-failure injection: every link whose class name
	// is a key fails after an exponential uptime with the given mean (a
	// renewal process per link, driven off the same fault stream as
	// machine failures). Messages in flight on a failed link are dropped;
	// routing heals around it while it is down.
	LinkMTBF map[string]sim.Time
	// LinkMTTR is the per-class mean link repair time (default 15 min for
	// classes present in LinkMTBF).
	LinkMTTR map[string]sim.Time
	// LinkLoss sets a per-class message-loss probability in [0,1]: each
	// message crossing a link of the class is dropped with the given
	// probability, independent of link failures.
	LinkLoss map[string]float64
	// GatewayMTBF enables building-gateway failure when positive: each
	// building's gateway pair (edge + DCC) fails together after an
	// exponential uptime with this mean, severing the whole building, and
	// recovers after an exponential repair time of mean GatewayMTTR
	// (default 30 min).
	GatewayMTBF sim.Time
	// GatewayMTTR is the mean gateway repair time.
	GatewayMTTR sim.Time
	// Collaborative switches each heater building to the §II-C
	// collaborative heating request: its rooms coordinate to hold the
	// *mean* building temperature at ComfortSetpoint instead of following
	// individual schedules.
	Collaborative bool
	// Derate, when set, scales every DF machine's electrical budget by
	// its value in [0,1] at each control tick — the §III-A smart-grid
	// demand-response channel.
	Derate func(t sim.Time) float64
}

// DefaultConfig returns a 6-building, 8-rooms-each Paris winter scenario.
func DefaultConfig() Config {
	return Config{
		Seed:             1,
		Calendar:         sim.NovemberStart,
		Climate:          weather.Paris,
		Buildings:        6,
		RoomsPerBuilding: 8,
		RoomSpec:         thermal.Apartment,
		HeaterSpec:       server.QradSpec(),
		BoilerSpec:       server.SmallBoilerSpec(),
		ComfortSetpoint:  21,
		SetbackSetpoint:  17,
		Backup:           true,
		ProportionalBand: 0.8,
		Middleware:       core.DefaultConfig(),
		DatacenterNodes:  8,
		ControlPeriod:    60,
		SampleEvery:      sim.Hour,
	}
}

// Room is one heated space with its co-located device and (in heater
// buildings) its DF server.
type Room struct {
	Building int
	Index    int
	Zone     *thermal.Zone
	Comfort  *thermal.Comfort
	Schedule regulator.Schedule
	// Node hosts both the room's worker and its IoT device.
	Node network.NodeID
	// Worker is nil in boiler buildings (the boiler is the worker).
	Worker *core.Worker
	// Loop is nil in boiler buildings.
	Loop *regulator.HeaterLoop
}

// Building groups rooms and the cluster serving them.
type Building struct {
	Index   int
	Rooms   []*Room
	Cluster *core.Cluster
	// Boiler is non-nil for boiler plants.
	Boiler *BoilerPlant
	// Coordinator is non-nil when Config.Collaborative is set: the
	// building-mean heating coordinator.
	Coordinator *regulator.Collaborative
	// Pos is the building position for clustering experiments.
	Pos cluster.Point
}

// City is a fully wired scenario.
type City struct {
	Cfg       Config
	Engine    *sim.Engine
	Net       *network.Fabric
	MW        *core.Middleware
	Weather   *weather.Generator
	Buildings []*Building
	Operator  network.NodeID
	DCNode    network.NodeID
	// Fleet is every DF machine; HeaterFleet and BoilerFleet are the
	// per-platform views (their union is Fleet).
	Fleet       server.Fleet
	HeaterFleet server.Fleet
	BoilerFleet server.Fleet
	DCFleet     server.Fleet
	// CapacitySeries samples fleet capacity (core-equivalents);
	// HeaterCapacity and BoilerCapacity split it by platform.
	CapacitySeries metrics.Series
	HeaterCapacity metrics.Series
	BoilerCapacity metrics.Series
	// OutdoorSeries samples outdoor temperature.
	OutdoorSeries metrics.Series
	// HeatDemandSeries samples summed requested heat power (W).
	HeatDemandSeries metrics.Series
	// Outages counts machine failures injected so far.
	Outages metrics.Counter
	// LinkOutages and GatewayOutages count injected network failures.
	LinkOutages    metrics.Counter
	GatewayOutages metrics.Counter
	// MessagesLost counts messages the fabric dropped (random loss, dead
	// links, severed nodes).
	MessagesLost metrics.Counter

	// Driver advances the scenario's clock in Run. The default is the
	// batch run-to-completion driver; serving deployments install a
	// sim.Paced driver to couple the engine to the wall clock.
	Driver sim.Driver

	stream *rng.Stream
	faults *rng.Stream
	// registry is the lazily built Observability() metrics registry.
	registry *metrics.Registry
}

// Build wires the scenario. The engine starts at time zero; call Run.
func Build(cfg Config) *City {
	if cfg.ControlPeriod <= 0 {
		cfg.ControlPeriod = 60
	}
	e := sim.New()
	net := network.NewFabric(e)
	if cfg.MTBF > 0 && cfg.MTTR <= 0 {
		cfg.MTTR = 4 * sim.Hour
	}
	if cfg.GatewayMTBF > 0 && cfg.GatewayMTTR <= 0 {
		cfg.GatewayMTTR = 30 * sim.Minute
	}
	c := &City{
		Cfg:     cfg,
		Engine:  e,
		Net:     net,
		MW:      core.New(e, net, cfg.Middleware),
		Weather: weather.New(cfg.Climate, cfg.Calendar, cfg.Seed),
		stream:  rng.New(cfg.Seed).Fork(77),
		faults:  rng.New(cfg.Seed).Fork(91),
	}

	c.Operator = net.AddNode("operator")
	c.DCNode = net.AddNode("datacenter")
	var dcMachines []*server.Machine
	for i := 0; i < cfg.DatacenterNodes; i++ {
		m := server.DatacenterNodeSpec().Build(e, fmt.Sprintf("dc-%d", i))
		dcMachines = append(dcMachines, m)
		c.DCFleet.Add(m)
	}
	net.Connect(c.Operator, c.DCNode, network.Fibre)

	var gws []network.NodeID
	for b := 0; b < cfg.Buildings; b++ {
		bld := c.buildBuilding(b)
		c.Buildings = append(c.Buildings, bld)
		gws = append(gws, bld.Cluster.EdgeGW)
	}
	// Metro mesh between buildings; operator and DC reachable from all.
	for i := 0; i < len(gws); i++ {
		for j := i + 1; j < len(gws); j++ {
			net.Connect(gws[i], gws[j], network.Metro)
		}
	}
	for _, b := range c.Buildings {
		net.Connect(c.Operator, b.Cluster.DCCGW, network.Fibre)
		net.Connect(b.Cluster.EdgeGW, c.DCNode, network.Internet)
	}
	c.MW.PeerAll()
	if cfg.DatacenterNodes > 0 {
		c.MW.SetDatacenter(c.DCNode, dcMachines)
	}

	net.OnLoss = func(network.NodeID, network.NodeID, units.Byte) { c.MessagesLost.Inc() }
	if lossOn := c.armLoss(); lossOn {
		// Forked only when loss is actually enabled: Fork advances the
		// parent stream, and the machine-fault draw sequence must stay
		// identical when the chaos knobs are off.
		net.SetLossRNG(c.faults.Fork(101))
	}
	if len(cfg.LinkMTBF) > 0 {
		c.armLinkFaults()
	}
	if cfg.GatewayMTBF > 0 {
		c.armGatewayFaults()
	}

	if cfg.SampleEvery > 0 {
		c.startSamplers(cfg.SampleEvery)
	}
	return c
}

// startSamplers registers the hourly fleet/outdoor/demand series on one
// shared tick domain: five samplers, one heap event per sampling period.
func (c *City) startSamplers(every sim.Time) {
	e := c.Engine
	c.CapacitySeries.SampleEvery(e, every, func(float64) float64 { return c.Fleet.Capacity() })
	c.HeaterCapacity.SampleEvery(e, every, func(float64) float64 { return c.HeaterFleet.Capacity() })
	c.BoilerCapacity.SampleEvery(e, every, func(float64) float64 { return c.BoilerFleet.Capacity() })
	c.OutdoorSeries.SampleEvery(e, every, func(now float64) float64 {
		return float64(c.Weather.OutdoorTemp(now))
	})
	c.HeatDemandSeries.SampleEvery(e, every, func(float64) float64 {
		demand := 0.0
		for _, b := range c.Buildings {
			for _, r := range b.Rooms {
				if r.Loop != nil {
					demand += float64(r.Loop.Requested())
				}
			}
			if b.Boiler != nil {
				demand += float64(b.Boiler.lastDraw)
			}
		}
		return demand
	})
}

// thermostat builds a fresh controller per room.
func (c *City) thermostat() regulator.Thermostat {
	if c.Cfg.ProportionalBand <= 0 {
		return &regulator.Hysteresis{Band: 0.4}
	}
	return regulator.Proportional{Band: c.Cfg.ProportionalBand}
}

// schedule builds a room's setpoint schedule.
func (c *City) schedule() regulator.Schedule {
	var inner regulator.Schedule
	if c.Cfg.Offices {
		inner = regulator.OfficeSchedule{
			Calendar: c.Cfg.Calendar,
			Comfort:  c.Cfg.ComfortSetpoint,
			Setback:  c.Cfg.SetbackSetpoint,
		}
	} else {
		inner = regulator.HomeSchedule{
			Calendar: c.Cfg.Calendar,
			Comfort:  c.Cfg.ComfortSetpoint,
			Setback:  c.Cfg.SetbackSetpoint,
		}
	}
	if c.Cfg.HeatingSeasonFirst != 0 || c.Cfg.HeatingSeasonLast != 0 {
		return regulator.SeasonalOff{
			Inner:      inner,
			Calendar:   c.Cfg.Calendar,
			FirstMonth: c.Cfg.HeatingSeasonFirst,
			LastMonth:  c.Cfg.HeatingSeasonLast,
		}
	}
	return inner
}

// gains returns the internal-gains model for a room: occupants plus a
// midday solar bump.
func (c *City) gains(s regulator.Schedule) func(sim.Time) units.Watt {
	cal := c.Cfg.Calendar
	return func(t sim.Time) units.Watt {
		g := units.Watt(0)
		if _, occ := s.At(t); occ {
			g += 90 // one person + appliances
		}
		h := cal.HourOfDay(t)
		if h > 10 && h < 16 {
			g += 120 // solar gain through windows
		}
		return g
	}
}

// buildBuilding wires one building: nodes, rooms, loops, cluster.
func (c *City) buildBuilding(b int) *Building {
	cfg := c.Cfg
	e := c.Engine
	net := c.Net
	bld := &Building{
		Index: b,
		Pos: cluster.Point{
			X: float64(b%3)*400 + c.stream.Float64()*100,
			Y: float64(b/3)*400 + c.stream.Float64()*100,
		},
	}
	edgeGW := net.AddNode(fmt.Sprintf("b%d-edge-gw", b))
	dccGW := net.AddNode(fmt.Sprintf("b%d-dcc-gw", b))
	net.Connect(edgeGW, dccGW, network.LAN)

	isBoiler := b < cfg.BoilerBuildings
	var workers []*core.Worker
	var plant *BoilerPlant
	if cfg.Collaborative && !isBoiler {
		bld.Coordinator = regulator.NewCollaborative(cfg.ComfortSetpoint)
		// Bound before the room loops start, so each control tick the
		// coordinator snapshots the building mean once and every room
		// reads a consistent setpoint.
		bld.Coordinator.Bind(e, cfg.ControlPeriod)
	}

	if isBoiler {
		plant = newBoilerPlant(c, b, edgeGW)
		bld.Boiler = plant
		workers = append(workers, plant.Worker)
	}

	for r := 0; r < cfg.RoomsPerBuilding; r++ {
		node := net.AddNode(fmt.Sprintf("b%d-r%d", b, r))
		net.Connect(node, edgeGW, network.LAN)
		room := &Room{
			Building: b,
			Index:    r,
			Zone:     thermal.NewZone(cfg.RoomSpec),
			Comfort:  thermal.NewComfort(1.5),
			Node:     node,
		}
		var sched regulator.Schedule
		if bld.Coordinator != nil {
			sched = bld.Coordinator.ScheduleFor(bld.Coordinator.Attach(room.Zone))
		} else {
			sched = c.schedule()
		}
		room.Schedule = sched
		room.Zone.Temp = cfg.ComfortSetpoint - 1 // heating established
		if isBoiler {
			plant.attach(room)
		} else {
			m := cfg.HeaterSpec.Build(e, fmt.Sprintf("qrad-b%d-r%d", b, r))
			// Heaters serve latency-bound edge requests: when the
			// thermostat throttles the budget, expose few full-speed
			// cores rather than many slow ones, and keep the always-on
			// service allowance (one top-speed core) powered so the edge
			// survives zero heat demand.
			m.Policy = server.MaxSpeed
			m.FloorW = m.Model.IdleW + units.Watt(float64(m.Model.DynamicW)/float64(m.Cores))
			m.SetBudget(m.Budget())
			c.Fleet.Add(m)
			c.HeaterFleet.Add(m)
			room.Worker = &core.Worker{M: m, Node: node}
			workers = append(workers, room.Worker)
			room.Loop = &regulator.HeaterLoop{
				Zone:       room.Zone,
				Machine:    m,
				Thermostat: c.thermostat(),
				Schedule:   sched,
				Weather:    c.Weather,
				Gains:      c.gains(sched),
				Backup:     cfg.Backup,
				Comfort:    room.Comfort,
				Derate:     cfg.Derate,
			}
			room.Loop.Start(e, cfg.ControlPeriod)
		}
		bld.Rooms = append(bld.Rooms, room)
	}
	if isBoiler {
		plant.start()
	}
	bld.Cluster = c.MW.AddCluster(edgeGW, dccGW, workers)
	if cfg.MTBF > 0 {
		for _, w := range workers {
			c.armFaults(bld.Cluster, w)
		}
	}
	return bld
}

// armFaults runs one worker's fail/repair renewal process. The renewal
// events are transient (never cancelled, handle never kept), so they ride
// the kernel's event free list.
func (c *City) armFaults(cl *core.Cluster, w *core.Worker) {
	var up, down func()
	up = func() {
		c.Engine.AfterTransient(c.faults.Exp(1/float64(c.Cfg.MTBF)), func() {
			c.Outages.Inc()
			cl.FailWorker(w)
			down()
		})
	}
	down = func() {
		c.Engine.AfterTransient(c.faults.Exp(1/float64(c.Cfg.MTTR)), func() {
			cl.RestoreWorker(w)
			up()
		})
	}
	up()
}

// armLoss installs the per-class random-loss probabilities and reports
// whether any class actually has loss enabled (so the caller only forks
// the loss RNG when needed).
func (c *City) armLoss() bool {
	if len(c.Cfg.LinkLoss) == 0 {
		return false
	}
	classes := make([]string, 0, len(c.Cfg.LinkLoss))
	for k := range c.Cfg.LinkLoss {
		classes = append(classes, k)
	}
	sort.Strings(classes)
	on := false
	for _, k := range classes {
		if p := c.Cfg.LinkLoss[k]; p > 0 {
			c.Net.SetLoss(k, p)
			on = true
		}
	}
	return on
}

// armLinkFaults runs a fail/repair renewal process on every link whose
// class appears in LinkMTBF. Pairs() returns links in wiring order, so
// the renewal schedule is deterministic for a given seed.
func (c *City) armLinkFaults() {
	for _, p := range c.Net.Pairs() {
		l := c.Net.Link(p[0], p[1])
		mtbf := c.Cfg.LinkMTBF[l.Class]
		if mtbf <= 0 {
			continue
		}
		mttr := c.Cfg.LinkMTTR[l.Class]
		if mttr <= 0 {
			mttr = 15 * sim.Minute
		}
		c.armLinkFault(p[0], p[1], mtbf, mttr)
	}
}

// armLinkFault is one link's renewal process.
func (c *City) armLinkFault(a, b network.NodeID, mtbf, mttr sim.Time) {
	var up, down func()
	up = func() {
		c.Engine.AfterTransient(c.faults.Exp(1/float64(mtbf)), func() {
			c.LinkOutages.Inc()
			c.Net.FailLink(a, b)
			down()
		})
	}
	down = func() {
		c.Engine.AfterTransient(c.faults.Exp(1/float64(mttr)), func() {
			c.Net.RestoreLink(a, b)
			up()
		})
	}
	up()
}

// armGatewayFaults runs a renewal process per building that fails the
// edge and DCC gateways together — the whole-building outage of §III-B's
// network question: rooms keep heating (the thermal loops are local) but
// the building drops off the compute fabric until repair.
func (c *City) armGatewayFaults() {
	for _, b := range c.Buildings {
		edge, dcc := b.Cluster.EdgeGW, b.Cluster.DCCGW
		var up, down func()
		up = func() {
			c.Engine.AfterTransient(c.faults.Exp(1/float64(c.Cfg.GatewayMTBF)), func() {
				c.GatewayOutages.Inc()
				c.Net.FailNode(edge)
				c.Net.FailNode(dcc)
				down()
			})
		}
		down = func() {
			c.Engine.AfterTransient(c.faults.Exp(1/float64(c.Cfg.GatewayMTTR)), func() {
				c.Net.RestoreNode(edge)
				c.Net.RestoreNode(dcc)
				up()
			})
		}
		up()
	}
}

// Now returns the scenario's current simulated time.
func (c *City) Now() sim.Time { return c.Engine.Now() }

// Run advances the scenario to `until` under the installed driver (batch
// run-to-completion when none is set).
func (c *City) Run(until sim.Time) {
	d := c.Driver
	if d == nil {
		d = sim.Batch{}
	}
	d.Drive(c.Engine, until)
}

// Rooms yields every room in the city.
func (c *City) Rooms() []*Room {
	var out []*Room
	for _, b := range c.Buildings {
		out = append(out, b.Rooms...)
	}
	return out
}

// MonthlyComfort folds every room's temperature trace into per-month means
// — the Fig. 4 output. Only months with samples appear.
func (c *City) MonthlyComfort() (months []int, means []float64) {
	sums := map[int]float64{}
	counts := map[int]int{}
	for _, r := range c.Rooms() {
		ms, vs := r.Comfort.MonthlyMeans(func(t float64) int {
			return c.Cfg.Calendar.MonthOfYear(t)
		})
		for i, m := range ms {
			sums[m] += vs[i]
			counts[m]++
		}
	}
	for m := 1; m <= 12; m++ {
		if counts[m] > 0 {
			months = append(months, m)
			means = append(means, sums[m]/float64(counts[m]))
		}
	}
	return months, means
}

// ResistorEnergy sums backup-resistor energy across heater rooms.
func (c *City) ResistorEnergy() units.Joule {
	var total units.Joule
	for _, r := range c.Rooms() {
		if r.Loop != nil {
			total += r.Loop.ResistorEnergy()
		}
	}
	return total
}

// WastedBoilerHeat sums dumped heat across boiler plants.
func (c *City) WastedBoilerHeat() units.Joule {
	var total units.Joule
	for _, b := range c.Buildings {
		if b.Boiler != nil {
			total += b.Boiler.Loop.Wasted()
		}
	}
	return total
}

// Sites returns the clustering view of the city (one site per worker).
func (c *City) Sites() []cluster.Site {
	var sites []cluster.Site
	id := 0
	for _, b := range c.Buildings {
		for _, r := range b.Rooms {
			if r.Worker != nil {
				sites = append(sites, cluster.Site{
					ID:       id,
					Building: b.Index,
					Pos: cluster.Point{
						X: b.Pos.X + float64(r.Index%4)*8,
						Y: b.Pos.Y + float64(r.Index/4)*8,
					},
				})
				id++
			}
		}
		if b.Boiler != nil {
			sites = append(sites, cluster.Site{ID: id, Building: b.Index, Pos: b.Pos})
			id++
		}
	}
	return sites
}
