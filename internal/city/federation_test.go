package city

import (
	"reflect"
	"strings"
	"testing"

	"df3/internal/obs"
	"df3/internal/sim"
)

func smallFederation(cities, shards int) *Federation {
	cfg := DefaultConfig()
	cfg.Buildings = 2
	cfg.RoomsPerBuilding = 3
	cfg.DatacenterNodes = 2
	return BuildFederation(FederationConfig{
		Seed: 1, Cities: cities, Shards: shards, City: cfg,
	})
}

func runFederation(f *Federation, horizon sim.Time) {
	f.StartEdgeTraffic(horizon, 0.5)
	f.StartInterCityDCC(horizon, 2)
	f.Run(horizon + sim.Hour)
}

// TestFederationShardEquivalence is the federation-level determinism
// contract: identical checksums (ledgers, latencies, event counts, clocks)
// at 1, 2 and 4 shards.
func TestFederationShardEquivalence(t *testing.T) {
	const horizon = 6 * sim.Hour
	ref := smallFederation(5, 1)
	runFederation(ref, horizon)
	want := ref.Checksum()
	if ref.Summarize().Exported == 0 {
		t.Fatal("no inter-city traffic generated; equivalence test is vacuous")
	}
	for _, shards := range []int{2, 4} {
		f := smallFederation(5, shards)
		runFederation(f, horizon)
		if got := f.Checksum(); got != want {
			t.Errorf("shards=%d checksum %x, want %x (serial)", shards, got, want)
		}
		if f.Kernel.Stats().CrossShard == 0 {
			t.Errorf("shards=%d: no cross-shard messages; partition degenerate", shards)
		}
	}
}

// TestChecksumCoversEveryField: perturbing any single CityState field must
// change ChecksumStates. This is the runtime half of the df3:statefp
// contract on CityState; it caught JobsLost being skipped by the digest,
// which let a run that lost jobs checksum-match one that did not.
func TestChecksumCoversEveryField(t *testing.T) {
	base := []CityState{{
		City: 1, EdgeSubmitted: 2, EdgeServed: 3, EdgeRejected: 4,
		JobsSubmitted: 5, JobsDone: 6, JobsLost: 7, TasksDone: 8,
		WorkDone: 9.5, EdgeLatencyMean: 10.5, EventsFired: 11,
		SimTime: 12 * sim.Hour, Exported: 13, Imported: 14,
	}}
	want := ChecksumStates(base)
	rt := reflect.TypeOf(base[0])
	for i := 0; i < rt.NumField(); i++ {
		mutated := base[0]
		fv := reflect.ValueOf(&mutated).Elem().Field(i)
		switch fv.Kind() {
		case reflect.Int, reflect.Int64:
			fv.SetInt(fv.Int() + 1)
		case reflect.Uint64:
			fv.SetUint(fv.Uint() + 1)
		case reflect.Float64:
			fv.SetFloat(fv.Float() + 1)
		default:
			t.Fatalf("field %s has kind %v; teach this test to mutate it", rt.Field(i).Name, fv.Kind())
		}
		if got := ChecksumStates([]CityState{mutated}); got == want {
			t.Errorf("changing %s did not change the checksum: the digest silently drops it", rt.Field(i).Name)
		}
	}
}

// TestFederationOffloadDelivery: exported jobs arrive (allowing for the
// backbone staging in flight at the horizon) and land in remote ledgers.
func TestFederationOffloadDelivery(t *testing.T) {
	f := smallFederation(3, 2)
	const horizon = 6 * sim.Hour
	runFederation(f, horizon)
	s := f.Summarize()
	if s.Exported == 0 {
		t.Fatal("no jobs exported")
	}
	if s.Imported == 0 || s.Imported > s.Exported {
		t.Fatalf("imported %d of %d exported", s.Imported, s.Exported)
	}
	// Everything imported was submitted to a middleware.
	if s.JobsSubmitted < s.Imported {
		t.Fatalf("jobs submitted %d < imported %d", s.JobsSubmitted, s.Imported)
	}
	if s.EdgeServed == 0 {
		t.Fatal("no edge traffic served")
	}
}

// TestFederationTracingMerge: per-city recorders merge into one process per
// city with no span-id collisions and no cross-process parents.
func TestFederationTracingMerge(t *testing.T) {
	f := smallFederation(3, 2)
	f.EnableTracing(0)
	runFederation(f, 2*sim.Hour)
	merged := f.MergedTrace()
	if merged == nil {
		t.Fatal("no merged trace")
	}
	procs := merged.Processes()
	if len(procs) != 3 || procs[0] != "city-0" || procs[2] != "city-2" {
		t.Fatalf("merged processes = %v", procs)
	}
	spans := merged.Spans()
	if len(spans) == 0 {
		t.Fatal("merged trace is empty")
	}
	seen := map[uint64]int{}
	for _, sp := range spans {
		if sp.Proc < 1 || sp.Proc > 3 {
			t.Fatalf("span %d has process %d outside [1,3]", sp.ID, sp.Proc)
		}
		if n, dup := seen[uint64(sp.ID)]; dup {
			t.Fatalf("span id %d appears %d times after merge", sp.ID, n+1)
		}
		seen[uint64(sp.ID)] = 1
	}
}

// TestFlightAndProfilePureObservation is the live-telemetry determinism
// contract: a federation with the flight recorder streaming every city's
// spans AND the kernel profiler accounting busy/idle/limiters reaches a
// checksum byte-identical to a bare run of the same config.
func TestFlightAndProfilePureObservation(t *testing.T) {
	const horizon = 4 * sim.Hour
	bare := smallFederation(4, 2)
	runFederation(bare, horizon)
	want := bare.Checksum()

	obsd := smallFederation(4, 2)
	obsd.EnableTracing(0)
	fl := obs.NewFlight(256, obs.Policy{Default: 2})
	obsd.AttachFlight(fl)
	obsd.Kernel.EnableProfile()
	runFederation(obsd, horizon)

	if got := obsd.Checksum(); got != want {
		t.Fatalf("observed run checksum %x, want %x (bare)", got, want)
	}
	if len(fl.Snapshot()) == 0 {
		t.Fatal("flight recorder retained no spans; purity test is vacuous")
	}
	rep, ok := obsd.Kernel.ProfileReport()
	if !ok || rep.Windows == 0 {
		t.Fatalf("profiler produced no report (ok=%v windows=%d)", ok, rep.Windows)
	}
	var sampledOut uint64
	for _, st := range fl.Stats() {
		sampledOut += st.SampledOut
	}
	if sampledOut == 0 {
		t.Fatal("sampling policy rejected nothing at rate 2; sampling untested")
	}
}

// TestAttachFlightRequiresTracing: attaching before EnableTracing is a
// programming error, not a silent no-op.
func TestAttachFlightRequiresTracing(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AttachFlight without EnableTracing did not panic")
		}
	}()
	smallFederation(2, 1).AttachFlight(obs.NewFlight(16, obs.Policy{}))
}

// TestFederationObservability: the registry exposes shard-labeled series
// and per-city ledgers that match the live counters.
func TestFederationObservability(t *testing.T) {
	f := smallFederation(3, 2)
	runFederation(f, 2*sim.Hour)
	var b strings.Builder
	if err := f.Observability().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		`df3_city_edge_served_total{city="0",shard="0"}`,
		`df3_city_edge_served_total{city="2",shard="1"}`,
		`df3_shard_cross_shard_messages_total`,
		`df3_shard_boundary_bytes_total{shard="0"}`,
		`df3_shard_busy_seconds{shard="1"}`,
		`df3_shard_idle_seconds{shard="0"}`,
		`df3_backbone_messages_total`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %s", want)
		}
	}
}
