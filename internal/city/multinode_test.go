package city

import (
	"testing"

	"df3/internal/shard"
	"df3/internal/units"
	"df3/internal/workload"
)

func testSpec() Spec {
	return Spec{
		Seed: 11, Cities: 5, Buildings: 4, Rooms: 3, Boilers: 1,
		Days: 0.25, EdgeRate: 0.5, DCCRate: 2, InterCity: 6,
	}
}

// TestMultiNodeMatchesSerial is the federation-level determinism proof:
// N nodes (each a full federation restricted to a contiguous city block)
// driven by the Sync barrier loop must reproduce the serial run's
// checksum, summary and per-city records exactly.
func TestMultiNodeMatchesSerial(t *testing.T) {
	spec := testSpec()
	serial := spec.Build(1)
	serial.Run(spec.Until())
	wantSum := serial.Checksum()
	wantStates := serial.CityStates()

	for _, tc := range []struct{ nodes, shards int }{
		{1, 1}, {2, 1}, {2, 2}, {3, 2}, {5, 1},
	} {
		assign := shard.PartitionContiguous(spec.Cities, tc.nodes, nil)
		feds := make([]*Federation, tc.nodes)
		parts := make([]shard.Part, tc.nodes)
		for p := 0; p < tc.nodes; p++ {
			f := spec.Build(tc.shards)
			var owned []int
			for ci, a := range assign {
				if a == p {
					owned = append(owned, ci)
				}
			}
			f.Restrict(owned)
			feds[p] = f
			parts[p] = f.Kernel
		}
		sy, err := shard.NewSync(feds[0].Backbone.MinDelay(), parts)
		if err != nil {
			t.Fatalf("nodes=%d shards=%d: %v", tc.nodes, tc.shards, err)
		}
		if err := sy.Run(spec.Until()); err != nil {
			t.Fatalf("nodes=%d shards=%d: %v", tc.nodes, tc.shards, err)
		}
		// Merge per-city records from their owners, in city order — the
		// coordinator's gather path.
		states := make([]CityState, spec.Cities)
		for ci := 0; ci < spec.Cities; ci++ {
			states[ci] = feds[assign[ci]].CityState(ci)
		}
		if got := ChecksumStates(states); got != wantSum {
			t.Errorf("nodes=%d shards=%d: checksum %#016x, want %#016x",
				tc.nodes, tc.shards, got, wantSum)
		}
		for ci := range states {
			if states[ci] != wantStates[ci] {
				t.Errorf("nodes=%d shards=%d: city %d state\n got %+v\nwant %+v",
					tc.nodes, tc.shards, ci, states[ci], wantStates[ci])
			}
		}
		if got, want := SummarizeStates(states), serial.Summarize(); got != want {
			t.Errorf("nodes=%d shards=%d: summary %+v, want %+v", tc.nodes, tc.shards, got, want)
		}
	}
}

// TestSpecRoundTrip: the sealed recipe parses back to itself, and
// tampered recipes are rejected rather than half-parsed.
func TestSpecRoundTrip(t *testing.T) {
	spec := testSpec()
	got, err := ParseSpec(spec.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got != spec {
		t.Errorf("round trip %+v, want %+v", got, spec)
	}
	if _, err := ParseSpec([]byte(`{"seed":1,"cities":2,"bogus":3}`)); err == nil {
		t.Error("ParseSpec accepted an unknown field")
	}
	if _, err := ParseSpec([]byte(`{"seed":1,"cities":0}`)); err == nil {
		t.Error("ParseSpec accepted zero cities")
	}
	if _, err := ParseSpec([]byte(`not json`)); err == nil {
		t.Error("ParseSpec accepted garbage")
	}
}

// TestJobCodecRoundTrip: a decoded job is indistinguishable from the
// job the sender held.
func TestJobCodecRoundTrip(t *testing.T) {
	w := workload.BatchJob{
		ID:       42,
		Input:    units.Byte(1.5e9),
		Output:   units.Byte(0.25e9),
		TaskWork: []float64{3.5e12, 1.25e11, 7.75e13},
	}
	enc := encodeJob(w)
	dec, err := decodeJob(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.ID != w.ID || dec.Input != w.Input || dec.Output != w.Output ||
		len(dec.TaskWork) != len(w.TaskWork) {
		t.Errorf("round trip %+v, want %+v", dec, w)
	}
	for i := range w.TaskWork {
		if dec.TaskWork[i] != w.TaskWork[i] {
			t.Errorf("task %d work %v, want %v", i, dec.TaskWork[i], w.TaskWork[i])
		}
	}
	// Truncations and length lies must error, never panic or misparse.
	for cut := 0; cut < len(enc); cut++ {
		if _, err := decodeJob(enc[:cut]); err == nil {
			t.Errorf("decodeJob accepted a %d-byte truncation", cut)
		}
	}
	if _, err := decodeJob(append(append([]byte{}, enc...), 0)); err == nil {
		t.Error("decodeJob accepted trailing bytes")
	}
}
