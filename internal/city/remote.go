package city

import (
	"encoding/binary"
	"fmt"
	"math"

	"df3/internal/shard"
	"df3/internal/units"
	"df3/internal/workload"
)

// The federation's cross-LP message codec. Inter-city traffic travels
// through the shard kernel as (kind, payload) messages rather than
// closures, so the same scenario runs unchanged whether its cities share
// a process or are partitioned across df3node workers: the payload
// crosses the wire, the decoder below rebuilds the identical event on
// the destination node. Encoding is little-endian and bit-exact
// (float64s as their IEEE bits), because a decoded job must be
// indistinguishable from a locally-constructed one.

// MsgKindInterCityJob tags a batch job shipped between member cities.
const MsgKindInterCityJob uint32 = 1

// encodeJob serialises a batch job payload.
func encodeJob(j workload.BatchJob) []byte {
	buf := make([]byte, 0, 8+8+8+4+8*len(j.TaskWork))
	buf = binary.LittleEndian.AppendUint64(buf, j.ID)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(float64(j.Input)))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(float64(j.Output)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(j.TaskWork)))
	for _, w := range j.TaskWork {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(w))
	}
	return buf
}

// decodeJob is encodeJob's exact inverse.
func decodeJob(p []byte) (workload.BatchJob, error) {
	var j workload.BatchJob
	if len(p) < 28 {
		return j, fmt.Errorf("city: job payload %d bytes, want at least 28", len(p))
	}
	j.ID = binary.LittleEndian.Uint64(p[0:8])
	j.Input = units.Byte(math.Float64frombits(binary.LittleEndian.Uint64(p[8:16])))
	j.Output = units.Byte(math.Float64frombits(binary.LittleEndian.Uint64(p[16:24])))
	n := int(binary.LittleEndian.Uint32(p[24:28]))
	if len(p) != 28+8*n {
		return j, fmt.Errorf("city: job payload %d bytes for %d tasks, want %d", len(p), n, 28+8*n)
	}
	j.TaskWork = make([]float64, n)
	for i := range j.TaskWork {
		j.TaskWork[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[28+8*i:]))
	}
	return j, nil
}

// decodeMsg is the federation's shard.Decoder: it turns a payload
// message into the event closure its sender would have enqueued locally.
func (f *Federation) decodeMsg(dst *shard.LP, kind uint32, payload []byte) (func(), error) {
	switch kind {
	case MsgKindInterCityJob:
		job, err := decodeJob(payload)
		if err != nil {
			return nil, err
		}
		dstCity := dst.ID
		c := f.Cities[dstCity]
		return func() {
			f.imported[dstCity]++
			b := c.Buildings[int(job.ID%uint64(len(c.Buildings)))]
			c.MW.SubmitDCC(b.Cluster, c.Operator, job)
		}, nil
	default:
		return nil, fmt.Errorf("city: unknown federation message kind %d", kind)
	}
}

// Restrict marks this federation as one node's partition of a multi-node
// run: only the owned cities (global city IDs, ascending) execute
// locally, repartitioned contiguously over the node's cfg.Shards
// workers. The rest of the federation stays built — same recipe, same
// substreams, provably the same scenario — but never advances; its
// traffic arrives through the coordinator's Deliver path. Call once,
// before any window runs.
func (f *Federation) Restrict(owned []int) {
	if len(owned) == 0 {
		panic("city: Restrict to zero cities")
	}
	for i, ci := range owned {
		if ci < 0 || ci >= len(f.Cities) {
			panic(fmt.Sprintf("city: Restrict to city %d of %d", ci, len(f.Cities)))
		}
		if i > 0 && owned[i-1] >= ci {
			panic("city: Restrict cities must be ascending and unique")
		}
	}
	shards := f.Cfg.Shards
	if shards > len(owned) {
		shards = len(owned)
	}
	sub := shard.PartitionContiguous(len(owned), shards, nil)
	assign := make([]int, len(f.Cities))
	for idx, ci := range owned {
		assign[ci] = sub[idx]
	}
	f.Kernel.Partition(assign)
	f.Kernel.Own(owned)
	f.Backbone.AssignShards(assign)
	f.partition = assign
}
