package city

import (
	"fmt"
	"testing"

	"df3/internal/sim"
)

func TestDebugFaultComfort(t *testing.T) {
	cfg := smallCfg()
	cfg.MTBF = sim.Day
	cfg.MTTR = 4 * sim.Hour
	c := Build(cfg)
	stop := c.SaturateDCC(600, 32)
	defer stop()
	for d := 0; d < 16; d++ {
		c.Run(sim.Time(d) * 6 * sim.Hour)
		r := c.Buildings[1].Rooms[0]
		w := r.Worker
		fmt.Printf("t=%5.1fh temp=%5.2f offline=%v budget=%v resistorE=%v outages=%d\n",
			c.Engine.Now()/3600, float64(r.Zone.Temp), w.M.Offline(), w.M.Budget(),
			r.Loop.ResistorEnergy(), c.Outages.Value())
	}
}
