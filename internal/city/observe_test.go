package city

import (
	"bytes"
	"testing"

	"df3/internal/metrics"
	"df3/internal/trace"
	"df3/internal/units"
	"df3/internal/workload"
)

func observeTestConfig() Config {
	cfg := DefaultConfig()
	cfg.Buildings = 2
	cfg.RoomsPerBuilding = 3
	cfg.DatacenterNodes = 2
	return cfg
}

// submitTestEdge injects one small edge request at building 0, room 1.
func submitTestEdge(c *City) {
	b := c.Buildings[0]
	room := b.Rooms[1]
	c.MW.SubmitEdge(b.Cluster, room.Node, workload.EdgeRequest{
		Work:     0.05,
		Deadline: 0.5,
		Input:    units.Byte(16e3),
		Output:   200,
		Device:   1,
	})
}

func TestObservabilityRegistry(t *testing.T) {
	c := Build(observeTestConfig())
	r := c.Observability()
	if r != c.Observability() {
		t.Fatal("registry not cached across calls")
	}
	submitTestEdge(c)
	c.Engine.Run(60)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	series, err := metrics.ParsePrometheus(&buf)
	if err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	for _, want := range []string{
		"df3_sim_time_seconds",
		"df3_kernel_events_fired_total",
		"df3_kernel_events_pending",
		"df3_net_messages_lost_total",
		"df3_edge_submitted_total",
		"df3_edge_served_total",
		`df3_edge_offloads_total{direction="horizontal"}`,
		`df3_edge_latency_seconds{quantile="0.5"}`,
		"df3_dcc_jobs_submitted_total",
		"df3_faults_link_outages_total",
		`df3_fleet_capacity_cores{fleet="datacenter"}`,
		"df3_fleet_pue",
		`df3_cluster_edge_queue{cluster="1"}`,
		"df3_dc_pool_dropped_total",
	} {
		if _, ok := series[want]; !ok {
			t.Errorf("series %s missing", want)
		}
	}
	if series["df3_edge_submitted_total"] != 1 {
		t.Errorf("edge submitted = %v", series["df3_edge_submitted_total"])
	}
	if series["df3_sim_time_seconds"] < 60 {
		t.Errorf("sim time = %v", series["df3_sim_time_seconds"])
	}
	// Every link class wired by Build must have a traffic series.
	for _, class := range c.linkClasses() {
		id := `df3_net_link_messages_total{class="` + class + `"}`
		if _, ok := series[id]; !ok {
			t.Errorf("series %s missing", id)
		}
	}
	// Tracing was off at registry build time, so no trace-health series.
	if _, ok := series["df3_trace_open_spans"]; ok {
		t.Error("trace series present without tracing enabled")
	}
}

func TestEnableTracingIsPureObservation(t *testing.T) {
	// Two identical cities, one traced: event counts and every outcome
	// counter must match exactly — tracing may only observe.
	plain := Build(observeTestConfig())
	traced := Build(observeTestConfig())
	rec := trace.NewRecorder(0)
	traced.EnableTracing(rec)

	for _, c := range []*City{plain, traced} {
		submitTestEdge(c)
		c.MW.SubmitDCC(c.Buildings[1].Cluster, c.Operator, workload.BatchJob{
			TaskWork: []float64{60, 120},
		})
		c.Engine.Run(6 * 3600)
	}
	if plain.Engine.Fired() != traced.Engine.Fired() {
		t.Errorf("event counts diverged: %d vs %d",
			plain.Engine.Fired(), traced.Engine.Fired())
	}
	if a, b := plain.MW.Edge.Served.Value(), traced.MW.Edge.Served.Value(); a != b {
		t.Errorf("served diverged: %d vs %d", a, b)
	}
	if a, b := plain.MW.DCC.JobsDone.Value(), traced.MW.DCC.JobsDone.Value(); a != b {
		t.Errorf("jobs done diverged: %d vs %d", a, b)
	}

	// The traced run must have recorded a full request lifecycle.
	stages := map[string]int{}
	for _, sp := range rec.Spans() {
		stages[sp.Stage]++
	}
	for _, want := range []string{"request", "compute", "net", "dcc-job"} {
		if stages[want] == 0 {
			t.Errorf("no %q spans recorded (got %v)", want, stages)
		}
	}
	if n := rec.UnmatchedEnds(); n != 0 {
		t.Errorf("%d unmatched span ends", n)
	}
	if n := rec.OrphanBegins(); n != 0 {
		t.Errorf("%d orphan span begins", n)
	}

	// With tracing on, the registry exports recorder health.
	var buf bytes.Buffer
	if err := traced.Observability().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	series, err := metrics.ParsePrometheus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := series["df3_trace_open_spans"]; !ok {
		t.Error("df3_trace_open_spans missing from traced registry")
	}
}
