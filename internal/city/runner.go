package city

import (
	"df3/internal/rng"
	"df3/internal/sim"
	"df3/internal/units"
	"df3/internal/workload"
)

// StartEdgeTraffic launches one alarm-detection generator per building,
// submitting indirect requests from random room devices until `until`.
// rateScale multiplies both MMPP state rates (1 = the reference workload).
func (c *City) StartEdgeTraffic(until sim.Time, rateScale float64) {
	for bi, b := range c.Buildings {
		gen := workload.DefaultEdgeGen(c.stream.Fork(uint64(1000+bi)), len(b.Rooms))
		gen.CalmRate *= rateScale
		gen.BurstRate *= rateScale
		b := b
		gen.Start(c.Engine, until, func(r workload.EdgeRequest) {
			device := b.Rooms[r.Device].Node
			c.MW.SubmitEdge(b.Cluster, device, r)
		})
	}
}

// StartDirectEdgeTraffic is StartEdgeTraffic with direct requests pinned
// to the device's own room server (falls back to indirect in boiler
// buildings, which have no per-room worker).
func (c *City) StartDirectEdgeTraffic(until sim.Time, rateScale float64) {
	for bi, b := range c.Buildings {
		gen := workload.DefaultEdgeGen(c.stream.Fork(uint64(2000+bi)), len(b.Rooms))
		gen.CalmRate *= rateScale
		gen.BurstRate *= rateScale
		b := b
		gen.Start(c.Engine, until, func(r workload.EdgeRequest) {
			room := b.Rooms[r.Device]
			if room.Worker != nil {
				c.MW.SubmitEdgeDirect(b.Cluster, room.Node, room.Worker, r)
			} else {
				c.MW.SubmitEdge(b.Cluster, room.Node, r)
			}
		})
	}
}

// StartSenseLoops launches one sense-compute-actuate loop per room.
func (c *City) StartSenseLoops(until sim.Time, period sim.Time) {
	for _, b := range c.Buildings {
		for _, r := range b.Rooms {
			loop := &workload.SenseLoop{
				Period: period,
				Work:   0.01,
				Input:  512,
				Output: 64,
				Device: r.Index,
			}
			b, r := b, r
			loop.Start(c.Engine, until, func(req workload.EdgeRequest) {
				c.MW.SubmitEdge(b.Cluster, r.Node, req)
			})
		}
	}
}

// StartDCCTraffic launches the operator's batch stream, spreading jobs
// round-robin over clusters. jobsPerHour sets the mean arrival rate.
func (c *City) StartDCCTraffic(until sim.Time, jobsPerHour float64) {
	gen := workload.DefaultDCCGen(c.stream.Fork(3000), c.Cfg.Calendar, jobsPerHour/3600)
	i := 0
	gen.Start(c.Engine, until, func(j workload.BatchJob) {
		b := c.Buildings[i%len(c.Buildings)]
		i++
		c.MW.SubmitDCC(b.Cluster, c.Operator, j)
	})
}

// StartMapTraffic launches the §II-A "location-based services" workload:
// devices request map tiles whose popularity follows a Zipf law, served
// from the gateway content caches (enable them first with
// MW.EnableContentCache). tiles is the catalogue size; reqPerSec the
// city-wide request rate.
func (c *City) StartMapTraffic(until sim.Time, tiles int, reqPerSec float64) {
	arr := c.stream.Fork(5000)
	zipf := rng.NewZipf(c.stream.Fork(5001), tiles, 1.0)
	pick := c.stream.Fork(5002)
	var schedule func()
	schedule = func() {
		at := c.Engine.Now() + arr.Exp(reqPerSec)
		if at > until {
			return
		}
		c.Engine.AtTransient(at, func() {
			b := c.Buildings[pick.Intn(len(c.Buildings))]
			room := b.Rooms[pick.Intn(len(b.Rooms))]
			id := uint64(zipf.Draw())
			// Tile sizes: 15–40 kB, deterministic per tile id.
			size := units.Byte(15e3 + float64(id%26)*1e3)
			c.MW.SubmitContent(b.Cluster, room.Node, id, size)
			schedule()
		})
	}
	schedule()
}

// FinanceOutcome tallies overnight risk batches against their business
// deadline.
type FinanceOutcome struct {
	Submitted int
	OnTime    int
	Late      int
}

// StartFinanceTraffic runs the nightly finance batches (§II-A's bank
// customers) against the city, spreading each batch's scenarios across
// clusters, and reports per-batch deadline outcomes into the returned
// tally (final counts valid once the run drains past the last deadline).
func (c *City) StartFinanceTraffic(until sim.Time) *FinanceOutcome {
	out := &FinanceOutcome{}
	gen := workload.DefaultFinanceGen(c.stream.Fork(4000), c.Cfg.Calendar)
	gen.Start(c.Engine, until, func(b workload.Batch) {
		out.Submitted++
		// Shard scenarios across clusters like the campaign path.
		n := len(c.Buildings)
		shards := make([]workload.BatchJob, n)
		for i := range shards {
			shards[i] = workload.BatchJob{
				ID:    b.Job.ID*100 + uint64(i),
				Input: b.Job.Input, Output: b.Job.Output,
			}
		}
		for i, w := range b.Job.TaskWork {
			s := &shards[i%n]
			s.TaskWork = append(s.TaskWork, w)
		}
		pending := 0
		late := false
		due := b.Due
		for i, s := range shards {
			if len(s.TaskWork) == 0 {
				continue
			}
			pending++
			c.MW.SubmitDCCNotify(c.Buildings[i].Cluster, c.Operator, s, func(at sim.Time) {
				if at > due {
					late = true
				}
				pending--
				if pending == 0 {
					if late {
						out.Late++
					} else {
						out.OnTime++
					}
				}
			})
		}
	})
	return out
}

// SubmitCampaign splits a fixed batch job into per-cluster shards and
// submits them all at t=0 — the render-campaign replay of E9.
func (c *City) SubmitCampaign(job workload.BatchJob) {
	n := len(c.Buildings)
	shards := make([]workload.BatchJob, n)
	for i := range shards {
		shards[i] = workload.BatchJob{ID: job.ID*100 + uint64(i), Input: job.Input, Output: job.Output}
	}
	for i, w := range job.TaskWork {
		s := &shards[i%n]
		s.TaskWork = append(s.TaskWork, w)
	}
	for i, s := range shards {
		if len(s.TaskWork) > 0 {
			c.MW.SubmitDCC(c.Buildings[i].Cluster, c.Operator, s)
		}
	}
}

// SaturateDCC keeps every cluster's batch queue topped up with uniform
// tasks so heaters always have work to convert demand into heat. Returns a
// stop function.
func (c *City) SaturateDCC(taskWork float64, batch int) func() {
	sub := c.Engine.Domain(10 * sim.Minute).Subscribe(func(now sim.Time) {
		for _, b := range c.Buildings {
			if b.Cluster.DCCQueueLen() < batch {
				works := make([]float64, batch)
				for i := range works {
					works[i] = taskWork
				}
				c.MW.SubmitDCC(b.Cluster, c.Operator, workload.BatchJob{
					ID:       uint64(now) + uint64(b.Index),
					TaskWork: works,
					Input:    1e6,
					Output:   1e6,
				})
			}
		}
	})
	// Prime immediately as well.
	for _, b := range c.Buildings {
		works := make([]float64, batch)
		for i := range works {
			works[i] = taskWork
		}
		c.MW.SubmitDCC(b.Cluster, c.Operator, workload.BatchJob{
			ID:       uint64(90000 + b.Index),
			TaskWork: works,
			Input:    1e6,
			Output:   1e6,
		})
	}
	return sub.Stop
}
