package city

import (
	"bytes"
	"encoding/json"
	"fmt"

	"df3/internal/sim"
)

// Spec is the sealed build recipe of a federation run — the multi-node
// plane's equivalent of the recipe a checkpoint seals. The coordinator
// marshals one Spec and sends the bytes to every df3node worker; each
// worker rebuilds the complete federation from it, so all nodes provably
// run the same scenario (the recipe bytes are compared verbatim, like
// checkpoint recovery compares them). Shard and node counts are
// deliberately absent: they change how the work is executed, never what
// it computes.
type Spec struct {
	Seed      uint64  `json:"seed"`
	Cities    int     `json:"cities"`
	Buildings int     `json:"buildings"`
	Rooms     int     `json:"rooms"`
	Boilers   int     `json:"boilers"`
	Days      float64 `json:"days"`
	EdgeRate  float64 `json:"edge"`
	DCCRate   float64 `json:"dcc"`
	InterCity float64 `json:"intercity"`
}

// Validate rejects specs that cannot build a federation.
func (s Spec) Validate() error {
	if s.Cities < 1 {
		return fmt.Errorf("city: spec needs at least one city, have %d", s.Cities)
	}
	if s.Buildings < 1 || s.Rooms < 1 {
		return fmt.Errorf("city: spec needs at least 1 building and 1 room, have %d×%d", s.Buildings, s.Rooms)
	}
	if s.Boilers < 0 || s.Boilers > s.Buildings {
		return fmt.Errorf("city: spec boilers %d out of range 0..%d", s.Boilers, s.Buildings)
	}
	if s.Days <= 0 {
		return fmt.Errorf("city: spec needs a positive horizon, have %v days", s.Days)
	}
	if s.EdgeRate < 0 || s.DCCRate < 0 || s.InterCity < 0 {
		return fmt.Errorf("city: spec rates must be non-negative (edge %v, dcc %v, intercity %v)",
			s.EdgeRate, s.DCCRate, s.InterCity)
	}
	return nil
}

// Marshal seals the spec as canonical JSON — the recipe bytes compared
// across nodes.
func (s Spec) Marshal() []byte {
	b, err := json.Marshal(s)
	if err != nil {
		panic(err) // a struct of scalars cannot fail to marshal
	}
	return b
}

// ParseSpec is Marshal's strict inverse: unknown fields are an error, a
// recipe from a different build must not half-parse into a different
// scenario.
func ParseSpec(b []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("city: spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Horizon is the traffic horizon: generators stop at Horizon, and the
// run drains until Until.
func (s Spec) Horizon() sim.Time { return sim.Time(s.Days) * sim.Day }

// Until is the run's simulated end: the traffic horizon plus a drain
// margin, mirroring df3sim's federation mode.
func (s Spec) Until() sim.Time { return s.Horizon() + 6*sim.Hour }

// Build constructs the federation the spec describes on a kernel with
// the given local shard count, with every traffic stream started. The
// result is deterministic in the spec alone: two nodes building the same
// sealed bytes hold the same scenario.
func (s Spec) Build(shards int) *Federation {
	ccfg := DefaultConfig()
	ccfg.Seed = s.Seed
	ccfg.Buildings = s.Buildings
	ccfg.RoomsPerBuilding = s.Rooms
	ccfg.BoilerBuildings = s.Boilers
	f := BuildFederation(FederationConfig{
		Seed: s.Seed, Cities: s.Cities, Shards: shards, City: ccfg,
	})
	h := s.Horizon()
	if s.EdgeRate > 0 {
		f.StartEdgeTraffic(h, s.EdgeRate)
	}
	if s.DCCRate > 0 {
		f.StartDCCTraffic(h, s.DCCRate)
	}
	if s.InterCity > 0 && s.Cities > 1 {
		f.StartInterCityDCC(h, s.InterCity)
	}
	return f
}
