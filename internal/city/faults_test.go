package city

import (
	"testing"

	"df3/internal/sim"
	"df3/internal/workload"
)

func TestFaultInjectionWorkConserved(t *testing.T) {
	cfg := smallCfg()
	cfg.MTBF = 12 * sim.Hour // aggressive: several outages over the run
	cfg.MTTR = sim.Hour
	c := Build(cfg)
	c.StartDCCTraffic(sim.Day, 1)
	c.Run(4 * sim.Day)
	if c.Outages.Value() == 0 {
		t.Fatal("no outages injected with a 12h MTBF")
	}
	if c.MW.DCC.JobsDone.Value() == 0 {
		t.Fatal("no jobs completed under failures")
	}
	// Work conservation: everything submitted eventually completes once
	// machines come back; nothing may be stuck assigned or queued.
	assigned := 0
	queued := 0
	for _, b := range c.Buildings {
		queued += b.Cluster.DCCQueueLen()
		for _, w := range b.Cluster.Workers() {
			assigned += w.M.AssignedTasks()
		}
	}
	if assigned != 0 || queued != 0 {
		t.Errorf("work stuck after drain: assigned=%d queued=%d", assigned, queued)
	}
}

func TestFaultInjectionComfortSurvives(t *testing.T) {
	// The backup resistor covers failed machines: hosts stay warm even
	// when their server is out for repair.
	cfg := smallCfg()
	cfg.MTBF = sim.Day
	cfg.MTTR = 4 * sim.Hour
	c := Build(cfg)
	stop := c.SaturateDCC(600, 32)
	defer stop()
	c.Run(4 * sim.Day)
	if c.Outages.Value() == 0 {
		t.Skip("no outage drawn in this seed universe")
	}
	for _, r := range c.Rooms() {
		if r.Comfort.InBandFraction() < 0.7 {
			t.Errorf("room b%d-r%d comfort %v despite backup",
				r.Building, r.Index, r.Comfort.InBandFraction())
		}
	}
	if c.ResistorEnergy() <= 0 {
		t.Error("resistor never engaged during outages")
	}
}

// TestBoilerFaultSurvived: armFaults arms the boiler worker like any
// other machine. When the one 200-CPU boiler of a plant building goes
// down, the building's heat loop must ride through on thermal inertia and
// the DCC backlog stranded on the boiler must drain once it returns.
func TestBoilerFaultSurvived(t *testing.T) {
	cfg := smallCfg()
	cfg.BoilerBuildings = 1
	cfg.MTBF = 12 * sim.Hour
	cfg.MTTR = sim.Hour
	c := Build(cfg)
	c.StartDCCTraffic(sim.Day, 1)
	c.Run(4 * sim.Day)
	if c.Outages.Value() == 0 {
		t.Fatal("no outages injected with a 12h MTBF")
	}
	boiler := c.Buildings[0]
	if boiler.Boiler == nil {
		t.Fatal("building 0 is not a boiler plant")
	}
	// Heat loop survives: rooms heated by the failed boiler stay mostly
	// in band (the water loop and building mass carry the 1h repairs).
	for _, r := range boiler.Rooms {
		if got := r.Comfort.InBandFraction(); got < 0.5 {
			t.Errorf("boiler room b%d-r%d comfort %v; heat loop collapsed", r.Building, r.Index, got)
		}
	}
	// DCC backlog survives: the cluster's share of jobs completes and
	// nothing is left assigned or queued on the repaired boiler.
	if c.MW.DCC.JobsDone.Value() == 0 {
		t.Fatal("no jobs completed under boiler failures")
	}
	if got := boiler.Cluster.DCCQueueLen(); got != 0 {
		t.Errorf("%d tasks stuck in the boiler cluster queue", got)
	}
	for _, w := range boiler.Cluster.Workers() {
		if got := w.M.AssignedTasks(); got != 0 {
			t.Errorf("%d tasks stuck on the boiler after drain", got)
		}
	}
}

func TestNoFaultsByDefault(t *testing.T) {
	c := Build(smallCfg())
	c.Run(2 * sim.Day)
	if c.Outages.Value() != 0 {
		t.Error("outages injected with MTBF disabled")
	}
}

// TestLinkAndGatewayFaultInjection drives the network-chaos knobs through
// the scenario layer and checks the request ledgers still balance.
func TestLinkAndGatewayFaultInjection(t *testing.T) {
	cfg := smallCfg()
	cfg.LinkMTBF = map[string]sim.Time{"metro": 6 * sim.Hour, "lan": 12 * sim.Hour}
	cfg.LinkLoss = map[string]float64{"lan": 0.01, "metro": 0.02}
	cfg.GatewayMTBF = 12 * sim.Hour
	cfg.Middleware.ResponseTimeout = 1
	cfg.Middleware.EdgeMaxRetries = 3
	cfg.Middleware.DCCMaxRetries = 2
	cfg.Middleware.DCCRetryBackoff = 0.5
	c := Build(cfg)
	horizon := 2 * sim.Day
	c.StartEdgeTraffic(horizon, 1)
	c.StartDCCTraffic(horizon, 1)
	c.Run(horizon + 6*sim.Hour)
	if c.LinkOutages.Value() == 0 {
		t.Error("no link outages injected")
	}
	if c.GatewayOutages.Value() == 0 {
		t.Error("no gateway outages injected")
	}
	if c.MessagesLost.Value() == 0 {
		t.Error("no messages lost under 1-2% loss")
	}
	e := &c.MW.Edge
	if e.Submitted.Value() != e.Served.Value()+e.Rejected.Value() {
		t.Errorf("edge conservation broken: %d != %d + %d",
			e.Submitted.Value(), e.Served.Value(), e.Rejected.Value())
	}
	d := &c.MW.DCC
	if d.JobsSubmitted.Value() != d.JobsDone.Value()+d.JobsLost.Value() {
		t.Errorf("job conservation broken: %d != %d + %d",
			d.JobsSubmitted.Value(), d.JobsDone.Value(), d.JobsLost.Value())
	}
}

func TestFaultsDeterministic(t *testing.T) {
	run := func() int64 {
		cfg := smallCfg()
		cfg.MTBF = 12 * sim.Hour
		c := Build(cfg)
		c.Run(5 * sim.Day)
		return c.Outages.Value()
	}
	if run() != run() {
		t.Error("fault injection not deterministic")
	}
}

// workloadJob builds a small uniform batch job for tests.
func workloadJob(n int) workload.BatchJob {
	works := make([]float64, n)
	for i := range works {
		works[i] = 60
	}
	return workload.BatchJob{ID: 7, TaskWork: works, Input: 1e6, Output: 1e6}
}
