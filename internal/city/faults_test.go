package city

import (
	"testing"

	"df3/internal/sim"
	"df3/internal/workload"
)

func TestFaultInjectionWorkConserved(t *testing.T) {
	cfg := smallCfg()
	cfg.MTBF = 12 * sim.Hour // aggressive: several outages over the run
	cfg.MTTR = sim.Hour
	c := Build(cfg)
	c.StartDCCTraffic(sim.Day, 1)
	c.Run(4 * sim.Day)
	if c.Outages.Value() == 0 {
		t.Fatal("no outages injected with a 12h MTBF")
	}
	if c.MW.DCC.JobsDone.Value() == 0 {
		t.Fatal("no jobs completed under failures")
	}
	// Work conservation: everything submitted eventually completes once
	// machines come back; nothing may be stuck assigned or queued.
	assigned := 0
	queued := 0
	for _, b := range c.Buildings {
		queued += b.Cluster.DCCQueueLen()
		for _, w := range b.Cluster.Workers() {
			assigned += w.M.AssignedTasks()
		}
	}
	if assigned != 0 || queued != 0 {
		t.Errorf("work stuck after drain: assigned=%d queued=%d", assigned, queued)
	}
}

func TestFaultInjectionComfortSurvives(t *testing.T) {
	// The backup resistor covers failed machines: hosts stay warm even
	// when their server is out for repair.
	cfg := smallCfg()
	cfg.MTBF = sim.Day
	cfg.MTTR = 4 * sim.Hour
	c := Build(cfg)
	stop := c.SaturateDCC(600, 32)
	defer stop()
	c.Run(4 * sim.Day)
	if c.Outages.Value() == 0 {
		t.Skip("no outage drawn in this seed universe")
	}
	for _, r := range c.Rooms() {
		if r.Comfort.InBandFraction() < 0.7 {
			t.Errorf("room b%d-r%d comfort %v despite backup",
				r.Building, r.Index, r.Comfort.InBandFraction())
		}
	}
	if c.ResistorEnergy() <= 0 {
		t.Error("resistor never engaged during outages")
	}
}

func TestNoFaultsByDefault(t *testing.T) {
	c := Build(smallCfg())
	c.Run(2 * sim.Day)
	if c.Outages.Value() != 0 {
		t.Error("outages injected with MTBF disabled")
	}
}

func TestFaultsDeterministic(t *testing.T) {
	run := func() int64 {
		cfg := smallCfg()
		cfg.MTBF = 12 * sim.Hour
		c := Build(cfg)
		c.Run(5 * sim.Day)
		return c.Outages.Value()
	}
	if run() != run() {
		t.Error("fault injection not deterministic")
	}
}

// workloadJob builds a small uniform batch job for tests.
func workloadJob(n int) workload.BatchJob {
	works := make([]float64, n)
	for i := range works {
		works[i] = 60
	}
	return workload.BatchJob{ID: 7, TaskWork: works, Input: 1e6, Output: 1e6}
}
