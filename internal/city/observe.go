// Observability wiring for a built city: one call turns on causal span
// tracing across the middleware, network fabric and machine fleet, and one
// call builds the labeled metrics registry that the df3d daemon serves as
// Prometheus text exposition.
package city

import (
	"strconv"

	"df3/internal/metrics"
	"df3/internal/network"
	"df3/internal/trace"
)

// machineTraceBit offsets machine window-span trace ids into their own
// space so they never collide with edge-request or DCC-job trace ids.
const machineTraceBit = uint64(1) << 41

// EnableTracing installs rec on every traced layer: the middleware (request
// and job lifecycle spans plus the legacy event records), the network
// fabric (per-message and per-hop spans) and every machine (offline and
// derate window spans). Call it once, before Run; tracing is pure
// observation and never perturbs the simulation's event order or RNG draws.
func (c *City) EnableTracing(rec *trace.Recorder) {
	c.MW.Tracer = rec
	c.Net.Tracer = rec
	tag := uint64(1)
	for _, m := range c.Fleet.Machines {
		m.Tracer = rec
		m.TraceTag = machineTraceBit | tag
		tag++
	}
	for _, m := range c.DCFleet.Machines {
		m.Tracer = rec
		m.TraceTag = machineTraceBit | tag
		tag++
	}
}

// Observability builds (once) the city's labeled metrics registry: kernel,
// network, middleware-ledger, city-fault, fleet and datacenter-pool
// instruments, all read-through — values are computed at scrape time from
// the live simulation state, so registering costs the hot paths nothing.
func (c *City) Observability() *metrics.Registry {
	if c.registry != nil {
		return c.registry
	}
	r := metrics.NewRegistry()
	c.registry = r

	// Kernel.
	r.GaugeFunc("df3_sim_time_seconds", "current simulated time", nil,
		func() float64 { return c.Engine.Now() })
	r.CounterFunc("df3_kernel_events_fired_total", "events executed by the kernel", nil,
		func() int64 { return int64(c.Engine.Fired()) })
	r.GaugeFunc("df3_kernel_events_pending", "events currently scheduled", nil,
		func() float64 { return float64(c.Engine.Pending()) })

	// Network: fabric-level loss plus per-class link traffic.
	r.CounterFunc("df3_net_messages_lost_total", "messages dropped by the fabric", nil,
		c.Net.LostMessages)
	for _, class := range c.linkClasses() {
		class := class
		r.CounterFunc("df3_net_link_messages_total", "messages carried, by link class",
			metrics.Labels{"class": class}, func() int64 {
				var n int64
				c.eachLink(class, func(l *network.Link) { n += l.Messages() })
				return n
			})
		r.GaugeFunc("df3_net_link_bytes_total", "bytes carried, by link class",
			metrics.Labels{"class": class}, func() float64 {
				var n float64
				c.eachLink(class, func(l *network.Link) { n += l.BytesCarried() })
				return n
			})
	}

	// Middleware edge ledger.
	edge := &c.MW.Edge
	r.CounterFunc("df3_edge_submitted_total", "edge requests injected", nil, edge.Submitted.Value)
	r.CounterFunc("df3_edge_served_total", "edge requests completed", nil, edge.Served.Value)
	r.CounterFunc("df3_edge_rejected_total", "edge requests dropped", nil, edge.Rejected.Value)
	r.CounterFunc("df3_edge_missed_total", "served past their deadline", nil, edge.Missed.Value)
	r.CounterFunc("df3_edge_retries_total", "timeout/loss re-submissions", nil, edge.Retries.Value)
	r.CounterFunc("df3_edge_timedout_total", "response-timeout expiries", nil, edge.TimedOut.Value)
	r.CounterFunc("df3_edge_preemptions_total", "DCC tasks evicted for edge work", nil, edge.Preemptions.Value)
	r.CounterFunc("df3_edge_direct_fallbacks_total", "direct requests rerouted via gateway", nil, edge.DirectFallbacks.Value)
	r.CounterFunc("df3_edge_offloads_total", "offload actions, by direction",
		metrics.Labels{"direction": "horizontal"}, edge.Horizontal.Value)
	r.CounterFunc("df3_edge_offloads_total", "",
		metrics.Labels{"direction": "vertical"}, edge.Vertical.Value)
	for _, q := range []struct {
		name string
		p    float64
	}{{"0.5", 0.5}, {"0.95", 0.95}, {"0.99", 0.99}} {
		q := q
		r.GaugeFunc("df3_edge_latency_seconds", "end-to-end latency quantiles of served requests",
			metrics.Labels{"quantile": q.name}, func() float64 { return edge.Latency.Quantile(q.p) })
	}

	// Middleware DCC ledger.
	dcc := &c.MW.DCC
	r.CounterFunc("df3_dcc_jobs_submitted_total", "non-empty batch jobs injected", nil, dcc.JobsSubmitted.Value)
	r.CounterFunc("df3_dcc_jobs_done_total", "batch jobs completed", nil, dcc.JobsDone.Value)
	r.CounterFunc("df3_dcc_jobs_lost_total", "jobs lost past the submit-retry budget", nil, dcc.JobsLost.Value)
	r.CounterFunc("df3_dcc_submit_retries_total", "payload re-submissions", nil, dcc.SubmitRetries.Value)
	r.CounterFunc("df3_dcc_tasks_done_total", "batch tasks completed", nil, dcc.TasksDone.Value)
	r.GaugeFunc("df3_dcc_core_seconds_total", "completed work in core-seconds", nil,
		func() float64 { return dcc.WorkDone })

	// City fault ledger.
	r.CounterFunc("df3_faults_machine_outages_total", "machine failures injected", nil, c.Outages.Value)
	r.CounterFunc("df3_faults_link_outages_total", "link failures injected", nil, c.LinkOutages.Value)
	r.CounterFunc("df3_faults_gateway_outages_total", "building gateway failures injected", nil, c.GatewayOutages.Value)
	r.CounterFunc("df3_faults_messages_lost_total", "messages lost to chaos (city ledger)", nil, c.MessagesLost.Value)

	// Fleet capacity and energy efficiency.
	for _, fl := range []struct {
		name string
		cap  func() float64
	}{
		{"all", c.Fleet.Capacity},
		{"heater", c.HeaterFleet.Capacity},
		{"boiler", c.BoilerFleet.Capacity},
		{"datacenter", c.DCFleet.Capacity},
	} {
		r.GaugeFunc("df3_fleet_capacity_cores", "live capacity in core-equivalents, by fleet",
			metrics.Labels{"fleet": fl.name}, fl.cap)
	}
	r.GaugeFunc("df3_fleet_pue", "power usage effectiveness of the DF fleet", nil,
		func() float64 { return c.Fleet.PUE(c.Engine.Now()) })

	// Per-cluster queue depths.
	for _, cl := range c.MW.Clusters() {
		cl := cl
		labels := metrics.Labels{"cluster": strconv.Itoa(cl.ID)}
		r.GaugeFunc("df3_cluster_edge_queue", "edge queue depth, by cluster", labels,
			func() float64 { return float64(cl.EdgeQueueLen()) })
		r.GaugeFunc("df3_cluster_dcc_queue", "DCC queue depth, by cluster", labels,
			func() float64 { return float64(cl.DCCQueueLen()) })
	}

	// Datacenter scheduling pool.
	if pool := c.MW.DatacenterPool(); pool != nil {
		r.CounterFunc("df3_dc_pool_dropped_total", "datacenter submissions dropped", nil, pool.Dropped)
		r.GaugeFunc("df3_dc_pool_free_slots", "free datacenter slots", nil,
			func() float64 { return float64(pool.FreeSlots()) })
		r.GaugeFunc("df3_dc_pool_wait_seconds_mean", "mean queue wait at the datacenter", nil,
			func() float64 { return pool.WaitStats().Mean() })
	}

	// Trace recorder health (only present when tracing is on).
	if rec := c.MW.Tracer; rec != nil {
		r.CounterFunc("df3_trace_dropped_events_total", "events evicted from the trace ring", nil, rec.DroppedEvents)
		r.CounterFunc("df3_trace_dropped_spans_total", "spans evicted from the trace ring", nil, rec.DroppedSpans)
		r.GaugeFunc("df3_trace_open_spans", "spans begun but not yet ended", nil,
			func() float64 { return float64(len(rec.OpenSpans())) })
	}
	return r
}

// eachLink visits both directed links of every connected pair whose class
// matches.
func (c *City) eachLink(class string, visit func(*network.Link)) {
	for _, p := range c.Net.Pairs() {
		for _, l := range [2]*network.Link{c.Net.Link(p[0], p[1]), c.Net.Link(p[1], p[0])} {
			if l != nil && l.Class == class {
				visit(l)
			}
		}
	}
}

// linkClasses returns the distinct link classes in wiring order.
func (c *City) linkClasses() []string {
	seen := map[string]bool{}
	var out []string
	for _, p := range c.Net.Pairs() {
		l := c.Net.Link(p[0], p[1])
		if l == nil || seen[l.Class] {
			continue
		}
		seen[l.Class] = true
		out = append(out, l.Class)
	}
	return out
}
