package city

import (
	"fmt"

	"df3/internal/core"
	"df3/internal/network"
	"df3/internal/regulator"
	"df3/internal/sim"
	"df3/internal/thermal"
	"df3/internal/units"
)

// RadiatorMaxW is the hydronic radiator power of a boiler-heated room.
const RadiatorMaxW units.Watt = 800

// minLoopTemp is the loop temperature below which radiators deliver
// nothing useful.
const minLoopTemp units.Celsius = 35

// DHWPerRoomW is the year-round domestic hot-water draw per room: unlike
// space heating, hot water is consumed in summer too, which is what keeps
// digital boilers computing off-season (§II-B2).
const DHWPerRoomW units.Watt = 150

// BoilerPlant is a digital boiler heating a whole building through a water
// loop (§II-B2): rooms draw thermostatically from the loop, the boiler's
// compute budget is regulated on loop temperature. Because the loop
// buffers heat, the boiler keeps computing through demand troughs — and
// wastes heat when it computes with no draw, the §III-C concern.
type BoilerPlant struct {
	Building int
	Worker   *core.Worker
	Loop     *thermal.WaterLoop
	Reg      *regulator.BoilerLoop

	city        *City
	rooms       []*Room
	thermostats []regulator.Thermostat
	lastDraw    units.Watt
}

// newBoilerPlant creates the plant's machine and water loop on the
// building's gateway node (the boiler lives in the basement, wired
// straight into the building switch).
func newBoilerPlant(c *City, b int, gw network.NodeID) *BoilerPlant {
	m := c.Cfg.BoilerSpec.Build(c.Engine, fmt.Sprintf("boiler-b%d", b))
	c.Fleet.Add(m)
	c.BoilerFleet.Add(m)
	node := c.Net.AddNode(fmt.Sprintf("b%d-boiler", b))
	c.Net.Connect(node, gw, network.BoilerNet)
	p := &BoilerPlant{
		Building: b,
		Worker:   &core.Worker{M: m, Node: node},
		Loop:     thermal.NewWaterLoop(1500),
		city:     c,
	}
	p.Reg = &regulator.BoilerLoop{
		Loop:     p.Loop,
		Machine:  m,
		Target:   55,
		Band:     6,
		Draw:     func(sim.Time) units.Watt { return p.lastDraw },
		AlwaysOn: c.Cfg.AlwaysOnBoilers,
		Derate:   c.Cfg.Derate,
	}
	return p
}

// attach registers a room as heated by this plant.
func (p *BoilerPlant) attach(r *Room) {
	p.rooms = append(p.rooms, r)
	p.thermostats = append(p.thermostats, p.city.thermostat())
}

// start begins the building tick (rooms) and the boiler regulator on the
// shared control tick domain. The building tick subscribes first so each
// control round steps rooms, then the boiler — deterministic because
// domain subscribers fire in registration order.
func (p *BoilerPlant) start() {
	period := p.city.Cfg.ControlPeriod
	p.city.Engine.Domain(period).Subscribe(func(now sim.Time) { p.tick(now, period) })
	p.Reg.Start(p.city.Engine, period)
}

// tick steps every room: its radiator draws from the loop per the room
// thermostat (when the loop is hot enough), and the zone integrates.
func (p *BoilerPlant) tick(now sim.Time, dt sim.Time) {
	outdoor := p.city.Weather.OutdoorTemp(now)
	total := units.Watt(0)
	for i, r := range p.rooms {
		setpoint, occupied := r.Schedule.At(now)
		frac := 0.0
		if setpoint > 0 {
			frac = p.thermostats[i].Fraction(r.Zone.Temp, setpoint)
		}
		delivered := units.Watt(0)
		if p.Loop.Temp > minLoopTemp {
			delivered = units.Watt(frac * float64(RadiatorMaxW))
		}
		gains := p.city.gains(r.Schedule)(now)
		vent := thermal.VentLoss(r.Zone.Temp, regulator.VentCeiling(setpoint), outdoor, regulator.VentCoeffWPerK)
		r.Zone.Step(dt, delivered, gains-vent, outdoor)
		r.Comfort.Observe(now, dt, r.Zone.Temp, setpoint, occupied && setpoint > 0)
		total += delivered
	}
	if p.Loop.Temp > minLoopTemp {
		total += DHWPerRoomW * units.Watt(len(p.rooms))
	}
	p.lastDraw = total
}
