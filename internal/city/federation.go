package city

import (
	"fmt"
	"math"
	"strconv"

	"df3/internal/metrics"
	"df3/internal/network"
	"df3/internal/obs"
	"df3/internal/rng"
	"df3/internal/shard"
	"df3/internal/sim"
	"df3/internal/trace"
	"df3/internal/units"
	"df3/internal/workload"
)

// A Federation is the nation-scale workload class: many cities, each a
// complete City scenario on its own private engine, coupled only through
// the inter-city Backbone and executed by the sharded kernel. The shard
// partition follows city order (cities are registered in geographic
// neighbourhood order), so shards inherit network/thermal locality, and the
// kernel's lookahead is the backbone's minimum delay — cross-city traffic
// is staged batch work, which is exactly what makes a usable lookahead.
//
// Every city derives its RNG universe from its own ForkNamed substream and
// every inter-city message carries a full backbone delay, so a federation
// run is byte-identical at any shard count, including one.
type FederationConfig struct {
	// Seed drives every city's substream and the offload generators.
	Seed uint64
	// Cities is the number of member cities.
	Cities int
	// Shards is the kernel worker count (default 1).
	Shards int
	// City is the per-city template; its Seed field is replaced by a
	// per-city substream of Seed.
	City Config
	// Backbone parameterises the inter-city WAN (zero value = default).
	Backbone network.BackboneSpec
}

// Federation is the built scenario.
type Federation struct {
	Cfg      FederationConfig
	Kernel   *shard.Kernel
	Backbone *network.Backbone
	Cities   []*City
	// Driver advances the kernel's clock in Run (batch when nil). A
	// sim.Paced driver here runs the whole sharded federation in real
	// time, draining external injections at slice boundaries.
	Driver sim.Driver

	lps []*shard.LP
	// partition is the city→shard assignment applied at build.
	partition []int
	// exported/imported count inter-city jobs per city; slot i is only
	// touched from city i's engine, so shard workers never contend.
	exported []int64
	imported []int64
	recs     []*trace.Recorder
	registry *metrics.Registry
}

// BuildFederation wires the cities onto a sharded kernel.
func BuildFederation(cfg FederationConfig) *Federation {
	if cfg.Cities < 1 {
		panic("city: federation needs at least one city")
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.Backbone == (network.BackboneSpec{}) {
		cfg.Backbone = network.DefaultBackbone()
	}
	bb := network.NewBackbone(cfg.Backbone, cfg.Cities)
	k := shard.NewKernel(cfg.Shards, bb.MinDelay())
	f := &Federation{
		Cfg: cfg, Kernel: k, Backbone: bb,
		exported: make([]int64, cfg.Cities),
		imported: make([]int64, cfg.Cities),
	}
	horizon := sim.Time(math.Inf(1))
	for i := 0; i < cfg.Cities; i++ {
		ccfg := cfg.City
		ccfg.Seed = rng.New(cfg.Seed).ForkNamed(fmt.Sprintf("city-%d", i)).Uint64()
		c := Build(ccfg)
		f.Cities = append(f.Cities, c)
		f.lps = append(f.lps, k.AddLP(fmt.Sprintf("city-%d", i), c.Engine, horizon))
	}
	assign := shard.PartitionContiguous(cfg.Cities, cfg.Shards, nil)
	k.Partition(assign)
	bb.AssignShards(assign)
	f.partition = assign
	// Inter-city traffic travels as (kind, payload) messages so a
	// federation partitioned across processes behaves identically to an
	// in-process one (remote.go holds the codec).
	k.SetDecoder(f.decodeMsg)
	return f
}

// Partition returns the city→shard assignment, in city order — the merge
// metadata a checkpoint records so a restore can prove the rebuilt
// federation partitions identically (per-shard snapshots only compose
// deterministically when the partition is the same).
func (f *Federation) Partition() []int {
	out := make([]int, len(f.partition))
	copy(out, f.partition)
	return out
}

// EngineStates captures every city engine's kernel-visible state, in city
// order. Each city lives on exactly one shard, so this is the federation's
// per-shard snapshot set; the engines must be quiescent (after Run, or at
// a paced slice boundary under Sync).
func (f *Federation) EngineStates() []sim.EngineState {
	out := make([]sim.EngineState, len(f.Cities))
	for i, c := range f.Cities {
		out[i] = c.Engine.Snapshot()
	}
	return out
}

// RestoreEngineStates verifies a rebuilt federation against checkpointed
// per-city engine states (see sim.RestoreEngine). Any divergence is fatal
// for a restore: continuing would fork history.
func (f *Federation) RestoreEngineStates(states []sim.EngineState) error {
	if len(states) != len(f.Cities) {
		return fmt.Errorf("city: restore has %d engine states for %d cities", len(states), len(f.Cities))
	}
	for i, c := range f.Cities {
		if err := sim.RestoreEngine(c.Engine, states[i]); err != nil {
			return fmt.Errorf("city %d: %w", i, err)
		}
	}
	return nil
}

// StartEdgeTraffic starts the per-building edge workload in every city.
func (f *Federation) StartEdgeTraffic(until sim.Time, rateScale float64) {
	for _, c := range f.Cities {
		c.StartEdgeTraffic(until, rateScale)
	}
}

// StartDCCTraffic starts each city's local operator batch stream.
func (f *Federation) StartDCCTraffic(until sim.Time, jobsPerHour float64) {
	for _, c := range f.Cities {
		c.StartDCCTraffic(until, jobsPerHour)
	}
}

// StartInterCityDCC launches the federation's boundary workload: each city
// exports batch jobs at the given rate to other member cities, staged over
// the backbone. Destinations and job shapes come from the exporting city's
// own substream, so the traffic matrix is a pure function of the seed.
func (f *Federation) StartInterCityDCC(until sim.Time, jobsPerHour float64) {
	if jobsPerHour <= 0 || f.Cfg.Cities < 2 {
		return
	}
	rate := jobsPerHour / 3600
	for i := range f.Cities {
		i := i
		src := f.Cities[i]
		stream := rng.New(f.Cfg.Seed).ForkNamed(fmt.Sprintf("offload-%d", i))
		e := src.Engine
		jobID := uint64(0)
		var schedule func()
		schedule = func() {
			at := e.Now() + stream.Exp(rate)
			if at > until {
				return
			}
			e.AtTransient(at, func() {
				frames := 8 + stream.Intn(25)
				works := make([]float64, frames)
				for w := range works {
					works[w] = stream.Pareto(120, 2.2)
				}
				jobID++
				job := workload.BatchJob{
					ID:       uint64(i)<<32 | jobID,
					TaskWork: works,
					Input:    2e6, Output: 1e6,
				}
				d := stream.Intn(f.Cfg.Cities - 1)
				if d >= i {
					d++
				}
				f.submitRemote(i, d, job)
				schedule()
			})
		}
		schedule()
	}
}

// submitRemote ships one batch job src→dst across the backbone: accounting
// and delay at the boundary link, delivery through the kernel mailbox into
// the destination city's middleware. The job goes as a serialisable
// payload (decoded by decodeMsg on the owning node), so the same path
// serves in-process shards and cross-process workers identically.
func (f *Federation) submitRemote(srcCity, dstCity int, job workload.BatchJob) {
	size := units.Byte(float64(job.Input) * float64(len(job.TaskWork)))
	delay := f.Backbone.Account(srcCity, dstCity, size)
	f.exported[srcCity]++
	f.Kernel.SendMsg(f.lps[srcCity], f.lps[dstCity], delay, size, MsgKindInterCityJob, encodeJob(job))
}

// Now returns the federation's global clock (see shard.Kernel.Now).
func (f *Federation) Now() sim.Time { return f.Kernel.Now() }

// Run advances the whole federation to `until` under the sharded kernel,
// through the installed driver (batch run-to-completion when none is set).
func (f *Federation) Run(until sim.Time) {
	d := f.Driver
	if d == nil {
		d = sim.Batch{}
	}
	d.Drive(f.Kernel, until)
}

// EnableTracing gives every city its own span recorder (recorders are not
// concurrency-safe, and cities on different shards trace concurrently),
// each capped at `capacity` spans, registered as one process per city.
// MergedTrace folds them into a single export after the run.
func (f *Federation) EnableTracing(capacity int) {
	f.recs = make([]*trace.Recorder, len(f.Cities))
	for i, c := range f.Cities {
		rec := trace.NewRecorder(capacity)
		rec.BeginProcess(fmt.Sprintf("city-%d", i))
		c.EnableTracing(rec)
		f.recs[i] = rec
	}
}

// AttachFlight streams every city recorder's completed spans into the
// flight recorder, one ring per city (EnableTracing must have been called
// first — it creates the recorders). The sink fires on the recording
// goroutine, i.e. the city's shard worker; Flight gives each source its
// own ring, so workers never contend. Attaching is pure observation: a
// run with a flight recorder is byte-identical to one without
// (checksum-asserted in tests).
func (f *Federation) AttachFlight(fl *obs.Flight) {
	if f.recs == nil {
		panic("city: AttachFlight before EnableTracing")
	}
	for i, rec := range f.recs {
		fl.Attach(fmt.Sprintf("city-%d", i), rec)
	}
}

// MergedTrace merges the per-city recorders, in city order, into one
// recorder for export. It returns nil when tracing was never enabled.
func (f *Federation) MergedTrace() *trace.Recorder {
	if f.recs == nil {
		return nil
	}
	out := trace.NewRecorder(0)
	for _, rec := range f.recs {
		out.Merge(rec)
	}
	return out
}

// Exported returns the number of jobs city i shipped to other cities.
func (f *Federation) Exported(i int) int64 { return f.exported[i] }

// Imported returns the number of jobs city i received from other cities.
func (f *Federation) Imported(i int) int64 { return f.imported[i] }

// Summary aggregates the federation's headline counters across cities.
type Summary struct {
	Cities                            int
	EdgeSubmitted, EdgeServed         int64
	JobsSubmitted, JobsDone, JobsLost int64
	WorkDone                          float64
	Exported, Imported                int64
	EventsFired                       uint64
}

// CityState is one city's observable outcome: every ledger, clock and
// counter that Summary and Checksum fold over. It is the unit of result
// merging for a multi-node run — each worker reports the CityStates of
// the cities it owns, and the coordinator reassembles the exact Summary
// and Checksum a single-process run computes, because both are defined
// as pure functions of these records (SummarizeStates, ChecksumStates).
// The statefp contract pins the reader, the checksum and the wire codec
// to this field set: adding a field without extending all four is a
// df3lint finding.
//
//df3:statefp df3/internal/city.Federation.CityState df3/internal/city.ChecksumStates df3/internal/wire.encodeCityState df3/internal/wire.decodeCityState
type CityState struct {
	City            int
	EdgeSubmitted   int64
	EdgeServed      int64
	EdgeRejected    int64
	JobsSubmitted   int64
	JobsDone        int64
	JobsLost        int64
	TasksDone       int64
	WorkDone        float64
	EdgeLatencyMean float64
	EventsFired     uint64
	SimTime         sim.Time
	Exported        int64
	Imported        int64
}

// CityState reads city i's observable outcome. Call it only on the node
// that owns city i (elsewhere the city never ran).
func (f *Federation) CityState(i int) CityState {
	c := f.Cities[i]
	return CityState{
		City:            i,
		EdgeSubmitted:   c.MW.Edge.Submitted.Value(),
		EdgeServed:      c.MW.Edge.Served.Value(),
		EdgeRejected:    c.MW.Edge.Rejected.Value(),
		JobsSubmitted:   c.MW.DCC.JobsSubmitted.Value(),
		JobsDone:        c.MW.DCC.JobsDone.Value(),
		JobsLost:        c.MW.DCC.JobsLost.Value(),
		TasksDone:       c.MW.DCC.TasksDone.Value(),
		WorkDone:        c.MW.DCC.WorkDone,
		EdgeLatencyMean: c.MW.Edge.Latency.Mean(),
		EventsFired:     c.Engine.Fired(),
		SimTime:         c.Engine.Now(),
		Exported:        f.exported[i],
		Imported:        f.imported[i],
	}
}

// CityStates reads every city's observable outcome, in city order.
func (f *Federation) CityStates() []CityState {
	out := make([]CityState, len(f.Cities))
	for i := range f.Cities {
		out[i] = f.CityState(i)
	}
	return out
}

// SummarizeStates folds per-city records into one Summary.
func SummarizeStates(states []CityState) Summary {
	s := Summary{Cities: len(states)}
	for _, cs := range states {
		s.EdgeSubmitted += cs.EdgeSubmitted
		s.EdgeServed += cs.EdgeServed
		s.JobsSubmitted += cs.JobsSubmitted
		s.JobsDone += cs.JobsDone
		s.JobsLost += cs.JobsLost
		s.WorkDone += cs.WorkDone
		s.Exported += cs.Exported
		s.Imported += cs.Imported
		s.EventsFired += cs.EventsFired
	}
	return s
}

// Summarize folds every city's ledgers into one Summary.
func (f *Federation) Summarize() Summary {
	return SummarizeStates(f.CityStates())
}

// ChecksumStates folds per-city records — which must be in city order;
// the fold is deliberately order-sensitive — into the federation digest.
func ChecksumStates(states []CityState) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= prime
	}
	mixF := func(v float64) { mix(math.Float64bits(v)) }
	for _, cs := range states {
		mix(uint64(cs.City))
		mix(uint64(cs.EdgeSubmitted))
		mix(uint64(cs.EdgeServed))
		mix(uint64(cs.EdgeRejected))
		mix(uint64(cs.JobsSubmitted))
		mix(uint64(cs.JobsDone))
		mix(uint64(cs.JobsLost))
		mix(uint64(cs.TasksDone))
		mixF(cs.WorkDone)
		mixF(cs.EdgeLatencyMean)
		mix(cs.EventsFired)
		mixF(float64(cs.SimTime))
		mix(uint64(cs.Exported))
		mix(uint64(cs.Imported))
	}
	return h
}

// Checksum folds every city's observable outcome — ledgers, latency sums,
// event counts, clocks — into one FNV-1a digest, in city order. Two runs of
// the same federation are equivalent iff their checksums match; E19, the
// equivalence tests and the multi-node coordinator compare it across
// shard counts, node counts and process boundaries.
func (f *Federation) Checksum() uint64 {
	return ChecksumStates(f.CityStates())
}

// Observability builds (once) the federation's labeled registry: kernel and
// boundary series labeled by shard, plus each city's headline ledgers
// labeled {city, shard}. Scrape after Run (or between Runs): read-through
// funcs touch live engine state.
func (f *Federation) Observability() *metrics.Registry {
	if f.registry != nil {
		return f.registry
	}
	r := metrics.NewRegistry()
	f.registry = r

	r.GaugeFunc("df3_shard_windows", "synchronization windows executed", nil,
		func() float64 { return float64(f.Kernel.Stats().Windows) })
	r.GaugeFunc("df3_shard_speedup", "critical-path speedup over the serial kernel", nil,
		func() float64 { return f.Kernel.Stats().Speedup() })
	r.CounterFunc("df3_shard_messages_total", "cross-LP messages through the kernel", nil,
		func() int64 { return f.Kernel.Stats().Sent })
	r.CounterFunc("df3_shard_cross_shard_messages_total", "messages that crossed a shard boundary", nil,
		func() int64 { return f.Kernel.Stats().CrossShard })
	r.CounterFunc("df3_backbone_messages_total", "inter-city transfers on the backbone", nil,
		f.Backbone.Messages)
	for s := 0; s < f.Kernel.Shards(); s++ {
		s := s
		labels := metrics.Labels{"shard": strconv.Itoa(s)}
		r.GaugeFunc("df3_shard_boundary_bytes_total", "bytes sent across shard boundaries, by source shard",
			labels, func() float64 {
				var total float64
				for _, p := range f.Kernel.Boundary() {
					if p.SrcShard == s && p.DstShard != s {
						total += p.Bytes
					}
				}
				return total
			})
		// Profiler read-throughs report 0 until Kernel.EnableProfile; the
		// kernel's barrier orders worker writes before a quiescent scrape.
		r.GaugeFunc("df3_shard_busy_seconds", "profiled wall time advancing this shard's engines",
			labels, func() float64 { return f.Kernel.BusySeconds(s) })
		r.GaugeFunc("df3_shard_idle_seconds", "profiled barrier-idle wall time for this shard",
			labels, func() float64 { return f.Kernel.IdleSeconds(s) })
	}
	for i, c := range f.Cities {
		i, c := i, c
		labels := metrics.Labels{
			"city":  strconv.Itoa(i),
			"shard": strconv.Itoa(f.lps[i].Shard()),
		}
		r.GaugeFunc("df3_city_sim_time_seconds", "per-city simulated time", labels,
			func() float64 { return c.Engine.Now() })
		r.CounterFunc("df3_city_events_fired_total", "per-city kernel events", labels,
			func() int64 { return int64(c.Engine.Fired()) })
		r.CounterFunc("df3_city_edge_served_total", "edge requests served, by city", labels,
			c.MW.Edge.Served.Value)
		r.CounterFunc("df3_city_dcc_jobs_done_total", "batch jobs completed, by city", labels,
			c.MW.DCC.JobsDone.Value)
		r.CounterFunc("df3_city_jobs_exported_total", "jobs shipped to other cities", labels,
			func() int64 { return f.exported[i] })
		r.CounterFunc("df3_city_jobs_imported_total", "jobs received from other cities", labels,
			func() int64 { return f.imported[i] })
	}
	return r
}
