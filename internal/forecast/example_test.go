package forecast_test

import (
	"fmt"

	"df3/internal/forecast"
)

// ExampleFitThermosensitivity shows the §III-C workflow: fit heat demand
// against outdoor temperature, then predict a cold day.
func ExampleFitThermosensitivity() {
	truth := forecast.Thermosensitivity{Base: 100, Slope: 400, Threshold: 15}
	var temps, demand []float64
	for t := -5.0; t <= 30; t += 0.5 {
		temps = append(temps, t)
		demand = append(demand, truth.Predict(t))
	}
	model, err := forecast.FitThermosensitivity(temps, demand)
	if err != nil {
		panic(err)
	}
	fmt.Printf("slope %.0f W/K, threshold %.1f °C\n", model.Slope, model.Threshold)
	fmt.Printf("demand at -3 °C: %.0f W\n", model.Predict(-3))
	// Output:
	// slope 400 W/K, threshold 15.0 °C
	// demand at -3 °C: 7300 W
}

// ExampleHoltWinters forecasts one step of a perfectly periodic signal.
func ExampleHoltWinters() {
	hw := forecast.NewHoltWinters(0.5, 0.05, 0.5, 4)
	pattern := []float64{10, 20, 30, 20}
	for i := 0; i < 40; i++ {
		hw.Observe(pattern[i%4])
	}
	fmt.Printf("next: %.0f\n", hw.Forecast(1))
	// Output:
	// next: 10
}
