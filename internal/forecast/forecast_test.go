package forecast

import (
	"math"
	"testing"
	"testing/quick"

	"df3/internal/rng"
)

func TestThermosensitivityRecovery(t *testing.T) {
	// Synthesise demand from a known model and check the fit recovers it.
	truth := Thermosensitivity{Base: 200, Slope: 450, Threshold: 15}
	s := rng.New(1)
	var temps, demands []float64
	for i := 0; i < 2000; i++ {
		temp := s.Uniform(-5, 30)
		temps = append(temps, temp)
		demands = append(demands, truth.Predict(temp)+s.Normal(0, 50))
	}
	fit, err := FitThermosensitivity(temps, demands)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-450) > 25 {
		t.Errorf("slope = %v, want ~450", fit.Slope)
	}
	if math.Abs(fit.Threshold-15) > 1.01 {
		t.Errorf("threshold = %v, want ~15", fit.Threshold)
	}
	if math.Abs(fit.Base-200) > 60 {
		t.Errorf("base = %v, want ~200", fit.Base)
	}
}

func TestThermosensitivityPredictShape(t *testing.T) {
	m := Thermosensitivity{Base: 100, Slope: 300, Threshold: 15}
	if got := m.Predict(20); got != 100 {
		t.Errorf("warm prediction = %v, want flat base", got)
	}
	if got := m.Predict(5); got != 100+300*10 {
		t.Errorf("cold prediction = %v", got)
	}
	if m.Predict(0) <= m.Predict(10) {
		t.Error("demand not increasing as it gets colder")
	}
}

func TestFitRejectsBadInput(t *testing.T) {
	if _, err := FitThermosensitivity([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := FitThermosensitivity([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("too few observations accepted")
	}
	// Constant temperature above every threshold candidate: degenerate.
	if _, err := FitThermosensitivity(
		[]float64{25, 25, 25, 25},
		[]float64{1, 2, 3, 4},
	); err == nil {
		t.Error("degenerate data accepted")
	}
}

func TestHoltWintersTracksSeasonalSignal(t *testing.T) {
	h := NewHoltWinters(0.3, 0.05, 0.3, 24)
	signal := func(i int) float64 {
		return 1000 + 400*math.Sin(2*math.Pi*float64(i%24)/24)
	}
	// Train on 20 days.
	for i := 0; i < 480; i++ {
		h.Observe(signal(i))
	}
	if !h.Ready() {
		t.Fatal("not ready after 20 seasons")
	}
	// Score one-step-ahead forecasts over 2 more days.
	var acc Accuracy
	for i := 480; i < 528; i++ {
		acc.Observe(h.Forecast(1), signal(i))
		h.Observe(signal(i))
	}
	if acc.MAPE() > 0.05 {
		t.Errorf("MAPE on clean seasonal signal = %v, want < 5%%", acc.MAPE())
	}
}

func TestHoltWintersBeatsNaiveOnTrend(t *testing.T) {
	// Rising trend + season: HW must beat the "repeat last value" naive.
	h := NewHoltWinters(0.4, 0.1, 0.3, 12)
	signal := func(i int) float64 {
		return 100 + 2*float64(i) + 50*math.Sin(2*math.Pi*float64(i%12)/12)
	}
	for i := 0; i < 120; i++ {
		h.Observe(signal(i))
	}
	var hw, naive Accuracy
	last := signal(119)
	for i := 120; i < 160; i++ {
		hw.Observe(h.Forecast(1), signal(i))
		naive.Observe(last, signal(i))
		last = signal(i)
		h.Observe(signal(i))
	}
	if hw.RMSE() >= naive.RMSE() {
		t.Errorf("HW RMSE %v not below naive %v", hw.RMSE(), naive.RMSE())
	}
}

func TestHoltWintersPanicsOnBadPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on zero period")
		}
	}()
	NewHoltWinters(0.1, 0.1, 0.1, 0)
}

func TestAccuracyBasics(t *testing.T) {
	var a Accuracy
	a.Observe(110, 100) // 10% off
	a.Observe(90, 100)  // 10% off
	if math.Abs(a.MAPE()-0.1) > 1e-12 {
		t.Errorf("MAPE = %v", a.MAPE())
	}
	if math.Abs(a.RMSE()-10) > 1e-9 {
		t.Errorf("RMSE = %v", a.RMSE())
	}
	if a.Count() != 2 {
		t.Errorf("count = %d", a.Count())
	}
}

func TestAccuracyZeroActual(t *testing.T) {
	var a Accuracy
	a.Observe(5, 0)
	if a.MAPE() != 0 {
		t.Error("MAPE with only zero actuals should be 0")
	}
	if a.RMSE() != 5 {
		t.Errorf("RMSE = %v", a.RMSE())
	}
}

func TestAccuracyEmpty(t *testing.T) {
	var a Accuracy
	if a.MAPE() != 0 || a.RMSE() != 0 {
		t.Error("empty accuracy should report zeros")
	}
}

// Property: the fitted model never predicts negative demand when fitted on
// non-negative demand data, and predictions are monotone non-increasing in
// temperature.
func TestFitMonotoneProperty(t *testing.T) {
	f := func(seed uint64) bool {
		s := rng.New(seed)
		truth := Thermosensitivity{
			Base:      s.Uniform(0, 500),
			Slope:     s.Uniform(50, 600),
			Threshold: s.Uniform(10, 18),
		}
		var temps, demands []float64
		for i := 0; i < 300; i++ {
			temp := s.Uniform(-10, 30)
			temps = append(temps, temp)
			d := truth.Predict(temp) + s.Normal(0, 30)
			if d < 0 {
				d = 0
			}
			demands = append(demands, d)
		}
		fit, err := FitThermosensitivity(temps, demands)
		if err != nil {
			return false
		}
		prev := math.Inf(1)
		for temp := -15.0; temp <= 35; temp += 1 {
			p := fit.Predict(temp)
			if p > prev+1e-9 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
