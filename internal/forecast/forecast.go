// Package forecast implements the predictive platform of §III-C: "a model
// to predict the heat demand and the thermosensitivity in houses equipped
// with DF servers. Several studies reveal that the thermosensitivity is in
// general correlated to the external weather."
//
// Two predictors are provided: a thermosensitivity regression (piecewise
// linear heat demand vs outdoor temperature, the model French grid
// operators use for electric heating) and a Holt-Winters seasonal smoother
// for purely autoregressive forecasting. Accuracy is reported as MAPE and
// RMSE so the operator can size how much DCC capacity it may promise.
package forecast

import (
	"fmt"
	"math"
)

// Thermosensitivity is the piecewise-linear demand model
//
//	demand(T) = Base + Slope·max(0, Threshold − T)
//
// fitted by least squares on (outdoor temperature, demand) pairs. Slope is
// the thermosensitivity in W/K; Threshold is the heating threshold
// temperature (demand is flat above it).
type Thermosensitivity struct {
	Base      float64
	Slope     float64
	Threshold float64
}

// FitThermosensitivity fits the model on observations. The threshold is
// chosen by scanning candidate values and keeping the least-squares best;
// the fit for a fixed threshold is ordinary linear regression on the
// rectified regressor max(0, θ−T).
func FitThermosensitivity(temps, demands []float64) (Thermosensitivity, error) {
	if len(temps) != len(demands) {
		return Thermosensitivity{}, fmt.Errorf("forecast: %d temps vs %d demands", len(temps), len(demands))
	}
	if len(temps) < 3 {
		return Thermosensitivity{}, fmt.Errorf("forecast: need at least 3 observations, have %d", len(temps))
	}
	best := Thermosensitivity{}
	bestSSE := math.Inf(1)
	for theta := 8.0; theta <= 20.0; theta += 0.5 {
		base, slope, sse, ok := fitFixedThreshold(temps, demands, theta)
		if ok && sse < bestSSE {
			bestSSE = sse
			best = Thermosensitivity{Base: base, Slope: slope, Threshold: theta}
		}
	}
	if math.IsInf(bestSSE, 1) {
		return Thermosensitivity{}, fmt.Errorf("forecast: degenerate data, no threshold fits")
	}
	return best, nil
}

// fitFixedThreshold regresses demand on max(0, θ−T).
func fitFixedThreshold(temps, demands []float64, theta float64) (base, slope, sse float64, ok bool) {
	n := float64(len(temps))
	var sx, sy, sxx, sxy float64
	for i := range temps {
		x := math.Max(0, theta-temps[i])
		y := demands[i]
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, 0, false
	}
	slope = (n*sxy - sx*sy) / den
	base = (sy - slope*sx) / n
	if slope < 0 {
		// Heating demand cannot fall when it gets colder; reject.
		return 0, 0, 0, false
	}
	for i := range temps {
		x := math.Max(0, theta-temps[i])
		r := demands[i] - (base + slope*x)
		sse += r * r
	}
	return base, slope, sse, true
}

// Predict returns the modelled demand at outdoor temperature t.
func (m Thermosensitivity) Predict(t float64) float64 {
	return m.Base + m.Slope*math.Max(0, m.Threshold-t)
}

// HoltWinters is additive triple exponential smoothing with a fixed
// seasonal period, for demand series with daily or yearly cycles.
type HoltWinters struct {
	// Alpha, Beta and Gamma are the level, trend and seasonal gains.
	Alpha, Beta, Gamma float64
	// Period is the season length in samples.
	Period int

	level, trend float64
	season       []float64
	n            int
}

// NewHoltWinters returns a smoother with the given gains and period.
func NewHoltWinters(alpha, beta, gamma float64, period int) *HoltWinters {
	if period <= 0 {
		panic("forecast: non-positive period")
	}
	return &HoltWinters{Alpha: alpha, Beta: beta, Gamma: gamma, Period: period,
		season: make([]float64, period)}
}

// Observe feeds the next sample.
func (h *HoltWinters) Observe(v float64) {
	i := h.n % h.Period
	if h.n == 0 {
		h.level = v
	}
	if h.n < h.Period {
		// Bootstrap: accumulate the first season relative to the initial
		// level, track the level as a plain mean.
		h.season[i] = v - h.level
		h.level += (v - h.level) / float64(h.n+1)
		h.n++
		return
	}
	prevLevel := h.level
	h.level = h.Alpha*(v-h.season[i]) + (1-h.Alpha)*(h.level+h.trend)
	h.trend = h.Beta*(h.level-prevLevel) + (1-h.Beta)*h.trend
	h.season[i] = h.Gamma*(v-h.level) + (1-h.Gamma)*h.season[i]
	h.n++
}

// Forecast predicts k samples ahead (k >= 1).
func (h *HoltWinters) Forecast(k int) float64 {
	if k < 1 {
		k = 1
	}
	i := (h.n + k - 1) % h.Period
	return h.level + float64(k)*h.trend + h.season[i]
}

// Ready reports whether at least one full season has been observed.
func (h *HoltWinters) Ready() bool { return h.n >= h.Period }

// Accuracy scores predictions against actuals.
type Accuracy struct {
	n            int
	sumAbsPct    float64
	sumSq        float64
	sumAbsErr    float64
	sumAbsActual float64
	skippedZeros int
}

// Observe records one (predicted, actual) pair. Zero actuals are skipped
// for MAPE (undefined) but still count toward RMSE and WAPE.
func (a *Accuracy) Observe(predicted, actual float64) {
	err := predicted - actual
	a.sumSq += err * err
	a.sumAbsErr += math.Abs(err)
	a.sumAbsActual += math.Abs(actual)
	a.n++
	if actual != 0 {
		a.sumAbsPct += math.Abs(err / actual)
	} else {
		a.skippedZeros++
	}
}

// MAPE returns the mean absolute percentage error in [0,∞), or 0 with no
// usable observations.
func (a *Accuracy) MAPE() float64 {
	usable := a.n - a.skippedZeros
	if usable <= 0 {
		return 0
	}
	return a.sumAbsPct / float64(usable)
}

// WAPE returns Σ|error| / Σ|actual| — the volume-weighted relative error,
// robust to near-zero actuals (which make MAPE explode on off-season
// hours). Returns 0 when no actual volume was observed.
func (a *Accuracy) WAPE() float64 {
	if a.sumAbsActual == 0 {
		return 0
	}
	return a.sumAbsErr / a.sumAbsActual
}

// RMSE returns the root mean squared error.
func (a *Accuracy) RMSE() float64 {
	if a.n == 0 {
		return 0
	}
	return math.Sqrt(a.sumSq / float64(a.n))
}

// Count returns the number of scored pairs.
func (a *Accuracy) Count() int { return a.n }
