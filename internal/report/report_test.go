package report

import (
	"strings"
	"testing"
)

func TestTableWrite(t *testing.T) {
	var b strings.Builder
	tab := NewTable("demo", "name", "value")
	tab.Row("alpha", 1.5).Row("beta", 2)
	if err := tab.Write(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"== demo ==", "name", "value", "alpha", "1.5", "beta"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if tab.Len() != 2 {
		t.Errorf("len = %d", tab.Len())
	}
}

func TestTableNoTitle(t *testing.T) {
	var b strings.Builder
	if err := NewTable("", "x").Row(1).Write(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "==") {
		t.Error("untitled table printed a title banner")
	}
}

func TestCSVEscaping(t *testing.T) {
	var b strings.Builder
	tab := NewTable("t", "a", "b")
	tab.Row(`has,comma`, `has"quote`)
	if err := tab.CSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"has,comma"`) {
		t.Errorf("comma not quoted: %s", out)
	}
	if !strings.Contains(out, `"has""quote"`) {
		t.Errorf("quote not doubled: %s", out)
	}
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("header wrong: %s", out)
	}
}

func TestFloatFormatting(t *testing.T) {
	var b strings.Builder
	NewTable("", "v").Row(0.123456789).Write(&b)
	if !strings.Contains(b.String(), "0.1235") {
		t.Errorf("float not formatted to 4 significant digits: %s", b.String())
	}
}

func TestSeries(t *testing.T) {
	var b strings.Builder
	err := Series(&b, "months", "month", "temp", []int{11, 12}, []float64{20.5, 21.2})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"months", "month", "temp", "11", "20.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("series output missing %q", want)
		}
	}
}

func TestSeriesLengthMismatch(t *testing.T) {
	var b strings.Builder
	// Extra xs are silently skipped rather than panicking.
	if err := Series(&b, "t", "x", "y", []int{1, 2, 3}, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if strings.Count(b.String(), "\n") < 3 {
		t.Error("series with mismatched lengths printed nothing")
	}
}
