// Package report renders the experiment outputs: fixed-width tables for
// terminals and CSV for post-processing. Every experiment in the bench
// harness prints through this package so EXPERIMENTS.md rows and
// bench_output.txt stay structurally identical.
package report

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Table is a simple column-oriented table.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Row appends a row; values are formatted with %v, floats with %.4g.
func (t *Table) Row(values ...any) *Table {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", x)
		case float32:
			row[i] = fmt.Sprintf("%.4g", x)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// Write renders the table to w with aligned columns.
func (t *Table) Write(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "\n== %s ==\n", t.Title); err != nil {
			return err
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Columns, "\t"))
	underline := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		underline[i] = strings.Repeat("-", len(c))
	}
	fmt.Fprintln(tw, strings.Join(underline, "\t"))
	for _, r := range t.rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	return tw.Flush()
}

// CSV renders the table as RFC-4180-ish CSV (quotes only where needed).
func (t *Table) CSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeRow(t.Columns); err != nil {
		return err
	}
	for _, r := range t.rows {
		if err := writeRow(r); err != nil {
			return err
		}
	}
	return nil
}

// Series prints a labelled (x, y) series, one row per point — the harness
// output for figure-like results.
func Series(w io.Writer, title, xlabel, ylabel string, xs []int, ys []float64) error {
	t := NewTable(title, xlabel, ylabel)
	for i := range xs {
		if i < len(ys) {
			t.Row(xs[i], ys[i])
		}
	}
	return t.Write(w)
}
