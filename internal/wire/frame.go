// Package wire implements the df3 multi-node mailbox protocol: a
// length-prefixed, CRC-guarded little-endian binary framing (the same
// defensive container idioms as the DF3CKPT checkpoint format) plus the
// typed messages a coordinator and its df3node workers exchange — the
// sealed build recipe and partition assignment, window-barrier proposals,
// cross-partition mailbox messages carrying the kernel's (at, src, seq)
// ordering, merged per-city results, metric and trace chunks, and a clean
// shutdown. The transport is any net.Conn (TCP or unix socket); the
// protocol is strictly lockstep — the coordinator sends one request, the
// worker sends exactly one reply — so a single connection needs no
// interleaving or correlation IDs.
package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Stream layout (all integers little-endian):
//
//	hello   [12]byte   magic "DF3WIRE\n" + version uint32, once per
//	                   direction at connect
//	frame:
//	    kind   uint32
//	    length uint32   payload bytes, ≤ MaxFrame
//	    crc    uint32   CRC-32 (IEEE) over kind|length|payload
//	    payload [length]byte
//
// The CRC covers the header too, so any flipped byte anywhere in a frame
// — kind, length, checksum or payload — fails verification instead of
// misframing the stream.

// Magic identifies a df3 wire stream.
var Magic = [8]byte{'D', 'F', '3', 'W', 'I', 'R', 'E', '\n'}

// ProtocolVersion is the wire protocol version this build speaks. There
// is no negotiation: a mismatch is an error, because both ends of a
// multi-node run must be the same build for determinism to mean anything.
const ProtocolVersion uint32 = 1

// MaxFrame bounds a frame payload (64 MiB). A corrupt length field fails
// here before any allocation happens.
const MaxFrame = 64 << 20

// Errors the reader distinguishes, mirroring the checkpoint container:
// ErrTruncated means the stream ended mid-structure (peer died, cable
// cut); ErrCorrupt means the bytes arrived but are wrong (bad magic,
// version skew, CRC mismatch, oversized length).
var (
	ErrTruncated = errors.New("wire: truncated stream")
	ErrCorrupt   = errors.New("wire: corrupt stream")
)

// WriteHello sends the magic preamble and protocol version.
func WriteHello(w io.Writer) error {
	var b [12]byte
	copy(b[:8], Magic[:])
	binary.LittleEndian.PutUint32(b[8:12], ProtocolVersion)
	_, err := w.Write(b[:])
	return err
}

// ReadHello validates the peer's preamble.
func ReadHello(r io.Reader) error {
	var b [12]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return fmt.Errorf("%w: hello: %v", ErrTruncated, err)
	}
	if !bytes.Equal(b[:8], Magic[:]) {
		return fmt.Errorf("%w: bad magic %q", ErrCorrupt, b[:8])
	}
	if v := binary.LittleEndian.Uint32(b[8:12]); v != ProtocolVersion {
		return fmt.Errorf("%w: protocol version %d, want %d", ErrCorrupt, v, ProtocolVersion)
	}
	return nil
}

// WriteFrame emits one frame. The payload is borrowed, not retained.
func WriteFrame(w io.Writer, kind uint32, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: frame kind %d payload %d bytes exceeds MaxFrame %d", kind, len(payload), MaxFrame)
	}
	frame := make([]byte, 12+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], kind)
	binary.LittleEndian.PutUint32(frame[4:8], uint32(len(payload)))
	copy(frame[12:], payload)
	crc := crc32.NewIEEE()
	crc.Write(frame[0:8])
	crc.Write(frame[12:])
	binary.LittleEndian.PutUint32(frame[8:12], crc.Sum32())
	// One Write per frame: a zero-length payload write would stall
	// rendezvous transports (net.Pipe) whose reader never issues the
	// matching zero-byte read, and one syscall per frame is kinder to
	// TCP besides.
	_, err := w.Write(frame)
	return err
}

// ReadFrame reads and verifies one frame. The payload buffer grows with
// the bytes actually read (io.CopyN into a buffer, as the checkpoint
// reader does), so a corrupt length can cost at most the stream's real
// size — never a MaxFrame-sized allocation for a 3-byte attack.
func ReadFrame(r io.Reader) (kind uint32, payload []byte, err error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("%w: frame header: %v", ErrTruncated, err)
	}
	kind = binary.LittleEndian.Uint32(hdr[0:4])
	length := binary.LittleEndian.Uint32(hdr[4:8])
	sum := binary.LittleEndian.Uint32(hdr[8:12])
	if length > MaxFrame {
		return 0, nil, fmt.Errorf("%w: frame kind %d claims %d bytes, max %d", ErrCorrupt, kind, length, MaxFrame)
	}
	var buf bytes.Buffer
	if _, err := io.CopyN(&buf, r, int64(length)); err != nil {
		return 0, nil, fmt.Errorf("%w: frame payload: %v", ErrTruncated, err)
	}
	crc := crc32.NewIEEE()
	crc.Write(hdr[0:8])
	crc.Write(buf.Bytes())
	if crc.Sum32() != sum {
		return 0, nil, fmt.Errorf("%w: frame kind %d CRC %#08x, want %#08x", ErrCorrupt, kind, crc.Sum32(), sum)
	}
	return kind, buf.Bytes(), nil
}
