package wire

import (
	"fmt"
	"net"
	"time"

	"df3/internal/city"
)

// HandshakeError marks a session that ended before the peer completed a
// valid hello — a port scanner, a readiness probe, or a mismatched
// build. Nothing was assigned yet, so a worker may keep listening.
type HandshakeError struct{ Err error }

func (e *HandshakeError) Error() string { return e.Err.Error() }
func (e *HandshakeError) Unwrap() error { return e.Err }

// ServeOptions tunes a worker session.
type ServeOptions struct {
	// Timeout bounds the wait for each coordinator request and the write
	// of each reply; ≤0 means DefaultTimeout. A coordinator that dies
	// mid-run surfaces here and the worker exits with an error instead
	// of lingering forever.
	Timeout time.Duration
	// TraceCapacity, when positive, enables span tracing on the built
	// federation so FrameTrace can answer with real spans.
	TraceCapacity int
	// Logf, when set, receives one line per session milestone (assign,
	// bye) for the worker's stderr log.
	Logf func(format string, args ...any)
}

// Serve runs one worker session over an established connection: receive
// the sealed recipe and partition, build the federation, then answer the
// coordinator's lockstep requests until Bye. It returns nil only after a
// clean Bye; any transport, protocol or application failure is returned
// (and, for application failures, also reported to the coordinator as a
// FrameError reply before the session ends — once a request fails, the
// run's determinism contract is broken and there is nothing to continue).
func Serve(conn net.Conn, opts ServeOptions) error {
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if err := conn.SetDeadline(wallNow().Add(timeout)); err != nil {
		return err
	}
	// The dialer speaks first; answering only after a valid hello keeps
	// the handshake deadlock-free on unbuffered transports and silent
	// toward port scanners. A failure here is typed HandshakeError so a
	// worker can tell a readiness probe (connect-and-close) from a real
	// coordinator dying mid-run, and keep listening.
	if err := ReadHello(conn); err != nil {
		return &HandshakeError{Err: err}
	}
	if err := WriteHello(conn); err != nil {
		return fmt.Errorf("wire: hello: %w", err)
	}

	var (
		fed   *city.Federation
		owned []int
	)
	// sendErr reports an application failure to the coordinator and ends
	// the session with it.
	sendErr := func(err error) error {
		werr := WriteFrame(conn, FrameError, EncodeError(err.Error()))
		if werr != nil {
			return fmt.Errorf("%w (and reporting it failed: %v)", err, werr)
		}
		return err
	}
	for {
		if err := conn.SetDeadline(wallNow().Add(timeout)); err != nil {
			return err
		}
		kind, payload, err := ReadFrame(conn)
		if err != nil {
			return err
		}
		var reply uint32
		var body []byte
		switch kind {
		case FrameAssign:
			if fed != nil {
				return sendErr(fmt.Errorf("wire: second Assign on one session"))
			}
			a, err := DecodeAssign(payload)
			if err != nil {
				return sendErr(err)
			}
			f, err := buildPartition(a, opts.TraceCapacity)
			if err != nil {
				return sendErr(err)
			}
			fed, owned = f, a.Owned
			logf("assigned %d cities (%d..%d) over %d shards, recipe %d bytes",
				len(owned), owned[0], owned[len(owned)-1], a.Shards, len(a.Recipe))
			reply = FrameReady
			body = EncodeReady(Ready{Owned: owned, Lookahead: fed.Backbone.MinDelay()})
		case FramePropose:
			if fed == nil {
				return sendErr(fmt.Errorf("wire: Propose before Assign"))
			}
			t, has, err := fed.Kernel.NextEvent()
			if err != nil {
				return sendErr(err)
			}
			reply = FrameNext
			body = EncodeNext(Next{Has: has, T: t})
		case FrameWindow:
			if fed == nil {
				return sendErr(fmt.Errorf("wire: Window before Assign"))
			}
			end, err := DecodeWindow(payload)
			if err != nil {
				return sendErr(err)
			}
			res, err := fed.Kernel.RunWindow(end)
			if err != nil {
				return sendErr(err)
			}
			reply = FrameResult
			body = EncodeResult(res)
		case FrameDeliver:
			if fed == nil {
				return sendErr(fmt.Errorf("wire: Deliver before Assign"))
			}
			batch, err := DecodeMsgs(payload)
			if err != nil {
				return sendErr(err)
			}
			if err := fed.Kernel.Deliver(batch); err != nil {
				return sendErr(err)
			}
			reply = FrameDeliverOK
		case FrameStates:
			if fed == nil {
				return sendErr(fmt.Errorf("wire: States before Assign"))
			}
			states := make([]city.CityState, 0, len(owned))
			for _, ci := range owned {
				states = append(states, fed.CityState(ci))
			}
			reply = FrameStatesReply
			body = EncodeStates(states)
		case FrameMetrics:
			if fed == nil {
				return sendErr(fmt.Errorf("wire: Metrics before Assign"))
			}
			var buf writerBuf
			if err := fed.Observability().WritePrometheus(&buf); err != nil {
				return sendErr(err)
			}
			reply = FrameMetricsReply
			body = EncodeChunk(buf.b)
		case FrameTrace:
			if fed == nil {
				return sendErr(fmt.Errorf("wire: Trace before Assign"))
			}
			var buf writerBuf
			if opts.TraceCapacity > 0 {
				if err := fed.MergedTrace().WriteSpansJSONL(&buf); err != nil {
					return sendErr(err)
				}
			}
			reply = FrameTraceReply
			body = EncodeChunk(buf.b)
		case FrameBye:
			if err := WriteFrame(conn, FrameByeOK, nil); err != nil {
				return err
			}
			logf("bye")
			return nil
		default:
			return sendErr(fmt.Errorf("wire: unexpected frame kind %d", kind))
		}
		if err := WriteFrame(conn, reply, body); err != nil {
			return err
		}
	}
}

// buildPartition turns an Assign into this node's restricted federation,
// validating everything the coordinator sent before Restrict (which
// treats violations as programming bugs and panics).
func buildPartition(a Assign, traceCapacity int) (*city.Federation, error) {
	spec, err := city.ParseSpec(a.Recipe)
	if err != nil {
		return nil, err
	}
	if a.Shards < 1 {
		return nil, fmt.Errorf("wire: assign with %d shards", a.Shards)
	}
	if len(a.Owned) == 0 {
		return nil, fmt.Errorf("wire: assign with no owned cities")
	}
	for i, ci := range a.Owned {
		if ci < 0 || ci >= spec.Cities {
			return nil, fmt.Errorf("wire: assign owns city %d of %d", ci, spec.Cities)
		}
		if i > 0 && a.Owned[i-1] >= ci {
			return nil, fmt.Errorf("wire: assign owned cities must be ascending and unique")
		}
	}
	f := spec.Build(a.Shards)
	if traceCapacity > 0 {
		f.EnableTracing(traceCapacity)
	}
	f.Restrict(a.Owned)
	return f, nil
}

// writerBuf is a minimal io.Writer over a byte slice.
type writerBuf struct{ b []byte }

func (w *writerBuf) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}
