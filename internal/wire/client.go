package wire

import (
	"fmt"
	"net"
	"time"

	"df3/internal/city"
	"df3/internal/shard"
	"df3/internal/sim"
)

// wallNow is the wire layer's one wall-clock read, feeding socket
// deadlines only.
func wallNow() time.Time {
	return time.Now() //df3:allow(detrand) socket deadlines bound a real network peer; wall time never enters simulation state
}

// Client is the coordinator's handle on one df3node worker. It speaks
// the lockstep request/reply protocol over a single connection and
// implements shard.Part, so shard.Sync drives a remote partition exactly
// as it drives an in-process Kernel. Every round trip runs under a wall
// deadline: a worker that dies or wedges surfaces as an error within
// Timeout, and the coordinator fails the run fast rather than deadlock
// the barrier. A Client is not safe for concurrent use; Sync calls each
// Part from one goroutine at a time.
type Client struct {
	conn    net.Conn
	name    string
	timeout time.Duration
	owned   []int
	broken  error
}

// DefaultTimeout bounds one round trip (including the worker executing
// a full window) unless the caller overrides it.
const DefaultTimeout = 5 * time.Minute

// NewClient wraps an established connection and exchanges hellos. name
// labels the worker in errors (its address, typically); timeout bounds
// every round trip, ≤0 meaning DefaultTimeout.
func NewClient(conn net.Conn, name string, timeout time.Duration) (*Client, error) {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	c := &Client{conn: conn, name: name, timeout: timeout}
	if err := conn.SetDeadline(wallNow().Add(timeout)); err != nil {
		return nil, fmt.Errorf("wire: worker %s: %w", name, err)
	}
	if err := WriteHello(conn); err != nil {
		return nil, fmt.Errorf("wire: worker %s: hello: %w", name, err)
	}
	if err := ReadHello(conn); err != nil {
		return nil, fmt.Errorf("wire: worker %s: %w", name, err)
	}
	return c, nil
}

// Dial connects to a worker ("tcp", "host:port" or "unix", "/path") and
// performs the handshake.
func Dial(network, addr string, timeout time.Duration) (*Client, error) {
	d := timeout
	if d <= 0 {
		d = DefaultTimeout
	}
	conn, err := net.DialTimeout(network, addr, d)
	if err != nil {
		return nil, fmt.Errorf("wire: worker %s: %w", addr, err)
	}
	c, err := NewClient(conn, addr, timeout)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// Close tears down the connection without protocol ceremony. Use Bye for
// a clean shutdown.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one request and reads its reply, enforcing the
// lockstep protocol: the reply must be wantReply or FrameError. Any
// transport or protocol failure marks the client broken — once the
// stream state is unknown, every later call must fail too.
func (c *Client) roundTrip(req uint32, payload []byte, wantReply uint32) ([]byte, error) {
	if c.broken != nil {
		return nil, c.broken
	}
	fail := func(err error) ([]byte, error) {
		c.broken = fmt.Errorf("wire: worker %s: %w", c.name, err)
		return nil, c.broken
	}
	if err := c.conn.SetDeadline(wallNow().Add(c.timeout)); err != nil {
		return fail(err)
	}
	if err := WriteFrame(c.conn, req, payload); err != nil {
		return fail(err)
	}
	kind, reply, err := ReadFrame(c.conn)
	if err != nil {
		return fail(err)
	}
	if kind == FrameError {
		msg, derr := DecodeError(reply)
		if derr != nil {
			return fail(derr)
		}
		// An application error from the worker: the stream itself stays
		// lockstep, but a failed request means the run is lost anyway.
		c.broken = fmt.Errorf("wire: worker %s: %s", c.name, msg)
		return nil, c.broken
	}
	if kind != wantReply {
		return fail(fmt.Errorf("%w: reply kind %d to request %d, want %d", ErrCorrupt, kind, req, wantReply))
	}
	return reply, nil
}

// Assign ships the sealed recipe and partition to the worker and waits
// for it to finish building. The worker's Ready echo is cross-checked
// against the assignment — a worker that built a different partition is
// an error now, not a divergence later — and returned so the coordinator
// can verify every worker reports the same lookahead (a build skew would
// silently change barrier placement).
func (c *Client) Assign(a Assign) (Ready, error) {
	reply, err := c.roundTrip(FrameAssign, EncodeAssign(a), FrameReady)
	if err != nil {
		return Ready{}, err
	}
	r, err := DecodeReady(reply)
	if err != nil {
		c.broken = fmt.Errorf("wire: worker %s: %w", c.name, err)
		return Ready{}, c.broken
	}
	if len(r.Owned) != len(a.Owned) {
		return Ready{}, fmt.Errorf("wire: worker %s built %d LPs, assigned %d", c.name, len(r.Owned), len(a.Owned))
	}
	for i := range r.Owned {
		if r.Owned[i] != a.Owned[i] {
			return Ready{}, fmt.Errorf("wire: worker %s owns LP %d at slot %d, assigned %d", c.name, r.Owned[i], i, a.Owned[i])
		}
	}
	c.owned = append([]int(nil), r.Owned...)
	return r, nil
}

// OwnedLPs implements shard.Part.
func (c *Client) OwnedLPs() ([]int, error) {
	if c.owned == nil {
		return nil, fmt.Errorf("wire: worker %s: OwnedLPs before Assign", c.name)
	}
	return c.owned, nil
}

// NextEvent implements shard.Part: the worker's barrier proposal.
func (c *Client) NextEvent() (sim.Time, bool, error) {
	reply, err := c.roundTrip(FramePropose, nil, FrameNext)
	if err != nil {
		return 0, false, err
	}
	n, err := DecodeNext(reply)
	if err != nil {
		c.broken = fmt.Errorf("wire: worker %s: %w", c.name, err)
		return 0, false, c.broken
	}
	return n.T, n.Has, nil
}

// RunWindow implements shard.Part: the worker executes the window and
// returns its boundary messages and stats.
func (c *Client) RunWindow(end sim.Time) (shard.WindowResult, error) {
	reply, err := c.roundTrip(FrameWindow, EncodeWindow(end), FrameResult)
	if err != nil {
		return shard.WindowResult{}, err
	}
	r, err := DecodeResult(reply)
	if err != nil {
		c.broken = fmt.Errorf("wire: worker %s: %w", c.name, err)
		return shard.WindowResult{}, c.broken
	}
	return r, nil
}

// Deliver implements shard.Part: partition-bound messages, already in
// global (At, Src, Seq) order.
func (c *Client) Deliver(batch []shard.Msg) error {
	_, err := c.roundTrip(FrameDeliver, EncodeMsgs(batch), FrameDeliverOK)
	return err
}

// States fetches the per-city result records for the worker's owned
// cities, in owned order.
func (c *Client) States() ([]city.CityState, error) {
	reply, err := c.roundTrip(FrameStates, nil, FrameStatesReply)
	if err != nil {
		return nil, err
	}
	states, err := DecodeStates(reply)
	if err != nil {
		c.broken = fmt.Errorf("wire: worker %s: %w", c.name, err)
		return nil, c.broken
	}
	return states, nil
}

// Metrics fetches the worker's metrics registry rendered as Prometheus
// text.
func (c *Client) Metrics() ([]byte, error) {
	reply, err := c.roundTrip(FrameMetrics, nil, FrameMetricsReply)
	if err != nil {
		return nil, err
	}
	b, err := DecodeChunk(reply)
	if err != nil {
		c.broken = fmt.Errorf("wire: worker %s: %w", c.name, err)
		return nil, c.broken
	}
	return b, nil
}

// Trace fetches the worker's merged span trace as JSONL.
func (c *Client) Trace() ([]byte, error) {
	reply, err := c.roundTrip(FrameTrace, nil, FrameTraceReply)
	if err != nil {
		return nil, err
	}
	b, err := DecodeChunk(reply)
	if err != nil {
		c.broken = fmt.Errorf("wire: worker %s: %w", c.name, err)
		return nil, c.broken
	}
	return b, nil
}

// Bye shuts the worker down cleanly and closes the connection. After a
// ByeOK the worker exits 0.
func (c *Client) Bye() error {
	_, err := c.roundTrip(FrameBye, nil, FrameByeOK)
	cerr := c.conn.Close()
	if err != nil {
		return err
	}
	return cerr
}
