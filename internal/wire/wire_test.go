package wire

import (
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"df3/internal/city"
	"df3/internal/shard"
)

func testSpec() city.Spec {
	return city.Spec{
		Seed: 11, Cities: 5, Buildings: 4, Rooms: 3, Boilers: 1,
		Days: 0.25, EdgeRate: 0.5, DCCRate: 2, InterCity: 6,
	}
}

// startWorker runs a Serve session over one end of a pipe and returns a
// connected Client plus the session's exit channel.
func startWorker(t *testing.T, name string) (*Client, chan error) {
	t.Helper()
	cc, sc := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- Serve(sc, ServeOptions{Timeout: time.Minute}) }()
	cl, err := NewClient(cc, name, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cc.Close(); sc.Close() })
	return cl, done
}

// TestSessionMatchesSerial is the full protocol equivalence proof in one
// process: two Serve sessions behind wire.Clients, driven by shard.Sync,
// must reproduce the serial run's per-city records and checksum exactly.
func TestSessionMatchesSerial(t *testing.T) {
	spec := testSpec()
	serial := spec.Build(1)
	serial.Run(spec.Until())
	want := serial.Checksum()
	wantStates := serial.CityStates()

	const nodes = 2
	assign := shard.PartitionContiguous(spec.Cities, nodes, nil)
	recipe := spec.Marshal()
	clients := make([]*Client, nodes)
	dones := make([]chan error, nodes)
	parts := make([]shard.Part, nodes)
	ownedBy := make([][]int, nodes)
	var lookahead float64
	for p := 0; p < nodes; p++ {
		cl, done := startWorker(t, fmt.Sprintf("pipe-%d", p))
		var owned []int
		for ci, a := range assign {
			if a == p {
				owned = append(owned, ci)
			}
		}
		r, err := cl.Assign(Assign{Recipe: recipe, Shards: 2, Owned: owned})
		if err != nil {
			t.Fatal(err)
		}
		if p == 0 {
			lookahead = float64(r.Lookahead)
		} else if float64(r.Lookahead) != lookahead {
			t.Fatalf("worker %d lookahead %v, worker 0 reported %v", p, r.Lookahead, lookahead)
		}
		clients[p], dones[p], parts[p], ownedBy[p] = cl, done, cl, owned
	}

	sy, err := shard.NewSync(serial.Backbone.MinDelay(), parts)
	if err != nil {
		t.Fatal(err)
	}
	if err := sy.Run(spec.Until()); err != nil {
		t.Fatal(err)
	}

	states := make([]city.CityState, spec.Cities)
	for p, cl := range clients {
		got, err := cl.States()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ownedBy[p]) {
			t.Fatalf("worker %d reported %d states for %d cities", p, len(got), len(ownedBy[p]))
		}
		for i, cs := range got {
			if cs.City != ownedBy[p][i] {
				t.Fatalf("worker %d state %d is city %d, want %d", p, i, cs.City, ownedBy[p][i])
			}
			states[cs.City] = cs
		}
	}
	if got := city.ChecksumStates(states); got != want {
		t.Errorf("remote checksum %#016x, want %#016x", got, want)
	}
	for ci := range states {
		if states[ci] != wantStates[ci] {
			t.Errorf("city %d state\n got %+v\nwant %+v", ci, states[ci], wantStates[ci])
		}
	}

	// Metrics and trace chunks answer (trace empty: tracing off).
	if m, err := clients[0].Metrics(); err != nil || len(m) == 0 {
		t.Errorf("Metrics = %d bytes, %v", len(m), err)
	}
	if tr, err := clients[0].Trace(); err != nil || len(tr) != 0 {
		t.Errorf("Trace = %d bytes, %v; want empty without tracing", len(tr), err)
	}

	for p, cl := range clients {
		if err := cl.Bye(); err != nil {
			t.Errorf("worker %d: Bye: %v", p, err)
		}
		if err := <-dones[p]; err != nil {
			t.Errorf("worker %d session: %v", p, err)
		}
	}
}

// TestSessionRejectsBadAssign: a session must answer a broken assignment
// with a readable error, not die silently or build a wrong partition.
func TestSessionRejectsBadAssign(t *testing.T) {
	for _, tc := range []struct {
		name string
		a    Assign
		want string
	}{
		{"garbage recipe", Assign{Recipe: []byte("not json"), Shards: 1, Owned: []int{0}}, "spec"},
		{"no owned", Assign{Recipe: testSpec().Marshal(), Shards: 1}, "no owned"},
		{"city out of range", Assign{Recipe: testSpec().Marshal(), Shards: 1, Owned: []int{99}}, "owns city"},
		{"unsorted owned", Assign{Recipe: testSpec().Marshal(), Shards: 1, Owned: []int{2, 1}}, "ascending"},
		{"zero shards", Assign{Recipe: testSpec().Marshal(), Shards: 0, Owned: []int{0}}, "shards"},
	} {
		cl, done := startWorker(t, tc.name)
		_, err := cl.Assign(tc.a)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Assign error = %v, want substring %q", tc.name, err, tc.want)
		}
		if err := <-done; err == nil {
			t.Errorf("%s: session exited nil after bad assign", tc.name)
		}
	}
}

// TestSessionRequiresAssignFirst: window-protocol requests before Assign
// are protocol errors.
func TestSessionRequiresAssignFirst(t *testing.T) {
	cl, done := startWorker(t, "premature")
	if _, _, err := cl.NextEvent(); err == nil || !strings.Contains(err.Error(), "before Assign") {
		t.Errorf("NextEvent error = %v, want 'before Assign'", err)
	}
	<-done
}

// TestClientBrokenStaysBroken: after one failed round trip every later
// call fails immediately — the stream state is unknowable.
func TestClientBrokenStaysBroken(t *testing.T) {
	cl, done := startWorker(t, "broken")
	if _, _, err := cl.NextEvent(); err == nil {
		t.Fatal("NextEvent before Assign succeeded")
	}
	<-done
	if _, err := cl.Assign(Assign{Recipe: testSpec().Marshal(), Shards: 1, Owned: []int{0}}); err == nil {
		t.Fatal("Assign on a broken client succeeded")
	}
	if err := cl.Deliver(nil); err == nil {
		t.Fatal("Deliver on a broken client succeeded")
	}
}

// TestCodecRoundTrips: every typed payload decodes back to itself.
func TestCodecRoundTrips(t *testing.T) {
	a := Assign{Recipe: []byte(`{"seed":1}`), Shards: 3, Owned: []int{2, 3, 4}}
	ga, err := DecodeAssign(EncodeAssign(a))
	if err != nil || ga.Shards != a.Shards || len(ga.Owned) != 3 || string(ga.Recipe) != string(a.Recipe) {
		t.Errorf("Assign round trip %+v, %v", ga, err)
	}
	r := Ready{Owned: []int{0, 1}, Lookahead: 30.012}
	gr, err := DecodeReady(EncodeReady(r))
	if err != nil || gr.Lookahead != r.Lookahead || len(gr.Owned) != 2 {
		t.Errorf("Ready round trip %+v, %v", gr, err)
	}
	n := Next{Has: true, T: 1234.5}
	gn, err := DecodeNext(EncodeNext(n))
	if err != nil || gn != n {
		t.Errorf("Next round trip %+v, %v", gn, err)
	}
	end, err := DecodeWindow(EncodeWindow(99.25))
	if err != nil || end != 99.25 {
		t.Errorf("Window round trip %v, %v", end, err)
	}
	msgs := []shard.Msg{
		{At: 5, Src: 1, Dst: 2, Seq: 7, Size: 1e6, Delay: 30.012, Kind: 1, Payload: []byte{1, 2, 3}},
		{At: 6, Src: 0, Dst: 4, Seq: 8, Kind: 2},
	}
	gm, err := DecodeMsgs(EncodeMsgs(msgs))
	if err != nil || len(gm) != 2 || gm[0].Seq != 7 || string(gm[0].Payload) != "\x01\x02\x03" || gm[1].Dst != 4 {
		t.Errorf("Msgs round trip %+v, %v", gm, err)
	}
	res := shard.WindowResult{Msgs: msgs[:1], PerShard: []uint64{10, 20}, Sent: 5, CrossShard: 2}
	gres, err := DecodeResult(EncodeResult(res))
	if err != nil || len(gres.Msgs) != 1 || len(gres.PerShard) != 2 || gres.PerShard[1] != 20 ||
		gres.Sent != 5 || gres.CrossShard != 2 {
		t.Errorf("Result round trip %+v, %v", gres, err)
	}
	states := []city.CityState{{City: 3, JobsDone: 9, WorkDone: 1.5, EventsFired: 77, SimTime: 42, Imported: 4}}
	gs, err := DecodeStates(EncodeStates(states))
	if err != nil || len(gs) != 1 || gs[0] != states[0] {
		t.Errorf("States round trip %+v, %v", gs, err)
	}
	msg, err := DecodeError(EncodeError("boom"))
	if err != nil || msg != "boom" {
		t.Errorf("Error round trip %q, %v", msg, err)
	}
	chunk, err := DecodeChunk(EncodeChunk([]byte("hello")))
	if err != nil || string(chunk) != "hello" {
		t.Errorf("Chunk round trip %q, %v", chunk, err)
	}
}

// TestPayloadTruncations: every typed decoder rejects every strict
// prefix of a valid payload and any trailing garbage.
func TestPayloadTruncations(t *testing.T) {
	payloads := map[string]struct {
		enc []byte
		dec func([]byte) error
	}{
		"Assign": {EncodeAssign(Assign{Recipe: []byte("r"), Shards: 2, Owned: []int{1, 2}}),
			func(b []byte) error { _, err := DecodeAssign(b); return err }},
		"Ready": {EncodeReady(Ready{Owned: []int{1}, Lookahead: 3}),
			func(b []byte) error { _, err := DecodeReady(b); return err }},
		"Next": {EncodeNext(Next{Has: true, T: 9}),
			func(b []byte) error { _, err := DecodeNext(b); return err }},
		"Window": {EncodeWindow(4),
			func(b []byte) error { _, err := DecodeWindow(b); return err }},
		"Msgs": {EncodeMsgs([]shard.Msg{{At: 1, Kind: 2, Payload: []byte{9}}}),
			func(b []byte) error { _, err := DecodeMsgs(b); return err }},
		"Result": {EncodeResult(shard.WindowResult{PerShard: []uint64{3}, Sent: 1}),
			func(b []byte) error { _, err := DecodeResult(b); return err }},
		"States": {EncodeStates([]city.CityState{{City: 1}}),
			func(b []byte) error { _, err := DecodeStates(b); return err }},
	}
	for name, p := range payloads { //df3:unordered-ok independent cases; t.Errorf order is cosmetic
		for cut := 0; cut < len(p.enc); cut++ {
			if err := p.dec(p.enc[:cut]); err == nil {
				t.Errorf("%s: accepted a %d-byte truncation of %d", name, cut, len(p.enc))
			}
		}
		if err := p.dec(append(append([]byte{}, p.enc...), 0xff)); err == nil {
			t.Errorf("%s: accepted trailing garbage", name)
		}
	}
	// A count field that promises more items than the payload holds must
	// be rejected before any allocation sized from it.
	huge := []byte{0xff, 0xff, 0xff, 0x7f}
	if _, err := DecodeMsgs(huge); err == nil {
		t.Error("DecodeMsgs accepted a 2^31 message count")
	}
	if _, err := DecodeStates(huge); err == nil {
		t.Error("DecodeStates accepted a 2^31 state count")
	}
}
