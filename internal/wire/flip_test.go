package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// buildStream produces a representative session byte stream: the hello
// preamble followed by a handful of frames of different kinds and sizes.
func buildStream(t *testing.T) ([]byte, int) {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteHello(&buf); err != nil {
		t.Fatal(err)
	}
	frames := [][2]any{
		{FrameAssign, EncodeAssign(Assign{Recipe: []byte(`{"seed":1,"cities":2}`), Shards: 2, Owned: []int{0}})},
		{FramePropose, []byte(nil)},
		{FrameNext, EncodeNext(Next{Has: true, T: 123.5})},
		{FrameError, EncodeError("some failure")},
		{FrameBye, []byte(nil)},
	}
	for _, f := range frames {
		if err := WriteFrame(&buf, f[0].(uint32), f[1].([]byte)); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes(), len(frames)
}

// parseStream replays a session read: hello, then exactly want frames —
// the shape every real session has, where a next frame is always
// expected until Bye.
func parseStream(b []byte, want int) error {
	r := bytes.NewReader(b)
	if err := ReadHello(r); err != nil {
		return err
	}
	for i := 0; i < want; i++ {
		if _, _, err := ReadFrame(r); err != nil {
			return err
		}
	}
	return nil
}

// TestEveryByteFlipRejected: flipping any single byte anywhere in the
// stream — magic, version, frame headers, CRCs, payloads — must surface
// as ErrCorrupt or ErrTruncated. The frame CRC covers its header, so no
// flip can silently misframe or misroute.
func TestEveryByteFlipRejected(t *testing.T) {
	stream, frames := buildStream(t)
	if err := parseStream(stream, frames); err != nil {
		t.Fatalf("pristine stream failed: %v", err)
	}
	for i := range stream {
		mut := append([]byte(nil), stream...)
		mut[i] ^= 0xff
		err := parseStream(mut, frames)
		if err == nil {
			t.Fatalf("flip at byte %d of %d parsed cleanly", i, len(stream))
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) {
			t.Fatalf("flip at byte %d: error %v is neither ErrCorrupt nor ErrTruncated", i, err)
		}
	}
}

// TestEveryTruncationRejected: cutting the stream anywhere must surface
// as ErrTruncated (or ErrCorrupt), never a hang or a clean parse.
func TestEveryTruncationRejected(t *testing.T) {
	stream, frames := buildStream(t)
	for cut := 0; cut < len(stream); cut++ {
		err := parseStream(stream[:cut], frames)
		if err == nil {
			t.Fatalf("truncation to %d of %d bytes parsed cleanly", cut, len(stream))
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) {
			t.Fatalf("truncation to %d: error %v is neither ErrCorrupt nor ErrTruncated", cut, err)
		}
	}
}

// TestCorruptLengthNoGiantAllocation: a frame header lying about its
// length must fail without allocating what the lie promises. The reader
// streams via io.CopyN, so a 3-byte stream claiming a 32 MiB payload
// costs 3 bytes, and a length beyond MaxFrame is rejected before any
// read at all.
func TestCorruptLengthNoGiantAllocation(t *testing.T) {
	lie := func(length uint32) []byte {
		var b [12]byte
		b[0] = 1 // kind
		b[4] = byte(length)
		b[5] = byte(length >> 8)
		b[6] = byte(length >> 16)
		b[7] = byte(length >> 24)
		return append(b[:], 0xaa, 0xbb, 0xcc)
	}
	if _, _, err := ReadFrame(bytes.NewReader(lie(32 << 20))); !errors.Is(err, ErrTruncated) {
		t.Errorf("32 MiB lie over 3 bytes: %v, want ErrTruncated", err)
	}
	if _, _, err := ReadFrame(bytes.NewReader(lie(MaxFrame + 1))); !errors.Is(err, ErrCorrupt) {
		t.Errorf("over-MaxFrame length: %v, want ErrCorrupt", err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		ReadFrame(bytes.NewReader(lie(32 << 20)))
	})
	// A streaming read of 3 real bytes needs a handful of small
	// allocations; a 32 MiB pre-allocation would dwarf this bound.
	if allocs > 20 {
		t.Errorf("corrupt length cost %.0f allocations", allocs)
	}
}

// TestHelloRejectsWrongVersion: version skew is corruption, not
// negotiation — both ends must be the same build.
func TestHelloRejectsWrongVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHello(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[8]++
	if err := ReadHello(bytes.NewReader(b)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("version skew: %v, want ErrCorrupt", err)
	}
}

// TestWriteFrameRejectsOversize: the writer refuses what the reader
// would refuse.
func TestWriteFrameRejectsOversize(t *testing.T) {
	err := WriteFrame(io.Discard, 1, make([]byte, MaxFrame+1))
	if err == nil {
		t.Fatal("WriteFrame accepted an over-MaxFrame payload")
	}
}
