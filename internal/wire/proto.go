package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"df3/internal/city"
	"df3/internal/shard"
	"df3/internal/sim"
)

// Frame kinds. The coordinator sends requests (Assign, Propose, Window,
// Deliver, States, Metrics, Trace, Bye); the worker answers each with
// exactly one reply (Ready, Next, Result, DeliverOK, StatesReply,
// MetricsReply, TraceReply, ByeOK) or FrameError carrying the reason the
// request failed.
const (
	FrameAssign uint32 = iota + 1
	FrameReady
	FramePropose
	FrameNext
	FrameWindow
	FrameResult
	FrameDeliver
	FrameDeliverOK
	FrameStates
	FrameStatesReply
	FrameMetrics
	FrameMetricsReply
	FrameTrace
	FrameTraceReply
	FrameBye
	FrameByeOK
	FrameError
)

// enc builds a little-endian payload.
type enc struct{ buf []byte }

func (e *enc) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *enc) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *enc) i64(v int64)  { e.u64(uint64(v)) }
func (e *enc) f64(v float64) {
	e.u64(math.Float64bits(v))
}
func (e *enc) bytes(b []byte) {
	e.u32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// dec parses a little-endian payload. Every read is bounds-checked
// against the remaining buffer before it happens, and length prefixes
// are validated against what is actually present, so corrupt counts
// fail cleanly instead of allocating or panicking. After the first
// error all further reads return zero values; call err() once at the end.
type dec struct {
	buf  []byte
	off  int
	fail error
}

func (d *dec) need(n int) bool {
	if d.fail != nil {
		return false
	}
	if len(d.buf)-d.off < n {
		d.fail = fmt.Errorf("%w: payload needs %d more bytes at offset %d of %d", ErrCorrupt, n, d.off, len(d.buf))
		return false
	}
	return true
}

func (d *dec) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *dec) i64() int64   { return int64(d.u64()) }
func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *dec) bytes() []byte {
	n := int(d.u32())
	if !d.need(n) {
		return nil
	}
	b := d.buf[d.off : d.off+n : d.off+n]
	d.off += n
	return b
}

// count reads a length prefix for items of at least itemSize bytes each,
// rejecting counts the remaining payload cannot possibly hold.
func (d *dec) count(itemSize int) int {
	n := int(d.u32())
	if d.fail == nil && n*itemSize > len(d.buf)-d.off {
		d.fail = fmt.Errorf("%w: count %d × %d bytes exceeds remaining payload %d", ErrCorrupt, n, itemSize, len(d.buf)-d.off)
		return 0
	}
	return n
}

// err reports the first decode failure, or ErrCorrupt if the payload has
// trailing bytes a complete parse should have consumed.
func (d *dec) err() error {
	if d.fail != nil {
		return d.fail
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(d.buf)-d.off)
	}
	return nil
}

// Assign carries everything a worker needs to become one partition of a
// federation run: the sealed build recipe (the same canonical bytes every
// other worker gets), the worker's local shard count, and the global city
// IDs it owns.
type Assign struct {
	Recipe []byte
	Shards int
	Owned  []int
}

// EncodeAssign serialises an Assign payload.
func EncodeAssign(a Assign) []byte {
	var e enc
	e.bytes(a.Recipe)
	e.u32(uint32(a.Shards))
	e.u32(uint32(len(a.Owned)))
	for _, id := range a.Owned {
		e.u32(uint32(id))
	}
	return e.buf
}

// DecodeAssign is EncodeAssign's strict inverse.
func DecodeAssign(p []byte) (Assign, error) {
	d := dec{buf: p}
	var a Assign
	a.Recipe = d.bytes()
	a.Shards = int(d.u32())
	n := d.count(4)
	a.Owned = make([]int, 0, n)
	for i := 0; i < n; i++ {
		a.Owned = append(a.Owned, int(d.u32()))
	}
	return a, d.err()
}

// Ready is the worker's acceptance of an Assign: it echoes the owned set
// it built (the coordinator cross-checks it) and the federation's
// checksum-relevant lookahead so a backbone config skew is caught before
// the first window.
type Ready struct {
	Owned     []int
	Lookahead sim.Time
}

// EncodeReady serialises a Ready payload.
func EncodeReady(r Ready) []byte {
	var e enc
	e.u32(uint32(len(r.Owned)))
	for _, id := range r.Owned {
		e.u32(uint32(id))
	}
	e.f64(float64(r.Lookahead))
	return e.buf
}

// DecodeReady is EncodeReady's strict inverse.
func DecodeReady(p []byte) (Ready, error) {
	d := dec{buf: p}
	var r Ready
	n := d.count(4)
	r.Owned = make([]int, 0, n)
	for i := 0; i < n; i++ {
		r.Owned = append(r.Owned, int(d.u32()))
	}
	r.Lookahead = sim.Time(d.f64())
	return r, d.err()
}

// Next is the worker's window-barrier proposal: its earliest pending
// event, if it has one.
type Next struct {
	Has bool
	T   sim.Time
}

// EncodeNext serialises a Next payload.
func EncodeNext(n Next) []byte {
	var e enc
	if n.Has {
		e.u32(1)
	} else {
		e.u32(0)
	}
	e.f64(float64(n.T))
	return e.buf
}

// DecodeNext is EncodeNext's strict inverse.
func DecodeNext(p []byte) (Next, error) {
	d := dec{buf: p}
	var n Next
	switch v := d.u32(); v {
	case 0, 1:
		n.Has = v == 1
	default:
		if d.fail == nil {
			d.fail = fmt.Errorf("%w: Next.Has is %d, want 0 or 1", ErrCorrupt, v)
		}
	}
	n.T = sim.Time(d.f64())
	return n, d.err()
}

// EncodeWindow serialises a Window request: run until end.
func EncodeWindow(end sim.Time) []byte {
	var e enc
	e.f64(float64(end))
	return e.buf
}

// DecodeWindow is EncodeWindow's strict inverse.
func DecodeWindow(p []byte) (sim.Time, error) {
	d := dec{buf: p}
	end := sim.Time(d.f64())
	return end, d.err()
}

// msgWireSize is the fixed prefix of an encoded shard.Msg (everything
// but the payload bytes).
const msgWireSize = 8 + 4 + 4 + 8 + 8 + 8 + 4 + 4

func encodeMsg(e *enc, m shard.Msg) {
	e.f64(float64(m.At))
	e.u32(uint32(m.Src))
	e.u32(uint32(m.Dst))
	e.u64(m.Seq)
	e.f64(float64(m.Size))
	e.f64(float64(m.Delay))
	e.u32(m.Kind)
	e.bytes(m.Payload)
}

func decodeMsg(d *dec) shard.Msg {
	var m shard.Msg
	m.At = sim.Time(d.f64())
	m.Src = int(d.u32())
	m.Dst = int(d.u32())
	m.Seq = d.u64()
	m.Size = d.f64()
	m.Delay = sim.Time(d.f64())
	m.Kind = d.u32()
	m.Payload = d.bytes()
	return m
}

// EncodeMsgs serialises a cross-partition mailbox batch (a Deliver
// request, or the Msgs half of a window result).
func EncodeMsgs(msgs []shard.Msg) []byte {
	var e enc
	e.u32(uint32(len(msgs)))
	for _, m := range msgs {
		encodeMsg(&e, m)
	}
	return e.buf
}

// DecodeMsgs is EncodeMsgs' strict inverse.
func DecodeMsgs(p []byte) ([]shard.Msg, error) {
	d := dec{buf: p}
	msgs := decodeMsgs(&d)
	return msgs, d.err()
}

func decodeMsgs(d *dec) []shard.Msg {
	n := d.count(msgWireSize)
	msgs := make([]shard.Msg, 0, n)
	for i := 0; i < n; i++ {
		msgs = append(msgs, decodeMsg(d))
	}
	return msgs
}

// EncodeResult serialises a window result: the boundary messages the
// window produced plus the stats the coordinator folds.
func EncodeResult(r shard.WindowResult) []byte {
	var e enc
	e.u32(uint32(len(r.Msgs)))
	for _, m := range r.Msgs {
		encodeMsg(&e, m)
	}
	e.u32(uint32(len(r.PerShard)))
	for _, v := range r.PerShard {
		e.u64(v)
	}
	e.i64(r.Sent)
	e.i64(r.CrossShard)
	return e.buf
}

// DecodeResult is EncodeResult's strict inverse.
func DecodeResult(p []byte) (shard.WindowResult, error) {
	d := dec{buf: p}
	var r shard.WindowResult
	r.Msgs = decodeMsgs(&d)
	n := d.count(8)
	r.PerShard = make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		r.PerShard = append(r.PerShard, d.u64())
	}
	r.Sent = d.i64()
	r.CrossShard = d.i64()
	return r, d.err()
}

const cityStateWireSize = 14 * 8

func encodeCityState(e *enc, cs city.CityState) {
	e.i64(int64(cs.City))
	e.i64(cs.EdgeSubmitted)
	e.i64(cs.EdgeServed)
	e.i64(cs.EdgeRejected)
	e.i64(cs.JobsSubmitted)
	e.i64(cs.JobsDone)
	e.i64(cs.JobsLost)
	e.i64(cs.TasksDone)
	e.f64(cs.WorkDone)
	e.f64(cs.EdgeLatencyMean)
	e.u64(cs.EventsFired)
	e.f64(float64(cs.SimTime))
	e.i64(cs.Exported)
	e.i64(cs.Imported)
}

func decodeCityState(d *dec) city.CityState {
	var cs city.CityState
	cs.City = int(d.i64())
	cs.EdgeSubmitted = d.i64()
	cs.EdgeServed = d.i64()
	cs.EdgeRejected = d.i64()
	cs.JobsSubmitted = d.i64()
	cs.JobsDone = d.i64()
	cs.JobsLost = d.i64()
	cs.TasksDone = d.i64()
	cs.WorkDone = d.f64()
	cs.EdgeLatencyMean = d.f64()
	cs.EventsFired = d.u64()
	cs.SimTime = sim.Time(d.f64())
	cs.Exported = d.i64()
	cs.Imported = d.i64()
	return cs
}

// EncodeStates serialises the per-city result records a worker reports
// for the cities it owns. The encoding is bit-exact (float64s as IEEE
// bits) because the coordinator folds these records into the federation
// checksum: a lossy transport would break the equivalence proof.
func EncodeStates(states []city.CityState) []byte {
	var e enc
	e.u32(uint32(len(states)))
	for _, cs := range states {
		encodeCityState(&e, cs)
	}
	return e.buf
}

// DecodeStates is EncodeStates' strict inverse.
func DecodeStates(p []byte) ([]city.CityState, error) {
	d := dec{buf: p}
	n := d.count(cityStateWireSize)
	states := make([]city.CityState, 0, n)
	for i := 0; i < n; i++ {
		states = append(states, decodeCityState(&d))
	}
	return states, d.err()
}

// EncodeError serialises a worker-side failure reason.
func EncodeError(msg string) []byte {
	var e enc
	e.bytes([]byte(msg))
	return e.buf
}

// DecodeError is EncodeError's strict inverse.
func DecodeError(p []byte) (string, error) {
	d := dec{buf: p}
	msg := string(d.bytes())
	return msg, d.err()
}

// EncodeChunk serialises an opaque byte chunk (metrics text, trace
// JSONL).
func EncodeChunk(b []byte) []byte {
	var e enc
	e.bytes(b)
	return e.buf
}

// DecodeChunk is EncodeChunk's strict inverse.
func DecodeChunk(p []byte) ([]byte, error) {
	d := dec{buf: p}
	b := d.bytes()
	return b, d.err()
}
