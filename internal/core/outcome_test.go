package core

import (
	"testing"

	"df3/internal/offload"
	"df3/internal/sim"
	"df3/internal/workload"
)

// TestEdgeOutcomeServed: a served request reports exactly one outcome with
// the same latency the platform ledger recorded.
func TestEdgeOutcomeServed(t *testing.T) {
	r := newRig(t, DefaultConfig(), 1, 2)
	c := r.mw.Clusters()[0]
	var got []EdgeOutcome
	r.mw.SubmitEdgeOutcome(c, r.devices[0], edgeReqOf(0.05, 0.5), func(o EdgeOutcome) {
		got = append(got, o)
	})
	r.e.Run(10)
	if len(got) != 1 {
		t.Fatalf("outcome fired %d times, want exactly once", len(got))
	}
	o := got[0]
	if !o.Served || o.Escalated || o.Attempts != 0 {
		t.Fatalf("outcome = %+v, want served without escalation", o)
	}
	if o.SimLatency <= 0 {
		t.Fatalf("SimLatency = %v, want > 0", o.SimLatency)
	}
	if want := r.mw.Edge.Latency.Mean(); o.SimLatency != want {
		t.Fatalf("SimLatency = %v, ledger mean = %v (single request: must match)", o.SimLatency, want)
	}
}

// TestEdgeOutcomeRejected: a policy rejection reports Served=false.
func TestEdgeOutcomeRejected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Offload = offload.RejectPolicy{}
	r := newRig(t, cfg, 1, 1)
	c := r.mw.Clusters()[0]
	// Saturate the single worker so the reject policy fires.
	long := make([]float64, 64)
	for i := range long {
		long[i] = 5000
	}
	r.mw.SubmitDCC(c, r.op, workload.BatchJob{ID: 1, TaskWork: long, Input: 1e6, Output: 1e6})
	r.e.Run(5)
	var got []EdgeOutcome
	r.mw.SubmitEdgeOutcome(c, r.devices[0], edgeReqOf(0.05, 0.5), func(o EdgeOutcome) {
		got = append(got, o)
	})
	r.e.Run(sim.Hour)
	if len(got) != 1 {
		t.Fatalf("outcome fired %d times, want exactly once", len(got))
	}
	if got[0].Served {
		t.Fatalf("outcome = %+v, want rejected", got[0])
	}
}

// TestEdgeOutcomeConservation: with outcome callbacks on every request,
// callbacks fired == Served + Rejected — the serving plane sees exactly
// what the ledger sees.
func TestEdgeOutcomeConservation(t *testing.T) {
	r := newRig(t, DefaultConfig(), 2, 1)
	var served, rejected, escalated int
	const n = 50
	for i := 0; i < n; i++ {
		i := i
		cl := r.mw.Clusters()[i%2]
		dev := r.devices[i%2]
		r.e.At(sim.Time(i)*0.05, func() {
			r.mw.SubmitEdgeOutcome(cl, dev, edgeReqOf(0.2, 1), func(o EdgeOutcome) {
				if o.Served {
					served++
				} else {
					rejected++
				}
				if o.Escalated {
					escalated++
				}
			})
		})
	}
	r.e.Run(sim.Hour)
	if int64(served) != r.mw.Edge.Served.Value() || int64(rejected) != r.mw.Edge.Rejected.Value() {
		t.Fatalf("callbacks saw %d served / %d rejected, ledger has %d / %d",
			served, rejected, r.mw.Edge.Served.Value(), r.mw.Edge.Rejected.Value())
	}
	if served+rejected != n {
		t.Fatalf("callbacks fired %d times for %d requests", served+rejected, n)
	}
}

// TestDCCOutcomeDone: a completed job reports task count and flow time.
func TestDCCOutcomeDone(t *testing.T) {
	r := newRig(t, DefaultConfig(), 1, 2)
	c := r.mw.Clusters()[0]
	var got []DCCOutcome
	r.mw.SubmitDCCOutcome(c, r.op, workload.BatchJob{
		ID: 1, TaskWork: []float64{10, 20, 30}, Input: 1e6, Output: 1e6,
	}, func(o DCCOutcome) { got = append(got, o) })
	r.e.Run(sim.Hour)
	if len(got) != 1 {
		t.Fatalf("outcome fired %d times, want exactly once", len(got))
	}
	o := got[0]
	if !o.Done || o.Tasks != 3 || o.SimLatency <= 0 {
		t.Fatalf("outcome = %+v, want done with 3 tasks and positive latency", o)
	}
	if r.mw.DCC.JobsDone.Value() != 1 {
		t.Fatalf("JobsDone = %d, want 1", r.mw.DCC.JobsDone.Value())
	}
}

// TestDCCOutcomeEmptyJob: an empty job settles immediately instead of
// leaving the caller hanging.
func TestDCCOutcomeEmptyJob(t *testing.T) {
	r := newRig(t, DefaultConfig(), 1, 1)
	c := r.mw.Clusters()[0]
	var got []DCCOutcome
	r.mw.SubmitDCCOutcome(c, r.op, workload.BatchJob{ID: 9}, func(o DCCOutcome) { got = append(got, o) })
	if len(got) != 1 || !got[0].Done || got[0].Tasks != 0 {
		t.Fatalf("empty job outcome = %v, want immediate done with 0 tasks", got)
	}
}

// TestOutcomeNilCallbackUnchanged: submissions through the outcome API
// with a nil callback behave byte-identically to the plain API — the
// bench's determinism contract depends on it.
func TestOutcomeNilCallbackUnchanged(t *testing.T) {
	run := func(withOutcomeAPI bool) (int64, int64, float64) {
		r := newRig(t, DefaultConfig(), 1, 2)
		c := r.mw.Clusters()[0]
		for i := 0; i < 20; i++ {
			i := i
			r.e.At(sim.Time(i)*0.1, func() {
				if withOutcomeAPI {
					r.mw.SubmitEdgeOutcome(c, r.devices[0], edgeReqOf(0.1, 1), nil)
				} else {
					r.mw.SubmitEdge(c, r.devices[0], edgeReqOf(0.1, 1))
				}
			})
		}
		r.e.Run(sim.Hour)
		return r.mw.Edge.Served.Value(), r.mw.Edge.Rejected.Value(), r.mw.Edge.Latency.Mean()
	}
	s1, r1, m1 := run(false)
	s2, r2, m2 := run(true)
	if s1 != s2 || r1 != r2 || m1 != m2 {
		t.Fatalf("nil-callback outcome API diverged: (%d,%d,%v) vs (%d,%d,%v)", s1, r1, m1, s2, r2, m2)
	}
}
