package core

import (
	"testing"

	"df3/internal/offload"
	"df3/internal/server"
	"df3/internal/sim"
	"df3/internal/trace"
	"df3/internal/workload"
)

func TestTracerRecordsEdgeLifecycle(t *testing.T) {
	r := newRig(t, DefaultConfig(), 1, 2)
	rec := &trace.Recorder{}
	r.mw.Tracer = rec
	c := r.mw.Clusters()[0]
	r.mw.SubmitEdge(c, r.devices[0], edgeReqOf(0.05, 0.5))
	r.e.Run(10)
	served := rec.Filter("edge_served")
	if len(served) != 1 {
		t.Fatalf("edge_served events = %d", len(served))
	}
	if served[0].Value <= 0 {
		t.Error("traced latency not positive")
	}
	if served[0].Detail != "edge-indirect" {
		t.Errorf("traced flow = %q", served[0].Detail)
	}
}

func TestTracerRecordsRejections(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Offload = rejectAll{}
	r := newRig(t, cfg, 1, 1)
	rec := &trace.Recorder{}
	r.mw.Tracer = rec
	c := r.mw.Clusters()[0]
	for i := 0; i < 16; i++ {
		c.Workers()[0].M.Start(&server.Task{Work: 1e6, Class: classEdge})
	}
	r.mw.SubmitEdge(c, r.devices[0], edgeReqOf(0.05, 0.5))
	r.e.Run(10)
	if len(rec.Filter("edge_rejected")) != 1 {
		t.Errorf("edge_rejected events = %d", len(rec.Filter("edge_rejected")))
	}
}

func TestTracerRecordsDCCJobs(t *testing.T) {
	r := newRig(t, DefaultConfig(), 1, 2)
	rec := &trace.Recorder{}
	r.mw.Tracer = rec
	c := r.mw.Clusters()[0]
	r.mw.SubmitDCC(c, r.op, workload.BatchJob{ID: 1, TaskWork: []float64{60, 60}, Input: 1e6, Output: 1e6})
	r.e.Run(sim.Hour)
	jobs := rec.Filter("dcc_job")
	if len(jobs) != 1 {
		t.Fatalf("dcc_job events = %d", len(jobs))
	}
	if jobs[0].Value < 60 {
		t.Errorf("traced flow time %v below task duration", jobs[0].Value)
	}
}

// rejectAll is offload.RejectPolicy under a test-local name.
type rejectAll = offload.RejectPolicy
