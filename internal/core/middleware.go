package core

import (
	"fmt"

	"df3/internal/network"
	"df3/internal/offload"
	"df3/internal/sched"
	"df3/internal/server"
	"df3/internal/sim"
	"df3/internal/trace"
	"df3/internal/units"
	"df3/internal/workload"
)

// Middleware is the DF3 control plane: it owns the clusters, the remote
// datacenter pool and the platform-wide flow statistics.
type Middleware struct {
	Engine *sim.Engine
	Net    *network.Fabric

	cfg      Config
	clusters []*Cluster

	// Datacenter state for vertical offloading and the DCC baseline.
	dcPool *sched.Pool
	dcNode network.NodeID

	// Edge and DCC are the platform-wide flow ledgers.
	Edge EdgeStats
	DCC  DCCStats

	// Tracer, when set, records per-request events (edge_served,
	// edge_rejected, dcc_job) for offline analysis and replay.
	Tracer *trace.Recorder

	// Content is the content-delivery flow ledger (see content.go).
	Content       ContentStats
	contentOrigin network.NodeID

	nextReqID uint64
	nextJobID uint64
}

// completeEdge finalises a served request: stats, deadline check, trace.
// Terminal transitions are idempotent: a retry that raced the original
// copy settles on whichever finished first.
func (mw *Middleware) completeEdge(req *edgeReq) {
	if req.done {
		return
	}
	req.done = true
	mw.disarmTimeout(req)
	latency := mw.Engine.Now() - req.arrival
	mw.Edge.Latency.Observe(latency)
	mw.Edge.Served.Inc()
	if req.deadline != 0 && mw.Engine.Now() > req.deadline {
		mw.Edge.Missed.Inc()
	}
	if mw.Tracer != nil {
		mw.Tracer.Record(trace.Event{
			T: mw.Engine.Now(), Kind: "edge_served", ID: req.id,
			Value: latency, Detail: req.flow.String(),
		})
	}
	mw.closeReqSpans(req, "served")
	if req.notify != nil {
		req.notify(EdgeOutcome{
			Served: true, Escalated: req.attempts > 0,
			Attempts: req.attempts, SimLatency: latency,
		})
	}
}

// closeReqSpans ends the queue-wait child (a stale queued copy never runs)
// and the root span of a request reaching a terminal state. An open compute
// span is deliberately left to its own closer — the task's OnDone, or
// loseEdge when the worker died under it — since a stale copy may still be
// computing past the terminal instant. All calls no-op on zero ids, so the
// tracing-off path pays only the field checks.
func (mw *Middleware) closeReqSpans(req *edgeReq, outcome string) {
	now := mw.Engine.Now()
	if req.qspan != 0 {
		mw.Tracer.EndSpanDetail(now, req.qspan, "terminal")
		req.qspan = 0
	}
	if req.span != 0 {
		mw.Tracer.EndSpanDetail(now, req.span, outcome)
		req.span = 0
	}
}

// rejectEdge finalises a dropped request (idempotent, like completeEdge).
func (mw *Middleware) rejectEdge(req *edgeReq) {
	if req.done {
		return
	}
	req.done = true
	mw.disarmTimeout(req)
	mw.Edge.Rejected.Inc()
	if mw.Tracer != nil {
		mw.Tracer.Add(mw.Engine.Now(), "edge_rejected", req.id, 0)
	}
	mw.closeReqSpans(req, "rejected")
	if req.notify != nil {
		req.notify(EdgeOutcome{
			Escalated: req.attempts > 0, Attempts: req.attempts,
			SimLatency: mw.Engine.Now() - req.arrival,
		})
	}
}

// ---------------------------------------------------------------------------
// Resilience: response timeouts, bounded retries, escalation
// ---------------------------------------------------------------------------

// armTimeout starts (or restarts) the request's response timer.
func (mw *Middleware) armTimeout(req *edgeReq) {
	if mw.cfg.ResponseTimeout <= 0 || req.done {
		return
	}
	if req.timer != nil {
		mw.Engine.Cancel(req.timer)
	}
	req.timer = mw.Engine.After(mw.cfg.ResponseTimeout, func() { mw.timeoutEdge(req) })
}

// disarmTimeout cancels the request's response timer.
func (mw *Middleware) disarmTimeout(req *edgeReq) {
	if req.timer != nil {
		mw.Engine.Cancel(req.timer)
		req.timer = nil
	}
}

// timeoutEdge fires when a request outlived its response timeout: the
// request (wherever its last copy died — a lost message, a failed worker,
// a queue behind a dead gateway) re-enters the decision ladder one rung
// up: local re-decide, then horizontal, then vertical, then reject.
func (mw *Middleware) timeoutEdge(req *edgeReq) {
	req.timer = nil
	if req.done {
		return
	}
	mw.Edge.TimedOut.Inc()
	req.attempts++
	if req.attempts > mw.cfg.EdgeMaxRetries {
		if req.span != 0 {
			mw.Tracer.Instant(mw.Engine.Now(), "timeout", 0, req.span, "budget-exhausted")
		}
		mw.rejectEdge(req)
		return
	}
	mw.Edge.Retries.Inc()
	if req.span != 0 {
		mw.Tracer.Instant(mw.Engine.Now(), "timeout", 0, req.span, "retry")
	}
	mw.armTimeout(req)
	mw.escalate(req)
}

// escalate routes a retried request per its attempt count. Rungs that
// cannot apply (no neighbours, no datacenter) fall through to the queue
// via the forwarders' own fallbacks; the attempt bound still terminates
// the ladder.
func (mw *Middleware) escalate(req *edgeReq) {
	c := req.home
	switch {
	case req.attempts <= 1:
		if req.span != 0 {
			mw.Tracer.Instant(mw.Engine.Now(), "escalate", 0, req.span, "re-decide")
		}
		mw.decide(c, req)
	case req.attempts == 2 && len(c.neighbors) > 0:
		if req.span != 0 {
			mw.Tracer.Instant(mw.Engine.Now(), "escalate", 0, req.span, "horizontal")
		}
		mw.forwardHorizontal(c, req)
	default:
		if req.span != 0 {
			mw.Tracer.Instant(mw.Engine.Now(), "escalate", 0, req.span, "vertical")
		}
		mw.forwardVertical(c, req)
	}
}

// loseEdge handles a request whose message died on the wire: retry from
// the origin within the budget, terminal reject beyond it. Without chaos
// knobs the fabric never drops, so this path is unreachable in the
// deterministic baseline.
func (mw *Middleware) loseEdge(req *edgeReq) {
	if req.cspan != 0 {
		// The request's running copy died with its worker; close the
		// compute span at the failure instant (even for already-terminal
		// requests, whose evacuated copy still owned an open span).
		mw.Tracer.EndSpanDetail(mw.Engine.Now(), req.cspan, "aborted")
		req.cspan = 0
	}
	if req.done {
		return
	}
	req.attempts++
	if req.attempts > mw.cfg.EdgeMaxRetries {
		if req.span != 0 {
			mw.Tracer.Instant(mw.Engine.Now(), "loss", 0, req.span, "budget-exhausted")
		}
		mw.rejectEdge(req)
		return
	}
	mw.Edge.Retries.Inc()
	if req.span != 0 {
		mw.Tracer.Instant(mw.Engine.Now(), "loss", 0, req.span, "retry")
	}
	mw.armTimeout(req)
	mw.resubmit(req)
}

// resubmit re-enters a request from its origin device toward its home
// gateway — the client retransmit of the §III-B middleware story.
func (mw *Middleware) resubmit(req *edgeReq) {
	c := req.home
	ok := mw.Net.SendTraced(req.origin, c.EdgeGW, req.input, req.span, func(sim.Time) {
		mw.Engine.After(mw.cfg.GatewayOverhead, func() { mw.decide(c, req) })
	}, func() { mw.loseEdge(req) })
	if !ok {
		mw.waitOrReject(req)
	}
}

// waitOrReject handles a request that cannot currently reach any service
// point (severed gateway): with a response timer armed it simply waits —
// the timer re-escalates once the outage may have healed — otherwise it is
// rejected on the spot, the fail-fast seed behaviour.
func (mw *Middleware) waitOrReject(req *edgeReq) {
	if req.timer == nil {
		mw.rejectEdge(req)
	}
}

// New builds a middleware with the given configuration. Defaults are
// applied for zero-valued policy fields.
func New(e *sim.Engine, net *network.Fabric, cfg Config) *Middleware {
	if cfg.Offload == nil {
		cfg.Offload = offload.Smart{}
	}
	return &Middleware{Engine: e, Net: net, cfg: cfg}
}

// Config returns the middleware configuration.
func (mw *Middleware) Config() Config { return mw.cfg }

// Clusters returns the registered clusters.
func (mw *Middleware) Clusters() []*Cluster { return mw.clusters }

// AddCluster registers a cluster of workers fronted by the two gateways.
// Under the Dedicated architecture the first Config.DedicatedEdgeWorkers
// workers are reserved for edge traffic.
func (mw *Middleware) AddCluster(edgeGW, dccGW network.NodeID, workers []*Worker) *Cluster {
	c := &Cluster{
		ID:     len(mw.clusters),
		EdgeGW: edgeGW,
		DCCGW:  dccGW,
		edgeQ:  sched.NewQueue(mw.cfg.EdgePolicy),
		dccQ:   sched.NewQueue(mw.cfg.DCCPolicy),
		mw:     mw,
	}
	for i, w := range workers {
		if mw.cfg.Arch == Dedicated && i < mw.cfg.DedicatedEdgeWorkers {
			w.EdgeOnly = true
		}
		c.workers = append(c.workers, w)
		w.M.OnCapacity(c.dispatch)
	}
	mw.clusters = append(mw.clusters, c)
	return c
}

// Peer links clusters for horizontal offloading (one direction; call twice
// or use PeerAll for symmetry).
func (mw *Middleware) Peer(a, b *Cluster) { a.neighbors = append(a.neighbors, b) }

// PeerAll makes every pair of clusters mutual neighbours.
func (mw *Middleware) PeerAll() {
	for _, a := range mw.clusters {
		for _, b := range mw.clusters {
			if a != b {
				a.neighbors = append(a.neighbors, b)
			}
		}
	}
}

// SetDatacenter installs the remote datacenter: a pool of machines behind
// the given network node, targets of vertical offloading.
func (mw *Middleware) SetDatacenter(node network.NodeID, machines []*server.Machine) {
	mw.dcNode = node
	mw.dcPool = sched.NewPool(mw.Engine, sched.EDF, machines)
	mw.dcPool.Placement = sched.FastestFirst
}

// DatacenterPool returns the datacenter pool (nil when not configured).
func (mw *Middleware) DatacenterPool() *sched.Pool { return mw.dcPool }

// gwLatency returns the one-way gateway-to-gateway latency between two
// clusters.
func (mw *Middleware) gwLatency(a, b *Cluster) sim.Time {
	l := mw.Net.PathLatency(a.EdgeGW, b.EdgeGW)
	if l < 0 {
		return 1e9 // unreachable: make any slack comparison fail
	}
	return l
}

// dcLatency returns the one-way latency from a cluster to the datacenter.
func (mw *Middleware) dcLatency(c *Cluster) sim.Time {
	if mw.dcPool == nil {
		return 1e9
	}
	l := mw.Net.PathLatency(c.EdgeGW, mw.dcNode)
	if l < 0 {
		return 1e9
	}
	return l
}

// ---------------------------------------------------------------------------
// Edge flow
// ---------------------------------------------------------------------------

// SubmitEdge injects an indirect local request: the device at `device`
// sends it to the cluster's edge gateway, which decides per the offload
// policy. This is the paper's recommended (more secure) path.
func (mw *Middleware) SubmitEdge(c *Cluster, device network.NodeID, r workload.EdgeRequest) {
	mw.SubmitEdgeOutcome(c, device, r, nil)
}

// SubmitEdgeOutcome is SubmitEdge with a terminal-outcome callback: notify
// fires exactly once, at the simulated instant the request settles (served
// or rejected). A nil notify makes it identical to SubmitEdge — the
// callback is pure observation and must not mutate middleware state. The
// serving front end (internal/api live mode) answers HTTP clients with it.
func (mw *Middleware) SubmitEdgeOutcome(c *Cluster, device network.NodeID, r workload.EdgeRequest, notify func(EdgeOutcome)) {
	mw.nextReqID++
	req := &edgeReq{
		id:      mw.nextReqID,
		flow:    FlowEdgeIndirect,
		origin:  device,
		work:    r.Work,
		input:   r.Input,
		output:  r.Output,
		arrival: mw.Engine.Now(),
		home:    c,
		notify:  notify,
	}
	if r.Deadline > 0 {
		req.deadline = mw.Engine.Now() + r.Deadline
	}
	mw.Edge.Submitted.Inc()
	req.span = mw.Tracer.BeginSpan(mw.Engine.Now(), "request", req.id, 0)
	mw.armTimeout(req)
	// Device → gateway transfer, then the gateway's processing delay,
	// then decide.
	ok := mw.Net.SendTraced(device, c.EdgeGW, r.Input, req.span, func(sim.Time) {
		mw.Engine.After(mw.cfg.GatewayOverhead, func() { mw.decide(c, req) })
	}, func() { mw.loseEdge(req) })
	if !ok {
		mw.waitOrReject(req)
	}
}

// SubmitEdgeDirect injects a direct local request to a pinned worker (the
// DF server in the device's own room). If the worker cannot run it, the
// request falls back to the indirect path and the fallback is counted —
// the security/latency trade-off of §II-C in measurable form.
func (mw *Middleware) SubmitEdgeDirect(c *Cluster, device network.NodeID, w *Worker, r workload.EdgeRequest) {
	mw.nextReqID++
	req := &edgeReq{
		id:      mw.nextReqID,
		flow:    FlowEdgeDirect,
		origin:  device,
		work:    r.Work,
		input:   r.Input,
		output:  r.Output,
		arrival: mw.Engine.Now(),
		home:    c,
	}
	if r.Deadline > 0 {
		req.deadline = mw.Engine.Now() + r.Deadline
	}
	mw.Edge.Submitted.Inc()
	req.span = mw.Tracer.BeginSpan(mw.Engine.Now(), "request", req.id, 0)
	mw.armTimeout(req)
	ok := mw.Net.SendTraced(device, w.Node, r.Input, req.span, func(sim.Time) {
		if !w.M.Offline() && w.FreeSlots() > 0 {
			mw.execute(c, w, req, w.Node) // respond straight to the device
			return
		}
		mw.Edge.DirectFallbacks.Inc()
		req.flow = FlowEdgeIndirect
		if req.span != 0 {
			mw.Tracer.Instant(mw.Engine.Now(), "direct-fallback", 0, req.span, "")
		}
		// Forward from the worker to the gateway and decide there.
		ok := mw.Net.SendTraced(w.Node, c.EdgeGW, r.Input, req.span, func(sim.Time) {
			mw.Engine.After(mw.cfg.GatewayOverhead, func() { mw.decide(c, req) })
		}, func() { mw.loseEdge(req) })
		if !ok {
			mw.waitOrReject(req)
		}
	}, func() { mw.loseEdge(req) })
	if !ok {
		mw.waitOrReject(req)
	}
}

// decide applies the offload policy to a request sitting at c's gateway.
func (mw *Middleware) decide(c *Cluster, req *edgeReq) {
	ctx := c.offloadContext(req)
	verdict := mw.cfg.Offload.Decide(ctx)
	if req.span != 0 {
		mw.Tracer.Instant(mw.Engine.Now(), "decide", 0, req.span, verdict.String())
	}
	switch verdict {
	case offload.Run:
		w := c.pickEdgeWorker()
		if w == nil {
			// Raced with another arrival; queue instead.
			mw.enqueueEdge(c, req)
			return
		}
		mw.runEdgeOn(c, w, req)
	case offload.Queue:
		mw.enqueueEdge(c, req)
	case offload.Preempt:
		mw.preemptFor(c, req)
	case offload.Horizontal:
		mw.forwardHorizontal(c, req)
	case offload.Vertical:
		mw.forwardVertical(c, req)
	default: // Reject
		mw.rejectEdge(req)
	}
}

// enqueueEdge pushes the request into c's edge queue. A request already
// waiting in some queue is not duplicated: the retry settles on the
// existing copy.
func (mw *Middleware) enqueueEdge(c *Cluster, req *edgeReq) {
	if req.queued || req.done {
		return
	}
	req.queued = true
	if req.span != 0 && req.qspan == 0 {
		req.qspan = mw.Tracer.BeginSpan(mw.Engine.Now(), "queue", 0, req.span)
	}
	// The queue discipline needs a task handle for SJF sizing.
	t := &server.Task{ID: req.id, Work: req.work, Class: classEdge}
	c.edgeQ.Push(&sched.Item{Task: t, Enqueued: mw.Engine.Now(), Deadline: req.deadline, Ctx: req})
}

// runEdgeOn reserves a slot on w and ships the input (indirect route).
func (mw *Middleware) runEdgeOn(c *Cluster, w *Worker, req *edgeReq) {
	w.reserved++
	mw.shipEdge(c, w, req)
}

// shipEdge transfers the input to a worker whose slot is already reserved,
// then executes. The reservation is released when the input lands (or dies
// on the wire).
func (mw *Middleware) shipEdge(c *Cluster, w *Worker, req *edgeReq) {
	ok := mw.Net.SendTraced(c.EdgeGW, w.Node, req.input, req.span, func(sim.Time) {
		w.reserved--
		if req.done {
			return
		}
		if !w.M.Offline() && w.M.FreeSlots() > 0 {
			mw.execute(c, w, req, c.EdgeGW)
			return
		}
		// The slot vanished while the input was in flight (another start,
		// or the worker failed under us); re-decide.
		mw.decide(c, req)
	}, func() {
		w.reserved--
		if req.done {
			return
		}
		mw.loseEdge(req)
	})
	if !ok {
		w.reserved--
		mw.waitOrReject(req)
	}
}

// execute runs the request on the worker and routes the response back to
// the origin via `via` (gateway for indirect, worker-direct otherwise).
func (mw *Middleware) execute(c *Cluster, w *Worker, req *edgeReq, via network.NodeID) {
	cspan := mw.Tracer.BeginSpan(mw.Engine.Now(), "compute", 0, req.span)
	req.cspan = cspan
	task := &server.Task{ID: req.id, Work: req.work, Class: classEdge, Ctx: req}
	task.OnDone = func(at sim.Time) {
		if cspan != 0 {
			mw.Tracer.EndSpanDetail(at, cspan, w.M.Name)
			if req.cspan == cspan {
				req.cspan = 0
			}
		}
		// A lost response re-enters the retry ladder like any other wire
		// loss: the work is redone, which is the at-least-once semantics a
		// client retransmit gives you.
		respond := func(sim.Time) { mw.completeEdge(req) }
		lost := func() { mw.loseEdge(req) }
		if via == w.Node {
			// Direct: worker answers the device itself.
			if !mw.Net.SendTraced(w.Node, req.origin, req.output, req.span, respond, lost) {
				mw.waitOrReject(req)
			}
			return
		}
		// Indirect: worker → gateway → device.
		ok := mw.Net.SendTraced(w.Node, via, req.output, req.span, func(sim.Time) {
			if !mw.Net.SendTraced(via, req.origin, req.output, req.span, respond, lost) {
				mw.waitOrReject(req)
			}
		}, lost)
		if !ok {
			mw.waitOrReject(req)
		}
	}
	if !w.M.Start(task) {
		panic(fmt.Sprintf("core: execute on full worker %s", w.M.Name))
	}
}

// preemptFor evicts a DCC task and runs the request in its place; the
// victim returns to the DCC queue with its remaining work.
func (mw *Middleware) preemptFor(c *Cluster, req *edgeReq) {
	w, victim := c.victim()
	if victim == nil {
		mw.enqueueEdge(c, req)
		return
	}
	// Reserve the slot before evicting: Preempt fires the machine's
	// capacity callback synchronously, and dispatch must not hand the
	// freed slot to queued DCC work meant to be displaced.
	w.reserved++
	w.M.Preempt(victim)
	mw.Edge.Preemptions.Inc()
	c.dccQ.Push(&sched.Item{Task: victim, Enqueued: mw.Engine.Now(), Ctx: nil})
	mw.shipEdge(c, w, req)
	// A DCC worker elsewhere in the cluster may be free for the victim.
	c.dispatch()
}

// forwardHorizontal ships the request to the best neighbour's gateway:
// most free slots, debt cap respected, ties broken toward the neighbour
// owing the most cooperation.
func (mw *Middleware) forwardHorizontal(c *Cluster, req *edgeReq) {
	var best *Cluster
	for _, n := range c.neighbors {
		if mw.cfg.CoopDebtLimit > 0 && n.CoopDebt() >= mw.cfg.CoopDebtLimit {
			continue // n already works enough for others ([16])
		}
		if best == nil ||
			n.freeEdgeSlots() > best.freeEdgeSlots() ||
			(n.freeEdgeSlots() == best.freeEdgeSlots() && n.CoopDebt() < best.CoopDebt()) {
			best = n
		}
	}
	if best == nil {
		mw.enqueueEdge(c, req)
		return
	}
	mw.Edge.Horizontal.Inc()
	c.fwdOut++
	best.fwdIn++
	req.fwd = true
	target := best
	ok := mw.Net.SendTraced(c.EdgeGW, target.EdgeGW, req.input, req.span, func(sim.Time) {
		// Responses will flow back through the remote gateway; the origin
		// stays the device, so the path is worker → remote GW → device.
		mw.Engine.After(mw.cfg.GatewayOverhead, func() { mw.decide(target, req) })
	}, func() { mw.loseEdge(req) })
	if !ok {
		mw.waitOrReject(req)
	}
}

// forwardVertical ships the request to the datacenter.
func (mw *Middleware) forwardVertical(c *Cluster, req *edgeReq) {
	if mw.dcPool == nil {
		mw.enqueueEdge(c, req)
		return
	}
	mw.Edge.Vertical.Inc()
	lost := func() { mw.loseEdge(req) }
	ok := mw.Net.SendTraced(c.EdgeGW, mw.dcNode, req.input, req.span, func(sim.Time) {
		if req.done {
			return
		}
		cspan := mw.Tracer.BeginSpan(mw.Engine.Now(), "compute", 0, req.span)
		req.cspan = cspan
		task := &server.Task{ID: req.id, Work: req.work, Class: classEdge, Ctx: req}
		task.OnDone = func(at sim.Time) {
			if cspan != 0 {
				mw.Tracer.EndSpanDetail(at, cspan, "datacenter")
				if req.cspan == cspan {
					req.cspan = 0
				}
			}
			// Response: datacenter → gateway → device.
			ok := mw.Net.SendTraced(mw.dcNode, c.EdgeGW, req.output, req.span, func(sim.Time) {
				ok := mw.Net.SendTraced(c.EdgeGW, req.origin, req.output, req.span, func(sim.Time) {
					mw.completeEdge(req)
				}, lost)
				if !ok {
					mw.waitOrReject(req)
				}
			}, lost)
			if !ok {
				mw.waitOrReject(req)
			}
		}
		mw.dcPool.Submit(task, req.deadline, nil)
	}, lost)
	if !ok {
		mw.waitOrReject(req)
	}
}

// ---------------------------------------------------------------------------
// DCC flow
// ---------------------------------------------------------------------------

// SubmitDCC injects an Internet batch job at a cluster's DCC gateway from
// the operator node. Tasks queue FCFS behind the cluster's batch queue and
// the job completes when its last task does.
func (mw *Middleware) SubmitDCC(c *Cluster, operator network.NodeID, job workload.BatchJob) {
	mw.SubmitDCCNotify(c, operator, job, nil)
}

// SubmitDCCNotify is SubmitDCC with a completion callback, for workloads
// with job-level deadlines (e.g. the overnight finance batches).
func (mw *Middleware) SubmitDCCNotify(c *Cluster, operator network.NodeID, job workload.BatchJob, onDone func(at sim.Time)) {
	mw.submitDCC(c, operator, job, onDone, nil)
}

// SubmitDCCOutcome is SubmitDCC with a terminal-outcome callback: result
// fires exactly once, when the job completes or is lost past the retry
// budget. A nil result makes it identical to SubmitDCC; an empty job
// reports immediately as done with zero tasks. Pure observation, like
// SubmitEdgeOutcome.
func (mw *Middleware) SubmitDCCOutcome(c *Cluster, operator network.NodeID, job workload.BatchJob, result func(DCCOutcome)) {
	mw.submitDCC(c, operator, job, nil, result)
}

func (mw *Middleware) submitDCC(c *Cluster, operator network.NodeID, job workload.BatchJob, onDone func(at sim.Time), result func(DCCOutcome)) {
	mw.nextJobID++
	j := &dccJob{
		id:      mw.nextJobID,
		arrival: mw.Engine.Now(),
		pending: len(job.TaskWork),
		tasks:   len(job.TaskWork),
		cluster: c,
		onDone:  onDone,
		result:  result,
	}
	for _, w := range job.TaskWork {
		if w > j.ideal {
			j.ideal = w
		}
	}
	if j.pending == 0 {
		if j.result != nil {
			j.result(DCCOutcome{Done: true})
		}
		return
	}
	mw.DCC.JobsSubmitted.Inc()
	j.span = mw.Tracer.BeginSpan(mw.Engine.Now(), "dcc-job", dccTraceBit|j.id, 0)
	// One input transfer operator → gateway for the job payload, then
	// tasks enter the queue. A payload that cannot reach the gateway (no
	// route, or lost on the wire under chaos) is retried with exponential
	// backoff up to DCCMaxRetries; past the budget the job is lost — but
	// counted, and its completion callback still fires, so deadline
	// workloads observe the failure instead of hanging.
	size := job.Input * units.Byte(len(job.TaskWork))
	deliver := func(sim.Time) {
		for i, w := range job.TaskWork {
			work := w // original size; Task.Work mutates on preemption
			t := &server.Task{ID: job.ID*1_000_000 + uint64(i), Work: w, Class: classDCC}
			t.OnDone = func(at sim.Time) { mw.dccTaskDone(j, work) }
			c.dccQ.Push(&sched.Item{Task: t, Enqueued: mw.Engine.Now(), Ctx: j})
		}
		c.dispatch()
	}
	lose := func() {
		mw.DCC.JobsLost.Inc()
		j.pending = 0
		if j.span != 0 {
			mw.Tracer.EndSpanDetail(mw.Engine.Now(), j.span, "lost")
			j.span = 0
		}
		if j.onDone != nil {
			j.onDone(mw.Engine.Now())
		}
		if j.result != nil {
			j.result(DCCOutcome{Tasks: j.tasks, SimLatency: mw.Engine.Now() - j.arrival})
		}
	}
	var attempt func(n int)
	attempt = func(n int) {
		retry := func() {
			if n >= mw.cfg.DCCMaxRetries {
				lose()
				return
			}
			mw.DCC.SubmitRetries.Inc()
			if j.span != 0 {
				mw.Tracer.Instant(mw.Engine.Now(), "dcc-retry", 0, j.span, "")
			}
			backoff := mw.cfg.DCCRetryBackoff * sim.Time(int64(1)<<uint(n))
			mw.Engine.AfterTransient(backoff, func() { attempt(n + 1) })
		}
		if !mw.Net.SendTraced(operator, c.DCCGW, size, j.span, deliver, func() { retry() }) {
			retry()
		}
	}
	attempt(0)
}

// dccTaskDone advances the owning job; completed work is credited even for
// tasks that were preempted and resumed elsewhere.
func (mw *Middleware) dccTaskDone(j *dccJob, work float64) {
	mw.DCC.TasksDone.Inc()
	mw.DCC.WorkDone += work
	j.pending--
	if j.span != 0 {
		mw.Tracer.Instant(mw.Engine.Now(), "dcc-task", 0, j.span, "")
	}
	if j.pending == 0 {
		flow := mw.Engine.Now() - j.arrival
		mw.DCC.JobFlowTime.Observe(flow)
		ideal := j.ideal
		if ideal < 1 {
			ideal = 1
		}
		mw.DCC.JobStretch.Observe(flow / ideal)
		mw.DCC.JobsDone.Inc()
		if mw.Tracer != nil {
			mw.Tracer.Add(mw.Engine.Now(), "dcc_job", j.id, flow)
		}
		if j.span != 0 {
			mw.Tracer.EndSpanDetail(mw.Engine.Now(), j.span, "done")
			j.span = 0
		}
		if j.onDone != nil {
			j.onDone(mw.Engine.Now())
		}
		if j.result != nil {
			j.result(DCCOutcome{Done: true, Tasks: j.tasks, SimLatency: flow})
		}
	}
}

// Dispatch forces a dispatch pass on every cluster (used after bulk
// submissions in tests and scenario setup).
func (mw *Middleware) Dispatch() {
	for _, c := range mw.clusters {
		c.dispatch()
	}
}
