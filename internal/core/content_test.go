package core

import (
	"testing"

	"df3/internal/units"
)

func TestContentHitServedLocally(t *testing.T) {
	r := newRig(t, DefaultConfig(), 1, 1)
	c := r.mw.Clusters()[0]
	r.mw.EnableContentCache(10*units.MB, r.mw.dcNode)

	// First request: miss, fetched from origin across the Internet.
	r.mw.SubmitContent(c, r.devices[0], 42, 20*units.KB)
	r.e.Run(5)
	if r.mw.Content.CacheMisses.Value() != 1 || r.mw.Content.CacheHits.Value() != 0 {
		t.Fatalf("first request: hits=%d misses=%d",
			r.mw.Content.CacheHits.Value(), r.mw.Content.CacheMisses.Value())
	}
	missLatency := r.mw.Content.Latency.Max()

	// Second request for the same object: hit, served over the LAN.
	r.mw.SubmitContent(c, r.devices[0], 42, 20*units.KB)
	r.e.Run(10)
	if r.mw.Content.CacheHits.Value() != 1 {
		t.Fatalf("second request did not hit")
	}
	hitLatency := r.mw.Content.Latency.Min()
	if hitLatency >= missLatency {
		t.Errorf("hit latency %v not below miss latency %v", hitLatency, missLatency)
	}
	// The miss pays two Internet legs (~70 ms); the hit only LAN.
	if missLatency < 0.06 {
		t.Errorf("miss latency %v suspiciously low", missLatency)
	}
	if hitLatency > 0.02 {
		t.Errorf("hit latency %v suspiciously high", hitLatency)
	}
	if r.mw.Content.OriginBytes != 20e3 {
		t.Errorf("origin bytes = %v, want one object", r.mw.Content.OriginBytes)
	}
}

func TestContentWithoutCacheFails(t *testing.T) {
	r := newRig(t, DefaultConfig(), 1, 1)
	c := r.mw.Clusters()[0]
	r.mw.SubmitContent(c, r.devices[0], 1, 1000)
	r.e.Run(1)
	if r.mw.Content.Failed.Value() != 1 {
		t.Error("content request without cache configured should fail")
	}
}

func TestContentZeroCapacityIsPassThrough(t *testing.T) {
	r := newRig(t, DefaultConfig(), 1, 1)
	c := r.mw.Clusters()[0]
	r.mw.EnableContentCache(0, r.mw.dcNode)
	for i := 0; i < 3; i++ {
		r.mw.SubmitContent(c, r.devices[0], 7, 20*units.KB)
		r.e.Run(r.e.Now() + 5)
	}
	if r.mw.Content.CacheHits.Value() != 0 {
		t.Error("zero-capacity cache produced hits")
	}
	if r.mw.Content.Served.Value() != 3 {
		t.Errorf("served = %d, want all pass-through", r.mw.Content.Served.Value())
	}
	if r.mw.Content.OriginBytes != 60e3 {
		t.Errorf("origin bytes = %v, want every object fetched", r.mw.Content.OriginBytes)
	}
}
