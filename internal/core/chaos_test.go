package core

import (
	"testing"

	"df3/internal/offload"
	"df3/internal/rng"
	"df3/internal/server"
	"df3/internal/sim"
	"df3/internal/workload"
)

// TestReservationRaceWorkerFails pins the in-flight-input race: the only
// worker fails after shipEdge reserved its slot but before the input lands.
// The landing must release the reservation and re-enter decide — not panic
// in execute — and the request must still be served once the worker (or
// the datacenter) picks it up.
func TestReservationRaceWorkerFails(t *testing.T) {
	r := newRig(t, DefaultConfig(), 1, 1)
	c := r.mw.Clusters()[0]
	w := c.Workers()[0]
	r.mw.SubmitEdge(c, r.devices[0], edgeReqOf(0.05, 10))
	// decide runs at ~3.6 ms (LAN transfer + gateway overhead); the input
	// reaches the worker at ~4.3 ms. Fail in between, with the
	// reservation outstanding.
	r.e.At(0.004, func() {
		if w.reserved != 1 {
			t.Fatalf("reserved = %d at failure time, want 1 (race window missed)", w.reserved)
		}
		c.FailWorker(w)
	})
	r.e.At(1, func() { c.RestoreWorker(w) })
	r.e.Run(sim.Hour)
	if w.reserved != 0 {
		t.Errorf("reserved = %d after drain, want 0", w.reserved)
	}
	if got := r.mw.Edge.Served.Value(); got != 1 {
		t.Errorf("served = %d, want 1 (rejected = %d)", got, r.mw.Edge.Rejected.Value())
	}
}

// TestDCCLostJobCountedAndNotified pins the satellite fix: a job whose
// payload cannot reach the gateway must be counted in JobsLost and its
// completion callback must fire — not silently zero j.pending.
func TestDCCLostJobCountedAndNotified(t *testing.T) {
	r := newRig(t, DefaultConfig(), 1, 1)
	c := r.mw.Clusters()[0]
	r.net.FailNode(c.DCCGW)
	notified := false
	r.mw.SubmitDCCNotify(c, r.op, workload.BatchJob{
		ID: 1, TaskWork: []float64{10, 10}, Input: 1e6, Output: 1e6,
	}, func(sim.Time) { notified = true })
	r.e.Run(60)
	if !notified {
		t.Error("completion callback never fired for the lost job")
	}
	if got := r.mw.DCC.JobsLost.Value(); got != 1 {
		t.Errorf("JobsLost = %d, want 1", got)
	}
	if got := r.mw.DCC.JobsSubmitted.Value(); got != 1 {
		t.Errorf("JobsSubmitted = %d, want 1", got)
	}
	if r.mw.DCC.JobsDone.Value() != 0 || r.mw.DCC.TasksDone.Value() != 0 {
		t.Error("lost job credited work")
	}
}

// TestDCCRetryBackoffRecovers: with a retry budget, a payload that fails
// while the gateway is down is re-sent on the backoff ladder and the job
// completes once the outage heals.
func TestDCCRetryBackoffRecovers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DCCMaxRetries = 3
	cfg.DCCRetryBackoff = 1
	r := newRig(t, cfg, 1, 1)
	c := r.mw.Clusters()[0]
	r.net.FailNode(c.DCCGW)
	r.e.At(0.5, func() { r.net.RestoreNode(c.DCCGW) })
	r.mw.SubmitDCCNotify(c, r.op, workload.BatchJob{
		ID: 1, TaskWork: []float64{5}, Input: 1e6, Output: 1e6,
	}, nil)
	r.e.Run(sim.Hour)
	if got := r.mw.DCC.JobsDone.Value(); got != 1 {
		t.Errorf("JobsDone = %d, want 1 after retry", got)
	}
	if r.mw.DCC.JobsLost.Value() != 0 {
		t.Error("job counted lost despite successful retry")
	}
	if r.mw.DCC.SubmitRetries.Value() == 0 {
		t.Error("no submit retries recorded")
	}
}

// TestResponseTimeoutEscalates: a request stuck behind a jammed cluster
// climbs the ladder on each timeout — local re-decide first, then a
// horizontal hop to a free neighbour, where it is served.
func TestResponseTimeoutEscalates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Offload = offload.DelayPolicy{}
	cfg.ResponseTimeout = 0.5
	cfg.EdgeMaxRetries = 3
	r := newRig(t, cfg, 2, 1)
	c0 := r.mw.Clusters()[0]
	jamWorker(c0.Workers()[0])
	r.mw.SubmitEdge(c0, r.devices[0], edgeReqOf(0.05, 30))
	r.e.Run(60)
	if got := r.mw.Edge.Served.Value(); got != 1 {
		t.Fatalf("served = %d, want 1 via escalation (rejected = %d)",
			got, r.mw.Edge.Rejected.Value())
	}
	if r.mw.Edge.TimedOut.Value() < 2 {
		t.Errorf("TimedOut = %d, want >= 2 (local rung, then horizontal)", r.mw.Edge.TimedOut.Value())
	}
	if r.mw.Edge.Horizontal.Value() != 1 {
		t.Errorf("Horizontal = %d, want 1", r.mw.Edge.Horizontal.Value())
	}
}

// TestRetryBudgetExhaustionRejects: with every service point unreachable
// for good, the ladder terminates in a rejection — requests never hang.
func TestRetryBudgetExhaustionRejects(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ResponseTimeout = 0.5
	cfg.EdgeMaxRetries = 2
	r := newRig(t, cfg, 1, 1)
	c := r.mw.Clusters()[0]
	r.net.FailNode(c.EdgeGW)
	r.mw.SubmitEdge(c, r.devices[0], edgeReqOf(0.05, 30))
	r.e.Run(60)
	if got := r.mw.Edge.Rejected.Value(); got != 1 {
		t.Errorf("rejected = %d, want 1 after budget exhaustion", got)
	}
	if got := r.mw.Edge.Submitted.Value(); got != r.mw.Edge.Served.Value()+r.mw.Edge.Rejected.Value() {
		t.Errorf("conservation broken: submitted %d != served + rejected", got)
	}
}

// TestEdgeConservationUnderChaos is the tier-1 conservation check under
// full network chaos: random loss on every link class, a flapping metro
// link and a gateway outage mid-run. Every submitted request must end
// served or rejected, every job done or lost, all queues drained and all
// reservations released.
func TestEdgeConservationUnderChaos(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ResponseTimeout = 0.5
	cfg.EdgeMaxRetries = 3
	cfg.DCCMaxRetries = 2
	cfg.DCCRetryBackoff = 0.5
	r := newRig(t, cfg, 2, 2)
	r.net.SetLoss("lan", 0.05)
	r.net.SetLoss("metro", 0.1)
	r.net.SetLoss("fibre", 0.1)
	r.net.SetLossRNG(rng.New(11))
	c0, c1 := r.mw.Clusters()[0], r.mw.Clusters()[1]
	// Metro link flaps; cluster 1's edge gateway dies and heals.
	r.e.At(3, func() { r.net.FailLink(c0.EdgeGW, c1.EdgeGW) })
	r.e.At(8, func() { r.net.RestoreLink(c0.EdgeGW, c1.EdgeGW) })
	r.e.At(10, func() { r.net.FailNode(c1.EdgeGW) })
	r.e.At(14, func() { r.net.RestoreNode(c1.EdgeGW) })
	const n = 100
	for i := 0; i < n; i++ {
		i := i
		cl := r.mw.Clusters()[i%2]
		dev := r.devices[i%2]
		r.e.At(sim.Time(i)*0.2, func() {
			r.mw.SubmitEdge(cl, dev, edgeReqOf(0.05, 2))
		})
	}
	const jobs = 10
	for i := 0; i < jobs; i++ {
		i := i
		cl := r.mw.Clusters()[i%2]
		r.e.At(sim.Time(i)*2, func() {
			r.mw.SubmitDCC(cl, r.op, workload.BatchJob{
				ID: uint64(i + 1), TaskWork: []float64{20, 20}, Input: 1e6, Output: 1e6,
			})
		})
	}
	r.e.Run(6 * sim.Hour)
	e := &r.mw.Edge
	if e.Submitted.Value() != int64(n) {
		t.Fatalf("submitted = %d, want %d", e.Submitted.Value(), n)
	}
	if e.Served.Value()+e.Rejected.Value() != int64(n) {
		t.Errorf("conservation broken: served %d + rejected %d != %d",
			e.Served.Value(), e.Rejected.Value(), n)
	}
	d := &r.mw.DCC
	if d.JobsSubmitted.Value() != jobs {
		t.Fatalf("jobs submitted = %d, want %d", d.JobsSubmitted.Value(), jobs)
	}
	if d.JobsDone.Value()+d.JobsLost.Value() != jobs {
		t.Errorf("job conservation broken: done %d + lost %d != %d",
			d.JobsDone.Value(), d.JobsLost.Value(), jobs)
	}
	for ci, c := range r.mw.Clusters() {
		if c.EdgeQueueLen() != 0 {
			t.Errorf("cluster %d: %d requests stuck in edge queue", ci, c.EdgeQueueLen())
		}
		for wi, w := range c.Workers() {
			if w.reserved != 0 {
				t.Errorf("cluster %d worker %d: %d reservations leaked", ci, wi, w.reserved)
			}
		}
	}
	if e.Retries.Value() == 0 {
		t.Error("chaos run recorded no retries; knobs not exercised")
	}
}

// jamWorker fills every slot with effectively-infinite edge work.
func jamWorker(w *Worker) {
	for w.M.FreeSlots() > 0 {
		w.M.Start(&server.Task{Work: 1e9, Class: classEdge})
	}
}
