package core

import (
	"math"
	"testing"

	"df3/internal/network"
	"df3/internal/offload"
	"df3/internal/server"
	"df3/internal/sim"
	"df3/internal/workload"
)

// rig is a small test scenario: nClusters clusters of nWorkers Q.rads on a
// building LAN each, metro links between gateways, and a datacenter across
// the Internet.
type rig struct {
	e       *sim.Engine
	net     *network.Fabric
	mw      *Middleware
	devices []network.NodeID // one device per cluster
	op      network.NodeID   // operator node
}

func newRig(t *testing.T, cfg Config, nClusters, nWorkers int) *rig {
	t.Helper()
	e := sim.New()
	net := network.NewFabric(e)
	mw := New(e, net, cfg)
	r := &rig{e: e, net: net, mw: mw}

	r.op = net.AddNode("operator")
	dcNode := net.AddNode("datacenter")
	var dcMachines []*server.Machine
	for i := 0; i < 4; i++ {
		dcMachines = append(dcMachines, server.DatacenterNodeSpec().Build(e, "dc"))
	}

	var gws []network.NodeID
	for ci := 0; ci < nClusters; ci++ {
		edgeGW := net.AddNode("edge-gw")
		dccGW := net.AddNode("dcc-gw")
		net.Connect(edgeGW, dccGW, network.LAN)
		dev := net.AddNode("device")
		net.Connect(dev, edgeGW, network.LAN)
		var workers []*Worker
		for wi := 0; wi < nWorkers; wi++ {
			m := server.QradSpec().Build(e, "qrad")
			node := net.AddNode("room")
			net.Connect(node, edgeGW, network.LAN)
			workers = append(workers, &Worker{M: m, Node: node})
		}
		mw.AddCluster(edgeGW, dccGW, workers)
		r.devices = append(r.devices, dev)
		gws = append(gws, edgeGW)
		// Operator reaches each DCC gateway over fibre.
		net.Connect(r.op, dccGW, network.Fibre)
	}
	for i := 0; i < len(gws); i++ {
		for j := i + 1; j < len(gws); j++ {
			net.Connect(gws[i], gws[j], network.Metro)
		}
	}
	mw.PeerAll()
	for _, gw := range gws {
		net.Connect(gw, dcNode, network.Internet)
	}
	mw.SetDatacenter(dcNode, dcMachines)
	return r
}

func edgeReqOf(work float64, deadline sim.Time) workload.EdgeRequest {
	return workload.EdgeRequest{Work: work, Deadline: deadline, Input: 16e3, Output: 200}
}

func TestEdgeIndirectServed(t *testing.T) {
	r := newRig(t, DefaultConfig(), 1, 2)
	c := r.mw.Clusters()[0]
	r.mw.SubmitEdge(c, r.devices[0], edgeReqOf(0.05, 0.5))
	r.e.Run(10)
	if r.mw.Edge.Served.Value() != 1 {
		t.Fatalf("served = %d", r.mw.Edge.Served.Value())
	}
	if r.mw.Edge.Missed.Value() != 0 {
		t.Error("request missed its generous deadline")
	}
	lat := r.mw.Edge.Latency.Mean()
	// Expected: ~50 ms exec + 4 LAN transfers; far below 200 ms.
	if lat <= 0.05 || lat > 0.2 {
		t.Errorf("indirect latency = %v", lat)
	}
}

func TestEdgeDirectFasterThanIndirect(t *testing.T) {
	run := func(direct bool) float64 {
		r := newRig(t, DefaultConfig(), 1, 2)
		c := r.mw.Clusters()[0]
		for i := 0; i < 50; i++ {
			i := i
			r.e.At(sim.Time(i)*2, func() {
				req := edgeReqOf(0.05, 0.5)
				if direct {
					r.mw.SubmitEdgeDirect(c, r.devices[0], c.Workers()[0], req)
				} else {
					r.mw.SubmitEdge(c, r.devices[0], req)
				}
			})
		}
		r.e.Run(200)
		return r.mw.Edge.Latency.Mean()
	}
	direct, indirect := run(true), run(false)
	if direct >= indirect {
		t.Errorf("direct latency %v not below indirect %v", direct, indirect)
	}
}

func TestEdgeDirectFallsBack(t *testing.T) {
	r := newRig(t, DefaultConfig(), 1, 2)
	c := r.mw.Clusters()[0]
	pinned := c.Workers()[0]
	// Fill the pinned worker completely.
	for i := 0; i < pinned.M.Cores; i++ {
		pinned.M.Start(&server.Task{Work: 1e6, Class: classDCC})
	}
	r.mw.SubmitEdgeDirect(c, r.devices[0], pinned, edgeReqOf(0.05, 5))
	r.e.Run(10)
	if r.mw.Edge.DirectFallbacks.Value() != 1 {
		t.Errorf("fallbacks = %d", r.mw.Edge.DirectFallbacks.Value())
	}
	if r.mw.Edge.Served.Value() != 1 {
		t.Errorf("served = %d (fallback should still serve)", r.mw.Edge.Served.Value())
	}
}

func TestDCCJobCompletes(t *testing.T) {
	r := newRig(t, DefaultConfig(), 1, 2)
	c := r.mw.Clusters()[0]
	job := workload.BatchJob{ID: 1, TaskWork: []float64{60, 120, 60}, Input: 1e6, Output: 1e6}
	r.mw.SubmitDCC(c, r.op, job)
	r.e.Run(sim.Hour)
	if r.mw.DCC.JobsDone.Value() != 1 {
		t.Fatalf("jobs done = %d", r.mw.DCC.JobsDone.Value())
	}
	if r.mw.DCC.TasksDone.Value() != 3 {
		t.Errorf("tasks done = %d", r.mw.DCC.TasksDone.Value())
	}
	if math.Abs(r.mw.DCC.WorkDone-240) > 1e-9 {
		t.Errorf("work done = %v", r.mw.DCC.WorkDone)
	}
	// 32 free cores, 3 tasks: flow ≈ max task (120 s) + transfers.
	if ft := r.mw.DCC.JobFlowTime.Mean(); ft < 120 || ft > 140 {
		t.Errorf("flow time = %v", ft)
	}
	if st := r.mw.DCC.JobStretch.Mean(); st < 1 || st > 1.2 {
		t.Errorf("stretch = %v", st)
	}
}

func TestEdgePreemptsDCC(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Offload = offload.PreemptPolicy{}
	r := newRig(t, cfg, 1, 1)
	c := r.mw.Clusters()[0]
	// Saturate the single worker (16 cores) with long DCC work.
	works := make([]float64, 16)
	for i := range works {
		works[i] = 3600
	}
	r.mw.SubmitDCC(c, r.op, workload.BatchJob{ID: 1, TaskWork: works, Input: 1e6, Output: 1e6})
	r.e.Run(60)
	// Now an edge request arrives: it must preempt.
	r.mw.SubmitEdge(c, r.devices[0], edgeReqOf(0.05, 0.5))
	r.e.Run(120)
	if r.mw.Edge.Preemptions.Value() != 1 {
		t.Fatalf("preemptions = %d", r.mw.Edge.Preemptions.Value())
	}
	if r.mw.Edge.Served.Value() != 1 || r.mw.Edge.Missed.Value() != 0 {
		t.Errorf("served=%d missed=%d", r.mw.Edge.Served.Value(), r.mw.Edge.Missed.Value())
	}
	// The preempted DCC task must eventually finish too.
	r.e.Run(2 * sim.Hour)
	if r.mw.DCC.TasksDone.Value() != 16 {
		t.Errorf("dcc tasks done = %d, want 16 (victim resumed)", r.mw.DCC.TasksDone.Value())
	}
}

func TestVerticalOffload(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Offload = offload.VerticalPolicy{}
	r := newRig(t, cfg, 1, 1)
	c := r.mw.Clusters()[0]
	// Saturate the worker with edge-class tasks so no preemption exists.
	for i := 0; i < 16; i++ {
		c.Workers()[0].M.Start(&server.Task{Work: 1e6, Class: classEdge})
	}
	r.mw.SubmitEdge(c, r.devices[0], edgeReqOf(0.05, 1.0))
	r.e.Run(30)
	if r.mw.Edge.Vertical.Value() != 1 {
		t.Fatalf("vertical offloads = %d", r.mw.Edge.Vertical.Value())
	}
	if r.mw.Edge.Served.Value() != 1 {
		t.Fatalf("served = %d", r.mw.Edge.Served.Value())
	}
	// The vertical path pays ≥ 4 Internet latencies (in via gw, out via
	// gw): latency must exceed the pure-local figure.
	if lat := r.mw.Edge.Latency.Mean(); lat < 0.1 {
		t.Errorf("vertical latency = %v, implausibly low", lat)
	}
}

func TestHorizontalOffload(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Offload = offload.HorizontalPolicy{}
	r := newRig(t, cfg, 2, 1)
	c0, c1 := r.mw.Clusters()[0], r.mw.Clusters()[1]
	for i := 0; i < 16; i++ {
		c0.Workers()[0].M.Start(&server.Task{Work: 1e6, Class: classEdge})
	}
	r.mw.SubmitEdge(c0, r.devices[0], edgeReqOf(0.05, 1.0))
	r.e.Run(30)
	if r.mw.Edge.Horizontal.Value() != 1 {
		t.Fatalf("horizontal offloads = %d", r.mw.Edge.Horizontal.Value())
	}
	if r.mw.Edge.Served.Value() != 1 {
		t.Fatalf("served = %d", r.mw.Edge.Served.Value())
	}
	if got := c1.Workers()[0].M.AssignedTasks(); got != 0 {
		// The forwarded task should have completed by now.
		t.Errorf("neighbour still has %d tasks", got)
	}
}

func TestRejectPolicyDrops(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Offload = offload.RejectPolicy{}
	r := newRig(t, cfg, 1, 1)
	c := r.mw.Clusters()[0]
	for i := 0; i < 16; i++ {
		c.Workers()[0].M.Start(&server.Task{Work: 1e6, Class: classEdge})
	}
	r.mw.SubmitEdge(c, r.devices[0], edgeReqOf(0.05, 1.0))
	r.e.Run(10)
	if r.mw.Edge.Rejected.Value() != 1 {
		t.Errorf("rejected = %d", r.mw.Edge.Rejected.Value())
	}
	if r.mw.Edge.MissRate() != 1 {
		t.Errorf("miss rate = %v", r.mw.Edge.MissRate())
	}
}

func TestDedicatedArchIsolation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Arch = Dedicated
	cfg.DedicatedEdgeWorkers = 1
	r := newRig(t, cfg, 1, 2)
	c := r.mw.Clusters()[0]
	// Flood with DCC: it must only ever occupy the non-dedicated worker.
	works := make([]float64, 64)
	for i := range works {
		works[i] = 600
	}
	r.mw.SubmitDCC(c, r.op, workload.BatchJob{ID: 1, TaskWork: works, Input: 1e6, Output: 1e6})
	r.e.Run(120)
	if got := c.Workers()[0].M.AssignedTasks(); got != 0 {
		t.Errorf("dedicated edge worker runs %d DCC tasks", got)
	}
	if got := c.Workers()[1].M.AssignedTasks(); got == 0 {
		t.Error("DCC worker idle despite flood")
	}
	// Edge requests land instantly on the dedicated worker.
	r.mw.SubmitEdge(c, r.devices[0], edgeReqOf(0.05, 0.5))
	r.e.Run(130)
	if r.mw.Edge.Served.Value() != 1 || r.mw.Edge.Missed.Value() != 0 {
		t.Errorf("edge on dedicated arch: served=%d missed=%d",
			r.mw.Edge.Served.Value(), r.mw.Edge.Missed.Value())
	}
}

func TestExpiredQueuedRequestsDropped(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Offload = offload.DelayPolicy{}
	r := newRig(t, cfg, 1, 1)
	c := r.mw.Clusters()[0]
	// Block the worker for 10 s with edge-class tasks.
	for i := 0; i < 16; i++ {
		c.Workers()[0].M.Start(&server.Task{Work: 10, Class: classEdge})
	}
	// These requests have 0.5 s deadlines: all will expire in queue.
	for i := 0; i < 5; i++ {
		r.mw.SubmitEdge(c, r.devices[0], edgeReqOf(0.05, 0.5))
	}
	r.e.Run(60)
	if r.mw.Edge.Rejected.Value() != 5 {
		t.Errorf("rejected = %d, want 5 expired", r.mw.Edge.Rejected.Value())
	}
	if r.mw.Edge.Served.Value() != 0 {
		t.Errorf("served = %d, want 0", r.mw.Edge.Served.Value())
	}
}

func TestEdgeStatsMissRate(t *testing.T) {
	var s EdgeStats
	s.Served.Addn(8)
	s.Missed.Addn(1)
	s.Rejected.Addn(2)
	if got := s.Arrived(); got != 10 {
		t.Errorf("arrived = %d", got)
	}
	if got := s.MissRate(); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("miss rate = %v", got)
	}
}

func TestThreeFlowsCoexist(t *testing.T) {
	// E3 smoke test: run edge + DCC together; both make progress and no
	// flow starves.
	r := newRig(t, DefaultConfig(), 2, 2)
	works := make([]float64, 40)
	for i := range works {
		works[i] = 300
	}
	for ci, c := range r.mw.Clusters() {
		r.mw.SubmitDCC(c, r.op, workload.BatchJob{ID: uint64(ci + 1), TaskWork: works, Input: 1e6, Output: 1e6})
	}
	for i := 0; i < 100; i++ {
		i := i
		r.e.At(sim.Time(i)*5, func() {
			c := r.mw.Clusters()[i%2]
			r.mw.SubmitEdge(c, r.devices[i%2], edgeReqOf(0.05, 0.5))
		})
	}
	r.e.Run(2 * sim.Hour)
	if r.mw.Edge.Served.Value() != 100 {
		t.Errorf("edge served = %d/100", r.mw.Edge.Served.Value())
	}
	if r.mw.Edge.MissRate() > 0.05 {
		t.Errorf("edge miss rate = %v", r.mw.Edge.MissRate())
	}
	if r.mw.DCC.JobsDone.Value() != 2 {
		t.Errorf("dcc jobs done = %d/2", r.mw.DCC.JobsDone.Value())
	}
}
