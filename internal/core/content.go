package core

import (
	"df3/internal/cache"
	"df3/internal/metrics"
	"df3/internal/network"
	"df3/internal/sim"
	"df3/internal/units"
)

// Content delivery is the §II-A "low-bandwidth neighborhood application"
// family — map serving, Internet television — running on the edge
// gateways: each cluster's gateway keeps an LRU cache of the content its
// neighbourhood requests; hits are served over the building LAN, misses
// fetch from the origin behind the datacenter node and populate the cache.
// This is the paper's §V observation that CDN infrastructure competes for
// the same role, implemented on DF3's own gateways.

// ContentStats aggregates the content flow's outcomes.
type ContentStats struct {
	// Latency samples end-to-end response times.
	Latency metrics.Sample
	// Served counts completed requests; Failed counts unreachable paths.
	Served metrics.Counter
	Failed metrics.Counter
	// OriginBytes accumulates backhaul traffic to the origin.
	OriginBytes float64
	// CacheHits and CacheMisses aggregate across clusters.
	CacheHits, CacheMisses metrics.Counter
}

// HitRate returns the platform-wide cache hit rate.
func (s *ContentStats) HitRate() float64 {
	return metrics.Rate(s.CacheHits.Value(), s.CacheHits.Value()+s.CacheMisses.Value())
}

// EnableContentCache gives every cluster's edge gateway a content cache of
// the given byte capacity (zero = pass-through, the baseline arm) and
// installs the origin node content is fetched from on miss.
func (mw *Middleware) EnableContentCache(capacity units.Byte, origin network.NodeID) {
	mw.contentOrigin = origin
	for _, c := range mw.clusters {
		c.content = cache.New(capacity)
	}
}

// SubmitContent requests one content object (a map tile, a TV segment) of
// the given id and size from a device. The response returns over the LAN
// on a hit, or across the Internet once per miss.
func (mw *Middleware) SubmitContent(c *Cluster, device network.NodeID, id uint64, size units.Byte) {
	if c.content == nil {
		mw.Content.Failed.Inc()
		return
	}
	start := mw.Engine.Now()
	finish := func(sim.Time) {
		mw.Content.Latency.Observe(mw.Engine.Now() - start)
		mw.Content.Served.Inc()
	}
	// Device → gateway request (small).
	ok := mw.Net.Send(device, c.EdgeGW, 400, func(sim.Time) {
		mw.Engine.After(mw.cfg.GatewayOverhead, func() {
			if _, hit := c.content.Get(id); hit {
				mw.Content.CacheHits.Inc()
				if !mw.Net.Send(c.EdgeGW, device, size, finish) {
					mw.Content.Failed.Inc()
				}
				return
			}
			mw.Content.CacheMisses.Inc()
			// Fetch from the origin: request out, object back, then
			// cache and respond.
			ok := mw.Net.Send(c.EdgeGW, mw.contentOrigin, 400, func(sim.Time) {
				ok := mw.Net.Send(mw.contentOrigin, c.EdgeGW, size, func(sim.Time) {
					mw.Content.OriginBytes += float64(size)
					c.content.Put(id, size)
					if !mw.Net.Send(c.EdgeGW, device, size, finish) {
						mw.Content.Failed.Inc()
					}
				})
				if !ok {
					mw.Content.Failed.Inc()
				}
			})
			if !ok {
				mw.Content.Failed.Inc()
			}
		})
	})
	if !ok {
		mw.Content.Failed.Inc()
	}
}

// ContentCacheOf returns a cluster's content cache (nil when disabled).
func (c *Cluster) ContentCacheOf() *cache.LRU { return c.content }
