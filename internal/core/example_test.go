package core_test

import (
	"fmt"

	"df3/internal/city"
	"df3/internal/sim"
	"df3/internal/workload"
)

// Example_threeFlows runs the DF3 proposition in miniature: one building
// serving heating, a batch job and an edge request at once.
func Example_threeFlows() {
	cfg := city.DefaultConfig()
	cfg.Buildings = 1
	cfg.RoomsPerBuilding = 2

	c := city.Build(cfg)
	b := c.Buildings[0]

	// Flow 2: a small render job from the operator.
	c.MW.SubmitDCC(b.Cluster, c.Operator, workload.BatchJob{
		ID: 1, TaskWork: []float64{120, 120}, Input: 1e6, Output: 1e6,
	})
	// Flow 3: one alarm inference from a room sensor.
	c.MW.SubmitEdge(b.Cluster, b.Rooms[0].Node, workload.EdgeRequest{
		Work: 0.05, Deadline: 0.5, Input: 16e3, Output: 200,
	})
	c.Run(sim.Hour)

	fmt.Println("edge served:", c.MW.Edge.Served.Value(), "missed:", c.MW.Edge.Missed.Value())
	fmt.Println("dcc jobs done:", c.MW.DCC.JobsDone.Value())
	fmt.Printf("room comfortable: %v\n", b.Rooms[0].Zone.Temp > 18)
	// Output:
	// edge served: 1 missed: 0
	// dcc jobs done: 1
	// room comfortable: true
}
