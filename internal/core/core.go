// Package core implements the DF3 middleware — the paper's contribution:
// one platform serving the three flows of §II-C (heating requests, Internet
// distributed-cloud-computing requests, and local edge requests, direct or
// indirect) on the same fleet of data-furnace servers.
//
// The component architecture follows Fig. 5: clusters of worker machines
// fronted by an edge gateway and a DCC gateway, a regulation system
// (package regulator) throttling each worker to its host's heat demand, a
// remote datacenter for vertical offloading, and metro links between
// clusters for horizontal offloading. Both §III-B architecture classes are
// implemented: class 1 shares every worker between edge and DCC; class 2
// dedicates a worker subset to edge traffic.
package core

import (
	"df3/internal/metrics"
	"df3/internal/network"
	"df3/internal/offload"
	"df3/internal/sched"
	"df3/internal/server"
	"df3/internal/sim"
	"df3/internal/trace"
	"df3/internal/units"
)

// Flow labels the three request flows of the DF3 model.
type Flow int

const (
	// FlowHeating is a comfort request (setpoint change).
	FlowHeating Flow = iota
	// FlowDCC is an Internet distributed-cloud-computing request.
	FlowDCC
	// FlowEdgeIndirect is a local request routed through the edge gateway.
	FlowEdgeIndirect
	// FlowEdgeDirect is a local request sent straight to a worker.
	FlowEdgeDirect
)

func (f Flow) String() string {
	switch f {
	case FlowHeating:
		return "heating"
	case FlowDCC:
		return "dcc"
	case FlowEdgeIndirect:
		return "edge-indirect"
	default:
		return "edge-direct"
	}
}

// Task classes, used for preemption victim selection on shared workers.
const (
	classEdge = 1
	classDCC  = 2
)

// ArchClass selects the §III-B architecture.
type ArchClass int

const (
	// Shared lets every worker serve both edge and DCC (class 1).
	Shared ArchClass = iota
	// Dedicated reserves a fixed subset of workers for edge (class 2).
	Dedicated
)

func (a ArchClass) String() string {
	if a == Dedicated {
		return "dedicated"
	}
	return "shared"
}

// Config parameterises the middleware.
type Config struct {
	// Arch selects shared or dedicated workers.
	Arch ArchClass
	// DedicatedEdgeWorkers is the per-cluster count of workers reserved
	// for edge when Arch == Dedicated.
	DedicatedEdgeWorkers int
	// Offload is the peak-management policy.
	Offload offload.Policy
	// EdgeQueueCap bounds each cluster's edge queue (0 = unbounded).
	EdgeQueueCap int
	// EdgePolicy is the edge queue discipline (EDF by default).
	EdgePolicy sched.Policy
	// DCCPolicy is the batch queue discipline (FCFS by default).
	DCCPolicy sched.Policy
	// DropExpired discards queued edge requests whose deadline already
	// passed instead of wasting a worker slot on them.
	DropExpired bool
	// GatewayOverhead is the middleware processing delay added when a
	// request traverses a gateway (decision, container routing). Direct
	// requests skip it — the latency side of the §II-C direct/indirect
	// trade-off.
	GatewayOverhead sim.Time
	// CoopDebtLimit caps a neighbour's cooperation debt (accepted minus
	// sent horizontal requests): a cluster that is already this many
	// requests in surplus refuses further forwards, the fairness control
	// of [16]. Zero means unlimited cooperation.
	CoopDebtLimit int64
	// ResponseTimeout, when positive, arms a per-request timer at
	// submission (and on every retry): an edge request not served by then
	// re-enters the decision ladder with escalation — local re-decide,
	// then horizontal, then vertical, then reject. Zero disables the
	// timer, reproducing the fail-fast seed behaviour exactly.
	ResponseTimeout sim.Time
	// EdgeMaxRetries bounds how many times a timed-out or wire-lost edge
	// request is retried before it is terminally rejected. Zero means a
	// single attempt (any loss or timeout rejects immediately).
	EdgeMaxRetries int
	// DCCMaxRetries bounds re-submissions of a DCC job payload whose
	// transfer to the gateway failed (unreachable or lost on the wire).
	// Zero means a failed submission loses the job (counted in
	// DCC.JobsLost, with the completion callback still fired).
	DCCMaxRetries int
	// DCCRetryBackoff is the base of the exponential backoff between DCC
	// submission attempts: attempt n waits backoff·2ⁿ.
	DCCRetryBackoff sim.Time
}

// DefaultConfig is the reference configuration: shared workers, smart
// offloading, EDF edge queueing with a cap of 64, expired requests dropped.
func DefaultConfig() Config {
	return Config{
		Arch:            Shared,
		Offload:         offload.Smart{},
		EdgeQueueCap:    64,
		EdgePolicy:      sched.EDF,
		DCCPolicy:       sched.FCFS,
		DropExpired:     true,
		GatewayOverhead: 0.003,
	}
}

// Worker binds a machine to its network attachment point.
type Worker struct {
	M *server.Machine
	// Node is the worker's network endpoint (its room on the building LAN).
	Node network.NodeID
	// EdgeOnly marks workers reserved for edge traffic under Dedicated.
	EdgeOnly bool
	// reserved counts slots promised to edge inputs still on the wire, so
	// the dispatcher does not hand the same slot to DCC work meanwhile.
	reserved int
}

// FreeSlots returns the worker's startable slots net of reservations.
func (w *Worker) FreeSlots() int {
	n := w.M.FreeSlots() - w.reserved
	if n < 0 {
		return 0
	}
	return n
}

// EdgeStats aggregates the edge flow's outcome metrics.
type EdgeStats struct {
	// Latency samples end-to-end response times of served requests.
	Latency metrics.Sample
	// Submitted counts every request injected at the platform edge. The
	// conservation invariant is Submitted == Served + Rejected once the
	// platform drains — nothing silent, even under network chaos.
	Submitted metrics.Counter
	// Served counts requests completed (regardless of deadline).
	Served metrics.Counter
	// Missed counts served requests that finished past their deadline.
	Missed metrics.Counter
	// Rejected counts requests dropped by policy, expiry, network
	// unreachability or retry-budget exhaustion.
	Rejected metrics.Counter
	// Preemptions, Horizontal, Vertical count offload actions taken.
	Preemptions, Horizontal, Vertical metrics.Counter
	// DirectFallbacks counts direct requests that fell back to the
	// gateway because the pinned worker was unavailable.
	DirectFallbacks metrics.Counter
	// Retries counts re-submissions after a timeout or wire loss.
	Retries metrics.Counter
	// TimedOut counts ResponseTimeout expiries (a request may time out
	// several times as it climbs the escalation ladder).
	TimedOut metrics.Counter
}

// Arrived returns the total number of edge requests seen.
func (s *EdgeStats) Arrived() int64 {
	return s.Served.Value() + s.Rejected.Value()
}

// MissRate returns (missed + rejected) / arrived — the deadline-failure
// probability an application would observe.
func (s *EdgeStats) MissRate() float64 {
	return metrics.Rate(s.Missed.Value()+s.Rejected.Value(), s.Arrived())
}

// DCCStats aggregates the batch flow's outcome metrics.
type DCCStats struct {
	// JobFlowTime samples per-job flow times (completion − arrival).
	JobFlowTime metrics.Sample
	// JobStretch samples flow time / ideal time, where ideal is the
	// job's critical path (its largest task) at full speed.
	JobStretch metrics.Sample
	// TasksDone counts completed tasks.
	TasksDone metrics.Counter
	// JobsDone counts completed jobs.
	JobsDone metrics.Counter
	// JobsSubmitted counts non-empty jobs injected at the platform. The
	// conservation invariant is JobsSubmitted == JobsDone + JobsLost once
	// the platform drains.
	JobsSubmitted metrics.Counter
	// JobsLost counts jobs whose payload never reached a gateway after
	// exhausting the retry budget. Their completion callback fires (so
	// deadline workloads observe the failure) but no work is credited.
	JobsLost metrics.Counter
	// SubmitRetries counts payload re-submissions on the backoff ladder.
	SubmitRetries metrics.Counter
	// WorkDone accumulates completed core-seconds.
	WorkDone float64
}

// Throughput returns completed core-seconds per second of simulated time.
func (s *DCCStats) Throughput(elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return s.WorkDone / elapsed
}

// EdgeOutcome is the terminal fate of one edge request, reported to the
// submitter's callback — what a serving front end answers a real client
// with. Exactly one outcome fires per request (terminal transitions are
// idempotent), at the simulated instant the request settled.
type EdgeOutcome struct {
	// Served reports completion; false means terminally rejected (policy,
	// expiry, unreachability or retry-budget exhaustion).
	Served bool
	// Escalated reports that the request climbed the retry/escalation
	// ladder (timed out or was lost at least once) before settling.
	Escalated bool
	// Attempts is the number of timeouts and wire losses consumed.
	Attempts int
	// SimLatency is terminal time minus first platform arrival.
	SimLatency sim.Time
}

// DCCOutcome is the terminal fate of one batch job.
type DCCOutcome struct {
	// Done reports completion; false means the job was lost (its payload
	// never reached a gateway within the retry budget).
	Done bool
	// Tasks is the number of tasks the job carried.
	Tasks int
	// SimLatency is the job flow time (completion minus arrival).
	SimLatency sim.Time
}

// edgeReq is the in-flight state of one edge request.
type edgeReq struct {
	id       uint64
	flow     Flow
	origin   network.NodeID // where the response must return to
	work     float64
	deadline sim.Time // absolute; 0 = none
	input    units.Byte
	output   units.Byte
	arrival  sim.Time // first arrival at the platform edge
	fwd      bool     // already took a horizontal hop
	home     *Cluster // cluster that first received it (stats owner)
	// done marks the request terminal (served or rejected). Retries can
	// leave stale copies in queues or on the wire; the first terminal
	// transition wins and every later one is ignored, which is what keeps
	// Submitted == Served + Rejected exact.
	done bool
	// queued guards against the same request occupying two queue slots
	// when a retry races a still-enqueued copy.
	queued bool
	// attempts counts timeouts and wire losses consumed so far; it drives
	// the escalation ladder and is bounded by EdgeMaxRetries.
	attempts int
	// timer is the armed response timeout, cancelled on terminal.
	timer *sim.Event
	// notify, when set, receives the request's terminal outcome — the
	// serving path's per-request answer. Pure observation: it must not
	// mutate middleware state.
	notify func(EdgeOutcome)
	// span is the request's root trace span (0 when tracing is off), qspan
	// the currently open queue-wait child and cspan the currently open
	// compute child — kept on the request so abort paths (worker failure,
	// stale queue pops) can close them.
	span, qspan, cspan trace.SpanID
}

// dccJob is the in-flight state of one batch job.
type dccJob struct {
	id      uint64
	arrival sim.Time
	ideal   float64 // critical path in core-seconds at full speed
	pending int
	tasks   int
	cluster *Cluster
	onDone  func(at sim.Time)
	// result, when set, receives the job's terminal outcome (done or
	// lost) — the serving path's per-job answer. Pure observation.
	result func(DCCOutcome)
	span   trace.SpanID // root job span (0 when tracing is off)
}

// dccTraceBit offsets DCC job ids into their own trace-id space so job
// traces never collide with edge request traces in an exported timeline.
const dccTraceBit = uint64(1) << 40
