package core

import (
	"df3/internal/cache"
	"df3/internal/network"
	"df3/internal/offload"
	"df3/internal/sched"
	"df3/internal/server"
	"df3/internal/sim"
)

// Cluster is one Fig. 5 cluster: workers plus an edge gateway and a DCC
// gateway on the building (or district) network.
type Cluster struct {
	ID int
	// EdgeGW and DCCGW are the gateways' network endpoints.
	EdgeGW, DCCGW network.NodeID
	workers       []*Worker
	edgeQ         *sched.Queue
	dccQ          *sched.Queue
	neighbors     []*Cluster
	mw            *Middleware
	// fwdIn and fwdOut count horizontal requests received from and sent
	// to other clusters — the bookkeeping behind the fairness-of-
	// cooperation question the paper raises via [16].
	fwdIn, fwdOut int64
	// content is the gateway's LRU content cache (nil unless
	// EnableContentCache was called).
	content *cache.LRU
}

// ForwardedIn returns the number of horizontal requests this cluster
// accepted from neighbours.
func (c *Cluster) ForwardedIn() int64 { return c.fwdIn }

// ForwardedOut returns the number of horizontal requests this cluster sent
// to neighbours.
func (c *Cluster) ForwardedOut() int64 { return c.fwdOut }

// CoopDebt returns accepted-minus-sent: positive means this cluster works
// for others more than they work for it.
func (c *Cluster) CoopDebt() int64 { return c.fwdIn - c.fwdOut }

// Workers returns the cluster's workers.
func (c *Cluster) Workers() []*Worker { return c.workers }

// Neighbors returns the clusters reachable for horizontal offloading.
func (c *Cluster) Neighbors() []*Cluster { return c.neighbors }

// EdgeQueueLen returns the current edge queue length.
func (c *Cluster) EdgeQueueLen() int { return c.edgeQ.Len() }

// DCCQueueLen returns the current DCC queue length.
func (c *Cluster) DCCQueueLen() int { return c.dccQ.Len() }

// edgeWorkers yields workers eligible for edge tasks under the arch class.
func (c *Cluster) edgeWorkers() []*Worker {
	if c.mw.cfg.Arch == Shared {
		return c.workers
	}
	out := make([]*Worker, 0, len(c.workers))
	for _, w := range c.workers {
		if w.EdgeOnly {
			out = append(out, w)
		}
	}
	return out
}

// dccWorkers yields workers eligible for DCC tasks under the arch class.
func (c *Cluster) dccWorkers() []*Worker {
	if c.mw.cfg.Arch == Shared {
		return c.workers
	}
	out := make([]*Worker, 0, len(c.workers))
	for _, w := range c.workers {
		if !w.EdgeOnly {
			out = append(out, w)
		}
	}
	return out
}

// freeEdgeSlots counts slots able to run an edge task now, net of inputs
// already in flight toward workers.
func (c *Cluster) freeEdgeSlots() int {
	n := 0
	for _, w := range c.edgeWorkers() {
		n += w.FreeSlots()
	}
	return n
}

// pickEdgeWorker returns the eligible worker with the highest current
// speed among those with a free slot (FastestFirst: edge requests are
// latency-bound), or nil.
func (c *Cluster) pickEdgeWorker() *Worker {
	var best *Worker
	for _, w := range c.edgeWorkers() {
		if w.FreeSlots() == 0 {
			continue
		}
		if best == nil || w.M.Speed() > best.M.Speed() {
			best = w
		}
	}
	return best
}

// pickDCCWorker returns the least-loaded eligible worker with a free slot
// (LeastLoaded spreads heat across hosts), or nil.
func (c *Cluster) pickDCCWorker() *Worker {
	var best *Worker
	for _, w := range c.dccWorkers() {
		if w.FreeSlots() == 0 {
			continue
		}
		if best == nil || w.FreeSlots() > best.FreeSlots() {
			best = w
		}
	}
	return best
}

// victim returns a worker hosting a preemptible DCC task, preferring the
// youngest victim (least banked work lost), or nil.
func (c *Cluster) victim() (*Worker, *server.Task) {
	var bw *Worker
	var bt *server.Task
	for _, w := range c.edgeWorkers() {
		t := w.M.Victim(classDCC)
		if t == nil {
			continue
		}
		// Each machine offers its youngest DCC task; across machines we
		// take the one with the most remaining work, which loses the
		// least banked progress to the eviction.
		if bt == nil || t.Remaining() > bt.Remaining() {
			bw, bt = w, t
		}
	}
	return bw, bt
}

// dispatch drains queues onto free slots: edge first (priority), then DCC.
func (c *Cluster) dispatch() {
	now := c.mw.Engine.Now()
	for c.edgeQ.Len() > 0 && c.freeEdgeSlots() > 0 {
		head := c.edgeQ.Peek()
		req := head.Ctx.(*edgeReq)
		if req.done {
			// A retry (or timeout escalation) beat this queued copy to a
			// terminal state; discard it.
			c.edgeQ.Pop()
			req.queued = false
			c.endQueueSpan(req, "stale")
			continue
		}
		if c.mw.cfg.DropExpired && head.Deadline != 0 && head.Deadline < now {
			// Discard queued requests that can no longer make it.
			c.edgeQ.Pop()
			req.queued = false
			c.endQueueSpan(req, "expired")
			c.mw.rejectEdge(req)
			continue
		}
		w := c.pickEdgeWorker()
		if w == nil {
			break
		}
		c.edgeQ.Pop()
		req.queued = false
		c.endQueueSpan(req, "dispatched")
		c.mw.runEdgeOn(c, w, req)
	}
	for c.dccQ.Len() > 0 {
		w := c.pickDCCWorker()
		if w == nil {
			break
		}
		it := c.dccQ.Pop()
		if !w.M.Start(it.Task) {
			panic("core: dcc placement picked a full machine")
		}
	}
}

// endQueueSpan closes a popped request's queue-wait span (no-op when
// tracing is off or the span was already closed at a terminal transition).
func (c *Cluster) endQueueSpan(req *edgeReq, outcome string) {
	if req.qspan != 0 {
		c.mw.Tracer.EndSpanDetail(c.mw.Engine.Now(), req.qspan, outcome)
		req.qspan = 0
	}
}

// offloadContext snapshots the cluster state for the decision policy.
func (c *Cluster) offloadContext(req *edgeReq) offload.Context {
	now := c.mw.Engine.Now()
	slack := sim.Time(0)
	if req.deadline != 0 {
		slack = req.deadline - now - sim.Time(req.work) // expected exec at full speed
	}
	var bestNeighbor int
	var hRTT sim.Time
	for _, n := range c.neighbors {
		if free := n.freeEdgeSlots(); free > bestNeighbor {
			bestNeighbor = free
			hRTT = 2 * c.mw.gwLatency(c, n)
		}
	}
	return offload.Context{
		FreeSlots:     c.freeEdgeSlots(),
		QueueLen:      c.edgeQ.Len(),
		QueueCap:      c.mw.cfg.EdgeQueueCap,
		Slack:         slack,
		CanPreempt:    c.canPreempt(),
		NeighborFree:  bestNeighbor,
		HorizontalRTT: hRTT,
		VerticalRTT:   2 * c.mw.dcLatency(c),
		Forwarded:     req.fwd,
	}
}

// canPreempt reports whether a DCC victim exists on an edge-eligible worker.
func (c *Cluster) canPreempt() bool {
	_, t := c.victim()
	return t != nil
}

// FailWorker takes a worker out of service: its tasks are evacuated, DCC
// tasks re-queue locally with their remaining work, and edge tasks are
// lost with the machine — they re-enter the retry ladder when a retry
// budget is configured, and are terminally rejected otherwise. Slots
// reserved for inputs still on the wire stay reserved: the input's
// delivery (or loss) callback releases them and re-decides, so the
// reservation count self-reconciles. Pair with RestoreWorker when the
// machine is repaired.
func (c *Cluster) FailWorker(w *Worker) {
	evacuated := w.M.Evacuate()
	w.M.SetOffline(true)
	for _, t := range evacuated {
		if t.Class == classDCC {
			c.dccQ.Push(&sched.Item{Task: t, Enqueued: c.mw.Engine.Now(), Ctx: t.Ctx})
			continue
		}
		if req, okReq := t.Ctx.(*edgeReq); okReq {
			c.mw.loseEdge(req)
		} else {
			c.mw.Edge.Rejected.Inc()
		}
	}
	c.dispatch()
}

// RestoreWorker returns a failed worker to service and dispatches backlog.
func (c *Cluster) RestoreWorker(w *Worker) {
	w.M.SetOffline(false)
	c.dispatch()
}
