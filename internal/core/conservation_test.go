package core

import (
	"testing"
	"testing/quick"

	"df3/internal/offload"
	"df3/internal/rng"
	"df3/internal/sim"
	"df3/internal/workload"
)

// TestEdgeConservationProperty: under every offload policy and a random
// mix of load, every submitted edge request ends in exactly one terminal
// state — served or rejected — once the platform drains. Nothing is lost
// in flight, duplicated by re-decides, or stuck in a queue forever.
func TestEdgeConservationProperty(t *testing.T) {
	policies := []offload.Policy{
		offload.RejectPolicy{},
		offload.DelayPolicy{},
		offload.PreemptPolicy{},
		offload.VerticalPolicy{},
		offload.HorizontalPolicy{},
		offload.Smart{},
	}
	f := func(seed uint64, pIdx uint8, burst uint8) bool {
		cfg := DefaultConfig()
		cfg.Offload = policies[int(pIdx)%len(policies)]
		r := newRig(t, cfg, 2, 1)
		s := rng.New(seed)
		// Random DCC backlog to create contention.
		works := make([]float64, int(burst%48)+8)
		for i := range works {
			works[i] = 30 + s.Float64()*300
		}
		r.mw.SubmitDCC(r.mw.Clusters()[0], r.op, workload.BatchJob{
			ID: 1, TaskWork: works, Input: 1e6, Output: 1e6,
		})
		const n = 60
		for i := 0; i < n; i++ {
			i := i
			at := sim.Time(i) * s.Float64() * 3
			cl := r.mw.Clusters()[i%2]
			dev := r.devices[i%2]
			r.e.At(at, func() {
				r.mw.SubmitEdge(cl, dev, edgeReqOf(0.01+s.Float64()*0.2, 0.5))
			})
		}
		r.e.Run(6 * sim.Hour)
		total := r.mw.Edge.Served.Value() + r.mw.Edge.Rejected.Value()
		if total != n {
			t.Logf("policy %s: served %d + rejected %d != %d",
				cfg.Offload.Name(), r.mw.Edge.Served.Value(), r.mw.Edge.Rejected.Value(), n)
			return false
		}
		// Queues must be empty after the drain.
		for _, c := range r.mw.Clusters() {
			if c.EdgeQueueLen() != 0 {
				t.Logf("policy %s: %d requests stuck in edge queue", cfg.Offload.Name(), c.EdgeQueueLen())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestEdgeConservationUnderFailures extends conservation to machine
// failures: requests lost to a dying worker surface as rejections, never
// as silence.
func TestEdgeConservationUnderFailures(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(t, cfg, 1, 2)
	c := r.mw.Clusters()[0]
	const n = 40
	for i := 0; i < n; i++ {
		i := i
		r.e.At(sim.Time(i)*0.2, func() {
			r.mw.SubmitEdge(c, r.devices[0], edgeReqOf(1.0, 10)) // long tasks
		})
	}
	// Fail worker 0 mid-stream, restore later.
	r.e.At(2, func() { c.FailWorker(c.Workers()[0]) })
	r.e.At(30, func() { c.RestoreWorker(c.Workers()[0]) })
	r.e.Run(sim.Hour)
	total := r.mw.Edge.Served.Value() + r.mw.Edge.Rejected.Value()
	if total != n {
		t.Errorf("served %d + rejected %d != %d under failures",
			r.mw.Edge.Served.Value(), r.mw.Edge.Rejected.Value(), n)
	}
}
