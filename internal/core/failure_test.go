package core

import (
	"testing"

	"df3/internal/offload"
	"df3/internal/sched"
	"df3/internal/server"
	"df3/internal/sim"
	"df3/internal/workload"
)

func TestFailWorkerRequeuesDCC(t *testing.T) {
	r := newRig(t, DefaultConfig(), 1, 2)
	c := r.mw.Clusters()[0]
	works := make([]float64, 20)
	for i := range works {
		works[i] = 600
	}
	r.mw.SubmitDCC(c, r.op, workload.BatchJob{ID: 1, TaskWork: works, Input: 1e6, Output: 1e6})
	r.e.Run(60)
	w0 := c.Workers()[0]
	before := w0.M.AssignedTasks()
	if before == 0 {
		t.Fatal("worker 0 idle before failure")
	}
	c.FailWorker(w0)
	if !w0.M.Offline() {
		t.Fatal("worker not offline after FailWorker")
	}
	if w0.M.AssignedTasks() != 0 {
		t.Error("failed worker still holds tasks")
	}
	// The whole job must still finish on the surviving worker.
	r.e.Run(3 * sim.Hour)
	if r.mw.DCC.TasksDone.Value() != 20 {
		t.Errorf("tasks done = %d, want 20 despite failure", r.mw.DCC.TasksDone.Value())
	}
}

func TestFailWorkerDropsEdgeTasks(t *testing.T) {
	r := newRig(t, DefaultConfig(), 1, 1)
	c := r.mw.Clusters()[0]
	w := c.Workers()[0]
	// Edge-class tasks run directly on the worker.
	for i := 0; i < 3; i++ {
		w.M.Start(&server.Task{Work: 1e6, Class: classEdge})
	}
	c.FailWorker(w)
	if got := r.mw.Edge.Rejected.Value(); got != 3 {
		t.Errorf("rejected = %d, want 3 lost edge tasks", got)
	}
	if c.DCCQueueLen() != 0 {
		t.Error("edge tasks leaked into the DCC queue")
	}
}

func TestRestoreWorkerResumesService(t *testing.T) {
	r := newRig(t, DefaultConfig(), 1, 1)
	c := r.mw.Clusters()[0]
	w := c.Workers()[0]
	c.FailWorker(w)
	done := false
	tk := &server.Task{Work: 10, Class: classDCC, OnDone: func(sim.Time) { done = true }}
	c.dccQ.Push(&sched.Item{Task: tk, Enqueued: r.e.Now()})
	c.dispatch()
	r.e.Run(100)
	if done {
		t.Fatal("task ran on a failed worker")
	}
	c.RestoreWorker(w)
	r.e.Run(200)
	if !done {
		t.Error("task did not run after restore")
	}
}

func TestCoopDebtAccounting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Offload = horizontalOnly{}
	r := newRig(t, cfg, 2, 1)
	c0, c1 := r.mw.Clusters()[0], r.mw.Clusters()[1]
	// Fill c0 so everything forwards to c1.
	for i := 0; i < 16; i++ {
		c0.Workers()[0].M.Start(&server.Task{Work: 1e6, Class: classEdge})
	}
	for i := 0; i < 5; i++ {
		i := i
		r.e.At(sim.Time(i), func() {
			r.mw.SubmitEdge(c0, r.devices[0], edgeReqOf(0.05, 5))
		})
	}
	r.e.Run(60)
	if c0.ForwardedOut() != 5 || c1.ForwardedIn() != 5 {
		t.Errorf("forward counts: out=%d in=%d", c0.ForwardedOut(), c1.ForwardedIn())
	}
	if c1.CoopDebt() != 5 || c0.CoopDebt() != -5 {
		t.Errorf("debts: c0=%d c1=%d", c0.CoopDebt(), c1.CoopDebt())
	}
}

func TestCoopDebtLimitRefuses(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Offload = horizontalOnly{}
	cfg.CoopDebtLimit = 3
	r := newRig(t, cfg, 2, 1)
	c0, c1 := r.mw.Clusters()[0], r.mw.Clusters()[1]
	for i := 0; i < 16; i++ {
		c0.Workers()[0].M.Start(&server.Task{Work: 1e6, Class: classEdge})
	}
	for i := 0; i < 10; i++ {
		i := i
		r.e.At(sim.Time(i), func() {
			r.mw.SubmitEdge(c0, r.devices[0], edgeReqOf(0.05, 5))
		})
	}
	r.e.Run(60)
	if c1.ForwardedIn() != 3 {
		t.Errorf("neighbour accepted %d, want exactly the debt limit 3", c1.ForwardedIn())
	}
	// The rest queued at home rather than overloading the neighbour.
	if got := r.mw.Edge.Horizontal.Value(); got != 3 {
		t.Errorf("horizontal offloads = %d, want 3", got)
	}
}

// horizontalOnly always forwards when the local cluster is full, without
// the neighbour-free-slot precondition of the production policy, so the
// fairness mechanics can be observed in isolation.
type horizontalOnly struct{}

func (horizontalOnly) Name() string { return "horizontal-only" }

func (horizontalOnly) Decide(ctx offload.Context) offload.Action {
	if ctx.FreeSlots > 0 {
		return offload.Run
	}
	if !ctx.Forwarded {
		return offload.Horizontal
	}
	return offload.Queue
}
