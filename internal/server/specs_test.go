package server

import (
	"testing"

	"df3/internal/sim"
)

func TestSpecsBuild(t *testing.T) {
	e := sim.New()
	specs := map[string]Spec{
		"qrad":    QradSpec(),
		"erad":    ERadiatorSpec(),
		"crypto":  CryptoHeaterSpec(),
		"boiler":  BoilerSpec(),
		"sboiler": SmallBoilerSpec(),
		"dcnode":  DatacenterNodeSpec(),
		"pc":      DesktopPCSpec(),
	}
	//df3:unordered-ok each spec is asserted on its own machine; build order does not change any assertion
	for name, s := range specs {
		m := s.Build(e, name)
		if m.Cores != s.Cores {
			t.Errorf("%s cores = %d", name, m.Cores)
		}
		if m.Capacity() != float64(s.Cores) {
			t.Errorf("%s fresh capacity = %v, want %v", name, m.Capacity(), s.Cores)
		}
	}
}

func TestSpecWallDraws(t *testing.T) {
	// The paper quotes wall draws: Q.rad 500 W, e-radiator 1000 W,
	// crypto-heater 650 W, Asperitas boiler 20 kW.
	cases := []struct {
		spec Spec
		want float64
	}{
		{QradSpec(), 500},
		{ERadiatorSpec(), 1000},
		{CryptoHeaterSpec(), 650},
		{BoilerSpec(), 20000},
		{SmallBoilerSpec(), 4000},
	}
	for i, c := range cases {
		if got := float64(c.spec.Model.MaxDraw()); got != c.want {
			t.Errorf("case %d: max draw = %v, want %v", i, got, c.want)
		}
	}
}

func TestDFServersDeliverHeatDCDoesNot(t *testing.T) {
	if QradSpec().Model.HeatFraction < 0.9 {
		t.Error("Q.rad should deliver nearly all power as heat")
	}
	if DatacenterNodeSpec().Model.HeatFraction != 0 {
		t.Error("datacenter node must not deliver useful heat")
	}
	if DatacenterNodeSpec().Model.CoolingOverhead <= 0 {
		t.Error("datacenter node must pay cooling overhead")
	}
	if QradSpec().Model.CoolingOverhead > 0.05 {
		t.Error("Q.rad facility overhead should be marginal (free cooling)")
	}
}

func TestFleetAggregation(t *testing.T) {
	e := sim.New()
	var f Fleet
	a, b := QradSpec().Build(e, "a"), QradSpec().Build(e, "b")
	f.Add(a, b)
	if f.MaxCapacity() != 32 {
		t.Errorf("fleet max capacity = %v", f.MaxCapacity())
	}
	if f.FreeSlots() != 32 {
		t.Errorf("fleet free slots = %d", f.FreeSlots())
	}
	a.SetBudget(0)
	if f.Capacity() != 16 {
		t.Errorf("fleet capacity after powering one off = %v", f.Capacity())
	}
	b.Start(&Task{Work: 1e6})
	e.Run(100)
	it, fac, heat := f.Energy(e.Now())
	if it <= 0 || fac < it || heat <= 0 {
		t.Errorf("fleet energy it=%v fac=%v heat=%v", it, fac, heat)
	}
	if pue := f.PUE(e.Now()); pue < 1 || pue > 1.04 {
		t.Errorf("DF fleet PUE = %v, want ~1.02", pue)
	}
}
