package server

import (
	"testing"

	"df3/internal/sim"
	"df3/internal/units"
)

func BenchmarkStartFinish(b *testing.B) {
	e := sim.New()
	m := QradSpec().Build(e, "m")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Start(&Task{Work: 0.001})
		e.Run(e.Now() + 0.01)
	}
}

func BenchmarkSetBudgetLoaded(b *testing.B) {
	// Budget changes reschedule every running task: the regulator's cost.
	e := sim.New()
	m := QradSpec().Build(e, "m")
	for i := 0; i < m.Cores; i++ {
		m.Start(&Task{Work: 1e12})
	}
	budgets := []float64{500, 250, 120, 380}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SetBudget(units.Watt(budgets[i%len(budgets)]))
	}
}

func BenchmarkPreemptResubmit(b *testing.B) {
	e := sim.New()
	m := QradSpec().Build(e, "m")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := &Task{Work: 1e9}
		m.Start(t)
		m.Preempt(t)
	}
}
