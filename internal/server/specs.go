package server

import (
	"df3/internal/power"
	"df3/internal/sim"
	"df3/internal/units"
)

// Spec bundles the parameters of a server class.
type Spec struct {
	Cores int
	Model power.Model
}

// QradSpec is the Qarnot digital heater of §II-B1: 3–4 CPUs (we model
// 4 CPUs × 4 cores = 16 cores), 500 W wall draw, free cooling — virtually
// all power becomes room heat.
func QradSpec() Spec {
	return Spec{
		Cores: 16,
		Model: power.Model{
			IdleW:        30,
			DynamicW:     470,
			Levels:       power.DefaultLevels(),
			HeatFraction: 0.95,
			// No cooling, but the operator's network and power gear add
			// a little facility overhead — CloudandHeat quotes PUE 1.026
			// for this class of deployment (§II-A).
			CoolingOverhead: 0.02,
		},
	}
}

// ERadiatorSpec is the Nerdalize e-radiator: 1000 W, dual heat pipeline
// (heat can be expelled outside in summer, §II-B1).
func ERadiatorSpec() Spec {
	return Spec{
		Cores: 32,
		Model: power.Model{
			IdleW:           50,
			DynamicW:        950,
			Levels:          power.DefaultLevels(),
			HeatFraction:    0.95,
			CoolingOverhead: 0.02,
		},
	}
}

// CryptoHeaterSpec is the Qarnot crypto-heater QC1: 650 W, 2 GPUs (§II-B1).
// We model each GPU as 8 task slots.
func CryptoHeaterSpec() Spec {
	return Spec{
		Cores: 16,
		Model: power.Model{
			IdleW:           40,
			DynamicW:        610,
			Levels:          power.DefaultLevels(),
			HeatFraction:    0.95,
			CoolingOverhead: 0.02,
		},
	}
}

// BoilerSpec is the Asperitas AIC24 digital boiler of §II-B2: 200 CPUs,
// 20 kW, immersion-cooled into a water loop.
func BoilerSpec() Spec {
	return Spec{
		Cores: 200,
		Model: power.Model{
			IdleW:           1500,
			DynamicW:        18500,
			Levels:          power.DefaultLevels(),
			HeatFraction:    0.97, // immersion transfers almost everything
			CoolingOverhead: 0.03, // circulation pumps
		},
	}
}

// SmallBoilerSpec is a Stimergy-class 1–4 kW oil-immersed boiler (§II-B2).
func SmallBoilerSpec() Spec {
	return Spec{
		Cores: 32,
		Model: power.Model{
			IdleW:           300,
			DynamicW:        3700,
			Levels:          power.DefaultLevels(),
			HeatFraction:    0.97,
			CoolingOverhead: 0.03,
		},
	}
}

// DatacenterNodeSpec is a classical air-cooled datacenter server: its heat
// is rejected by chillers, so every compute watt costs ~0.5 W of facility
// overhead (PUE ≈ 1.5, typical of conventional rooms; the paper contrasts
// this with CloudandHeat's 1.026).
func DatacenterNodeSpec() Spec {
	return Spec{
		Cores: 32,
		Model: power.Model{
			IdleW:           120,
			DynamicW:        380,
			Levels:          power.DefaultLevels(),
			HeatFraction:    0,
			CoolingOverhead: 0.5,
		},
	}
}

// DesktopPCSpec is a volunteer desktop PC for the desktop-grid baseline
// (§I, §V): 4 cores, 150 W, its heat is a nuisance rather than a service.
func DesktopPCSpec() Spec {
	return Spec{
		Cores: 4,
		Model: power.Model{
			IdleW:           40,
			DynamicW:        110,
			Levels:          power.DefaultLevels(),
			HeatFraction:    0, // heat is unwanted, not delivered on demand
			CoolingOverhead: 0,
		},
	}
}

// Build constructs a machine from the spec.
func (s Spec) Build(e *sim.Engine, name string) *Machine {
	return New(e, name, s.Cores, s.Model)
}

// Fleet aggregates machines for energy and capacity reporting.
type Fleet struct {
	Machines []*Machine
}

// Add appends machines to the fleet.
func (f *Fleet) Add(ms ...*Machine) { f.Machines = append(f.Machines, ms...) }

// Capacity returns the fleet's current compute capacity in core-equivalents.
func (f *Fleet) Capacity() float64 {
	c := 0.0
	for _, m := range f.Machines {
		c += m.Capacity()
	}
	return c
}

// MaxCapacity returns the fleet capacity at full budget.
func (f *Fleet) MaxCapacity() float64 {
	c := 0.0
	for _, m := range f.Machines {
		c += m.MaxCapacity()
	}
	return c
}

// FreeSlots sums free slots across the fleet.
func (f *Fleet) FreeSlots() int {
	n := 0
	for _, m := range f.Machines {
		n += m.FreeSlots()
	}
	return n
}

// Energy flushes every meter at now and returns summed IT energy, facility
// energy and useful heat.
func (f *Fleet) Energy(now sim.Time) (it, fac, heat units.Joule) {
	for _, m := range f.Machines {
		m.Meter().Flush(now)
		it += m.Meter().ITEnergy()
		fac += m.Meter().FacilityEnergy()
		heat += m.Meter().UsefulHeat()
	}
	return it, fac, heat
}

// PUE returns the fleet-level PUE at now.
func (f *Fleet) PUE(now sim.Time) float64 {
	it, fac, _ := f.Energy(now)
	if it == 0 {
		return 0
	}
	return float64(fac) / float64(it)
}
