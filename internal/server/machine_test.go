package server

import (
	"math"
	"testing"
	"testing/quick"

	"df3/internal/rng"
	"df3/internal/sim"
	"df3/internal/units"
)

func newQrad(e *sim.Engine) *Machine { return QradSpec().Build(e, "qrad-0") }

func TestTaskRunsToCompletion(t *testing.T) {
	e := sim.New()
	m := newQrad(e)
	var doneAt sim.Time = -1
	task := &Task{ID: 1, Work: 100, OnDone: func(at sim.Time) { doneAt = at }}
	if !m.Start(task) {
		t.Fatal("start rejected on empty machine")
	}
	e.Run(1000)
	if doneAt != 100 { // full speed: 100 core-seconds takes 100 s
		t.Errorf("task finished at %v, want 100", doneAt)
	}
	if m.AssignedTasks() != 0 {
		t.Error("finished task still assigned")
	}
}

func TestParallelTasks(t *testing.T) {
	e := sim.New()
	m := newQrad(e)
	done := 0
	for i := 0; i < 16; i++ {
		if !m.Start(&Task{Work: 50, OnDone: func(sim.Time) { done++ }}) {
			t.Fatalf("slot %d rejected", i)
		}
	}
	if m.FreeSlots() != 0 {
		t.Errorf("free slots = %d after filling", m.FreeSlots())
	}
	if m.Start(&Task{Work: 1}) {
		t.Error("17th task accepted on 16-core machine")
	}
	e.Run(51)
	if done != 16 {
		t.Errorf("%d tasks done, want 16", done)
	}
}

func TestBudgetSlowsTasks(t *testing.T) {
	e := sim.New()
	m := newQrad(e)
	var doneAt sim.Time
	m.Start(&Task{Work: 100, OnDone: func(at sim.Time) { doneAt = at }})
	// Cut the budget so the DVFS level drops below full speed.
	m.SetBudget(200)
	if m.Speed() >= 1 {
		t.Fatalf("speed %v at 200 W budget, want < 1", m.Speed())
	}
	e.Run(10000)
	want := 100 / m.Speed()
	if math.Abs(doneAt-want) > 1e-6 {
		t.Errorf("task finished at %v, want %v", doneAt, want)
	}
}

func TestMidFlightBudgetChange(t *testing.T) {
	e := sim.New()
	m := newQrad(e)
	var doneAt sim.Time
	m.Start(&Task{Work: 100, OnDone: func(at sim.Time) { doneAt = at }})
	// Run 50 s at full speed, then drop to half-capable budget.
	e.Run(50)
	m.SetBudget(200)
	speed := m.Speed()
	e.Run(10000)
	want := 50 + 50/speed
	if math.Abs(doneAt-want) > 1e-6 {
		t.Errorf("task finished at %v, want %v (speed %v)", doneAt, want, speed)
	}
}

func TestZeroBudgetSuspends(t *testing.T) {
	e := sim.New()
	m := newQrad(e)
	done := false
	m.Start(&Task{Work: 10, OnDone: func(sim.Time) { done = true }})
	m.SetBudget(0)
	if m.ActiveCores() != 0 || m.Speed() != 0 {
		t.Errorf("active=%d speed=%v at zero budget", m.ActiveCores(), m.Speed())
	}
	e.Run(1000)
	if done {
		t.Error("task completed while machine was powered off")
	}
	// Restore power: the task resumes and finishes.
	m.SetBudget(500)
	e.Run(2000)
	if !done {
		t.Error("task did not resume after power restored")
	}
}

func TestBudgetBelowIdlePowersOff(t *testing.T) {
	e := sim.New()
	m := newQrad(e)
	m.SetBudget(10) // below IdleW=30
	if m.ActiveCores() != 0 {
		t.Errorf("active cores = %d below idle budget", m.ActiveCores())
	}
	if m.Draw() != 0 {
		t.Errorf("draw = %v when powered off", m.Draw())
	}
}

func TestPartialBudgetGatesCores(t *testing.T) {
	e := sim.New()
	m := newQrad(e)
	m.Policy = MaxSpeed
	m.SetBudget(150) // idle 30 + 120 dynamic; full speed costs 470/16≈29.4/core
	if m.ActiveCores() == 0 || m.ActiveCores() == m.Cores {
		t.Errorf("active cores = %d, want partial gating", m.ActiveCores())
	}
	if m.Speed() != 1 {
		t.Errorf("MaxSpeed policy picked speed %v", m.Speed())
	}
}

func TestPolicyThroughputVsSpeed(t *testing.T) {
	e := sim.New()
	mt := newQrad(e)
	mt.Policy = MaxThroughput
	mt.SetBudget(150)
	ms := newQrad(e)
	ms.Policy = MaxSpeed
	ms.SetBudget(150)
	if mt.Capacity() < ms.Capacity() {
		t.Errorf("throughput policy capacity %v < speed policy %v", mt.Capacity(), ms.Capacity())
	}
	if ms.Speed() < mt.Speed() {
		t.Errorf("speed policy speed %v < throughput policy %v", ms.Speed(), mt.Speed())
	}
}

func TestSuspensionKeepsOldestRunning(t *testing.T) {
	e := sim.New()
	m := newQrad(e)
	first := &Task{Work: 1000}
	m.Start(first)
	for i := 0; i < 15; i++ {
		m.Start(&Task{Work: 1000})
	}
	// Gate down to a handful of cores: the oldest tasks keep running.
	m.SetBudget(150)
	if !first.Running() {
		t.Error("oldest task was suspended before younger ones")
	}
	running := m.RunningTasks()
	if running != m.ActiveCores() {
		t.Errorf("running=%d active=%d", running, m.ActiveCores())
	}
}

func TestPreemptReturnsRemaining(t *testing.T) {
	e := sim.New()
	m := newQrad(e)
	task := &Task{Work: 100}
	m.Start(task)
	e.Run(30)
	rem := m.Preempt(task)
	if math.Abs(rem-70) > 1e-9 {
		t.Errorf("remaining = %v, want 70", rem)
	}
	if task.Assigned() {
		t.Error("preempted task still assigned")
	}
	if task.Work != rem {
		t.Errorf("task.Work = %v, want %v for resubmission", task.Work, rem)
	}
	// Resubmit elsewhere: it should take exactly the remaining time.
	m2 := newQrad(e)
	var doneAt sim.Time
	task.OnDone = func(at sim.Time) { doneAt = at }
	m2.Start(task)
	e.Run(1000)
	if math.Abs(doneAt-100) > 1e-9 { // 30 elapsed + 70 remaining
		t.Errorf("resumed task finished at %v, want 100", doneAt)
	}
}

func TestVictimPicksYoungest(t *testing.T) {
	e := sim.New()
	m := newQrad(e)
	const dcc = 2
	a := &Task{Work: 100, Class: dcc}
	b := &Task{Work: 100, Class: dcc}
	edge := &Task{Work: 100, Class: 1}
	m.Start(a)
	m.Start(b)
	m.Start(edge)
	if v := m.Victim(dcc); v != b {
		t.Error("victim is not the youngest DCC task")
	}
	if v := m.Victim(7); v != nil {
		t.Error("victim for absent class should be nil")
	}
}

func TestOnCapacityFires(t *testing.T) {
	e := sim.New()
	m := newQrad(e)
	fired := 0
	m.OnCapacity(func() { fired++ })
	m.Start(&Task{Work: 10})
	e.Run(20)
	if fired == 0 {
		t.Error("capacity callback did not fire on task completion")
	}
	before := fired
	m.SetBudget(0)
	m.SetBudget(500) // growth must notify
	if fired <= before {
		t.Error("capacity callback did not fire on budget growth")
	}
}

func TestDrawAndHeatTrackLoad(t *testing.T) {
	e := sim.New()
	m := newQrad(e)
	idle := m.Draw()
	m.Start(&Task{Work: 1e9})
	oneTask := m.Draw()
	if oneTask <= idle {
		t.Errorf("draw did not rise with load: %v -> %v", idle, oneTask)
	}
	heat := m.HeatOutput()
	if math.Abs(float64(heat)-float64(oneTask)*0.95) > 1e-9 {
		t.Errorf("heat %v not 95%% of draw %v", heat, oneTask)
	}
}

func TestEnergyMeterIntegratesLoad(t *testing.T) {
	e := sim.New()
	m := newQrad(e)
	m.Start(&Task{Work: 100})
	e.Run(100)
	m.FlushMeter()
	it := m.Meter().ITEnergy()
	if it <= 0 {
		t.Fatal("no energy recorded")
	}
	// One core of 16 at full level for 100 s: 30 + 470/16 ≈ 59.4 W.
	want := (30 + 470.0/16) * 100
	if math.Abs(float64(it)-want) > 1 {
		t.Errorf("IT energy = %v, want ~%v J", float64(it), want)
	}
}

func TestDoubleStartPanics(t *testing.T) {
	e := sim.New()
	m := newQrad(e)
	task := &Task{Work: 10}
	m.Start(task)
	defer func() {
		if recover() == nil {
			t.Error("double Start did not panic")
		}
	}()
	m.Start(task)
}

func TestPreemptForeignTaskPanics(t *testing.T) {
	e := sim.New()
	m1, m2 := newQrad(e), newQrad(e)
	task := &Task{Work: 10}
	m1.Start(task)
	defer func() {
		if recover() == nil {
			t.Error("foreign preempt did not panic")
		}
	}()
	m2.Preempt(task)
}

// Property: work is conserved — under random budget changes and preempts,
// every task's total progress time × speed equals its original work when it
// completes.
func TestWorkConservationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		s := rng.New(seed)
		e := sim.New()
		m := newQrad(e)
		done, accepted := 0, 0
		for i := 0; i < 20; i++ {
			if m.Start(&Task{Work: 10 + s.Float64()*50, OnDone: func(sim.Time) { done++ }}) {
				accepted++
			}
		}
		for step := 0; step < 40; step++ {
			e.Run(e.Now() + s.Float64()*20)
			m.SetBudget(units.Watt(s.Float64() * 600))
		}
		m.SetBudget(500)
		e.Run(e.Now() + 1e5)
		return done == accepted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: the machine's electrical draw never exceeds its budget
// whenever the budget covers at least the idle floor — the guarantee the
// heat regulator relies on ("the energy consumed corresponds to the heat
// demand", §III-B). Below the idle floor the machine is off and draws 0.
func TestDrawNeverExceedsBudgetProperty(t *testing.T) {
	f := func(seed uint64) bool {
		s := rng.New(seed)
		e := sim.New()
		m := newQrad(e)
		if s.Bool(0.5) {
			m.Policy = MaxSpeed
		}
		for i := 0; i < 10+s.Intn(10); i++ {
			m.Start(&Task{Work: 1 + s.Float64()*500})
		}
		for step := 0; step < 60; step++ {
			budget := units.Watt(s.Float64() * 600)
			m.SetBudget(budget)
			e.Run(e.Now() + s.Float64()*30)
			draw := float64(m.Draw())
			if draw == 0 {
				continue
			}
			if draw > float64(budget)+1e-9 {
				t.Logf("draw %v exceeds budget %v (policy %v)", draw, budget, m.Policy)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEvacuateBanksProgress(t *testing.T) {
	e := sim.New()
	m := newQrad(e)
	a := &Task{Work: 100}
	b := &Task{Work: 200}
	m.Start(a)
	m.Start(b)
	e.Run(40)
	out := m.Evacuate()
	if len(out) != 2 {
		t.Fatalf("evacuated %d tasks", len(out))
	}
	if math.Abs(out[0].Work-60) > 1e-9 || math.Abs(out[1].Work-160) > 1e-9 {
		t.Errorf("banked work = %v, %v; want 60, 160", out[0].Work, out[1].Work)
	}
	if m.AssignedTasks() != 0 {
		t.Error("machine still holds tasks after evacuation")
	}
}

func TestOfflineMachineRefusesWork(t *testing.T) {
	e := sim.New()
	m := newQrad(e)
	m.SetOffline(true)
	if m.Start(&Task{Work: 1}) {
		t.Error("offline machine accepted a task")
	}
	if m.Capacity() != 0 || m.Draw() != 0 {
		t.Errorf("offline capacity=%v draw=%v", m.Capacity(), m.Draw())
	}
	m.SetOffline(false)
	if !m.Start(&Task{Work: 1}) {
		t.Error("restored machine refused work")
	}
}
