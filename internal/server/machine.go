// Package server models df3 compute machines: digital heaters, digital
// boilers, crypto-heaters, datacenter nodes and desktop PCs.
//
// A Machine owns a set of cores sharing one DVFS operating point. Tasks are
// single-core units of work measured in core-seconds at full speed (the
// workload layer decomposes multi-core jobs into tasks). The machine's
// power budget — set by the heat regulator for DF servers, pinned to max
// for datacenter nodes — determines the DVFS level and how many cores may
// run, which is exactly the paper's coupling between heat demand and
// available compute (§III-B, §III-C).
//
// Budget semantics are conservative: the (level, active cores) pair is
// chosen so that even fully loaded the machine cannot exceed its budget,
// guaranteeing the heat delivered never overshoots what the host asked for.
package server

import (
	"fmt"

	"df3/internal/power"
	"df3/internal/sim"
	"df3/internal/trace"
	"df3/internal/units"
)

// Task is a single-core unit of work.
type Task struct {
	// ID identifies the task for tracing.
	ID uint64
	// Work is the total work in core-seconds at full speed.
	Work float64
	// OnDone is invoked when the task completes.
	OnDone func(at sim.Time)
	// Class is an opaque tag the middleware uses (edge vs DCC).
	Class int
	// Ctx is an opaque back-pointer the middleware uses to find the
	// request a task belongs to when the task is evacuated off a failed
	// machine.
	Ctx any

	remaining float64
	rate      float64 // current progress rate (0 when suspended)
	lastT     sim.Time
	machine   *Machine
	doneEv    *sim.Event
	started   sim.Time
	seq       uint64 // admission order on the machine, for deterministic rebalance
}

// Remaining returns the work left, as of the machine's last state change.
func (t *Task) Remaining() float64 { return t.remaining }

// Running reports whether the task is currently progressing.
func (t *Task) Running() bool { return t.machine != nil && t.rate > 0 }

// Assigned reports whether the task occupies a slot on some machine
// (running or suspended).
func (t *Task) Assigned() bool { return t.machine != nil }

// BudgetPolicy selects how a machine converts a watt budget into a DVFS
// operating point.
type BudgetPolicy int

const (
	// MaxThroughput maximises Σ core speeds within the budget: many slow
	// cores. Best for DCC batch throughput (the cubic DVFS law makes low
	// frequencies more efficient per watt).
	MaxThroughput BudgetPolicy = iota
	// MaxSpeed maximises the per-core speed within the budget: few fast
	// cores. Best for latency-sensitive edge requests.
	MaxSpeed
)

func (p BudgetPolicy) String() string {
	if p == MaxSpeed {
		return "max-speed"
	}
	return "max-throughput"
}

// Machine is one compute server.
type Machine struct {
	Name  string
	Cores int
	Model power.Model
	// Policy selects the budget→DVFS mapping.
	Policy BudgetPolicy
	// FloorW is a lower bound applied to every budget: the always-on
	// service allowance (Q.rads keep an embedded board serving local
	// requests even when no heat is demanded). Zero means the machine may
	// power off completely.
	FloorW units.Watt

	// Tracer, when set, records the machine's offline and derate windows
	// as spans (trace id TraceTag), so Perfetto shows when and for how long
	// a worker was failed or thermally throttled below full capacity.
	Tracer *trace.Recorder
	// TraceTag correlates this machine's window spans in the trace.
	TraceTag uint64

	engine  *sim.Engine
	budget  units.Watt
	level   power.Level
	active  int // cores allowed to run under the current budget
	offline bool
	tasks   []*Task
	meter   power.Meter
	nextSq  uint64
	offSpan trace.SpanID
	derSpan trace.SpanID

	// onCapacity is invoked whenever a slot may have freed (task finished
	// or budget rose). The scheduler hooks this to dispatch queued work.
	onCapacity func()
}

// New constructs a machine with the model's full budget applied.
func New(e *sim.Engine, name string, cores int, model power.Model) *Machine {
	if err := model.Levels.Validate(); err != nil {
		panic(fmt.Sprintf("server: machine %s: %v", name, err))
	}
	if cores <= 0 {
		panic("server: machine needs at least one core")
	}
	m := &Machine{Name: name, Cores: cores, Model: model, engine: e}
	m.SetBudget(model.MaxDraw())
	return m
}

// OnCapacity registers the capacity callback (at most one; the scheduler).
func (m *Machine) OnCapacity(fn func()) { m.onCapacity = fn }

// Budget returns the current power budget.
func (m *Machine) Budget() units.Watt { return m.budget }

// Level returns the current DVFS level.
func (m *Machine) Level() power.Level { return m.level }

// ActiveCores returns how many cores may run under the current budget.
func (m *Machine) ActiveCores() int { return m.active }

// RunningTasks returns the number of tasks currently progressing.
func (m *Machine) RunningTasks() int {
	n := 0
	for _, t := range m.tasks {
		if t.rate > 0 {
			n++
		}
	}
	return n
}

// AssignedTasks returns the number of tasks holding slots.
func (m *Machine) AssignedTasks() int { return len(m.tasks) }

// FreeSlots returns how many new tasks could start progressing right now.
func (m *Machine) FreeSlots() int {
	free := m.active - len(m.tasks)
	if free < 0 {
		return 0
	}
	return free
}

// Speed returns the current per-core speed factor (0 when powered off).
func (m *Machine) Speed() float64 {
	if m.active == 0 {
		return 0
	}
	return m.level.Speed
}

// Capacity returns the machine's current aggregate compute capacity in
// core-equivalents (active cores × speed).
func (m *Machine) Capacity() float64 { return float64(m.active) * m.level.Speed }

// MaxCapacity returns capacity at full budget.
func (m *Machine) MaxCapacity() float64 { return float64(m.Cores) }

// choose converts a budget into (level, active cores) under the policy.
func (m *Machine) choose(budget units.Watt) (power.Level, int) {
	if m.offline || float64(budget) < float64(m.Model.IdleW) {
		return m.Model.Levels.Bottom(), 0
	}
	dynBudget := float64(budget) - float64(m.Model.IdleW)
	bestLevel, bestActive := m.Model.Levels.Bottom(), 0
	bestScore := -1.0
	for _, l := range m.Model.Levels {
		perCore := float64(m.Model.DynamicW) * l.PowerFrac / float64(m.Cores)
		var active int
		if perCore <= 0 {
			active = m.Cores
		} else {
			active = int(dynBudget / perCore)
		}
		if active > m.Cores {
			active = m.Cores
		}
		if active == 0 {
			continue
		}
		var score float64
		switch m.Policy {
		case MaxSpeed:
			// Prefer the fastest level that can power at least one core;
			// among equal speeds, more cores.
			score = l.Speed*1e6 + float64(active)
		default: // MaxThroughput
			score = float64(active)*l.Speed*1e6 + l.Speed
		}
		if score > bestScore {
			bestScore, bestLevel, bestActive = score, l, active
		}
	}
	return bestLevel, bestActive
}

// SetBudget applies a new power budget, rescaling or suspending running
// tasks as needed.
func (m *Machine) SetBudget(w units.Watt) {
	if w < m.FloorW {
		w = m.FloorW
	}
	if w < 0 {
		w = 0
	}
	level, active := m.choose(w)
	grew := active > m.active || (active == m.active && level.Speed > m.level.Speed)
	m.budget = w
	m.level, m.active = level, active
	if m.Tracer != nil {
		m.traceWindows()
	}
	m.rebalance()
	if grew && m.onCapacity != nil {
		m.onCapacity()
	}
}

// traceWindows opens/closes the machine's derate window span: open while
// the budget holds capacity below the machine's maximum (and the machine is
// up), closed when full capacity returns. Offline windows are traced in
// SetOffline; while offline no derate span runs.
func (m *Machine) traceWindows() {
	now := m.engine.Now()
	derated := !m.offline && m.Capacity() < m.MaxCapacity()
	if derated && m.derSpan == 0 {
		m.derSpan = m.Tracer.BeginSpan(now, "derate", m.TraceTag, 0)
	} else if !derated && m.derSpan != 0 {
		m.Tracer.EndSpanDetail(now, m.derSpan, m.Name)
		m.derSpan = 0
	}
}

// rebalance re-derives every task's progress rate after a state change:
// the oldest `active` tasks run at the level speed, the rest suspend.
// Completion events are re-keyed in place (Engine.Reset) rather than
// cancelled and re-pushed: under an unchanged rate the re-derived time
// moves by at most rounding noise, so the heap fix-up is near-free, and
// no Event or closure is allocated for a task that already has one.
func (m *Machine) rebalance() {
	now := m.engine.Now()
	for i, t := range m.tasks {
		// Bank progress at the old rate.
		if t.rate > 0 {
			t.remaining -= (now - t.lastT) * t.rate
			if t.remaining < 0 {
				t.remaining = 0
			}
		}
		t.lastT = now
		newRate := 0.0
		if i < m.active {
			newRate = m.level.Speed
		}
		t.rate = newRate
		if newRate > 0 {
			at := now + t.remaining/newRate
			if t.doneEv != nil {
				m.engine.Reset(t.doneEv, at)
			} else {
				t.doneEv = m.engine.At(at, func() { m.finish(t) })
			}
		} else if t.doneEv != nil {
			m.engine.Cancel(t.doneEv)
			t.doneEv = nil
		}
	}
	m.updateMeter()
}

// Start places the task on a free slot. It returns false when no slot can
// progress right now (the caller queues instead).
func (m *Machine) Start(t *Task) bool {
	if t.machine != nil {
		panic("server: task already assigned")
	}
	if m.FreeSlots() == 0 {
		return false
	}
	t.machine = m
	t.remaining = t.Work
	t.started = m.engine.Now()
	t.seq = m.nextSq
	m.nextSq++
	m.tasks = append(m.tasks, t)
	m.rebalance()
	return true
}

// finish completes a task: releases its slot and fires OnDone.
func (m *Machine) finish(t *Task) {
	t.remaining = 0
	t.rate = 0
	t.doneEv = nil
	m.remove(t)
	m.rebalance()
	if t.OnDone != nil {
		t.OnDone(m.engine.Now())
	}
	if m.onCapacity != nil {
		m.onCapacity()
	}
}

// Preempt removes the task from the machine, banking its progress. The
// caller gets the task back with Work set to the remaining core-seconds so
// it can be resubmitted elsewhere (§III-B preemption / offloading).
func (m *Machine) Preempt(t *Task) float64 {
	if t.machine != m {
		panic("server: preempting task not on this machine")
	}
	now := m.engine.Now()
	if t.rate > 0 {
		t.remaining -= (now - t.lastT) * t.rate
		if t.remaining < 0 {
			t.remaining = 0
		}
	}
	m.engine.Cancel(t.doneEv)
	t.doneEv = nil
	m.remove(t)
	t.Work = t.remaining
	t.rate = 0
	m.rebalance()
	if m.onCapacity != nil {
		m.onCapacity()
	}
	return t.remaining
}

// remove unlinks the task from the machine's slot list.
func (m *Machine) remove(t *Task) {
	for i, u := range m.tasks {
		if u == t {
			m.tasks = append(m.tasks[:i], m.tasks[i+1:]...)
			break
		}
	}
	t.machine = nil
}

// Offline reports whether the machine is failed/out of service.
func (m *Machine) Offline() bool { return m.offline }

// SetOffline fails or restores the machine (§III-C: free cooling
// accelerates processor aging; machines break and get swapped). Going
// offline suspends every assigned task — call Evacuate first to migrate
// them. Coming back online re-applies the stored budget.
func (m *Machine) SetOffline(off bool) {
	if m.offline == off {
		return
	}
	m.offline = off
	if m.Tracer != nil {
		now := m.engine.Now()
		if off {
			m.offSpan = m.Tracer.BeginSpan(now, "offline", m.TraceTag, 0)
		} else if m.offSpan != 0 {
			m.Tracer.EndSpanDetail(now, m.offSpan, m.Name)
			m.offSpan = 0
		}
	}
	m.SetBudget(m.budget)
}

// Evacuate preempts every assigned task and returns them, with Work set to
// their remaining core-seconds, oldest first — the repair/migration path.
func (m *Machine) Evacuate() []*Task {
	out := make([]*Task, 0, len(m.tasks))
	for len(m.tasks) > 0 {
		t := m.tasks[0]
		m.Preempt(t)
		out = append(out, t)
	}
	return out
}

// Victim returns the most recently started task of the given class, or nil.
// Preemption policies evict the youngest DCC task first, losing the least
// banked work.
func (m *Machine) Victim(class int) *Task {
	var best *Task
	for _, t := range m.tasks {
		if t.Class != class {
			continue
		}
		if best == nil || t.seq > best.seq {
			best = t
		}
	}
	return best
}

// Tasks returns the assigned tasks (oldest first). Callers must not mutate.
func (m *Machine) Tasks() []*Task { return m.tasks }

// Draw returns the current electrical draw of the server.
func (m *Machine) Draw() units.Watt {
	if m.active == 0 {
		return 0
	}
	running := m.RunningTasks()
	u := float64(running) / float64(m.Cores)
	return m.Model.Draw(m.level, u)
}

// HeatOutput returns the useful heat currently delivered to the host.
func (m *Machine) HeatOutput() units.Watt {
	return units.Watt(float64(m.Draw()) * m.Model.HeatFraction)
}

// updateMeter folds the new power state into the energy meter.
func (m *Machine) updateMeter() {
	d := m.Draw()
	fac := units.Watt(float64(d) * (1 + m.Model.CoolingOverhead))
	m.meter.Update(m.engine.Now(), d, fac, m.HeatOutput())
}

// Meter returns the machine's energy meter. Call FlushMeter first when
// reading at an arbitrary time.
func (m *Machine) Meter() *power.Meter { return &m.meter }

// FlushMeter integrates energy up to now.
func (m *Machine) FlushMeter() { m.meter.Flush(m.engine.Now()) }
