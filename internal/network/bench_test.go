package network

import (
	"testing"

	"df3/internal/sim"
)

func BenchmarkSendOneHop(b *testing.B) {
	e := sim.New()
	f, a, n := pairBench(e)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Send(a, n, 16e3, func(sim.Time) {})
		if e.Pending() > 1024 {
			e.Run(e.Now() + 1)
		}
	}
	e.Run(e.Now() + 1e6)
}

func BenchmarkRouteCached(b *testing.B) {
	e := sim.New()
	f := NewFabric(e)
	nodes := make([]NodeID, 32)
	for i := range nodes {
		nodes[i] = f.AddNode("n")
	}
	for i := 1; i < len(nodes); i++ {
		f.Connect(nodes[i-1], nodes[i], LAN)
	}
	f.Route(nodes[0], nodes[31]) // warm the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Route(nodes[0], nodes[31])
	}
}

func pairBench(e *sim.Engine) (*Fabric, NodeID, NodeID) {
	f := NewFabric(e)
	a, b := f.AddNode("a"), f.AddNode("b")
	f.Connect(a, b, LAN)
	return f, a, b
}
