// Package network models the communication fabric between IoT devices, DF
// servers, gateways and the remote datacenter.
//
// Links carry (latency, bandwidth) and serialise transfers FIFO: a message
// occupies the link for size/bandwidth seconds after waiting for earlier
// messages, then arrives latency later (store-and-forward per link). Routes
// are static paths configured by the scenario builder; the fabric delivers
// a message by walking its path hop by hop on the simulation engine.
//
// Link classes follow the technologies the paper names (§III-B): building
// Ethernet LAN, fibre to the Qarnot middleware, metro WAN between city
// clusters, Internet to a remote datacenter, and the low-power IoT
// protocols (LoRa, Zigbee) for sensors.
package network

import (
	"fmt"

	"df3/internal/rng"
	"df3/internal/sim"
	"df3/internal/trace"
	"df3/internal/units"
)

// NodeID identifies a network endpoint.
type NodeID int

// Link is a unidirectional channel between two nodes.
type Link struct {
	From, To NodeID
	// Latency is the propagation + protocol delay per message.
	Latency sim.Time
	// Bandwidth is bytes per second; <= 0 means infinite (no serialisation).
	Bandwidth float64
	// Class is the technology class name the link was built from
	// (per-class loss probabilities and fault processes key on it).
	Class string

	busyUntil sim.Time
	bytes     float64
	messages  int64
	down      bool
	// stage is the precomputed span label ("hop:"+Class), so tracing a hop
	// never concatenates strings on the hot path.
	stage string
	// epoch increments on every failure, so a message injected before an
	// outage is recognised as dead on arrival even if the link was
	// repaired while it was in flight.
	epoch uint32
}

// transferTime returns when a message of size bytes injected at now departs
// the link (serialisation) and when it arrives at the far end.
func (l *Link) transferTime(now sim.Time, size units.Byte) (depart, arrive sim.Time) {
	start := now
	if l.busyUntil > start {
		start = l.busyUntil
	}
	ser := sim.Time(0)
	if l.Bandwidth > 0 {
		ser = sim.Time(float64(size) / l.Bandwidth)
	}
	depart = start + ser
	l.busyUntil = depart
	l.bytes += float64(size)
	l.messages++
	return depart, depart + l.Latency
}

// BytesCarried returns the cumulative traffic on the link.
func (l *Link) BytesCarried() float64 { return l.bytes }

// Messages returns the number of messages carried.
func (l *Link) Messages() int64 { return l.messages }

// Down reports whether the link is currently failed.
func (l *Link) Down() bool { return l.down }

// Class is a reusable (latency, bandwidth) pair for building links.
type Class struct {
	Name      string
	Latency   sim.Time
	Bandwidth float64 // bytes/s
}

// Technology classes with representative figures.
var (
	// LAN is building-internal gigabit Ethernet.
	LAN = Class{Name: "lan", Latency: 0.0005, Bandwidth: 125e6}
	// Fibre is the optic-fibre uplink of a Q.rad to the operator (§II-B1).
	Fibre = Class{Name: "fibre", Latency: 0.002, Bandwidth: 125e6}
	// Metro is a city-internal WAN hop between buildings/clusters.
	Metro = Class{Name: "metro", Latency: 0.005, Bandwidth: 60e6}
	// Internet is the path to a remote datacenter.
	Internet = Class{Name: "internet", Latency: 0.035, Bandwidth: 12e6}
	// Zigbee is a low-power mesh hop for in-building sensors.
	Zigbee = Class{Name: "zigbee", Latency: 0.015, Bandwidth: 31e3}
	// LoRa is a long-range low-power hop: tiny bandwidth, high latency.
	LoRa = Class{Name: "lora", Latency: 0.4, Bandwidth: 3.4e3}
	// BoilerNet is the 10 Gbps fabric inside an Asperitas boiler (§II-B2).
	BoilerNet = Class{Name: "boilernet", Latency: 0.0001, Bandwidth: 1.25e9}
)

// Fabric is a static-routing network on a simulation engine.
type Fabric struct {
	engine *sim.Engine
	links  map[[2]NodeID]*Link
	adj    map[NodeID][]NodeID    // neighbours in Connect order (determinism)
	routes map[[2]NodeID][]NodeID // precomputed paths, endpoints included
	names  map[NodeID]string
	nextID NodeID

	// pairs records undirected links in Connect order, so scenario code
	// can enumerate the topology deterministically (fault arming).
	pairs [][2]NodeID
	// nodeDown marks failed endpoints (gateway outages): no message may
	// originate, terminate or transit there.
	nodeDown map[NodeID]bool
	// loss is the per-class message-loss probability; draws come from
	// lossRNG and happen only for classes with a positive probability, so
	// a fabric with no loss configured makes no draws at all.
	loss    map[string]float64
	lossRNG *rng.Stream
	lost    int64
	// OnLoss, when set, observes every dropped message: random wire loss,
	// messages dead on a failed link, and messages arriving at a failed
	// node. Scenario layers hook it to ledger counters.
	OnLoss func(from, to NodeID, size units.Byte)
	// Tracer, when set, records message and per-hop spans for sends made
	// through SendTraced. Plain Send/SendEx traffic is never spanned, so
	// only flows a caller opted into show up in the trace.
	Tracer *trace.Recorder
}

// NewFabric returns an empty fabric.
func NewFabric(e *sim.Engine) *Fabric {
	return &Fabric{
		engine:   e,
		links:    map[[2]NodeID]*Link{},
		adj:      map[NodeID][]NodeID{},
		routes:   map[[2]NodeID][]NodeID{},
		names:    map[NodeID]string{},
		nodeDown: map[NodeID]bool{},
		loss:     map[string]float64{},
	}
}

// AddNode registers a named endpoint and returns its id.
func (f *Fabric) AddNode(name string) NodeID {
	id := f.nextID
	f.nextID++
	f.names[id] = name
	return id
}

// NodeName returns the registered name of a node.
func (f *Fabric) NodeName(id NodeID) string { return f.names[id] }

// Connect adds a bidirectional link of the given class between a and b.
// Reconnecting an existing pair replaces the links' parameters.
func (f *Fabric) Connect(a, b NodeID, c Class) {
	if f.links[[2]NodeID{a, b}] == nil {
		f.adj[a] = append(f.adj[a], b)
		f.adj[b] = append(f.adj[b], a)
		f.pairs = append(f.pairs, [2]NodeID{a, b})
	}
	stage := "hop:" + c.Name
	f.links[[2]NodeID{a, b}] = &Link{From: a, To: b, Latency: c.Latency, Bandwidth: c.Bandwidth, Class: c.Name, stage: stage}
	f.links[[2]NodeID{b, a}] = &Link{From: b, To: a, Latency: c.Latency, Bandwidth: c.Bandwidth, Class: c.Name, stage: stage}
	f.routes = map[[2]NodeID][]NodeID{} // topology changed; recompute lazily
}

// Link returns the directed link a→b, or nil.
func (f *Fabric) Link(a, b NodeID) *Link { return f.links[[2]NodeID{a, b}] }

// Pairs returns the undirected links in Connect order — the deterministic
// enumeration fault processes arm over.
func (f *Fabric) Pairs() [][2]NodeID { return f.pairs }

// ---------------------------------------------------------------------------
// Fault injection: link failures, node (gateway) failures, wire loss
// ---------------------------------------------------------------------------

// FailLink takes the bidirectional link a↔b out of service. Routes reroute
// around it (BFS skips dead links); messages already on the wire are
// dropped on arrival via the loss callback. Failing an unknown or already
// failed link is a no-op.
func (f *Fabric) FailLink(a, b NodeID) {
	for _, l := range []*Link{f.links[[2]NodeID{a, b}], f.links[[2]NodeID{b, a}]} {
		if l == nil || l.down {
			continue
		}
		l.down = true
		l.epoch++
	}
	f.routes = map[[2]NodeID][]NodeID{}
}

// RestoreLink returns a failed link to service.
func (f *Fabric) RestoreLink(a, b NodeID) {
	for _, l := range []*Link{f.links[[2]NodeID{a, b}], f.links[[2]NodeID{b, a}]} {
		if l == nil || !l.down {
			continue
		}
		l.down = false
	}
	f.routes = map[[2]NodeID][]NodeID{}
}

// FailNode severs an endpoint: every route through it dies (a failed
// gateway cuts its whole building off the fabric), sends to or from it
// fail, and in-flight messages addressed to it are dropped on arrival.
func (f *Fabric) FailNode(n NodeID) {
	if f.nodeDown[n] {
		return
	}
	f.nodeDown[n] = true
	// Messages mid-flight on the node's links die with it.
	for _, nb := range f.adj[n] {
		f.FailLink(n, nb)
	}
	f.routes = map[[2]NodeID][]NodeID{}
}

// RestoreNode returns a failed endpoint (and its links) to service. Links
// individually failed by FailLink come back too: node repair re-provisions
// the attachment.
func (f *Fabric) RestoreNode(n NodeID) {
	if !f.nodeDown[n] {
		return
	}
	delete(f.nodeDown, n)
	for _, nb := range f.adj[n] {
		// Only raise links whose far end is alive.
		if !f.nodeDown[nb] {
			f.RestoreLink(n, nb)
		}
	}
	f.routes = map[[2]NodeID][]NodeID{}
}

// NodeDown reports whether the endpoint is failed.
func (f *Fabric) NodeDown(n NodeID) bool { return f.nodeDown[n] }

// SetLoss sets the per-message loss probability for every link of the
// named class. Call SetLossRNG first; a fabric with no positive
// probabilities never draws from the stream, preserving determinism of
// loss-free scenarios.
func (f *Fabric) SetLoss(class string, p float64) {
	if p <= 0 {
		delete(f.loss, class)
		return
	}
	f.loss[class] = p
}

// SetLossRNG installs the random stream wire-loss draws come from.
func (f *Fabric) SetLossRNG(s *rng.Stream) { f.lossRNG = s }

// LostMessages returns how many messages the fabric has dropped (wire
// loss, failed links, failed destination nodes).
func (f *Fabric) LostMessages() int64 { return f.lost }

// drop accounts a lost message and notifies the observers.
func (f *Fabric) drop(from, to NodeID, size units.Byte, dropped func()) {
	f.lost++
	if f.OnLoss != nil {
		f.OnLoss(from, to, size)
	}
	if dropped != nil {
		dropped()
	}
}

// usable reports whether a message may be injected into the directed link
// a→b right now.
func (f *Fabric) usable(a, b NodeID) bool {
	if f.nodeDown[a] || f.nodeDown[b] {
		return false
	}
	l := f.links[[2]NodeID{a, b}]
	return l != nil && !l.down
}

// Route computes (and caches) the minimum-hop path from a to b with BFS,
// routing around failed links and failed nodes. It returns nil when b is
// unreachable (including when either endpoint is down).
func (f *Fabric) Route(a, b NodeID) []NodeID {
	if f.nodeDown[a] || f.nodeDown[b] {
		return nil
	}
	if a == b {
		return []NodeID{a}
	}
	if r, ok := f.routes[[2]NodeID{a, b}]; ok {
		return r
	}
	// BFS over the live link set.
	prev := map[NodeID]NodeID{a: a}
	frontier := []NodeID{a}
	for len(frontier) > 0 {
		if _, seen := prev[b]; seen {
			break
		}
		var next []NodeID
		for _, n := range frontier {
			for _, nb := range f.adj[n] {
				if _, seen := prev[nb]; seen {
					continue
				}
				if !f.usable(n, nb) {
					continue
				}
				prev[nb] = n
				next = append(next, nb)
			}
		}
		frontier = next
	}
	if _, seen := prev[b]; !seen {
		f.routes[[2]NodeID{a, b}] = nil
		return nil
	}
	var rev []NodeID
	for n := b; ; n = prev[n] {
		rev = append(rev, n)
		if n == a {
			break
		}
	}
	path := make([]NodeID, len(rev))
	for i := range rev {
		path[i] = rev[len(rev)-1-i]
	}
	f.routes[[2]NodeID{a, b}] = path
	return path
}

// SetRoute overrides the path between two endpoints (must start at a and
// end at b over existing links).
func (f *Fabric) SetRoute(a, b NodeID, path []NodeID) error {
	if len(path) < 1 || path[0] != a || path[len(path)-1] != b {
		return fmt.Errorf("network: path endpoints do not match %d..%d", a, b)
	}
	for i := 0; i+1 < len(path); i++ {
		if f.Link(path[i], path[i+1]) == nil {
			return fmt.Errorf("network: no link %d->%d on path", path[i], path[i+1])
		}
	}
	f.routes[[2]NodeID{a, b}] = path
	return nil
}

// PathLatency returns the summed link latency a→b ignoring serialisation,
// or -1 when unreachable. Useful for admission decisions.
func (f *Fabric) PathLatency(a, b NodeID) sim.Time {
	path := f.Route(a, b)
	if path == nil {
		return -1
	}
	var total sim.Time
	for i := 0; i+1 < len(path); i++ {
		total += f.Link(path[i], path[i+1]).Latency
	}
	return total
}

// Send delivers a message of the given size from a to b, invoking deliver
// with the arrival time. It walks the path hop by hop, modelling per-link
// FIFO serialisation. Returns false (and does not schedule anything) when
// b is unreachable. When the fabric injects faults, an accepted message
// may still die on the wire and deliver will never fire; callers that must
// notice use SendEx.
func (f *Fabric) Send(a, b NodeID, size units.Byte, deliver func(at sim.Time)) bool {
	return f.SendEx(a, b, size, deliver, nil)
}

// SendEx is Send with a loss continuation: dropped (when non-nil) is
// invoked exactly once if the message dies in flight — random wire loss,
// a link that failed under it, or a destination node that failed before
// arrival. Exactly one of deliver and dropped eventually fires for every
// accepted message, which is what lets the middleware keep its
// request-conservation invariant under chaos.
func (f *Fabric) SendEx(a, b NodeID, size units.Byte, deliver func(at sim.Time), dropped func()) bool {
	return f.SendTraced(a, b, size, 0, deliver, dropped)
}

// SendTraced is SendEx with span correlation: when the fabric has a Tracer,
// the whole transfer becomes a "net" span (child of parent, e.g. a request's
// root span) and every hop a "hop:<class>" child, so per-request latency
// decomposes down to individual links in the trace. With no Tracer it is
// exactly SendEx — the span ids stay zero and every span call no-ops.
func (f *Fabric) SendTraced(a, b NodeID, size units.Byte, parent trace.SpanID, deliver func(at sim.Time), dropped func()) bool {
	path := f.Route(a, b)
	if path == nil {
		if f.Tracer != nil {
			f.Tracer.Instant(f.engine.Now(), "net:unreachable", 0, parent,
				f.names[a]+"→"+f.names[b])
		}
		return false
	}
	if len(path) == 1 { // local delivery
		f.engine.After(0, func() { deliver(f.engine.Now()) })
		return true
	}
	var msg trace.SpanID
	if f.Tracer != nil {
		msg = f.Tracer.BeginSpan(f.engine.Now(), "net", 0, parent)
	}
	f.hop(path, 0, size, msg, deliver, dropped)
	return true
}

// hop forwards the message across path[i]→path[i+1] and recurses. msg is
// the transfer's span (0 when untraced); each hop opens a child under it.
func (f *Fabric) hop(path []NodeID, i int, size units.Byte, msg trace.SpanID, deliver func(at sim.Time), dropped func()) {
	from, to := path[i], path[i+1]
	if !f.usable(from, to) {
		// The path decayed under a multi-hop message: it dies at the dead
		// hop, like a frame forwarded into a downed port.
		if msg != 0 {
			f.Tracer.EndSpanDetail(f.engine.Now(), msg, "lost:dead-hop")
		}
		f.drop(from, to, size, dropped)
		return
	}
	l := f.Link(from, to)
	// Random wire loss: drawn at injection, manifested at arrival time (a
	// corrupt frame still occupies the pipe).
	lose := false
	if p := f.loss[l.Class]; p > 0 && f.lossRNG != nil && f.lossRNG.Float64() < p {
		lose = true
	}
	epoch := l.epoch
	_, arrive := l.transferTime(f.engine.Now(), size)
	var hs trace.SpanID
	if msg != 0 {
		hs = f.Tracer.BeginSpan(f.engine.Now(), l.stage, 0, msg)
	}
	f.engine.At(arrive, func() {
		// A link that failed while the message was in flight ate it, even
		// if the link was repaired before the arrival instant.
		if lose || l.down || l.epoch != epoch || f.nodeDown[to] {
			if msg != 0 {
				f.Tracer.EndSpanDetail(f.engine.Now(), hs, "lost")
				f.Tracer.EndSpanDetail(f.engine.Now(), msg, "lost")
			}
			f.drop(from, to, size, dropped)
			return
		}
		if msg != 0 {
			f.Tracer.EndSpan(f.engine.Now(), hs)
		}
		if i+2 >= len(path) {
			if msg != 0 {
				f.Tracer.EndSpanDetail(f.engine.Now(), msg, "delivered")
			}
			deliver(f.engine.Now())
			return
		}
		f.hop(path, i+1, size, msg, deliver, dropped)
	})
}
