// Package network models the communication fabric between IoT devices, DF
// servers, gateways and the remote datacenter.
//
// Links carry (latency, bandwidth) and serialise transfers FIFO: a message
// occupies the link for size/bandwidth seconds after waiting for earlier
// messages, then arrives latency later (store-and-forward per link). Routes
// are static paths configured by the scenario builder; the fabric delivers
// a message by walking its path hop by hop on the simulation engine.
//
// Link classes follow the technologies the paper names (§III-B): building
// Ethernet LAN, fibre to the Qarnot middleware, metro WAN between city
// clusters, Internet to a remote datacenter, and the low-power IoT
// protocols (LoRa, Zigbee) for sensors.
package network

import (
	"fmt"

	"df3/internal/sim"
	"df3/internal/units"
)

// NodeID identifies a network endpoint.
type NodeID int

// Link is a unidirectional channel between two nodes.
type Link struct {
	From, To NodeID
	// Latency is the propagation + protocol delay per message.
	Latency sim.Time
	// Bandwidth is bytes per second; <= 0 means infinite (no serialisation).
	Bandwidth float64

	busyUntil sim.Time
	bytes     float64
	messages  int64
}

// transferTime returns when a message of size bytes injected at now departs
// the link (serialisation) and when it arrives at the far end.
func (l *Link) transferTime(now sim.Time, size units.Byte) (depart, arrive sim.Time) {
	start := now
	if l.busyUntil > start {
		start = l.busyUntil
	}
	ser := sim.Time(0)
	if l.Bandwidth > 0 {
		ser = sim.Time(float64(size) / l.Bandwidth)
	}
	depart = start + ser
	l.busyUntil = depart
	l.bytes += float64(size)
	l.messages++
	return depart, depart + l.Latency
}

// BytesCarried returns the cumulative traffic on the link.
func (l *Link) BytesCarried() float64 { return l.bytes }

// Messages returns the number of messages carried.
func (l *Link) Messages() int64 { return l.messages }

// Class is a reusable (latency, bandwidth) pair for building links.
type Class struct {
	Name      string
	Latency   sim.Time
	Bandwidth float64 // bytes/s
}

// Technology classes with representative figures.
var (
	// LAN is building-internal gigabit Ethernet.
	LAN = Class{Name: "lan", Latency: 0.0005, Bandwidth: 125e6}
	// Fibre is the optic-fibre uplink of a Q.rad to the operator (§II-B1).
	Fibre = Class{Name: "fibre", Latency: 0.002, Bandwidth: 125e6}
	// Metro is a city-internal WAN hop between buildings/clusters.
	Metro = Class{Name: "metro", Latency: 0.005, Bandwidth: 60e6}
	// Internet is the path to a remote datacenter.
	Internet = Class{Name: "internet", Latency: 0.035, Bandwidth: 12e6}
	// Zigbee is a low-power mesh hop for in-building sensors.
	Zigbee = Class{Name: "zigbee", Latency: 0.015, Bandwidth: 31e3}
	// LoRa is a long-range low-power hop: tiny bandwidth, high latency.
	LoRa = Class{Name: "lora", Latency: 0.4, Bandwidth: 3.4e3}
	// BoilerNet is the 10 Gbps fabric inside an Asperitas boiler (§II-B2).
	BoilerNet = Class{Name: "boilernet", Latency: 0.0001, Bandwidth: 1.25e9}
)

// Fabric is a static-routing network on a simulation engine.
type Fabric struct {
	engine *sim.Engine
	links  map[[2]NodeID]*Link
	adj    map[NodeID][]NodeID    // neighbours in Connect order (determinism)
	routes map[[2]NodeID][]NodeID // precomputed paths, endpoints included
	names  map[NodeID]string
	nextID NodeID
}

// NewFabric returns an empty fabric.
func NewFabric(e *sim.Engine) *Fabric {
	return &Fabric{
		engine: e,
		links:  map[[2]NodeID]*Link{},
		adj:    map[NodeID][]NodeID{},
		routes: map[[2]NodeID][]NodeID{},
		names:  map[NodeID]string{},
	}
}

// AddNode registers a named endpoint and returns its id.
func (f *Fabric) AddNode(name string) NodeID {
	id := f.nextID
	f.nextID++
	f.names[id] = name
	return id
}

// NodeName returns the registered name of a node.
func (f *Fabric) NodeName(id NodeID) string { return f.names[id] }

// Connect adds a bidirectional link of the given class between a and b.
// Reconnecting an existing pair replaces the links' parameters.
func (f *Fabric) Connect(a, b NodeID, c Class) {
	if f.links[[2]NodeID{a, b}] == nil {
		f.adj[a] = append(f.adj[a], b)
		f.adj[b] = append(f.adj[b], a)
	}
	f.links[[2]NodeID{a, b}] = &Link{From: a, To: b, Latency: c.Latency, Bandwidth: c.Bandwidth}
	f.links[[2]NodeID{b, a}] = &Link{From: b, To: a, Latency: c.Latency, Bandwidth: c.Bandwidth}
	f.routes = map[[2]NodeID][]NodeID{} // topology changed; recompute lazily
}

// Link returns the directed link a→b, or nil.
func (f *Fabric) Link(a, b NodeID) *Link { return f.links[[2]NodeID{a, b}] }

// Route computes (and caches) the minimum-hop path from a to b with BFS.
// It returns nil when b is unreachable.
func (f *Fabric) Route(a, b NodeID) []NodeID {
	if a == b {
		return []NodeID{a}
	}
	if r, ok := f.routes[[2]NodeID{a, b}]; ok {
		return r
	}
	// BFS over the link set.
	prev := map[NodeID]NodeID{a: a}
	frontier := []NodeID{a}
	for len(frontier) > 0 {
		if _, seen := prev[b]; seen {
			break
		}
		var next []NodeID
		for _, n := range frontier {
			for _, nb := range f.adj[n] {
				if _, seen := prev[nb]; seen {
					continue
				}
				prev[nb] = n
				next = append(next, nb)
			}
		}
		frontier = next
	}
	if _, seen := prev[b]; !seen {
		f.routes[[2]NodeID{a, b}] = nil
		return nil
	}
	var rev []NodeID
	for n := b; ; n = prev[n] {
		rev = append(rev, n)
		if n == a {
			break
		}
	}
	path := make([]NodeID, len(rev))
	for i := range rev {
		path[i] = rev[len(rev)-1-i]
	}
	f.routes[[2]NodeID{a, b}] = path
	return path
}

// SetRoute overrides the path between two endpoints (must start at a and
// end at b over existing links).
func (f *Fabric) SetRoute(a, b NodeID, path []NodeID) error {
	if len(path) < 1 || path[0] != a || path[len(path)-1] != b {
		return fmt.Errorf("network: path endpoints do not match %d..%d", a, b)
	}
	for i := 0; i+1 < len(path); i++ {
		if f.Link(path[i], path[i+1]) == nil {
			return fmt.Errorf("network: no link %d->%d on path", path[i], path[i+1])
		}
	}
	f.routes[[2]NodeID{a, b}] = path
	return nil
}

// PathLatency returns the summed link latency a→b ignoring serialisation,
// or -1 when unreachable. Useful for admission decisions.
func (f *Fabric) PathLatency(a, b NodeID) sim.Time {
	path := f.Route(a, b)
	if path == nil {
		return -1
	}
	var total sim.Time
	for i := 0; i+1 < len(path); i++ {
		total += f.Link(path[i], path[i+1]).Latency
	}
	return total
}

// Send delivers a message of the given size from a to b, invoking deliver
// with the arrival time. It walks the path hop by hop, modelling per-link
// FIFO serialisation. Returns false (and does not schedule anything) when
// b is unreachable.
func (f *Fabric) Send(a, b NodeID, size units.Byte, deliver func(at sim.Time)) bool {
	path := f.Route(a, b)
	if path == nil {
		return false
	}
	if len(path) == 1 { // local delivery
		f.engine.After(0, func() { deliver(f.engine.Now()) })
		return true
	}
	f.hop(path, 0, size, deliver)
	return true
}

// hop forwards the message across path[i]→path[i+1] and recurses.
func (f *Fabric) hop(path []NodeID, i int, size units.Byte, deliver func(at sim.Time)) {
	l := f.Link(path[i], path[i+1])
	_, arrive := l.transferTime(f.engine.Now(), size)
	f.engine.At(arrive, func() {
		if i+2 >= len(path) {
			deliver(f.engine.Now())
			return
		}
		f.hop(path, i+1, size, deliver)
	})
}
