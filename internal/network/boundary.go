package network

import (
	"fmt"
	"sort"
	"sync"

	"df3/internal/sim"
	"df3/internal/units"
)

// This file models the inter-city backbone of a sharded federation: the
// wide-area fabric between building fleets that city-local Fabrics never
// see. Each city keeps its own Fabric on its own engine; traffic that
// leaves a city crosses a BoundaryLink of the Backbone instead, and the
// backbone's minimum end-to-end delay is what the shard kernel derives its
// conservative lookahead from.
//
// Routing is shard-aware: the backbone knows which shard each city is
// assigned to, so its accounting splits traffic that stayed inside one
// shard worker from traffic that genuinely crossed a shard boundary — the
// messages the parallel kernel pays synchronization for.

// BackboneSpec parameterises the federation WAN.
type BackboneSpec struct {
	// Latency is the propagation + protocol delay between two cities.
	Latency sim.Time
	// Bandwidth is the per-pair serialisation rate in bytes/second.
	Bandwidth float64
	// Staging is the dispatcher's store-and-forward floor: inter-city
	// payloads are batch work, staged and forwarded on this cadence
	// rather than streamed. It dominates the minimum delay and is what
	// buys the shard kernel a usable lookahead.
	Staging sim.Time
}

// DefaultBackbone is a national fibre WAN: 12 ms between metros, 2 Gbit/s
// per city pair, 30 s dispatcher staging.
func DefaultBackbone() BackboneSpec {
	return BackboneSpec{Latency: 0.012, Bandwidth: 250e6, Staging: 30}
}

// BoundaryLink accounts traffic between one ordered city pair.
type BoundaryLink struct {
	SrcCity, DstCity int
	Messages         int64
	Bytes            float64
}

// Backbone is the inter-city WAN with shard-aware accounting. It is safe
// for concurrent use: shard workers account sends from their own
// goroutines during a window.
type Backbone struct {
	Spec BackboneSpec

	mu    sync.Mutex
	links map[[2]int]*BoundaryLink
	// shardOf maps city → shard; -1 (or missing) means unassigned.
	shardOf []int
	// crossMsgs/crossBytes count traffic whose endpoints sat on
	// different shards.
	crossMsgs  int64
	crossBytes float64
	totalMsgs  int64
}

// NewBackbone returns a backbone over `cities` cities.
func NewBackbone(spec BackboneSpec, cities int) *Backbone {
	if spec.Latency <= 0 || spec.Staging < 0 || spec.Bandwidth <= 0 {
		panic(fmt.Sprintf("network: malformed backbone spec %+v", spec))
	}
	shards := make([]int, cities)
	for i := range shards {
		shards[i] = -1
	}
	return &Backbone{Spec: spec, links: map[[2]int]*BoundaryLink{}, shardOf: shards}
}

// AssignShards installs the city→shard map the kernel's partition chose,
// making subsequent accounting shard-aware.
func (b *Backbone) AssignShards(shardOf []int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(shardOf) != len(b.shardOf) {
		panic(fmt.Sprintf("network: shard map for %d cities, backbone has %d", len(shardOf), len(b.shardOf)))
	}
	copy(b.shardOf, shardOf)
}

// MinDelay returns the smallest possible end-to-end delay across the
// backbone — staging plus propagation for a zero-byte payload. The shard
// kernel's lookahead derives from it.
func (b *Backbone) MinDelay() sim.Time {
	return b.Spec.Staging + b.Spec.Latency
}

// Delay returns the modeled transfer time for a payload between two cities:
// staging floor, propagation, and serialisation at the pair bandwidth.
func (b *Backbone) Delay(size units.Byte) sim.Time {
	return b.Spec.Staging + b.Spec.Latency + sim.Time(float64(size)/b.Spec.Bandwidth)
}

// Account records one src→dst transfer. Call it at send time with the
// payload size; it returns the modeled delay so send paths account and
// route in one step.
func (b *Backbone) Account(src, dst int, size units.Byte) sim.Time {
	b.mu.Lock()
	defer b.mu.Unlock()
	key := [2]int{src, dst}
	l := b.links[key]
	if l == nil {
		l = &BoundaryLink{SrcCity: src, DstCity: dst}
		b.links[key] = l
	}
	l.Messages++
	l.Bytes += float64(size)
	b.totalMsgs++
	if src < len(b.shardOf) && dst < len(b.shardOf) {
		ss, ds := b.shardOf[src], b.shardOf[dst]
		if ss != ds && ss >= 0 && ds >= 0 {
			b.crossMsgs++
			b.crossBytes += float64(size)
		}
	}
	return b.Delay(size)
}

// Links returns per-pair accounting in sorted (src, dst) order.
func (b *Backbone) Links() []BoundaryLink {
	b.mu.Lock()
	defer b.mu.Unlock()
	keys := make([][2]int, 0, len(b.links))
	for k := range b.links {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	out := make([]BoundaryLink, len(keys))
	for i, k := range keys {
		out[i] = *b.links[k]
	}
	return out
}

// Messages returns the total transfers accounted.
func (b *Backbone) Messages() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.totalMsgs
}

// CrossShard returns the transfers (and bytes) whose endpoints lived on
// different shard workers — the synchronization-bearing boundary traffic.
func (b *Backbone) CrossShard() (int64, float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.crossMsgs, b.crossBytes
}
