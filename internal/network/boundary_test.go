package network

import "testing"

func TestBackboneDelayAndMin(t *testing.T) {
	b := NewBackbone(BackboneSpec{Latency: 0.01, Bandwidth: 1e6, Staging: 30}, 4)
	if got := b.MinDelay(); got != 30.01 {
		t.Fatalf("MinDelay = %v, want 30.01", got)
	}
	// 2 MB at 1 MB/s serialises in 2 s on top of the floor.
	if got := b.Delay(2e6); got < 32.01-1e-9 || got > 32.01+1e-9 {
		t.Fatalf("Delay(2MB) = %v, want 32.01", got)
	}
}

func TestBackboneShardAwareAccounting(t *testing.T) {
	b := NewBackbone(DefaultBackbone(), 4)
	b.AssignShards([]int{0, 0, 1, 1})

	d := b.Account(0, 1, 1000) // same shard
	if d != b.Delay(1000) {
		t.Fatalf("Account returned %v, want Delay %v", d, b.Delay(1000))
	}
	b.Account(0, 2, 2000) // cross shard
	b.Account(3, 0, 500)  // cross shard
	b.Account(0, 1, 1000) // same shard again

	if got := b.Messages(); got != 4 {
		t.Fatalf("Messages = %d, want 4", got)
	}
	msgs, bytes := b.CrossShard()
	if msgs != 2 || bytes != 2500 {
		t.Fatalf("CrossShard = %d msgs %v bytes, want 2, 2500", msgs, bytes)
	}

	links := b.Links()
	if len(links) != 3 {
		t.Fatalf("%d boundary links, want 3", len(links))
	}
	// Sorted pair order with aggregated counts.
	first := links[0]
	if first.SrcCity != 0 || first.DstCity != 1 || first.Messages != 2 || first.Bytes != 2000 {
		t.Fatalf("links[0] = %+v", first)
	}
}

func TestBackboneUnassignedShardsNotCross(t *testing.T) {
	b := NewBackbone(DefaultBackbone(), 2)
	b.Account(0, 1, 100)
	if msgs, _ := b.CrossShard(); msgs != 0 {
		t.Fatalf("unassigned cities counted as cross-shard: %d", msgs)
	}
}
