package network

import (
	"math"
	"testing"
	"testing/quick"

	"df3/internal/sim"
	"df3/internal/units"
)

func pair(e *sim.Engine, c Class) (*Fabric, NodeID, NodeID) {
	f := NewFabric(e)
	a, b := f.AddNode("a"), f.AddNode("b")
	f.Connect(a, b, c)
	return f, a, b
}

func TestSendLatencyOnly(t *testing.T) {
	e := sim.New()
	f, a, b := pair(e, Class{Latency: 0.010, Bandwidth: 0}) // infinite bw
	var at sim.Time = -1
	f.Send(a, b, 1000, func(t sim.Time) { at = t })
	e.Run(1)
	if math.Abs(at-0.010) > 1e-12 {
		t.Errorf("arrival = %v, want 0.010", at)
	}
}

func TestSendSerialisation(t *testing.T) {
	e := sim.New()
	f, a, b := pair(e, Class{Latency: 0.001, Bandwidth: 1000}) // 1 kB/s
	var t1, t2 sim.Time
	f.Send(a, b, 500, func(t sim.Time) { t1 = t }) // 0.5 s serialisation
	f.Send(a, b, 500, func(t sim.Time) { t2 = t }) // queued behind the first
	e.Run(10)
	if math.Abs(t1-0.501) > 1e-9 {
		t.Errorf("first arrival = %v, want 0.501", t1)
	}
	if math.Abs(t2-1.001) > 1e-9 {
		t.Errorf("second arrival = %v, want 1.001 (FIFO)", t2)
	}
}

func TestMultiHop(t *testing.T) {
	e := sim.New()
	f := NewFabric(e)
	a, g, dc := f.AddNode("device"), f.AddNode("gateway"), f.AddNode("dc")
	f.Connect(a, g, Class{Latency: 0.001, Bandwidth: 0})
	f.Connect(g, dc, Class{Latency: 0.030, Bandwidth: 0})
	var at sim.Time
	f.Send(a, dc, 100, func(t sim.Time) { at = t })
	e.Run(1)
	if math.Abs(at-0.031) > 1e-12 {
		t.Errorf("two-hop arrival = %v, want 0.031", at)
	}
	if l := f.PathLatency(a, dc); math.Abs(l-0.031) > 1e-12 {
		t.Errorf("path latency = %v", l)
	}
}

func TestRouteMinHop(t *testing.T) {
	e := sim.New()
	f := NewFabric(e)
	n := make([]NodeID, 5)
	for i := range n {
		n[i] = f.AddNode("n")
	}
	// Ring 0-1-2-3-4-0: route 0→2 should be 2 hops.
	for i := 0; i < 5; i++ {
		f.Connect(n[i], n[(i+1)%5], LAN)
	}
	path := f.Route(n[0], n[2])
	if len(path) != 3 {
		t.Errorf("route length = %d, want 3: %v", len(path), path)
	}
}

func TestUnreachable(t *testing.T) {
	e := sim.New()
	f := NewFabric(e)
	a, b := f.AddNode("a"), f.AddNode("b")
	if f.Route(a, b) != nil {
		t.Error("route exists between unconnected nodes")
	}
	if f.PathLatency(a, b) != -1 {
		t.Error("path latency should be -1 when unreachable")
	}
	if f.Send(a, b, 10, func(sim.Time) {}) {
		t.Error("send succeeded to unreachable node")
	}
}

func TestSelfDelivery(t *testing.T) {
	e := sim.New()
	f := NewFabric(e)
	a := f.AddNode("a")
	delivered := false
	if !f.Send(a, a, 10, func(sim.Time) { delivered = true }) {
		t.Fatal("self-send failed")
	}
	e.Run(1)
	if !delivered {
		t.Error("self-send not delivered")
	}
}

func TestSetRoute(t *testing.T) {
	e := sim.New()
	f := NewFabric(e)
	a, b, c := f.AddNode("a"), f.AddNode("b"), f.AddNode("c")
	f.Connect(a, b, LAN)
	f.Connect(b, c, LAN)
	f.Connect(a, c, Class{Latency: 1, Bandwidth: 0}) // slow direct link
	// Force the two-hop path even though a-c is one hop.
	if err := f.SetRoute(a, c, []NodeID{a, b, c}); err != nil {
		t.Fatal(err)
	}
	if l := f.PathLatency(a, c); l > 0.01 {
		t.Errorf("forced route latency = %v, want LAN-scale", l)
	}
	if err := f.SetRoute(a, c, []NodeID{a, c, b}); err == nil {
		t.Error("SetRoute accepted path with wrong endpoint")
	}
	if err := f.SetRoute(a, b, []NodeID{a, c, b}); err != nil {
		t.Errorf("valid alternate path rejected: %v", err)
	}
}

func TestLinkAccounting(t *testing.T) {
	e := sim.New()
	f, a, b := pair(e, LAN)
	f.Send(a, b, 1000, func(sim.Time) {})
	f.Send(a, b, 500, func(sim.Time) {})
	e.Run(1)
	l := f.Link(a, b)
	if l.BytesCarried() != 1500 {
		t.Errorf("bytes carried = %v", l.BytesCarried())
	}
	if l.Messages() != 2 {
		t.Errorf("messages = %d", l.Messages())
	}
}

func TestTechnologyClassesOrdered(t *testing.T) {
	// The latency hierarchy the edge argument rests on: LAN < Metro <
	// Internet, and LoRa is the slowest pipe.
	if !(LAN.Latency < Metro.Latency && Metro.Latency < Internet.Latency) {
		t.Error("wired latency hierarchy broken")
	}
	if LoRa.Bandwidth >= Zigbee.Bandwidth {
		t.Error("LoRa should be slower than Zigbee")
	}
	if BoilerNet.Bandwidth <= LAN.Bandwidth {
		t.Error("boiler fabric should beat building LAN")
	}
}

func TestDeterministicRoutes(t *testing.T) {
	build := func() []NodeID {
		e := sim.New()
		f := NewFabric(e)
		n := make([]NodeID, 8)
		for i := range n {
			n[i] = f.AddNode("n")
		}
		for i := 0; i < 8; i++ {
			for j := i + 1; j < 8; j++ {
				f.Connect(n[i], n[j], LAN)
			}
		}
		return f.Route(n[0], n[7])
	}
	p1, p2 := build(), build()
	if len(p1) != len(p2) {
		t.Fatalf("route lengths differ: %v vs %v", p1, p2)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("routes differ: %v vs %v", p1, p2)
		}
	}
}

// Property: messages on one link arrive in FIFO order and never earlier
// than latency + size/bandwidth after injection.
func TestFIFOProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		e := sim.New()
		fab, a, b := pair(e, Class{Latency: 0.01, Bandwidth: 10000})
		var arrivals []sim.Time
		var mins []sim.Time
		for _, sz := range sizes {
			size := units.Byte(sz%5000 + 1)
			inject := e.Now()
			mins = append(mins, inject+0.01+sim.Time(float64(size)/10000))
			fab.Send(a, b, size, func(t sim.Time) { arrivals = append(arrivals, t) })
		}
		e.Run(1e6)
		if len(arrivals) != len(sizes) {
			return false
		}
		for i := 1; i < len(arrivals); i++ {
			if arrivals[i] < arrivals[i-1] {
				return false
			}
		}
		for i := range arrivals {
			if arrivals[i]+1e-12 < mins[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: on a chain topology, PathLatency equals the sum of per-hop
// latencies, for any chain length and hop latency.
func TestPathLatencyChainProperty(t *testing.T) {
	f := func(n8 uint8, lat16 uint16) bool {
		n := int(n8%8) + 2
		hop := sim.Time(lat16%1000+1) / 1000
		e := sim.New()
		fab := NewFabric(e)
		nodes := make([]NodeID, n)
		for i := range nodes {
			nodes[i] = fab.AddNode("n")
		}
		for i := 1; i < n; i++ {
			fab.Connect(nodes[i-1], nodes[i], Class{Latency: hop, Bandwidth: 0})
		}
		got := fab.PathLatency(nodes[0], nodes[n-1])
		want := hop * sim.Time(n-1)
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestReconnectInvalidatesRoutes(t *testing.T) {
	e := sim.New()
	f := NewFabric(e)
	a, b, c := f.AddNode("a"), f.AddNode("b"), f.AddNode("c")
	f.Connect(a, b, LAN)
	f.Connect(b, c, LAN)
	if got := len(f.Route(a, c)); got != 3 {
		t.Fatalf("initial route length %d", got)
	}
	// Add a direct link: the cached two-hop route must be recomputed.
	f.Connect(a, c, LAN)
	if got := len(f.Route(a, c)); got != 2 {
		t.Errorf("route after reconnect has %d nodes, want direct", got)
	}
}

func TestSendZeroBytes(t *testing.T) {
	e := sim.New()
	f, a, b := pair(e, LAN)
	var at sim.Time = -1
	f.Send(a, b, 0, func(t sim.Time) { at = t })
	e.Run(1)
	if at < 0 {
		t.Fatal("zero-byte message not delivered")
	}
	if math.Abs(at-float64(LAN.Latency)) > 1e-12 {
		t.Errorf("zero-byte arrival = %v, want pure latency", at)
	}
}
