package network

import (
	"testing"

	"df3/internal/rng"
	"df3/internal/sim"
	"df3/internal/units"
)

// diamond builds a -- (b | c) -- d: two disjoint paths between a and d.
func diamond(e *sim.Engine) (*Fabric, NodeID, NodeID, NodeID, NodeID) {
	f := NewFabric(e)
	a, b, c, d := f.AddNode("a"), f.AddNode("b"), f.AddNode("c"), f.AddNode("d")
	cl := Class{Name: "t", Latency: 0.001, Bandwidth: 0}
	f.Connect(a, b, cl)
	f.Connect(b, d, cl)
	f.Connect(a, c, cl)
	f.Connect(c, d, cl)
	return f, a, b, c, d
}

func TestFailLinkReroutes(t *testing.T) {
	e := sim.New()
	f, a, b, c, d := diamond(e)
	if got := f.Route(a, d); len(got) != 3 || got[1] != b {
		t.Fatalf("initial route = %v, want via b", got)
	}
	f.FailLink(a, b)
	if got := f.Route(a, d); len(got) != 3 || got[1] != c {
		t.Fatalf("route after failure = %v, want via c", got)
	}
	delivered := false
	if !f.SendEx(a, d, 100, func(sim.Time) { delivered = true }, func() { t.Fatal("dropped") }) {
		t.Fatal("send refused despite surviving path")
	}
	e.Run(1)
	if !delivered {
		t.Fatal("message not delivered around the dead link")
	}
	f.RestoreLink(a, b)
	if got := f.Route(a, d); got[1] != b {
		t.Fatalf("route after repair = %v, want via b again", got)
	}
}

func TestFailLinkDropsInFlight(t *testing.T) {
	e := sim.New()
	f := NewFabric(e)
	a, b := f.AddNode("a"), f.AddNode("b")
	f.Connect(a, b, Class{Name: "t", Latency: 0.010, Bandwidth: 0})
	delivered, dropped := false, false
	f.SendEx(a, b, 100, func(sim.Time) { delivered = true }, func() { dropped = true })
	// Fail mid-flight; even repairing before arrival must not resurrect
	// the message (the epoch counter catches fail-then-restore).
	e.At(0.002, func() { f.FailLink(a, b) })
	e.At(0.004, func() { f.RestoreLink(a, b) })
	e.Run(1)
	if delivered || !dropped {
		t.Fatalf("delivered=%v dropped=%v, want in-flight message dead", delivered, dropped)
	}
	if f.LostMessages() != 1 {
		t.Fatalf("LostMessages = %d, want 1", f.LostMessages())
	}
}

func TestFailNodeSevers(t *testing.T) {
	e := sim.New()
	f, a, b, _, d := diamond(e)
	f.FailNode(d)
	if f.Route(a, d) != nil {
		t.Fatal("route to failed node should be nil")
	}
	if f.Route(a, b) == nil {
		t.Fatal("unrelated route severed")
	}
	if f.SendEx(a, d, 100, func(sim.Time) {}, func() {}) {
		t.Fatal("send to failed node accepted")
	}
	f.RestoreNode(d)
	if f.Route(a, d) == nil {
		t.Fatal("route not restored with the node")
	}
	deliv := false
	f.SendEx(a, d, 100, func(sim.Time) { deliv = true }, nil)
	e.Run(1)
	if !deliv {
		t.Fatal("message not delivered after node repair")
	}
}

func TestFailNodeDropsTransit(t *testing.T) {
	e := sim.New()
	f := NewFabric(e)
	a, g, d := f.AddNode("a"), f.AddNode("g"), f.AddNode("d")
	cl := Class{Name: "t", Latency: 0.010, Bandwidth: 0}
	f.Connect(a, g, cl)
	f.Connect(g, d, cl)
	dropped := false
	f.SendEx(a, d, 100, func(sim.Time) { t.Fatal("delivered through dead transit") }, func() { dropped = true })
	e.At(0.005, func() { f.FailNode(g) }) // message is on hop a→g
	e.Run(1)
	if !dropped {
		t.Fatal("transit message not dropped at failed node")
	}
}

func TestRandomLossPerClass(t *testing.T) {
	e := sim.New()
	f := NewFabric(e)
	a, b := f.AddNode("a"), f.AddNode("b")
	f.Connect(a, b, Class{Name: "lossy", Latency: 0.001, Bandwidth: 0})
	f.SetLoss("lossy", 0.5)
	f.SetLossRNG(rng.New(7))
	delivered, dropped := 0, 0
	for i := 0; i < 1000; i++ {
		f.SendEx(a, b, 10, func(sim.Time) { delivered++ }, func() { dropped++ })
	}
	e.Run(10)
	if delivered+dropped != 1000 {
		t.Fatalf("conservation broken: %d delivered + %d dropped != 1000", delivered, dropped)
	}
	if dropped < 400 || dropped > 600 {
		t.Fatalf("dropped %d of 1000 at p=0.5; loss draw broken", dropped)
	}
	if f.LostMessages() != int64(dropped) {
		t.Fatalf("LostMessages = %d, want %d", f.LostMessages(), dropped)
	}
	// Clearing the probability stops the draws entirely.
	f.SetLoss("lossy", 0)
	ok := 0
	for i := 0; i < 100; i++ {
		f.SendEx(a, b, 10, func(sim.Time) { ok++ }, func() { t.Fatal("dropped with loss off") })
	}
	e.Run(20)
	if ok != 100 {
		t.Fatalf("%d of 100 delivered after clearing loss", ok)
	}
}

func TestOnLossCallback(t *testing.T) {
	e := sim.New()
	f := NewFabric(e)
	a, b := f.AddNode("a"), f.AddNode("b")
	f.Connect(a, b, Class{Name: "t", Latency: 0.010, Bandwidth: 0})
	var seen int
	f.OnLoss = func(from, to NodeID, size units.Byte) { seen++ }
	f.SendEx(a, b, 100, func(sim.Time) {}, func() {})
	e.At(0.001, func() { f.FailLink(a, b) })
	e.Run(1)
	if seen != 1 {
		t.Fatalf("OnLoss fired %d times, want 1", seen)
	}
}
