package api

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"df3/internal/checkpoint"
	"df3/internal/city"
	"df3/internal/core"
	"df3/internal/metrics"
	"df3/internal/obs"
	"df3/internal/sim"
	"df3/internal/trace"
)

// LiveConfig parameterises a live serving session.
type LiveConfig struct {
	// Speed is simulated seconds per wall second (default 1: real time).
	Speed float64
	// MaxSlice bounds one paced slice in simulated seconds (default 1).
	MaxSlice sim.Time
	// Tick is the driver's wall poll interval (default 2 ms); it bounds
	// ingest latency when the simulation is caught up with the wall.
	Tick time.Duration
	// IngestTimeout is the wall-clock bound a handler waits for its
	// simulated outcome before answering 504 (default 30 s). The request
	// stays in the simulation; only the HTTP wait gives up.
	IngestTimeout time.Duration
	// Horizon is the paced drive's simulated end (default one year).
	Horizon sim.Time
	// Admission bounds the ingest plane (see AdmissionConfig).
	Admission AdmissionConfig
	// ArrivalLog, when set, receives the NDJSON arrival log that makes
	// the session replayable through ReplayArrivals. When it is an
	// *os.File it doubles as the WAL: checkpoints fsync it and recovery
	// replays it.
	ArrivalLog io.Writer
	// ArrivalLogOffset is the byte length ArrivalLog already holds — the
	// durable prefix a recovered daemon reopened in append mode.
	ArrivalLogOffset int64
	// WALFsyncEach fsyncs the arrival log after every record instead of
	// only at checkpoints, shrinking the acknowledged-but-lost crash
	// window to zero at the cost of one fsync per arrival.
	WALFsyncEach bool
	// Clock substitutes a virtual wall clock in tests (default real).
	Clock sim.Clock

	// BuildConfig is this session's build recipe (caller-opaque JSON),
	// sealed into every checkpoint and matched on restore.
	BuildConfig []byte
	// CheckpointEvery, with CheckpointDir, enables periodic crash-safe
	// checkpoints: one every CheckpointEvery simulated seconds, taken at
	// the first slice boundary past due, WAL fsynced first.
	CheckpointEvery sim.Time
	// CheckpointDir is where checkpoint files are atomically written.
	CheckpointDir string

	// Resume, when non-empty, is the recovered WAL: Start replays it
	// through the batch driver — observably in the "recovering" state,
	// before paced serving begins — so the session continues exactly
	// where the crashed one left off.
	Resume []ArrivalRecord
	// ResumeSeq is the injection sequence to resume numbering at
	// (max(checkpoint NextSeq, highest WAL seq + 1)).
	ResumeSeq uint64
	// VerifySnapshot, when set, is the recovered checkpoint: after
	// replaying the first VerifyAfter Resume records (the prefix the
	// snapshot's WALOffset covers) the rebuilt federation must verify
	// against it bit for bit, or recovery fails rather than fork history.
	VerifySnapshot *checkpoint.Snapshot
	// VerifyAfter is the Resume record count covered by VerifySnapshot.
	VerifyAfter int

	// Flight, when set, is the always-on flight recorder: the session
	// opens a span per sampled ingest request into a dedicated recorder
	// hooked into it, and GET /v1/traces streams its rings. The flight
	// plane has its own locks — it works mid-slice and during recovery.
	Flight *obs.Flight
	// TracePolicy samples ingest request spans (zero value: keep all).
	TracePolicy obs.Policy
	// TraceCapacity bounds the ingest span recorder (default 4096).
	TraceCapacity int
}

// Live runs a federation in paced real time behind an ingest plane:
// admission control in front of a thread-safe injection queue, per-request
// outcome callbacks answering HTTP clients, every arrival recorded for
// byte-identical offline replay. One Live owns its federation's Driver.
type Live struct {
	fed    *city.Federation
	cfg    LiveConfig
	queue  *sim.InjectQueue
	paced  *sim.Paced
	adm    *admission
	logw   *arrivalWriter
	clock  sim.Clock
	reg    *metrics.Registry
	done   chan struct{}
	health *healthState

	// nextCkpt is the next checkpoint-due sim time; touched only on the
	// driver goroutine (Start, then OnAdvance under the paced mutex).
	nextCkpt sim.Time

	recoverMu  sync.Mutex
	recoverErr error

	// requests[class][outcome] counts every ingest verdict.
	requests   map[string]map[string]*metrics.SharedCounter
	wallHist   map[string]*metrics.Histogram
	simHist    map[string]*metrics.Histogram
	ckptWrites *metrics.SharedCounter
	ckptErrors *metrics.SharedCounter

	// Flight tracing: sampled wraps a dedicated ingest recorder whose
	// completed spans flow into cfg.Flight. Driven only from the driver
	// goroutine (inject apply + outcome callbacks).
	flight  *obs.Flight
	sampled *obs.Sampled

	// Recovery and checkpoint telemetry, atomics because scrape-time
	// GaugeFuncs read them from handler goroutines while the driver
	// goroutine writes them.
	recoveryStartNs   atomic.Int64  // wall ns recovery began (0: never)
	recoveryDurNs     atomic.Int64  // wall ns of the finished recovery
	recoveryReplayed  atomic.Uint64 // WAL records replayed so far
	lastCkptSimMicros atomic.Int64  // sim µs of the last durable checkpoint
}

// Ingest verdicts (the outcome label of df3_ingest_requests_total).
const (
	outcomeServed   = "served"   // edge request completed
	outcomeRejected = "rejected" // edge request terminally rejected in-sim
	outcomeDone     = "done"     // DCC job completed
	outcomeLost     = "lost"     // DCC job lost past the retry budget
	outcomeShed     = "shed"     // admission control refused it (429)
	outcomeTimeout  = "timeout"  // outcome didn't settle within IngestTimeout (504)
	outcomeClosed   = "closed"   // ingest plane shutting down (503)
)

var edgeOutcomes = []string{outcomeServed, outcomeRejected, outcomeShed, outcomeTimeout, outcomeClosed}
var dccOutcomes = []string{outcomeDone, outcomeLost, outcomeShed, outcomeTimeout, outcomeClosed}

// NewLive wires a live session around a built federation. The federation
// must not be running; NewLive installs the paced driver.
func NewLive(f *city.Federation, cfg LiveConfig) *Live {
	if cfg.IngestTimeout <= 0 {
		cfg.IngestTimeout = 30 * time.Second
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 365 * 24 * sim.Hour
	}
	clock := cfg.Clock
	if clock == nil {
		clock = sim.WallClock{}
	}
	l := &Live{
		fed:    f,
		cfg:    cfg,
		queue:  sim.NewInjectQueue(),
		clock:  clock,
		done:   make(chan struct{}),
		health: newHealthState(StateRecovering),
	}
	l.adm = newAdmission(cfg.Admission, l.queue.Len)
	l.lastCkptSimMicros.Store(-1) // no checkpoint written yet
	l.paced = &sim.Paced{
		Speed:    cfg.Speed,
		MaxSlice: cfg.MaxSlice,
		Tick:     cfg.Tick,
		Queue:    l.queue,
		Clock:    cfg.Clock,
	}
	if cfg.ArrivalLog != nil {
		l.logw = newArrivalWriter(cfg.ArrivalLog, cfg.ArrivalLogOffset)
		l.logw.syncEach = cfg.WALFsyncEach
	}
	if cfg.Flight != nil {
		l.flight = cfg.Flight
		capacity := cfg.TraceCapacity
		if capacity <= 0 {
			capacity = 4096
		}
		rec := trace.NewRecorder(capacity)
		rec.BeginProcess("ingest")
		l.flight.Attach("ingest", rec)
		l.sampled = obs.NewSampled(rec, cfg.TracePolicy)
	}
	checkpointing := cfg.CheckpointEvery > 0 && cfg.CheckpointDir != ""
	if l.logw != nil || checkpointing {
		// OnAdvance runs on the driver goroutine under the paced mutex:
		// the engine is quiescent, so both the advance record and a due
		// checkpoint capture a consistent slice boundary. Never call
		// Sync from here — it would self-deadlock on the same mutex.
		l.paced.OnAdvance = func(reached sim.Time) {
			if l.logw != nil {
				l.logw.write(ArrivalRecord{Kind: "advance", At: float64(reached)})
			}
			if checkpointing && reached >= l.nextCkpt {
				l.nextCkpt = reached + cfg.CheckpointEvery
				l.writeCheckpoint()
			}
		}
	}
	f.Driver = l.paced
	l.registerMetrics()
	return l
}

// registerMetrics adds the df3_ingest_* instruments to the federation's
// registry. Shared counters and histograms are concurrency-safe; the
// func-backed series read only the ingest plane's own thread-safe state.
func (l *Live) registerMetrics() {
	r := l.fed.Observability()
	l.reg = r
	l.requests = map[string]map[string]*metrics.SharedCounter{ClassEdge: {}, ClassDCC: {}}
	for _, o := range edgeOutcomes {
		l.requests[ClassEdge][o] = r.Counter("df3_ingest_requests_total",
			"live ingest requests by class and outcome",
			metrics.Labels{"class": ClassEdge, "outcome": o})
	}
	for _, o := range dccOutcomes {
		l.requests[ClassDCC][o] = r.Counter("df3_ingest_requests_total",
			"live ingest requests by class and outcome",
			metrics.Labels{"class": ClassDCC, "outcome": o})
	}
	l.wallHist = map[string]*metrics.Histogram{}
	l.simHist = map[string]*metrics.Histogram{}
	for _, class := range []string{ClassEdge, ClassDCC} {
		class := class
		l.wallHist[class] = r.Histogram("df3_ingest_wall_seconds",
			"wall-clock latency from ingest to settled outcome",
			metrics.Labels{"class": class}, 0.5, 0.9, 0.99)
		l.simHist[class] = r.Histogram("df3_ingest_sim_seconds",
			"simulated latency of settled requests",
			metrics.Labels{"class": class}, 0.5, 0.9, 0.99)
		r.GaugeFunc("df3_ingest_inflight", "admitted requests awaiting their outcome",
			metrics.Labels{"class": class},
			func() float64 { return float64(l.adm.InFlight(class)) })
	}
	r.GaugeFunc("df3_ingest_queue_depth", "injections accepted but not yet drained",
		nil, func() float64 { return float64(l.queue.Len()) })
	l.ckptWrites = r.Counter("df3_checkpoint_writes_total",
		"checkpoints durably written", nil)
	l.ckptErrors = r.Counter("df3_checkpoint_errors_total",
		"checkpoint attempts that failed (WAL sync or write error)", nil)

	// Paced-driver health. These read the driver's lock-free atomics, not
	// Sync: the registry evaluates read-throughs while the scrape already
	// holds the paced mutex, so a Sync here would self-deadlock.
	r.GaugeFunc("df3_paced_lag_seconds",
		"simulated seconds the wall-clock pacing target is ahead of the sim clock",
		nil, l.paced.LagSeconds)
	r.CounterFunc("df3_paced_slices_total", "paced slices executed",
		nil, func() int64 { return int64(l.paced.Slices()) })
	r.GaugeFunc("df3_paced_last_slice_sim_time_s", "sim time of the last slice boundary",
		nil, func() float64 { return float64(l.paced.LastSliceReached()) })

	// WAL durability: written vs durable offsets and the crash-loss gap.
	if l.logw != nil {
		r.GaugeFunc("df3_wal_written_bytes", "arrival log bytes written (including buffered)",
			nil, func() float64 { w, _ := l.logw.Offsets(); return float64(w) })
		r.GaugeFunc("df3_wal_durable_bytes", "arrival log bytes known fsynced",
			nil, func() float64 { _, d := l.logw.Offsets(); return float64(d) })
		r.GaugeFunc("df3_wal_lag_bytes", "acknowledged-but-not-durable arrival log bytes",
			nil, func() float64 { w, d := l.logw.Offsets(); return float64(w - d) })
	}

	// Recovery progress: phase, records replayed, wall duration and rate.
	r.GaugeFunc("df3_recovery_active", "1 while WAL replay/verify is in progress",
		nil, func() float64 {
			if l.health.get() == StateRecovering {
				return 1
			}
			return 0
		})
	r.CounterFunc("df3_recovery_replayed_records_total", "WAL records replayed during recovery",
		nil, func() int64 { return int64(l.recoveryReplayed.Load()) })
	r.GaugeFunc("df3_recovery_duration_seconds", "wall time of the last (or ongoing) recovery",
		nil, func() float64 { return l.recoveryDuration().Seconds() })
	r.GaugeFunc("df3_recovery_replay_records_per_second", "WAL replay throughput",
		nil, func() float64 {
			d := l.recoveryDuration().Seconds()
			if d <= 0 {
				return 0
			}
			return float64(l.recoveryReplayed.Load()) / d
		})

	// Checkpoint freshness: how much simulated time the newest durable
	// snapshot trails the clock — the replay bound a crash right now pays.
	if l.cfg.CheckpointEvery > 0 && l.cfg.CheckpointDir != "" {
		r.GaugeFunc("df3_checkpoint_age_sim_seconds",
			"sim seconds since the last durable checkpoint (0 until one is written)",
			nil, func() float64 {
				last := l.lastCkptSimMicros.Load()
				if last < 0 {
					return 0
				}
				return float64(l.fed.Now()) - float64(last)/1e6
			})
	}

	// Flight-plane sampling verdicts for the ingest recorder.
	if l.sampled != nil {
		r.CounterFunc("df3_trace_ingest_admitted_total", "ingest requests given a trace",
			nil, func() int64 { return int64(l.sampled.Admitted()) })
		r.CounterFunc("df3_trace_ingest_sampled_out_total", "ingest requests sampled out of tracing",
			nil, func() int64 { return int64(l.sampled.SampledOut()) })
		l.flight.Register(r)
	}
}

// recoveryDuration is the wall time of the last recovery — still ticking
// while one is in progress, 0 when none ever ran.
func (l *Live) recoveryDuration() time.Duration {
	if d := l.recoveryDurNs.Load(); d > 0 {
		return time.Duration(d)
	}
	if start := l.recoveryStartNs.Load(); start > 0 {
		return time.Duration(l.clock.Now().UnixNano() - start)
	}
	return 0
}

// Start launches the session on its own goroutine: crash recovery first
// (when configured), then the paced drive. Readiness flips to serving
// only after recovery verifies; a recovery failure stops the session
// without serving (see RecoverErr).
func (l *Live) Start() {
	go func() {
		defer close(l.done)
		defer l.health.set(StateStopped)
		if err := l.recover(); err != nil {
			l.recoverMu.Lock()
			l.recoverErr = err
			l.recoverMu.Unlock()
			return
		}
		if l.cfg.CheckpointEvery > 0 {
			l.nextCkpt = l.fed.Now() + l.cfg.CheckpointEvery
		}
		l.health.set(StateServing)
		l.fed.Run(l.cfg.Horizon)
	}()
}

// recover replays the recovered WAL through the batch driver and verifies
// the recovered checkpoint. Runs on the driver goroutine before paced
// serving begins; the federation temporarily loses its paced driver so
// the replay is pure batch fast-forward.
func (l *Live) recover() error {
	if len(l.cfg.Resume) == 0 && l.cfg.VerifySnapshot == nil {
		return nil
	}
	l.recoveryStartNs.Store(l.clock.Now().UnixNano())
	defer func() {
		l.recoveryDurNs.Store(l.clock.Now().UnixNano() - l.recoveryStartNs.Load())
	}()
	l.fed.Driver = nil
	defer func() { l.fed.Driver = l.paced }()
	n := l.cfg.VerifyAfter
	if n < 0 || n > len(l.cfg.Resume) {
		return fmt.Errorf("recover: VerifyAfter %d outside resume log of %d records", n, len(l.cfg.Resume))
	}
	l.replayCounted(l.cfg.Resume[:n])
	if s := l.cfg.VerifySnapshot; s != nil {
		if err := checkpoint.Verify(l.fed, s, l.cfg.BuildConfig); err != nil {
			return fmt.Errorf("recover: %w", err)
		}
	}
	l.replayCounted(l.cfg.Resume[n:])
	l.queue.ResumeAt(l.cfg.ResumeSeq)
	return nil
}

// replayCounted is ReplayRecords with per-record progress accounting, so
// the recovery gauges show replay advancing while /metrics itself is
// still 503ing (df3top reads them through the final exposition or the
// flight plane's unsynced endpoints once serving).
func (l *Live) replayCounted(recs []ArrivalRecord) {
	for _, rec := range recs {
		if rec.Kind == "advance" {
			l.fed.Run(rec.At)
		} else {
			applyArrival(l.fed, rec, nil, nil)
		}
		l.recoveryReplayed.Add(1)
	}
}

// RecoverErr reports why recovery failed, once Done is closed without the
// session ever becoming ready.
func (l *Live) RecoverErr() error {
	l.recoverMu.Lock()
	defer l.recoverMu.Unlock()
	return l.recoverErr
}

// writeCheckpoint captures and durably writes one checkpoint. Called on
// the driver goroutine with the engine quiescent (OnAdvance, or Sync via
// Snapshot). Failures are counted, not fatal: the WAL remains the source
// of truth and an older checkpoint still bounds recovery time.
func (l *Live) writeCheckpoint() {
	snap, err := l.capture()
	if err == nil {
		_, err = checkpoint.WriteAtomic(l.cfg.CheckpointDir, snap)
	}
	if err != nil {
		l.ckptErrors.Inc()
		return
	}
	l.ckptWrites.Inc()
	l.lastCkptSimMicros.Store(int64(float64(l.fed.Now()) * 1e6))
}

// capture fsyncs the WAL and seals the federation state into a snapshot.
// Engine must be quiescent.
func (l *Live) capture() (*checkpoint.Snapshot, error) {
	var off int64
	if l.logw != nil {
		var err error
		if off, err = l.logw.Sync(); err != nil {
			return nil, err
		}
	}
	return checkpoint.Capture(l.fed, checkpoint.Meta{
		NextSeq:   l.queue.NextSeq(),
		WALOffset: off,
		Horizon:   l.cfg.Horizon,
	}, l.cfg.BuildConfig), nil
}

// Snapshot captures the live session quiescent at a slice boundary,
// implementing checkpoint.Snapshotter.
func (l *Live) Snapshot() (*checkpoint.Snapshot, error) {
	var snap *checkpoint.Snapshot
	var err error
	l.paced.Sync(func() { snap, err = l.capture() })
	return snap, err
}

// Stop closes the ingest plane, halts the driver after its current slice,
// waits for it, and flushes the arrival log. Idempotent.
func (l *Live) Stop() error {
	l.queue.Close()
	l.paced.Stop()
	<-l.done
	if l.logw != nil {
		return l.logw.Flush()
	}
	return nil
}

// Done reports driver completion (horizon reached or stopped).
func (l *Live) Done() <-chan struct{} { return l.done }

// Ready is closed when recovery has finished and serving begun.
func (l *Live) Ready() <-chan struct{} { return l.health.Ready() }

// State reports the lifecycle state (recovering, serving, stopped).
func (l *Live) State() string { return l.health.get() }

// Federation returns the driven federation (read it only via Sync while
// the driver runs).
func (l *Live) Federation() *city.Federation { return l.fed }

// Sync runs fn quiescent at a slice boundary (see sim.Paced.Sync).
func (l *Live) Sync(fn func()) { l.paced.Sync(fn) }

// Registry returns the federation registry carrying the ingest series.
func (l *Live) Registry() *metrics.Registry { return l.reg }

// ingestResult is the per-request answer a live client gets back.
type ingestResult struct {
	Outcome   string  `json:"outcome"`
	Escalated bool    `json:"escalated,omitempty"`
	Attempts  int     `json:"attempts,omitempty"`
	Tasks     int     `json:"tasks,omitempty"`
	SimLatS   float64 `json:"sim_latency_s"`
	WallMs    float64 `json:"wall_ms"`
	Seq       uint64  `json:"seq,omitempty"`
}

// statusOf maps an ingest verdict to its HTTP status.
func statusOf(outcome string) int {
	switch outcome {
	case outcomeShed:
		return http.StatusTooManyRequests
	case outcomeClosed:
		return http.StatusServiceUnavailable
	case outcomeTimeout:
		return http.StatusGatewayTimeout
	default:
		return http.StatusOK
	}
}

// ingest admits, injects and awaits one arrival. rec must already be
// validated. Returns the settled (or shed/timed-out) result.
func (l *Live) ingest(rec ArrivalRecord) ingestResult {
	class := ClassEdge
	if rec.Kind == "dcc" {
		class = ClassDCC
	}
	if !l.adm.Admit(class) {
		l.requests[class][outcomeShed].Inc()
		return ingestResult{Outcome: outcomeShed}
	}
	start := l.clock.Now()
	ch := make(chan ingestResult, 1)
	// span is the request's flight-recorder root: begun on the driver
	// goroutine when the arrival applies, ended (possibly from a shard
	// worker — Sampled serialises) when the outcome settles. spanAt is
	// the begin time, so the end lands at spanAt + SimLatency without
	// reading a mid-window clock. Zero span (sampled out, tracing off)
	// makes every call below a no-op.
	var span trace.SpanID
	var spanAt sim.Time
	onEdge := func(o core.EdgeOutcome) {
		// Shard-worker context (or driver goroutine on 1 shard). Release
		// before reporting so a waiting spike slot frees at the simulated
		// settle instant. Everything touched here is concurrency-safe.
		l.adm.Release(ClassEdge)
		verdict := outcomeServed
		if !o.Served {
			verdict = outcomeRejected
		}
		l.requests[ClassEdge][verdict].Inc()
		l.simHist[ClassEdge].Observe(float64(o.SimLatency))
		l.sampled.EndSpanDetail(spanAt+o.SimLatency, span, verdict)
		ch <- ingestResult{
			Outcome:   verdict,
			Escalated: o.Escalated,
			Attempts:  o.Attempts,
			SimLatS:   float64(o.SimLatency),
		}
	}
	onDCC := func(o core.DCCOutcome) {
		l.adm.Release(ClassDCC)
		verdict := outcomeDone
		if !o.Done {
			verdict = outcomeLost
		}
		l.requests[ClassDCC][verdict].Inc()
		l.simHist[ClassDCC].Observe(float64(o.SimLatency))
		l.sampled.EndSpanDetail(spanAt+o.SimLatency, span, verdict)
		ch <- ingestResult{
			Outcome: verdict,
			Tasks:   o.Tasks,
			SimLatS: float64(o.SimLatency),
		}
	}
	seq, ok := l.queue.Inject(func(seq uint64) {
		rec.Seq = seq
		rec.At = float64(l.fed.Now())
		if l.logw != nil {
			l.logw.write(rec)
		}
		spanAt = l.fed.Now()
		span = l.sampled.BeginRoot(spanAt, "ingest:"+rec.Kind, class, rec.Tenant, seq+1)
		applyArrival(l.fed, rec, onEdge, onDCC)
	})
	if !ok {
		l.adm.Release(class)
		l.requests[class][outcomeClosed].Inc()
		return ingestResult{Outcome: outcomeClosed}
	}
	timer := time.NewTimer(l.cfg.IngestTimeout)
	defer timer.Stop()
	select {
	case res := <-ch:
		wall := l.clock.Now().Sub(start)
		res.WallMs = wall.Seconds() * 1e3
		res.Seq = seq
		l.wallHist[class].Observe(wall.Seconds())
		return res
	case <-timer.C:
		// The request stays in the simulation; its slot frees when the
		// outcome eventually settles. Only the HTTP wait gives up.
		l.requests[class][outcomeTimeout].Inc()
		return ingestResult{Outcome: outcomeTimeout, Seq: seq}
	}
}

// ---------------------------------------------------------------------------
// HTTP front end
// ---------------------------------------------------------------------------

// LiveServer is the HTTP face of a Live session: per-request ingest on
// /v1/edge and /v1/dcc, streaming NDJSON ingest on /v1/ingest, and the
// metrics surface, all behind the hardening wrapper.
type LiveServer struct {
	live    *Live
	handler http.Handler
}

// NewLiveServer builds the live mux.
func NewLiveServer(l *Live) *LiveServer {
	s := &LiveServer{live: l}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/edge", s.postEdge)
	mux.HandleFunc("POST /v1/dcc", s.postDCC)
	mux.HandleFunc("POST /v1/ingest", s.postIngest)
	mux.HandleFunc("GET /metrics", s.getPrometheus)
	mux.HandleFunc("GET /v1/metrics", s.getSummary)
	mux.HandleFunc("GET /v1/traces", s.getTraces)
	mux.HandleFunc("GET /healthz", s.getHealth)
	mux.HandleFunc("GET /readyz", s.getReady)
	s.handler = harden(mux)
	return s
}

// ServeHTTP implements http.Handler.
func (s *LiveServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// postEdge ingests one edge request and answers with its real outcome.
func (s *LiveServer) postEdge(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Tenant     uint64  `json:"tenant"`
		WorkS      float64 `json:"work_s"`
		DeadlineS  float64 `json:"deadline_s"`
		InputBytes float64 `json:"input_bytes"`
	}
	if !decodeJSON(w, r, &body) {
		return
	}
	rec := ArrivalRecord{
		Kind: "edge", Tenant: body.Tenant, WorkS: body.WorkS,
		DeadlineS: body.DeadlineS, InputBytes: body.InputBytes,
	}
	if err := validateArrival(&rec); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	res := s.live.ingest(rec)
	writeJSON(w, statusOf(res.Outcome), res)
}

// postDCC ingests one batch job and answers when its last task finishes.
func (s *LiveServer) postDCC(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Tenant     uint64    `json:"tenant"`
		FrameWorkS []float64 `json:"frame_work_s"`
	}
	if !decodeJSON(w, r, &body) {
		return
	}
	rec := ArrivalRecord{Kind: "dcc", Tenant: body.Tenant, FrameWorkS: body.FrameWorkS}
	if err := validateArrival(&rec); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	res := s.live.ingest(rec)
	writeJSON(w, statusOf(res.Outcome), res)
}

// postIngest consumes an NDJSON stream of arrivals (each line an edge or
// dcc record) and streams back one NDJSON result per input line, tagged
// with the line index. Lines ingest concurrently — results come back in
// input order, each carrying its own verdict, so one shed line does not
// fail the stream.
func (s *LiveServer) postIngest(w http.ResponseWriter, r *http.Request) {
	type lineResult struct {
		Index int    `json:"index"`
		Error string `json:"error,omitempty"`
		ingestResult
	}
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var (
		wg      sync.WaitGroup
		results []*lineResult
	)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		idx := len(results)
		lr := &lineResult{Index: idx}
		results = append(results, lr)
		var rec ArrivalRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			lr.Error = fmt.Sprintf("bad line: %v", err)
			continue
		}
		if err := validateArrival(&rec); err != nil {
			lr.Error = err.Error()
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			lr.ingestResult = s.live.ingest(rec)
		}()
	}
	scanErr := sc.Err()
	wg.Wait()
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for _, lr := range results {
		_ = enc.Encode(lr)
	}
	if scanErr != nil {
		_ = enc.Encode(map[string]string{"error": fmt.Sprintf("stream: %v", scanErr)})
	}
}

// syncSafe guards the handlers that read simulation state through Sync.
// During recovery the driver goroutine batch-replays the WAL without
// holding the paced mutex, so Sync would race it — those handlers answer
// 503 until serving begins. (Ingest handlers only enqueue and are safe.)
func (s *LiveServer) syncSafe(w http.ResponseWriter) bool {
	if st := s.live.State(); st == StateRecovering {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"error": "recovering", "state": st})
		return false
	}
	return true
}

// getPrometheus scrapes the registry quiescent at a slice boundary. The
// exposition is rendered into memory under the driver mutex and copied to
// the client outside it, so a slow scraper cannot stall the simulation.
func (s *LiveServer) getPrometheus(w http.ResponseWriter, r *http.Request) {
	if !s.syncSafe(w) {
		return
	}
	var buf bytes.Buffer
	var err error
	s.live.Sync(func() { err = s.live.Registry().WritePrometheus(&buf) })
	if err != nil {
		httpError(w, http.StatusInternalServerError, "scrape: %v", err)
		return
	}
	w.Header().Set("Content-Type", contentTypeProm)
	_, _ = w.Write(buf.Bytes())
}

// getTraces streams the flight recorder as NDJSON (one FlightSpan per
// line), or — with ?summary=1 — the online roll-up: per-stage latency
// statistics, the slowest retained root's critical path and per-source
// sampling counters. Deliberately NOT syncSafe-guarded and never touching
// the paced mutex: the flight rings carry their own locks, so recent
// telemetry stays readable mid-slice and during recovery, when /metrics
// is still 503ing.
func (s *LiveServer) getTraces(w http.ResponseWriter, r *http.Request) {
	f := s.live.flight
	if f == nil {
		httpError(w, http.StatusNotFound, "flight recorder not enabled (df3d -flight)")
		return
	}
	if r.URL.Query().Get("summary") != "" {
		writeJSON(w, http.StatusOK, f.Summary())
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = f.WriteNDJSON(w)
}

// getSummary answers the federation's headline counters as JSON, plus
// the determinism checksum a replay or recovered run must reproduce and
// the crash-safety ledgers (checkpoint writes/errors and WAL offsets) so
// live mode exposes the same durability facts the exposition does.
func (s *LiveServer) getSummary(w http.ResponseWriter, r *http.Request) {
	if !s.syncSafe(w) {
		return
	}
	l := s.live
	var sum city.Summary
	var now sim.Time
	var sumHash uint64
	l.Sync(func() {
		sum = l.fed.Summarize()
		now = l.fed.Now()
		sumHash = l.fed.Checksum()
	})
	body := map[string]any{
		"sim_time_s":     float64(now),
		"checksum":       fmt.Sprintf("0x%016x", sumHash),
		"cities":         sum.Cities,
		"edge_submitted": sum.EdgeSubmitted,
		"edge_served":    sum.EdgeServed,
		"jobs_submitted": sum.JobsSubmitted,
		"jobs_done":      sum.JobsDone,
		"jobs_lost":      sum.JobsLost,
		"work_done_s":    sum.WorkDone,
		"events_fired":   sum.EventsFired,
		"checkpoint": map[string]any{
			"writes": l.ckptWrites.Value(),
			"errors": l.ckptErrors.Value(),
			"last_sim_time_s": func() float64 {
				if us := l.lastCkptSimMicros.Load(); us >= 0 {
					return float64(us) / 1e6
				}
				return -1
			}(),
		},
		"recovery": map[string]any{
			"replayed_records": l.recoveryReplayed.Load(),
			"duration_s":       l.recoveryDuration().Seconds(),
		},
	}
	if l.logw != nil {
		written, durable := l.logw.Offsets()
		body["wal"] = map[string]any{
			"written_bytes": written,
			"durable_bytes": durable,
			"lag_bytes":     written - durable,
		}
	}
	writeJSON(w, http.StatusOK, body)
}

// getHealth is the liveness probe: 200 while the session is recovering or
// serving, 503 after the horizon, Stop, or a failed recovery.
func (s *LiveServer) getHealth(w http.ResponseWriter, r *http.Request) {
	state := s.live.State()
	select {
	case <-s.live.Done():
		state = StateStopped
	default:
	}
	var extra map[string]any
	if state == StateServing {
		var now sim.Time
		s.live.Sync(func() { now = s.live.fed.Now() })
		extra = map[string]any{"sim_time_s": float64(now)}
	}
	writeHealth(w, state, extra)
}

// getReady is the readiness probe: 200 only while serving.
func (s *LiveServer) getReady(w http.ResponseWriter, r *http.Request) {
	writeReady(w, s.live.State())
}

// decodeJSON parses a JSON body, answering 400 on malformed input and 413
// when the hardening body cap truncated it.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	err := json.NewDecoder(r.Body).Decode(v)
	if err == nil {
		return true
	}
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		httpError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", mbe.Limit)
		return false
	}
	httpError(w, http.StatusBadRequest, "bad body: %v", err)
	return false
}
