package api

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"df3/internal/checkpoint"
	"df3/internal/city"
	"df3/internal/core"
	"df3/internal/metrics"
	"df3/internal/sim"
)

// LiveConfig parameterises a live serving session.
type LiveConfig struct {
	// Speed is simulated seconds per wall second (default 1: real time).
	Speed float64
	// MaxSlice bounds one paced slice in simulated seconds (default 1).
	MaxSlice sim.Time
	// Tick is the driver's wall poll interval (default 2 ms); it bounds
	// ingest latency when the simulation is caught up with the wall.
	Tick time.Duration
	// IngestTimeout is the wall-clock bound a handler waits for its
	// simulated outcome before answering 504 (default 30 s). The request
	// stays in the simulation; only the HTTP wait gives up.
	IngestTimeout time.Duration
	// Horizon is the paced drive's simulated end (default one year).
	Horizon sim.Time
	// Admission bounds the ingest plane (see AdmissionConfig).
	Admission AdmissionConfig
	// ArrivalLog, when set, receives the NDJSON arrival log that makes
	// the session replayable through ReplayArrivals. When it is an
	// *os.File it doubles as the WAL: checkpoints fsync it and recovery
	// replays it.
	ArrivalLog io.Writer
	// ArrivalLogOffset is the byte length ArrivalLog already holds — the
	// durable prefix a recovered daemon reopened in append mode.
	ArrivalLogOffset int64
	// WALFsyncEach fsyncs the arrival log after every record instead of
	// only at checkpoints, shrinking the acknowledged-but-lost crash
	// window to zero at the cost of one fsync per arrival.
	WALFsyncEach bool
	// Clock substitutes a virtual wall clock in tests (default real).
	Clock sim.Clock

	// BuildConfig is this session's build recipe (caller-opaque JSON),
	// sealed into every checkpoint and matched on restore.
	BuildConfig []byte
	// CheckpointEvery, with CheckpointDir, enables periodic crash-safe
	// checkpoints: one every CheckpointEvery simulated seconds, taken at
	// the first slice boundary past due, WAL fsynced first.
	CheckpointEvery sim.Time
	// CheckpointDir is where checkpoint files are atomically written.
	CheckpointDir string

	// Resume, when non-empty, is the recovered WAL: Start replays it
	// through the batch driver — observably in the "recovering" state,
	// before paced serving begins — so the session continues exactly
	// where the crashed one left off.
	Resume []ArrivalRecord
	// ResumeSeq is the injection sequence to resume numbering at
	// (max(checkpoint NextSeq, highest WAL seq + 1)).
	ResumeSeq uint64
	// VerifySnapshot, when set, is the recovered checkpoint: after
	// replaying the first VerifyAfter Resume records (the prefix the
	// snapshot's WALOffset covers) the rebuilt federation must verify
	// against it bit for bit, or recovery fails rather than fork history.
	VerifySnapshot *checkpoint.Snapshot
	// VerifyAfter is the Resume record count covered by VerifySnapshot.
	VerifyAfter int
}

// Live runs a federation in paced real time behind an ingest plane:
// admission control in front of a thread-safe injection queue, per-request
// outcome callbacks answering HTTP clients, every arrival recorded for
// byte-identical offline replay. One Live owns its federation's Driver.
type Live struct {
	fed    *city.Federation
	cfg    LiveConfig
	queue  *sim.InjectQueue
	paced  *sim.Paced
	adm    *admission
	logw   *arrivalWriter
	clock  sim.Clock
	reg    *metrics.Registry
	done   chan struct{}
	health *healthState

	// nextCkpt is the next checkpoint-due sim time; touched only on the
	// driver goroutine (Start, then OnAdvance under the paced mutex).
	nextCkpt sim.Time

	recoverMu  sync.Mutex
	recoverErr error

	// requests[class][outcome] counts every ingest verdict.
	requests   map[string]map[string]*metrics.SharedCounter
	wallHist   map[string]*metrics.Histogram
	simHist    map[string]*metrics.Histogram
	ckptWrites *metrics.SharedCounter
	ckptErrors *metrics.SharedCounter
}

// Ingest verdicts (the outcome label of df3_ingest_requests_total).
const (
	outcomeServed   = "served"   // edge request completed
	outcomeRejected = "rejected" // edge request terminally rejected in-sim
	outcomeDone     = "done"     // DCC job completed
	outcomeLost     = "lost"     // DCC job lost past the retry budget
	outcomeShed     = "shed"     // admission control refused it (429)
	outcomeTimeout  = "timeout"  // outcome didn't settle within IngestTimeout (504)
	outcomeClosed   = "closed"   // ingest plane shutting down (503)
)

var edgeOutcomes = []string{outcomeServed, outcomeRejected, outcomeShed, outcomeTimeout, outcomeClosed}
var dccOutcomes = []string{outcomeDone, outcomeLost, outcomeShed, outcomeTimeout, outcomeClosed}

// NewLive wires a live session around a built federation. The federation
// must not be running; NewLive installs the paced driver.
func NewLive(f *city.Federation, cfg LiveConfig) *Live {
	if cfg.IngestTimeout <= 0 {
		cfg.IngestTimeout = 30 * time.Second
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 365 * 24 * sim.Hour
	}
	clock := cfg.Clock
	if clock == nil {
		clock = sim.WallClock{}
	}
	l := &Live{
		fed:    f,
		cfg:    cfg,
		queue:  sim.NewInjectQueue(),
		clock:  clock,
		done:   make(chan struct{}),
		health: newHealthState(StateRecovering),
	}
	l.adm = newAdmission(cfg.Admission, l.queue.Len)
	l.paced = &sim.Paced{
		Speed:    cfg.Speed,
		MaxSlice: cfg.MaxSlice,
		Tick:     cfg.Tick,
		Queue:    l.queue,
		Clock:    cfg.Clock,
	}
	if cfg.ArrivalLog != nil {
		l.logw = newArrivalWriter(cfg.ArrivalLog, cfg.ArrivalLogOffset)
		l.logw.syncEach = cfg.WALFsyncEach
	}
	checkpointing := cfg.CheckpointEvery > 0 && cfg.CheckpointDir != ""
	if l.logw != nil || checkpointing {
		// OnAdvance runs on the driver goroutine under the paced mutex:
		// the engine is quiescent, so both the advance record and a due
		// checkpoint capture a consistent slice boundary. Never call
		// Sync from here — it would self-deadlock on the same mutex.
		l.paced.OnAdvance = func(reached sim.Time) {
			if l.logw != nil {
				l.logw.write(ArrivalRecord{Kind: "advance", At: float64(reached)})
			}
			if checkpointing && reached >= l.nextCkpt {
				l.nextCkpt = reached + cfg.CheckpointEvery
				l.writeCheckpoint()
			}
		}
	}
	f.Driver = l.paced
	l.registerMetrics()
	return l
}

// registerMetrics adds the df3_ingest_* instruments to the federation's
// registry. Shared counters and histograms are concurrency-safe; the
// func-backed series read only the ingest plane's own thread-safe state.
func (l *Live) registerMetrics() {
	r := l.fed.Observability()
	l.reg = r
	l.requests = map[string]map[string]*metrics.SharedCounter{ClassEdge: {}, ClassDCC: {}}
	for _, o := range edgeOutcomes {
		l.requests[ClassEdge][o] = r.Counter("df3_ingest_requests_total",
			"live ingest requests by class and outcome",
			metrics.Labels{"class": ClassEdge, "outcome": o})
	}
	for _, o := range dccOutcomes {
		l.requests[ClassDCC][o] = r.Counter("df3_ingest_requests_total",
			"live ingest requests by class and outcome",
			metrics.Labels{"class": ClassDCC, "outcome": o})
	}
	l.wallHist = map[string]*metrics.Histogram{}
	l.simHist = map[string]*metrics.Histogram{}
	for _, class := range []string{ClassEdge, ClassDCC} {
		class := class
		l.wallHist[class] = r.Histogram("df3_ingest_wall_seconds",
			"wall-clock latency from ingest to settled outcome",
			metrics.Labels{"class": class}, 0.5, 0.9, 0.99)
		l.simHist[class] = r.Histogram("df3_ingest_sim_seconds",
			"simulated latency of settled requests",
			metrics.Labels{"class": class}, 0.5, 0.9, 0.99)
		r.GaugeFunc("df3_ingest_inflight", "admitted requests awaiting their outcome",
			metrics.Labels{"class": class},
			func() float64 { return float64(l.adm.InFlight(class)) })
	}
	r.GaugeFunc("df3_ingest_queue_depth", "injections accepted but not yet drained",
		nil, func() float64 { return float64(l.queue.Len()) })
	l.ckptWrites = r.Counter("df3_checkpoint_writes_total",
		"checkpoints durably written", nil)
	l.ckptErrors = r.Counter("df3_checkpoint_errors_total",
		"checkpoint attempts that failed (WAL sync or write error)", nil)
}

// Start launches the session on its own goroutine: crash recovery first
// (when configured), then the paced drive. Readiness flips to serving
// only after recovery verifies; a recovery failure stops the session
// without serving (see RecoverErr).
func (l *Live) Start() {
	go func() {
		defer close(l.done)
		defer l.health.set(StateStopped)
		if err := l.recover(); err != nil {
			l.recoverMu.Lock()
			l.recoverErr = err
			l.recoverMu.Unlock()
			return
		}
		if l.cfg.CheckpointEvery > 0 {
			l.nextCkpt = l.fed.Now() + l.cfg.CheckpointEvery
		}
		l.health.set(StateServing)
		l.fed.Run(l.cfg.Horizon)
	}()
}

// recover replays the recovered WAL through the batch driver and verifies
// the recovered checkpoint. Runs on the driver goroutine before paced
// serving begins; the federation temporarily loses its paced driver so
// the replay is pure batch fast-forward.
func (l *Live) recover() error {
	if len(l.cfg.Resume) == 0 && l.cfg.VerifySnapshot == nil {
		return nil
	}
	l.fed.Driver = nil
	defer func() { l.fed.Driver = l.paced }()
	n := l.cfg.VerifyAfter
	if n < 0 || n > len(l.cfg.Resume) {
		return fmt.Errorf("recover: VerifyAfter %d outside resume log of %d records", n, len(l.cfg.Resume))
	}
	ReplayRecords(l.fed, l.cfg.Resume[:n])
	if s := l.cfg.VerifySnapshot; s != nil {
		if err := checkpoint.Verify(l.fed, s, l.cfg.BuildConfig); err != nil {
			return fmt.Errorf("recover: %w", err)
		}
	}
	ReplayRecords(l.fed, l.cfg.Resume[n:])
	l.queue.ResumeAt(l.cfg.ResumeSeq)
	return nil
}

// RecoverErr reports why recovery failed, once Done is closed without the
// session ever becoming ready.
func (l *Live) RecoverErr() error {
	l.recoverMu.Lock()
	defer l.recoverMu.Unlock()
	return l.recoverErr
}

// writeCheckpoint captures and durably writes one checkpoint. Called on
// the driver goroutine with the engine quiescent (OnAdvance, or Sync via
// Snapshot). Failures are counted, not fatal: the WAL remains the source
// of truth and an older checkpoint still bounds recovery time.
func (l *Live) writeCheckpoint() {
	snap, err := l.capture()
	if err == nil {
		_, err = checkpoint.WriteAtomic(l.cfg.CheckpointDir, snap)
	}
	if err != nil {
		l.ckptErrors.Inc()
		return
	}
	l.ckptWrites.Inc()
}

// capture fsyncs the WAL and seals the federation state into a snapshot.
// Engine must be quiescent.
func (l *Live) capture() (*checkpoint.Snapshot, error) {
	var off int64
	if l.logw != nil {
		var err error
		if off, err = l.logw.Sync(); err != nil {
			return nil, err
		}
	}
	return checkpoint.Capture(l.fed, checkpoint.Meta{
		NextSeq:   l.queue.NextSeq(),
		WALOffset: off,
		Horizon:   l.cfg.Horizon,
	}, l.cfg.BuildConfig), nil
}

// Snapshot captures the live session quiescent at a slice boundary,
// implementing checkpoint.Snapshotter.
func (l *Live) Snapshot() (*checkpoint.Snapshot, error) {
	var snap *checkpoint.Snapshot
	var err error
	l.paced.Sync(func() { snap, err = l.capture() })
	return snap, err
}

// Stop closes the ingest plane, halts the driver after its current slice,
// waits for it, and flushes the arrival log. Idempotent.
func (l *Live) Stop() error {
	l.queue.Close()
	l.paced.Stop()
	<-l.done
	if l.logw != nil {
		return l.logw.Flush()
	}
	return nil
}

// Done reports driver completion (horizon reached or stopped).
func (l *Live) Done() <-chan struct{} { return l.done }

// Ready is closed when recovery has finished and serving begun.
func (l *Live) Ready() <-chan struct{} { return l.health.Ready() }

// State reports the lifecycle state (recovering, serving, stopped).
func (l *Live) State() string { return l.health.get() }

// Federation returns the driven federation (read it only via Sync while
// the driver runs).
func (l *Live) Federation() *city.Federation { return l.fed }

// Sync runs fn quiescent at a slice boundary (see sim.Paced.Sync).
func (l *Live) Sync(fn func()) { l.paced.Sync(fn) }

// Registry returns the federation registry carrying the ingest series.
func (l *Live) Registry() *metrics.Registry { return l.reg }

// ingestResult is the per-request answer a live client gets back.
type ingestResult struct {
	Outcome   string  `json:"outcome"`
	Escalated bool    `json:"escalated,omitempty"`
	Attempts  int     `json:"attempts,omitempty"`
	Tasks     int     `json:"tasks,omitempty"`
	SimLatS   float64 `json:"sim_latency_s"`
	WallMs    float64 `json:"wall_ms"`
	Seq       uint64  `json:"seq,omitempty"`
}

// statusOf maps an ingest verdict to its HTTP status.
func statusOf(outcome string) int {
	switch outcome {
	case outcomeShed:
		return http.StatusTooManyRequests
	case outcomeClosed:
		return http.StatusServiceUnavailable
	case outcomeTimeout:
		return http.StatusGatewayTimeout
	default:
		return http.StatusOK
	}
}

// ingest admits, injects and awaits one arrival. rec must already be
// validated. Returns the settled (or shed/timed-out) result.
func (l *Live) ingest(rec ArrivalRecord) ingestResult {
	class := ClassEdge
	if rec.Kind == "dcc" {
		class = ClassDCC
	}
	if !l.adm.Admit(class) {
		l.requests[class][outcomeShed].Inc()
		return ingestResult{Outcome: outcomeShed}
	}
	start := l.clock.Now()
	ch := make(chan ingestResult, 1)
	onEdge := func(o core.EdgeOutcome) {
		// Driver goroutine, engine quiescent. Release before reporting so
		// a waiting spike slot frees at the simulated settle instant.
		l.adm.Release(ClassEdge)
		verdict := outcomeServed
		if !o.Served {
			verdict = outcomeRejected
		}
		l.requests[ClassEdge][verdict].Inc()
		l.simHist[ClassEdge].Observe(float64(o.SimLatency))
		ch <- ingestResult{
			Outcome:   verdict,
			Escalated: o.Escalated,
			Attempts:  o.Attempts,
			SimLatS:   float64(o.SimLatency),
		}
	}
	onDCC := func(o core.DCCOutcome) {
		l.adm.Release(ClassDCC)
		verdict := outcomeDone
		if !o.Done {
			verdict = outcomeLost
		}
		l.requests[ClassDCC][verdict].Inc()
		l.simHist[ClassDCC].Observe(float64(o.SimLatency))
		ch <- ingestResult{
			Outcome: verdict,
			Tasks:   o.Tasks,
			SimLatS: float64(o.SimLatency),
		}
	}
	seq, ok := l.queue.Inject(func(seq uint64) {
		rec.Seq = seq
		rec.At = float64(l.fed.Now())
		if l.logw != nil {
			l.logw.write(rec)
		}
		applyArrival(l.fed, rec, onEdge, onDCC)
	})
	if !ok {
		l.adm.Release(class)
		l.requests[class][outcomeClosed].Inc()
		return ingestResult{Outcome: outcomeClosed}
	}
	timer := time.NewTimer(l.cfg.IngestTimeout)
	defer timer.Stop()
	select {
	case res := <-ch:
		wall := l.clock.Now().Sub(start)
		res.WallMs = wall.Seconds() * 1e3
		res.Seq = seq
		l.wallHist[class].Observe(wall.Seconds())
		return res
	case <-timer.C:
		// The request stays in the simulation; its slot frees when the
		// outcome eventually settles. Only the HTTP wait gives up.
		l.requests[class][outcomeTimeout].Inc()
		return ingestResult{Outcome: outcomeTimeout, Seq: seq}
	}
}

// ---------------------------------------------------------------------------
// HTTP front end
// ---------------------------------------------------------------------------

// LiveServer is the HTTP face of a Live session: per-request ingest on
// /v1/edge and /v1/dcc, streaming NDJSON ingest on /v1/ingest, and the
// metrics surface, all behind the hardening wrapper.
type LiveServer struct {
	live    *Live
	handler http.Handler
}

// NewLiveServer builds the live mux.
func NewLiveServer(l *Live) *LiveServer {
	s := &LiveServer{live: l}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/edge", s.postEdge)
	mux.HandleFunc("POST /v1/dcc", s.postDCC)
	mux.HandleFunc("POST /v1/ingest", s.postIngest)
	mux.HandleFunc("GET /metrics", s.getPrometheus)
	mux.HandleFunc("GET /v1/metrics", s.getSummary)
	mux.HandleFunc("GET /healthz", s.getHealth)
	mux.HandleFunc("GET /readyz", s.getReady)
	s.handler = harden(mux)
	return s
}

// ServeHTTP implements http.Handler.
func (s *LiveServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// postEdge ingests one edge request and answers with its real outcome.
func (s *LiveServer) postEdge(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Tenant     uint64  `json:"tenant"`
		WorkS      float64 `json:"work_s"`
		DeadlineS  float64 `json:"deadline_s"`
		InputBytes float64 `json:"input_bytes"`
	}
	if !decodeJSON(w, r, &body) {
		return
	}
	rec := ArrivalRecord{
		Kind: "edge", Tenant: body.Tenant, WorkS: body.WorkS,
		DeadlineS: body.DeadlineS, InputBytes: body.InputBytes,
	}
	if err := validateArrival(&rec); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	res := s.live.ingest(rec)
	writeJSON(w, statusOf(res.Outcome), res)
}

// postDCC ingests one batch job and answers when its last task finishes.
func (s *LiveServer) postDCC(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Tenant     uint64    `json:"tenant"`
		FrameWorkS []float64 `json:"frame_work_s"`
	}
	if !decodeJSON(w, r, &body) {
		return
	}
	rec := ArrivalRecord{Kind: "dcc", Tenant: body.Tenant, FrameWorkS: body.FrameWorkS}
	if err := validateArrival(&rec); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	res := s.live.ingest(rec)
	writeJSON(w, statusOf(res.Outcome), res)
}

// postIngest consumes an NDJSON stream of arrivals (each line an edge or
// dcc record) and streams back one NDJSON result per input line, tagged
// with the line index. Lines ingest concurrently — results come back in
// input order, each carrying its own verdict, so one shed line does not
// fail the stream.
func (s *LiveServer) postIngest(w http.ResponseWriter, r *http.Request) {
	type lineResult struct {
		Index int    `json:"index"`
		Error string `json:"error,omitempty"`
		ingestResult
	}
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var (
		wg      sync.WaitGroup
		results []*lineResult
	)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		idx := len(results)
		lr := &lineResult{Index: idx}
		results = append(results, lr)
		var rec ArrivalRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			lr.Error = fmt.Sprintf("bad line: %v", err)
			continue
		}
		if err := validateArrival(&rec); err != nil {
			lr.Error = err.Error()
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			lr.ingestResult = s.live.ingest(rec)
		}()
	}
	scanErr := sc.Err()
	wg.Wait()
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for _, lr := range results {
		_ = enc.Encode(lr)
	}
	if scanErr != nil {
		_ = enc.Encode(map[string]string{"error": fmt.Sprintf("stream: %v", scanErr)})
	}
}

// syncSafe guards the handlers that read simulation state through Sync.
// During recovery the driver goroutine batch-replays the WAL without
// holding the paced mutex, so Sync would race it — those handlers answer
// 503 until serving begins. (Ingest handlers only enqueue and are safe.)
func (s *LiveServer) syncSafe(w http.ResponseWriter) bool {
	if st := s.live.State(); st == StateRecovering {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"error": "recovering", "state": st})
		return false
	}
	return true
}

// getPrometheus scrapes the registry quiescent at a slice boundary. The
// exposition is rendered into memory under the driver mutex and copied to
// the client outside it, so a slow scraper cannot stall the simulation.
func (s *LiveServer) getPrometheus(w http.ResponseWriter, r *http.Request) {
	if !s.syncSafe(w) {
		return
	}
	var buf bytes.Buffer
	var err error
	s.live.Sync(func() { err = s.live.Registry().WritePrometheus(&buf) })
	if err != nil {
		httpError(w, http.StatusInternalServerError, "scrape: %v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(buf.Bytes())
}

// getSummary answers the federation's headline counters as JSON, plus
// the determinism checksum a replay or recovered run must reproduce.
func (s *LiveServer) getSummary(w http.ResponseWriter, r *http.Request) {
	if !s.syncSafe(w) {
		return
	}
	var sum city.Summary
	var now sim.Time
	var sumHash uint64
	s.live.Sync(func() {
		sum = s.live.fed.Summarize()
		now = s.live.fed.Now()
		sumHash = s.live.fed.Checksum()
	})
	writeJSON(w, http.StatusOK, map[string]any{
		"sim_time_s":     float64(now),
		"checksum":       fmt.Sprintf("0x%016x", sumHash),
		"cities":         sum.Cities,
		"edge_submitted": sum.EdgeSubmitted,
		"edge_served":    sum.EdgeServed,
		"jobs_submitted": sum.JobsSubmitted,
		"jobs_done":      sum.JobsDone,
		"jobs_lost":      sum.JobsLost,
		"work_done_s":    sum.WorkDone,
		"events_fired":   sum.EventsFired,
	})
}

// getHealth is the liveness probe: 200 while the session is recovering or
// serving, 503 after the horizon, Stop, or a failed recovery.
func (s *LiveServer) getHealth(w http.ResponseWriter, r *http.Request) {
	state := s.live.State()
	select {
	case <-s.live.Done():
		state = StateStopped
	default:
	}
	var extra map[string]any
	if state == StateServing {
		var now sim.Time
		s.live.Sync(func() { now = s.live.fed.Now() })
		extra = map[string]any{"sim_time_s": float64(now)}
	}
	writeHealth(w, state, extra)
}

// getReady is the readiness probe: 200 only while serving.
func (s *LiveServer) getReady(w http.ResponseWriter, r *http.Request) {
	writeReady(w, s.live.State())
}

// decodeJSON parses a JSON body, answering 400 on malformed input and 413
// when the hardening body cap truncated it.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	err := json.NewDecoder(r.Body).Decode(v)
	if err == nil {
		return true
	}
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		httpError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", mbe.Limit)
		return false
	}
	httpError(w, http.StatusBadRequest, "bad body: %v", err)
	return false
}
