// Liveness and readiness probes. Both df3d servers expose the pair:
//
//	/healthz — liveness: is the process able to make progress at all?
//	          200 while the driver (or handler plane) is up, 503 once it
//	          has stopped. An orchestrator restarts on sustained failure.
//	/readyz — readiness: should this instance receive traffic *now*?
//	          A recovering daemon is alive but not ready — it answers 503
//	          with state "recovering" until WAL replay and checkpoint
//	          verification finish, which is how load generators and
//	          balancers hold traffic during crash recovery.
//
// Both answer a small JSON body naming the state, so probes double as a
// human diagnostic surface.
package api

import (
	"net/http"
	"sync/atomic"
)

// Serving-plane lifecycle states, in order.
const (
	StateRecovering = "recovering" // replaying WAL / verifying checkpoint
	StateServing    = "serving"    // paced drive running, traffic welcome
	StateStopped    = "stopped"    // horizon reached, Stop called, or recovery failed
)

// healthState is a tiny atomic lifecycle machine shared by the servers.
type healthState struct {
	state atomic.Value // string
	ready chan struct{}
}

func newHealthState(initial string) *healthState {
	h := &healthState{ready: make(chan struct{})}
	h.state.Store(initial)
	if initial == StateServing {
		close(h.ready)
	}
	return h
}

func (h *healthState) get() string { return h.state.Load().(string) }

// set transitions the state; entering StateServing unblocks Ready.
func (h *healthState) set(s string) {
	prev := h.get()
	h.state.Store(s)
	if s == StateServing && prev != StateServing {
		close(h.ready)
	}
}

// Ready is closed when the state first reaches serving.
func (h *healthState) Ready() <-chan struct{} { return h.ready }

// writeHealth answers a liveness probe: alive unless stopped.
func writeHealth(w http.ResponseWriter, state string, extra map[string]any) {
	body := map[string]any{"ok": state != StateStopped, "state": state}
	for k, v := range extra {
		body[k] = v
	}
	code := http.StatusOK
	if state == StateStopped {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

// writeReady answers a readiness probe: ready only while serving.
func writeReady(w http.ResponseWriter, state string) {
	code := http.StatusOK
	if state != StateServing {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{"ready": state == StateServing, "state": state})
}
