package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"df3/internal/city"
)

// liveFederation builds the small two-city federation every live test
// replays against. Identical configs build identical federations — the
// precondition of the checksum comparisons.
func liveFederation() *city.Federation {
	cfg := city.DefaultConfig()
	cfg.Buildings = 2
	cfg.RoomsPerBuilding = 3
	cfg.DatacenterNodes = 2
	return city.BuildFederation(city.FederationConfig{
		Seed: 7, Cities: 2, Shards: 2, City: cfg,
	})
}

// newLiveRig boots a paced live session over an httptest server. Speed is
// high so simulated outcomes settle in wall microseconds.
func newLiveRig(t *testing.T, cfg LiveConfig) (*Live, *httptest.Server) {
	t.Helper()
	if cfg.Speed == 0 {
		cfg.Speed = 20000
	}
	if cfg.MaxSlice == 0 {
		cfg.MaxSlice = 50
	}
	if cfg.Tick == 0 {
		cfg.Tick = 200 * time.Microsecond
	}
	l := NewLive(liveFederation(), cfg)
	ts := httptest.NewServer(NewLiveServer(l))
	t.Cleanup(ts.Close)
	l.Start()
	t.Cleanup(func() { _ = l.Stop() })
	return l, ts
}

// TestLiveServesEdgeOutcome: a live edge request gets a real per-request
// outcome with simulated and wall latency.
func TestLiveServesEdgeOutcome(t *testing.T) {
	_, ts := newLiveRig(t, LiveConfig{})
	var res ingestResult
	resp := postJSON(t, ts.URL+"/v1/edge",
		map[string]any{"tenant": 3, "work_s": 0.05, "deadline_s": 1}, &res)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if res.Outcome != "served" {
		t.Fatalf("outcome %q, want served", res.Outcome)
	}
	if res.SimLatS <= 0 {
		t.Fatalf("sim latency %v, want > 0", res.SimLatS)
	}
}

// TestLiveServesDCCOutcome: a live batch job answers when its last task
// completes, reporting the task count and flow time.
func TestLiveServesDCCOutcome(t *testing.T) {
	_, ts := newLiveRig(t, LiveConfig{})
	var res ingestResult
	resp := postJSON(t, ts.URL+"/v1/dcc",
		map[string]any{"tenant": 1, "frame_work_s": []float64{5, 10, 15}}, &res)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if res.Outcome != "done" || res.Tasks != 3 {
		t.Fatalf("outcome %q tasks %d, want done/3", res.Outcome, res.Tasks)
	}
}

// TestLiveRecordReplayChecksum is the serving plane's determinism
// contract: a paced session's arrival log, replayed through the batch
// driver against an identically built federation, reproduces a
// byte-identical Federation.Checksum.
func TestLiveRecordReplayChecksum(t *testing.T) {
	var logBuf bytes.Buffer
	l, ts := newLiveRig(t, LiveConfig{ArrivalLog: &logBuf})

	// Concurrent live traffic: edge requests and batch jobs across
	// tenants, all waited to settlement.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				tenant := g*100 + i
				body, _ := json.Marshal(map[string]any{
					"tenant": tenant, "work_s": 0.02 + float64(i)*0.01, "deadline_s": 2,
				})
				resp, err := http.Post(ts.URL+"/v1/edge", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("edge post: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			body, _ := json.Marshal(map[string]any{
				"tenant": g, "frame_work_s": []float64{3, 6, 9},
			})
			resp, err := http.Post(ts.URL+"/v1/dcc", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("dcc post: %v", err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}()
	}
	wg.Wait()
	if err := l.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	liveSum := l.Federation().Checksum()
	served := l.Federation().Summarize().EdgeServed
	if served == 0 {
		t.Fatal("live session served nothing; test is vacuous")
	}

	replay := liveFederation()
	if err := ReplayArrivals(replay, bytes.NewReader(logBuf.Bytes())); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if got := replay.Checksum(); got != liveSum {
		t.Fatalf("replay checksum %#x != live %#x (served live %d, replay %d)",
			got, liveSum, served, replay.Summarize().EdgeServed)
	}
}

// TestLiveAdmissionSheds: past the in-flight limit the ingest plane
// answers 429 and counts the shed — the load-shedding acceptance gate.
func TestLiveAdmissionSheds(t *testing.T) {
	// A glacial driver: outcomes never settle during the test, so every
	// admitted request occupies its slot.
	l, ts := newLiveRig(t, LiveConfig{
		Speed: 1e-9, MaxSlice: 1, Tick: time.Millisecond,
		IngestTimeout: 50 * time.Millisecond,
		Admission:     AdmissionConfig{MaxInFlightEdge: 2},
	})
	var mu sync.Mutex
	codes := map[int]int{}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(map[string]any{"tenant": i, "work_s": 0.5})
			resp, err := http.Post(ts.URL+"/v1/edge", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("post: %v", err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			mu.Lock()
			codes[resp.StatusCode]++
			mu.Unlock()
		}()
	}
	wg.Wait()
	if codes[http.StatusTooManyRequests] == 0 {
		t.Fatalf("no 429s under spike: %v", codes)
	}
	if got := l.requests[ClassEdge][outcomeShed].Value(); got == 0 {
		t.Fatal("shed counter stayed zero")
	}
}

// TestLiveNDJSONIngest: the streaming endpoint answers one result per
// input line, in input order, and a malformed line fails alone.
func TestLiveNDJSONIngest(t *testing.T) {
	_, ts := newLiveRig(t, LiveConfig{})
	stream := strings.Join([]string{
		`{"kind":"edge","tenant":1,"work_s":0.02}`,
		`not json`,
		`{"kind":"dcc","tenant":2,"frame_work_s":[2,4]}`,
		`{"kind":"edge","tenant":3,"work_s":-1}`,
	}, "\n")
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/x-ndjson", strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lines []struct {
		Index   int    `json:"index"`
		Error   string `json:"error"`
		Outcome string `json:"outcome"`
		Tasks   int    `json:"tasks"`
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var ln struct {
			Index   int    `json:"index"`
			Error   string `json:"error"`
			Outcome string `json:"outcome"`
			Tasks   int    `json:"tasks"`
		}
		if err := dec.Decode(&ln); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, ln)
	}
	if len(lines) != 4 {
		t.Fatalf("got %d result lines, want 4", len(lines))
	}
	for i, ln := range lines {
		if ln.Index != i {
			t.Fatalf("line %d carries index %d: results out of input order", i, ln.Index)
		}
	}
	if lines[0].Outcome != "served" {
		t.Errorf("line 0 outcome %q, want served", lines[0].Outcome)
	}
	if lines[1].Error == "" || lines[3].Error == "" {
		t.Errorf("malformed lines 1/3 carry no error: %+v", lines)
	}
	if lines[2].Outcome != "done" || lines[2].Tasks != 2 {
		t.Errorf("line 2 = %+v, want done with 2 tasks", lines[2])
	}
}

// TestLiveMetricsExposed: the scrape carries the df3_ingest_* series with
// real counts after traffic.
func TestLiveMetricsExposed(t *testing.T) {
	_, ts := newLiveRig(t, LiveConfig{})
	var res ingestResult
	postJSON(t, ts.URL+"/v1/edge", map[string]any{"tenant": 0, "work_s": 0.02}, &res)
	if res.Outcome != "served" {
		t.Fatalf("outcome %q, want served", res.Outcome)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		`df3_ingest_requests_total{class="edge",outcome="served"} 1`,
		"df3_ingest_wall_seconds",
		"df3_ingest_sim_seconds",
		"df3_ingest_queue_depth",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

// TestLiveConcurrentIngestAndScrape is the -race exercise: handler
// goroutines inject and scrape while the driver runs slices.
func TestLiveConcurrentIngestAndScrape(t *testing.T) {
	_, ts := newLiveRig(t, LiveConfig{})
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if g == 0 {
					resp, err := http.Get(ts.URL + "/metrics")
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
					continue
				}
				body, _ := json.Marshal(map[string]any{"tenant": g*50 + i, "work_s": 0.01})
				resp, err := http.Post(ts.URL+"/v1/edge", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("post: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
}

// TestLiveHealth: healthz flips 200 → 503 across Stop.
func TestLiveHealth(t *testing.T) {
	l, ts := newLiveRig(t, LiveConfig{})
	if resp := getJSON(t, ts.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d while running, want 200", resp.StatusCode)
	}
	if err := l.Stop(); err != nil {
		t.Fatal(err)
	}
	if resp := getJSON(t, ts.URL+"/healthz", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz %d after stop, want 503", resp.StatusCode)
	}
}

// TestHardening table-tests the API-wide error surface on both servers:
// JSON 404s, 405s that keep the mux's Allow header, and the body cap.
func TestHardening(t *testing.T) {
	_, batch, _ := newTestServer(t)
	_, live := newLiveRig(t, LiveConfig{})
	_ = batch

	huge := fmt.Sprintf(`{"tenant":1,"work_s":0.1,"pad":%q}`, strings.Repeat("x", maxBodyBytes+1024))
	cases := []struct {
		name, method, url, body string
		wantStatus              int
		wantAllow               string // substring of the Allow header, "" = don't care
	}{
		{"live unknown route", "GET", live.URL + "/nope", "", http.StatusNotFound, ""},
		{"live wrong method", "GET", live.URL + "/v1/edge", "", http.StatusMethodNotAllowed, "POST"},
		{"live body too large", "POST", live.URL + "/v1/edge", huge, http.StatusRequestEntityTooLarge, ""},
		{"live bad json", "POST", live.URL + "/v1/edge", "{", http.StatusBadRequest, ""},
		{"live missing work", "POST", live.URL + "/v1/edge", `{"tenant":1}`, http.StatusBadRequest, ""},
		{"live bad dcc", "POST", live.URL + "/v1/dcc", `{"tenant":1,"frame_work_s":[]}`, http.StatusBadRequest, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, tc.url, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
				t.Fatalf("Content-Type %q, want application/json", ct)
			}
			var body map[string]any
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatalf("error body is not JSON: %v", err)
			}
			if _, ok := body["error"]; !ok {
				t.Fatalf("error body %v carries no error field", body)
			}
			if tc.wantAllow != "" && !strings.Contains(resp.Header.Get("Allow"), tc.wantAllow) {
				t.Fatalf("Allow header %q does not mention %s", resp.Header.Get("Allow"), tc.wantAllow)
			}
		})
	}
}

// TestHardeningBatchServer: the city control plane gets the same error
// surface as the live plane.
func TestHardeningBatchServer(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp := getJSON(t, ts.URL+"/no/such/route", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("404 Content-Type %q, want JSON", ct)
	}
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs", nil)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status %d, want 405", resp2.StatusCode)
	}
	if allow := resp2.Header.Get("Allow"); !strings.Contains(allow, "POST") {
		t.Fatalf("Allow %q does not offer POST", allow)
	}
}
