package api

import (
	"encoding/json"
	"net/http"
	"strings"
)

// Body caps enforced by the hardening wrapper. The streaming ingest
// endpoint legitimately carries large NDJSON payloads; everything else is
// a small control message.
const (
	maxBodyBytes       = 1 << 20  // 1 MiB
	maxIngestBodyBytes = 64 << 20 // 64 MiB
)

// harden wraps a mux with the API-wide protections: request bodies are
// capped (decodeJSON turns the cap into 413), and the mux's default
// text/plain 404 and 405 error pages are rewritten as JSON bodies — the
// 405's Allow header, which the mux computes from the registered method
// patterns, is preserved.
func harden(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			limit := int64(maxBodyBytes)
			if r.URL.Path == "/v1/ingest" {
				limit = maxIngestBodyBytes
			}
			r.Body = http.MaxBytesReader(w, r.Body, limit)
		}
		next.ServeHTTP(&jsonErrorWriter{ResponseWriter: w}, r)
	})
}

// jsonErrorWriter intercepts non-JSON 404/405 responses (the mux's
// defaults, written through http.Error as text/plain) and substitutes a
// JSON error body. Handler-written JSON errors pass through untouched —
// they set Content-Type before WriteHeader.
type jsonErrorWriter struct {
	http.ResponseWriter
	intercepted bool
	body        string
}

func (j *jsonErrorWriter) WriteHeader(code int) {
	if code == http.StatusNotFound || code == http.StatusMethodNotAllowed {
		ct := j.Header().Get("Content-Type")
		if !strings.HasPrefix(ct, "application/json") {
			j.intercepted = true
			j.body = "not found"
			if code == http.StatusMethodNotAllowed {
				j.body = "method not allowed"
			}
			j.Header().Set("Content-Type", contentTypeJSON)
		}
	}
	j.ResponseWriter.WriteHeader(code)
}

func (j *jsonErrorWriter) Write(p []byte) (int, error) {
	if j.intercepted {
		// Swallow the plain-text page; emit the JSON body exactly once.
		if j.body != "" {
			b, _ := json.Marshal(map[string]string{"error": j.body})
			j.body = ""
			if _, err := j.ResponseWriter.Write(append(b, '\n')); err != nil {
				return 0, err
			}
		}
		return len(p), nil
	}
	return j.ResponseWriter.Write(p)
}
