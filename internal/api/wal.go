// Tolerant arrival-log parsing: the arrival log doubles as df3d's
// write-ahead log, and a crashed process leaves a torn tail — a final line
// cut mid-record, or garbage from a partially flushed buffer. Recovery
// must accept everything durable and discard exactly the tail, never
// panic, and never misread damage as data. ParseArrivalLog is that
// boundary: it walks the NDJSON stream record by record and stops at the
// first incomplete or malformed line, reporting the durable prefix length
// so the caller can truncate the file there and append safely.
package api

import (
	"bytes"
	"encoding/json"
	"sort"

	"df3/internal/city"
)

// ArrivalLog is the tolerant parse of an NDJSON arrival log.
type ArrivalLog struct {
	// Records are the well-formed records of the durable prefix, in log
	// order. Validation defaults (e.g. edge input bytes) are already
	// applied, exactly as replay would apply them.
	Records []ArrivalRecord
	// Ends[i] is the byte offset just past Records[i]'s newline, so a
	// checkpoint's WALOffset maps to a record count via Covered.
	Ends []int64
	// Valid is the length in bytes of the durable, well-formed prefix.
	// Truncating the file to Valid yields a log that reparses with
	// Skipped == 0 and is safe to append to.
	Valid int64
	// Skipped counts the bytes discarded after Valid — the torn or
	// corrupt tail. Zero for a cleanly closed log.
	Skipped int
	// MaxSeq is the highest injection sequence among Records (0 if none
	// carry one). A recovered session resumes numbering past it.
	MaxSeq uint64
}

// ParseArrivalLog parses data tolerantly. It never fails: damage truncates
// the parse at the last complete record before it, and the remainder is
// accounted for in Skipped. An unterminated final line is always treated
// as torn — only a trailing newline proves the record was written whole.
func ParseArrivalLog(data []byte) ArrivalLog {
	var lg ArrivalLog
	off := int64(0)
	for off < int64(len(data)) {
		rest := data[off:]
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			break // unterminated tail
		}
		line := rest[:nl]
		end := off + int64(nl) + 1
		if len(bytes.TrimSpace(line)) == 0 {
			// Blank lines carry nothing but are well-formed NDJSON.
			lg.Valid, off = end, end
			continue
		}
		var rec ArrivalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			break
		}
		if rec.Kind != "advance" {
			if err := validateArrival(&rec); err != nil {
				break
			}
		}
		lg.Records = append(lg.Records, rec)
		lg.Ends = append(lg.Ends, end)
		if rec.Seq > lg.MaxSeq {
			lg.MaxSeq = rec.Seq
		}
		lg.Valid, off = end, end
	}
	lg.Skipped = len(data) - int(lg.Valid)
	return lg
}

// Covered returns how many records lie entirely within the first n bytes
// of the log — the records a checkpoint with WALOffset == n has already
// incorporated.
func (lg *ArrivalLog) Covered(n int64) int {
	return sort.Search(len(lg.Ends), func(i int) bool { return lg.Ends[i] > n })
}

// ReplayRecords applies parsed arrival records to a federation under the
// batch driver: advance records become Run calls, arrivals become direct
// submissions, in log order. Outcome callbacks are nil — replay observes
// nothing, which is what keeps it byte-identical to the live run.
func ReplayRecords(f *city.Federation, recs []ArrivalRecord) {
	for _, rec := range recs {
		if rec.Kind == "advance" {
			f.Run(rec.At)
			continue
		}
		applyArrival(f, rec, nil, nil)
	}
}
