package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"df3/internal/city"
	"df3/internal/metrics"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server, *city.City) {
	t.Helper()
	cfg := city.DefaultConfig()
	cfg.Buildings = 2
	cfg.RoomsPerBuilding = 3
	cfg.DatacenterNodes = 2
	c := city.Build(cfg)
	s := NewServer(c)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts, c
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func postJSON(t *testing.T, url string, body any, out any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func TestListResources(t *testing.T) {
	_, ts, _ := newTestServer(t)
	var res []Resource
	resp := getJSON(t, ts.URL+"/v1/resources", &res)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	// 6 heaters + 2 datacenter nodes.
	if len(res) != 8 {
		t.Fatalf("%d resources", len(res))
	}
	classes := map[string]int{}
	for _, r := range res {
		classes[r.Class]++
		if r.Name == "" || r.Cores == 0 {
			t.Errorf("malformed resource %+v", r)
		}
	}
	if classes["heater"] != 6 || classes["datacenter"] != 2 {
		t.Errorf("class split %v", classes)
	}
}

func TestGetResource(t *testing.T) {
	_, ts, c := newTestServer(t)
	name := c.HeaterFleet.Machines[0].Name
	var r Resource
	resp := getJSON(t, ts.URL+"/v1/resources/"+name, &r)
	if resp.StatusCode != 200 || r.Name != name {
		t.Fatalf("status %d, name %q", resp.StatusCode, r.Name)
	}
	resp = getJSON(t, ts.URL+"/v1/resources/nope", nil)
	if resp.StatusCode != 404 {
		t.Errorf("missing resource -> %d", resp.StatusCode)
	}
}

func TestRoomsAndSetpoint(t *testing.T) {
	_, ts, c := newTestServer(t)
	var rooms []RoomView
	getJSON(t, ts.URL+"/v1/rooms", &rooms)
	if len(rooms) != 6 {
		t.Fatalf("%d rooms", len(rooms))
	}

	// Heating request: pin room 0/0 to 24 °C, advance 12 h, check it warmed.
	resp := postJSON(t, ts.URL+"/v1/rooms/0/0/setpoint",
		map[string]float64{"setpoint_c": 24}, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("setpoint status %d", resp.StatusCode)
	}
	postJSON(t, ts.URL+"/v1/step", map[string]float64{"seconds": 12 * 3600}, nil)
	room := c.Buildings[0].Rooms[0]
	if float64(room.Zone.Temp) < 21.5 {
		t.Errorf("room did not warm toward 24°C: %v", room.Zone.Temp)
	}

	// Validation.
	resp = postJSON(t, ts.URL+"/v1/rooms/0/0/setpoint", map[string]float64{"setpoint_c": 50}, nil)
	if resp.StatusCode != 400 {
		t.Errorf("out-of-range setpoint -> %d", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/v1/rooms/9/9/setpoint", map[string]float64{"setpoint_c": 21}, nil)
	if resp.StatusCode != 404 {
		t.Errorf("missing room -> %d", resp.StatusCode)
	}
}

func TestJobsAndMetrics(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp := postJSON(t, ts.URL+"/v1/jobs",
		map[string]any{"cluster": 0, "frame_work_s": []float64{60, 60, 120}}, nil)
	if resp.StatusCode != 202 {
		t.Fatalf("job status %d", resp.StatusCode)
	}
	postJSON(t, ts.URL+"/v1/step", map[string]float64{"seconds": 3600}, nil)
	var m Metrics
	getJSON(t, ts.URL+"/v1/metrics", &m)
	if m.DCCJobsDone != 1 {
		t.Errorf("jobs done = %d", m.DCCJobsDone)
	}
	if m.DCCCoreHours <= 0 {
		t.Errorf("core hours = %v", m.DCCCoreHours)
	}
	if m.SimTime < 3600 {
		t.Errorf("sim time = %v", m.SimTime)
	}
	if m.FleetPUE < 1 {
		t.Errorf("PUE = %v", m.FleetPUE)
	}
}

func TestJobValidation(t *testing.T) {
	_, ts, _ := newTestServer(t)
	cases := []map[string]any{
		{"cluster": 99, "frame_work_s": []float64{1}},
		{"cluster": 0, "frame_work_s": []float64{}},
		{"cluster": 0, "frame_work_s": []float64{-5}},
	}
	for i, body := range cases {
		resp := postJSON(t, ts.URL+"/v1/jobs", body, nil)
		if resp.StatusCode == 202 {
			t.Errorf("case %d accepted invalid job", i)
		}
	}
}

func TestEdgeInjection(t *testing.T) {
	_, ts, _ := newTestServer(t)
	for _, direct := range []bool{false, true} {
		resp := postJSON(t, ts.URL+"/v1/edge", map[string]any{
			"building": 0, "device": 1, "work_s": 0.05, "deadline_s": 0.5,
			"direct": direct,
		}, nil)
		if resp.StatusCode != 202 {
			t.Fatalf("edge status %d", resp.StatusCode)
		}
	}
	postJSON(t, ts.URL+"/v1/step", map[string]float64{"seconds": 10}, nil)
	var m Metrics
	getJSON(t, ts.URL+"/v1/metrics", &m)
	if m.EdgeServed != 2 {
		t.Errorf("edge served = %d", m.EdgeServed)
	}
	if m.EdgeMissRate != 0 {
		t.Errorf("miss rate = %v", m.EdgeMissRate)
	}
}

func TestClustersView(t *testing.T) {
	_, ts, _ := newTestServer(t)
	var cs []ClusterView
	getJSON(t, ts.URL+"/v1/clusters", &cs)
	if len(cs) != 2 {
		t.Fatalf("%d clusters", len(cs))
	}
	for _, c := range cs {
		if c.Workers != 3 || c.FreeSlots == 0 {
			t.Errorf("cluster view %+v", c)
		}
	}
}

func TestStepValidation(t *testing.T) {
	_, ts, _ := newTestServer(t)
	for _, secs := range []float64{0, -5, 400 * 24 * 3600} {
		resp := postJSON(t, ts.URL+"/v1/step", map[string]float64{"seconds": secs}, nil)
		if resp.StatusCode != 400 {
			t.Errorf("step %v accepted with %d", secs, resp.StatusCode)
		}
	}
}

func TestStepAdvancesHeatingAutonomously(t *testing.T) {
	// The ROC promise of §IV: "basic services delivered by the resources
	// (heat for instance) will continue to be delivered even if there are
	// problems in the central point" — heating progresses with no job or
	// request traffic at all.
	_, ts, c := newTestServer(t)
	before := c.Engine.Fired()
	postJSON(t, ts.URL+"/v1/step", map[string]float64{"seconds": 6 * 3600}, nil)
	if c.Engine.Fired() == before {
		t.Error("no events fired: heating loops not running")
	}
	var rooms []RoomView
	getJSON(t, ts.URL+"/v1/rooms", &rooms)
	for _, r := range rooms {
		if r.TempC < 15 || r.TempC > 28 {
			t.Errorf("room b%d-r%d at %v°C after autonomous run", r.Building, r.Room, r.TempC)
		}
	}
}

func TestConcurrentReadsAreSafe(t *testing.T) {
	// The mutex must serialise concurrent HTTP clients (the engine is
	// single-threaded); hammer reads and steps concurrently.
	_, ts, _ := newTestServer(t)
	done := make(chan error, 20)
	for i := 0; i < 10; i++ {
		go func() {
			_, err := http.Get(ts.URL + "/v1/metrics")
			done <- err
		}()
		go func() {
			buf := bytes.NewReader([]byte(`{"seconds": 60}`))
			_, err := http.Post(ts.URL+"/v1/step", "application/json", buf)
			done <- err
		}()
	}
	for i := 0; i < 20; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func ExampleServer() {
	cfg := city.DefaultConfig()
	cfg.Buildings = 1
	cfg.RoomsPerBuilding = 2
	s := NewServer(city.Build(cfg))
	req := httptest.NewRequest("GET", "/v1/clusters", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var cs []ClusterView
	_ = json.NewDecoder(rec.Body).Decode(&cs)
	fmt.Println(len(cs), "cluster with", cs[0].Workers, "workers")
	// Output: 1 cluster with 2 workers
}

func TestContentEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t)
	// Two requests for the same object: the second hits the lazy cache.
	for i := 0; i < 2; i++ {
		resp := postJSON(t, ts.URL+"/v1/content",
			map[string]any{"building": 0, "device": 0, "id": 7, "bytes": 20000}, nil)
		if resp.StatusCode != 202 {
			t.Fatalf("content status %d", resp.StatusCode)
		}
		postJSON(t, ts.URL+"/v1/step", map[string]float64{"seconds": 5}, nil)
	}
	var m Metrics
	getJSON(t, ts.URL+"/v1/metrics", &m)
	if m.ContentServed != 2 {
		t.Errorf("content served = %d", m.ContentServed)
	}
	if m.ContentHitRate != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", m.ContentHitRate)
	}
	if m.OriginBytes != 20000 {
		t.Errorf("origin bytes = %v, want one fetch", m.OriginBytes)
	}
}

func TestContentEndpointValidation(t *testing.T) {
	_, ts, _ := newTestServer(t)
	cases := []map[string]any{
		{"building": 9, "device": 0, "id": 1, "bytes": 100},
		{"building": 0, "device": 9, "id": 1, "bytes": 100},
		{"building": 0, "device": 0, "id": 1, "bytes": 0},
	}
	for i, body := range cases {
		if resp := postJSON(t, ts.URL+"/v1/content", body, nil); resp.StatusCode == 202 {
			t.Errorf("case %d accepted invalid content request", i)
		}
	}
}

func TestPrometheusEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t)
	// Move some counters so the scrape shows live values.
	postJSON(t, ts.URL+"/v1/edge", map[string]any{
		"building": 0, "device": 1, "work_s": 0.05, "deadline_s": 0.5,
	}, nil)
	postJSON(t, ts.URL+"/v1/step", map[string]float64{"seconds": 60}, nil)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	series, err := metrics.ParsePrometheus(resp.Body)
	if err != nil {
		t.Fatalf("parse exposition: %v", err)
	}
	for _, want := range []string{
		"df3_sim_time_seconds",
		"df3_kernel_events_fired_total",
		"df3_edge_submitted_total",
		"df3_edge_served_total",
		"df3_dcc_jobs_submitted_total",
		"df3_faults_machine_outages_total",
		`df3_fleet_capacity_cores{fleet="all"}`,
		`df3_edge_latency_seconds{quantile="0.99"}`,
		`df3_cluster_edge_queue{cluster="0"}`,
		"df3_dc_pool_free_slots",
	} {
		if _, ok := series[want]; !ok {
			t.Errorf("series %s missing from scrape", want)
		}
	}
	if series["df3_edge_submitted_total"] < 1 {
		t.Errorf("edge submitted = %v", series["df3_edge_submitted_total"])
	}
	if series["df3_sim_time_seconds"] < 60 {
		t.Errorf("sim time = %v", series["df3_sim_time_seconds"])
	}
	if series["df3_kernel_events_fired_total"] <= 0 {
		t.Errorf("events fired = %v", series["df3_kernel_events_fired_total"])
	}

	// A second scrape must reuse the cached registry (no duplicate
	// registration panic) and reflect further simulated time.
	postJSON(t, ts.URL+"/v1/step", map[string]float64{"seconds": 60}, nil)
	resp2, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	series2, err := metrics.ParsePrometheus(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if series2["df3_sim_time_seconds"] <= series["df3_sim_time_seconds"] {
		t.Errorf("scrape not live: %v -> %v",
			series["df3_sim_time_seconds"], series2["df3_sim_time_seconds"])
	}
}

func TestMetricsJSONLedgerFields(t *testing.T) {
	// The JSON endpoint must expose the full submission/retry/fault ledger,
	// not just the outcome counters.
	_, ts, _ := newTestServer(t)
	postJSON(t, ts.URL+"/v1/edge", map[string]any{
		"building": 0, "device": 0, "work_s": 0.05, "deadline_s": 0.5,
	}, nil)
	postJSON(t, ts.URL+"/v1/step", map[string]float64{"seconds": 10}, nil)
	var raw map[string]any
	getJSON(t, ts.URL+"/v1/metrics", &raw)
	for _, key := range []string{
		"edge_submitted", "edge_retries", "edge_timed_out",
		"dcc_jobs_submitted", "dcc_jobs_lost", "dcc_submit_retries",
		"link_outages", "gateway_outages", "messages_lost",
	} {
		if _, ok := raw[key]; !ok {
			t.Errorf("field %q missing from /v1/metrics", key)
		}
	}
	var m Metrics
	getJSON(t, ts.URL+"/v1/metrics", &m)
	if m.EdgeSubmitted != 1 || m.EdgeSubmitted != m.EdgeServed+m.EdgeRejected {
		t.Errorf("ledger does not balance: submitted %d served %d rejected %d",
			m.EdgeSubmitted, m.EdgeServed, m.EdgeRejected)
	}
}
