package api

import (
	"sync"
	"testing"
)

// TestAdmissionExactLimit: the in-flight cap is exact — admit up to the
// limit, shed the next, admit again after one release — and the classes
// are independent ledgers.
func TestAdmissionExactLimit(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxInFlightEdge: 3, MaxInFlightDCC: 1}, nil)
	for i := 0; i < 3; i++ {
		if !a.Admit(ClassEdge) {
			t.Fatalf("edge admit %d refused below the limit", i)
		}
	}
	if a.Admit(ClassEdge) {
		t.Fatal("edge admit at the limit accepted")
	}
	if !a.Admit(ClassDCC) {
		t.Fatal("dcc refused while edge is full: classes not independent")
	}
	if a.Admit(ClassDCC) {
		t.Fatal("dcc admitted past its own limit")
	}
	a.Release(ClassEdge)
	if got := a.InFlight(ClassEdge); got != 2 {
		t.Fatalf("inflight %d after release, want 2", got)
	}
	if !a.Admit(ClassEdge) {
		t.Fatal("edge refused after a slot freed")
	}
}

// TestAdmissionQueueCap: a queue depth at (or past) MaxQueue sheds every
// class, one below admits — the boundary is exact.
func TestAdmissionQueueCap(t *testing.T) {
	depth := 0
	a := newAdmission(AdmissionConfig{MaxQueue: 8}, func() int { return depth })
	for _, tc := range []struct {
		depth int
		want  bool
	}{
		{7, true}, {8, false}, {9, false}, {0, true},
	} {
		depth = tc.depth
		if got := a.Admit(ClassEdge); got != tc.want {
			t.Fatalf("depth %d: admit = %v, want %v", tc.depth, got, tc.want)
		}
		if got := a.Admit(ClassDCC); got != tc.want {
			t.Fatalf("depth %d: dcc admit = %v, want %v", tc.depth, got, tc.want)
		}
		for a.InFlight(ClassEdge) > 0 {
			a.Release(ClassEdge)
		}
		for a.InFlight(ClassDCC) > 0 {
			a.Release(ClassDCC)
		}
	}
}

// TestAdmissionReleaseFloor: a spurious release cannot drive the ledger
// negative and open phantom capacity.
func TestAdmissionReleaseFloor(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxInFlightEdge: 1}, nil)
	a.Release(ClassEdge)
	if got := a.InFlight(ClassEdge); got != 0 {
		t.Fatalf("inflight %d after spurious release, want 0", got)
	}
	if !a.Admit(ClassEdge) {
		t.Fatal("admit refused at zero in-flight")
	}
	if a.Admit(ClassEdge) {
		t.Fatal("limit 1 admitted twice")
	}
}

// TestAdmissionConcurrent hammers admit/release from many goroutines (the
// -race exercise) and checks the ledger never exceeds the limit and drains
// to exactly zero.
func TestAdmissionConcurrent(t *testing.T) {
	const limit = 16
	a := newAdmission(AdmissionConfig{MaxInFlightEdge: limit}, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if a.Admit(ClassEdge) {
					if got := a.InFlight(ClassEdge); got > limit {
						t.Errorf("inflight %d exceeds limit %d", got, limit)
					}
					a.Release(ClassEdge)
				}
			}
		}()
	}
	wg.Wait()
	if got := a.InFlight(ClassEdge); got != 0 {
		t.Fatalf("ledger did not drain: %d in flight", got)
	}
}
