package api

import "sync"

// AdmissionConfig bounds the live ingest plane. A request that would push a
// class past its in-flight limit, or the injection queue past MaxQueue, is
// shed with 429 instead of admitted — load-shedding at the front door, so
// the paced engine never accumulates an unbounded backlog it can only burn
// down by falling behind the wall clock.
type AdmissionConfig struct {
	// MaxInFlightEdge caps concurrently admitted edge requests (waiting
	// for injection or for their simulated outcome). 0 = default 4096.
	MaxInFlightEdge int
	// MaxInFlightDCC caps concurrently admitted batch jobs. 0 = default 256.
	MaxInFlightDCC int
	// MaxQueue caps the injection queue depth (arrivals accepted but not
	// yet drained into the engine). 0 = default 16384.
	MaxQueue int
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.MaxInFlightEdge == 0 {
		c.MaxInFlightEdge = 4096
	}
	if c.MaxInFlightDCC == 0 {
		c.MaxInFlightDCC = 256
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 16384
	}
	return c
}

// Admission classes.
const (
	ClassEdge = "edge"
	ClassDCC  = "dcc"
)

// admission is the per-class in-flight ledger. Admit/Release run on handler
// goroutines and the driver goroutine; one small mutex serialises them —
// the critical section is two integer ops, so contention at 10k req/s is
// noise next to the HTTP stack.
type admission struct {
	mu       sync.Mutex
	limits   map[string]int
	inflight map[string]int
	queueCap int
	queueLen func() int
}

func newAdmission(cfg AdmissionConfig, queueLen func() int) *admission {
	cfg = cfg.withDefaults()
	return &admission{
		limits: map[string]int{
			ClassEdge: cfg.MaxInFlightEdge,
			ClassDCC:  cfg.MaxInFlightDCC,
		},
		inflight: map[string]int{},
		queueCap: cfg.MaxQueue,
		queueLen: queueLen,
	}
}

// Admit reserves an in-flight slot for class, or reports shed=false when
// the class is at its limit or the injection queue is full.
func (a *admission) Admit(class string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.inflight[class] >= a.limits[class] {
		return false
	}
	if a.queueLen != nil && a.queueLen() >= a.queueCap {
		return false
	}
	a.inflight[class]++
	return true
}

// Release returns an admitted slot.
func (a *admission) Release(class string) {
	a.mu.Lock()
	if a.inflight[class] > 0 {
		a.inflight[class]--
	}
	a.mu.Unlock()
}

// InFlight returns the current admitted count for class.
func (a *admission) InFlight(class string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inflight[class]
}
