package api

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"df3/internal/checkpoint"
)

// postEdgeOK submits one edge request and requires a settled 200.
func postEdgeOK(t *testing.T, url string, tenant int) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"tenant": tenant, "work_s": 0.02, "deadline_s": 2})
	resp, err := http.Post(url+"/v1/edge", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("edge post: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("edge post status %d", resp.StatusCode)
	}
}

// TestLiveCrashRecoveryChecksum is the in-process twin of the chaos e2e:
// a live session checkpoints while serving and "crashes" leaving a torn
// WAL tail; a second session recovers (truncate tail, load checkpoint,
// replay WAL, verify) and keeps serving; the recovered state is proven
// equivalent by replaying the stitched WAL offline and comparing
// federation checksums.
func TestLiveCrashRecoveryChecksum(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "arrivals.ndjson")
	ckptDir := filepath.Join(dir, "checkpoints")
	if err := os.MkdirAll(ckptDir, 0o755); err != nil {
		t.Fatal(err)
	}
	recipe := []byte(`{"seed":7,"cities":2,"shards":2}`)

	// Session 1: serve with periodic checkpoints until one lands.
	walF, err := os.Create(walPath)
	if err != nil {
		t.Fatal(err)
	}
	l1, ts1 := newLiveRig(t, LiveConfig{
		ArrivalLog:      walF,
		BuildConfig:     recipe,
		CheckpointEvery: 100, // sim seconds ≈ 5 ms wall at speed 20000
		CheckpointDir:   ckptDir,
	})
	for i := 0; l1.ckptWrites.Value() == 0; i++ {
		if i >= 2000 {
			t.Fatal("no checkpoint written")
		}
		postEdgeOK(t, ts1.URL, i)
		time.Sleep(time.Millisecond)
	}
	// Traffic past the checkpoint, so recovery has a WAL suffix to replay.
	for i := 0; i < 5; i++ {
		postEdgeOK(t, ts1.URL, 1000+i)
	}
	if err := l1.Stop(); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	// The crash: a torn final record on the WAL.
	tail, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tail.WriteString(`{"kind":"edge","at":99,"wo`); err != nil {
		t.Fatal(err)
	}
	tail.Close()

	// Recovery protocol, as df3d runs it.
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	lg := ParseArrivalLog(raw)
	if lg.Skipped == 0 {
		t.Fatal("torn tail not detected")
	}
	snap, _, _, err := checkpoint.Latest(ckptDir)
	if err != nil {
		t.Fatalf("latest checkpoint: %v", err)
	}
	if snap.Meta.WALOffset > lg.Valid {
		t.Fatalf("checkpoint covers %d WAL bytes but only %d are durable", snap.Meta.WALOffset, lg.Valid)
	}
	if err := os.Truncate(walPath, lg.Valid); err != nil {
		t.Fatal(err)
	}
	walF2, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	resumeSeq := snap.Meta.NextSeq
	if lg.MaxSeq+1 > resumeSeq {
		resumeSeq = lg.MaxSeq + 1
	}
	l2, ts2 := newLiveRig(t, LiveConfig{
		ArrivalLog:       walF2,
		ArrivalLogOffset: lg.Valid,
		BuildConfig:      recipe,
		CheckpointEvery:  100,
		CheckpointDir:    ckptDir,
		Resume:           lg.Records,
		VerifyAfter:      lg.Covered(snap.Meta.WALOffset),
		VerifySnapshot:   snap,
		ResumeSeq:        resumeSeq,
	})
	select {
	case <-l2.Ready():
	case <-l2.Done():
		t.Fatalf("recovery failed: %v", l2.RecoverErr())
	case <-time.After(30 * time.Second):
		t.Fatal("recovery never became ready")
	}
	if st := l2.State(); st != StateServing {
		t.Fatalf("state %q after Ready, want serving", st)
	}
	if resp := getJSON(t, ts2.URL+"/readyz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz %d while serving, want 200", resp.StatusCode)
	}
	// Post-recovery traffic proves the plane serves, not just recovers.
	for i := 0; i < 5; i++ {
		postEdgeOK(t, ts2.URL, 2000+i)
	}
	if err := l2.Stop(); err != nil {
		t.Fatal(err)
	}
	recovered := l2.Federation().Checksum()
	if l2.Federation().Summarize().EdgeServed == 0 {
		t.Fatal("recovered session served nothing; equivalence is vacuous")
	}

	// The equivalence bar: the stitched WAL (durable prefix + recovered
	// session's appends), replayed offline, reproduces the recovered state.
	stitched, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	replay := liveFederation()
	if err := ReplayArrivals(replay, bytes.NewReader(stitched)); err != nil {
		t.Fatal(err)
	}
	if got := replay.Checksum(); got != recovered {
		t.Fatalf("stitched replay checksum %#x != recovered live %#x", got, recovered)
	}
}

// TestLiveRecoveryVerifyFailure: a recovery whose rebuilt federation
// diverges from the checkpoint must fail closed — never serve.
func TestLiveRecoveryVerifyFailure(t *testing.T) {
	f := liveFederation()
	f.Run(50)
	snap := checkpoint.Capture(f, checkpoint.Meta{}, []byte("recipe"))

	l := NewLive(liveFederation(), LiveConfig{
		Speed: 20000, MaxSlice: 50, Tick: 200 * time.Microsecond,
		BuildConfig:    []byte("recipe"),
		VerifySnapshot: snap, // no Resume records: rebuilt fed stays at t=0
	})
	l.Start()
	select {
	case <-l.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("failed recovery did not stop the session")
	}
	if err := l.RecoverErr(); err == nil {
		t.Fatal("diverged recovery reported no error")
	}
	if st := l.State(); st != StateStopped {
		t.Fatalf("state %q after failed recovery, want stopped", st)
	}
	select {
	case <-l.Ready():
		t.Fatal("failed recovery became ready")
	default:
	}
}

// TestLiveReadyz: the readiness probe flips recovering → serving →
// stopped across the session lifecycle.
func TestLiveReadyz(t *testing.T) {
	l := NewLive(liveFederation(), LiveConfig{
		Speed: 20000, MaxSlice: 50, Tick: 200 * time.Microsecond,
	})
	srv := NewLiveServer(l)
	rec := func() (int, string) {
		req := httptest.NewRequest("GET", "/readyz", nil)
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, req)
		var body struct {
			State string `json:"state"`
		}
		_ = json.Unmarshal(w.Body.Bytes(), &body)
		return w.Code, body.State
	}
	if code, st := rec(); code != http.StatusServiceUnavailable || st != StateRecovering {
		t.Fatalf("before Start: %d/%q, want 503/recovering", code, st)
	}
	l.Start()
	select {
	case <-l.Ready():
	case <-time.After(30 * time.Second):
		t.Fatal("never ready")
	}
	if code, st := rec(); code != http.StatusOK || st != StateServing {
		t.Fatalf("while serving: %d/%q, want 200/serving", code, st)
	}
	if err := l.Stop(); err != nil {
		t.Fatal(err)
	}
	if code, st := rec(); code != http.StatusServiceUnavailable || st != StateStopped {
		t.Fatalf("after Stop: %d/%q, want 503/stopped", code, st)
	}
}
