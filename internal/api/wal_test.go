package api

import (
	"bytes"
	"encoding/json"
	"testing"
)

// walLines serialises records exactly as arrivalWriter does.
func walLines(t *testing.T, recs ...ArrivalRecord) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, r := range recs {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// TestParseArrivalLogClean: a well-formed log parses whole — no skipped
// bytes, records in order, MaxSeq found.
func TestParseArrivalLogClean(t *testing.T) {
	data := walLines(t,
		ArrivalRecord{Kind: "advance", At: 1},
		ArrivalRecord{Kind: "edge", At: 1, Seq: 3, Tenant: 2, WorkS: 0.5},
		ArrivalRecord{Kind: "dcc", At: 2, Seq: 7, FrameWorkS: []float64{1, 2}},
		ArrivalRecord{Kind: "advance", At: 3},
	)
	lg := ParseArrivalLog(data)
	if lg.Skipped != 0 || lg.Valid != int64(len(data)) {
		t.Fatalf("clean log: valid %d skipped %d, want %d/0", lg.Valid, lg.Skipped, len(data))
	}
	if len(lg.Records) != 4 || lg.MaxSeq != 7 {
		t.Fatalf("records %d maxseq %d, want 4/7", len(lg.Records), lg.MaxSeq)
	}
	if lg.Ends[3] != int64(len(data)) {
		t.Fatalf("last end %d, want %d", lg.Ends[3], len(data))
	}
}

// TestParseArrivalLogTornTail: every way a crash can mangle the tail —
// a line cut mid-record, trailing garbage, a corrupt interior line — is
// truncated to the last complete record, and the reported Valid prefix
// reparses cleanly.
func TestParseArrivalLogTornTail(t *testing.T) {
	good := walLines(t,
		ArrivalRecord{Kind: "advance", At: 1},
		ArrivalRecord{Kind: "edge", At: 1, Seq: 1, Tenant: 2, WorkS: 0.5},
	)
	cases := []struct {
		name string
		tail []byte
	}{
		{"cut mid-record", []byte(`{"kind":"edge","at":2,"se`)},
		{"unterminated valid json", []byte(`{"kind":"advance","at":2}`)}, // no newline: not proven durable
		{"binary garbage", []byte{0x00, 0xff, 0x03, '\n'}},
		{"corrupt line then more", []byte("not json\n" + `{"kind":"advance","at":9}` + "\n")},
		{"invalid arrival", []byte(`{"kind":"edge","at":2,"work_s":-1}` + "\n")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := append(append([]byte(nil), good...), tc.tail...)
			lg := ParseArrivalLog(data)
			if lg.Valid != int64(len(good)) {
				t.Fatalf("valid %d, want %d", lg.Valid, len(good))
			}
			if lg.Skipped != len(tc.tail) {
				t.Fatalf("skipped %d, want %d", lg.Skipped, len(tc.tail))
			}
			if len(lg.Records) != 2 || lg.MaxSeq != 1 {
				t.Fatalf("records %d maxseq %d, want 2/1", len(lg.Records), lg.MaxSeq)
			}
		})
	}
}

// TestParseArrivalLogCovered maps checkpoint WAL offsets to record counts.
func TestParseArrivalLogCovered(t *testing.T) {
	data := walLines(t,
		ArrivalRecord{Kind: "advance", At: 1},
		ArrivalRecord{Kind: "advance", At: 2},
		ArrivalRecord{Kind: "advance", At: 3},
	)
	lg := ParseArrivalLog(data)
	if got := lg.Covered(0); got != 0 {
		t.Fatalf("covered(0) = %d", got)
	}
	if got := lg.Covered(lg.Ends[1]); got != 2 {
		t.Fatalf("covered(end of 2nd) = %d, want 2", got)
	}
	if got := lg.Covered(lg.Ends[1] - 1); got != 1 {
		t.Fatalf("covered(mid 2nd) = %d, want 1", got)
	}
	if got := lg.Covered(int64(len(data)) + 100); got != 3 {
		t.Fatalf("covered(past end) = %d, want 3", got)
	}
}

// FuzzParseArrivalLog: whatever bytes a crash leaves behind, the parser
// never panics, accounts for every byte, and reports a Valid prefix that
// reparses with nothing skipped and identical records.
func FuzzParseArrivalLog(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("\n"))
	f.Add([]byte(`{"kind":"advance","at":1}` + "\n"))
	f.Add([]byte(`{"kind":"edge","at":1,"seq":2,"work_s":0.5}` + "\n" + `{"kind":"edge","at":2,"wo`))
	f.Add([]byte{0x00, 0xff, '\n', '{', '}'})
	f.Fuzz(func(t *testing.T, data []byte) {
		lg := ParseArrivalLog(data)
		if lg.Valid+int64(lg.Skipped) != int64(len(data)) {
			t.Fatalf("valid %d + skipped %d != len %d", lg.Valid, lg.Skipped, len(data))
		}
		if len(lg.Records) != len(lg.Ends) {
			t.Fatalf("%d records, %d ends", len(lg.Records), len(lg.Ends))
		}
		again := ParseArrivalLog(data[:lg.Valid])
		if again.Skipped != 0 {
			t.Fatalf("reparse of valid prefix skipped %d bytes", again.Skipped)
		}
		if len(again.Records) != len(lg.Records) || again.MaxSeq != lg.MaxSeq {
			t.Fatalf("reparse diverged: %d/%d records, maxseq %d/%d",
				len(again.Records), len(lg.Records), again.MaxSeq, lg.MaxSeq)
		}
	})
}
