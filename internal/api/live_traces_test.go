package api

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"df3/internal/obs"
)

// readBody drains and closes a response body, returning it as a string.
func readBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestLiveTracesNDJSON: with a flight recorder configured, /v1/traces
// streams completed ingest spans as NDJSON and ?summary=1 answers the
// online rollup — all without pausing the paced driver.
func TestLiveTracesNDJSON(t *testing.T) {
	_, ts := newLiveRig(t, LiveConfig{Flight: obs.NewFlight(1024, obs.Policy{})})

	var res ingestResult
	postJSON(t, ts.URL+"/v1/edge",
		map[string]any{"tenant": 3, "work_s": 0.05, "deadline_s": 1}, &res)
	if res.Outcome != "served" {
		t.Fatalf("edge outcome %q, want served", res.Outcome)
	}
	postJSON(t, ts.URL+"/v1/dcc",
		map[string]any{"tenant": 1, "frame_work_s": []float64{5, 10}}, &res)
	if res.Outcome != "done" {
		t.Fatalf("dcc outcome %q, want done", res.Outcome)
	}

	resp, err := http.Get(ts.URL + "/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q, want application/x-ndjson", ct)
	}
	lines := 0
	sawIngest := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var span obs.FlightSpan
		if err := json.Unmarshal(sc.Bytes(), &span); err != nil {
			t.Fatalf("line %d: %v: %s", lines+1, err, sc.Text())
		}
		if span.Src == "" {
			t.Fatalf("line %d: empty src: %s", lines+1, sc.Text())
		}
		sawIngest = sawIngest || span.Src == "ingest"
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("no spans streamed after served traffic")
	}
	if !sawIngest {
		t.Fatal("no span from the ingest recorder in the stream")
	}

	var sum obs.FlightSummary
	resp2 := getJSON(t, ts.URL+"/v1/traces?summary=1", &sum)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("summary status %d, want 200", resp2.StatusCode)
	}
	if sum.Spans == 0 {
		t.Fatal("summary reports zero spans")
	}
	if len(sum.Sinks) == 0 {
		t.Fatal("summary reports no sinks")
	}
	if len(sum.Stages) == 0 {
		t.Fatal("summary reports no stage latencies")
	}
}

// TestLiveTracesDisabled: without -flight the endpoint is an honest 404,
// not an empty stream.
func TestLiveTracesDisabled(t *testing.T) {
	_, ts := newLiveRig(t, LiveConfig{})
	resp, err := http.Get(ts.URL + "/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	if !strings.Contains(body, "flight recorder not enabled") {
		t.Fatalf("body %q should explain how to enable the recorder", body)
	}
}

// TestMetricsContentTypeConsistency: the step and live servers advertise
// the same Content-Type per endpoint — Prometheus exposition on /metrics,
// JSON on /v1/metrics — so scrapers need not care which mode answered.
func TestMetricsContentTypeConsistency(t *testing.T) {
	_, stepTS, _ := newTestServer(t)
	_, liveTS := newLiveRig(t, LiveConfig{})

	for _, tc := range []struct {
		name, url, want string
	}{
		{"step /metrics", stepTS.URL + "/metrics", contentTypeProm},
		{"live /metrics", liveTS.URL + "/metrics", contentTypeProm},
		{"step /v1/metrics", stepTS.URL + "/v1/metrics", contentTypeJSON},
		{"live /v1/metrics", liveTS.URL + "/v1/metrics", contentTypeJSON},
	} {
		resp, err := http.Get(tc.url)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		readBody(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d, want 200", tc.name, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != tc.want {
			t.Errorf("%s: Content-Type %q, want %q", tc.name, ct, tc.want)
		}
	}
}

// TestLiveSummaryLedgers: /v1/metrics carries the crash-safety ledgers —
// checkpoint writes/errors with the -1 "never" sentinel, recovery
// counters, and WAL offsets once an arrival log is configured.
func TestLiveSummaryLedgers(t *testing.T) {
	var logBuf bytes.Buffer
	_, ts := newLiveRig(t, LiveConfig{ArrivalLog: &logBuf})

	var res ingestResult
	postJSON(t, ts.URL+"/v1/edge",
		map[string]any{"tenant": 2, "work_s": 0.05, "deadline_s": 1}, &res)
	if res.Outcome != "served" {
		t.Fatalf("edge outcome %q, want served", res.Outcome)
	}

	var body struct {
		Checkpoint struct {
			Writes       float64 `json:"writes"`
			Errors       float64 `json:"errors"`
			LastSimTimeS float64 `json:"last_sim_time_s"`
		} `json:"checkpoint"`
		Recovery struct {
			ReplayedRecords float64 `json:"replayed_records"`
			DurationS       float64 `json:"duration_s"`
		} `json:"recovery"`
		WAL *struct {
			WrittenBytes float64 `json:"written_bytes"`
			DurableBytes float64 `json:"durable_bytes"`
			LagBytes     float64 `json:"lag_bytes"`
		} `json:"wal"`
	}
	resp := getJSON(t, ts.URL+"/v1/metrics", &body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if body.Checkpoint.Writes != 0 || body.Checkpoint.Errors != 0 {
		t.Fatalf("checkpoint ledger %+v, want zero writes/errors without -checkpoint", body.Checkpoint)
	}
	if body.Checkpoint.LastSimTimeS != -1 {
		t.Fatalf("last_sim_time_s %v, want the -1 never-checkpointed sentinel", body.Checkpoint.LastSimTimeS)
	}
	if body.Recovery.ReplayedRecords != 0 {
		t.Fatalf("replayed_records %v on a fresh boot, want 0", body.Recovery.ReplayedRecords)
	}
	if body.WAL == nil {
		t.Fatal("wal ledger absent despite a configured arrival log")
	}
	if body.WAL.WrittenBytes <= 0 {
		t.Fatalf("wal written_bytes %v after served traffic, want > 0", body.WAL.WrittenBytes)
	}
	if got := body.WAL.WrittenBytes - body.WAL.DurableBytes; body.WAL.LagBytes != got {
		t.Fatalf("wal lag_bytes %v, want written-durable = %v", body.WAL.LagBytes, got)
	}
}

// TestLiveSummaryOmitsWALWithoutLog: no arrival log, no wal object —
// absence, not zeros, marks the feature off.
func TestLiveSummaryOmitsWALWithoutLog(t *testing.T) {
	_, ts := newLiveRig(t, LiveConfig{})
	var body map[string]any
	getJSON(t, ts.URL+"/v1/metrics", &body)
	if _, ok := body["wal"]; ok {
		t.Fatal("wal ledger present without an arrival log")
	}
}
