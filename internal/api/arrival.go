// Arrival logging and replay: the live serving plane's determinism
// contract. A paced run records every external arrival at the simulated
// instant it was applied, plus every Run-slice boundary the driver crossed.
// Replaying the log through the batch driver reproduces the exact same
// sequence of engine calls — injections applied at the same sim times,
// slices cut at the same boundaries — so the replayed federation reaches a
// byte-identical Checksum. Live traffic is thereby auditable offline: any
// production window can be re-executed, instrumented, and diffed.
package api

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"df3/internal/city"
	"df3/internal/core"
	"df3/internal/units"
	"df3/internal/workload"
)

// ArrivalRecord is one line of the NDJSON arrival log.
//
// Kind "advance" marks a driver slice boundary: the engine ran to At. Kind
// "edge" and "dcc" are external arrivals applied while the engine stood at
// At. Record order in the log is application order; replay preserves it.
type ArrivalRecord struct {
	Kind string  `json:"kind"`
	At   float64 `json:"at"`
	// Seq is the injection sequence number (absent on advance records).
	// DCC job IDs derive from it, so replayed jobs carry the same IDs.
	Seq uint64 `json:"seq,omitempty"`
	// Tenant selects the (city, building, device) the arrival lands on.
	Tenant uint64 `json:"tenant,omitempty"`
	// Edge fields.
	WorkS      float64 `json:"work_s,omitempty"`
	DeadlineS  float64 `json:"deadline_s,omitempty"`
	InputBytes float64 `json:"input_bytes,omitempty"`
	// DCC fields.
	FrameWorkS []float64 `json:"frame_work_s,omitempty"`
}

// liveJobBit offsets live-injected DCC job IDs away from scenario
// generators' ID spaces.
const liveJobBit = uint64(1) << 48

// locate maps a tenant id onto the federation topology: city by low
// residue, then building, then device — adjacent tenants spread across
// cities first, the coarsest failure domain.
func locate(f *city.Federation, tenant uint64) (*city.City, *city.Building, *city.Room) {
	nc := uint64(len(f.Cities))
	c := f.Cities[tenant%nc]
	rest := tenant / nc
	nb := uint64(len(c.Buildings))
	b := c.Buildings[rest%nb]
	rest /= nb
	room := b.Rooms[rest%uint64(len(b.Rooms))]
	return c, b, room
}

// validateArrival checks the request fields common to live ingest and
// replay. Topology lookups are immutable after build, so this is safe on
// handler goroutines.
func validateArrival(rec *ArrivalRecord) error {
	switch rec.Kind {
	case "edge":
		if rec.WorkS <= 0 {
			return fmt.Errorf("work_s must be positive")
		}
		if rec.DeadlineS < 0 {
			return fmt.Errorf("deadline_s must be non-negative")
		}
		if rec.InputBytes < 0 {
			return fmt.Errorf("input_bytes must be non-negative")
		}
		if rec.InputBytes == 0 {
			rec.InputBytes = 16e3
		}
	case "dcc":
		if len(rec.FrameWorkS) == 0 {
			return fmt.Errorf("job needs at least one frame")
		}
		for _, w := range rec.FrameWorkS {
			if w <= 0 {
				return fmt.Errorf("frame work must be positive")
			}
		}
	default:
		return fmt.Errorf("unknown arrival kind %q", rec.Kind)
	}
	return nil
}

// applyArrival submits one recorded arrival into the federation. The
// engine must be quiescent (between driver slices, or under the batch
// driver). Outcome callbacks are pure observation, so live (with
// callbacks) and replay (nil callbacks) drive identical simulations.
func applyArrival(f *city.Federation, rec ArrivalRecord, onEdge func(core.EdgeOutcome), onDCC func(core.DCCOutcome)) {
	c, b, room := locate(f, rec.Tenant)
	switch rec.Kind {
	case "edge":
		req := workload.EdgeRequest{
			Work:     rec.WorkS,
			Deadline: rec.DeadlineS,
			Input:    units.Byte(rec.InputBytes),
			Output:   200,
			Device:   room.Index,
		}
		c.MW.SubmitEdgeOutcome(b.Cluster, room.Node, req, onEdge)
	case "dcc":
		job := workload.BatchJob{
			ID:       liveJobBit | rec.Seq,
			TaskWork: rec.FrameWorkS,
			Input:    5e6, Output: 2e6,
		}
		c.MW.SubmitDCCOutcome(b.Cluster, c.Operator, job, onDCC)
	}
}

// arrivalWriter serialises records to an NDJSON stream and tracks the
// absolute byte offset of the log, so a checkpoint can seal exactly how
// much of the WAL it covers. Live writes all happen on the driver
// goroutine, but Flush/Sync (shutdown, checkpoints) come from other
// paths, so a mutex guards the buffer.
type arrivalWriter struct {
	mu      sync.Mutex
	w       io.Writer // underlying sink, for fsync
	bw      *bufio.Writer
	off     int64 // absolute log length including buffered bytes
	durable int64 // absolute length known fsynced — off−durable is the crash-loss window
	err     error
	// syncEach makes every record durable as it is written — zero
	// acknowledged-but-lost window, one fsync per arrival.
	syncEach bool
}

// newArrivalWriter wraps w. base is the byte offset w already holds —
// non-zero when a recovered daemon reopened its log in append mode (a
// reopened prefix is durable by definition: recovery just replayed it).
func newArrivalWriter(w io.Writer, base int64) *arrivalWriter {
	return &arrivalWriter{w: w, bw: bufio.NewWriter(w), off: base, durable: base}
}

// Offsets reports (written, durable) byte offsets — the live WAL lag
// gauges. Written includes buffered bytes; durable is the last fsynced
// length.
func (a *arrivalWriter) Offsets() (written, durable int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.off, a.durable
}

func (a *arrivalWriter) write(rec ArrivalRecord) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.err != nil {
		return
	}
	b, err := json.Marshal(rec)
	if err != nil {
		a.err = err
		return
	}
	b = append(b, '\n')
	if _, err := a.bw.Write(b); err != nil {
		a.err = err
		return
	}
	a.off += int64(len(b))
	if a.syncEach {
		if a.flushLocked() != nil {
			return
		}
		if s, ok := a.w.(interface{ Sync() error }); ok {
			a.err = s.Sync()
		}
		if a.err == nil {
			a.durable = a.off
		}
	}
}

// Flush drains the buffer and reports the first write error, if any.
func (a *arrivalWriter) Flush() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.flushLocked()
}

func (a *arrivalWriter) flushLocked() error {
	if a.err != nil {
		return a.err
	}
	a.err = a.bw.Flush()
	return a.err
}

// Sync flushes and, when the sink supports it (an *os.File), fsyncs —
// making everything written so far durable. It returns the durable log
// length, the WALOffset a checkpoint taken now must record.
func (a *arrivalWriter) Sync() (int64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.flushLocked(); err != nil {
		return a.off, err
	}
	if s, ok := a.w.(interface{ Sync() error }); ok {
		if err := s.Sync(); err != nil {
			a.err = err
			return a.off, err
		}
	}
	a.durable = a.off
	return a.off, nil
}

// ReplayArrivals re-executes a recorded arrival log against a freshly
// built federation under the batch driver: advance records become Run
// calls, arrival records become direct submissions. Given the same
// FederationConfig the replayed run is byte-identical to the live one —
// compare Federation.Checksum.
//
// Parsing is tolerant (ParseArrivalLog): a torn or corrupt tail — the
// normal residue of a crash — is skipped, and the durable prefix replays.
// Callers that need the skipped byte count parse the log themselves.
func ReplayArrivals(f *city.Federation, r io.Reader) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("arrival log: %w", err)
	}
	lg := ParseArrivalLog(data)
	ReplayRecords(f, lg.Records)
	return nil
}
