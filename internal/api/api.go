// Package api exposes a DF3 city as a resource-oriented HTTP interface —
// the §IV vision: "RESTful APIs were introduced for defining uniform
// resource interfaces ... in order to transform the design of distributed
// middlewares into the problem of automatically composing resource
// functions" [19][20]. Every physical resource (machine, room, cluster)
// is addressable; its functions (heat, compute, forward) are verbs on it.
//
// The server drives a deterministic simulation, so time is a resource
// too: clients advance it explicitly with POST /v1/step. All handlers
// serialise on one mutex — the engine is single-threaded by design.
package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"df3/internal/city"
	"df3/internal/regulator"
	"df3/internal/server"
	"df3/internal/sim"
	"df3/internal/units"
	"df3/internal/workload"
)

// Server is the ROC control plane over one city scenario.
type Server struct {
	mu      sync.Mutex
	city    *city.City
	mux     *http.ServeMux
	handler http.Handler
}

// NewServer wraps a built city.
func NewServer(c *city.City) *Server {
	s := &Server{city: c, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /v1/resources", s.listResources)
	s.mux.HandleFunc("GET /v1/resources/{name}", s.getResource)
	s.mux.HandleFunc("GET /v1/rooms", s.listRooms)
	s.mux.HandleFunc("POST /v1/rooms/{building}/{room}/setpoint", s.setSetpoint)
	s.mux.HandleFunc("GET /v1/clusters", s.listClusters)
	s.mux.HandleFunc("GET /v1/metrics", s.getMetrics)
	s.mux.HandleFunc("GET /metrics", s.getPrometheus)
	s.mux.HandleFunc("POST /v1/jobs", s.postJob)
	s.mux.HandleFunc("POST /v1/edge", s.postEdge)
	s.mux.HandleFunc("POST /v1/content", s.postContent)
	s.mux.HandleFunc("POST /v1/step", s.postStep)
	s.mux.HandleFunc("GET /healthz", s.getHealth)
	s.mux.HandleFunc("GET /readyz", s.getReady)
	s.handler = harden(s.mux)
	return s
}

// getHealth is the step server's liveness probe. The step plane is
// synchronous — if the handler runs, the simulation can make progress —
// so it is alive and serving for the life of the process.
func (s *Server) getHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	now := s.city.Engine.Now()
	s.mu.Unlock()
	writeHealth(w, StateServing, map[string]any{"sim_time_s": now})
}

// getReady is the step server's readiness probe: always ready (the step
// plane has no recovery phase).
func (s *Server) getReady(w http.ResponseWriter, r *http.Request) {
	writeReady(w, StateServing)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// Canonical Content-Type values, shared by the step and live servers so
// the two planes answer identically for the same endpoint shape.
const (
	contentTypeJSON = "application/json; charset=utf-8"
	contentTypeProm = "text/plain; version=0.0.4; charset=utf-8"
)

// writeJSON emits v with status 200 (or the given code).
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", contentTypeJSON)
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// Resource is the uniform view of one machine.
type Resource struct {
	Name     string  `json:"name"`
	Class    string  `json:"class"` // heater | boiler | datacenter
	Cores    int     `json:"cores"`
	Capacity float64 `json:"capacity"`
	BudgetW  float64 `json:"budget_w"`
	DrawW    float64 `json:"draw_w"`
	HeatW    float64 `json:"heat_w"`
	Offline  bool    `json:"offline"`
	Tasks    int     `json:"tasks"`
}

// resources builds the full resource list.
func (s *Server) resources() []Resource {
	var out []Resource
	for _, m := range s.city.HeaterFleet.Machines {
		out = append(out, machineResource("heater", m))
	}
	for _, m := range s.city.BoilerFleet.Machines {
		out = append(out, machineResource("boiler", m))
	}
	for _, m := range s.city.DCFleet.Machines {
		out = append(out, machineResource("datacenter", m))
	}
	return out
}

func (s *Server) listResources(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	writeJSON(w, http.StatusOK, s.resources())
}

func (s *Server) getResource(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	name := r.PathValue("name")
	for _, res := range s.resources() {
		if res.Name == name {
			writeJSON(w, http.StatusOK, res)
			return
		}
	}
	httpError(w, http.StatusNotFound, "no resource %q", name)
}

// RoomView is the uniform view of one heated space.
type RoomView struct {
	Building  int     `json:"building"`
	Room      int     `json:"room"`
	TempC     float64 `json:"temp_c"`
	SetpointC float64 `json:"setpoint_c"`
	Occupied  bool    `json:"occupied"`
	InBand    float64 `json:"comfort_in_band"`
	HasHeater bool    `json:"has_heater"`
}

func (s *Server) listRooms(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.city.Engine.Now()
	var out []RoomView
	for _, room := range s.city.Rooms() {
		sp, occ := room.Schedule.At(now)
		out = append(out, RoomView{
			Building:  room.Building,
			Room:      room.Index,
			TempC:     float64(room.Zone.Temp),
			SetpointC: float64(sp),
			Occupied:  occ,
			InBand:    room.Comfort.InBandFraction(),
			HasHeater: room.Worker != nil,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// setSetpoint is the heating-request flow (§II-C, individual request): it
// pins the room's schedule to a constant target.
func (s *Server) setSetpoint(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var body struct {
		SetpointC float64 `json:"setpoint_c"`
	}
	if !decodeJSON(w, r, &body) {
		return
	}
	if body.SetpointC < 5 || body.SetpointC > 30 {
		httpError(w, http.StatusBadRequest, "setpoint %v out of range [5,30]", body.SetpointC)
		return
	}
	room, ok := s.room(r.PathValue("building"), r.PathValue("room"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such room")
		return
	}
	sched := regulator.ConstantSchedule(units.Celsius(body.SetpointC))
	room.Schedule = sched
	if room.Loop != nil {
		room.Loop.Schedule = sched
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "setpoint_c": body.SetpointC})
}

// room resolves path indices.
func (s *Server) room(b, r string) (*city.Room, bool) {
	var bi, ri int
	if _, err := fmt.Sscanf(b, "%d", &bi); err != nil {
		return nil, false
	}
	if _, err := fmt.Sscanf(r, "%d", &ri); err != nil {
		return nil, false
	}
	if bi < 0 || bi >= len(s.city.Buildings) {
		return nil, false
	}
	rooms := s.city.Buildings[bi].Rooms
	if ri < 0 || ri >= len(rooms) {
		return nil, false
	}
	return rooms[ri], true
}

// ClusterView summarises one Fig. 5 cluster.
type ClusterView struct {
	ID           int     `json:"id"`
	Workers      int     `json:"workers"`
	FreeSlots    int     `json:"free_slots"`
	EdgeQueue    int     `json:"edge_queue"`
	DCCQueue     int     `json:"dcc_queue"`
	CoopDebt     int64   `json:"coop_debt"`
	ForwardedIn  int64   `json:"forwarded_in"`
	ForwardedOut int64   `json:"forwarded_out"`
	Capacity     float64 `json:"capacity"`
}

func (s *Server) listClusters(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []ClusterView
	for _, c := range s.city.MW.Clusters() {
		free, capacity := 0, 0.0
		for _, wk := range c.Workers() {
			free += wk.FreeSlots()
			capacity += wk.M.Capacity()
		}
		out = append(out, ClusterView{
			ID: c.ID, Workers: len(c.Workers()), FreeSlots: free,
			EdgeQueue: c.EdgeQueueLen(), DCCQueue: c.DCCQueueLen(),
			CoopDebt: c.CoopDebt(), ForwardedIn: c.ForwardedIn(),
			ForwardedOut: c.ForwardedOut(), Capacity: capacity,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// Metrics is the platform-wide flow snapshot.
type Metrics struct {
	SimTime       float64 `json:"sim_time_s"`
	EdgeSubmitted int64   `json:"edge_submitted"`
	EdgeServed    int64   `json:"edge_served"`
	EdgeRejected  int64   `json:"edge_rejected"`
	EdgeRetries   int64   `json:"edge_retries"`
	EdgeTimedOut  int64   `json:"edge_timed_out"`
	EdgeMissRate  float64 `json:"edge_miss_rate"`
	EdgeP99Ms     float64 `json:"edge_p99_ms"`
	DCCJobsDone   int64   `json:"dcc_jobs_done"`
	DCCSubmitted  int64   `json:"dcc_jobs_submitted"`
	DCCJobsLost   int64   `json:"dcc_jobs_lost"`
	DCCRetries    int64   `json:"dcc_submit_retries"`
	DCCCoreHours  float64 `json:"dcc_core_hours"`
	FleetCapacity float64 `json:"fleet_capacity"`
	FleetPUE      float64 `json:"fleet_pue"`
	// Fault-injection ledger.
	Outages        int64 `json:"outages"`
	LinkOutages    int64 `json:"link_outages"`
	GatewayOutages int64 `json:"gateway_outages"`
	MessagesLost   int64 `json:"messages_lost"`
	// Content-delivery flow (zero unless a cache is enabled).
	ContentServed  int64   `json:"content_served"`
	ContentHitRate float64 `json:"content_hit_rate"`
	OriginBytes    float64 `json:"content_origin_bytes"`
}

func (s *Server) getMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.city
	writeJSON(w, http.StatusOK, Metrics{
		SimTime:        c.Engine.Now(),
		EdgeSubmitted:  c.MW.Edge.Submitted.Value(),
		EdgeServed:     c.MW.Edge.Served.Value(),
		EdgeRejected:   c.MW.Edge.Rejected.Value(),
		EdgeRetries:    c.MW.Edge.Retries.Value(),
		EdgeTimedOut:   c.MW.Edge.TimedOut.Value(),
		EdgeMissRate:   c.MW.Edge.MissRate(),
		EdgeP99Ms:      c.MW.Edge.Latency.P99() * 1000,
		DCCJobsDone:    c.MW.DCC.JobsDone.Value(),
		DCCSubmitted:   c.MW.DCC.JobsSubmitted.Value(),
		DCCJobsLost:    c.MW.DCC.JobsLost.Value(),
		DCCRetries:     c.MW.DCC.SubmitRetries.Value(),
		DCCCoreHours:   c.MW.DCC.WorkDone / 3600,
		FleetCapacity:  c.Fleet.Capacity(),
		FleetPUE:       c.Fleet.PUE(c.Engine.Now()),
		Outages:        c.Outages.Value(),
		LinkOutages:    c.LinkOutages.Value(),
		GatewayOutages: c.GatewayOutages.Value(),
		MessagesLost:   c.MessagesLost.Value(),
		ContentServed:  c.MW.Content.Served.Value(),
		ContentHitRate: c.MW.Content.HitRate(),
		OriginBytes:    c.MW.Content.OriginBytes,
	})
}

// getPrometheus serves the city's registry in the Prometheus text
// exposition format, the scrape-friendly twin of the JSON /v1/metrics.
// Func-backed instruments read live simulation state, so the scrape
// serialises on the server mutex like every other handler.
func (s *Server) getPrometheus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w.Header().Set("Content-Type", contentTypeProm)
	_ = s.city.Observability().WritePrometheus(w)
}

// postContent requests a content object (§II-A map serving). The gateway
// cache must have been enabled when the daemon scenario was built; the
// handler enables a 64 MB default lazily on first use otherwise.
func (s *Server) postContent(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var body struct {
		Building int     `json:"building"`
		Device   int     `json:"device"`
		ID       uint64  `json:"id"`
		Bytes    float64 `json:"bytes"`
	}
	if !decodeJSON(w, r, &body) {
		return
	}
	if body.Building < 0 || body.Building >= len(s.city.Buildings) {
		httpError(w, http.StatusNotFound, "no building %d", body.Building)
		return
	}
	b := s.city.Buildings[body.Building]
	if body.Device < 0 || body.Device >= len(b.Rooms) {
		httpError(w, http.StatusNotFound, "no device %d", body.Device)
		return
	}
	if body.Bytes <= 0 {
		httpError(w, http.StatusBadRequest, "bytes must be positive")
		return
	}
	if b.Cluster.ContentCacheOf() == nil {
		s.city.MW.EnableContentCache(64*units.MB, s.city.DCNode)
	}
	s.city.MW.SubmitContent(b.Cluster, b.Rooms[body.Device].Node, body.ID, units.Byte(body.Bytes))
	writeJSON(w, http.StatusAccepted, map[string]any{"ok": true})
}

// postJob submits a DCC job (the Internet-computing flow).
func (s *Server) postJob(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var body struct {
		Cluster   int       `json:"cluster"`
		FrameWork []float64 `json:"frame_work_s"`
	}
	if !decodeJSON(w, r, &body) {
		return
	}
	if body.Cluster < 0 || body.Cluster >= len(s.city.Buildings) {
		httpError(w, http.StatusNotFound, "no cluster %d", body.Cluster)
		return
	}
	if len(body.FrameWork) == 0 {
		httpError(w, http.StatusBadRequest, "job needs at least one frame")
		return
	}
	for _, f := range body.FrameWork {
		if f <= 0 {
			httpError(w, http.StatusBadRequest, "frame work must be positive")
			return
		}
	}
	b := s.city.Buildings[body.Cluster]
	job := workload.BatchJob{
		ID:       uint64(s.city.MW.DCC.JobsDone.Value()) + 1_000_000,
		TaskWork: body.FrameWork,
		Input:    5e6, Output: 2e6,
	}
	s.city.MW.SubmitDCC(b.Cluster, s.city.Operator, job)
	writeJSON(w, http.StatusAccepted, map[string]any{"ok": true, "frames": len(body.FrameWork)})
}

// postEdge injects a local edge request (the third flow).
func (s *Server) postEdge(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var body struct {
		Building   int     `json:"building"`
		Device     int     `json:"device"`
		WorkS      float64 `json:"work_s"`
		DeadlineS  float64 `json:"deadline_s"`
		Direct     bool    `json:"direct"`
		InputBytes float64 `json:"input_bytes"`
	}
	if !decodeJSON(w, r, &body) {
		return
	}
	if body.Building < 0 || body.Building >= len(s.city.Buildings) {
		httpError(w, http.StatusNotFound, "no building %d", body.Building)
		return
	}
	b := s.city.Buildings[body.Building]
	if body.Device < 0 || body.Device >= len(b.Rooms) {
		httpError(w, http.StatusNotFound, "no device %d", body.Device)
		return
	}
	if body.WorkS <= 0 {
		httpError(w, http.StatusBadRequest, "work must be positive")
		return
	}
	if body.InputBytes <= 0 {
		body.InputBytes = 16e3
	}
	room := b.Rooms[body.Device]
	req := workload.EdgeRequest{
		Work:     body.WorkS,
		Deadline: body.DeadlineS,
		Input:    units.Byte(body.InputBytes),
		Output:   200,
		Device:   body.Device,
	}
	if body.Direct && room.Worker != nil {
		s.city.MW.SubmitEdgeDirect(b.Cluster, room.Node, room.Worker, req)
	} else {
		s.city.MW.SubmitEdge(b.Cluster, room.Node, req)
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"ok": true})
}

// postStep advances simulated time.
func (s *Server) postStep(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var body struct {
		Seconds float64 `json:"seconds"`
	}
	if !decodeJSON(w, r, &body) {
		return
	}
	if body.Seconds <= 0 || body.Seconds > 366*24*3600 {
		httpError(w, http.StatusBadRequest, "seconds must be in (0, 1 year]")
		return
	}
	//df3:allow(lockedblock) s.mu serializes all sim access by design; engine callbacks never re-enter the server
	s.city.Engine.Run(s.city.Engine.Now() + sim.Time(body.Seconds))
	writeJSON(w, http.StatusOK, map[string]any{"sim_time_s": s.city.Engine.Now()})
}

// machineResource adapts a machine to the uniform Resource view.
func machineResource(class string, m *server.Machine) Resource {
	return Resource{
		Name:     m.Name,
		Class:    class,
		Cores:    m.Cores,
		Capacity: m.Capacity(),
		BudgetW:  float64(m.Budget()),
		DrawW:    float64(m.Draw()),
		HeatW:    float64(m.HeatOutput()),
		Offline:  m.Offline(),
		Tasks:    m.AssignedTasks(),
	}
}
