package pricing

import (
	"math"
	"testing"

	"df3/internal/sim"
)

func TestTariffRates(t *testing.T) {
	tf := ResidentialTariff(sim.JanuaryStart)
	// Monday 12:00 = peak; Monday 03:00 = off-peak; Saturday 12:00 = off-peak.
	if got := tf.Rate(12 * sim.Hour); got != tf.Peak {
		t.Errorf("weekday noon rate = %v", got)
	}
	if got := tf.Rate(3 * sim.Hour); got != tf.OffPeak {
		t.Errorf("night rate = %v", got)
	}
	if got := tf.Rate(5*sim.Day + 12*sim.Hour); got != tf.OffPeak {
		t.Errorf("weekend rate = %v", got)
	}
}

func TestTariffOrdering(t *testing.T) {
	cal := sim.JanuaryStart
	res, ind := ResidentialTariff(cal), IndustrialTariff(cal)
	if ind.Peak >= res.Peak || ind.OffPeak >= res.OffPeak {
		t.Error("industrial tariff should undercut residential")
	}
}

func TestCostMeterFlatDraw(t *testing.T) {
	tf := ResidentialTariff(sim.JanuaryStart)
	var m CostMeter
	m.Tariff = tf
	// 1 kW from 02:00 to 04:00 Monday: 2 kWh at off-peak.
	m.Update(2*sim.Hour, 1000)
	m.Flush(4 * sim.Hour)
	want := 2 * tf.OffPeak
	if math.Abs(m.Cost()-want) > 1e-9 {
		t.Errorf("cost = %v, want %v", m.Cost(), want)
	}
}

func TestCostMeterCrossesPeakBoundary(t *testing.T) {
	tf := ResidentialTariff(sim.JanuaryStart)
	var m CostMeter
	m.Tariff = tf
	// 1 kW from 06:00 to 08:00 Monday: one off-peak and one peak hour.
	m.Update(6*sim.Hour, 1000)
	m.Flush(8 * sim.Hour)
	want := tf.OffPeak + tf.Peak
	if math.Abs(m.Cost()-want) > 1e-9 {
		t.Errorf("cost = %v, want %v", m.Cost(), want)
	}
}

func TestCostMeterVaryingDraw(t *testing.T) {
	tf := ResidentialTariff(sim.JanuaryStart)
	var m CostMeter
	m.Tariff = tf
	m.Update(0, 500)         // 0.5 kW for 1 h off-peak
	m.Update(sim.Hour, 2000) // 2 kW for 1 h off-peak
	m.Flush(2 * sim.Hour)    //
	want := (0.5 + 2) * tf.OffPeak
	if math.Abs(m.Cost()-want) > 1e-9 {
		t.Errorf("cost = %v, want %v", m.Cost(), want)
	}
}

func TestPnL(t *testing.T) {
	p := PnL{ComputeRevenue: 100, HeatCredit: 40, ElectricityCost: 60, Penalties: 10}
	if p.Net() != 70 {
		t.Errorf("net = %v", p.Net())
	}
}

func TestHeatCreditValue(t *testing.T) {
	// 3.6 MJ = 1 kWh at 0.2 €/kWh = 0.20 €.
	if got := HeatCreditValue(3.6e6, 0.2); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("credit = %v", got)
	}
}
