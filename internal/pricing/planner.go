package pricing

import "fmt"

// Planner turns a capacity forecast into assured-tier promises — the
// §III-C/§IV loop: the operator predicts how much compute the heat demand
// will sustain next period and sells only a prudent fraction of it as
// Assured capacity, keeping the rest for Spot. Overselling is punished by
// the SLA penalty at settlement.
type Planner struct {
	// Margin is the fraction of predicted capacity the planner dares to
	// promise (e.g. 0.8). Values above 1 model an aggressive operator.
	Margin float64
}

// Promise is one period's assured commitment.
type Promise struct {
	Period int
	// CoreHours promised for the period.
	CoreHours float64
}

// Plan converts per-period predicted capacity fractions into promises.
// fleetCores is the fleet maximum; hoursPerPeriod the period length.
func (p Planner) Plan(predicted []float64, fleetCores, hoursPerPeriod float64) []Promise {
	out := make([]Promise, len(predicted))
	for i, frac := range predicted {
		if frac < 0 {
			frac = 0
		}
		out[i] = Promise{Period: i, CoreHours: frac * fleetCores * hoursPerPeriod * p.Margin}
	}
	return out
}

// Settlement is the outcome of one period.
type Settlement struct {
	Period    int
	Promised  float64
	Delivered float64
	Revenue   float64
	Penalty   float64
}

// Settle bills one period of an assured promise against what the fleet
// actually delivered (deliveredCoreHours available for assured customers,
// at realised availability `avail` for pricing) and accrues any shortfall
// penalty into the ledger.
func (l *Ledger) Settle(pr Promise, deliveredCoreHours, avail float64) (Settlement, error) {
	sold := pr.CoreHours
	if deliveredCoreHours < sold {
		if err := l.Shortfall(Assured, sold-deliveredCoreHours); err != nil {
			return Settlement{}, err
		}
		sold = deliveredCoreHours
	}
	rev, err := l.Bill(Assured, sold, avail)
	if err != nil {
		return Settlement{}, err
	}
	sla := l.slas[Assured]
	return Settlement{
		Period:    pr.Period,
		Promised:  pr.CoreHours,
		Delivered: deliveredCoreHours,
		Revenue:   rev,
		Penalty:   (pr.CoreHours - sold) * sla.PenaltyPerCoreHour,
	}, nil
}

// String renders a settlement for reports.
func (s Settlement) String() string {
	return fmt.Sprintf("period %d: promised %.0f core-h, delivered %.0f, revenue %.2f, penalty %.2f",
		s.Period, s.Promised, s.Delivered, s.Revenue, s.Penalty)
}
