package pricing

import (
	"df3/internal/sim"
	"df3/internal/units"
)

// Tariff is a time-of-use electricity price, €/kWh. The §II-A economics
// (and the Liu et al. analysis the paper defers to [6]) hinge on who pays
// for electricity at which rate: the DF operator pays residential rates at
// its hosts but displaces their heating; a datacenter pays industrial
// rates plus cooling overhead.
type Tariff struct {
	Calendar sim.Calendar
	// OffPeak and Peak are €/kWh.
	OffPeak, Peak float64
	// PeakStart/PeakEnd bound the weekday peak window, hours of day.
	PeakStart, PeakEnd float64
}

// ResidentialTariff is a French-style dual-rate household contract.
func ResidentialTariff(cal sim.Calendar) Tariff {
	return Tariff{Calendar: cal, OffPeak: 0.16, Peak: 0.22, PeakStart: 7, PeakEnd: 23}
}

// IndustrialTariff is a datacenter supply contract: cheaper energy, same
// peak structure.
func IndustrialTariff(cal sim.Calendar) Tariff {
	return Tariff{Calendar: cal, OffPeak: 0.09, Peak: 0.13, PeakStart: 7, PeakEnd: 23}
}

// Rate returns the €/kWh price at time t.
func (tf Tariff) Rate(t sim.Time) float64 {
	h := tf.Calendar.HourOfDay(t)
	if !tf.Calendar.IsWeekend(t) && h >= tf.PeakStart && h < tf.PeakEnd {
		return tf.Peak
	}
	return tf.OffPeak
}

// CostMeter integrates electricity cost for a piecewise-constant power
// draw under a time-of-use tariff, stepping at hour boundaries so rate
// changes inside an interval are priced exactly.
type CostMeter struct {
	Tariff Tariff
	lastT  sim.Time
	lastW  units.Watt
	cost   float64
	armed  bool
}

// Update records that from t onward the metered equipment draws w.
func (m *CostMeter) Update(t sim.Time, w units.Watt) {
	if m.armed {
		m.integrate(m.lastT, t, m.lastW)
	}
	m.armed = true
	m.lastT, m.lastW = t, w
}

// Flush integrates up to t without changing the draw.
func (m *CostMeter) Flush(t sim.Time) { m.Update(t, m.lastW) }

// integrate walks hour boundaries between t0 and t1.
func (m *CostMeter) integrate(t0, t1 sim.Time, w units.Watt) {
	for t0 < t1 {
		next := (float64(int(t0/sim.Hour)) + 1) * sim.Hour
		if next > t1 {
			next = t1
		}
		kwh := float64(w) * (next - t0) / 3600 / 1000
		m.cost += kwh * m.Tariff.Rate(t0)
		t0 = next
	}
}

// Cost returns the accumulated electricity cost in €.
func (m *CostMeter) Cost() float64 { return m.cost }

// PnL is an operator's profit-and-loss summary for one run.
type PnL struct {
	ComputeRevenue  float64 // € billed for core-hours
	HeatCredit      float64 // € of host heating displaced by server heat
	ElectricityCost float64
	Penalties       float64
}

// Net returns revenue + credits − costs − penalties.
func (p PnL) Net() float64 {
	return p.ComputeRevenue + p.HeatCredit - p.ElectricityCost - p.Penalties
}

// HeatCreditValue prices delivered useful heat at what the host would have
// paid to produce it with a plain resistive heater on the given tariff's
// mean rate — the "hosts of DF servers do not pay electricity" deal of
// §III-C, seen from the operator's side.
func HeatCreditValue(heat units.Joule, meanRate float64) float64 {
	return heat.KWh() * meanRate
}
