package pricing

import (
	"math"
	"strings"
	"testing"
)

func TestPlannerPlan(t *testing.T) {
	p := Planner{Margin: 0.8}
	promises := p.Plan([]float64{0.5, 0.1, -0.2}, 100, 730)
	if len(promises) != 3 {
		t.Fatalf("%d promises", len(promises))
	}
	if math.Abs(promises[0].CoreHours-0.5*100*730*0.8) > 1e-9 {
		t.Errorf("promise 0 = %v", promises[0].CoreHours)
	}
	if promises[2].CoreHours != 0 {
		t.Errorf("negative prediction should promise 0, got %v", promises[2].CoreHours)
	}
}

func TestSettleFullDelivery(t *testing.T) {
	l := NewLedger(DefaultSpotCurve(), DefaultSLAs())
	s, err := l.Settle(Promise{Period: 1, CoreHours: 1000}, 1200, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if s.Penalty != 0 {
		t.Errorf("penalty on full delivery = %v", s.Penalty)
	}
	if s.Revenue <= 0 {
		t.Errorf("revenue = %v", s.Revenue)
	}
	if l.ShortfallHours() != 0 {
		t.Error("shortfall recorded despite full delivery")
	}
}

func TestSettleShortfall(t *testing.T) {
	l := NewLedger(DefaultSpotCurve(), DefaultSLAs())
	s, err := l.Settle(Promise{Period: 2, CoreHours: 1000}, 600, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Penalty-400*0.05) > 1e-9 {
		t.Errorf("penalty = %v, want 20", s.Penalty)
	}
	if l.ShortfallHours() != 400 {
		t.Errorf("ledger shortfall = %v", l.ShortfallHours())
	}
	if !strings.Contains(s.String(), "period 2") {
		t.Errorf("settlement string = %q", s.String())
	}
}

// TestPrudentVsAggressive shows the planner's point: with the same
// realised capacity, a prudent margin never pays penalties while an
// aggressive one does — and the prudent operator can still net more.
func TestPrudentVsAggressive(t *testing.T) {
	predicted := []float64{0.5, 0.4, 0.1} // forecast availability
	realised := []float64{0.45, 0.42, 0.08}
	const fleet, hours = 100, 730.0

	run := func(margin float64) *Ledger {
		l := NewLedger(DefaultSpotCurve(), DefaultSLAs())
		p := Planner{Margin: margin}
		for i, pr := range p.Plan(predicted, fleet, hours) {
			delivered := realised[i] * fleet * hours
			if _, err := l.Settle(pr, delivered, realised[i]); err != nil {
				t.Fatal(err)
			}
		}
		return l
	}
	prudent := run(0.7)
	aggressive := run(1.2)
	if prudent.Penalties() != 0 {
		t.Errorf("prudent operator paid penalties: %v", prudent.Penalties())
	}
	if aggressive.Penalties() == 0 {
		t.Error("aggressive operator paid no penalties despite overselling")
	}
	if aggressive.ShortfallHours() <= 0 {
		t.Error("aggressive shortfall not recorded")
	}
}
