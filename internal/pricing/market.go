package pricing

import "fmt"

// Market sizes a national DF fleet from the heating stock — the
// arithmetic behind the paper's conclusion: "only in France, in 2010,
// there were more than 9 millions of households that used electric
// heater. Even if this is more than the 2 millions of servers used by
// Amazon ... there is a growing opposition against electric heating."
type Market struct {
	// ElectricHouseholds is the number of electrically heated households.
	ElectricHouseholds float64
	// HeatersPerHousehold is how many DF heaters an average household
	// would host (one per main room).
	HeatersPerHousehold float64
	// CoresPerHeater matches the server model (a Q.rad carries 16).
	CoresPerHeater float64
	// Penetration is the fraction of the electric stock converted to DF.
	Penetration float64
	// WinterMonetisation and SummerMonetisation are the capacity
	// fractions the climate lets the operator sell (A5/E6 outputs).
	WinterMonetisation, SummerMonetisation float64
}

// FranceMarket is the paper's own figures: 9 M electric households, with
// the monetisation fractions measured by E6 on demand-matched rooms.
func FranceMarket() Market {
	return Market{
		ElectricHouseholds:  9e6,
		HeatersPerHousehold: 3,
		CoresPerHeater:      16,
		Penetration:         1.0,
		WinterMonetisation:  0.47,
		SummerMonetisation:  0.06,
	}
}

// PotentialCores returns the installed core count at the configured
// penetration.
func (m Market) PotentialCores() float64 {
	return m.ElectricHouseholds * m.HeatersPerHousehold * m.CoresPerHeater * m.Penetration
}

// SellableCores returns the monetisable core-equivalents in each season.
func (m Market) SellableCores() (winter, summer float64) {
	p := m.PotentialCores()
	return p * m.WinterMonetisation, p * m.SummerMonetisation
}

// AmazonEquivalents compares the winter sellable fleet against a
// hyperscaler fleet of the given server count and cores per server —
// the paper uses Amazon ≈ 2 M servers.
func (m Market) AmazonEquivalents(servers, coresPerServer float64) float64 {
	winter, _ := m.SellableCores()
	if servers <= 0 || coresPerServer <= 0 {
		return 0
	}
	return winter / (servers * coresPerServer)
}

// String summarises the sizing.
func (m Market) String() string {
	w, s := m.SellableCores()
	return fmt.Sprintf("%.1fM households × %.0f heaters × %.0f cores @ %.0f%% penetration → %.0fM cores installed, %.0fM sellable in winter / %.1fM in summer",
		m.ElectricHouseholds/1e6, m.HeatersPerHousehold, m.CoresPerHeater,
		m.Penetration*100, m.PotentialCores()/1e6, w/1e6, s/1e6)
}
