package pricing

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSpotCurveShape(t *testing.T) {
	c := DefaultSpotCurve()
	if got := c.Price(c.Ref); math.Abs(got-c.Base) > 1e-12 {
		t.Errorf("price at reference = %v, want %v", got, c.Base)
	}
	if c.Price(0.1) <= c.Price(0.9) {
		t.Error("scarcity did not raise the price")
	}
	if c.Price(0) != c.Cap {
		t.Error("zero availability should hit the cap")
	}
	if c.Price(1e9) < c.Floor {
		t.Error("price fell below the floor")
	}
}

// Property: price is monotone non-increasing in availability and always
// within [Floor, Cap].
func TestSpotCurveProperty(t *testing.T) {
	c := DefaultSpotCurve()
	f := func(a, b float64) bool {
		x := math.Abs(a)
		y := math.Abs(b)
		x -= math.Floor(x)
		y -= math.Floor(y)
		if x > y {
			x, y = y, x
		}
		px, py := c.Price(x), c.Price(y)
		if px < c.Floor-1e-12 || px > c.Cap+1e-12 {
			return false
		}
		return px >= py-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSLAOrdering(t *testing.T) {
	slas := DefaultSLAs()
	if !(slas[Spot].PriceMultiplier < slas[Assured].PriceMultiplier &&
		slas[Assured].PriceMultiplier < slas[Premium].PriceMultiplier) {
		t.Error("price multipliers not ordered spot < assured < premium")
	}
	if slas[Spot].PenaltyPerCoreHour != 0 {
		t.Error("spot must carry no penalty")
	}
	if slas[Premium].PenaltyPerCoreHour <= slas[Assured].PenaltyPerCoreHour {
		t.Error("premium penalty should exceed assured")
	}
}

func TestLedgerBilling(t *testing.T) {
	l := NewLedger(DefaultSpotCurve(), DefaultSLAs())
	amt, err := l.Bill(Spot, 100, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(amt-100*0.02) > 1e-12 {
		t.Errorf("billed %v, want 2.0", amt)
	}
	amt2, _ := l.Bill(Premium, 100, 0.6)
	if amt2 <= amt {
		t.Error("premium billed no more than spot")
	}
	if l.CoreHours() != 200 {
		t.Errorf("core hours = %v", l.CoreHours())
	}
	if l.Revenue() != amt+amt2 {
		t.Error("revenue does not sum bills")
	}
}

func TestLedgerErrors(t *testing.T) {
	l := NewLedger(DefaultSpotCurve(), DefaultSLAs())
	if _, err := l.Bill(Class(99), 1, 0.5); err == nil {
		t.Error("unknown class billed")
	}
	if _, err := l.Bill(Spot, -1, 0.5); err == nil {
		t.Error("negative core-hours billed")
	}
	if err := l.Shortfall(Class(99), 1); err == nil {
		t.Error("unknown class shortfall accepted")
	}
}

func TestLedgerPenalties(t *testing.T) {
	l := NewLedger(DefaultSpotCurve(), DefaultSLAs())
	if err := l.Shortfall(Assured, 100); err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.Penalties()-5) > 1e-12 {
		t.Errorf("penalties = %v, want 5", l.Penalties())
	}
	l.Bill(Assured, 100, 0.5)
	if l.Net() >= l.Revenue() {
		t.Error("net did not subtract penalties")
	}
	if l.ShortfallHours() != 100 {
		t.Errorf("shortfall hours = %v", l.ShortfallHours())
	}
}

func TestWinterCheaperThanSummer(t *testing.T) {
	// The paper's §IV point: winter heat demand raises capacity, so winter
	// prices drop. Model winter as 80% availability, summer as 15%.
	c := DefaultSpotCurve()
	winter, summer := c.Price(0.8), c.Price(0.15)
	if winter >= summer {
		t.Errorf("winter price %v not below summer %v", winter, summer)
	}
	if summer/winter < 1.5 {
		t.Errorf("seasonal spread %v too small", summer/winter)
	}
}

func TestMarketSizing(t *testing.T) {
	m := FranceMarket()
	if got := m.PotentialCores(); got != 9e6*3*16 {
		t.Errorf("potential cores = %v", got)
	}
	w, s := m.SellableCores()
	if w <= s {
		t.Error("winter sellable must exceed summer")
	}
	if x := m.AmazonEquivalents(2e6, 16); x <= 0 {
		t.Errorf("amazon equivalents = %v", x)
	}
	if m.AmazonEquivalents(0, 16) != 0 {
		t.Error("degenerate comparison should be 0")
	}
	if s := m.String(); !strings.Contains(s, "households") {
		t.Errorf("summary = %q", s)
	}
}
