// Package pricing implements the seasonal pricing and SLA models sketched
// in §IV of the paper: "data furnace introduces another dimension to
// classical cloud pricing models: the seasonality ... in winter, the heat
// demand increases the computing power that is then reduced in the summer."
//
// The spot price follows an inverse-supply curve over the fleet's available
// capacity; SLA classes buy different guarantees against the capacity
// forecast, and penalties accrue when delivered capacity falls short.
package pricing

import (
	"fmt"
	"math"
)

// SpotCurve maps available capacity (fraction of fleet maximum, in [0,1])
// to a unit price. Price is Base at reference availability and rises as
// supply tightens:
//
//	price(a) = Base · (Ref/a)^Elasticity   (clamped to [Floor, Cap])
type SpotCurve struct {
	// Base is the price at the reference availability, per core-hour.
	Base float64
	// Ref is the reference availability fraction (e.g. 0.6).
	Ref float64
	// Elasticity controls how sharply price reacts to scarcity.
	Elasticity float64
	// Floor and Cap bound the price.
	Floor, Cap float64
}

// DefaultSpotCurve is a reasonable curve: 0.02 €/core-hour at 60%
// availability, doubling when availability quarters.
func DefaultSpotCurve() SpotCurve {
	return SpotCurve{Base: 0.02, Ref: 0.6, Elasticity: 0.5, Floor: 0.005, Cap: 0.2}
}

// Price returns the spot price at availability a (fraction of fleet max).
func (c SpotCurve) Price(a float64) float64 {
	if a <= 0 {
		return c.Cap
	}
	p := c.Base * math.Pow(c.Ref/a, c.Elasticity)
	if p < c.Floor {
		p = c.Floor
	}
	if p > c.Cap {
		p = c.Cap
	}
	return p
}

// Class is an SLA tier.
type Class int

const (
	// Spot capacity can vanish with the heat demand; cheapest.
	Spot Class = iota
	// Assured capacity is backed by the operator's seasonal forecast; the
	// operator pays a penalty when it under-delivers.
	Assured
	// Premium is assured capacity plus priority scheduling; most
	// expensive, highest penalty.
	Premium
)

func (c Class) String() string {
	switch c {
	case Assured:
		return "assured"
	case Premium:
		return "premium"
	default:
		return "spot"
	}
}

// SLA describes one tier's economics.
type SLA struct {
	Class Class
	// PriceMultiplier scales the spot price.
	PriceMultiplier float64
	// PenaltyPerCoreHour is refunded per core-hour the operator promised
	// but failed to deliver.
	PenaltyPerCoreHour float64
}

// DefaultSLAs returns the three reference tiers.
func DefaultSLAs() map[Class]SLA {
	return map[Class]SLA{
		Spot:    {Class: Spot, PriceMultiplier: 1.0, PenaltyPerCoreHour: 0},
		Assured: {Class: Assured, PriceMultiplier: 1.8, PenaltyPerCoreHour: 0.05},
		Premium: {Class: Premium, PriceMultiplier: 3.0, PenaltyPerCoreHour: 0.15},
	}
}

// Ledger accrues revenue and penalties for an operator over a run.
type Ledger struct {
	curve SpotCurve
	slas  map[Class]SLA

	revenue   float64
	penalties float64
	coreHours float64
	shortfall float64 // promised-but-undelivered core-hours
}

// NewLedger returns a ledger on the given curve and tiers.
func NewLedger(curve SpotCurve, slas map[Class]SLA) *Ledger {
	return &Ledger{curve: curve, slas: slas}
}

// Bill records the delivery of coreHours of class work while fleet
// availability was `avail` (fraction). It returns the amount billed.
func (l *Ledger) Bill(class Class, coreHours, avail float64) (float64, error) {
	sla, ok := l.slas[class]
	if !ok {
		return 0, fmt.Errorf("pricing: unknown SLA class %d", class)
	}
	if coreHours < 0 {
		return 0, fmt.Errorf("pricing: negative core-hours %v", coreHours)
	}
	amt := coreHours * l.curve.Price(avail) * sla.PriceMultiplier
	l.revenue += amt
	l.coreHours += coreHours
	return amt, nil
}

// Shortfall records promised-but-undelivered core-hours for a class,
// accruing the penalty.
func (l *Ledger) Shortfall(class Class, coreHours float64) error {
	sla, ok := l.slas[class]
	if !ok {
		return fmt.Errorf("pricing: unknown SLA class %d", class)
	}
	l.shortfall += coreHours
	l.penalties += coreHours * sla.PenaltyPerCoreHour
	return nil
}

// Revenue returns gross billed revenue.
func (l *Ledger) Revenue() float64 { return l.revenue }

// Penalties returns accrued penalties.
func (l *Ledger) Penalties() float64 { return l.penalties }

// Net returns revenue minus penalties.
func (l *Ledger) Net() float64 { return l.revenue - l.penalties }

// CoreHours returns total delivered core-hours.
func (l *Ledger) CoreHours() float64 { return l.coreHours }

// ShortfallHours returns total undelivered core-hours.
func (l *Ledger) ShortfallHours() float64 { return l.shortfall }
