package pricing_test

import (
	"fmt"

	"df3/internal/pricing"
)

// ExampleSpotCurve shows the §IV seasonality: scarce summer capacity
// prices above abundant winter capacity.
func ExampleSpotCurve() {
	curve := pricing.DefaultSpotCurve()
	fmt.Printf("winter (60%% available): %.4f €/core-h\n", curve.Price(0.6))
	fmt.Printf("summer (10%% available): %.4f €/core-h\n", curve.Price(0.1))
	// Output:
	// winter (60% available): 0.0200 €/core-h
	// summer (10% available): 0.0490 €/core-h
}

// ExamplePlanner sells assured capacity against a forecast and settles.
func ExamplePlanner() {
	ledger := pricing.NewLedger(pricing.DefaultSpotCurve(), pricing.DefaultSLAs())
	planner := pricing.Planner{Margin: 0.8}
	promise := planner.Plan([]float64{0.5}, 100, 730)[0]
	s, _ := ledger.Settle(promise, 0.45*100*730, 0.45)
	fmt.Printf("promised %.0f, delivered %.0f, penalty %.2f €\n",
		s.Promised, s.Delivered, s.Penalty)
	// Output:
	// promised 29200, delivered 32850, penalty 0.00 €
}

// ExampleMarket reproduces the conclusion's arithmetic.
func ExampleMarket() {
	m := pricing.FranceMarket()
	fmt.Printf("%.1fx Amazon in winter\n", m.AmazonEquivalents(2e6, 16))
	// Output:
	// 6.3x Amazon in winter
}
