package shard

import (
	"sort"
	"time"

	"df3/internal/sim"
)

// kernelProfile accumulates the profiler's raw counters. Wall-clock reads
// are pure observation of host execution — they never feed back into
// simulation state — and happen only when profiling is enabled, so an
// unprofiled run reads no clock at all.
type kernelProfile struct {
	now func() time.Time
	// busy[s] is shard s's cumulative wall time advancing engines; only
	// worker s writes it, the coordinator reads between windows.
	busy []time.Duration
	// wall is cumulative window wall time on the coordinator: the barrier-
	// synchronous span every shard must cross. busy[s] ≤ wall; the gap is
	// shard s's barrier idle.
	wall time.Duration
	// limiter[lp] counts windows whose barrier was set by lp's
	// min-next-event — the LP the whole federation waited for.
	limiter []uint64
	// limitedWindows counts windows that had a limiter (the catch-up
	// window and Infinite-lookahead runs have none).
	limitedWindows uint64
}

// EnableProfile turns on per-window busy/idle accounting and barrier
// stall attribution. Call before Run. Profiling reads the wall clock but
// touches no simulation state: a profiled run is byte-identical to an
// unprofiled one (checksum-asserted in tests).
func (k *Kernel) EnableProfile() {
	if k.ran {
		panic("shard: EnableProfile after Run")
	}
	if k.prof != nil {
		return
	}
	k.prof = &kernelProfile{
		//df3:allow(detrand) profiler wall time measures host execution only; it never enters simulation state
		now:  time.Now,
		busy: make([]time.Duration, k.shards),
	}
}

// ShardProfile is one shard's execution accounting over a profiled run.
type ShardProfile struct {
	Shard int
	LPs   int
	// Events is the shard's cumulative fired-event count.
	Events uint64
	// Busy is wall time spent advancing this shard's engines; Idle is the
	// remainder of the windows' wall span — time the worker sat at
	// barriers waiting for slower shards or the mailbox flush.
	Busy, Idle time.Duration
	// Utilization is Busy over the total window wall time.
	Utilization float64
}

// LimiterStat attributes barrier placement: how many windows this LP's
// min-next-event defined. A single LP dominating this table is the
// federation's pacing bottleneck — every other shard idles on it.
type LimiterStat struct {
	LP   int
	Name string
	// Shard is the limiter's shard assignment.
	Shard int
	// Windows is how many barriers this LP set; Frac is the share of all
	// limited windows.
	Windows uint64
	Frac    float64
}

// ProfileReport is the profiler's digest after Run.
type ProfileReport struct {
	Windows int
	// LimitedWindows is how many windows had a barrier-setting LP.
	LimitedWindows uint64
	// Wall is the cumulative window wall time (the parallel region).
	Wall      time.Duration
	Lookahead sim.Time
	Shards    []ShardProfile
	// Limiters lists barrier-setting LPs by descending window count.
	Limiters []LimiterStat
	// Pairs is the boundary traffic with observed MinDelay per pair: a
	// pair whose MinDelay sits at Lookahead binds the window width.
	Pairs []PairTraffic
}

// ProfileReport digests the profiled run. ok is false when EnableProfile
// was never called.
func (k *Kernel) ProfileReport() (ProfileReport, bool) {
	if k.prof == nil {
		return ProfileReport{}, false
	}
	r := ProfileReport{
		Windows:        k.stats.Windows,
		LimitedWindows: k.prof.limitedWindows,
		Wall:           k.prof.wall,
		Lookahead:      k.lookahead,
		Pairs:          k.Boundary(),
	}
	r.Shards = make([]ShardProfile, k.shards)
	for s := range r.Shards {
		sp := &r.Shards[s]
		sp.Shard = s
		sp.Busy = k.prof.busy[s]
		if idle := r.Wall - sp.Busy; idle > 0 {
			sp.Idle = idle
		}
		if r.Wall > 0 {
			sp.Utilization = sp.Busy.Seconds() / r.Wall.Seconds()
		}
	}
	for _, lp := range k.lps {
		sp := &r.Shards[lp.shard]
		sp.LPs++
		sp.Events += lp.Engine.Fired()
	}
	for id, n := range k.prof.limiter {
		if n == 0 {
			continue
		}
		ls := LimiterStat{LP: id, Name: k.lps[id].Name, Shard: k.lps[id].shard, Windows: n}
		if k.prof.limitedWindows > 0 {
			ls.Frac = float64(n) / float64(k.prof.limitedWindows)
		}
		r.Limiters = append(r.Limiters, ls)
	}
	sort.Slice(r.Limiters, func(i, j int) bool {
		if r.Limiters[i].Windows != r.Limiters[j].Windows {
			return r.Limiters[i].Windows > r.Limiters[j].Windows
		}
		return r.Limiters[i].LP < r.Limiters[j].LP
	})
	return r, true
}

// BusySeconds returns shard s's cumulative busy wall time in seconds (0
// when profiling is off) — the registry read-through for
// df3_shard_busy_seconds.
func (k *Kernel) BusySeconds(s int) float64 {
	if k.prof == nil || s < 0 || s >= len(k.prof.busy) {
		return 0
	}
	return k.prof.busy[s].Seconds()
}

// IdleSeconds returns shard s's cumulative barrier-idle wall time in
// seconds (0 when profiling is off).
func (k *Kernel) IdleSeconds(s int) float64 {
	if k.prof == nil || s < 0 || s >= len(k.prof.busy) {
		return 0
	}
	idle := k.prof.wall - k.prof.busy[s]
	if idle < 0 {
		return 0
	}
	return idle.Seconds()
}

// Profiled reports whether EnableProfile was called.
func (k *Kernel) Profiled() bool { return k.prof != nil }
