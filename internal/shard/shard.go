// Package shard runs many sim.Engines in parallel under conservative
// synchronization — the nation-scale execution layer the single-threaded
// kernel deliberately refuses to be.
//
// The unit of sequential execution is a logical process (LP): one engine,
// one deterministic sub-simulation (a city in a federation, or one arm of a
// multi-scenario experiment). LPs are assigned to shards; each shard is a
// worker goroutine that runs its LPs one after another through bounded time
// windows. Cross-LP interaction never touches another LP's state directly:
// it travels as a message through the sender's ordered outbox, is collected
// at the window barrier, globally sorted by (arrival time, sender, sender
// sequence) and scheduled onto the destination engines before the next
// window opens.
//
// Conservative correctness is the classic lookahead argument: every message
// carries a delay of at least the kernel's lookahead L (the minimum
// cross-shard network latency of the model). If every LP has run to the
// barrier time b, a message sent in the window ending at b cannot arrive
// before b + L > b, so delivering at the barrier can never schedule into a
// receiver's past. Windows are adaptive, not a fixed grid: the next barrier
// is min-next-event-time + L, so idle stretches cost one peek instead of a
// crawl of empty windows.
//
// Determinism is the design's non-negotiable: the observable behaviour of
// every LP is a function of its own engine, its own RNG substreams
// (rng.Stream.ForkNamed) and the sorted message stream — none of which
// depend on how LPs are packed onto shards or on goroutine scheduling. A
// run with one shard is therefore byte-identical to a run with N, and both
// to a plain sequential loop over the LPs.
package shard

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"df3/internal/sim"
	"df3/internal/units"
)

// Infinite is the lookahead of a kernel whose LPs never exchange messages
// (independent experiment arms): a single window runs every LP to its own
// horizon.
const Infinite sim.Time = -1

// LP is one logical process: an engine plus its horizon and mailbox state.
type LP struct {
	ID   int
	Name string
	// Engine is the LP's private kernel. Nothing outside the LP may
	// schedule on it except the shard kernel's barrier delivery.
	Engine *sim.Engine
	// Until is the LP's own horizon; the kernel never advances it past
	// this, so arms with different horizons keep their exact serial Now().
	Until sim.Time

	shard int
	// outbox holds messages sent by this LP in the current window. Only
	// the LP's own shard worker appends (inside callbacks), and only the
	// barrier drains, so no lock is needed.
	outbox []message
	// seq orders this LP's sends; with the sender ID it makes message
	// order a pure function of simulation content.
	seq uint64
	// fired tracks Engine.Fired at the last barrier, for load stats.
	fired uint64
	done  bool
}

// Shard reports the shard the LP is assigned to.
func (lp *LP) Shard() int { return lp.shard }

// message is one cross-LP event: run fn on dst's engine at time at. A
// message sent with SendMsg carries (kind, payload) instead of fn and is
// resolved through the kernel's Decoder at delivery — the only form that
// can cross a process boundary.
type message struct {
	at       sim.Time
	src, dst int
	seq      uint64
	size     float64
	delay    sim.Time
	fn       func()
	kind     uint32
	payload  []byte
}

// PairTraffic accounts messages and bytes that crossed one (src shard, dst
// shard) boundary — the shard layer's view of boundary links.
type PairTraffic struct {
	SrcShard, DstShard int
	Messages           int64
	Bytes              float64
	// MinDelay is the smallest message delay observed on this pair — the
	// delay that would bind if the kernel lookahead were raised. A pair
	// whose MinDelay equals the lookahead is the binding constraint on
	// window width (profiler stall attribution); a pair with slack could
	// tolerate a larger lookahead and fewer barriers.
	MinDelay sim.Time
}

// Stats is the kernel's execution accounting after Run.
type Stats struct {
	// Windows is the number of synchronization windows executed.
	Windows int
	// TotalEvents is the sum of events fired across every LP.
	TotalEvents uint64
	// CriticalEvents sums, over windows, the busiest shard's event count:
	// the barrier-synchronous critical path. TotalEvents/CriticalEvents is
	// the speedup an N-way parallel run achieves over the serial kernel
	// once per-event costs dominate — it is a deterministic property of
	// the partition, reported by E19 and realised in wall-clock on a
	// machine with at least N cores.
	CriticalEvents uint64
	// Sent counts cross-LP messages; CrossShard counts the subset whose
	// endpoints lived on different shards (the true boundary traffic).
	Sent, CrossShard int64
}

// Speedup returns TotalEvents/CriticalEvents (1 when nothing ran).
func (s Stats) Speedup() float64 {
	if s.CriticalEvents == 0 {
		return 1
	}
	return float64(s.TotalEvents) / float64(s.CriticalEvents)
}

// Kernel owns the LPs, the shard workers and the barrier machinery.
type Kernel struct {
	lookahead sim.Time
	shards    int
	lps       []*LP
	now       sim.Time
	ran       bool
	stats     Stats
	boundary  map[[2]int]*PairTraffic
	// perShard is scratch for per-window event counts.
	perShard []uint64
	// decoder resolves (kind, payload) messages into event closures.
	decoder Decoder
	// owned, when non-nil, restricts execution to the marked LPs: this
	// kernel is one partition of a multi-node federation and runs under a
	// Sync instead of Run. Unowned LPs exist (the whole scenario is built
	// everywhere, proving every node runs the same recipe) but never
	// advance; their traffic arrives through Deliver.
	owned []bool
	// prof, when non-nil, accumulates busy/idle wall time and barrier
	// stall attribution (profile.go). Nil on unprofiled runs: the hot path
	// pays one pointer test per window, no clock reads.
	prof *kernelProfile
}

// NewKernel returns a kernel with the given worker count and lookahead.
// lookahead is the minimum cross-LP message delay (derive it from the
// minimum cross-shard network latency of the model); pass Infinite when the
// LPs are independent. shards < 1 panics.
func NewKernel(shards int, lookahead sim.Time) *Kernel {
	if shards < 1 {
		panic(fmt.Sprintf("shard: kernel with %d shards", shards))
	}
	if lookahead != Infinite && lookahead <= 0 {
		panic(fmt.Sprintf("shard: non-positive lookahead %v", lookahead))
	}
	return &Kernel{
		lookahead: lookahead,
		shards:    shards,
		boundary:  map[[2]int]*PairTraffic{},
		perShard:  make([]uint64, shards),
	}
}

// Shards returns the worker count.
func (k *Kernel) Shards() int { return k.shards }

// Now returns the kernel's global clock: the end of the last completed
// window (every LP has reached at least this time, clamped to its own
// horizon). With Engine.NextEventTime-shaped Run semantics it makes the
// kernel a sim.Target, so drivers can pace a whole federation the same
// way they pace one engine.
func (k *Kernel) Now() sim.Time { return k.now }

// Lookahead returns the kernel's lookahead (Infinite for independent LPs).
func (k *Kernel) Lookahead() sim.Time { return k.lookahead }

// AddLP registers an engine as a logical process running to its own horizon
// `until`, assigned round-robin pending Partition. Engines must join at
// time zero: an LP that already ran could have consumed state the mailbox
// ordering cannot reproduce.
func (k *Kernel) AddLP(name string, e *sim.Engine, until sim.Time) *LP {
	if k.ran {
		panic("shard: AddLP after Run")
	}
	if k.owned != nil {
		panic("shard: AddLP after Own")
	}
	if e.Now() != 0 {
		panic(fmt.Sprintf("shard: LP %q joins at t=%v, want 0", name, e.Now()))
	}
	lp := &LP{ID: len(k.lps), Name: name, Engine: e, Until: until}
	lp.shard = lp.ID % k.shards
	k.lps = append(k.lps, lp)
	return lp
}

// LPs returns the registered logical processes in ID order.
func (k *Kernel) LPs() []*LP { return k.lps }

// Partition reassigns LPs to shards. assign[i] is LP i's shard; values out
// of range or a wrong length panic. Call before Run.
func (k *Kernel) Partition(assign []int) {
	if k.ran {
		panic("shard: Partition after Run")
	}
	if len(assign) != len(k.lps) {
		panic(fmt.Sprintf("shard: partition of %d LPs got %d assignments", len(k.lps), len(assign)))
	}
	for i, s := range assign {
		if s < 0 || s >= k.shards {
			panic(fmt.Sprintf("shard: LP %d assigned to shard %d of %d", i, s, k.shards))
		}
		k.lps[i].shard = s
	}
}

// PartitionContiguous balances LPs over shards in contiguous ID blocks —
// the locality-preserving default when callers register LPs in network or
// thermal neighbourhood order. weights are relative LP costs (nil = equal);
// the split greedily cuts at the running-total boundaries.
func PartitionContiguous(n, shards int, weights []float64) []int {
	if shards < 1 {
		panic("shard: PartitionContiguous with no shards")
	}
	total := 0.0
	if weights == nil {
		total = float64(n)
	} else {
		if len(weights) != n {
			panic("shard: weights length mismatch")
		}
		for _, w := range weights {
			total += w
		}
	}
	assign := make([]int, n)
	acc, cut := 0.0, 0
	for i := 0; i < n; i++ {
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		// Advance the cut when the running total passes the next shard
		// boundary, but never strand a shard without remaining LPs.
		for cut < shards-1 && acc+w/2 > total*float64(cut+1)/float64(shards) {
			cut++
		}
		assign[i] = cut
		acc += w
	}
	return assign
}

// Own restricts execution to the given LPs: this kernel becomes one
// partition of a larger federation, run under a Sync. Unowned LPs keep
// their engines (built, never advanced); messages addressed to them leave
// through RunWindow instead of being delivered locally. Call before any
// window runs.
func (k *Kernel) Own(ids []int) {
	if k.ran {
		panic("shard: Own after Run")
	}
	k.owned = make([]bool, len(k.lps))
	for _, id := range ids {
		if id < 0 || id >= len(k.lps) {
			panic(fmt.Sprintf("shard: Own of LP %d, kernel has %d", id, len(k.lps)))
		}
		k.owned[id] = true
	}
}

// owns reports whether this kernel executes the LP (always true without a
// partition restriction).
func (k *Kernel) owns(lp *LP) bool { return k.owned == nil || k.owned[lp.ID] }

// SetDecoder registers the resolver for (kind, payload) messages — the
// scenario's message codec. Required before any SendMsg traffic is
// delivered; shared verbatim by every node of a federation.
func (k *Kernel) SetDecoder(d Decoder) { k.decoder = d }

// Send queues fn to run on dst's engine `delay` seconds after src's current
// time, carrying `size` accounting bytes over the shard boundary. It must
// be called from within src's own event callbacks (that is the only context
// the sender's clock is meaningful in). Delays below the kernel lookahead
// panic: they would let a message arrive inside an already-running window,
// which is exactly the causality violation conservative synchronization
// exists to rule out.
//
// A closure message cannot leave the process; scenarios that may run
// partitioned use SendMsg instead.
func (k *Kernel) Send(src, dst *LP, delay sim.Time, size units.Byte, fn func()) {
	k.send(src, dst, delay, size, message{fn: fn})
}

// SendMsg queues a (kind, payload) message — the serialisable form of
// Send, resolved by the kernel's Decoder at delivery time. Same clock and
// lookahead contract as Send.
func (k *Kernel) SendMsg(src, dst *LP, delay sim.Time, size units.Byte, kind uint32, payload []byte) {
	k.send(src, dst, delay, size, message{kind: kind, payload: payload})
}

func (k *Kernel) send(src, dst *LP, delay sim.Time, size units.Byte, m message) {
	if k.lookahead == Infinite {
		panic("shard: Send on a kernel with Infinite lookahead (no channels declared)")
	}
	if delay < k.lookahead {
		panic(fmt.Sprintf("shard: %q→%q delay %v violates lookahead %v",
			src.Name, dst.Name, delay, k.lookahead))
	}
	m.at = src.Engine.Now() + delay
	m.src, m.dst = src.ID, dst.ID
	m.seq = src.seq
	m.size = float64(size)
	m.delay = delay
	src.outbox = append(src.outbox, m)
	src.seq++
}

// Boundary returns per-(src shard, dst shard) traffic accounting in sorted
// pair order.
func (k *Kernel) Boundary() []PairTraffic {
	keys := make([][2]int, 0, len(k.boundary))
	for p := range k.boundary {
		keys = append(keys, p)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	out := make([]PairTraffic, len(keys))
	for i, p := range keys {
		out[i] = *k.boundary[p]
	}
	return out
}

// Stats returns execution accounting (valid after Run).
func (k *Kernel) Stats() Stats { return k.stats }

// Run advances every LP to min(until, its own horizon) through conservative
// windows, parallel across shards, barrier-synchronized, mailbox-drained.
func (k *Kernel) Run(until sim.Time) {
	k.ran = true
	for {
		end, any := k.nextBarrier(until)
		if !any {
			break
		}
		k.runWindow(end)
		k.flush()
		k.now = end
		k.stats.Windows++
		if end >= until {
			break
		}
	}
	// Catch-up window: events sitting exactly at `until` (outside any
	// barrier, since windows end strictly after the events that define
	// them) still fire, their sends are drained, and every LP's clock is
	// left at min(until, its horizon) — exactly as a serial
	// Engine.Run(until) per LP would leave it.
	k.runWindow(until)
	k.flush()
	if k.now < until {
		k.now = until
	}
}

// nextBarrier picks the next window end: the earliest pending event across
// live LPs plus the lookahead, clamped to `until`. It reports false when no
// LP has work left before `until`.
func (k *Kernel) nextBarrier(until sim.Time) (sim.Time, bool) {
	if k.now >= until {
		return 0, false
	}
	if k.lookahead == Infinite {
		// Independent LPs: one window runs everything to its horizon.
		return until, k.stats.Windows == 0
	}
	next := until
	any := false
	limiter := -1
	for _, lp := range k.lps {
		if lp.done || !k.owns(lp) {
			continue
		}
		if t, ok := lp.Engine.NextEventTime(); ok && t <= lp.Until && t < next {
			next = t
			any = true
			limiter = lp.ID
		}
	}
	if !any {
		return 0, false
	}
	if k.prof != nil && limiter >= 0 {
		// This LP's min-next-event set the barrier: every other shard will
		// idle once its own work inside the window drains.
		for len(k.prof.limiter) <= limiter {
			k.prof.limiter = append(k.prof.limiter, 0)
		}
		k.prof.limiter[limiter]++
		k.prof.limitedWindows++
	}
	end := next + k.lookahead
	if end > until {
		end = until
	}
	// Guard against a zero-width window when an event sits exactly at the
	// previous barrier with lookahead already consumed by clamping.
	if end <= k.now {
		end = k.now + k.lookahead
		if end > until {
			end = until
		}
	}
	return end, true
}

// runWindow advances every live LP to min(end, its horizon), one worker
// goroutine per shard, and folds the per-shard event counts into the
// critical-path statistics.
func (k *Kernel) runWindow(end sim.Time) {
	for i := range k.perShard {
		k.perShard[i] = 0
	}
	runShard := func(s int) {
		// Busy time is measured inside the worker: wall clock spent
		// advancing this shard's LPs. Only shard s writes busy[s], so the
		// workers never contend; the coordinator reads after the barrier.
		var t0 time.Time
		if k.prof != nil {
			t0 = k.prof.now()
		}
		for _, lp := range k.lps {
			if lp.shard != s || lp.done || !k.owns(lp) {
				continue
			}
			h := lp.Until
			if h > end {
				h = end
			}
			if lp.Engine.Now() < h {
				lp.Engine.Run(h)
			}
			if lp.Engine.Now() >= lp.Until {
				lp.done = true
			}
		}
		if k.prof != nil {
			k.prof.busy[s] += k.prof.now().Sub(t0)
		}
	}
	var w0 time.Time
	if k.prof != nil {
		w0 = k.prof.now()
	}
	if k.shards == 1 {
		runShard(0)
	} else {
		var wg sync.WaitGroup
		for s := 0; s < k.shards; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				runShard(s)
			}(s)
		}
		wg.Wait()
	}
	if k.prof != nil {
		k.prof.wall += k.prof.now().Sub(w0)
	}
	for _, lp := range k.lps {
		d := lp.Engine.Fired() - lp.fired
		lp.fired = lp.Engine.Fired()
		k.perShard[lp.shard] += d
		k.stats.TotalEvents += d
	}
	max := uint64(0)
	for _, n := range k.perShard {
		if n > max {
			max = n
		}
	}
	k.stats.CriticalEvents += max
}

// flush drains every outbox, sorts the messages into their global
// deterministic order and schedules them onto the destination engines.
// Delivery happens on the coordinating goroutine, strictly between windows.
func (k *Kernel) flush() {
	var batch []message
	for _, lp := range k.lps {
		batch = append(batch, lp.outbox...)
		lp.outbox = lp.outbox[:0]
	}
	if err := k.deliverBatch(batch); err != nil {
		// On the serial path a message that cannot be resolved is a
		// scenario bug, exactly like a lookahead violation.
		panic(err)
	}
}

// deliverBatch sorts a message batch into (at, src, seq) order, resolves
// payload messages through the decoder and schedules every message onto
// its destination engine, with boundary-traffic accounting.
func (k *Kernel) deliverBatch(batch []message) error {
	if len(batch) == 0 {
		return nil
	}
	sort.Slice(batch, func(i, j int) bool {
		a, b := batch[i], batch[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.seq < b.seq
	})
	for _, m := range batch {
		dst := k.lps[m.dst]
		if m.at < dst.Engine.Now() {
			panic(fmt.Sprintf("shard: message %q→%q at %v arrives in receiver past %v (lookahead too large?)",
				k.lps[m.src].Name, dst.Name, m.at, dst.Engine.Now()))
		}
		k.stats.Sent++
		src := k.lps[m.src]
		pair := [2]int{src.shard, dst.shard}
		pt := k.boundary[pair]
		if pt == nil {
			pt = &PairTraffic{SrcShard: pair[0], DstShard: pair[1]}
			k.boundary[pair] = pt
		}
		pt.Messages++
		pt.Bytes += m.size
		if pt.Messages == 1 || m.delay < pt.MinDelay {
			pt.MinDelay = m.delay
		}
		if src.shard != dst.shard {
			k.stats.CrossShard++
		}
		fn := m.fn
		if fn == nil {
			if k.decoder == nil {
				return fmt.Errorf("shard: message kind %d for %q but no decoder registered", m.kind, dst.Name)
			}
			var err error
			fn, err = k.decoder(dst, m.kind, m.payload)
			if err != nil {
				return fmt.Errorf("shard: decode message kind %d for %q: %w", m.kind, dst.Name, err)
			}
		}
		dst.Engine.At(m.at, fn)
		// A delivered message can revive a drained LP.
		if m.at <= dst.Until {
			dst.done = false
		}
	}
	return nil
}

// The Part implementation: a kernel, usually restricted by Own, as one
// partition under a Sync coordinator. The methods run strictly between
// windows on the coordinator's goroutine (or a worker's session loop).

// OwnedLPs returns the IDs of the LPs this kernel executes.
func (k *Kernel) OwnedLPs() ([]int, error) {
	ids := make([]int, 0, len(k.lps))
	for _, lp := range k.lps {
		if k.owns(lp) {
			ids = append(ids, lp.ID)
		}
	}
	return ids, nil
}

// NextEvent returns the earliest pending event across the kernel's live
// owned LPs — its barrier proposal to the coordinator.
func (k *Kernel) NextEvent() (sim.Time, bool, error) {
	best, any := sim.Time(0), false
	for _, lp := range k.lps {
		if lp.done || !k.owns(lp) {
			continue
		}
		if t, ok := lp.Engine.NextEventTime(); ok && t <= lp.Until && (!any || t < best) {
			best, any = t, true
		}
	}
	return best, any, nil
}

// RunWindow advances the owned LPs to `end` (parallel across the kernel's
// local shards), delivers partition-internal messages, and returns the
// boundary messages plus the window's execution accounting. Partition-
// internal delivery happens here rather than at the coordinator, but in
// the same (at, src, seq) order the global sort would have given those
// messages — per-engine delivery order, the only order an engine can
// observe, is identical either way.
func (k *Kernel) RunWindow(end sim.Time) (WindowResult, error) {
	k.ran = true
	k.runWindow(end)
	res := WindowResult{PerShard: append([]uint64(nil), k.perShard...)}
	sent0, cross0 := k.stats.Sent, k.stats.CrossShard
	var local []message
	for _, lp := range k.lps {
		for _, m := range lp.outbox {
			if k.owns(k.lps[m.dst]) {
				local = append(local, m)
				continue
			}
			if m.fn != nil {
				return WindowResult{}, fmt.Errorf(
					"shard: closure message %q→%q cannot cross a partition boundary (use SendMsg)",
					k.lps[m.src].Name, k.lps[m.dst].Name)
			}
			res.Msgs = append(res.Msgs, Msg{
				At: m.at, Src: m.src, Dst: m.dst, Seq: m.seq,
				Size: m.size, Delay: m.delay, Kind: m.kind, Payload: m.payload,
			})
		}
		lp.outbox = lp.outbox[:0]
	}
	if err := k.deliverBatch(local); err != nil {
		return WindowResult{}, err
	}
	res.Sent = k.stats.Sent - sent0
	res.CrossShard = k.stats.CrossShard - cross0
	if k.now < end {
		k.now = end
	}
	return res, nil
}

// Deliver schedules partition-bound messages (already globally sorted by
// the coordinator; re-sorting locally is a no-op on sorted input) onto
// the owned destination engines.
func (k *Kernel) Deliver(batch []Msg) error {
	k.ran = true
	msgs := make([]message, len(batch))
	for i, m := range batch {
		if m.Dst < 0 || m.Dst >= len(k.lps) {
			return fmt.Errorf("shard: delivery for LP %d, kernel has %d", m.Dst, len(k.lps))
		}
		if !k.owns(k.lps[m.Dst]) {
			return fmt.Errorf("shard: delivery for LP %d, which this partition does not own", m.Dst)
		}
		msgs[i] = message{
			at: m.At, src: m.Src, dst: m.Dst, seq: m.Seq,
			size: m.Size, delay: m.Delay, kind: m.Kind, payload: m.Payload,
		}
	}
	return k.deliverBatch(msgs)
}
