package shard

import (
	"encoding/binary"
	"fmt"
	"strings"
	"testing"

	"df3/internal/sim"
)

// pingScenario builds n LPs that exchange payload messages: each LP
// ticks every second until horizon, and every 5th tick sends a counter
// increment to the next LP with the kernel's lookahead delay. The
// observable outcome (per-LP counters, fired counts, clocks) is a pure
// function of the message stream, so any partitioning must reproduce it.
type pingScenario struct {
	k        *Kernel
	lps      []*LP
	counters []uint64
	horizon  sim.Time
}

func buildPing(shards, n int, horizon sim.Time) *pingScenario {
	const lookahead sim.Time = 3
	s := &pingScenario{k: NewKernel(shards, lookahead), horizon: horizon}
	s.counters = make([]uint64, n)
	s.k.SetDecoder(func(dst *LP, kind uint32, payload []byte) (func(), error) {
		if kind != 7 {
			return nil, fmt.Errorf("unknown kind %d", kind)
		}
		inc := binary.LittleEndian.Uint64(payload)
		id := dst.ID
		return func() { s.counters[id] += inc }, nil
	})
	for i := 0; i < n; i++ {
		i := i
		e := sim.New()
		lp := s.k.AddLP(fmt.Sprintf("lp-%d", i), e, horizon)
		s.lps = append(s.lps, lp)
		tick := 0
		var schedule func()
		schedule = func() {
			e.AfterTransient(1, func() {
				tick++
				s.counters[i]++
				if tick%5 == 0 {
					var p [8]byte
					binary.LittleEndian.PutUint64(p[:], uint64(tick))
					dst := s.lps[(i+1)%n]
					s.k.SendMsg(lp, dst, 3, 8, 7, p[:])
				}
				if e.Now() < horizon-1 {
					schedule()
				}
			})
		}
		schedule()
	}
	return s
}

func (s *pingScenario) fingerprint() string {
	var b strings.Builder
	for i, lp := range s.lps {
		fmt.Fprintf(&b, "%d:%d:%d:%v;", i, s.counters[i], lp.Engine.Fired(), lp.Engine.Now())
	}
	return b.String()
}

// TestSyncMatchesKernelRun: the Sync loop over partitioned kernels (the
// multi-node shape, in process) must be byte-identical to Kernel.Run.
func TestSyncMatchesKernelRun(t *testing.T) {
	const n, horizon = 7, 50
	ref := buildPing(1, n, horizon)
	ref.k.Run(horizon)
	want := ref.fingerprint()
	wantEvents := ref.k.Stats().TotalEvents

	for _, nodes := range []int{1, 2, 3} {
		// Each "node" builds the full scenario and owns a contiguous block,
		// exactly as df3node does.
		assign := PartitionContiguous(n, nodes, nil)
		scens := make([]*pingScenario, nodes)
		parts := make([]Part, nodes)
		for p := 0; p < nodes; p++ {
			scens[p] = buildPing(2, n, horizon)
			var owned []int
			for i, a := range assign {
				if a == p {
					owned = append(owned, i)
				}
			}
			scens[p].k.Own(owned)
			parts[p] = scens[p].k
		}
		sy, err := NewSync(3, parts)
		if err != nil {
			t.Fatalf("nodes=%d: %v", nodes, err)
		}
		if err := sy.Run(horizon); err != nil {
			t.Fatalf("nodes=%d: %v", nodes, err)
		}
		// Merge the per-node views: every LP is read from its owner.
		merged := &pingScenario{horizon: horizon}
		for i := 0; i < n; i++ {
			owner := scens[assign[i]]
			merged.lps = append(merged.lps, owner.lps[i])
			merged.counters = append(merged.counters, owner.counters[i])
		}
		if got := merged.fingerprint(); got != want {
			t.Errorf("nodes=%d: fingerprint\n got %s\nwant %s", nodes, got, want)
		}
		if got := sy.Stats().TotalEvents; got != wantEvents {
			t.Errorf("nodes=%d: TotalEvents %d, want %d", nodes, got, wantEvents)
		}
		if sy.Now() != horizon {
			t.Errorf("nodes=%d: Now() %v, want %v", nodes, sy.Now(), horizon)
		}
	}
}

// TestSyncSingleKernelStats: one unrestricted kernel under Sync reports
// the same windows/messages/critical path as Kernel.Run would.
func TestSyncSingleKernelStats(t *testing.T) {
	const n, horizon = 5, 40
	ref := buildPing(2, n, horizon)
	ref.k.Run(horizon)

	under := buildPing(2, n, horizon)
	sy, err := NewSync(3, []Part{under.k})
	if err != nil {
		t.Fatal(err)
	}
	if err := sy.Run(horizon); err != nil {
		t.Fatal(err)
	}
	got, want := sy.Stats(), ref.k.Stats()
	if got.Windows != want.Windows || got.TotalEvents != want.TotalEvents ||
		got.CriticalEvents != want.CriticalEvents || got.Sent != want.Sent {
		t.Errorf("stats %+v, want %+v", got, want)
	}
	if under.fingerprint() != ref.fingerprint() {
		t.Errorf("fingerprint %s, want %s", under.fingerprint(), ref.fingerprint())
	}
}

// TestClosureCannotCrossPartition: a closure message whose destination is
// unowned must fail the window, not be silently dropped or misdelivered.
func TestClosureCannotCrossPartition(t *testing.T) {
	k := NewKernel(1, 3)
	a := k.AddLP("a", sim.New(), 100)
	b := k.AddLP("b", sim.New(), 100)
	a.Engine.AtTransient(1, func() {
		k.Send(a, b, 3, 0, func() {})
	})
	k.Own([]int{0})
	if _, _, err := k.NextEvent(); err != nil {
		t.Fatal(err)
	}
	_, err := k.RunWindow(10)
	if err == nil || !strings.Contains(err.Error(), "closure") {
		t.Fatalf("RunWindow error = %v, want closure-crossing error", err)
	}
}

// TestDeliverRejectsUnowned: delivery addressed outside the partition is
// a routing bug and must be refused.
func TestDeliverRejectsUnowned(t *testing.T) {
	k := NewKernel(1, 3)
	k.AddLP("a", sim.New(), 100)
	k.AddLP("b", sim.New(), 100)
	k.Own([]int{0})
	err := k.Deliver([]Msg{{At: 5, Src: 0, Dst: 1, Kind: 1}})
	if err == nil || !strings.Contains(err.Error(), "own") {
		t.Fatalf("Deliver error = %v, want ownership error", err)
	}
	if err := k.Deliver([]Msg{{At: 5, Src: 0, Dst: 9, Kind: 1}}); err == nil {
		t.Fatal("Deliver accepted an out-of-range LP")
	}
}

// TestSyncRejectsOverlap: two partitions claiming one LP is a partition
// bug the coordinator must catch at wiring time.
func TestSyncRejectsOverlap(t *testing.T) {
	s1 := buildPing(1, 3, 10)
	s2 := buildPing(1, 3, 10)
	s1.k.Own([]int{0, 1})
	s2.k.Own([]int{1, 2})
	if _, err := NewSync(3, []Part{s1.k, s2.k}); err == nil {
		t.Fatal("NewSync accepted overlapping partitions")
	}
}

// TestDecoderErrors: missing decoder and unknown kinds surface as
// errors, not panics, on the delivery path.
func TestDecoderErrors(t *testing.T) {
	k := NewKernel(1, 3)
	k.AddLP("a", sim.New(), 100)
	if err := k.Deliver([]Msg{{At: 1, Src: 0, Dst: 0, Kind: 9}}); err == nil {
		t.Fatal("delivery without a decoder succeeded")
	}
	k2 := NewKernel(1, 3)
	k2.AddLP("a", sim.New(), 100)
	k2.SetDecoder(func(dst *LP, kind uint32, payload []byte) (func(), error) {
		return nil, fmt.Errorf("unknown kind %d", kind)
	})
	if err := k2.Deliver([]Msg{{At: 1, Src: 0, Dst: 0, Kind: 9}}); err == nil {
		t.Fatal("decode error did not fail delivery")
	}
}
