// Transport abstraction under the kernel's mailbox layer.
//
// The in-process Kernel runs every LP itself; a federation that outgrows
// one process splits its LPs into partitions, each executed by a Part.
// A Part is the window-protocol view of one partition: report the
// earliest pending event, run a bounded window, hand over the messages
// that left the partition, accept the sorted messages that enter it.
// *Kernel itself implements Part (Own restricts execution to the local
// partition), and internal/wire implements it over a socket — the same
// conservative barriers and (at, src, seq) ordering either way, which is
// what keeps an N-node run byte-identical to serial.
//
// Closures cannot cross a process boundary, so partition-crossing
// messages are data: a kind tag plus an opaque payload, resolved into an
// event closure on the destination side by the Decoder the scenario
// registers (city.Federation registers its inter-city job codec). Local
// messages may still carry closures; only messages that leave the
// partition must be serialisable.
package shard

import (
	"fmt"
	"sort"
	"sync"

	"df3/internal/sim"
)

// Msg is one serialisable cross-partition message: the mailbox entry as
// it travels between Parts (and over the wire). At/Src/Seq carry the
// kernel's deterministic delivery order; Kind/Payload carry the content,
// resolved by the destination kernel's Decoder.
type Msg struct {
	At       sim.Time
	Src, Dst int
	Seq      uint64
	Size     float64
	Delay    sim.Time
	Kind     uint32
	Payload  []byte
}

// Decoder resolves a (kind, payload) message into the closure to run on
// the destination LP's engine. Scenarios register one with SetDecoder;
// it must be a pure function of its arguments so decoding on a remote
// node reproduces exactly what a local closure would have done.
type Decoder func(dst *LP, kind uint32, payload []byte) (func(), error)

// WindowResult is what one Part reports after running a window.
type WindowResult struct {
	// Msgs are the messages that left the partition this window (their
	// Dst is not owned by the reporting Part), in outbox order; the
	// coordinator merges and sorts them globally.
	Msgs []Msg
	// PerShard is the events fired by each of the Part's local shard
	// workers during the window — the coordinator folds these into the
	// global critical path.
	PerShard []uint64
	// Sent and CrossShard count messages the Part delivered internally
	// this window (both endpoints local) and the subset that crossed a
	// local shard boundary.
	Sent, CrossShard int64
}

// Part is one partition of a federation under the window protocol. All
// methods are called from the coordinator loop, strictly between
// windows; implementations need no internal synchronization beyond what
// their own window execution requires.
type Part interface {
	// OwnedLPs returns the IDs of the LPs this Part executes.
	OwnedLPs() ([]int, error)
	// NextEvent returns the earliest pending event time across the
	// partition's live LPs (false when it has no work left).
	NextEvent() (sim.Time, bool, error)
	// RunWindow advances every local LP to min(end, its horizon),
	// delivers partition-internal messages, and returns the rest.
	RunWindow(end sim.Time) (WindowResult, error)
	// Deliver schedules partition-bound messages, already in global
	// (At, Src, Seq) order, onto the local engines.
	Deliver(batch []Msg) error
}

// SortMsgs puts a message batch into the kernel's deterministic delivery
// order: (arrival time, sender LP, sender sequence).
func SortMsgs(batch []Msg) {
	sort.Slice(batch, func(i, j int) bool {
		a, b := batch[i], batch[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Seq < b.Seq
	})
}

// Sync is the multi-partition coordinator: the same conservative window
// loop Kernel.Run executes, lifted over Parts. One local Kernel as the
// only Part reproduces Kernel.Run exactly; N wire.Clients run the same
// loop across processes. Stats mirror the serial kernel's: the critical
// path is the per-window busiest shard across every partition.
type Sync struct {
	lookahead sim.Time
	parts     []Part
	owner     map[int]int // LP ID → index into parts
	now       sim.Time
	stats     Stats
	boundary  int64
}

// NewSync wires the coordinator over its partitions, querying each for
// the LPs it owns. Ownership must be disjoint; the union must cover
// every Dst that messages will name.
func NewSync(lookahead sim.Time, parts []Part) (*Sync, error) {
	if lookahead != Infinite && lookahead <= 0 {
		return nil, fmt.Errorf("shard: non-positive lookahead %v", lookahead)
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("shard: sync over zero partitions")
	}
	s := &Sync{lookahead: lookahead, parts: parts, owner: map[int]int{}}
	for pi, p := range parts {
		ids, err := p.OwnedLPs()
		if err != nil {
			return nil, fmt.Errorf("shard: partition %d: %w", pi, err)
		}
		for _, id := range ids {
			if prev, dup := s.owner[id]; dup {
				return nil, fmt.Errorf("shard: LP %d owned by partitions %d and %d", id, prev, pi)
			}
			s.owner[id] = pi
		}
	}
	return s, nil
}

// Now returns the end of the last completed window.
func (s *Sync) Now() sim.Time { return s.now }

// Stats returns the merged execution accounting (valid after Run).
func (s *Sync) Stats() Stats { return s.stats }

// Boundary returns how many messages crossed a partition boundary — the
// traffic that goes over the wire in a multi-node run.
func (s *Sync) Boundary() int64 { return s.boundary }

// Run advances every partition to `until` through conservative windows —
// the distributed twin of Kernel.Run, including its catch-up window for
// events sitting exactly at the horizon.
func (s *Sync) Run(until sim.Time) error {
	for {
		end, any, err := s.nextBarrier(until)
		if err != nil {
			return err
		}
		if !any {
			break
		}
		if err := s.window(end); err != nil {
			return err
		}
		s.now = end
		s.stats.Windows++
		if end >= until {
			break
		}
	}
	if err := s.window(until); err != nil {
		return err
	}
	if s.now < until {
		s.now = until
	}
	return nil
}

// nextBarrier gathers every partition's earliest event (concurrently —
// remote partitions answer over the network) and picks the next window
// end exactly as Kernel.nextBarrier does.
func (s *Sync) nextBarrier(until sim.Time) (sim.Time, bool, error) {
	if s.now >= until {
		return 0, false, nil
	}
	if s.lookahead == Infinite {
		return until, s.stats.Windows == 0, nil
	}
	type proposal struct {
		t   sim.Time
		has bool
		err error
	}
	props := make([]proposal, len(s.parts))
	s.each(func(i int, p Part) {
		t, has, err := p.NextEvent()
		props[i] = proposal{t: t, has: has, err: err}
	})
	next := until
	any := false
	for i, pr := range props {
		if pr.err != nil {
			return 0, false, fmt.Errorf("shard: partition %d: %w", i, pr.err)
		}
		if pr.has && pr.t < next {
			next = pr.t
			any = true
		}
	}
	if !any {
		return 0, false, nil
	}
	end := next + s.lookahead
	if end > until {
		end = until
	}
	if end <= s.now {
		end = s.now + s.lookahead
		if end > until {
			end = until
		}
	}
	return end, true, nil
}

// window runs one window on every partition, merges the boundary
// messages into global order and routes them to their destinations.
func (s *Sync) window(end sim.Time) error {
	results := make([]WindowResult, len(s.parts))
	errs := make([]error, len(s.parts))
	s.each(func(i int, p Part) {
		results[i], errs[i] = p.RunWindow(end)
	})
	var batch []Msg
	max := uint64(0)
	for i, res := range results {
		if errs[i] != nil {
			return fmt.Errorf("shard: partition %d: %w", i, errs[i])
		}
		for _, n := range res.PerShard {
			s.stats.TotalEvents += n
			if n > max {
				max = n
			}
		}
		s.stats.Sent += res.Sent
		s.stats.CrossShard += res.CrossShard
		batch = append(batch, res.Msgs...)
	}
	s.stats.CriticalEvents += max
	if len(batch) == 0 {
		return nil
	}
	// Boundary messages crossed a partition, and partitions never share
	// a shard worker, so every one of them is cross-shard traffic.
	s.stats.Sent += int64(len(batch))
	s.stats.CrossShard += int64(len(batch))
	s.boundary += int64(len(batch))
	SortMsgs(batch)
	routed := make([][]Msg, len(s.parts))
	for _, m := range batch {
		pi, ok := s.owner[m.Dst]
		if ok {
			src, srcOK := s.owner[m.Src]
			if srcOK && src == pi {
				// A partition must deliver its own internal traffic
				// itself; one escaping here means its owned set lied.
				return fmt.Errorf("shard: partition %d leaked internal message %d→%d", pi, m.Src, m.Dst)
			}
		} else {
			return fmt.Errorf("shard: message for LP %d, which no partition owns", m.Dst)
		}
		routed[pi] = append(routed[pi], m)
	}
	s.each(func(i int, p Part) {
		if len(routed[i]) > 0 {
			errs[i] = p.Deliver(routed[i])
		} else {
			errs[i] = nil
		}
	})
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("shard: partition %d: %w", i, err)
		}
	}
	return nil
}

// each runs fn for every partition concurrently and waits. With one
// partition it stays on the calling goroutine.
func (s *Sync) each(fn func(i int, p Part)) {
	if len(s.parts) == 1 {
		fn(0, s.parts[0])
		return
	}
	var wg sync.WaitGroup
	for i, p := range s.parts {
		wg.Add(1)
		go func(i int, p Part) {
			defer wg.Done()
			fn(i, p)
		}(i, p)
	}
	wg.Wait()
}
