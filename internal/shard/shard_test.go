package shard

import (
	"fmt"
	"testing"

	"df3/internal/rng"
	"df3/internal/sim"
)

// ringModel builds K interacting LPs on a kernel: each LP runs a Poisson
// generator off its own ForkNamed substream and, on every arrival, sends a
// message one step around the ring with a delay of lookahead plus a jittered
// slack. Receivers fold (time, payload) into a per-LP digest and schedule a
// local follow-up event, so the digest is sensitive to event order, message
// order and RNG draws alike.
func ringModel(t *testing.T, k *Kernel, n int, until sim.Time) []uint64 {
	t.Helper()
	const lookahead = 5
	digests := make([]uint64, n)
	lps := make([]*LP, n)
	for i := 0; i < n; i++ {
		lps[i] = k.AddLP(fmt.Sprintf("lp-%d", i), sim.New(), until)
	}
	fold := func(i int, v uint64) {
		h := digests[i]
		h ^= v
		h *= 1099511628211
		digests[i] = h
	}
	for i := 0; i < n; i++ {
		i := i
		stream := rng.New(42).ForkNamed(fmt.Sprintf("gen-%d", i))
		e := lps[i].Engine
		var arrival func()
		arrival = func() {
			now := e.Now()
			fold(i, uint64(now*1e6))
			dst := lps[(i+1)%n]
			delay := lookahead + stream.Exp(0.5)
			payload := stream.Uint64()
			k.Send(lps[i], dst, delay, 128, func() {
				j := dst.ID
				fold(j, payload)
				fold(j, uint64(dst.Engine.Now()*1e6))
				dst.Engine.AfterTransient(0.25, func() { fold(j, 7) })
			})
			next := stream.Exp(0.2)
			if now+next <= until {
				e.AtTransient(now+next, arrival)
			}
		}
		e.At(stream.Exp(0.2), arrival)
	}
	k.Run(until)
	return digests
}

// TestDeterminismAcrossShardCounts is the kernel's contract: the same model
// partitioned onto 1, 2, 3 and 5 shards produces identical digests, event
// counts and clocks.
func TestDeterminismAcrossShardCounts(t *testing.T) {
	const n, until, lookahead = 7, 500.0, 5.0
	type outcome struct {
		digests []uint64
		fired   []uint64
		windows int
	}
	run := func(shards int) outcome {
		k := NewKernel(shards, lookahead)
		d := ringModel(t, k, n, until)
		var fired []uint64
		for _, lp := range k.LPs() {
			fired = append(fired, lp.Engine.Fired())
			if lp.Engine.Now() != until {
				t.Fatalf("shards=%d: LP %s clock %v, want %v", shards, lp.Name, lp.Engine.Now(), until)
			}
		}
		return outcome{d, fired, k.Stats().Windows}
	}
	want := run(1)
	if want.windows == 0 {
		t.Fatal("serial run executed no windows")
	}
	for _, shards := range []int{2, 3, 5} {
		got := run(shards)
		for i := range want.digests {
			if got.digests[i] != want.digests[i] {
				t.Errorf("shards=%d: LP %d digest %x, want %x", shards, i, got.digests[i], want.digests[i])
			}
			if got.fired[i] != want.fired[i] {
				t.Errorf("shards=%d: LP %d fired %d, want %d", shards, i, got.fired[i], want.fired[i])
			}
		}
		if got.windows != want.windows {
			t.Errorf("shards=%d: %d windows, want %d (barriers must be partition-independent)", shards, got.windows, want.windows)
		}
	}
}

// TestStatsAndBoundary checks message accounting: every send is counted,
// cross-shard traffic only counts pairs on different shards, and the
// critical path is bounded by the total.
func TestStatsAndBoundary(t *testing.T) {
	k := NewKernel(2, 5)
	ringModel(t, k, 4, 200)
	st := k.Stats()
	if st.Sent == 0 {
		t.Fatal("no messages sent")
	}
	if st.CrossShard == 0 || st.CrossShard > st.Sent {
		t.Fatalf("cross-shard %d of %d sent", st.CrossShard, st.Sent)
	}
	if st.CriticalEvents == 0 || st.CriticalEvents > st.TotalEvents {
		t.Fatalf("critical %d of %d total", st.CriticalEvents, st.TotalEvents)
	}
	if s := st.Speedup(); s < 1 || s > 2 {
		t.Fatalf("speedup %v out of [1,2] on 2 shards", s)
	}
	var msgs int64
	var bytes float64
	for _, p := range k.Boundary() {
		msgs += p.Messages
		bytes += p.Bytes
	}
	if msgs != st.Sent {
		t.Fatalf("boundary accounts %d messages, stats say %d", msgs, st.Sent)
	}
	if want := float64(st.Sent) * 128; bytes != want {
		t.Fatalf("boundary bytes %v, want %v", bytes, want)
	}
}

// TestIndependentLPs runs channel-free arms under Infinite lookahead: one
// window, per-LP horizons respected exactly.
func TestIndependentLPs(t *testing.T) {
	k := NewKernel(3, Infinite)
	horizons := []sim.Time{10, 25, 40}
	counts := make([]int, len(horizons))
	for i, h := range horizons {
		i := i
		lp := k.AddLP(fmt.Sprintf("arm-%d", i), sim.New(), h)
		var tick func()
		tick = func() {
			counts[i]++
			lp.Engine.AfterTransient(1, tick)
		}
		lp.Engine.At(0.5, tick)
	}
	k.Run(40)
	for i, h := range horizons {
		lp := k.LPs()[i]
		if lp.Engine.Now() != h {
			t.Errorf("arm %d clock %v, want %v", i, lp.Engine.Now(), h)
		}
		if want := int(h); counts[i] != want {
			t.Errorf("arm %d ticked %d, want %d", i, counts[i], want)
		}
	}
	if w := k.Stats().Windows; w != 1 {
		t.Errorf("independent LPs ran %d windows, want 1", w)
	}
}

// TestLookaheadViolationPanics: a sub-lookahead delay is a model bug the
// kernel must refuse loudly.
func TestLookaheadViolationPanics(t *testing.T) {
	k := NewKernel(2, 5)
	a := k.AddLP("a", sim.New(), 10)
	b := k.AddLP("b", sim.New(), 10)
	a.Engine.At(1, func() {
		defer func() {
			if recover() == nil {
				t.Error("Send below lookahead did not panic")
			}
		}()
		k.Send(a, b, 1, 0, func() {})
	})
	k.Run(10)
}

// TestPartitionContiguous covers balance, contiguity and weighted cuts.
func TestPartitionContiguous(t *testing.T) {
	cases := []struct {
		n, shards int
		weights   []float64
		want      []int
	}{
		{4, 2, nil, []int{0, 0, 1, 1}},
		{5, 2, nil, []int{0, 0, 0, 1, 1}},
		{3, 3, nil, []int{0, 1, 2}},
		{6, 4, nil, []int{0, 0, 1, 2, 2, 3}},
		// One heavy LP pulls the first cut early.
		{4, 2, []float64{10, 1, 1, 1}, []int{0, 1, 1, 1}},
	}
	for _, c := range cases {
		got := PartitionContiguous(c.n, c.shards, c.weights)
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("PartitionContiguous(%d,%d,%v) = %v, want %v", c.n, c.shards, c.weights, got, c.want)
				break
			}
		}
		for i := 1; i < len(got); i++ {
			if got[i] < got[i-1] {
				t.Errorf("partition not contiguous: %v", got)
			}
		}
	}
}

// TestForkNamedStability pins the substream contract: same label, same
// stream; different labels diverge; order of forking elsewhere matters only
// through the parent state (documented Fork semantics).
func TestForkNamedStability(t *testing.T) {
	a := rng.New(7).ForkNamed("shard-0").Uint64()
	b := rng.New(7).ForkNamed("shard-0").Uint64()
	c := rng.New(7).ForkNamed("shard-1").Uint64()
	if a != b {
		t.Fatalf("same label diverged: %x vs %x", a, b)
	}
	if a == c {
		t.Fatalf("different labels collided: %x", a)
	}
}
