package shard

import "testing"

// TestProfileDeterminism is the profiler's contract: a profiled run must
// be byte-identical to an unprofiled one — wall-clock reads are pure
// observation.
func TestProfileDeterminism(t *testing.T) {
	const n, until, lookahead = 7, 500.0, 5.0
	run := func(profile bool) ([]uint64, int) {
		k := NewKernel(3, lookahead)
		if profile {
			k.EnableProfile()
		}
		d := ringModel(t, k, n, until)
		return d, k.Stats().Windows
	}
	plain, plainWin := run(false)
	prof, profWin := run(true)
	if plainWin != profWin {
		t.Fatalf("profiled run executed %d windows, unprofiled %d", profWin, plainWin)
	}
	for i := range plain {
		if plain[i] != prof[i] {
			t.Fatalf("LP %d digest %x with profiler, %x without", i, prof[i], plain[i])
		}
	}
}

func TestProfileReport(t *testing.T) {
	const shards, lookahead = 2, 5.0
	k := NewKernel(shards, lookahead)
	k.EnableProfile()
	ringModel(t, k, 4, 200)

	r, ok := k.ProfileReport()
	if !ok {
		t.Fatal("ProfileReport not available after EnableProfile")
	}
	if r.Windows != k.Stats().Windows || r.Windows == 0 {
		t.Fatalf("report windows %d, kernel %d", r.Windows, k.Stats().Windows)
	}
	if r.LimitedWindows == 0 || r.LimitedWindows > uint64(r.Windows) {
		t.Fatalf("limited windows %d of %d", r.LimitedWindows, r.Windows)
	}
	if r.Wall <= 0 {
		t.Fatal("window wall time not measured")
	}
	if len(r.Shards) != shards {
		t.Fatalf("%d shard rows, want %d", len(r.Shards), shards)
	}
	var events uint64
	for _, sp := range r.Shards {
		events += sp.Events
		if sp.Busy < 0 || sp.Busy > r.Wall {
			t.Errorf("shard %d busy %v outside [0, wall %v]", sp.Shard, sp.Busy, r.Wall)
		}
		if sp.Busy+sp.Idle > r.Wall+r.Wall/100 {
			t.Errorf("shard %d busy+idle %v exceeds wall %v", sp.Shard, sp.Busy+sp.Idle, r.Wall)
		}
		if sp.Utilization < 0 || sp.Utilization > 1 {
			t.Errorf("shard %d utilization %v", sp.Shard, sp.Utilization)
		}
		if sp.LPs != 2 {
			t.Errorf("shard %d has %d LPs, want 2", sp.Shard, sp.LPs)
		}
	}
	if events != k.Stats().TotalEvents {
		t.Errorf("shard rows account %d events, stats say %d", events, k.Stats().TotalEvents)
	}

	// Limiter attribution: every limited window is attributed exactly once.
	var attributed uint64
	for _, ls := range r.Limiters {
		attributed += ls.Windows
		if ls.Name == "" || ls.LP < 0 || ls.LP >= 4 {
			t.Errorf("bad limiter row %+v", ls)
		}
	}
	if attributed != r.LimitedWindows {
		t.Errorf("limiters account %d windows, report says %d", attributed, r.LimitedWindows)
	}
	for i := 1; i < len(r.Limiters); i++ {
		if r.Limiters[i].Windows > r.Limiters[i-1].Windows {
			t.Errorf("limiters not sorted by descending windows: %+v", r.Limiters)
		}
	}

	// Pair attribution: the ring model sends at lookahead + Exp jitter, so
	// every pair's observed MinDelay must be at (or just above) lookahead.
	if len(r.Pairs) == 0 {
		t.Fatal("no boundary pairs recorded")
	}
	for _, p := range r.Pairs {
		if p.MinDelay < lookahead {
			t.Errorf("pair %d→%d MinDelay %v below lookahead %v", p.SrcShard, p.DstShard, p.MinDelay, lookahead)
		}
	}

	// Registry read-throughs agree with the report.
	for s := 0; s < shards; s++ {
		if got := k.BusySeconds(s); got != r.Shards[s].Busy.Seconds() {
			t.Errorf("BusySeconds(%d) = %v, report %v", s, got, r.Shards[s].Busy.Seconds())
		}
		if got := k.IdleSeconds(s); got != r.Shards[s].Idle.Seconds() {
			t.Errorf("IdleSeconds(%d) = %v, report %v", s, got, r.Shards[s].Idle.Seconds())
		}
	}
}

func TestProfileDisabledIsZero(t *testing.T) {
	k := NewKernel(2, 5)
	ringModel(t, k, 4, 50)
	if _, ok := k.ProfileReport(); ok {
		t.Fatal("ProfileReport available without EnableProfile")
	}
	if k.Profiled() {
		t.Fatal("Profiled() true without EnableProfile")
	}
	if k.BusySeconds(0) != 0 || k.IdleSeconds(1) != 0 {
		t.Fatal("busy/idle nonzero without EnableProfile")
	}
}

func TestEnableProfileAfterRunPanics(t *testing.T) {
	k := NewKernel(1, 5)
	ringModel(t, k, 2, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("EnableProfile after Run did not panic")
		}
	}()
	k.EnableProfile()
}
