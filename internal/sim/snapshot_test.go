package sim

import (
	"strings"
	"testing"
)

// buildTwin constructs a small but representative engine: tick domains,
// cancellable one-shots, transient events and a retimed completion.
func buildTwin(drainTo Time) *Engine {
	e := New()
	n := 0
	e.Domain(10).Subscribe(func(Time) { n++ })
	e.Domain(60).Subscribe(func(Time) { n += 2 })
	for i := 0; i < 5; i++ {
		e.AfterTransient(Time(7*i+3), func() { n++ })
	}
	ev := e.After(41, func() { n += 3 })
	e.After(20, func() { e.Reset(ev, e.Now()+100) })
	e.After(500, func() {}) // beyond the drain horizon: stays pending
	e.Run(drainTo)
	return e
}

// TestSnapshotIdenticalHistories: two engines with identical histories
// capture identical EngineStates, and RestoreEngine accepts the twin.
func TestSnapshotIdenticalHistories(t *testing.T) {
	a := buildTwin(120)
	b := buildTwin(120)
	sa, sb := a.Snapshot(), b.Snapshot()
	if sa != sb {
		t.Fatalf("twin snapshots differ: %+v vs %+v", sa, sb)
	}
	if sa.Pending == 0 {
		t.Fatal("test engine has no pending events; heap digest is vacuous")
	}
	if err := RestoreEngine(b, sa); err != nil {
		t.Fatalf("restore of identical twin rejected: %v", err)
	}
}

// TestSnapshotDetectsDivergence: each kind of divergence — clock, history
// length, schedule content — is caught and named.
func TestSnapshotDetectsDivergence(t *testing.T) {
	base := buildTwin(120).Snapshot()

	ahead := buildTwin(120)
	ahead.Run(130)
	if err := RestoreEngine(ahead, base); err == nil || !strings.Contains(err.Error(), "clock") {
		t.Fatalf("clock divergence not named: %v", err)
	}

	extra := buildTwin(120)
	extra.After(400, func() {})
	err := RestoreEngine(extra, base)
	if err == nil {
		t.Fatal("extra pending event accepted")
	}

	// Same pending count, different schedule: cancel one event and add
	// another at a different time.
	reshaped := buildTwin(120)
	st := reshaped.Snapshot()
	if st != base {
		t.Fatalf("twin setup drifted: %+v vs %+v", st, base)
	}
	reshaped.After(400, func() {})
	withExtra := reshaped.Snapshot()
	if withExtra.HeapDigest == base.HeapDigest {
		t.Fatal("heap digest ignored a schedule change")
	}
}

// TestSnapshotAfterContinuation: continuing past a verified snapshot
// instant leaves both twins agreeing again at any later instant — the
// resumability property the checkpoint layer builds on.
func TestSnapshotAfterContinuation(t *testing.T) {
	a := buildTwin(120)
	b := buildTwin(120)
	if err := RestoreEngine(b, a.Snapshot()); err != nil {
		t.Fatalf("restore: %v", err)
	}
	a.Run(600)
	b.Run(600)
	if sa, sb := a.Snapshot(), b.Snapshot(); sa != sb {
		t.Fatalf("continuations diverged: %+v vs %+v", sa, sb)
	}
}

// TestInjectQueueResume: the seq counter resumes monotonically and never
// moves backwards.
func TestInjectQueueResume(t *testing.T) {
	q := NewInjectQueue()
	for i := 0; i < 3; i++ {
		if _, ok := q.Inject(func(uint64) {}); !ok {
			t.Fatal("inject refused on open queue")
		}
	}
	if got := q.NextSeq(); got != 3 {
		t.Fatalf("NextSeq %d, want 3", got)
	}
	q.ResumeAt(10)
	if got := q.NextSeq(); got != 10 {
		t.Fatalf("NextSeq after ResumeAt(10): %d", got)
	}
	q.ResumeAt(5) // lowering must be a no-op
	if got := q.NextSeq(); got != 10 {
		t.Fatalf("ResumeAt lowered the counter to %d", got)
	}
	seq, ok := q.Inject(func(uint64) {})
	if !ok || seq != 10 {
		t.Fatalf("post-resume inject got seq %d ok=%v, want 10", seq, ok)
	}
}
