package sim

// Ticker invokes a callback at a fixed simulated period. Thermal zone
// integration, metric sampling and thermostat control loops are tickers.
type Ticker struct {
	engine *Engine
	period Time
	fn     func(now Time)
	ev     *Event
	done   bool
}

// Every starts a ticker firing first at now+period and then each period.
// The callback receives the firing time. Stop the ticker to end it.
func Every(e *Engine, period Time, fn func(now Time)) *Ticker {
	if period <= 0 {
		panic("sim: ticker with non-positive period")
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.engine.After(t.period, func() {
		if t.done {
			return
		}
		t.fn(t.engine.Now())
		if !t.done { // fn may have stopped us
			t.arm()
		}
	})
}

// Stop halts the ticker. It is safe to call more than once and from within
// the ticker's own callback.
func (t *Ticker) Stop() {
	if t.done {
		return
	}
	t.done = true
	t.engine.Cancel(t.ev)
}

// Period returns the ticker period.
func (t *Ticker) Period() Time { return t.period }
