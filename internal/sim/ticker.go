package sim

// Ticker invokes a callback at a fixed simulated period. It is a thin
// compatibility wrapper over the engine's tick domains: every ticker of
// the same period and phase shares one heap event (see TickDomain), so
// keeping hundreds of tickers costs one heap operation per period, not one
// per ticker. Thermal zone integration, metric sampling and thermostat
// control loops are tickers.
type Ticker struct {
	sub    *Sub
	period Time
}

// Every starts a ticker firing first at now+period and then each period.
// The callback receives the firing time. Stop the ticker to end it.
func Every(e *Engine, period Time, fn func(now Time)) *Ticker {
	if period <= 0 {
		panic("sim: ticker with non-positive period")
	}
	return &Ticker{sub: e.Domain(period).Subscribe(fn), period: period}
}

// Stop halts the ticker. It is safe to call more than once and from within
// the ticker's own callback.
func (t *Ticker) Stop() { t.sub.Stop() }

// Period returns the ticker period.
func (t *Ticker) Period() Time { return t.period }
