package sim

import (
	"sync"
	"testing"
	"time"
)

func TestPacedHealthCounters(t *testing.T) {
	e := New()
	for i := 0; i < 20; i++ {
		at := Time(i) * 2
		e.At(at, func() {})
	}
	clk := &fakeClock{now: time.Unix(0, 0)}
	p := &Paced{Speed: 10, MaxSlice: 5, Tick: 100 * time.Millisecond, Clock: clk}
	p.Drive(e, 50)
	if p.Slices() == 0 {
		t.Fatal("no slices counted")
	}
	if got := p.LastSliceReached(); got != 50 {
		t.Fatalf("last slice reached %v, want 50", got)
	}
	// Drained to the horizon: the sim cannot still be behind the target.
	if lag := p.LagSeconds(); lag > 0 {
		t.Fatalf("lag %v after reaching horizon", lag)
	}
}

// TestPacedSyncConcurrentScrapes is the live scrape path under -race:
// while a paced drive advances and drains injections, scraper goroutines
// both enter Sync (the quiescent read path /metrics uses) and read the
// lock-free health counters (the path GaugeFuncs use from inside a
// scrape, where taking Sync again would self-deadlock).
func TestPacedSyncConcurrentScrapes(t *testing.T) {
	e := New()
	var fired int
	var tick func()
	tick = func() {
		fired++
		if e.Now() < 200 {
			e.AtTransient(e.Now()+0.5, tick)
		}
	}
	e.At(0, tick)

	q := NewInjectQueue()
	clk := &fakeClock{now: time.Unix(0, 0)}
	p := &Paced{Speed: 50, MaxSlice: 5, Tick: 10 * time.Millisecond, Clock: clk, Queue: q}

	done := make(chan struct{})
	go func() {
		defer close(done)
		p.Drive(e, 200)
	}()

	var wg sync.WaitGroup
	injected := 0
	var injMu sync.Mutex
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				// The /metrics path: a quiescent read at a slice boundary.
				var nowAt Time
				p.Sync(func() { nowAt = e.Now() })
				if nowAt < 0 || nowAt > 200 {
					t.Errorf("sync saw clock %v outside [0,200]", nowAt)
					return
				}
				// The GaugeFunc path: lock-free health reads, mid-slice.
				_ = p.LagSeconds()
				_ = p.Slices()
				_ = p.LastSliceReached()
				// Keep injections flowing so drains and scrapes interleave.
				q.Inject(func(seq uint64) {
					injMu.Lock()
					injected++
					injMu.Unlock()
				})
			}
		}()
	}
	<-done
	wg.Wait()
	if e.Now() != 200 {
		t.Fatalf("drive finished at %v, want 200", e.Now())
	}
	if fired == 0 {
		t.Fatal("no events fired")
	}
	if p.Slices() == 0 {
		t.Fatal("no slices recorded")
	}
}
