// Package sim implements the discrete-event simulation kernel that every
// df3 substrate runs on.
//
// The kernel is deliberately single-threaded: a scenario is a deterministic
// function of its seed, which makes experiments reproducible and failures
// bisectable. Events are closures ordered by (time, sequence); ties are
// broken by insertion order so that a run never depends on heap internals.
// Parallelism in the benchmark harness happens across independent engine
// instances, never inside one.
//
// Periodic work is batched: all callbacks of one period and phase share a
// single TickDomain and therefore a single heap event per tick, firing in
// registration order. One-shot events that are never cancelled can use the
// transient scheduling paths, which recycle Event structs through a free
// list. Together these keep steady-state simulation at O(1) heap
// operations per control tick and ~zero allocations.
package sim

import "fmt"

// Time is simulated time in seconds since the start of the scenario.
type Time = float64

// Common durations, in seconds.
const (
	Second Time = 1
	Minute Time = 60
	Hour   Time = 3600
	Day    Time = 24 * Hour
	Week   Time = 7 * Day
	Year   Time = 365 * Day
)

// Month is the average month length used by the seasonal models.
const Month Time = Year / 12

// Event is a scheduled callback. It is returned by the scheduling methods so
// callers can cancel it.
type Event struct {
	at     Time
	seq    uint64
	fn     func()
	index  int // heap index, -1 once removed
	halted bool
	// pooled events return to the engine free list after firing. Only
	// events whose handle never escapes (AtTransient/AfterTransient) may
	// be pooled: a recycled handle would make a defensive Cancel hit an
	// unrelated event.
	pooled bool
}

// Time returns the time the event is (or was) scheduled for.
func (e *Event) Time() Time { return e.at }

// Cancelled reports whether the event was cancelled before firing.
func (e *Event) Cancelled() bool { return e.halted }

// eventHeap is a hand-rolled binary min-heap ordered by (at, seq). seq is
// unique per scheduled event, so the order is strictly total and the pop
// sequence is independent of internal layout — which is what lets the
// implementation use hole-based sifting with inlined comparisons instead
// of container/heap's interface dispatch without affecting determinism.
type eventHeap []*Event

// before reports whether a fires before b. Never called with a == b, so
// the seq tiebreak is always decisive.
func before(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// up sifts h[j] toward the root, moving parents down into the hole.
func (h eventHeap) up(j int) {
	ev := h[j]
	for j > 0 {
		i := (j - 1) / 2
		p := h[i]
		if before(p, ev) {
			break
		}
		h[j] = p
		p.index = j
		j = i
	}
	h[j] = ev
	ev.index = j
}

// down sifts h[j] toward the leaves; reports whether it moved.
func (h eventHeap) down(j int) bool {
	ev := h[j]
	j0 := j
	n := len(h)
	for {
		l := 2*j + 1
		if l >= n {
			break
		}
		c := h[l]
		if r := l + 1; r < n {
			if cr := h[r]; before(cr, c) {
				l, c = r, cr
			}
		}
		if before(ev, c) {
			break
		}
		h[j] = c
		c.index = j
		j = l
	}
	h[j] = ev
	ev.index = j
	return j > j0
}

// fix restores the heap property around index i after its key changed.
func (h eventHeap) fix(i int) {
	if !h.down(i) {
		h.up(i)
	}
}

// push adds ev to the heap.
func (h *eventHeap) push(ev *Event) {
	ev.index = len(*h)
	*h = append(*h, ev)
	h.up(ev.index)
}

// popMin removes and returns the earliest event.
func (h *eventHeap) popMin() *Event {
	old := *h
	n := len(old) - 1
	min := old[0]
	last := old[n]
	old[n] = nil
	*h = old[:n]
	if n > 0 {
		old[0] = last
		last.index = 0
		(*h).down(0)
	}
	min.index = -1
	return min
}

// remove deletes the event at index i.
func (h *eventHeap) remove(i int) {
	old := *h
	n := len(old) - 1
	ev := old[i]
	if i != n {
		last := old[n]
		old[i] = last
		last.index = i
		old[n] = nil
		*h = old[:n]
		(*h).fix(i)
	} else {
		old[n] = nil
		*h = old[:n]
	}
	ev.index = -1
}

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool
	fired   uint64
	// free is the pool of fireable Event structs for the transient
	// scheduling paths; domains reuse their single event in place instead.
	free []*Event
	// domains indexes live tick domains by (period, next fire time); the
	// key tracks the domain as it re-arms so a new subscriber shares a
	// domain exactly when its first fire would coincide with the domain's.
	domains map[domainKey]*TickDomain
}

// New returns a fresh engine at time zero with a pre-sized event heap, so
// steady-state scenarios never grow it.
func New() *Engine { return &Engine{events: make(eventHeap, 0, 1024)} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far (useful in tests and
// for progress accounting).
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of scheduled, not-yet-fired events.
func (e *Engine) Pending() int { return len(e.events) }

// NextEventTime returns the time of the earliest scheduled event, or false
// when the queue is empty. The sharded kernel uses it to bound conservative
// windows: between barriers, no engine can act before its earliest event, so
// the window end can jump straight to min-next-event + lookahead instead of
// crawling a fixed grid through idle stretches.
func (e *Engine) NextEventTime() (Time, bool) {
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events[0].at, true
}

// At schedules fn at absolute time t. Scheduling in the past panics: it is
// always a model bug and silently clamping it would corrupt causality.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	e.events.push(ev)
	return ev
}

// After schedules fn delay seconds from now. Negative delays panic.
func (e *Engine) After(delay Time, fn func()) *Event {
	return e.At(e.now+delay, fn)
}

// AtTransient schedules fn at absolute time t on a pooled Event. It returns
// no handle — transient events cannot be cancelled — which lets the kernel
// recycle the struct through a free list the moment it fires. High-churn
// schedulers (workload generators, fault renewal processes) that never
// cancel should prefer this over At: steady-state event traffic then
// allocates nothing in the kernel.
func (e *Engine) AtTransient(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.at, ev.fn, ev.halted = t, fn, false
	} else {
		ev = &Event{at: t, fn: fn}
	}
	ev.pooled = true
	ev.seq = e.seq
	e.seq++
	e.events.push(ev)
}

// AfterTransient schedules fn delay seconds from now on a pooled Event.
// See AtTransient.
func (e *Engine) AfterTransient(delay Time, fn func()) {
	e.AtTransient(e.now+delay, fn)
}

// reschedule re-arms a fired event in place with a fresh sequence number.
// Only the tick-domain re-arm path uses it: the event must be out of the
// heap (fired, not cancelled), and reusing the struct plus its closure is
// what makes periodic ticking allocation-free.
func (e *Engine) reschedule(ev *Event, t Time) {
	if t < e.now {
		panic(fmt.Sprintf("sim: rescheduling event at %v before now %v", t, e.now))
	}
	ev.at = t
	ev.seq = e.seq
	e.seq++
	e.events.push(ev)
}

// Reset re-keys a scheduled event to fire at time t with a fresh sequence
// number — observably identical to Cancel followed by re-scheduling the
// same callback, but in place: the heap entry is repositioned with a
// local fix-up, which costs almost nothing when t is near the old time. This
// is the cheap path for schedulers that continually re-derive a completion
// time (e.g. task progress under a changing DVFS level). The event must
// still be scheduled; resetting a fired or cancelled event panics.
func (e *Engine) Reset(ev *Event, t Time) {
	if ev == nil || ev.index < 0 {
		panic("sim: Reset of event not in the schedule")
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: resetting event to %v before now %v", t, e.now))
	}
	ev.at = t
	ev.seq = e.seq
	e.seq++
	e.events.fix(ev.index)
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op, so callers can cancel defensively.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	ev.halted = true
	e.events.remove(ev.index)
}

// Stop makes Run return after the event currently executing.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in order until the queue is empty or the next event
// would fire strictly after `until`. The clock is left at min(until, last
// event time); if events remain, they stay queued and a later Run resumes.
func (e *Engine) Run(until Time) {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		next := e.events[0]
		if next.at > until {
			break
		}
		e.events.popMin()
		e.now = next.at
		e.fired++
		next.fn()
		e.release(next)
	}
	if e.now < until {
		e.now = until
	}
}

// release returns a fired pooled event to the free list. The closure
// reference is dropped so the callback's captures stay collectable.
func (e *Engine) release(ev *Event) {
	if !ev.pooled {
		return
	}
	ev.fn = nil
	ev.pooled = false
	e.free = append(e.free, ev)
}

// Drain runs until the event queue is empty, with a safety cap on the number
// of events to guard against accidental self-perpetuating processes. It
// returns the number of events executed.
func (e *Engine) Drain(maxEvents uint64) uint64 {
	start := e.fired
	for len(e.events) > 0 && !e.stopped {
		if e.fired-start >= maxEvents {
			panic(fmt.Sprintf("sim: Drain exceeded %d events; runaway process?", maxEvents))
		}
		next := e.events[0]
		e.events.popMin()
		e.now = next.at
		e.fired++
		next.fn()
		e.release(next)
	}
	return e.fired - start
}
