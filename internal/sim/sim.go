// Package sim implements the discrete-event simulation kernel that every
// df3 substrate runs on.
//
// The kernel is deliberately single-threaded: a scenario is a deterministic
// function of its seed, which makes experiments reproducible and failures
// bisectable. Events are closures ordered by (time, sequence); ties are
// broken by insertion order so that a run never depends on heap internals.
// Parallelism in the benchmark harness happens across independent engine
// instances, never inside one.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is simulated time in seconds since the start of the scenario.
type Time = float64

// Common durations, in seconds.
const (
	Second Time = 1
	Minute Time = 60
	Hour   Time = 3600
	Day    Time = 24 * Hour
	Week   Time = 7 * Day
	Year   Time = 365 * Day
)

// Month is the average month length used by the seasonal models.
const Month Time = Year / 12

// Event is a scheduled callback. It is returned by the scheduling methods so
// callers can cancel it.
type Event struct {
	at     Time
	seq    uint64
	fn     func()
	index  int // heap index, -1 once removed
	halted bool
}

// Time returns the time the event is (or was) scheduled for.
func (e *Event) Time() Time { return e.at }

// Cancelled reports whether the event was cancelled before firing.
func (e *Event) Cancelled() bool { return e.halted }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool
	fired   uint64
}

// New returns a fresh engine at time zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far (useful in tests and
// for progress accounting).
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of scheduled, not-yet-fired events.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn at absolute time t. Scheduling in the past panics: it is
// always a model bug and silently clamping it would corrupt causality.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn delay seconds from now. Negative delays panic.
func (e *Engine) After(delay Time, fn func()) *Event {
	return e.At(e.now+delay, fn)
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op, so callers can cancel defensively.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	ev.halted = true
	heap.Remove(&e.events, ev.index)
}

// Stop makes Run return after the event currently executing.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in order until the queue is empty or the next event
// would fire strictly after `until`. The clock is left at min(until, last
// event time); if events remain, they stay queued and a later Run resumes.
func (e *Engine) Run(until Time) {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		next := e.events[0]
		if next.at > until {
			break
		}
		heap.Pop(&e.events)
		e.now = next.at
		e.fired++
		next.fn()
	}
	if e.now < until {
		e.now = until
	}
}

// Drain runs until the event queue is empty, with a safety cap on the number
// of events to guard against accidental self-perpetuating processes. It
// returns the number of events executed.
func (e *Engine) Drain(maxEvents uint64) uint64 {
	start := e.fired
	for len(e.events) > 0 && !e.stopped {
		if e.fired-start >= maxEvents {
			panic(fmt.Sprintf("sim: Drain exceeded %d events; runaway process?", maxEvents))
		}
		next := e.events[0]
		heap.Pop(&e.events)
		e.now = next.at
		e.fired++
		next.fn()
	}
	return e.fired - start
}
