package sim_test

import (
	"fmt"

	"df3/internal/sim"
)

// ExampleEngine builds the smallest possible simulation: two events and a
// resumable clock.
func ExampleEngine() {
	e := sim.New()
	e.At(2*sim.Hour, func() { fmt.Println("second at", e.Now()/sim.Hour, "h") })
	e.After(sim.Hour, func() { fmt.Println("first at", e.Now()/sim.Hour, "h") })
	e.Run(sim.Day)
	// Output:
	// first at 1 h
	// second at 2 h
}

// ExampleEvery shows a periodic process stopping itself.
func ExampleEvery() {
	e := sim.New()
	n := 0
	var tk *sim.Ticker
	tk = sim.Every(e, sim.Minute, func(now sim.Time) {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	e.Run(sim.Hour)
	fmt.Println(n, "ticks")
	// Output:
	// 3 ticks
}

// ExampleCalendar maps simulated time onto seasons and office hours.
func ExampleCalendar() {
	cal := sim.NovemberStart
	fmt.Println("month at start:", cal.MonthOfYear(0))
	fmt.Println("month after 3 average months:", cal.MonthOfYear(3*sim.Month))
	fmt.Println("weekend on day 5:", sim.JanuaryStart.IsWeekend(5*sim.Day))
	// Output:
	// month at start: 11
	// month after 3 average months: 2
	// weekend on day 5: true
}
