package sim

// A TickDomain batches every periodic callback of one period behind a
// single heap event: where N Tickers used to cost N heap pushes and pops
// per period, a domain costs one, so a city's control plane is O(1) heap
// operations per tick instead of O(rooms). Subscribers fire in
// registration order — the same deterministic order N individual Tickers
// registered at the same instant would fire in — and the domain re-arms
// from the *scheduled* fire time, never from the clock after callbacks, so
// the grid cannot drift.
//
// A domain's event and re-arm closure are allocated once and reused in
// place, and the subscriber slice keeps its backing storage across
// compactions, so steady-state ticking allocates nothing.
type TickDomain struct {
	engine *Engine
	period Time
	next   Time
	ev     *Event
	subs   []*Sub
	nDead  int
	firing bool
	// active is false once the last subscriber stops; Subscribe re-arms a
	// dormant domain on a fresh grid, exactly as a fresh Ticker would.
	active bool
}

// domainKey identifies a live domain by period and next fire time; the
// engine re-keys the domain as it advances.
type domainKey struct{ period, next Time }

// Sub is one subscription on a tick domain. Stop it to end the callbacks.
type Sub struct {
	d    *TickDomain
	fn   func(now Time)
	dead bool
}

// Domain returns the tick domain of the given period whose next fire is
// now+period, creating it if needed. Two callers share a domain exactly
// when their first fires would coincide, so grids started mid-run keep the
// phase an individual Ticker would have had.
func (e *Engine) Domain(period Time) *TickDomain {
	if period <= 0 {
		panic("sim: tick domain with non-positive period")
	}
	key := domainKey{period, e.now + period}
	if d, ok := e.domains[key]; ok {
		return d
	}
	d := &TickDomain{engine: e, period: period, next: key.next, active: true}
	d.ev = e.At(d.next, d.fire)
	if e.domains == nil {
		e.domains = make(map[domainKey]*TickDomain)
	}
	e.domains[key] = d
	return d
}

// Period returns the domain's tick period.
func (d *TickDomain) Period() Time { return d.period }

// Subscribe registers fn to run every period, first at the domain's next
// fire. Subscribing during a fire of the same domain starts the callback
// at the following tick; subscribing to a dormant domain restarts its grid
// at now+period.
func (d *TickDomain) Subscribe(fn func(now Time)) *Sub {
	if !d.active {
		e := d.engine
		d.next = e.now + d.period
		e.domains[domainKey{d.period, d.next}] = d
		d.ev.halted = false
		e.reschedule(d.ev, d.next)
		d.active = true
	}
	s := &Sub{d: d, fn: fn}
	d.subs = append(d.subs, s)
	return s
}

// Stop ends the subscription. Safe to call more than once and from within
// the subscriber's own callback; stopping a later subscriber during a fire
// prevents its callback this tick, exactly as cancelling its pending event
// would have. When the last subscriber stops, the domain cancels its event
// and unregisters.
func (s *Sub) Stop() {
	if s.dead {
		return
	}
	s.dead = true
	d := s.d
	d.nDead++
	if d.nDead == len(d.subs) && !d.firing {
		d.deactivate()
	}
}

// fire runs one domain tick: re-arm first (from the scheduled time, with a
// fresh sequence number, so relative ordering against other periodic work
// matches what re-arming Tickers produced), then fire the subscribers that
// existed at tick start, then compact out stopped entries.
func (d *TickDomain) fire() {
	e := d.engine
	now := d.next
	d.next = now + d.period
	delete(e.domains, domainKey{d.period, now})
	e.domains[domainKey{d.period, d.next}] = d
	e.reschedule(d.ev, d.next)

	d.firing = true
	n := len(d.subs)
	for i := 0; i < n; i++ {
		if s := d.subs[i]; !s.dead {
			s.fn(now)
		}
	}
	d.firing = false
	if d.nDead > 0 {
		d.compact()
	}
}

// compact removes dead subscribers in place, preserving order and the
// slice's backing storage.
func (d *TickDomain) compact() {
	live := d.subs[:0]
	for _, s := range d.subs {
		if !s.dead {
			live = append(live, s)
		}
	}
	for i := len(live); i < len(d.subs); i++ {
		d.subs[i] = nil
	}
	d.subs = live
	d.nDead = 0
	if len(d.subs) == 0 {
		d.deactivate()
	}
}

// deactivate cancels the domain's event and unregisters it. A later
// Domain() call of the same period starts a fresh grid from its own time,
// just as a fresh Ticker would.
func (d *TickDomain) deactivate() {
	e := d.engine
	if d.ev.index >= 0 {
		e.Cancel(d.ev)
	}
	delete(e.domains, domainKey{d.period, d.next})
	d.subs = d.subs[:0]
	d.nDead = 0
	d.active = false
}
