package sim

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a virtual wall clock: Sleep advances it instantly, so a
// paced drive runs a whole session in microseconds of real time while the
// pacing arithmetic still sees a monotone clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Sleep(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestBatchDriverMatchesEngineRun(t *testing.T) {
	build := func() (*Engine, *[]Time) {
		e := New()
		var fired []Time
		for i := 0; i < 5; i++ {
			at := Time(i) * 10
			e.At(at, func() { fired = append(fired, at) })
		}
		return e, &fired
	}
	e1, f1 := build()
	e1.Run(100)
	e2, f2 := build()
	Batch{}.Drive(e2, 100)
	if e1.Now() != e2.Now() || e1.Fired() != e2.Fired() {
		t.Fatalf("batch drive diverged: now %v vs %v, fired %d vs %d",
			e1.Now(), e2.Now(), e1.Fired(), e2.Fired())
	}
	if len(*f1) != len(*f2) {
		t.Fatalf("fired %d events directly, %d under Batch", len(*f1), len(*f2))
	}
}

func TestPacedTracksWallClock(t *testing.T) {
	e := New()
	clk := &fakeClock{}
	p := &Paced{Speed: 10, MaxSlice: 5, Tick: 100 * time.Millisecond, Clock: clk}
	p.Drive(e, 50)
	// 50 sim seconds at 10x needs 5 wall seconds; the fake clock advanced
	// only through Sleep ticks, so the engine must have reached exactly 50.
	if e.Now() != 50 {
		t.Fatalf("paced drive left clock at %v, want 50", e.Now())
	}
}

func TestPacedSliceBound(t *testing.T) {
	e := New()
	clk := &fakeClock{now: time.Unix(0, 0)}
	var reached []Time
	p := &Paced{
		Speed: 1000, MaxSlice: 7, Tick: time.Second, Clock: clk,
		OnAdvance: func(at Time) { reached = append(reached, at) },
	}
	p.Drive(e, 21)
	if len(reached) == 0 {
		t.Fatal("no OnAdvance callbacks")
	}
	prev := Time(0)
	for _, at := range reached {
		if at-prev > 7 {
			t.Fatalf("slice %v → %v exceeds MaxSlice 7", prev, at)
		}
		prev = at
	}
	if reached[len(reached)-1] != 21 {
		t.Fatalf("final slice reached %v, want 21", reached[len(reached)-1])
	}
}

func TestPacedAppliesInjectionsInSeqOrder(t *testing.T) {
	e := New()
	q := NewInjectQueue()
	var applied []uint64
	var atTimes []Time
	for i := 0; i < 20; i++ {
		q.Inject(func(seq uint64) {
			applied = append(applied, seq)
			atTimes = append(atTimes, e.Now())
		})
	}
	clk := &fakeClock{}
	p := &Paced{Speed: 100, Tick: 10 * time.Millisecond, Clock: clk, Queue: q}
	p.Drive(e, 10)
	if len(applied) != 20 {
		t.Fatalf("applied %d of 20 injections", len(applied))
	}
	for i, seq := range applied {
		if seq != uint64(i) {
			t.Fatalf("injection %d applied with seq %d: not in queue order", i, seq)
		}
	}
	for i := 1; i < len(atTimes); i++ {
		if atTimes[i] < atTimes[i-1] {
			t.Fatalf("injection times went backwards: %v after %v", atTimes[i], atTimes[i-1])
		}
	}
}

func TestPacedStop(t *testing.T) {
	e := New()
	p := &Paced{Speed: 0.001, Tick: time.Millisecond} // would take ~17 min of wall time
	done := make(chan struct{})
	go func() {
		p.Drive(e, 1)
		close(done)
	}()
	time.Sleep(10 * time.Millisecond) //df3:allow(detrand) test-only wait for the drive goroutine to start
	p.Stop()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Drive did not return after Stop")
	}
}

func TestInjectQueueClose(t *testing.T) {
	q := NewInjectQueue()
	if _, ok := q.Inject(func(uint64) {}); !ok {
		t.Fatal("inject into open queue refused")
	}
	q.Close()
	if _, ok := q.Inject(func(uint64) {}); ok {
		t.Fatal("inject into closed queue accepted")
	}
	if got := len(q.Drain()); got != 1 {
		t.Fatalf("drained %d items after close, want the 1 accepted before", got)
	}
}

// TestPacedConcurrentInjection hammers the queue from many goroutines while
// a paced drive is applying — the -race exercise of the ingest boundary.
func TestPacedConcurrentInjection(t *testing.T) {
	e := New()
	q := NewInjectQueue()
	var mu sync.Mutex
	seen := map[uint64]bool{}
	var applied int
	p := &Paced{Speed: 1e6, Tick: 50 * time.Microsecond, Queue: q}

	const producers, perProducer = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Inject(func(seq uint64) {
					// Runs on the driver goroutine; the engine is quiescent.
					e.After(0.001, func() {})
					mu.Lock()
					if seen[seq] {
						t.Errorf("seq %d applied twice", seq)
					}
					seen[seq] = true
					applied++
					mu.Unlock()
				})
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		p.Drive(e, 1e9)
		close(done)
	}()
	wg.Wait()
	// Give the driver time to drain the tail, then stop it.
	for i := 0; i < 1000; i++ {
		if q.Len() == 0 {
			break
		}
		time.Sleep(time.Millisecond) //df3:allow(detrand) test-only polling for queue drain
	}
	p.Stop()
	<-done
	// Anything still queued was injected after the final drain; apply the
	// remainder through a manual drain so the count is exact.
	for _, inj := range q.Drain() {
		inj.Fn(inj.Seq)
	}
	if applied != producers*perProducer {
		t.Fatalf("applied %d of %d injections", applied, producers*perProducer)
	}
}
