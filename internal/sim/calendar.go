package sim

// Calendar maps simulated time onto a civil calendar so the seasonal models
// (weather, occupancy, pricing) can ask "what month is it?". The simulator
// uses an idealised year of 12 equal months of 365/12 days; experiment
// output labels months 1..12 with January = 1.
type Calendar struct {
	// StartDayOfYear is the day of year (0-based, 0 = January 1st) at
	// simulated time zero. Fig. 4 runs start on November 1st (day 304).
	StartDayOfYear float64
}

// DayOfYear returns the fractional day of year in [0,365) at time t.
func (c Calendar) DayOfYear(t Time) float64 {
	d := c.StartDayOfYear + t/Day
	d -= float64(int(d/365)) * 365
	if d < 0 {
		d += 365
	}
	return d
}

// MonthOfYear returns the calendar month 1..12 at time t.
func (c Calendar) MonthOfYear(t Time) int {
	m := int(c.DayOfYear(t)/(365.0/12)) + 1
	if m > 12 {
		m = 12
	}
	return m
}

// HourOfDay returns the fractional hour of day in [0,24) at time t.
func (c Calendar) HourOfDay(t Time) float64 {
	d := c.StartDayOfYear + t/Day
	frac := d - float64(int(d))
	if frac < 0 {
		frac += 1
	}
	return frac * 24
}

// IsWeekend reports whether t falls on a weekend. Simulated time zero is
// taken to be a Monday to keep scenarios easy to reason about.
func (c Calendar) IsWeekend(t Time) bool {
	day := int(c.StartDayOfYear+t/Day) % 7
	if day < 0 {
		day += 7
	}
	return day >= 5
}

// NovemberStart is the calendar used by Fig. 4 style runs: time zero is the
// start of month 11 on the idealised equal-month grid.
var NovemberStart = Calendar{StartDayOfYear: 10 * 365.0 / 12}

// JanuaryStart is the calendar for full-year runs beginning January 1st.
var JanuaryStart = Calendar{StartDayOfYear: 0}
