package sim

import "testing"

func BenchmarkScheduleFire(b *testing.B) {
	e := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(1, func() {})
		if e.Pending() > 1024 {
			e.Run(e.Now() + 2)
		}
	}
	e.Run(e.Now() + 2)
}

func BenchmarkEventChurn(b *testing.B) {
	// The simulator's hot pattern: schedule, cancel half, fire the rest.
	e := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev1 := e.After(1, func() {})
		e.After(1.5, func() {})
		e.Cancel(ev1)
		if e.Pending() > 1024 {
			e.Run(e.Now() + 2)
		}
	}
	e.Run(e.Now() + 2)
}

func BenchmarkTicker(b *testing.B) {
	e := New()
	n := 0
	Every(e, 1, func(Time) { n++ })
	b.ResetTimer()
	e.Run(Time(b.N))
	if n == 0 && b.N > 1 {
		b.Fatal("ticker never fired")
	}
}

// BenchmarkManyTickersSamePeriod is the city control-plane shape: hundreds
// of same-period callbacks (one per room) ticking for a long horizon. One
// iteration is one callback invocation, so ns/op is directly comparable
// across kernels regardless of how the callbacks are scheduled.
func BenchmarkManyTickersSamePeriod(b *testing.B) {
	const rooms = 512
	e := New()
	n := 0
	for i := 0; i < rooms; i++ {
		Every(e, 60, func(Time) { n++ })
	}
	b.ReportAllocs()
	b.ResetTimer()
	ticks := b.N/rooms + 1
	e.Run(Time(ticks) * 60)
	b.StopTimer()
	if n < b.N {
		b.Fatalf("fired %d callbacks, want >= %d", n, b.N)
	}
}
