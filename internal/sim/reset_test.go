package sim

import (
	"reflect"
	"testing"
)

// TestResetMovesSingleFiring: a Reset event fires exactly once, at its new
// time — never a stale completion at the old time.
func TestResetMovesSingleFiring(t *testing.T) {
	e := New()
	var fires []Time
	ev := e.At(15, func() { fires = append(fires, e.Now()) })
	e.Reset(ev, 25)
	e.Run(100)
	if len(fires) != 1 || fires[0] != 25 {
		t.Fatalf("fires = %v, want exactly [25]", fires)
	}
	if e.Pending() != 0 {
		t.Fatalf("%d events still pending after Run", e.Pending())
	}
}

// TestResetUnderTickDomains: resetting an ordinary event back and forth
// across a live tick-domain grid neither duplicates the event nor disturbs
// the domain's ticks.
func TestResetUnderTickDomains(t *testing.T) {
	e := New()
	var order []string
	log := func(s string) func(Time) {
		return func(Time) { order = append(order, s) }
	}
	d := e.Domain(10)
	d.Subscribe(log("tick"))

	ev := e.At(15, func() { order = append(order, "ev") })
	e.Reset(ev, 35) // past two ticks
	e.Reset(ev, 12) // back between the first and second tick
	e.Run(40)

	want := []string{"tick", "ev", "tick", "tick", "tick"} // 10, 12, 20, 30, 40
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

// TestResetOntoDomainTick: an event Reset onto the exact time of a domain
// tick fires after the domain (the Reset re-sequences it as the youngest
// event at that instant), matching what scheduling a fresh event would do.
func TestResetOntoDomainTick(t *testing.T) {
	e := New()
	var order []string
	d := e.Domain(10)
	d.Subscribe(func(Time) { order = append(order, "tick") })
	ev := e.At(5, func() { order = append(order, "ev") })
	e.Reset(ev, 10)
	e.Run(10)
	if want := []string{"tick", "ev"}; !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

// TestResetFromSubscriber: a domain subscriber may Reset a pending event to
// the current instant; it fires once, this tick, after the domain event.
func TestResetFromSubscriber(t *testing.T) {
	e := New()
	var fires []Time
	ev := e.At(50, func() { fires = append(fires, e.Now()) })
	d := e.Domain(10)
	reset := false
	d.Subscribe(func(now Time) {
		if !reset && now >= 20 {
			reset = true
			e.Reset(ev, now)
		}
	})
	e.Run(60)
	if len(fires) != 1 || fires[0] != 20 {
		t.Fatalf("fires = %v, want exactly [20]", fires)
	}
}

// TestResetRepeated: many Resets across many ticks leave one firing, a
// correct Fired() count and an empty queue.
func TestResetRepeated(t *testing.T) {
	e := New()
	fired := 0
	ev := e.At(1, func() { fired++ })
	d := e.Domain(7)
	d.Subscribe(func(Time) {})
	for i := 1; i <= 20; i++ {
		e.Reset(ev, Time(i*3))
	}
	e.Run(70)
	if fired != 1 {
		t.Fatalf("event fired %d times", fired)
	}
	// 10 domain ticks (7..70) + 1 event.
	if e.Fired() != 11 {
		t.Fatalf("Fired() = %d, want 11", e.Fired())
	}
	if nt, any := e.NextEventTime(); !any || nt != 77 {
		t.Fatalf("NextEventTime = %v,%v, want 77 (domain re-arm)", nt, any)
	}
}

// TestResetPanics: Reset of a never-scheduled, already-fired or cancelled
// event panics, as does a Reset into the past.
func TestResetPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	e := New()
	expectPanic("nil event", func() { e.Reset(nil, 5) })

	fired := e.At(1, func() {})
	e.Run(2)
	expectPanic("already fired", func() { e.Reset(fired, 5) })

	cancelled := e.At(10, func() {})
	e.Cancel(cancelled)
	expectPanic("cancelled", func() { e.Reset(cancelled, 15) })

	past := e.At(10, func() {})
	expectPanic("into the past", func() { e.Reset(past, 1) })
}
