package sim

import (
	"sync"
	"sync/atomic"
	"time"
)

// This file is the clock boundary. A Target is anything that can advance
// simulated time — a bare Engine, a shard kernel, a whole federation — and
// a Driver decides how fast its clock runs relative to the host's:
//
//   - Batch is the run-to-completion loop every experiment uses: simulated
//     time advances as fast as events can execute, wall-clock is invisible.
//   - Paced advances simulated time in bounded slices against the wall
//     clock, draining an InjectQueue of external events between slices —
//     the serving mode, where real clients submit requests to a live
//     simulation and wait for real outcomes.
//
// A paced session stays replayable: every injection applies at a known
// (sim time, seq) instant and every slice boundary is observable through
// OnAdvance, so a recorded arrival log driven back through the Batch
// driver reproduces the session byte for byte. The simulation itself
// never reads the wall clock — pacing lives entirely in this layer.

// Target is a drivable simulation: a clock plus a run loop that executes
// all events up to a horizon and leaves the clock there.
type Target interface {
	// Now returns the target's current simulated time.
	Now() Time
	// Run executes events in order until the queue is empty or the next
	// event would fire strictly after until, leaving the clock at
	// min(until, last event time) — Engine.Run semantics.
	Run(until Time)
}

// Driver advances a Target to a horizon under some clock policy.
type Driver interface {
	Drive(t Target, until Time)
}

// Batch is the run-to-completion driver: simulated time is decoupled from
// the wall clock entirely. It is the zero-cost wrapper around the loop
// every experiment always used.
type Batch struct{}

// Drive runs t to until as fast as events execute.
func (Batch) Drive(t Target, until Time) { t.Run(until) }

// Clock abstracts the wall clock so the paced loop is testable with a
// virtual clock. The simulation proper must never see this interface —
// only drivers hold one.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

// WallClock is the real host clock.
type WallClock struct{}

// Now reads the host clock.
func (WallClock) Now() time.Time {
	return time.Now() //df3:allow(detrand) the paced driver is the one sanctioned wall-clock boundary; sim state never reads it
}

// Sleep blocks the driving goroutine.
func (WallClock) Sleep(d time.Duration) { time.Sleep(d) }

// Paced drives a Target in real time (or a scaled multiple of it): wall
// time w since Drive started maps to simulated time start + w·Speed. Each
// loop iteration drains the injection queue — applying external events at
// the target's current simulated time — then runs one bounded slice. When
// the simulation is ahead of the wall clock the loop sleeps; when behind
// (after a scheduling hiccup) it runs slices back to back until caught up.
//
// Drive holds an internal mutex across each drain+run slice; Sync runs a
// closure under the same mutex, which is how metric scrapes and snapshot
// reads observe a live simulation without racing it.
type Paced struct {
	// Speed is simulated seconds per wall second (default 1: real time).
	Speed float64
	// MaxSlice bounds how much simulated time one slice may cover, so a
	// stalled host clock cannot make the simulation leap (default 1 s).
	MaxSlice Time
	// Tick is the wall-clock poll interval while waiting for the wall to
	// catch up (default 2 ms). It bounds injection latency.
	Tick time.Duration
	// Queue is the external event source (nil: no injections).
	Queue *InjectQueue
	// OnAdvance, when set, observes every slice boundary after the target
	// reached it — the hook arrival-log recorders use to make a paced
	// session replayable through the Batch driver.
	OnAdvance func(reached Time)
	// Clock defaults to WallClock.
	Clock Clock

	mu      sync.Mutex
	stopped atomic.Bool

	// Health telemetry, updated every loop iteration and read by metric
	// scrapes. These are atomics, not mu-guarded state, deliberately: a
	// scrape-time GaugeFunc already runs inside Sync (the registry
	// evaluates read-throughs under its own lock while the driver mutex is
	// held), so a gauge that called Sync again would self-deadlock.
	// Lock-free reads keep driver health observable from any goroutine —
	// including mid-slice, when the driver is busy.
	lagMicros    atomic.Int64 // wall-target minus sim clock, µs of sim time
	slices       atomic.Uint64
	lastSliceSim atomic.Int64 // last reached boundary, µs of sim time
}

// LagSeconds reports how far the simulation currently trails the pacing
// target: target sim time implied by the wall clock minus the target's
// actual clock, in simulated seconds. Near zero when healthy; growing
// when slices can't keep up with real time (host overload, GC stalls).
// Negative values mean the clamp (MaxSlice/horizon) has the sim ahead.
func (p *Paced) LagSeconds() float64 {
	return float64(p.lagMicros.Load()) / 1e6
}

// Slices reports how many slices Drive has executed.
func (p *Paced) Slices() uint64 { return p.slices.Load() }

// LastSliceReached reports the simulated time of the most recent slice
// boundary (0 before the first).
func (p *Paced) LastSliceReached() Time {
	return Time(p.lastSliceSim.Load()) / 1e6
}

// Stop makes Drive return after the slice currently executing. Safe from
// any goroutine.
func (p *Paced) Stop() { p.stopped.Store(true) }

// Drive paces t to until, returning when the horizon is reached or Stop
// is called. Injections pending at return stay queued.
func (p *Paced) Drive(t Target, until Time) {
	speed := p.Speed
	if speed <= 0 {
		speed = 1
	}
	slice := p.MaxSlice
	if slice <= 0 {
		slice = Second
	}
	tick := p.Tick
	if tick <= 0 {
		tick = 2 * time.Millisecond
	}
	clk := p.Clock
	if clk == nil {
		clk = WallClock{}
	}
	// One tick's worth of simulated time is the finest slice worth taking:
	// advancing in smaller grains would spin the loop hot against the wall
	// clock and flood OnAdvance (and any arrival log behind it) with
	// micro-slices. The horizon is the one exception — the final sliver
	// must run however small, or Drive could never terminate.
	minSlice := Time(tick.Seconds()) * Time(speed)
	if minSlice > slice {
		minSlice = slice
	}
	p.stopped.Store(false)
	wall0 := clk.Now()
	sim0 := t.Now()
	for !p.stopped.Load() {
		p.mu.Lock()
		if p.Queue != nil {
			for _, inj := range p.Queue.Drain() {
				inj.Fn(inj.Seq)
			}
		}
		target := sim0 + Time(clk.Now().Sub(wall0).Seconds())*speed
		if target > until {
			target = until
		}
		wallTarget := target
		if lim := t.Now() + slice; target > lim {
			target = lim
		}
		advanced := false
		if pending := target - t.Now(); pending > 0 && (pending >= minSlice || target == until) {
			t.Run(target)
			if p.OnAdvance != nil {
				p.OnAdvance(target)
			}
			p.slices.Add(1)
			p.lastSliceSim.Store(int64(target * 1e6))
			advanced = true
		}
		// Lag is measured after the slice: how much simulated time the
		// wall-clock target is still owed. Persistently positive lag means
		// the host cannot keep up at this Speed.
		p.lagMicros.Store(int64((wallTarget - t.Now()) * 1e6))
		done := t.Now() >= until
		p.mu.Unlock()
		if done {
			return
		}
		if !advanced {
			// Caught up with the wall clock; wait for it.
			clk.Sleep(tick)
		}
	}
}

// Sync runs fn mutually excluded with the drive loop's slices, so fn sees
// the simulation quiescent at a slice boundary. Calling it when no Drive
// is running is also safe — the mutex is simply uncontended.
func (p *Paced) Sync(fn func()) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fn()
}
