package sim

import (
	"fmt"
	"math"
	"sort"
)

// Engine snapshot/restore — the copyable-state contract behind
// checkpoint/restore (and, later, speculative window execution).
//
// A Go closure cannot be serialised, so an Engine's event heap is never
// written to disk byte for byte. Instead df3 snapshots are *logical*: the
// determinism contract (everything downstream of the seed, enforced by
// df3lint) makes engine state a pure function of (build configuration,
// external-input log), so a snapshot seals that recipe plus the engine's
// kernel-visible state — clock, sequence counter, fired count, and a
// digest over the pending event heap (which covers tick-domain re-arms and
// pending completion events positionally). Restore rebuilds the engine
// from the recipe, replays the inputs, and RestoreEngine then proves the
// rebuilt engine is the checkpointed one: every field of its EngineState,
// including the heap digest, must match bit for bit. A continuation from a
// verified restore is byte-identical to the uninterrupted run.

// EngineState is the copyable kernel-visible state of an Engine. It is a
// plain value: comparable, serialisable, and cheap to capture (O(pending)
// for the heap digest, allocation-light). The statefp contract keeps the
// capture, the restore proof and the checkpoint codec covering every
// field: growing the struct without updating all four is a df3lint
// finding.
//
//df3:statefp df3/internal/sim.Engine.Snapshot df3/internal/sim.RestoreEngine df3/internal/checkpoint.Snapshot.Encode df3/internal/checkpoint.Read
type EngineState struct {
	// Now is the engine clock.
	Now Time
	// Seq is the next event sequence number. Event ordering ties break on
	// seq, so two engines agree on future behaviour only if their seq
	// counters agree.
	Seq uint64
	// Fired counts events executed so far.
	Fired uint64
	// Pending counts scheduled, not-yet-fired events.
	Pending int
	// HeapDigest folds every pending event's (at, seq) stamp, in fire
	// order, into an FNV-1a digest — tick domains, retimed completions and
	// transient events all leave their fingerprint here without the
	// closures themselves being serialised.
	HeapDigest uint64
}

// Snapshot captures the engine's kernel-visible state. The engine must be
// quiescent (not inside Run); snapshots are typically taken at driver
// slice boundaries or shard window barriers.
func (e *Engine) Snapshot() EngineState {
	return EngineState{
		Now:        e.now,
		Seq:        e.seq,
		Fired:      e.fired,
		Pending:    len(e.events),
		HeapDigest: e.heapDigest(),
	}
}

// heapDigest folds the pending (at, seq) stamps in fire order. The heap
// slice's internal layout is not deterministic across histories that agree
// on contents, so the stamps are sorted by (at, seq) — the total fire
// order — before folding.
func (e *Engine) heapDigest() uint64 {
	type stamp struct {
		at  Time
		seq uint64
	}
	stamps := make([]stamp, len(e.events))
	for i, ev := range e.events {
		stamps[i] = stamp{ev.at, ev.seq}
	}
	sort.Slice(stamps, func(i, j int) bool {
		if stamps[i].at != stamps[j].at {
			return stamps[i].at < stamps[j].at
		}
		return stamps[i].seq < stamps[j].seq
	})
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= prime
	}
	for _, s := range stamps {
		mix(timeBits(s.at))
		mix(s.seq)
	}
	return h
}

// timeBits returns the IEEE-754 bit pattern of a sim time for hashing.
func timeBits(t Time) uint64 { return math.Float64bits(float64(t)) }

// RestoreEngine adopts a snapshot into a rebuilt engine: it verifies that
// e — freshly reconstructed from the snapshot's recipe and replayed to the
// snapshot instant — reached exactly the state `want` recorded, field by
// field. On success e is, bit for bit, the engine the snapshot was taken
// from and can continue as if never interrupted. On divergence it returns
// an error naming the first differing field; continuing such an engine
// would silently fork history, so callers must treat the error as fatal
// for the restore.
func RestoreEngine(e *Engine, want EngineState) error {
	got := e.Snapshot()
	switch {
	case got.Now != want.Now:
		return fmt.Errorf("sim: restore clock mismatch: rebuilt engine at %v, snapshot at %v", got.Now, want.Now)
	case got.Seq != want.Seq:
		return fmt.Errorf("sim: restore seq mismatch: rebuilt %d, snapshot %d (event orderings would diverge)", got.Seq, want.Seq)
	case got.Fired != want.Fired:
		return fmt.Errorf("sim: restore fired-count mismatch: rebuilt %d, snapshot %d", got.Fired, want.Fired)
	case got.Pending != want.Pending:
		return fmt.Errorf("sim: restore pending-count mismatch: rebuilt %d, snapshot %d", got.Pending, want.Pending)
	case got.HeapDigest != want.HeapDigest:
		return fmt.Errorf("sim: restore heap digest mismatch: rebuilt %#x, snapshot %#x (same counts, different schedule)", got.HeapDigest, want.HeapDigest)
	}
	return nil
}
