package sim

import (
	"sort"
	"testing"
	"testing/quick"

	"df3/internal/rng"
)

func TestEventsFireInOrder(t *testing.T) {
	e := New()
	var got []Time
	for _, at := range []Time{5, 1, 3, 2, 4} {
		at := at
		e.At(at, func() { got = append(got, e.Now()) })
	}
	e.Run(10)
	want := []Time{1, 2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTieBreakByInsertionOrder(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(1, func() { got = append(got, i) })
	}
	e.Run(2)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events fired out of insertion order: %v", got)
		}
	}
}

func TestRunStopsAtUntil(t *testing.T) {
	e := New()
	fired := false
	e.At(5, func() { fired = true })
	e.Run(4)
	if fired {
		t.Error("event at t=5 fired during Run(4)")
	}
	if e.Now() != 4 {
		t.Errorf("clock = %v, want 4", e.Now())
	}
	e.Run(10)
	if !fired {
		t.Error("event did not fire on resumed run")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New()
	e.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(1, func() {})
	})
	e.Run(10)
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.At(5, func() { fired = true })
	e.Cancel(ev)
	e.Run(10)
	if fired {
		t.Error("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Error("event does not report cancellation")
	}
	// Double-cancel and cancelling nil must be safe.
	e.Cancel(ev)
	e.Cancel(nil)
}

func TestCancelOneOfMany(t *testing.T) {
	e := New()
	var got []int
	evs := make([]*Event, 10)
	for i := 0; i < 10; i++ {
		i := i
		evs[i] = e.At(Time(i), func() { got = append(got, i) })
	}
	e.Cancel(evs[3])
	e.Cancel(evs[7])
	e.Run(20)
	if len(got) != 8 {
		t.Fatalf("fired %d events, want 8: %v", len(got), got)
	}
	for _, v := range got {
		if v == 3 || v == 7 {
			t.Errorf("cancelled event %d fired", v)
		}
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := New()
	var got []Time
	e.At(1, func() {
		e.After(1, func() { got = append(got, e.Now()) })
		e.After(3, func() { got = append(got, e.Now()) })
	})
	e.Run(10)
	if len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Errorf("chained events fired at %v, want [2 4]", got)
	}
}

func TestStop(t *testing.T) {
	e := New()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run(100)
	if count != 3 {
		t.Errorf("Stop did not halt the loop: %d events fired", count)
	}
	// Resume finishes the rest.
	e.Run(100)
	if count != 10 {
		t.Errorf("resume after Stop fired %d total, want 10", count)
	}
}

func TestDrainCapPanics(t *testing.T) {
	e := New()
	var loop func()
	loop = func() { e.After(1, loop) }
	e.After(1, loop)
	defer func() {
		if recover() == nil {
			t.Error("Drain did not panic on runaway process")
		}
	}()
	e.Drain(100)
}

func TestAfterNegativePanics(t *testing.T) {
	e := New()
	e.Run(5)
	defer func() {
		if recover() == nil {
			t.Error("After with negative delay did not panic")
		}
	}()
	e.After(-1, func() {})
}

// Property: for any set of (time, id) pairs, events fire sorted by time with
// ties broken by insertion order — the causality contract everything else
// in the simulator relies on.
func TestOrderingProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		e := New()
		type rec struct {
			at  Time
			seq int
		}
		var fired []rec
		for i, r := range raw {
			at := Time(r % 1000)
			i := i
			e.At(at, func() { fired = append(fired, rec{at, i}) })
		}
		e.Run(1e6)
		if len(fired) != len(raw) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool {
			if fired[i].at != fired[j].at {
				return fired[i].at < fired[j].at
			}
			return fired[i].seq < fired[j].seq
		})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: random interleavings of schedule/cancel never lose or duplicate
// a non-cancelled event.
func TestCancelConservationProperty(t *testing.T) {
	s := rng.New(99)
	f := func(n uint8) bool {
		e := New()
		total := int(n%64) + 1
		firedCount := 0
		evs := make([]*Event, total)
		for i := 0; i < total; i++ {
			evs[i] = e.At(Time(s.Intn(50)), func() { firedCount++ })
		}
		cancelled := 0
		for i := 0; i < total; i++ {
			if s.Bool(0.3) {
				e.Cancel(evs[i])
				cancelled++
			}
		}
		e.Run(100)
		return firedCount == total-cancelled
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTickerFiresPeriodically(t *testing.T) {
	e := New()
	var times []Time
	Every(e, 10, func(now Time) { times = append(times, now) })
	e.Run(55)
	want := []Time{10, 20, 30, 40, 50}
	if len(times) != len(want) {
		t.Fatalf("ticker fired %d times, want %d", len(times), len(want))
	}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("tick %d at %v, want %v", i, times[i], want[i])
		}
	}
}

func TestTickerStop(t *testing.T) {
	e := New()
	count := 0
	var tk *Ticker
	tk = Every(e, 1, func(now Time) {
		count++
		if count == 5 {
			tk.Stop()
		}
	})
	e.Run(100)
	if count != 5 {
		t.Errorf("stopped ticker fired %d times, want 5", count)
	}
	tk.Stop() // double stop is safe
}

func TestTickerZeroPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-period ticker did not panic")
		}
	}()
	Every(New(), 0, func(Time) {})
}

func TestCalendarMonths(t *testing.T) {
	c := JanuaryStart
	if m := c.MonthOfYear(0); m != 1 {
		t.Errorf("January start month = %d", m)
	}
	if m := c.MonthOfYear(6 * Month); m != 7 {
		t.Errorf("month after 6 avg months = %d, want 7", m)
	}
	n := NovemberStart
	if m := n.MonthOfYear(0); m != 11 {
		t.Errorf("November start month = %d", m)
	}
	// Two months after Nov 1 wraps into January.
	if m := n.MonthOfYear(61 * Day); m != 1 {
		t.Errorf("Nov+61d month = %d, want 1", m)
	}
}

func TestCalendarHourOfDay(t *testing.T) {
	c := JanuaryStart
	if h := c.HourOfDay(0); h != 0 {
		t.Errorf("hour at t=0 is %v", h)
	}
	if h := c.HourOfDay(6 * Hour); h != 6 {
		t.Errorf("hour at 6h is %v", h)
	}
	if h := c.HourOfDay(Day + 13*Hour); h < 13-1e-9 || h > 13+1e-9 {
		t.Errorf("hour at day+13h is %v", h)
	}
}

func TestCalendarWeekend(t *testing.T) {
	c := JanuaryStart // time zero is a Monday
	if c.IsWeekend(0) {
		t.Error("Monday flagged as weekend")
	}
	if !c.IsWeekend(5 * Day) {
		t.Error("Saturday not flagged as weekend")
	}
	if !c.IsWeekend(6 * Day) {
		t.Error("Sunday not flagged as weekend")
	}
	if c.IsWeekend(7 * Day) {
		t.Error("next Monday flagged as weekend")
	}
}

// Property: DayOfYear always lands in [0,365) and advances by exactly the
// elapsed days modulo the year.
func TestCalendarDayProperty(t *testing.T) {
	f := func(start uint16, dt uint32) bool {
		c := Calendar{StartDayOfYear: float64(start % 365)}
		d := c.DayOfYear(Time(dt%100000) * Hour)
		return d >= 0 && d < 365
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
