package sim

import "sync"

// Injection is one externally submitted event awaiting application: a
// callback plus the monotone sequence number the queue stamped it with.
// The sequence is the queue's arrival order — the only order injections
// are ever applied in — so the interleaving of external traffic with the
// simulation is fully described by (application time, seq), which is what
// makes a recorded live session replayable.
type Injection struct {
	Seq uint64
	Fn  func(seq uint64)
}

// InjectQueue is the thread-safe boundary between wall-clock producers
// (HTTP handlers, load generators) and a single-threaded simulation. Any
// goroutine may Inject; a driver drains the queue between engine slices
// and applies the injections, in seq order, at the simulation's current
// time. The queue itself never touches the engine.
type InjectQueue struct {
	mu     sync.Mutex
	items  []Injection
	seq    uint64
	closed bool
}

// NewInjectQueue returns an empty open queue.
func NewInjectQueue() *InjectQueue { return &InjectQueue{} }

// Inject appends fn to the queue and returns its sequence number. fn runs
// later, on the driver's goroutine, with the stamped seq as its argument.
// Injecting into a closed queue reports ok == false and the fn is dropped.
func (q *InjectQueue) Inject(fn func(seq uint64)) (seq uint64, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return 0, false
	}
	seq = q.seq
	q.seq++
	q.items = append(q.items, Injection{Seq: seq, Fn: fn})
	return seq, true
}

// NextSeq returns the sequence number the next accepted injection will be
// stamped with. Checkpoints record it so a recovered session can resume
// the numbering without reusing a seq that already reached durable state.
func (q *InjectQueue) NextSeq() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.seq
}

// ResumeAt raises the sequence counter to at least next. A recovered
// serving plane calls it with (last durable seq + 1) before accepting
// traffic, so post-recovery injections never collide with replayed ones.
// Lowering the counter is impossible — seqs are never reissued.
func (q *InjectQueue) ResumeAt(next uint64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if next > q.seq {
		q.seq = next
	}
}

// Drain removes and returns all pending injections in seq order. Only the
// driving goroutine should call it.
func (q *InjectQueue) Drain() []Injection {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return nil
	}
	out := q.items
	q.items = nil
	return out
}

// Len returns the number of pending injections — the ingest queue depth a
// load-shedding layer bounds.
func (q *InjectQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Close rejects further injections. Pending items stay drainable, so a
// shutting-down driver can finish applying what was already accepted.
func (q *InjectQueue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
}
