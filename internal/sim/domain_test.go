package sim

import (
	"reflect"
	"testing"
)

// refTicker re-arms one event per tick per ticker — the pre-domain kernel
// behavior, kept here as the determinism reference.
type refTicker struct {
	e      *Engine
	period Time
	fn     func(now Time)
}

func startRefTicker(e *Engine, period Time, fn func(now Time)) *refTicker {
	t := &refTicker{e: e, period: period, fn: fn}
	t.arm()
	return t
}

func (t *refTicker) arm() {
	t.e.After(t.period, func() {
		t.fn(t.e.Now())
		t.arm()
	})
}

// TestDomainMatchesIndividualTickers is the determinism regression for the
// batched kernel: a TickDomain with K subscribers must fire the same
// callbacks, in the same order, at the same times as K individually
// scheduled tickers — including across two interleaved periods.
func TestDomainMatchesIndividualTickers(t *testing.T) {
	const k = 7
	const horizon = 50 * Hour

	type firing struct {
		id int
		at Time
	}
	run := func(start func(e *Engine, period Time, id int, log *[]firing)) []firing {
		e := New()
		var log []firing
		for i := 0; i < k; i++ {
			start(e, 60, i, &log)
		}
		// A second, coarser period interleaves with the first.
		for i := 0; i < 3; i++ {
			start(e, 3600, k+i, &log)
		}
		e.Run(horizon)
		return log
	}

	ref := run(func(e *Engine, period Time, id int, log *[]firing) {
		startRefTicker(e, period, func(now Time) { *log = append(*log, firing{id, now}) })
	})
	got := run(func(e *Engine, period Time, id int, log *[]firing) {
		e.Domain(period).Subscribe(func(now Time) { *log = append(*log, firing{id, now}) })
	})

	if len(ref) == 0 {
		t.Fatal("reference run produced no firings")
	}
	if !reflect.DeepEqual(ref, got) {
		for i := range ref {
			if i >= len(got) || ref[i] != got[i] {
				t.Fatalf("firing %d diverges: ref %+v, domain %+v (lens %d vs %d)",
					i, ref[i], got[i], len(ref), len(got))
			}
		}
		t.Fatalf("domain fired %d callbacks, reference %d", len(got), len(ref))
	}
}

// TestDomainSteadyStateAllocs guards the low-allocation kernel: once a
// domain is warmed up, ticking allocates nothing — no event churn, no
// subscriber-slice churn.
func TestDomainSteadyStateAllocs(t *testing.T) {
	e := New()
	n := 0
	for i := 0; i < 32; i++ {
		e.Domain(60).Subscribe(func(Time) { n++ })
	}
	e.Run(10 * Hour) // warm up heap, free list and domain registry
	allocs := testing.AllocsPerRun(100, func() {
		e.Run(e.Now() + Hour)
	})
	if allocs != 0 {
		t.Errorf("steady-state ticking allocates %v per hour of ticks, want 0", allocs)
	}
	if n == 0 {
		t.Fatal("subscribers never fired")
	}
}

// TestTransientSteadyStateAllocs: self-rescheduling transient chains reuse
// pooled events, so the kernel itself adds no allocations (the closure is
// the caller's).
func TestTransientSteadyStateAllocs(t *testing.T) {
	e := New()
	n := 0
	var loop func()
	loop = func() { n++; e.AfterTransient(60, loop) }
	e.AfterTransient(60, loop)
	e.Run(10 * Hour)
	allocs := testing.AllocsPerRun(100, func() {
		e.Run(e.Now() + Hour)
	})
	if allocs != 0 {
		t.Errorf("transient chain allocates %v per hour of events, want 0", allocs)
	}
	if n == 0 {
		t.Fatal("chain never fired")
	}
}

func TestDomainSharedByPhase(t *testing.T) {
	e := New()
	d1 := e.Domain(60)
	d2 := e.Domain(60)
	if d1 != d2 {
		t.Error("same-period domains created at the same instant must be shared")
	}
	if e.Domain(30) == d1 {
		t.Error("different periods must not share a domain")
	}
	// A domain requested mid-grid gets its own phase.
	d1.Subscribe(func(Time) {})
	e.Run(90) // now 90: next fire of d1 is 120, a fresh domain would fire at 150
	if e.Domain(60) == d1 {
		t.Error("mid-grid domain request must not join an off-phase grid")
	}
	// Requested exactly on the grid, the domain is shared again.
	e.Run(120)
	if e.Domain(60) != d1 {
		t.Error("on-grid domain request must rejoin the running grid")
	}
}

func TestDomainSubscribeDuringFire(t *testing.T) {
	e := New()
	d := e.Domain(10)
	var got []Time
	d.Subscribe(func(now Time) {
		if now == 10 {
			d.Subscribe(func(now Time) { got = append(got, now) })
		}
	})
	e.Run(35)
	// The nested subscriber must first fire one period after registration,
	// not during the tick that registered it.
	want := []Time{20, 30}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("nested subscriber fired at %v, want %v", got, want)
	}
}

func TestDomainStopDuringFire(t *testing.T) {
	e := New()
	d := e.Domain(10)
	var subs [3]*Sub
	var fired []int
	for i := range subs {
		i := i
		subs[i] = d.Subscribe(func(Time) {
			fired = append(fired, i)
			if i == 0 && e.Now() == 10 {
				subs[2].Stop() // stop a later subscriber mid-tick
			}
		})
	}
	e.Run(25)
	// Tick 10: sub0 fires and stops sub2, sub1 fires, sub2 skipped.
	// Tick 20: sub0, sub1.
	want := []int{0, 1, 0, 1}
	if !reflect.DeepEqual(fired, want) {
		t.Errorf("fired %v, want %v", fired, want)
	}
}

func TestDomainDeactivatesWhenEmpty(t *testing.T) {
	e := New()
	s1 := e.Domain(10).Subscribe(func(Time) {})
	s2 := e.Domain(10).Subscribe(func(Time) {})
	e.Run(25)
	s1.Stop()
	s2.Stop()
	s2.Stop() // double stop is safe
	e.Run(100)
	if e.Pending() != 0 {
		t.Errorf("empty domain left %d events pending", e.Pending())
	}
	// A dormant domain revives on a fresh grid.
	var got []Time
	e.Domain(10).Subscribe(func(now Time) { got = append(got, now) })
	e.Run(125)
	want := []Time{110, 120}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("revived domain fired at %v, want %v", got, want)
	}
}

// TestTickerNoPhaseDrift: tickers re-arm from the scheduled fire time, so
// a fractional period stays on the k*period grid instead of accumulating
// clock error tick over tick.
func TestTickerNoPhaseDrift(t *testing.T) {
	e := New()
	period := Time(0.1)
	var last Time
	ticks := 0
	Every(e, period, func(now Time) { last = now; ticks++ })
	e.Run(1000)
	// Compare against the same accumulation the domain performs: the grid
	// is defined by repeated addition from the start, never by Now() after
	// a callback.
	want := Time(0)
	for i := 0; i < ticks; i++ {
		want += period
	}
	if last != want {
		t.Errorf("tick %d fired at %v, want grid time %v", ticks, last, want)
	}
	if ticks < 9990 {
		t.Errorf("only %d ticks in 1000 s at period 0.1", ticks)
	}
}
