package metrics

import "df3/internal/rng"

// Reservoir keeps a uniform random sample of bounded size over an unbounded
// observation stream (Vitter's algorithm R). City-year runs observe millions
// of request latencies; the reservoir bounds memory while preserving
// quantile fidelity.
type Reservoir struct {
	Stats
	cap    int
	stream *rng.Stream
	values []float64
	seen   int64
}

// NewReservoir returns a reservoir retaining at most capacity observations.
func NewReservoir(capacity int, stream *rng.Stream) *Reservoir {
	if capacity <= 0 {
		panic("metrics: reservoir with non-positive capacity")
	}
	return &Reservoir{cap: capacity, stream: stream}
}

// Observe adds one observation.
func (r *Reservoir) Observe(v float64) {
	r.Stats.Observe(v)
	r.seen++
	if len(r.values) < r.cap {
		r.values = append(r.values, v)
		return
	}
	// Replace a random retained element with probability cap/seen.
	j := r.stream.Uint64() % uint64(r.seen)
	if j < uint64(r.cap) {
		r.values[j] = v
	}
}

// Quantile returns an estimate of the q-quantile from the retained sample.
func (r *Reservoir) Quantile(q float64) float64 {
	s := Sample{values: append([]float64(nil), r.values...)}
	s.n = len(r.values)
	return s.Quantile(q)
}

// Retained returns the number of retained observations.
func (r *Reservoir) Retained() int { return len(r.values) }
