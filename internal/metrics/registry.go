package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// This file implements the named metrics registry: every platform counter,
// gauge and histogram registered under a `name{label="value"}` identity and
// exportable in the Prometheus text exposition format. The simulator itself
// stays single-threaded, but the registry and its owned instruments are
// safe for concurrent use, because the df3d HTTP scrape path reads them
// while the step handler advances the engine.
//
// Two registration styles coexist:
//
//   - Owned instruments (Counter, Gauge, Histogram) are allocated by the
//     registry and safe to mutate from any goroutine — use these for new
//     code.
//   - Func-backed metrics (CounterFunc, GaugeFunc) read existing simulator
//     state through a closure at scrape time. The closure runs under the
//     registry lock; callers that scrape concurrently with a running engine
//     must serialise externally (the api server holds its mutex).

// Labels is a set of label name→value pairs. A nil or empty map means an
// unlabeled series.
type Labels map[string]string

// Kind discriminates registered metric types.
type Kind int

const (
	// KindCounter is a monotonically non-decreasing count.
	KindCounter Kind = iota
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram is a quantile summary backed by P² estimators.
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "summary"
	}
}

// SharedCounter is a concurrency-safe monotonic counter owned by a Registry.
type SharedCounter struct{ n atomic.Int64 }

// Inc adds one.
func (c *SharedCounter) Inc() { c.n.Add(1) }

// Addn adds k (k must be non-negative for the series to stay monotonic).
func (c *SharedCounter) Addn(k int64) { c.n.Add(k) }

// Value returns the count.
func (c *SharedCounter) Value() int64 { return c.n.Load() }

// SharedGauge is a concurrency-safe gauge owned by a Registry.
type SharedGauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *SharedGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by dv.
func (g *SharedGauge) Add(dv float64) {
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + dv
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *SharedGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram summarises an observation stream with P² quantile estimators:
// O(1) memory however many observations arrive, concurrency-safe.
type Histogram struct {
	mu        sync.Mutex
	count     int64
	sum       float64
	min, max  float64
	quantiles []float64
	est       []*P2
}

// newHistogram tracks the given quantiles (default 0.5, 0.9, 0.99).
func newHistogram(quantiles []float64) *Histogram {
	if len(quantiles) == 0 {
		quantiles = []float64{0.5, 0.9, 0.99}
	}
	qs := append([]float64(nil), quantiles...)
	sort.Float64s(qs)
	h := &Histogram{quantiles: qs}
	for _, q := range qs {
		h.est = append(h.est, NewP2(q))
	}
	return h
}

// Observe adds one observation.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		h.min, h.max = v, v
	} else {
		if v < h.min {
			h.min = v
		}
		if v > h.max {
			h.max = v
		}
	}
	h.count++
	h.sum += v
	for _, e := range h.est {
		e.Observe(v)
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { h.mu.Lock(); defer h.mu.Unlock(); return h.count }

// Sum returns the total of all observations.
func (h *Histogram) Sum() float64 { h.mu.Lock(); defer h.mu.Unlock(); return h.sum }

// Quantile returns the estimate for the tracked quantile nearest q.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.est) == 0 {
		return 0
	}
	best := 0
	for i, tq := range h.quantiles {
		if math.Abs(tq-q) < math.Abs(h.quantiles[best]-q) {
			best = i
		}
	}
	return h.est[best].Value()
}

// Quantiles returns the tracked quantiles and their current estimates.
func (h *Histogram) Quantiles() ([]float64, []float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	qs := append([]float64(nil), h.quantiles...)
	vs := make([]float64, len(h.est))
	for i, e := range h.est {
		vs[i] = e.Value()
	}
	return qs, vs
}

// entry is one registered series.
type entry struct {
	name   string
	id     string // canonical name{k="v",...}
	help   string
	kind   Kind
	labels string // rendered {k="v",...} or ""

	counter   *SharedCounter
	gauge     *SharedGauge
	hist      *Histogram
	counterFn func() int64
	gaugeFn   func() float64
}

// Registry is a named collection of metrics with label identity.
type Registry struct {
	mu    sync.RWMutex
	byID  map[string]*entry
	order []*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: map[string]*entry{}}
}

// validName matches the Prometheus metric-name grammar.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// escapeLabel escapes a label value for the text format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// renderLabels produces the canonical sorted {k="v",...} suffix ("" when
// unlabeled).
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		// Validate in sorted order so a bad label set always panics on the
		// same key.
		if !validName(k) || strings.Contains(k, ":") {
			panic(fmt.Sprintf("metrics: invalid label name %q", k))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// ID returns the canonical series identity for a name and label set.
func ID(name string, labels Labels) string { return name + renderLabels(labels) }

// register adds (or retrieves) a series. A second registration of the same
// identity must carry the same kind; owned instruments are then shared.
func (r *Registry) register(name, help string, labels Labels, kind Kind) (*entry, bool) {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	id := ID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byID[id]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("metrics: %s re-registered as %v (was %v)", id, kind, e.kind))
		}
		return e, false
	}
	e := &entry{name: name, id: id, help: help, kind: kind, labels: renderLabels(labels)}
	r.byID[id] = e
	r.order = append(r.order, e)
	return e, true
}

// Counter registers (or retrieves) an owned counter.
func (r *Registry) Counter(name, help string, labels Labels) *SharedCounter {
	e, fresh := r.register(name, help, labels, KindCounter)
	if fresh {
		e.counter = &SharedCounter{}
	}
	if e.counter == nil {
		panic(fmt.Sprintf("metrics: %s is func-backed, not an owned counter", e.id))
	}
	return e.counter
}

// Gauge registers (or retrieves) an owned gauge.
func (r *Registry) Gauge(name, help string, labels Labels) *SharedGauge {
	e, fresh := r.register(name, help, labels, KindGauge)
	if fresh {
		e.gauge = &SharedGauge{}
	}
	if e.gauge == nil {
		panic(fmt.Sprintf("metrics: %s is func-backed, not an owned gauge", e.id))
	}
	return e.gauge
}

// Histogram registers (or retrieves) a P²-backed quantile summary tracking
// the given quantiles (default 0.5, 0.9, 0.99).
func (r *Registry) Histogram(name, help string, labels Labels, quantiles ...float64) *Histogram {
	e, fresh := r.register(name, help, labels, KindHistogram)
	if fresh {
		e.hist = newHistogram(quantiles)
	}
	return e.hist
}

// CounterFunc registers a read-through counter: fn is evaluated at scrape
// time. Registering the same identity twice panics.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() int64) {
	e, fresh := r.register(name, help, labels, KindCounter)
	if !fresh {
		panic(fmt.Sprintf("metrics: duplicate registration of %s", e.id))
	}
	e.counterFn = fn
}

// GaugeFunc registers a read-through gauge evaluated at scrape time.
// Registering the same identity twice panics.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	e, fresh := r.register(name, help, labels, KindGauge)
	if !fresh {
		panic(fmt.Sprintf("metrics: duplicate registration of %s", e.id))
	}
	e.gaugeFn = fn
}

// Len returns the number of registered series.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.order)
}

// fmtFloat renders a float in the text exposition format.
func fmtFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered series in the Prometheus text
// exposition format (version 0.0.4), grouped by metric name with HELP/TYPE
// headers, series in registration order within a group. Func-backed metrics
// are evaluated under the registry lock; callers scraping concurrently with
// a live simulation must serialise with it.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	// Group series by metric name, preserving first-registration order.
	var names []string
	groups := map[string][]*entry{}
	for _, e := range r.order {
		if _, ok := groups[e.name]; !ok {
			names = append(names, e.name)
		}
		groups[e.name] = append(groups[e.name], e)
	}
	var b strings.Builder
	for _, name := range names {
		es := groups[name]
		if help := es[0].help; help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, strings.ReplaceAll(help, "\n", " "))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, es[0].kind)
		for _, e := range es {
			switch e.kind {
			case KindCounter:
				v := int64(0)
				if e.counter != nil {
					v = e.counter.Value()
				} else if e.counterFn != nil {
					v = e.counterFn()
				}
				fmt.Fprintf(&b, "%s%s %d\n", e.name, e.labels, v)
			case KindGauge:
				v := 0.0
				if e.gauge != nil {
					v = e.gauge.Value()
				} else if e.gaugeFn != nil {
					v = e.gaugeFn()
				}
				fmt.Fprintf(&b, "%s%s %s\n", e.name, e.labels, fmtFloat(v))
			case KindHistogram:
				qs, vs := e.hist.Quantiles()
				for i, q := range qs {
					fmt.Fprintf(&b, "%s%s %s\n", e.name,
						mergeQuantile(e.labels, q), fmtFloat(vs[i]))
				}
				fmt.Fprintf(&b, "%s_sum%s %s\n", e.name, e.labels, fmtFloat(e.hist.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", e.name, e.labels, e.hist.Count())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// mergeQuantile splices a quantile="q" label into a rendered label set.
func mergeQuantile(labels string, q float64) string {
	qs := fmt.Sprintf(`quantile="%s"`, fmtFloat(q))
	if labels == "" {
		return "{" + qs + "}"
	}
	return labels[:len(labels)-1] + "," + qs + "}"
}

// ParsePrometheus parses text-exposition output back into a map from series
// identity (name plus rendered label set, exactly as exposed) to value. It
// understands the subset WritePrometheus emits — enough for round-trip
// tests and HTTP assertions, not a general scraper.
func ParsePrometheus(rd io.Reader) (map[string]float64, error) {
	data, err := io.ReadAll(rd)
	if err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The value follows the last space outside a label set.
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			return nil, fmt.Errorf("metrics: parse line %d: %q", ln+1, line)
		}
		id, vs := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(vs, 64)
		if err != nil {
			return nil, fmt.Errorf("metrics: parse line %d value %q: %w", ln+1, vs, err)
		}
		out[id] = v
	}
	return out, nil
}
