package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestRegistryIdentity(t *testing.T) {
	if got := ID("df3_up", nil); got != "df3_up" {
		t.Errorf("unlabeled id = %q", got)
	}
	got := ID("df3_x", Labels{"b": "2", "a": "1"})
	if got != `df3_x{a="1",b="2"}` {
		t.Errorf("labels not sorted: %q", got)
	}
	esc := ID("df3_x", Labels{"a": "say \"hi\"\n"})
	if esc != `df3_x{a="say \"hi\"\n"}` {
		t.Errorf("escaping wrong: %q", esc)
	}
}

func TestRegistryOwnedInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("df3_reqs_total", "requests", Labels{"outcome": "ok"})
	c.Inc()
	c.Addn(2)
	// Same identity returns the same instrument.
	if r.Counter("df3_reqs_total", "", Labels{"outcome": "ok"}) != c {
		t.Fatal("re-registration did not return the shared counter")
	}
	if c.Value() != 3 {
		t.Errorf("counter = %d, want 3", c.Value())
	}
	g := r.Gauge("df3_temp", "", nil)
	g.Set(20)
	g.Add(1.5)
	if g.Value() != 21.5 {
		t.Errorf("gauge = %v", g.Value())
	}
	h := r.Histogram("df3_latency_seconds", "", nil, 0.5, 0.99)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 || h.Sum() != 5050 {
		t.Errorf("count/sum = %d/%v", h.Count(), h.Sum())
	}
	if p50 := h.Quantile(0.5); math.Abs(p50-50) > 5 {
		t.Errorf("p50 = %v, want ≈50", p50)
	}
	if r.Len() != 3 {
		t.Errorf("len = %d, want 3", r.Len())
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("df3_x", "", nil)
	defer func() {
		if recover() == nil {
			t.Error("gauge re-registration of a counter should panic")
		}
	}()
	r.Gauge("df3_x", "", nil)
}

func TestRegistryDuplicateFuncPanics(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("df3_now", "", nil, func() float64 { return 1 })
	defer func() {
		if recover() == nil {
			t.Error("duplicate GaugeFunc should panic")
		}
	}()
	r.GaugeFunc("df3_now", "", nil, func() float64 { return 2 })
}

func TestRegistryInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("invalid metric name should panic")
		}
	}()
	r.Counter("df3 bad name", "", nil)
}

// TestRegistryConcurrency exercises owned instruments and scrapes from many
// goroutines at once; run under -race this is the registry's thread-safety
// proof.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("df3_ops_total", "ops", nil)
	g := r.Gauge("df3_level", "", nil)
	h := r.Histogram("df3_obs", "", nil)

	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 100))
				if i%500 == 0 {
					// Concurrent registration of the same identity and a
					// concurrent scrape must both be safe.
					r.Counter("df3_ops_total", "ops", nil)
					var b strings.Builder
					if err := r.WritePrometheus(&b); err != nil {
						t.Errorf("scrape: %v", err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*perWorker {
		t.Errorf("counter = %d, want %d", c.Value(), workers*perWorker)
	}
	if g.Value() != workers*perWorker {
		t.Errorf("gauge = %v, want %d", g.Value(), workers*perWorker)
	}
	if h.Count() != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
}

func TestPrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("df3_served_total", "served requests", Labels{"flow": "edge"}).Addn(42)
	r.Counter("df3_served_total", "", Labels{"flow": "dcc"}).Addn(7)
	r.Gauge("df3_capacity_cores", "fleet capacity", nil).Set(12.5)
	r.GaugeFunc("df3_sim_time_seconds", "sim clock", nil, func() float64 { return 3600 })
	r.CounterFunc("df3_events_total", "", nil, func() int64 { return 99 })
	h := r.Histogram("df3_lat_seconds", "latency", Labels{"flow": "edge"}, 0.5)
	for i := 0; i < 1000; i++ {
		h.Observe(0.001 * float64(i))
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"# TYPE df3_served_total counter",
		"# HELP df3_served_total served requests",
		`df3_served_total{flow="edge"} 42`,
		`df3_served_total{flow="dcc"} 7`,
		"# TYPE df3_lat_seconds summary",
		`df3_lat_seconds_count{flow="edge"} 1000`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}

	vals, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	checks := map[string]float64{
		`df3_served_total{flow="edge"}`:      42,
		`df3_served_total{flow="dcc"}`:       7,
		"df3_capacity_cores":                 12.5,
		"df3_sim_time_seconds":               3600,
		"df3_events_total":                   99,
		`df3_lat_seconds_count{flow="edge"}`: 1000,
		`df3_lat_seconds_sum{flow="edge"}`:   h.Sum(),
	}
	//df3:unordered-ok each expected series is checked independently; only t.Errorf ordering varies
	for id, want := range checks {
		got, ok := vals[id]
		if !ok {
			t.Errorf("parsed output missing %s", id)
			continue
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%s = %v, want %v", id, got, want)
		}
	}
	// The quantile series must carry the merged label.
	if _, ok := vals[`df3_lat_seconds{flow="edge",quantile="0.5"}`]; !ok {
		t.Errorf("missing quantile series; parsed keys: %v", vals)
	}
}
