package metrics

import (
	"reflect"
	"strings"
	"testing"
)

// nastyValues are the label values the exposition format has to survive:
// every combination of the three escaped characters plus lookalikes that
// must NOT be touched.
var nastyValues = []string{
	"plain",
	"",
	`back\slash`,
	`trailing\`,
	`"quoted"`,
	"new\nline",
	"\n",
	`\n`,  // literal backslash-n, not a newline
	`\\n`, // literal backslash-backslash-n
	`\"`,  // literal backslash-quote
	`a\,b"c` + "\n" + `d\\e`,
	`{series="inception"} 42`,
	"space end ",
	"unicode °C ü",
	",=}",
}

// TestLabelEscapeRoundTrip: escapeLabel then UnescapeLabel is identity on
// every nasty value, and the escaped form never contains a raw newline
// (which would corrupt the line-oriented text format) or an unescaped
// quote (which would terminate the label value early).
func TestLabelEscapeRoundTrip(t *testing.T) {
	for _, v := range nastyValues {
		esc := escapeLabel(v)
		if strings.ContainsRune(esc, '\n') {
			t.Errorf("escapeLabel(%q) = %q leaks a raw newline", v, esc)
		}
		backslashes := 0
		for i := 0; i < len(esc); i++ {
			switch esc[i] {
			case '\\':
				backslashes++
				continue
			case '"':
				if backslashes%2 == 0 {
					t.Errorf("escapeLabel(%q) = %q leaks an unescaped quote", v, esc)
				}
			}
			backslashes = 0
		}
		got, err := UnescapeLabel(esc)
		if err != nil {
			t.Errorf("UnescapeLabel(%q): %v", esc, err)
			continue
		}
		if got != v {
			t.Errorf("round trip %q -> %q -> %q", v, esc, got)
		}
	}
}

func TestUnescapeLabelRejectsMalformed(t *testing.T) {
	for _, bad := range []string{`dangling\`, `unknown\t`, `\x41`} {
		if got, err := UnescapeLabel(bad); err == nil {
			t.Errorf("UnescapeLabel(%q) = %q, want error", bad, got)
		}
	}
}

// TestParseSeriesID: table-driven decode of ids, including every nasty
// value embedded through the real ID() encoder.
func TestParseSeriesID(t *testing.T) {
	for _, v := range nastyValues {
		labels := Labels{"a": v, "city": "7"}
		id := ID("df3_test_total", labels)
		name, got, err := ParseSeriesID(id)
		if err != nil {
			t.Errorf("ParseSeriesID(%q): %v", id, err)
			continue
		}
		if name != "df3_test_total" || !reflect.DeepEqual(got, labels) {
			t.Errorf("ParseSeriesID(%q) = %q %v, want labels %v", id, name, got, labels)
		}
	}
	name, labels, err := ParseSeriesID("df3_plain")
	if err != nil || name != "df3_plain" || labels != nil {
		t.Errorf("bare name: %q %v %v", name, labels, err)
	}
	for _, bad := range []string{
		"", "{}", "1leading{a=\"b\"}", "x{=\"v\"}", "x{a=v}", "x{a=\"v}",
		"x{a=\"v\"", "x{a=\"v\"extra}", `x{a="v\"}`,
	} {
		if _, _, err := ParseSeriesID(bad); err == nil {
			t.Errorf("ParseSeriesID(%q) accepted malformed id", bad)
		}
	}
}

// TestPrometheusWriteParseRoundTrip is the full loop the satellite asks
// for: a registry whose label values hold every nasty case is written as
// text exposition, parsed back by ParsePrometheus, and each series id is
// decoded by ParseSeriesID into the original label values.
func TestPrometheusWriteParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	want := map[string]string{} // series id -> original value
	for i, v := range nastyValues {
		labels := Labels{"v": v}
		c := r.Counter("df3_nasty_total", "nasty label values", labels)
		c.Addn(int64(i + 1))
		want[ID("df3_nasty_total", labels)] = v
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParsePrometheus(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("ParsePrometheus on own output: %v\n%s", err, b.String())
	}
	if len(parsed) != len(nastyValues) {
		t.Fatalf("parsed %d series, want %d", len(parsed), len(nastyValues))
	}
	//df3:unordered-ok each series is checked independently; only t.Errorf ordering varies
	for id := range parsed {
		orig, ok := want[id]
		if !ok {
			t.Errorf("unexpected series %q", id)
			continue
		}
		_, labels, err := ParseSeriesID(id)
		if err != nil {
			t.Errorf("ParseSeriesID(%q): %v", id, err)
			continue
		}
		if labels["v"] != orig {
			t.Errorf("series %q decodes to %q, want %q", id, labels["v"], orig)
		}
	}
}
