package metrics

import (
	"math"
	"sort"
	"testing"

	"df3/internal/rng"
)

// exactQuantile answers from a sorted copy for comparison.
func exactQuantile(vs []float64, q float64) float64 {
	s := Sample{}
	for _, v := range vs {
		s.Observe(v)
	}
	return s.Quantile(q)
}

func TestP2TracksQuantiles(t *testing.T) {
	stream := rng.New(42)
	// A slice, not a map: the cases share the rng stream, so iteration
	// order decides which draws each distribution sees.
	distributions := []struct {
		name string
		draw func() float64
	}{
		{"uniform", stream.Float64},
		{"exp", func() float64 { return stream.Exp(1) }},
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		for _, d := range distributions {
			name, draw := d.name, d.draw
			est := NewP2(q)
			var vs []float64
			for i := 0; i < 50000; i++ {
				v := draw()
				vs = append(vs, v)
				est.Observe(v)
			}
			want := exactQuantile(vs, q)
			got := est.Value()
			// P² is an estimate; on 50k smooth-distribution samples it
			// should land within a few percent of the exact quantile.
			if math.Abs(got-want) > 0.05*math.Max(want, 0.1) {
				t.Errorf("%s q=%v: got %v want %v", name, q, got, want)
			}
		}
	}
}

func TestP2SmallSamples(t *testing.T) {
	est := NewP2(0.5)
	if est.Value() != 0 {
		t.Fatalf("empty estimator should answer 0")
	}
	vals := []float64{5, 1, 4, 2}
	for _, v := range vals {
		est.Observe(v)
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	got := est.Value()
	// Small-sample answers come from the exact sorted prefix.
	found := false
	for _, v := range sorted {
		if got == v {
			found = true
		}
	}
	if !found {
		t.Errorf("small-sample value %v not an observed value %v", got, sorted)
	}
	if est.Count() != 4 {
		t.Errorf("count = %d, want 4", est.Count())
	}
}

func TestP2Monotone(t *testing.T) {
	est := NewP2(0.9)
	for i := 0; i < 1000; i++ {
		est.Observe(float64(i))
	}
	got := est.Value()
	if got < 800 || got > 1000 {
		t.Errorf("p90 of 0..999 = %v, want ≈900", got)
	}
}

func TestP2PanicsOnBadQuantile(t *testing.T) {
	for _, q := range []float64{0, 1, -0.1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewP2(%v) should panic", q)
				}
			}()
			NewP2(q)
		}()
	}
}
