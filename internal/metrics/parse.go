package metrics

import (
	"fmt"
	"strings"
)

// UnescapeLabel is the exact inverse of escapeLabel: it decodes the \\, \"
// and \n sequences of the Prometheus text format. A dangling backslash or
// an unknown escape is an error — the writer never produces one, so its
// presence means the input is not our exposition output.
func UnescapeLabel(v string) (string, error) {
	if !strings.ContainsRune(v, '\\') {
		return v, nil
	}
	var b strings.Builder
	b.Grow(len(v))
	for i := 0; i < len(v); i++ {
		c := v[i]
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i == len(v) {
			return "", fmt.Errorf("metrics: dangling backslash in label value %q", v)
		}
		switch v[i] {
		case '\\':
			b.WriteByte('\\')
		case '"':
			b.WriteByte('"')
		case 'n':
			b.WriteByte('\n')
		default:
			return "", fmt.Errorf("metrics: unknown escape \\%c in label value %q", v[i], v)
		}
	}
	return b.String(), nil
}

// ParseSeriesID decodes a series identity — `name` or `name{k="v",...}`,
// exactly as WritePrometheus exposes it and ParsePrometheus keys it — back
// into the metric name and the decoded label set. Together with ID() it
// round-trips arbitrary label values, including backslashes, quotes and
// newlines.
func ParseSeriesID(id string) (string, Labels, error) {
	brace := strings.IndexByte(id, '{')
	if brace < 0 {
		if !validName(id) {
			return "", nil, fmt.Errorf("metrics: invalid series id %q", id)
		}
		return id, nil, nil
	}
	name := id[:brace]
	if !validName(name) {
		return "", nil, fmt.Errorf("metrics: invalid metric name in %q", id)
	}
	rest := id[brace+1:]
	labels := Labels{}
	for {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return "", nil, fmt.Errorf("metrics: missing '=' in label set of %q", id)
		}
		key := rest[:eq]
		if !validName(key) {
			return "", nil, fmt.Errorf("metrics: invalid label name %q in %q", key, id)
		}
		rest = rest[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return "", nil, fmt.Errorf("metrics: unquoted label value in %q", id)
		}
		rest = rest[1:]
		// Find the closing quote, skipping escaped characters.
		end := -1
		for i := 0; i < len(rest); i++ {
			switch rest[i] {
			case '\\':
				i++
			case '"':
				end = i
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return "", nil, fmt.Errorf("metrics: unterminated label value in %q", id)
		}
		val, err := UnescapeLabel(rest[:end])
		if err != nil {
			return "", nil, err
		}
		labels[key] = val
		rest = rest[end+1:]
		if strings.HasPrefix(rest, ",") {
			rest = rest[1:]
			continue
		}
		if rest == "}" {
			return name, labels, nil
		}
		return "", nil, fmt.Errorf("metrics: malformed label set in %q", id)
	}
}
