// Package metrics collects the statistics the benchmark harness reports:
// streaming moments, exact quantiles, time-weighted averages and
// time-series samplers.
//
// Everything here is designed for the single-threaded simulator: no locks,
// no wall-clock. Quantiles are exact (sorting a retained sample) because the
// experiments are small enough that fidelity beats the memory savings of a
// sketch; Reservoir provides bounded-memory sampling for the rare metric
// with millions of observations.
package metrics

import (
	"math"
	"sort"
)

// Stats accumulates streaming count/mean/variance/min/max using Welford's
// algorithm. The zero value is ready to use.
type Stats struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Observe adds one observation.
func (s *Stats) Observe(v float64) {
	if s.n == 0 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	s.n++
	d := v - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (v - s.mean)
}

// Count returns the number of observations.
func (s *Stats) Count() int { return s.n }

// Mean returns the arithmetic mean, or 0 with no observations.
func (s *Stats) Mean() float64 { return s.mean }

// Variance returns the unbiased sample variance, or 0 with fewer than two
// observations.
func (s *Stats) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Stats) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation, or 0 with none.
func (s *Stats) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation, or 0 with none.
func (s *Stats) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// Sum returns n·mean, the total of all observations.
func (s *Stats) Sum() float64 { return s.mean * float64(s.n) }

// Merge folds other into s, as if every observation of other had been
// observed by s. Used to combine per-worker statistics.
func (s *Stats) Merge(other *Stats) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *other
		return
	}
	n1, n2 := float64(s.n), float64(other.n)
	d := other.mean - s.mean
	tot := n1 + n2
	s.m2 += other.m2 + d*d*n1*n2/tot
	s.mean += d * n2 / tot
	s.n += other.n
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
}

// Sample retains every observation and answers exact quantiles.
type Sample struct {
	Stats
	values []float64
	sorted bool
}

// Observe adds one observation.
func (s *Sample) Observe(v float64) {
	s.Stats.Observe(v)
	s.values = append(s.values, v)
	s.sorted = false
}

// Quantile returns the q-quantile (q in [0,1]) by linear interpolation on
// the sorted sample. With no observations it returns 0.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.values) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
	if q <= 0 {
		return s.values[0]
	}
	if q >= 1 {
		return s.values[len(s.values)-1]
	}
	pos := q * float64(len(s.values)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s.values) {
		return s.values[lo]
	}
	return s.values[lo]*(1-frac) + s.values[lo+1]*frac
}

// Median returns the 0.5 quantile.
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// P99 returns the 0.99 quantile.
func (s *Sample) P99() float64 { return s.Quantile(0.99) }

// P95 returns the 0.95 quantile.
func (s *Sample) P95() float64 { return s.Quantile(0.95) }

// Values returns the retained observations in observation order until the
// first Quantile call, sorted order after. Callers must not mutate it.
func (s *Sample) Values() []float64 { return s.values }
