package metrics

// P2 estimates a single quantile of an unbounded observation stream in O(1)
// memory with the P² algorithm (Jain & Chlamtac, CACM 1985): five markers
// track the minimum, the target quantile, the two intermediate quantiles and
// the maximum, and are nudged toward their desired positions with parabolic
// interpolation on every observation. City-year runs observe millions of
// request latencies; P² answers p50/p99 without retaining any of them, which
// is what lets the registry export live histograms from a long simulation.
type P2 struct {
	p       float64    // target quantile in (0,1)
	q       [5]float64 // marker heights
	n       [5]float64 // marker positions (1-based)
	desired [5]float64 // desired marker positions
	dn      [5]float64 // desired-position increments per observation
	count   int64
}

// NewP2 returns an estimator for the q-quantile, q in (0,1).
func NewP2(q float64) *P2 {
	if q <= 0 || q >= 1 {
		panic("metrics: P2 quantile must be in (0,1)")
	}
	e := &P2{p: q}
	e.dn = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
	return e
}

// Count returns the number of observations.
func (e *P2) Count() int64 { return e.count }

// Observe adds one observation.
func (e *P2) Observe(v float64) {
	e.count++
	if e.count <= 5 {
		// Insertion-sort the first five observations into the markers.
		i := int(e.count) - 1
		e.q[i] = v
		for j := i; j > 0 && e.q[j-1] > e.q[j]; j-- {
			e.q[j-1], e.q[j] = e.q[j], e.q[j-1]
		}
		if e.count == 5 {
			p := e.p
			e.n = [5]float64{1, 2, 3, 4, 5}
			e.desired = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
		}
		return
	}

	// Find the cell k such that q[k] <= v < q[k+1], extending the extremes.
	var k int
	switch {
	case v < e.q[0]:
		e.q[0] = v
		k = 0
	case v >= e.q[4]:
		e.q[4] = v
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if v < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.n[i]++
	}
	for i := range e.desired {
		e.desired[i] += e.dn[i]
	}

	// Nudge the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.desired[i] - e.n[i]
		if (d >= 1 && e.n[i+1]-e.n[i] > 1) || (d <= -1 && e.n[i-1]-e.n[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1
			}
			// Piecewise-parabolic prediction; fall back to linear when the
			// parabola would break marker monotonicity.
			qp := e.parabolic(i, s)
			if e.q[i-1] < qp && qp < e.q[i+1] {
				e.q[i] = qp
			} else {
				e.q[i] = e.linear(i, s)
			}
			e.n[i] += s
		}
	}
}

// parabolic is the P² piecewise-parabolic height prediction for marker i
// moved by d (±1).
func (e *P2) parabolic(i int, d float64) float64 {
	return e.q[i] + d/(e.n[i+1]-e.n[i-1])*
		((e.n[i]-e.n[i-1]+d)*(e.q[i+1]-e.q[i])/(e.n[i+1]-e.n[i])+
			(e.n[i+1]-e.n[i]-d)*(e.q[i]-e.q[i-1])/(e.n[i]-e.n[i-1]))
}

// linear is the fallback height prediction.
func (e *P2) linear(i int, d float64) float64 {
	j := i + int(d)
	return e.q[i] + d*(e.q[j]-e.q[i])/(e.n[j]-e.n[i])
}

// Value returns the current quantile estimate. With fewer than five
// observations it answers from the exact sorted prefix.
func (e *P2) Value() float64 {
	if e.count == 0 {
		return 0
	}
	if e.count < 5 {
		// Exact small-sample quantile by nearest rank on the sorted prefix.
		idx := int(e.p * float64(e.count-1))
		return e.q[idx]
	}
	return e.q[2]
}
