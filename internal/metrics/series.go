package metrics

import "sort"

// Point is one time-stamped observation in a Series.
type Point struct {
	T float64 // simulated time, seconds
	V float64
}

// Series records a time series of observations, e.g. room temperature or
// available fleet capacity. It supports bucketed aggregation, which is how
// the Fig. 4 style "monthly average" outputs are produced.
type Series struct {
	points []Point
}

// Add appends an observation at time t. Times are expected to be
// non-decreasing (the simulator only moves forward).
func (s *Series) Add(t, v float64) { s.points = append(s.points, Point{t, v}) }

// Len returns the number of points.
func (s *Series) Len() int { return len(s.points) }

// Points returns the underlying points. Callers must not mutate.
func (s *Series) Points() []Point { return s.points }

// Last returns the most recent point, or a zero Point when empty.
func (s *Series) Last() Point {
	if len(s.points) == 0 {
		return Point{}
	}
	return s.points[len(s.points)-1]
}

// Mean returns the unweighted mean of all values, or 0 when empty.
func (s *Series) Mean() float64 {
	if len(s.points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range s.points {
		sum += p.V
	}
	return sum / float64(len(s.points))
}

// Bucket groups points by key(t) and returns the per-bucket mean, with
// bucket keys sorted ascending. Used to fold a temperature trace into
// monthly averages.
func (s *Series) Bucket(key func(t float64) int) (keys []int, means []float64) {
	sums := map[int]float64{}
	counts := map[int]int{}
	for _, p := range s.points {
		k := key(p.T)
		sums[k] += p.V
		counts[k]++
	}
	for k := range sums {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	means = make([]float64, len(keys))
	for i, k := range keys {
		means[i] = sums[k] / float64(counts[k])
	}
	return keys, means
}

// TimeWeighted tracks the time-weighted average of a piecewise-constant
// signal, e.g. the number of busy cores. Call Set on every change and
// Average(now) to read.
type TimeWeighted struct {
	t0       float64 // time of the first Set
	lastT    float64
	lastV    float64
	area     float64
	started  bool
	maxValue float64
}

// Set records that the signal takes value v from time t onward.
func (w *TimeWeighted) Set(t, v float64) {
	if w.started {
		w.area += w.lastV * (t - w.lastT)
	} else {
		w.started = true
		w.t0 = t
	}
	w.lastT, w.lastV = t, v
	if v > w.maxValue {
		w.maxValue = v
	}
}

// Add shifts the current value by dv at time t.
func (w *TimeWeighted) Add(t, dv float64) { w.Set(t, w.lastV+dv) }

// Value returns the current value of the signal.
func (w *TimeWeighted) Value() float64 { return w.lastV }

// Max returns the largest value the signal has taken.
func (w *TimeWeighted) Max() float64 { return w.maxValue }

// Average returns the time-weighted average over [firstSet, now].
func (w *TimeWeighted) Average(now float64) float64 {
	if !w.started || now <= w.t0 {
		return w.lastV
	}
	area := w.area + w.lastV*(now-w.lastT)
	return area / (now - w.t0)
}

// Counter counts discrete occurrences, e.g. deadline misses.
type Counter struct{ n int64 }

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Addn adds k.
func (c *Counter) Addn(k int64) { c.n += k }

// Value returns the count.
func (c *Counter) Value() int64 { return c.n }

// Rate returns count divided by total, or 0 when total is 0.
func Rate(count, total int64) float64 {
	if total == 0 {
		return 0
	}
	return float64(count) / float64(total)
}
