package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"df3/internal/rng"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestStatsBasics(t *testing.T) {
	var s Stats
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Observe(v)
	}
	if s.Count() != 8 {
		t.Errorf("count = %d", s.Count())
	}
	if !almost(s.Mean(), 5, 1e-12) {
		t.Errorf("mean = %v", s.Mean())
	}
	if !almost(s.Variance(), 32.0/7, 1e-12) {
		t.Errorf("variance = %v", s.Variance())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	if !almost(s.Sum(), 40, 1e-9) {
		t.Errorf("sum = %v", s.Sum())
	}
}

func TestStatsEmpty(t *testing.T) {
	var s Stats
	if s.Mean() != 0 || s.Variance() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Error("empty stats should be all zero")
	}
}

func TestStatsSingle(t *testing.T) {
	var s Stats
	s.Observe(42)
	if s.Variance() != 0 {
		t.Errorf("single-observation variance = %v", s.Variance())
	}
	if s.Min() != 42 || s.Max() != 42 {
		t.Error("single observation min/max wrong")
	}
}

// Property: merging two stats equals observing the concatenation.
func TestStatsMergeProperty(t *testing.T) {
	f := func(a, b []float64) bool {
		clean := func(xs []float64) []float64 {
			out := xs[:0]
			for _, x := range xs {
				if x == x && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
					out = append(out, x)
				}
			}
			return out
		}
		a, b = clean(a), clean(b)
		var s1, s2, all Stats
		for _, v := range a {
			s1.Observe(v)
			all.Observe(v)
		}
		for _, v := range b {
			s2.Observe(v)
			all.Observe(v)
		}
		s1.Merge(&s2)
		if s1.Count() != all.Count() {
			return false
		}
		if all.Count() == 0 {
			return true
		}
		tol := 1e-6 * (1 + math.Abs(all.Mean()))
		if !almost(s1.Mean(), all.Mean(), tol) {
			return false
		}
		return almost(s1.Variance(), all.Variance(), 1e-4*(1+all.Variance()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSampleQuantiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Observe(float64(i))
	}
	if got := s.Quantile(0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := s.Quantile(1); got != 100 {
		t.Errorf("q1 = %v", got)
	}
	if got := s.Median(); !almost(got, 50.5, 1e-9) {
		t.Errorf("median = %v", got)
	}
	if got := s.P99(); got < 99 || got > 100 {
		t.Errorf("p99 = %v", got)
	}
}

func TestSampleQuantileEmpty(t *testing.T) {
	var s Sample
	if s.Quantile(0.5) != 0 {
		t.Error("empty sample quantile should be 0")
	}
}

func TestSampleObserveAfterQuantile(t *testing.T) {
	var s Sample
	s.Observe(5)
	s.Observe(1)
	_ = s.Median()
	s.Observe(3)
	if got := s.Median(); got != 3 {
		t.Errorf("median after re-observe = %v", got)
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(xs []float64, qa, qb float64) bool {
		var s Sample
		for _, x := range xs {
			if x != x {
				continue
			}
			s.Observe(x)
		}
		if s.Count() == 0 {
			return true
		}
		norm := func(q float64) float64 {
			q = math.Abs(q)
			return q - math.Floor(q)
		}
		lo, hi := norm(qa), norm(qb)
		if lo > hi {
			lo, hi = hi, lo
		}
		vlo, vhi := s.Quantile(lo), s.Quantile(hi)
		return vlo <= vhi && vlo >= s.Min() && vhi <= s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSeriesBucket(t *testing.T) {
	var s Series
	// Two "months" of length 10: values 1,3 and 5,7.
	s.Add(1, 1)
	s.Add(5, 3)
	s.Add(11, 5)
	s.Add(15, 7)
	keys, means := s.Bucket(func(t float64) int { return int(t / 10) })
	if len(keys) != 2 || keys[0] != 0 || keys[1] != 1 {
		t.Fatalf("keys = %v", keys)
	}
	if means[0] != 2 || means[1] != 6 {
		t.Errorf("means = %v", means)
	}
}

func TestSeriesMeanAndLast(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Last().V != 0 {
		t.Error("empty series should report zeros")
	}
	s.Add(0, 10)
	s.Add(1, 20)
	if s.Mean() != 15 {
		t.Errorf("mean = %v", s.Mean())
	}
	if s.Last().V != 20 || s.Last().T != 1 {
		t.Errorf("last = %+v", s.Last())
	}
}

func TestTimeWeightedAverage(t *testing.T) {
	var w TimeWeighted
	w.Set(0, 0)  // 0 for 10s
	w.Set(10, 4) // 4 for 10s
	w.Set(20, 2) // 2 for 10s
	if got := w.Average(30); !almost(got, 2, 1e-12) {
		t.Errorf("average = %v, want 2", got)
	}
	if w.Value() != 2 {
		t.Errorf("value = %v", w.Value())
	}
	if w.Max() != 4 {
		t.Errorf("max = %v", w.Max())
	}
}

func TestTimeWeightedAdd(t *testing.T) {
	var w TimeWeighted
	w.Set(0, 1)
	w.Add(5, 2) // now 3
	w.Add(10, -1)
	if w.Value() != 2 {
		t.Errorf("value after adds = %v", w.Value())
	}
	// avg over [0,10] = (1*5 + 3*5)/10 = 2
	if got := w.Average(10); !almost(got, 2, 1e-12) {
		t.Errorf("average = %v", got)
	}
}

func TestTimeWeightedBeforeStart(t *testing.T) {
	var w TimeWeighted
	if w.Average(100) != 0 {
		t.Error("average of never-set signal should be 0")
	}
	w.Set(50, 7)
	if w.Average(50) != 7 {
		t.Error("average at the set instant should be the value")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Inc()
	c.Addn(3)
	if c.Value() != 5 {
		t.Errorf("counter = %d", c.Value())
	}
	if Rate(c.Value(), 10) != 0.5 {
		t.Errorf("rate = %v", Rate(c.Value(), 10))
	}
	if Rate(1, 0) != 0 {
		t.Error("rate with zero total should be 0")
	}
}

func TestReservoirSmallStream(t *testing.T) {
	r := NewReservoir(100, rng.New(1))
	for i := 1; i <= 50; i++ {
		r.Observe(float64(i))
	}
	if r.Retained() != 50 {
		t.Errorf("retained = %d", r.Retained())
	}
	if got := r.Quantile(1); got != 50 {
		t.Errorf("max quantile = %v", got)
	}
}

func TestReservoirBounded(t *testing.T) {
	r := NewReservoir(64, rng.New(2))
	for i := 0; i < 100000; i++ {
		r.Observe(float64(i))
	}
	if r.Retained() != 64 {
		t.Errorf("retained = %d, want 64", r.Retained())
	}
	if r.Count() != 100000 {
		t.Errorf("count = %d", r.Count())
	}
}

func TestReservoirQuantileAccuracy(t *testing.T) {
	// Uniform stream: the reservoir median should approximate the true
	// median within a generous tolerance.
	r := NewReservoir(2000, rng.New(3))
	for i := 0; i < 200000; i++ {
		r.Observe(float64(i % 1000))
	}
	med := r.Quantile(0.5)
	if med < 350 || med > 650 {
		t.Errorf("reservoir median = %v, want ~500", med)
	}
}

func TestReservoirPanicsOnZeroCap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for zero capacity")
		}
	}()
	NewReservoir(0, rng.New(1))
}

// Property: a sample's quantile sweep reproduces the sorted data.
func TestQuantileSweepProperty(t *testing.T) {
	f := func(xs []float64) bool {
		var s Sample
		var kept []float64
		for _, x := range xs {
			if x != x {
				continue
			}
			s.Observe(x)
			kept = append(kept, x)
		}
		if len(kept) == 0 {
			return true
		}
		sort.Float64s(kept)
		for i, want := range kept {
			q := float64(i) / float64(len(kept)-1)
			if len(kept) == 1 {
				q = 0.5
			}
			got := s.Quantile(q)
			if got < kept[0] || got > kept[len(kept)-1] {
				return false
			}
			_ = want
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
