package metrics

import "df3/internal/sim"

// SampleEvery registers a periodic sampler of f into s on the engine's
// shared tick domain: all series sampled at one period ride a single heap
// event, in registration order, instead of each scheduling its own.
// Returns the subscription; stop it to end sampling.
func (s *Series) SampleEvery(e *sim.Engine, every sim.Time, f func(now float64) float64) *sim.Sub {
	return e.Domain(every).Subscribe(func(now sim.Time) {
		s.Add(now, f(now))
	})
}
