package cliutil

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// ListenAddr is a validated -addr flag value: the (network, address)
// pair to hand net.Listen.
type ListenAddr struct {
	// Network is "tcp" or "unix".
	Network string
	// Addr is the host:port (tcp) or socket path (unix).
	Addr string
}

// String renders the address the way the flag accepted it.
func (l ListenAddr) String() string {
	if l.Network == "unix" {
		return "unix:" + l.Addr
	}
	return l.Addr
}

// CheckListenAddr validates a listen-address flag before anything heavy
// starts, the same fail-fast bar as CheckWritableFile: "host:port" or
// ":port" listens on TCP (port 0 asks the kernel for an ephemeral port);
// "unix:/path/to.sock" listens on a unix socket whose parent directory
// must already exist and be writable. df3d and df3node share these
// rules, so a worker fleet and a server reject the same typos the same
// way.
func CheckListenAddr(s string) (ListenAddr, error) {
	if s == "" {
		return ListenAddr{}, fmt.Errorf("empty listen address")
	}
	if path, ok := strings.CutPrefix(s, "unix:"); ok {
		if path == "" {
			return ListenAddr{}, fmt.Errorf("unix listen address %q has no socket path", s)
		}
		if info, err := os.Stat(path); err == nil && info.IsDir() {
			return ListenAddr{}, fmt.Errorf("unix socket path %s is a directory", path)
		}
		dir := filepath.Dir(path)
		info, err := os.Stat(dir)
		if err != nil {
			return ListenAddr{}, fmt.Errorf("unix socket directory %s: %w", dir, err)
		}
		if !info.IsDir() {
			return ListenAddr{}, fmt.Errorf("unix socket directory %s is not a directory", dir)
		}
		probe, err := os.CreateTemp(dir, ".df3-listen-probe-*")
		if err != nil {
			return ListenAddr{}, fmt.Errorf("unix socket directory not writable: %w", err)
		}
		probe.Close()
		os.Remove(probe.Name())
		return ListenAddr{Network: "unix", Addr: path}, nil
	}
	host, port, err := net.SplitHostPort(s)
	if err != nil {
		return ListenAddr{}, fmt.Errorf("listen address %q: %w", s, err)
	}
	n, err := strconv.Atoi(port)
	if err != nil {
		return ListenAddr{}, fmt.Errorf("listen address %q: port %q is not a number", s, port)
	}
	if n < 0 || n > 65535 {
		return ListenAddr{}, fmt.Errorf("listen address %q: port %d out of range 0..65535", s, n)
	}
	if host != "" {
		if ip := net.ParseIP(host); ip == nil {
			// Hostnames are allowed (resolved at bind time), but a host
			// that cannot even be a hostname — spaces, empty labels —
			// is a typo worth rejecting now.
			for _, label := range strings.Split(host, ".") {
				if label == "" || strings.ContainsAny(label, " \t") {
					return ListenAddr{}, fmt.Errorf("listen address %q: bad host %q", s, host)
				}
			}
		}
	}
	return ListenAddr{Network: "tcp", Addr: s}, nil
}
