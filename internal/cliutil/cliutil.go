// Package cliutil holds the small validation helpers the df3 CLIs share:
// fail-fast checks that run before a simulation starts, so a long sweep
// cannot die on its last line because an output path was mistyped.
package cliutil

import (
	"fmt"
	"os"
	"path/filepath"
)

// CheckWritableFile verifies that `path` can be created as an output file:
// its parent directory exists and is a directory, and the path itself is
// not an existing directory. It probes by opening the file for writing
// (creating it if absent) — the run will overwrite it anyway — so
// permission errors surface immediately instead of after the run.
func CheckWritableFile(path string) error {
	if path == "" {
		return fmt.Errorf("empty output path")
	}
	dir := filepath.Dir(path)
	info, err := os.Stat(dir)
	if err != nil {
		return fmt.Errorf("output directory %s: %w", dir, err)
	}
	if !info.IsDir() {
		return fmt.Errorf("output directory %s is not a directory", dir)
	}
	if info, err := os.Stat(path); err == nil && info.IsDir() {
		return fmt.Errorf("output path %s is a directory", path)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("output path not writable: %w", err)
	}
	return f.Close()
}

// CheckOutputDir verifies that `path` either is a directory or can become
// one (its parent chain permits MkdirAll).
func CheckOutputDir(path string) error {
	if path == "" {
		return fmt.Errorf("empty output directory")
	}
	if info, err := os.Stat(path); err == nil {
		if !info.IsDir() {
			return fmt.Errorf("output directory %s exists and is not a directory", path)
		}
		return nil
	}
	if err := os.MkdirAll(path, 0o755); err != nil {
		return fmt.Errorf("output directory: %w", err)
	}
	return nil
}
