package cliutil

import (
	"os"
	"path/filepath"
	"testing"
)

func TestCheckWritableFile(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "sub")
	if err := os.Mkdir(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	existing := filepath.Join(dir, "existing.json")
	if err := os.WriteFile(existing, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		path string
		ok   bool
	}{
		{"fresh file in existing dir", filepath.Join(dir, "out.json"), true},
		{"overwrite existing file", existing, true},
		{"missing parent dir", filepath.Join(dir, "nope", "out.json"), false},
		{"path is a directory", sub, false},
		{"empty path", "", false},
	}
	for _, c := range cases {
		err := CheckWritableFile(c.path)
		if (err == nil) != c.ok {
			t.Errorf("%s: CheckWritableFile(%q) = %v, want ok=%v", c.name, c.path, err, c.ok)
		}
	}
}

func TestCheckWritableFileUnwritableDir(t *testing.T) {
	if os.Getuid() == 0 {
		t.Skip("root ignores directory permissions")
	}
	dir := t.TempDir()
	locked := filepath.Join(dir, "locked")
	if err := os.Mkdir(locked, 0o555); err != nil {
		t.Fatal(err)
	}
	if err := CheckWritableFile(filepath.Join(locked, "out.json")); err == nil {
		t.Error("expected error for read-only directory")
	}
}

func TestCheckOutputDir(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "file")
	if err := os.WriteFile(file, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := CheckOutputDir(dir); err != nil {
		t.Errorf("existing dir rejected: %v", err)
	}
	fresh := filepath.Join(dir, "a", "b")
	if err := CheckOutputDir(fresh); err != nil {
		t.Errorf("creatable dir rejected: %v", err)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Errorf("dir not created: %v", err)
	}
	if err := CheckOutputDir(file); err == nil {
		t.Error("file accepted as output directory")
	}
	if err := CheckOutputDir(""); err == nil {
		t.Error("empty path accepted")
	}
}
