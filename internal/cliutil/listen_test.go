package cliutil

import (
	"os"
	"path/filepath"
	"testing"
)

func TestCheckListenAddr(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "sub")
	if err := os.Mkdir(sub, 0o755); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		addr    string
		ok      bool
		network string
	}{
		{"port only", ":8080", true, "tcp"},
		{"host and port", "127.0.0.1:9090", true, "tcp"},
		{"hostname and port", "worker-3.local:9090", true, "tcp"},
		{"ipv6 and port", "[::1]:9090", true, "tcp"},
		{"ephemeral port", "127.0.0.1:0", true, "tcp"},
		{"max port", ":65535", true, "tcp"},
		{"unix socket in existing dir", "unix:" + filepath.Join(dir, "df3.sock"), true, "unix"},
		{"empty", "", false, ""},
		{"no port", "127.0.0.1", false, ""},
		{"port out of range", ":65536", false, ""},
		{"negative port", ":-1", false, ""},
		{"non-numeric port", ":http", false, ""},
		{"bad host", "bad host:80", false, ""},
		{"empty host label", "a..b:80", false, ""},
		{"unix with no path", "unix:", false, ""},
		{"unix in missing dir", "unix:" + filepath.Join(dir, "nope", "df3.sock"), false, ""},
		{"unix path is a directory", "unix:" + sub, false, ""},
	}
	for _, c := range cases {
		la, err := CheckListenAddr(c.addr)
		if (err == nil) != c.ok {
			t.Errorf("%s: CheckListenAddr(%q) = %v, want ok=%v", c.name, c.addr, err, c.ok)
			continue
		}
		if c.ok && la.Network != c.network {
			t.Errorf("%s: network %q, want %q", c.name, la.Network, c.network)
		}
	}
}

func TestCheckListenAddrUnwritableDir(t *testing.T) {
	if os.Getuid() == 0 {
		t.Skip("root ignores directory permissions")
	}
	dir := t.TempDir()
	locked := filepath.Join(dir, "locked")
	if err := os.Mkdir(locked, 0o555); err != nil {
		t.Fatal(err)
	}
	if _, err := CheckListenAddr("unix:" + filepath.Join(locked, "df3.sock")); err == nil {
		t.Error("expected error for read-only socket directory")
	}
}

func TestListenAddrString(t *testing.T) {
	if got := (ListenAddr{Network: "tcp", Addr: ":80"}).String(); got != ":80" {
		t.Errorf("tcp String = %q", got)
	}
	if got := (ListenAddr{Network: "unix", Addr: "/tmp/s"}).String(); got != "unix:/tmp/s" {
		t.Errorf("unix String = %q", got)
	}
}
