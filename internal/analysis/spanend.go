package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SpanendAnalyzer closes the gap between span hygiene counters and the code
// review that has to find the leak. The trace package counts UnmatchedEnds
// and OpenSpans at runtime, but a Begin without an End on some error path
// only surfaces after a run that happens to take that path. For span ids
// held in plain locals — begun and ended inside one function — the pairing
// is statically checkable: every return path and the fall-through of the
// declaring block must pass through EndSpan/EndSpanDetail.
//
// Ids that escape the function (stored in a struct, captured by a closure,
// passed to another function) follow the request across event boundaries
// and are out of scope here; the runtime counters still cover them.
var SpanendAnalyzer = &Analyzer{
	Name: "spanend",
	Doc:  "every locally-held trace span id must be ended on all paths out of its block",
	Run:  runSpanend,
}

const tracePkgPath = "df3/internal/trace"

// obsPkgPath hosts obs.Sampled, the head-sampling facade whose span ids
// obey the same begin/end discipline as the raw recorder's — the
// analyzer tracks both, so sampled call sites need no suppressions.
const obsPkgPath = "df3/internal/obs"

// isSpanBegin matches the calls that mint a locally-owned span id.
func isSpanBegin(fn *types.Func) bool {
	return FuncIs(fn, tracePkgPath, "Recorder.BeginSpan") ||
		FuncIs(fn, obsPkgPath, "Sampled.BeginRoot") ||
		FuncIs(fn, obsPkgPath, "Sampled.BeginSpan")
}

// isSpanEnd matches the calls that discharge the end obligation.
func isSpanEnd(fn *types.Func) bool {
	return FuncIs(fn, tracePkgPath, "Recorder.EndSpan") ||
		FuncIs(fn, tracePkgPath, "Recorder.EndSpanDetail") ||
		FuncIs(fn, obsPkgPath, "Sampled.EndSpan") ||
		FuncIs(fn, obsPkgPath, "Sampled.EndSpanDetail")
}

// isSpanLifecycle matches every call a span id may flow into without
// escaping: begins (as the parent argument), ends, and instants.
func isSpanLifecycle(fn *types.Func) bool {
	return isSpanBegin(fn) || isSpanEnd(fn) ||
		FuncIs(fn, tracePkgPath, "Recorder.Instant") ||
		FuncIs(fn, obsPkgPath, "Sampled.Instant")
}

func runSpanend(pass *Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch n := n.(type) {
		case *ast.FuncDecl:
			body = n.Body
		case *ast.FuncLit:
			body = n.Body
		}
		if body == nil {
			return true
		}
		checkSpansIn(pass, body)
		return true
	})
	return nil
}

// checkSpansIn finds `x := r.BeginSpan(...)` statements whose x stays local
// to fn and verifies the end-on-all-paths property for each. Nested
// function literals are skipped here (Inspect visits them separately) by
// comparing the enclosing literal.
func checkSpansIn(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body {
			return false // its own walk handles it
		}
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, s := range block.List {
			obj := spanDefine(pass, s)
			if obj == nil {
				continue
			}
			if spanEscapes(pass, body, obj, s) {
				continue
			}
			w := &spanWalk{pass: pass, obj: obj, declPos: s.Pos()}
			ended, terminated := w.stmts(block.List[i+1:], false)
			if w.bailed {
				continue
			}
			if !ended && !terminated {
				pass.Reportf(s.Pos(),
					"span %s is not ended when its block falls through: call EndSpan/EndSpanDetail on every path out (or let the id escape intentionally and annotate //df3:allow(spanend) <reason>)",
					obj.Name())
			}
		}
		return true
	})
}

// spanDefine matches `x := recorder.BeginSpan(...)` and returns x's object.
func spanDefine(pass *Pass, s ast.Stmt) types.Object {
	asg, ok := s.(*ast.AssignStmt)
	if !ok || asg.Tok != token.DEFINE || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return nil
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	if fn := pass.CalleeFunc(call); !isSpanBegin(fn) {
		return nil
	}
	id, ok := asg.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return pass.ObjectOf(id)
}

// spanEscapes reports whether obj is used anywhere that takes it out of
// this function's hands: captured by a closure, stored, returned, or passed
// to anything other than the span lifecycle calls (EndSpan, EndSpanDetail,
// and the parent argument of BeginSpan/Instant).
func spanEscapes(pass *Pass, body *ast.BlockStmt, obj types.Object, def ast.Stmt) bool {
	escapes := false
	ast.Inspect(body, func(n ast.Node) bool {
		if escapes {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || pass.ObjectOf(id) != obj {
			return true
		}
		path, _ := pathToIdent(body, id)
		for _, anc := range path {
			if _, ok := anc.(*ast.FuncLit); ok {
				escapes = true // closure may run on another path/time
				return false
			}
		}
		if !spanUseAllowed(pass, body, id, def) {
			escapes = true
			return false
		}
		return true
	})
	return escapes
}

// spanUseAllowed reports whether this mention of the span id keeps it
// local: its defining statement, a lifecycle call argument, or a pure
// comparison.
func spanUseAllowed(pass *Pass, body *ast.BlockStmt, id *ast.Ident, def ast.Stmt) bool {
	path, _ := pathToIdent(body, id)
	if len(path) == 0 {
		return false
	}
	// Walk outward from the ident.
	for i := len(path) - 1; i >= 0; i-- {
		switch p := path[i].(type) {
		case *ast.CallExpr:
			return isSpanLifecycle(pass.CalleeFunc(p))
		case *ast.BinaryExpr:
			// comparisons like x != 0 don't move the id anywhere
			if p.Op == token.EQL || p.Op == token.NEQ {
				continue
			}
			return false
		case *ast.AssignStmt:
			return p == def // only its own definition may write it
		case *ast.ParenExpr, *ast.IfStmt, *ast.ExprStmt, *ast.BlockStmt, *ast.CaseClause, *ast.SwitchStmt:
			continue
		case *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr, *ast.SendStmt, *ast.UnaryExpr, *ast.IndexExpr, *ast.RangeStmt:
			return false
		default:
			continue
		}
	}
	return true
}

// pathToIdent returns the ancestor chain from root down to id.
func pathToIdent(root ast.Node, id *ast.Ident) ([]ast.Node, bool) {
	var path []ast.Node
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		if n == nil {
			if !found && len(path) > 0 {
				path = path[:len(path)-1]
			}
			return false
		}
		path = append(path, n)
		if n == ast.Node(id) {
			found = true
			return false
		}
		return true
	})
	if !found {
		return nil, false
	}
	return path[:len(path)-1], true // drop the ident itself
}

// spanWalk is the structured "ended on all paths" interpreter.
type spanWalk struct {
	pass    *Pass
	obj     types.Object
	declPos token.Pos
	bailed  bool // goto/label encountered: give up silently
}

// stmts interprets a statement list. It returns (ended-at-fallthrough,
// terminated): terminated means control cannot fall off the end (every
// path returned, panicked or branched away).
func (w *spanWalk) stmts(list []ast.Stmt, ended bool) (bool, bool) {
	for _, s := range list {
		var term bool
		ended, term = w.stmt(s, ended)
		if term || w.bailed {
			return ended, term
		}
	}
	return ended, false
}

func (w *spanWalk) stmt(s ast.Stmt, ended bool) (bool, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if w.isEndCall(s.X) {
			return true, false
		}
		if call, ok := s.X.(*ast.CallExpr); ok && isPanicCall(w.pass, call) {
			return ended, true
		}
		return ended, false
	case *ast.DeferStmt:
		if w.isEndCall(s.Call) {
			// A deferred End covers every later exit.
			return true, false
		}
		return ended, false
	case *ast.ReturnStmt:
		if !ended {
			w.pass.Reportf(s.Pos(),
				"return leaks span %s (begun at line %d): end it before returning or defer the EndSpan",
				w.obj.Name(), w.pass.Fset.Position(w.declPos).Line)
		}
		return ended, true
	case *ast.BlockStmt:
		return w.stmts(s.List, ended)
	case *ast.IfStmt:
		if s.Init != nil {
			ended, _ = w.stmt(s.Init, ended)
		}
		thenEnded, thenTerm := w.stmts(s.Body.List, ended)
		elseEnded, elseTerm := ended, false
		if s.Else != nil {
			elseEnded, elseTerm = w.stmt(s.Else, ended)
		}
		switch {
		case thenTerm && elseTerm:
			return ended, true
		case thenTerm:
			return elseEnded, false
		case elseTerm:
			return thenEnded, false
		default:
			return thenEnded && elseEnded, false
		}
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.branches(s, ended)
	case *ast.ForStmt:
		w.stmts(s.Body.List, ended) // audit returns inside; 0-iteration case keeps `ended`
		return ended, false
	case *ast.RangeStmt:
		w.stmts(s.Body.List, ended)
		return ended, false
	case *ast.BranchStmt:
		if s.Tok == token.GOTO {
			w.bailed = true
		}
		// break/continue leave the surrounding loop logic to the
		// conservative loop rule above.
		return ended, true
	case *ast.LabeledStmt:
		w.bailed = true
		return ended, false
	default:
		return ended, false
	}
}

// branches folds ended-ness over the case bodies of a switch or select.
func (w *spanWalk) branches(s ast.Stmt, ended bool) (bool, bool) {
	var (
		list       []ast.Stmt
		hasDefault bool
	)
	switch s := s.(type) {
	case *ast.SwitchStmt:
		list = s.Body.List
	case *ast.TypeSwitchStmt:
		list = s.Body.List
	case *ast.SelectStmt:
		list = s.Body.List
	}
	allEnded, allTerm := true, true
	for _, cc := range list {
		var body []ast.Stmt
		switch cc := cc.(type) {
		case *ast.CaseClause:
			body = cc.Body
			hasDefault = hasDefault || cc.List == nil
		case *ast.CommClause:
			body = cc.Body
			hasDefault = hasDefault || cc.Comm == nil
		}
		e, t := w.stmts(body, ended)
		if !t {
			allEnded = allEnded && e
			allTerm = false
		}
	}
	if !hasDefault {
		// The no-case-taken path falls through with the incoming state.
		allEnded = allEnded && ended
		allTerm = false
	}
	if len(list) == 0 {
		return ended, false
	}
	return allEnded, allTerm
}

// isEndCall matches EndSpan/EndSpanDetail with the tracked id as argument.
func (w *spanWalk) isEndCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	if !isSpanEnd(w.pass.CalleeFunc(call)) {
		return false
	}
	for _, arg := range call.Args {
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok && w.pass.ObjectOf(id) == w.obj {
			return true
		}
	}
	return false
}

func isPanicCall(pass *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic" && pass.TypesInfo.Types[call.Fun].IsBuiltin()
}
