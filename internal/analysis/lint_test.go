package analysis_test

import (
	"testing"

	"df3/internal/analysis"
	"df3/internal/analysis/atest"
)

// TestAnalyzers drives every analyzer over its fixture directory. Each
// fixture pins flagging and non-flagging cases with // want expectations;
// the df3directive fixture runs together with maporder to prove a malformed
// suppression both is a finding and suppresses nothing.
func TestAnalyzers(t *testing.T) {
	tests := []struct {
		name      string
		analyzers []*analysis.Analyzer
	}{
		{"detrand", []*analysis.Analyzer{analysis.DetrandAnalyzer}},
		{"maporder", []*analysis.Analyzer{analysis.MaporderAnalyzer}},
		{"simtime", []*analysis.Analyzer{analysis.SimtimeAnalyzer}},
		{"unitsafe", []*analysis.Analyzer{analysis.UnitsafeAnalyzer}},
		{"spanend", []*analysis.Analyzer{analysis.SpanendAnalyzer}},
		{"lockedblock", []*analysis.Analyzer{analysis.LockedblockAnalyzer}},
		{"df3directive", []*analysis.Analyzer{analysis.DirectiveAnalyzer, analysis.MaporderAnalyzer}},
		{"wirepair", []*analysis.Analyzer{analysis.WirepairAnalyzer}},
		{"statefp", []*analysis.Analyzer{analysis.StatefpAnalyzer}},
		{"atomicmix", []*analysis.Analyzer{analysis.AtomicmixAnalyzer}},
		{"detrand_interproc", []*analysis.Analyzer{analysis.DetrandAnalyzer}},
		{"lockedblock_interproc", []*analysis.Analyzer{analysis.LockedblockAnalyzer}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			atest.Run(t, "testdata/"+tt.name, tt.analyzers...)
		})
	}
}

func TestByName(t *testing.T) {
	for _, a := range analysis.Analyzers() {
		if got := analysis.ByName(a.Name); got != a {
			t.Errorf("ByName(%q) = %v, want %v", a.Name, got, a)
		}
	}
	if analysis.ByName("nosuch") != nil {
		t.Error("ByName(nosuch) should be nil")
	}
}
