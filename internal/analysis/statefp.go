package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// StatefpAnalyzer kills the worst silent-divergence class in crash
// recovery: a struct serialized into a checkpoint section or folded into
// a state fingerprint grows a field, and one of the writer, the reader,
// or the digest is not updated — every restore then silently forks
// history. A struct opts in with a declaration directive in its doc
// comment:
//
//	//df3:statefp pkg.Encoder pkg.Decoder pkg.Digest
//	type State struct { ... }
//
// naming every function (as pkgpath.Name or pkgpath.Recv.Name) that must
// cover the struct exhaustively. The facts layer records, per declared
// contract, which fields each named function mentions (selector accesses
// and composite-literal keys; a positional literal covers all fields
// because Go requires it to). Each package then self-checks the named
// functions it defines, and the contract's home package — the one
// defining the last-listed function, by construction the deepest
// dependent — additionally checks that every named function was actually
// seen, so a deleted or renamed encoder cannot quietly drop out of the
// contract.
var StatefpAnalyzer = &Analyzer{
	Name: "statefp",
	Doc:  "structs under a df3:statefp contract keep every field covered by their encoder, decoder and fingerprint functions",
	Run:  runStatefp,
}

// collectContracts records the //df3:statefp declarations sitting on
// struct type declarations in this package.
func collectContracts(pass *Pass, fx *Facts) {
	forEachStatefpDecl(pass, func(ts *ast.TypeSpec, d *Directive) {
		obj, _ := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
		if obj == nil || obj.Pkg() == nil {
			return
		}
		st, ok := obj.Type().Underlying().(*types.Struct)
		if !ok {
			return // statefp analyzer reports the misplacement
		}
		key := obj.Pkg().Path() + "." + obj.Name()
		if _, exists := fx.contracts[key]; exists {
			return
		}
		c := &Contract{Struct: key, Funcs: strings.Fields(d.Reason), Decl: shortPos(pass.Fset.Position(d.Pos()))}
		for i := 0; i < st.NumFields(); i++ {
			c.Fields = append(c.Fields, st.Field(i).Name())
		}
		fx.contracts[key] = c
	})
}

// forEachStatefpDecl visits every statefp directive attached to a type
// spec (via the GenDecl doc or the spec's own doc).
func forEachStatefpDecl(pass *Pass, fn func(*ast.TypeSpec, *Directive)) {
	for _, f := range pass.Files {
		tf := pass.Fset.File(f.Pos())
		if tf == nil {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				for _, doc := range []*ast.CommentGroup{gd.Doc, ts.Doc} {
					if doc == nil {
						continue
					}
					for _, c := range doc.List {
						if !strings.HasPrefix(c.Text, directiveMarker) {
							continue
						}
						d := &Directive{pos: c.Slash}
						posn := tf.Position(c.Slash)
						d.File, d.Line, d.Col = posn.Filename, posn.Line, posn.Column
						parseDirectiveBody(d, strings.TrimSuffix(strings.TrimPrefix(c.Text, directiveMarker), "\r"))
						if d.Declaration && d.Problem == "" {
							fn(ts, d)
						}
					}
				}
			}
		}
	}
}

// collectCoverage records which contract-struct fields fi mentions, when
// some contract in the store demands fi.
func collectCoverage(pass *Pass, fx *Facts, fi *fnInfo) {
	var demanded []*Contract
	for _, sk := range sortedContractKeys(fx) {
		c := fx.contracts[sk]
		for _, fk := range c.Funcs {
			if fk == fi.key {
				demanded = append(demanded, c)
			}
		}
	}
	if len(demanded) == 0 {
		return
	}
	for _, c := range demanded {
		fields := map[string]bool{}
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				sel := pass.TypesInfo.Selections[n]
				if sel == nil || sel.Kind() != types.FieldVal {
					return true
				}
				if structKeyOf(sel.Recv()) == c.Struct {
					fields[n.Sel.Name] = true
				}
			case *ast.CompositeLit:
				t := pass.TypeOf(n)
				if t == nil || structKeyOf(t) != c.Struct {
					return true
				}
				keyed := false
				for _, el := range n.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						keyed = true
						if id, ok := kv.Key.(*ast.Ident); ok {
							fields[id.Name] = true
						}
					}
				}
				if !keyed && len(n.Elts) > 0 {
					// Positional literal: the language requires every field.
					for _, f := range c.Fields {
						fields[f] = true
					}
				}
			}
			return true
		})
		list := make([]string, 0, len(fields))
		for f := range fields {
			list = append(list, f)
		}
		sort.Strings(list)
		m := fx.coverage[c.Struct]
		if m == nil {
			m = map[string][]string{}
			fx.coverage[c.Struct] = m
		}
		if _, exists := m[fi.key]; !exists {
			m[fi.key] = list
		}
	}
}

// structKeyOf returns the pkgpath.TypeName key of t after pointer/alias
// stripping, or "".
func structKeyOf(t types.Type) string {
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}

func runStatefp(pass *Pass) error {
	if pass.Pkg == nil {
		return nil
	}
	pkgPath := pass.Pkg.Path()

	// A statefp declaration that is not sitting on a struct type is dead:
	// no contract was recorded for it.
	consumed := map[string]bool{}
	forEachStatefpDecl(pass, func(ts *ast.TypeSpec, d *Directive) {
		obj, _ := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
		if obj == nil {
			return
		}
		if _, ok := obj.Type().Underlying().(*types.Struct); ok {
			consumed[posKey(d.File, d.Line)] = true
		}
	})
	for _, f := range pass.Files {
		tf := pass.Fset.File(f.Pos())
		if tf == nil {
			continue
		}
		src, err := pass.ReadFile(tf.Name())
		if err != nil {
			return err
		}
		for _, d := range ParseDirectives(tf, f, src) {
			if d.Declaration && d.Problem == "" && !consumed[posKey(d.File, d.Line)] {
				pass.Reportf(d.Pos(), "df3:statefp must sit in the doc comment of a struct type declaration")
			}
		}
	}

	// Local declaration positions, for anchoring diagnostics.
	declPos := map[string]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func); obj != nil {
					declPos[FuncKey(obj)] = fd
				}
			}
		}
	}

	for _, sk := range sortedContractKeys(pass.Facts) {
		c := pass.Facts.contracts[sk]
		cov := pass.Facts.coverage[sk]
		for _, fk := range c.Funcs {
			if keyPkg(fk) != pkgPath {
				continue
			}
			fd, local := declPos[fk]
			if !local {
				continue // the home completeness check below names it
			}
			fields, seen := cov[fk]
			if !seen {
				fields = nil
			}
			covered := map[string]bool{}
			for _, f := range fields {
				covered[f] = true
			}
			var missing []string
			for _, f := range c.Fields {
				if !covered[f] {
					missing = append(missing, f)
				}
			}
			if len(missing) > 0 {
				pass.Reportf(fd.Pos(),
					"%s does not cover field %s of %s (df3:statefp contract at %s): a snapshot taken here silently drops state",
					shortKey(fk), strings.Join(missing, ", "), shortKey(sk), c.Decl)
			}
		}
		if c.Home() == pkgPath {
			for _, fk := range c.Funcs {
				if _, seen := cov[fk]; seen {
					continue
				}
				if _, local := declPos[fk]; local {
					continue // just checked above
				}
				at := pass.Files[0].Pos()
				if fd, ok := declPos[c.Funcs[len(c.Funcs)-1]]; ok {
					at = fd.Pos()
				}
				pass.Reportf(at,
					"df3:statefp contract on %s (declared at %s) names %s, but no analyzed package defines it — update the directive or restore the function",
					shortKey(sk), c.Decl, shortKey(fk))
			}
		}
	}
	return nil
}

func sortedContractKeys(fx *Facts) []string {
	keys := make([]string, 0, len(fx.contracts))
	for k := range fx.contracts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func posKey(file string, line int) string {
	return fmt.Sprintf("%s:%d", file, line)
}
