package analysis

// Analyzers returns the full df3lint suite in reporting order. The
// directive checker runs last so its findings about bad suppressions
// appear after the findings those suppressions failed to silence.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DetrandAnalyzer,
		MaporderAnalyzer,
		SimtimeAnalyzer,
		UnitsafeAnalyzer,
		SpanendAnalyzer,
		LockedblockAnalyzer,
		WirepairAnalyzer,
		StatefpAnalyzer,
		AtomicmixAnalyzer,
		DirectiveAnalyzer,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
