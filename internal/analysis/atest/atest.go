// Package atest is the fixture harness for the df3lint analyzers: it runs
// analyzers over a testdata directory and checks their findings against
// `// want` comments, mirroring golang.org/x/tools' analysistest on the
// stdlib-only framework.
//
// Expectations sit at the end of the line a finding is reported on:
//
//	t := time.Now() // want `time\.Now reads the wall clock`
//
// Each expectation is a regular expression, quoted with backticks or double
// quotes; several may follow one want marker. Every finding must match an
// expectation on its line and every expectation must be matched by exactly
// one finding, so fixtures pin both the flagging and the non-flagging cases.
//
// Before the fixture is parsed the want comments are blanked in place
// (byte-for-byte, so positions hold): a want comment trailing a //df3:
// directive would otherwise be read as the directive's reason.
package atest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"df3/internal/analysis"
	"df3/internal/analysis/load"
)

// loader is shared by every fixture in the test binary: the expensive
// standard-library and module type-checking happens once.
var (
	loaderOnce sync.Once
	loader     *load.Loader
)

func sharedLoader() *load.Loader {
	loaderOnce.Do(func() { loader = load.NewLoader("") })
	return loader
}

const wantMarker = "// want "

// expectation is one compiled want pattern awaiting a finding.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads the fixture package in dir, applies the analyzers, and reports
// any mismatch between findings and want expectations as test errors.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no fixture files in %s (%v)", dir, err)
	}
	sort.Strings(paths)

	var (
		srcs    [][]byte
		wants   []*expectation
		sources = map[string][]byte{}
	)
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		sanitized, ws, err := extractWants(path, src)
		if err != nil {
			t.Fatal(err)
		}
		srcs = append(srcs, sanitized)
		sources[path] = sanitized
		wants = append(wants, ws...)
	}

	pkg, err := sharedLoader().CheckSource("df3lint/fixture/"+filepath.Base(dir), paths, srcs)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	findings, err := analysis.RunPackage(analysis.Unit{
		Fset:  sharedLoader().Fset(),
		Files: pkg.Files,
		Pkg:   pkg.Types,
		Info:  pkg.Info,
		ReadFile: func(name string) ([]byte, error) {
			src, ok := sources[name]
			if !ok {
				return nil, fmt.Errorf("atest: no source for %s", name)
			}
			return src, nil
		},
	}, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", dir, err)
	}

	for _, f := range findings {
		if !claim(wants, f.Posn, f.Message) {
			t.Errorf("%s: unexpected finding: %s [%s]", f.Posn, f.Message, f.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched %q", w.file, w.line, w.re)
		}
	}
}

// claim marks the first unmatched expectation covering (posn, message).
func claim(wants []*expectation, posn token.Position, message string) bool {
	for _, w := range wants {
		if !w.matched && w.file == posn.Filename && w.line == posn.Line && w.re.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}

// extractWants pulls the want expectations out of src and returns a copy
// with each want comment overwritten by spaces, preserving every offset.
func extractWants(path string, src []byte) ([]byte, []*expectation, error) {
	out := append([]byte(nil), src...)
	var wants []*expectation
	line := 0
	for start := 0; start < len(out); {
		line++
		end := len(out)
		if i := strings.IndexByte(string(out[start:]), '\n'); i >= 0 {
			end = start + i
		}
		text := string(out[start:end])
		if idx := strings.Index(text, wantMarker); idx >= 0 {
			ws, err := parseWants(path, line, text[idx+len(wantMarker):])
			if err != nil {
				return nil, nil, err
			}
			wants = append(wants, ws...)
			for i := start + idx; i < end; i++ {
				out[i] = ' '
			}
		}
		start = end + 1
	}
	return out, wants, nil
}

// parseWants compiles the quoted patterns after a want marker.
func parseWants(path string, line int, rest string) ([]*expectation, error) {
	var wants []*expectation
	for {
		rest = strings.TrimSpace(rest)
		if rest == "" {
			break
		}
		var raw string
		switch rest[0] {
		case '`':
			close := strings.IndexByte(rest[1:], '`')
			if close < 0 {
				return nil, fmt.Errorf("%s:%d: unterminated want pattern", path, line)
			}
			raw, rest = rest[1:1+close], rest[close+2:]
		case '"':
			end := 1
			for end < len(rest) && (rest[end] != '"' || rest[end-1] == '\\') {
				end++
			}
			if end == len(rest) {
				return nil, fmt.Errorf("%s:%d: unterminated want pattern", path, line)
			}
			unq, err := strconv.Unquote(rest[:end+1])
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad want pattern: %v", path, line, err)
			}
			raw, rest = unq, rest[end+1:]
		default:
			return nil, fmt.Errorf("%s:%d: want patterns must be quoted with ` or \"", path, line)
		}
		re, err := regexp.Compile(raw)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", path, line, raw, err)
		}
		wants = append(wants, &expectation{file: path, line: line, re: re})
	}
	return wants, nil
}
