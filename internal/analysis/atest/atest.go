// Package atest is the fixture harness for the df3lint analyzers: it runs
// analyzers over a testdata directory and checks their findings against
// `// want` comments, mirroring golang.org/x/tools' analysistest on the
// stdlib-only framework.
//
// Expectations sit at the end of the line a finding is reported on:
//
//	t := time.Now() // want `time\.Now reads the wall clock`
//
// Each expectation is a regular expression, quoted with backticks or double
// quotes; several may follow one want marker. Every finding must match an
// expectation on its line and every expectation must be matched by exactly
// one finding, so fixtures pin both the flagging and the non-flagging cases.
//
// A fixture directory may instead hold sub-directories, each one package
// of a multi-package fixture — the shape interprocedural facts need,
// since they only matter across package boundaries. Sub-packages are
// loaded in sorted name order (name dependencies "a", consumers "b") with
// import paths "df3lint/fixture/<dir>/<sub>", share one facts store, and
// may import earlier sub-packages. Fact summaries are asserted with a
// wantfact marker on the function's declaration line:
//
//	func leaks() time.Time { ... } // wantfact WallClock
//	func clean() int { ... }       // wantfact -
//
// naming the expected fact bits in declaration order (WallClock, MathRand,
// Blocks, Locks), comma-separated, or "-" for none.
//
// Before the fixture is parsed the want and wantfact comments are blanked
// in place (byte-for-byte, so positions hold): a want comment trailing a
// //df3: directive would otherwise be read as the directive's reason.
package atest

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"df3/internal/analysis"
	"df3/internal/analysis/load"
)

// loader is shared by every fixture in the test binary: the expensive
// standard-library and module type-checking happens once.
var (
	loaderOnce sync.Once
	loader     *load.Loader
)

func sharedLoader() *load.Loader {
	loaderOnce.Do(func() { loader = load.NewLoader("") })
	return loader
}

const (
	wantMarker     = "// want " // trailing space: no collision with wantfact
	wantfactMarker = "// wantfact "
)

// expectation is one compiled want pattern awaiting a finding.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// factExpectation asserts the fact bits of the function declared on line.
type factExpectation struct {
	file string
	line int
	want string // FuncFacts.String() form: "WallClock,Blocks" or "-"
}

// Run loads the fixture in dir — one package of *.go files, or sorted
// sub-directory packages sharing a facts store — applies the analyzers to
// every package, and reports any mismatch between findings and want
// expectations, or between computed facts and wantfact assertions, as
// test errors.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	pkgDirs, err := fixturePackages(dir)
	if err != nil {
		t.Fatal(err)
	}

	var (
		wants     []*expectation
		factWants []*factExpectation
		findings  []analysis.Finding
		declFacts = map[string]*analysis.FuncFacts{} // "file:line" -> summary
	)
	facts := analysis.NewFacts()
	deps := map[string]*types.Package{}
	for _, pkgDir := range pkgDirs {
		paths, err := filepath.Glob(filepath.Join(pkgDir, "*.go"))
		if err != nil || len(paths) == 0 {
			t.Fatalf("no fixture files in %s (%v)", pkgDir, err)
		}
		sort.Strings(paths)

		var (
			srcs    [][]byte
			sources = map[string][]byte{}
		)
		for _, path := range paths {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			sanitized, ws, fws, err := extractWants(path, src)
			if err != nil {
				t.Fatal(err)
			}
			srcs = append(srcs, sanitized)
			sources[path] = sanitized
			wants = append(wants, ws...)
			factWants = append(factWants, fws...)
		}

		importPath := "df3lint/fixture/" + filepath.ToSlash(filepath.Base(dir))
		if pkgDir != dir {
			importPath += "/" + filepath.Base(pkgDir)
		}
		pkg, err := sharedLoader().CheckSourceWith(importPath, paths, srcs, deps)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", pkgDir, err)
		}
		deps[importPath] = pkg.Types

		got, _, err := analysis.RunPackage(analysis.Unit{
			Fset:  sharedLoader().Fset(),
			Files: pkg.Files,
			Pkg:   pkg.Types,
			Info:  pkg.Info,
			Facts: facts,
			ReadFile: func(name string) ([]byte, error) {
				src, ok := sources[name]
				if !ok {
					return nil, fmt.Errorf("atest: no source for %s", name)
				}
				return src, nil
			},
		}, analyzers)
		if err != nil {
			t.Fatalf("running analyzers on %s: %v", pkgDir, err)
		}
		findings = append(findings, got...)

		fset := sharedLoader().Fset()
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if key := analysis.FuncKey(obj); key != "" {
					posn := fset.Position(fd.Pos())
					declFacts[fmt.Sprintf("%s:%d", posn.Filename, posn.Line)] = facts.Lookup(key)
				}
			}
		}
	}

	for _, f := range findings {
		if !claim(wants, f.Posn, f.Message) {
			t.Errorf("%s: unexpected finding: %s [%s]", f.Posn, f.Message, f.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched %q", w.file, w.line, w.re)
		}
	}
	for _, fw := range factWants {
		ff, ok := declFacts[fmt.Sprintf("%s:%d", fw.file, fw.line)]
		if !ok {
			t.Errorf("%s:%d: wantfact is not on a function declaration line", fw.file, fw.line)
			continue
		}
		if got := ff.String(); got != fw.want {
			t.Errorf("%s:%d: facts %s, wantfact %s", fw.file, fw.line, got, fw.want)
		}
	}
}

// fixturePackages resolves dir to its package directories: the sorted
// sub-directories containing Go files, or dir itself.
func fixturePackages(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("reading fixture %s: %v", dir, err)
	}
	var subs []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		sub := filepath.Join(dir, e.Name())
		if m, _ := filepath.Glob(filepath.Join(sub, "*.go")); len(m) > 0 {
			subs = append(subs, sub)
		}
	}
	if len(subs) == 0 {
		return []string{dir}, nil
	}
	sort.Strings(subs)
	return subs, nil
}

// claim marks the first unmatched expectation covering (posn, message).
func claim(wants []*expectation, posn token.Position, message string) bool {
	for _, w := range wants {
		if !w.matched && w.file == posn.Filename && w.line == posn.Line && w.re.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}

// extractWants pulls the want and wantfact expectations out of src and
// returns a copy with each marker comment overwritten by spaces,
// preserving every offset.
func extractWants(path string, src []byte) ([]byte, []*expectation, []*factExpectation, error) {
	out := append([]byte(nil), src...)
	var wants []*expectation
	var factWants []*factExpectation
	line := 0
	for start := 0; start < len(out); {
		line++
		end := len(out)
		if i := strings.IndexByte(string(out[start:]), '\n'); i >= 0 {
			end = start + i
		}
		text := string(out[start:end])
		if idx := strings.Index(text, wantMarker); idx >= 0 {
			ws, err := parseWants(path, line, text[idx+len(wantMarker):])
			if err != nil {
				return nil, nil, nil, err
			}
			wants = append(wants, ws...)
			for i := start + idx; i < end; i++ {
				out[i] = ' '
			}
		} else if idx := strings.Index(text, wantfactMarker); idx >= 0 {
			want := strings.TrimSpace(text[idx+len(wantfactMarker):])
			if want == "" {
				return nil, nil, nil, fmt.Errorf("%s:%d: empty wantfact (use - for no facts)", path, line)
			}
			factWants = append(factWants, &factExpectation{file: path, line: line, want: want})
			for i := start + idx; i < end; i++ {
				out[i] = ' '
			}
		}
		start = end + 1
	}
	return out, wants, factWants, nil
}

// parseWants compiles the quoted patterns after a want marker.
func parseWants(path string, line int, rest string) ([]*expectation, error) {
	var wants []*expectation
	for {
		rest = strings.TrimSpace(rest)
		if rest == "" {
			break
		}
		var raw string
		switch rest[0] {
		case '`':
			close := strings.IndexByte(rest[1:], '`')
			if close < 0 {
				return nil, fmt.Errorf("%s:%d: unterminated want pattern", path, line)
			}
			raw, rest = rest[1:1+close], rest[close+2:]
		case '"':
			end := 1
			for end < len(rest) && (rest[end] != '"' || rest[end-1] == '\\') {
				end++
			}
			if end == len(rest) {
				return nil, fmt.Errorf("%s:%d: unterminated want pattern", path, line)
			}
			unq, err := strconv.Unquote(rest[:end+1])
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad want pattern: %v", path, line, err)
			}
			raw, rest = unq, rest[end+1:]
		default:
			return nil, fmt.Errorf("%s:%d: want patterns must be quoted with ` or \"", path, line)
		}
		re, err := regexp.Compile(raw)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", path, line, raw, err)
		}
		wants = append(wants, &expectation{file: path, line: line, re: re})
	}
	return wants, nil
}
