package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// This file implements the cross-package facts layer that turns the suite
// from single-function AST checks into a module-wide interprocedural
// engine. The driver walks packages in `go list -deps` post-order (every
// package after all of its dependencies), computes per-function summaries
// for each module package, and accumulates them in one Facts store that
// later packages' passes consult. Under `go vet -vettool` the same store
// survives the unitchecker protocol: each unit writes its accumulated
// store to the .vetx facts file and imports its dependencies' stores from
// theirs.
//
// Four per-function bits are tracked (plus the structures the wirepair,
// statefp and atomicmix analyzers need):
//
//	WallClock  the function (transitively) reads the wall clock
//	MathRand   the function (transitively) draws from math/rand et al.
//	Blocks     the function may block (channels, WaitGroup.Wait, run loops)
//	Locks      the function acquires a sync.Mutex/RWMutex
//
// Taint stops at sanctioned boundaries: a root operation or a propagating
// callsite covered by the matching //df3:allow directive contributes
// nothing, so one reasoned suppression on a reporting-only wrapper clears
// every caller instead of forcing a directive per call.

// FactBit identifies one boolean per-function fact.
type FactBit uint8

const (
	// FactWallClock marks functions that transitively call time.Now,
	// time.Since or time.Until.
	FactWallClock FactBit = 1 << iota
	// FactMathRand marks functions that transitively draw from math/rand,
	// math/rand/v2 or crypto/rand.
	FactMathRand
	// FactBlocks marks functions that may block: channel operations,
	// selects without default, and the known-blocking call list.
	FactBlocks
	// FactLocks marks functions that acquire a sync.Mutex or sync.RWMutex.
	FactLocks
)

// factNames maps bits to the names used by String, the fixture
// `// wantfact` assertions, and the -facts debug dump.
var factNames = []struct {
	bit  FactBit
	name string
}{
	{FactWallClock, "WallClock"},
	{FactMathRand, "MathRand"},
	{FactBlocks, "Blocks"},
	{FactLocks, "Locks"},
}

// FactBitByName resolves a fact name ("WallClock") to its bit, or 0.
func FactBitByName(name string) FactBit {
	for _, fn := range factNames {
		if fn.name == name {
			return fn.bit
		}
	}
	return 0
}

// FuncFacts is one function's interprocedural summary.
type FuncFacts struct {
	Bits FactBit
	// WallVia, RandVia and BlockVia describe one path from the function to
	// the root operation that set the corresponding bit — diagnostics quote
	// them so a finding two hops from its root still names the root.
	WallVia  string
	RandVia  string
	BlockVia string
}

// Has reports whether the summary carries bit.
func (ff *FuncFacts) Has(bit FactBit) bool { return ff != nil && ff.Bits&bit != 0 }

// String lists the set bits in declaration order, "-" when none are set.
func (ff *FuncFacts) String() string {
	if ff == nil || ff.Bits == 0 {
		return "-"
	}
	var names []string
	for _, fn := range factNames {
		if ff.Bits&fn.bit != 0 {
			names = append(names, fn.name)
		}
	}
	return strings.Join(names, ",")
}

// via returns the path string for bit.
func (ff *FuncFacts) via(bit FactBit) string {
	switch bit {
	case FactWallClock:
		return ff.WallVia
	case FactMathRand:
		return ff.RandVia
	case FactBlocks:
		return ff.BlockVia
	}
	return ""
}

func (ff *FuncFacts) setVia(bit FactBit, via string) {
	switch bit {
	case FactWallClock:
		ff.WallVia = via
	case FactMathRand:
		ff.RandVia = via
	case FactBlocks:
		ff.BlockVia = via
	}
}

// Contract is one statefp field-coverage contract, declared by a
// //df3:statefp directive on a struct type: every listed function must
// mention every field of the struct, so adding a field without updating
// the encoder, the decoder and the fingerprint digest is a finding. The
// package of the last listed function is the contract's home: it is the
// deepest dependent, so when it is analyzed every other listed function
// has already been summarized, and the home pass additionally checks that
// each listed function was actually seen somewhere.
type Contract struct {
	Struct string   // structKey: pkgpath.TypeName
	Fields []string // field names in declaration order
	Funcs  []string // demanded function keys, in directive order
	Decl   string   // declaration site, for diagnostics
}

// Home returns the import path of the contract's home package.
func (c *Contract) Home() string {
	if len(c.Funcs) == 0 {
		return ""
	}
	return keyPkg(c.Funcs[len(c.Funcs)-1])
}

// Facts is the accumulated cross-package store. It is not safe for
// concurrent use; the drivers run packages sequentially in dependency
// order.
type Facts struct {
	packages     map[string]bool                // module packages summarized
	funcs        map[string]*FuncFacts          // funcKey -> summary
	coverage     map[string]map[string][]string // structKey -> funcKey -> fields mentioned
	contracts    map[string]*Contract           // structKey -> contract
	atomicFields map[string]string              // fieldKey -> example atomic site
	plainFields  map[string]string              // fieldKey -> example plain site
	handledKinds map[string]string              // constKey -> decoder funcKey
}

// NewFacts returns an empty store.
func NewFacts() *Facts {
	return &Facts{
		packages:     map[string]bool{},
		funcs:        map[string]*FuncFacts{},
		coverage:     map[string]map[string][]string{},
		contracts:    map[string]*Contract{},
		atomicFields: map[string]string{},
		plainFields:  map[string]string{},
		handledKinds: map[string]string{},
	}
}

// Lookup returns the summary for a function key, or nil.
func (fx *Facts) Lookup(key string) *FuncFacts { return fx.funcs[key] }

// HasPackage reports whether the package's facts are already in the store.
func (fx *Facts) HasPackage(path string) bool { return fx.packages[path] }

// FuncKeys returns every summarized function key, sorted.
func (fx *Facts) FuncKeys() []string {
	keys := make([]string, 0, len(fx.funcs))
	for k := range fx.funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// HandledKind returns the key of the Decoder-shaped function handling a
// message-kind constant ("pkgpath.ConstName"), if any.
func (fx *Facts) HandledKind(constKey string) (string, bool) {
	fk, ok := fx.handledKinds[constKey]
	return fk, ok
}

// FuncKey returns the stable cross-package key for a function: pkgpath.Name
// for functions, pkgpath.Recv.Name for methods (pointer receivers
// stripped). Empty when f has no package (builtins).
func FuncKey(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path() + "." + funcKey(f)
}

// keyPkg splits the package path back out of a function key produced by
// FuncKey or written in a //df3:statefp directive.
func keyPkg(key string) string {
	// The package path is everything before the first dot that follows the
	// last slash ("df3/internal/sim.Engine.Snapshot" -> "df3/internal/sim").
	slash := strings.LastIndexByte(key, '/')
	dot := strings.IndexByte(key[slash+1:], '.')
	if dot < 0 {
		return key
	}
	return key[:slash+1+dot]
}

// fieldKey identifies a struct field across packages: pkgpath.Type.Field.
func fieldKey(named *types.Named, field string) string {
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path() + "." + obj.Name() + "." + field
}

// factsJSON is the serialized form written to .vetx files.
type factsJSON struct {
	Packages     []string                       `json:"packages"`
	Funcs        map[string]funcFactsJSON       `json:"funcs,omitempty"`
	Coverage     map[string]map[string][]string `json:"coverage,omitempty"`
	Contracts    map[string]contractJSON        `json:"contracts,omitempty"`
	AtomicFields map[string]string              `json:"atomic_fields,omitempty"`
	PlainFields  map[string]string              `json:"plain_fields,omitempty"`
	HandledKinds map[string]string              `json:"handled_kinds,omitempty"`
}

type funcFactsJSON struct {
	Bits     FactBit `json:"bits"`
	WallVia  string  `json:"wall_via,omitempty"`
	RandVia  string  `json:"rand_via,omitempty"`
	BlockVia string  `json:"block_via,omitempty"`
}

type contractJSON struct {
	Fields []string `json:"fields"`
	Funcs  []string `json:"funcs"`
	Decl   string   `json:"decl"`
}

// sortedKeys returns m's keys in sorted order, so every walk over a store
// map is deterministic — the analyzers must pass their own maporder check.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Encode serializes the store deterministically (JSON object keys sort).
func (fx *Facts) Encode() ([]byte, error) {
	out := factsJSON{
		Funcs:        map[string]funcFactsJSON{},
		Coverage:     fx.coverage,
		Contracts:    map[string]contractJSON{},
		AtomicFields: fx.atomicFields,
		PlainFields:  fx.plainFields,
		HandledKinds: fx.handledKinds,
	}
	for _, p := range sortedKeys(fx.packages) {
		out.Packages = append(out.Packages, p)
	}
	for _, k := range sortedKeys(fx.funcs) {
		ff := fx.funcs[k]
		out.Funcs[k] = funcFactsJSON{Bits: ff.Bits, WallVia: ff.WallVia, RandVia: ff.RandVia, BlockVia: ff.BlockVia}
	}
	for _, k := range sortedKeys(fx.contracts) {
		c := fx.contracts[k]
		out.Contracts[k] = contractJSON{Fields: c.Fields, Funcs: c.Funcs, Decl: c.Decl}
	}
	return json.Marshal(out)
}

// Merge decodes a serialized store (a dependency's .vetx file) into fx.
// Existing entries win, so merge order cannot flip an example site.
func (fx *Facts) Merge(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var in factsJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("analysis: decoding facts: %v", err)
	}
	for _, p := range in.Packages {
		fx.packages[p] = true
	}
	for _, k := range sortedKeys(in.Funcs) {
		if _, ok := fx.funcs[k]; !ok {
			ff := in.Funcs[k]
			fx.funcs[k] = &FuncFacts{Bits: ff.Bits, WallVia: ff.WallVia, RandVia: ff.RandVia, BlockVia: ff.BlockVia}
		}
	}
	for _, sk := range sortedKeys(in.Coverage) {
		m := fx.coverage[sk]
		if m == nil {
			m = map[string][]string{}
			fx.coverage[sk] = m
		}
		cov := in.Coverage[sk]
		for _, fk := range sortedKeys(cov) {
			if _, ok := m[fk]; !ok {
				m[fk] = cov[fk]
			}
		}
	}
	for _, sk := range sortedKeys(in.Contracts) {
		if _, ok := fx.contracts[sk]; !ok {
			c := in.Contracts[sk]
			fx.contracts[sk] = &Contract{Struct: sk, Fields: c.Fields, Funcs: c.Funcs, Decl: c.Decl}
		}
	}
	for _, k := range sortedKeys(in.AtomicFields) {
		if _, ok := fx.atomicFields[k]; !ok {
			fx.atomicFields[k] = in.AtomicFields[k]
		}
	}
	for _, k := range sortedKeys(in.PlainFields) {
		if _, ok := fx.plainFields[k]; !ok {
			fx.plainFields[k] = in.PlainFields[k]
		}
	}
	for _, k := range sortedKeys(in.HandledKinds) {
		if _, ok := fx.handledKinds[k]; !ok {
			fx.handledKinds[k] = in.HandledKinds[k]
		}
	}
	return nil
}

// ComputeFacts summarizes one package into the store: per-function fact
// bits (with fixpoint propagation through the package's internal call
// graph and inheritance from dependency summaries already in the store),
// statefp contracts and coverage, atomic/plain field access sets, and
// handled message kinds. Idempotent per package path.
func ComputeFacts(u Unit, fx *Facts) error {
	if u.Pkg == nil || fx.HasPackage(u.Pkg.Path()) {
		return nil
	}
	readFile := u.ReadFile
	if readFile == nil {
		readFile = os.ReadFile
	}
	ix := newSuppressionIndex()
	for _, f := range u.Files {
		tf := u.Fset.File(f.Pos())
		if tf == nil {
			continue
		}
		src, err := readFile(tf.Name())
		if err != nil {
			return err
		}
		ix.addFile(tf, f, tf.Name(), src)
	}
	computeFacts(u, ix, fx)
	return nil
}

// callRef is one static call out of a function body, with the suppression
// directives covering its line (a suppressed callsite is a sanctioned
// boundary: no taint crosses it).
type callRef struct {
	key          string
	posn         token.Position
	allowDetrand bool
	allowLocked  bool
}

// fnInfo is the per-function scratch state of the fixpoint.
type fnInfo struct {
	key   string
	decl  *ast.FuncDecl
	facts *FuncFacts
	calls []callRef
}

// computeFacts does the real work once the suppression index exists.
func computeFacts(u Unit, ix *suppressionIndex, fx *Facts) {
	pass := &Pass{Fset: u.Fset, Files: u.Files, Pkg: u.Pkg, TypesInfo: u.Info}
	fx.packages[u.Pkg.Path()] = true

	// Contracts first: coverage below needs the ones declared here.
	collectContracts(pass, fx)

	var fns []*fnInfo
	for _, file := range u.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := u.Info.Defs[fd.Name].(*types.Func)
			key := FuncKey(obj)
			if key == "" {
				continue
			}
			fi := &fnInfo{key: key, decl: fd, facts: &FuncFacts{}}
			scanRoots(pass, ix, fi)
			fns = append(fns, fi)
			fx.funcs[key] = fi.facts
		}
	}

	// Fixpoint: inherit bits through unsuppressed callsites until stable.
	// Cross-package callees are immutable during this loop; local ones
	// converge in at most len(fns) rounds.
	for changed := true; changed; {
		changed = false
		for _, fi := range fns {
			for _, cr := range fi.calls {
				callee := fx.funcs[cr.key]
				if callee == nil {
					continue
				}
				for _, fn := range factNames {
					if fn.bit == FactLocks {
						continue // lock acquisition is not inherited: the callee releases it
					}
					if !callee.Has(fn.bit) || fi.facts.Has(fn.bit) {
						continue
					}
					if (fn.bit == FactWallClock || fn.bit == FactMathRand) && cr.allowDetrand {
						continue
					}
					if fn.bit == FactBlocks && cr.allowLocked {
						continue
					}
					fi.facts.Bits |= fn.bit
					fi.facts.setVia(fn.bit, shortKey(cr.key)+" → "+callee.via(fn.bit))
					changed = true
				}
			}
		}
	}

	for _, fi := range fns {
		collectCoverage(pass, fx, fi)
	}
	collectAtomics(pass, fx)
	collectKinds(pass, fx)
}

// scanRoots records fi's direct fact roots and outgoing calls. Function
// literals are skipped (they run on their own goroutine's schedule), as
// are `go` statements (the spawned call does not block or taint the
// spawner's own execution path — the literal's body is summarized when the
// callee itself is).
func scanRoots(pass *Pass, ix *suppressionIndex, fi *fnInfo) {
	commOps := selectCommOps(fi.decl.Body)
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			return false
		case *ast.SendStmt:
			if !commOps[n] {
				blockRoot(pass, ix, fi, n.Arrow, "channel send")
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !commOps[n] {
				blockRoot(pass, ix, fi, n.OpPos, "channel receive")
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				blockRoot(pass, ix, fi, n.Pos(), "select without default")
			}
		case *ast.RangeStmt:
			if t := pass.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					blockRoot(pass, ix, fi, n.Pos(), "range over channel")
				}
			}
		case *ast.CallExpr:
			scanCall(pass, ix, fi, n)
		}
		return true
	})
}

// selectCommOps collects the channel operations that are a select's own
// comm arms. They are not independent blocking roots: the select blocks
// (or not, with a default case) as a whole, and is judged as one root.
func selectCommOps(body ast.Node) map[ast.Node]bool {
	ops := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, cc := range sel.Body.List {
			clause, ok := cc.(*ast.CommClause)
			if !ok || clause.Comm == nil {
				continue
			}
			switch comm := clause.Comm.(type) {
			case *ast.SendStmt:
				ops[comm] = true
			case *ast.ExprStmt:
				if ue, ok := ast.Unparen(comm.X).(*ast.UnaryExpr); ok {
					ops[ue] = true
				}
			case *ast.AssignStmt:
				if len(comm.Rhs) == 1 {
					if ue, ok := ast.Unparen(comm.Rhs[0]).(*ast.UnaryExpr); ok {
						ops[ue] = true
					}
				}
			}
		}
		return true
	})
	return ops
}

// blockRoot sets FactBlocks unless the site carries //df3:allow(lockedblock).
func blockRoot(pass *Pass, ix *suppressionIndex, fi *fnInfo, pos token.Pos, what string) {
	posn := pass.Fset.Position(pos)
	if ix.suppressed(LockedblockAnalyzer.Name, posn) {
		return
	}
	if !fi.facts.Has(FactBlocks) {
		fi.facts.Bits |= FactBlocks
		fi.facts.BlockVia = fmt.Sprintf("%s at %s", what, shortPos(posn))
	}
}

// scanCall classifies one call: a detrand root, a blocking root, a lock
// acquisition, or an outgoing edge to another summarized function.
func scanCall(pass *Pass, ix *suppressionIndex, fi *fnInfo, call *ast.CallExpr) {
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	posn := pass.Fset.Position(call.Pos())
	pkgPath := fn.Pkg().Path()

	switch pkgPath {
	case "time":
		if sigOf(fn).Recv() == nil && detrandBannedFuncs[fn.Name()] &&
			!ix.suppressed(DetrandAnalyzer.Name, posn) && !fi.facts.Has(FactWallClock) {
			fi.facts.Bits |= FactWallClock
			fi.facts.WallVia = fmt.Sprintf("time.%s at %s", fn.Name(), shortPos(posn))
		}
	case "math/rand", "math/rand/v2", "crypto/rand":
		if !ix.suppressed(DetrandAnalyzer.Name, posn) && !fi.facts.Has(FactMathRand) {
			fi.facts.Bits |= FactMathRand
			fi.facts.RandVia = fmt.Sprintf("%s.%s at %s", pkgPath, fn.Name(), shortPos(posn))
		}
	case "sync":
		if recv, isLock, _ := mutexOp(pass, call); recv != "" && isLock {
			fi.facts.Bits |= FactLocks
		}
	}
	if byName, ok := lockedBlockingFuncs[pkgPath]; ok {
		if why, ok := byName[funcKey(fn)]; ok && !ix.suppressed(LockedblockAnalyzer.Name, posn) && !fi.facts.Has(FactBlocks) {
			fi.facts.Bits |= FactBlocks
			fi.facts.BlockVia = fmt.Sprintf("%s at %s", why, shortPos(posn))
		}
	}

	fi.calls = append(fi.calls, callRef{
		key:          FuncKey(fn),
		posn:         posn,
		allowDetrand: ix.suppressed(DetrandAnalyzer.Name, posn),
		allowLocked:  ix.suppressed(LockedblockAnalyzer.Name, posn),
	})
}

// shortKey trims the module path prefix from a function key for messages.
func shortKey(key string) string {
	if i := strings.LastIndexByte(key, '/'); i >= 0 {
		return key[i+1:]
	}
	return key
}

// shortPos renders a position with the filename relative to the working
// directory when possible — diagnostics stay stable across checkouts.
func shortPos(posn token.Position) string {
	name := posn.Filename
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
	}
	return fmt.Sprintf("%s:%d", name, posn.Line)
}
