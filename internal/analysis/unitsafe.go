package analysis

import (
	"go/ast"
	"go/types"
)

// UnitsafeAnalyzer guards the dimensional soundness of the physical model.
// The internal/units quantities (Watt, Joule, Celsius, Byte, Hz) are
// distinct named float64 types precisely so the compiler rejects w + j; the
// holes that remain are explicit cross-dimension conversions
// (units.Watt(energy)), same-unit products and ratios whose value is no
// longer in that unit (w1*w2 is watts-squared but still typed Watt), and
// unit values laundered into raw float64 at df3 package boundaries, where
// the receiving signature can no longer say which dimension it expects.
var UnitsafeAnalyzer = &Analyzer{
	Name: "unitsafe",
	Doc:  "forbid cross-dimension units conversions, unit-squared arithmetic and raw-float unit leaks at package boundaries",
	Run:  runUnitsafe,
}

const unitsPkgPath = "df3/internal/units"

// dimensionlessSinks are df3 packages whose float64 parameters are
// dimensionless by design (generic statistics, rendering, tracing): passing
// float64(w) into them is the sanctioned way to record a sample.
var unitsafeDimensionlessSinks = map[string]bool{
	"df3/internal/metrics": true,
	"df3/internal/report":  true,
	"df3/internal/trace":   true,
}

// unitsNamed returns the named units type of t (pointer- and alias-
// stripped), or nil if t is not declared in internal/units.
func unitsNamed(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != unitsPkgPath {
		return nil
	}
	return named
}

func runUnitsafe(pass *Pass) error {
	// The units package itself defines the dimensions and their formatting;
	// its internal float64 juggling is the one sanctioned place.
	if pass.Pkg != nil && pass.Pkg.Path() == unitsPkgPath {
		return nil
	}
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if target, ok := isTypeConversion(pass, n); ok {
				checkUnitConversion(pass, n, target)
				return true
			}
			checkUnitLeak(pass, n)
		case *ast.BinaryExpr:
			checkUnitArithmetic(pass, n)
		}
		return true
	})
	return nil
}

// checkUnitConversion flags U2(x) where x is already a distinct units type:
// the value keeps its magnitude but silently changes dimension.
func checkUnitConversion(pass *Pass, call *ast.CallExpr, target types.Type) {
	dst := unitsNamed(target)
	if dst == nil {
		return
	}
	src := unitsNamed(pass.TypeOf(ast.Unparen(call.Args[0])))
	if src == nil || src.Obj() == dst.Obj() {
		return
	}
	pass.Reportf(call.Pos(),
		"cross-dimension conversion units.%s -> units.%s keeps the magnitude but changes the physical dimension; convert through an explicit physical relation (and float64) instead",
		src.Obj().Name(), dst.Obj().Name())
}

// checkUnitArithmetic flags u*u and u/u on one units type: the result is
// unit-squared (or a dimensionless ratio) but stays typed as the unit.
//
// Two shapes are dimensionally sound and exempt. A constant operand is a
// scalar multiplier — in `16 * units.KB` the literal is typed Byte only
// because Go converts the untyped constant, and `b / units.MB` divides by a
// pure number of bytes. And a conversion from an integer is a count — Go has
// no scalar*unit operator, so `job.Input * units.Byte(len(job.TaskWork))`
// is the only way to scale a quantity by a cardinality.
func checkUnitArithmetic(pass *Pass, bin *ast.BinaryExpr) {
	if bin.Op.String() != "*" && bin.Op.String() != "/" {
		return
	}
	x := unitsNamed(pass.TypeOf(bin.X))
	y := unitsNamed(pass.TypeOf(bin.Y))
	if x == nil || y == nil || x.Obj() != y.Obj() {
		return
	}
	if isScalarOperand(pass, bin.X) || isScalarOperand(pass, bin.Y) {
		return
	}
	what := "squared"
	if bin.Op.String() == "/" {
		what = "a dimensionless ratio"
	}
	pass.Reportf(bin.OpPos,
		"units.%s %s units.%s is %s, not %s: compute it in float64 and only re-wrap a value that is physically a %s",
		x.Obj().Name(), bin.Op, y.Obj().Name(), what, x.Obj().Name(), x.Obj().Name())
}

// isScalarOperand reports whether e acts as a dimensionless scalar in unit
// arithmetic: a constant expression (an untyped literal acquires the unit
// type only by conversion) or an explicit conversion wrapping an integer
// count.
func isScalarOperand(pass *Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
		return true
	}
	if call, ok := e.(*ast.CallExpr); ok {
		if _, isConv := isTypeConversion(pass, call); isConv {
			return IsIntegerKind(pass.TypeOf(ast.Unparen(call.Args[0])))
		}
	}
	return false
}

// checkUnitLeak flags float64(u) appearing directly as an argument to an
// exported function of another df3 package whose parameter is plain
// float64: the dimension is erased exactly where a signature should carry
// it. Dimensionless sink packages (metrics, report, trace) are exempt.
func checkUnitLeak(pass *Pass, call *ast.CallExpr) {
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	calleePkg := fn.Pkg().Path()
	if calleePkg == pass.Pkg.Path() || calleePkg == unitsPkgPath ||
		unitsafeDimensionlessSinks[calleePkg] || !isDF3Pkg(calleePkg) {
		return
	}
	sig := sigOf(fn)
	for i, arg := range call.Args {
		conv, ok := ast.Unparen(arg).(*ast.CallExpr)
		if !ok {
			continue
		}
		target, isConv := isTypeConversion(pass, conv)
		if !isConv || !IsFloatKind(target) || unitsNamed(target) != nil {
			continue
		}
		src := unitsNamed(pass.TypeOf(ast.Unparen(conv.Args[0])))
		if src == nil {
			continue
		}
		if param := paramAt(sig, i); param == nil || unitsNamed(param.Type()) != nil {
			continue
		}
		pass.Reportf(arg.Pos(),
			"units.%s discarded to raw float64 at the %s boundary: let %s.%s take units.%s so the dimension survives the signature",
			src.Obj().Name(), calleePkg, fn.Pkg().Name(), fn.Name(), src.Obj().Name())
	}
}

// paramAt returns the i-th parameter, accounting for variadics.
func paramAt(sig *types.Signature, i int) *types.Var {
	params := sig.Params()
	if params == nil {
		return nil
	}
	if sig.Variadic() && i >= params.Len()-1 {
		return params.At(params.Len() - 1)
	}
	if i >= params.Len() {
		return nil
	}
	return params.At(i)
}

// isDF3Pkg reports whether path is inside this module.
func isDF3Pkg(path string) bool {
	return path == "df3" || len(path) > 4 && path[:4] == "df3/"
}
