package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Directive is one //df3: comment.
//
// Three forms are accepted:
//
//	//df3:allow(<analyzer>) <reason>
//	//df3:unordered-ok <reason>        (shorthand for allow(maporder))
//	//df3:statefp <func> <func> ...    (declaration, on a struct's doc)
//
// The first two are suppressions: on the same line as a finding — or on
// their own line directly above it — they suppress that analyzer's
// findings there. The reason is mandatory: a suppression without one is
// itself a finding (df3directive), and a malformed directive suppresses
// nothing. The statefp form is not a suppression at all: it declares a
// field-coverage contract (see StatefpAnalyzer), naming each function as
// pkgpath.Name or pkgpath.Recv.Name.
type Directive struct {
	File        string
	Line        int
	Col         int // 1-based column of the "//"
	Analyzer    string
	Reason      string
	Standalone  bool   // nothing but whitespace before the comment
	Declaration bool   // statefp contract declaration, not a suppression
	Problem     string // non-empty: why the directive is malformed
	pos         token.Pos
}

// Pos returns the directive's position.
func (d *Directive) Pos() token.Pos { return d.pos }

const directiveMarker = "//df3:"

// ParseDirectives extracts the //df3: directives from one parsed file. As
// with the standard toolchain directives (//go:build, //go:generate), a
// comment is a directive only when its text starts exactly with the marker:
// the marker appearing inside a string literal or in doc-comment prose (as
// in this package's own documentation) is not a directive.
func ParseDirectives(tf *token.File, f *ast.File, src []byte) []*Directive {
	var ds []*Directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, directiveMarker) {
				continue
			}
			posn := tf.Position(c.Slash)
			d := &Directive{
				File: posn.Filename,
				Line: posn.Line,
				Col:  posn.Column,
				pos:  c.Slash,
			}
			lineStart := tf.Offset(tf.LineStart(posn.Line))
			if off := tf.Offset(c.Slash); lineStart <= off && off <= len(src) {
				d.Standalone = strings.TrimSpace(string(src[lineStart:off])) == ""
			}
			parseDirectiveBody(d, strings.TrimSuffix(strings.TrimPrefix(c.Text, directiveMarker), "\r"))
			ds = append(ds, d)
		}
	}
	return ds
}

// parseDirectiveBody fills d from the text after "//df3:".
func parseDirectiveBody(d *Directive, body string) {
	switch {
	case strings.HasPrefix(body, "unordered-ok"):
		d.Analyzer = "maporder"
		d.Reason = strings.TrimSpace(strings.TrimPrefix(body, "unordered-ok"))
	case strings.HasPrefix(body, "statefp"):
		d.Analyzer = "statefp"
		d.Declaration = true
		d.Reason = strings.TrimSpace(strings.TrimPrefix(body, "statefp"))
		if d.Reason == "" {
			d.Problem = "df3:statefp declares no functions: list the encoder, decoder and fingerprint functions as pkgpath.Name or pkgpath.Recv.Name"
		}
		for _, fk := range strings.Fields(d.Reason) {
			if keyPkg(fk) == fk {
				d.Problem = fmt.Sprintf("df3:statefp entry %q is not a function key (want pkgpath.Name or pkgpath.Recv.Name)", fk)
			}
		}
		return
	case strings.HasPrefix(body, "allow("):
		rest := strings.TrimPrefix(body, "allow(")
		close := strings.IndexByte(rest, ')')
		if close < 0 {
			d.Problem = "df3:allow missing closing parenthesis"
			return
		}
		d.Analyzer = strings.TrimSpace(rest[:close])
		d.Reason = strings.TrimSpace(rest[close+1:])
		if d.Analyzer == "" {
			d.Problem = "df3:allow names no analyzer"
			return
		}
	default:
		word := body
		if i := strings.IndexAny(word, " \t("); i >= 0 {
			word = word[:i]
		}
		d.Problem = fmt.Sprintf("unknown df3: directive %q (want allow(<analyzer>) or unordered-ok)", word)
		return
	}
	if d.Reason == "" {
		d.Problem = fmt.Sprintf("suppression of %s without a reason: write //df3:%s <why this is safe>",
			d.Analyzer, exampleForm(d.Analyzer))
	}
}

func exampleForm(analyzer string) string {
	if analyzer == "maporder" {
		return "unordered-ok"
	}
	return "allow(" + analyzer + ")"
}

// suppressionIndex answers "is this diagnostic suppressed?" for one package.
type suppressionIndex struct {
	// byLine maps file:line to the valid directives covering that line.
	byLine map[string][]*Directive
	all    []*Directive
	files  map[string]*token.File
}

func newSuppressionIndex() *suppressionIndex {
	return &suppressionIndex{byLine: map[string][]*Directive{}, files: map[string]*token.File{}}
}

func (ix *suppressionIndex) addFile(tf *token.File, f *ast.File, filename string, src []byte) {
	ix.files[filename] = tf
	for _, d := range ParseDirectives(tf, f, src) {
		ix.all = append(ix.all, d)
		if d.Problem != "" || d.Declaration {
			continue // malformed directives and declarations suppress nothing
		}
		key := fmt.Sprintf("%s:%d", filename, d.Line)
		ix.byLine[key] = append(ix.byLine[key], d)
		if d.Standalone {
			// A directive alone on a line also covers the next line, so it
			// can sit above the statement it annotates.
			next := fmt.Sprintf("%s:%d", filename, d.Line+1)
			ix.byLine[next] = append(ix.byLine[next], d)
		}
	}
}

// suppressed reports whether a diagnostic from analyzer at position is
// covered by a valid directive.
func (ix *suppressionIndex) suppressed(analyzer string, posn token.Position) bool {
	key := fmt.Sprintf("%s:%d", posn.Filename, posn.Line)
	for _, d := range ix.byLine[key] {
		if d.Analyzer == analyzer {
			return true
		}
	}
	return false
}

// DirectiveAnalyzer validates the //df3: directives themselves: malformed
// forms, suppressions without a reason, and directives naming analyzers
// that do not exist are all findings. A directive that fails here also
// suppresses nothing, so the finding it meant to silence fires too.
var DirectiveAnalyzer = &Analyzer{
	Name: "df3directive",
	Doc:  "df3: suppression directives are well-formed, name a real analyzer and carry a reason",
}

func init() {
	// Installed in init: runDirectiveCheck consults Analyzers(), which
	// includes DirectiveAnalyzer itself.
	DirectiveAnalyzer.Run = runDirectiveCheck
}

func runDirectiveCheck(pass *Pass) error {
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	for _, f := range pass.Files {
		tf := pass.Fset.File(f.Pos())
		if tf == nil {
			continue
		}
		src, err := pass.ReadFile(tf.Name())
		if err != nil {
			return err
		}
		for _, d := range ParseDirectives(tf, f, src) {
			switch {
			case d.Problem != "":
				pass.Reportf(d.Pos(), "%s", d.Problem)
			case !known[d.Analyzer]:
				pass.Reportf(d.Pos(), "df3:allow names unknown analyzer %q", d.Analyzer)
			}
		}
	}
	return nil
}
