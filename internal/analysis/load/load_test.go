package load_test

import (
	"testing"

	"df3/internal/analysis/load"
)

// TestLoadModulePackage checks the go-list loader end to end: discovery,
// single-pass type-checking against stdlib deps, and the cache serving a
// second Load without re-checking.
func TestLoadModulePackage(t *testing.T) {
	l := load.NewLoader("")
	pkgs, err := l.Load("df3/internal/units")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Types == nil || p.Info == nil || len(p.Files) == 0 {
		t.Fatalf("package %s not fully loaded: %+v", p.ImportPath, p)
	}
	for _, name := range []string{"Watt", "Joule", "Celsius", "Byte", "Hz"} {
		if p.Types.Scope().Lookup(name) == nil {
			t.Errorf("units.%s not found in type-checked scope", name)
		}
	}

	again, err := l.Load("df3/internal/units")
	if err != nil {
		t.Fatal(err)
	}
	if again[0].Types != p.Types {
		t.Error("second Load did not reuse the cached *types.Package")
	}
}

// TestImportOnDemand resolves a package that was never named by a Load.
func TestImportOnDemand(t *testing.T) {
	l := load.NewLoader("")
	tp, err := l.Import("df3/internal/rng")
	if err != nil {
		t.Fatal(err)
	}
	if tp.Scope().Lookup("Stream") == nil {
		t.Error("rng.Stream not found via on-demand Import")
	}
}
