// Package load type-checks Go packages from source using only the standard
// library, so the df3lint analyzers can run without golang.org/x/tools.
//
// Package discovery shells out to `go list -json -deps`, whose output is a
// depth-first post-order stream: every package appears after all of its
// dependencies, which lets the loader type-check in a single forward pass
// with a map-backed importer. Standard-library dependencies are type-checked
// from $GOROOT source the same way module packages are; the per-package
// ImportMap from `go list` resolves vendored import paths (net → vendor/
// golang.org/x/net/...). CGO is disabled for discovery so every resolved
// file set is pure Go.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"go/version"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sync"
)

// Package is one type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Standard   bool // part of the Go distribution
	DepOnly    bool // reached only as a dependency of the named patterns
	GoFiles    []string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// Errors holds type-checking problems. Standard-library packages are
	// allowed to have them (we only need their exported shape); module
	// packages with errors fail the Load.
	Errors []error
}

// listPackage mirrors the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
	Module     *struct{ GoVersion string }
}

// Loader loads and type-checks packages. It is safe for concurrent use and
// caches every package it has checked, so repeated Load calls (e.g. one per
// analyzer test) share the expensive standard-library work.
type Loader struct {
	// Dir is the directory `go list` runs in (the module root). Empty means
	// the current directory.
	Dir string

	mu   sync.Mutex
	fset *token.FileSet
	pkgs map[string]*Package // by resolved import path
}

// NewLoader returns a loader rooted at dir.
func NewLoader(dir string) *Loader {
	return &Loader{Dir: dir, fset: token.NewFileSet(), pkgs: map[string]*Package{}}
}

// Fset returns the file set all loaded packages share.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load lists the packages matching patterns and type-checks them together
// with their dependencies. It returns only the packages named by the
// patterns (DepOnly == false), in `go list` order.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.load(patterns...)
}

func (l *Loader) load(patterns ...string) ([]*Package, error) {
	listed, err := l.goList(patterns...)
	if err != nil {
		return nil, err
	}
	var named []*Package
	for _, lp := range listed {
		p, err := l.check(lp)
		if err != nil {
			return nil, err
		}
		if !lp.DepOnly {
			named = append(named, p)
		}
	}
	return named, nil
}

// LoadDeps lists the packages matching patterns and type-checks them with
// their dependencies, returning every non-standard package in the `go
// list -deps` stream order — depth-first post-order, each package after
// all of its dependencies. The interprocedural driver walks this slice
// forward, computing facts for DepOnly packages and analyzing the named
// ones, so cross-package summaries always exist before their consumers.
func (l *Loader) LoadDeps(patterns ...string) ([]*Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	listed, err := l.goList(patterns...)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, lp := range listed {
		p, err := l.check(lp)
		if err != nil {
			return nil, err
		}
		if !lp.Standard {
			out = append(out, p)
		}
	}
	return out, nil
}

// goList runs `go list -json -deps` and decodes the package stream.
func (l *Loader) goList(patterns ...string) ([]*listPackage, error) {
	args := append([]string{"list", "-e", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var listed []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", patterns, err)
		}
		if lp.Error != nil && !lp.DepOnly {
			return nil, fmt.Errorf("go list %s: %s", lp.ImportPath, lp.Error.Err)
		}
		listed = append(listed, lp)
	}
	return listed, nil
}

// check type-checks one listed package, reusing the cache.
func (l *Loader) check(lp *listPackage) (*Package, error) {
	if p, ok := l.pkgs[lp.ImportPath]; ok {
		return p, nil
	}
	if lp.ImportPath == "unsafe" {
		p := &Package{ImportPath: "unsafe", Standard: true, DepOnly: lp.DepOnly, Types: types.Unsafe}
		l.pkgs["unsafe"] = p
		return p, nil
	}

	p := &Package{
		ImportPath: lp.ImportPath,
		Dir:        lp.Dir,
		Standard:   lp.Standard,
		DepOnly:    lp.DepOnly,
	}
	for _, f := range lp.GoFiles {
		p.GoFiles = append(p.GoFiles, filepath.Join(lp.Dir, f))
	}
	files, err := ParseFiles(l.fset, p.GoFiles)
	if err != nil {
		return nil, fmt.Errorf("parsing %s: %v", lp.ImportPath, err)
	}
	p.Files = files

	goVersion := version.Lang(runtime.Version())
	if lp.Module != nil && lp.Module.GoVersion != "" {
		goVersion = "go" + lp.Module.GoVersion
	}
	conf := types.Config{
		Importer:    &mapImporter{loader: l, importMap: lp.ImportMap},
		Error:       func(err error) { p.Errors = append(p.Errors, err) },
		GoVersion:   goVersion,
		FakeImportC: true,
		Sizes:       types.SizesFor("gc", runtime.GOARCH),
	}
	p.Info = NewInfo()
	p.Types, _ = conf.Check(lp.ImportPath, l.fset, files, p.Info)
	if len(p.Errors) > 0 && !lp.Standard {
		return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, p.Errors[0])
	}
	l.pkgs[lp.ImportPath] = p
	return p, nil
}

// Import resolves an import path against the already-loaded cache, listing
// and checking the package (plus dependencies) on demand. It implements
// types.Importer so ad-hoc file sets — the analyzer test fixtures — can be
// type-checked against real module and standard-library packages.
func (l *Loader) Import(path string) (*types.Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.importLocked(path)
}

func (l *Loader) importLocked(path string) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p.Types, nil
	}
	listed, err := l.goList(path)
	if err != nil {
		return nil, err
	}
	for _, lp := range listed {
		if _, err := l.check(lp); err != nil {
			return nil, err
		}
	}
	p, ok := l.pkgs[path]
	if !ok {
		return nil, fmt.Errorf("load: import %q: not resolved by go list", path)
	}
	return p.Types, nil
}

// CheckSource type-checks an ad-hoc package — the analyzer test fixtures —
// from in-memory sources, resolving imports against the module and the
// standard library on demand. filenames[i] labels srcs[i] in positions; the
// files are not read from disk. The result is not cached: fixtures may
// reuse an import path across calls.
func (l *Loader) CheckSource(importPath string, filenames []string, srcs [][]byte) (*Package, error) {
	return l.CheckSourceWith(importPath, filenames, srcs, nil)
}

// CheckSourceWith is CheckSource with extra in-memory dependencies: deps
// maps import paths to already-checked packages (earlier sub-packages of
// a multi-package fixture) consulted before the module/standard-library
// cache.
func (l *Loader) CheckSourceWith(importPath string, filenames []string, srcs [][]byte, deps map[string]*types.Package) (*Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	p := &Package{ImportPath: importPath, GoFiles: filenames}
	for i, name := range filenames {
		f, err := parser.ParseFile(l.fset, name, srcs[i], parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		p.Files = append(p.Files, f)
	}
	conf := types.Config{
		Importer:    &mapImporter{loader: l, extra: deps},
		Error:       func(err error) { p.Errors = append(p.Errors, err) },
		GoVersion:   version.Lang(runtime.Version()),
		FakeImportC: true,
		Sizes:       types.SizesFor("gc", runtime.GOARCH),
	}
	p.Info = NewInfo()
	p.Types, _ = conf.Check(importPath, l.fset, p.Files, p.Info)
	if len(p.Errors) > 0 {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, p.Errors[0])
	}
	return p, nil
}

// mapImporter resolves the imports of a single package being checked. The
// path written in source is first translated through the package's
// ImportMap (vendoring), then served from the loader cache — which `go list
// -deps` post-order guarantees is already populated during Load.
type mapImporter struct {
	loader    *Loader
	importMap map[string]string
	extra     map[string]*types.Package // in-memory fixture sub-packages
}

func (m *mapImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.extra[path]; ok {
		return p, nil
	}
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := m.loader.pkgs[path]; ok {
		return p.Types, nil
	}
	// Dependency not in the stream (shouldn't happen for Load; can happen
	// for fixtures importing something new): resolve it on demand. The
	// loader mutex is already held by Load/Import.
	return m.loader.importLocked(path)
}

// ParseFiles parses the given files into fset with comments retained.
func ParseFiles(fset *token.FileSet, paths []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, path := range paths {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}
