// Package analysis implements df3lint: a suite of domain-specific static
// analyzers that enforce the determinism, units and tracing contracts the
// simulator's headline guarantees rest on.
//
// The repo promises that an N-shard federation run is byte-identical to the
// serial one and that the physical couplings (watts, joules, °C) stay
// dimensionally sound. Those properties are protected at runtime by tests,
// but a single stray time.Now, an unsorted map iteration feeding rendered
// output, or a watts-for-joules mixup breaks them silently. The analyzers
// here enforce the contracts at compile time, the way vet and staticcheck
// gate generic bugs:
//
//	detrand     no wall-clock or math/rand randomness in sim-affecting code
//	maporder    no order-dependent work inside range-over-map
//	simtime     no raw float conversions between wall-clock and sim time
//	unitsafe    no cross-dimension units conversions or raw-float leaks
//	spanend     every locally-scoped trace span is ended on all paths
//	lockedblock no blocking operation while holding a mutex
//	wirepair    encode/decode parity for wire frames and shard messages
//	statefp     checkpoint/fingerprint structs keep all fields covered
//	atomicmix   a field accessed atomically anywhere is atomic everywhere
//	df3directive suppression directives are well-formed
//
// The suite is interprocedural: the drivers walk packages in dependency
// (post-)order, computing per-function fact summaries (see facts.go) that
// flow across package boundaries — standalone over `go list -deps`, under
// `go vet -vettool` through the unitchecker .vetx facts files. detrand and
// lockedblock consult the facts to see through wrappers; wirepair, statefp
// and atomicmix are built on them.
//
// The API deliberately mirrors golang.org/x/tools/go/analysis (Analyzer,
// Pass, Diagnostic) so the suite could migrate to the real framework if the
// dependency ever becomes available; it is implemented on the standard
// library alone.
package analysis

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //df3:allow(<name>) suppression directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers a diagnostic. The driver wraps it with suppression
	// handling, so analyzers call it unconditionally.
	Report func(Diagnostic)

	// ReadFile returns the source of a file in the pass (the directive
	// checker re-scans comments from raw source).
	ReadFile func(string) ([]byte, error)

	// Facts is the cross-package store, already holding summaries for this
	// package and for every dependency the driver analyzed before it. Never
	// nil when the pass comes through RunPackage.
	Facts *Facts
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled by the driver
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}

// ObjectOf returns the object denoted by id, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	return p.TypesInfo.ObjectOf(id)
}

// CalleeFunc returns the static callee of call as a *types.Func (method or
// function), or nil for calls through function values, conversions and
// builtins.
func (p *Pass) CalleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := p.ObjectOf(fun).(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := p.ObjectOf(fun.Sel).(*types.Func)
		return f
	}
	return nil
}

// sigOf returns f's signature. (Equivalent to (*types.Func).Signature,
// which the go1.22 language level of this module cannot use directly.)
func sigOf(f *types.Func) *types.Signature {
	sig, _ := f.Type().(*types.Signature)
	return sig
}

// FuncIs reports whether f is the function or method with the given package
// path and full name. For methods name is "Recv.Method" (pointer receivers
// match too), for functions just "Func".
func FuncIs(f *types.Func, pkgPath, name string) bool {
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != pkgPath {
		return false
	}
	if recv := sigOf(f).Recv(); recv != nil {
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return false
		}
		return named.Obj().Name()+"."+f.Name() == name
	}
	return f.Name() == name
}

// NamedType reports whether t (after unaliasing and pointer-stripping) is
// the named type pkgPath.name.
func NamedType(t types.Type, pkgPath, name string) bool {
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// IsIntegerKind reports whether t's underlying kind is an integer
// (signed or unsigned, any width).
func IsIntegerKind(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// IsFloatKind reports whether t's underlying kind is a float.
func IsFloatKind(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// Inspect walks every file in the pass in source order, calling fn as
// ast.Inspect does.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// exprString renders an expression back to source, for matching syntactic
// idioms (mutex receivers, min/max tracking) and for diagnostics.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return ""
	}
	return buf.String()
}
