package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// MaporderAnalyzer guards the second clause of the reproducibility
// contract: Go randomizes map iteration order, so any work inside a
// range-over-map whose effect depends on visit order — appending to a
// slice, rendering output, floating-point accumulation, early exit,
// scheduling events — makes two runs of the same seed diverge.
//
// The analyzer proves a small class of loop bodies order-insensitive
// (integer accumulation, per-key writes into another map, delete, constant
// flag sets, min/max tracking) and flags everything else. Loops that are
// genuinely safe for reasons the checker cannot see carry a
// //df3:unordered-ok <reason> directive; the reason is mandatory.
var MaporderAnalyzer = &Analyzer{
	Name: "maporder",
	Doc:  "forbid order-dependent work inside range-over-map; sort keys first or annotate //df3:unordered-ok",
	Run:  runMaporder,
}

func runMaporder(pass *Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch n := n.(type) {
		case *ast.FuncDecl:
			body = n.Body
		case *ast.FuncLit:
			body = n.Body
		}
		if body == nil {
			return true
		}
		checkMapRanges(pass, body)
		return true
	})
	return nil
}

// checkMapRanges flags order-dependent range-over-map loops lexically
// inside body. Nested function literals are left to their own visit.
func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body {
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		chk := &mapOrderCheck{pass: pass, fnBody: body, rs: rs}
		if id, ok := rs.Key.(*ast.Ident); ok {
			chk.key = pass.ObjectOf(id)
		}
		if id, ok := rs.Value.(*ast.Ident); ok {
			chk.val = pass.ObjectOf(id)
		}
		chk.collectAssigned(rs.Body)
		if node, why := chk.unsafeStmts(rs.Body.List); node != nil {
			pass.Reportf(rs.For,
				"map iteration order is random and this loop is order-dependent (%s at line %d): iterate sorted keys, or annotate //df3:unordered-ok <reason>",
				why, pass.Fset.Position(node.Pos()).Line)
		}
		return true
	})
}

// mapOrderCheck proves (or fails to prove) one loop body order-insensitive.
type mapOrderCheck struct {
	pass   *Pass
	fnBody *ast.BlockStmt // enclosing function body, for sorted-after checks
	rs     *ast.RangeStmt
	key    types.Object // the loop's key variable, if named
	val    types.Object // the loop's value variable, if named
	// assigned is every object written anywhere in the body; a per-key map
	// write whose RHS reads one of these is a running accumulation and
	// therefore order-dependent.
	assigned map[types.Object]bool
	// iterPure marks := temporaries written exactly once from a pure,
	// per-iteration expression; reading them is as safe as reading the
	// loop variables themselves.
	iterPure map[types.Object]bool
}

func (c *mapOrderCheck) collectAssigned(body *ast.BlockStmt) {
	c.assigned = map[types.Object]bool{}
	c.iterPure = map[types.Object]bool{}
	writes := map[types.Object]int{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if obj := c.rootObj(lhs); obj != nil {
					c.assigned[obj] = true
					writes[obj]++
				}
			}
		case *ast.IncDecStmt:
			if obj := c.rootObj(n.X); obj != nil {
				c.assigned[obj] = true
				writes[obj]++
			}
		}
		return true
	})
	// One forward pass admits straight-line chains of pure temporaries.
	ast.Inspect(body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || asg.Tok != token.DEFINE {
			return true
		}
		pure := true
		for _, rhs := range asg.Rhs {
			if !c.pure(rhs) || c.readsAssigned(rhs) != nil {
				pure = false
			}
		}
		if !pure {
			return true
		}
		for _, lhs := range asg.Lhs {
			if obj := c.rootObj(lhs); obj != nil && writes[obj] == 1 {
				c.iterPure[obj] = true
			}
		}
		return true
	})
}

// rootObj returns the object of the base identifier of an lvalue
// (x, x.f, x[i] all root at x).
func (c *mapOrderCheck) rootObj(e ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return c.pass.ObjectOf(v)
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// unsafeStmts returns the first order-dependent statement and a
// description, or nil if every statement is provably order-insensitive.
func (c *mapOrderCheck) unsafeStmts(stmts []ast.Stmt) (ast.Node, string) {
	for _, s := range stmts {
		if n, why := c.unsafeStmt(s); n != nil {
			return n, why
		}
	}
	return nil, ""
}

func (c *mapOrderCheck) unsafeStmt(s ast.Stmt) (ast.Node, string) {
	switch s := s.(type) {
	case *ast.IncDecStmt:
		if IsIntegerKind(c.pass.TypeOf(s.X)) {
			return nil, ""
		}
		return s, "non-integer ++/-- accumulates in visit order"
	case *ast.AssignStmt:
		return c.unsafeAssign(s)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "delete" && c.pass.TypesInfo.Types[call.Fun].IsBuiltin() {
				return nil, ""
			}
		}
		return s, "call with effects runs in visit order"
	case *ast.BlockStmt:
		return c.unsafeStmts(s.List)
	case *ast.IfStmt:
		return c.unsafeIf(s)
	case *ast.BranchStmt:
		if s.Tok == token.CONTINUE {
			return nil, ""
		}
		return s, s.Tok.String() + " exits after an order-dependent prefix of the keys"
	case *ast.ReturnStmt:
		return s, "return exits after an order-dependent prefix of the keys"
	// A nested loop is safe exactly when its own body is; any inner
	// range-over-map is flagged on its own.
	case *ast.RangeStmt:
		if !c.pure(s.X) {
			return s, "loop iterates an impure expression"
		}
		return c.unsafeStmts(s.Body.List)
	case *ast.ForStmt:
		if s.Cond != nil && !c.pure(s.Cond) {
			return s, "loop condition is impure"
		}
		return c.unsafeStmts(s.Body.List)
	case *ast.DeclStmt, *ast.EmptyStmt:
		return nil, ""
	default:
		return s, fmt.Sprintf("%T is not provably order-insensitive", s)
	}
}

func (c *mapOrderCheck) unsafeAssign(s *ast.AssignStmt) (ast.Node, string) {
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		for _, lhs := range s.Lhs {
			if !IsIntegerKind(c.pass.TypeOf(lhs)) {
				if IsFloatKind(c.pass.TypeOf(lhs)) {
					return s, "floating-point accumulation is order-dependent (FP addition is not associative)"
				}
				return s, "+=/-= on a non-integer accumulates in visit order"
			}
		}
		return c.rhsPure(s)
	case token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		// |=, &= and ^= are commutative and associative on integers.
		for _, lhs := range s.Lhs {
			if !IsIntegerKind(c.pass.TypeOf(lhs)) {
				return s, "bitwise accumulate on a non-integer"
			}
		}
		return c.rhsPure(s)
	case token.ASSIGN:
		for i, lhs := range s.Lhs {
			var rhs ast.Expr
			if len(s.Rhs) == len(s.Lhs) {
				rhs = s.Rhs[i]
			} else {
				rhs = s.Rhs[0]
			}
			if n, why := c.unsafePlainAssign(s, lhs, rhs); n != nil {
				return n, why
			}
		}
		return nil, ""
	case token.DEFINE:
		// Per-iteration temporaries are fine as long as computing them has
		// no effects; their later uses are judged where they occur.
		return c.rhsPure(s)
	default:
		return s, s.Tok.String() + " accumulates in visit order"
	}
}

// unsafePlainAssign judges a single lhs = rhs.
func (c *mapOrderCheck) unsafePlainAssign(s *ast.AssignStmt, lhs, rhs ast.Expr) (ast.Node, string) {
	// The collector idiom: `keys = append(keys, k)` builds a permutation of
	// a fixed multiset, which becomes deterministic the moment the slice is
	// sorted — so it is admitted exactly when a sort of that slice follows
	// the loop in the same function.
	if app, ok := c.appendTo(lhs, rhs); ok {
		if c.sortedAfterLoop(app) {
			return nil, ""
		}
		return s, "append collects in visit order and the slice is never sorted afterwards"
	}
	if !c.pure(rhs) {
		return s, "assignment computes an impure value in visit order"
	}
	// Writing a constant: last-write-wins with identical values.
	if tv, ok := c.pass.TypesInfo.Types[rhs]; ok && tv.Value != nil {
		return nil, ""
	}
	// Per-key slot write: m2[k] = f(k, v) hits a distinct slot each
	// iteration, unless the value reads a variable mutated by the loop
	// (a running accumulation in disguise).
	if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
		if id, ok := ast.Unparen(ix.Index).(*ast.Ident); ok && c.key != nil && c.pass.ObjectOf(id) == c.key {
			if obj := c.readsAssigned(rhs); obj != nil {
				return s, fmt.Sprintf("per-key write reads %s, which the loop also mutates", obj.Name())
			}
			return nil, ""
		}
		return s, "indexed write not keyed by the loop key may collide across iterations"
	}
	return s, "last-write-wins assignment keeps whichever key is visited last"
}

// unsafeIf judges an if statement: pure condition, safe branches, with the
// min/max tracking idiom (if v > best { best = v }) admitted explicitly —
// its result is order-independent even though the write is conditional.
func (c *mapOrderCheck) unsafeIf(s *ast.IfStmt) (ast.Node, string) {
	if s.Init != nil {
		if n, why := c.unsafeStmt(s.Init); n != nil {
			return n, why
		}
	}
	if !c.pure(s.Cond) {
		return s, "if condition has effects in visit order"
	}
	if c.isMinMaxTracking(s) {
		return nil, ""
	}
	if n, why := c.unsafeStmts(s.Body.List); n != nil {
		return n, why
	}
	if s.Else != nil {
		return c.unsafeStmt(s.Else)
	}
	return nil, ""
}

// isMinMaxTracking matches `if A < B { B = A }` (any strict/slack
// comparison, either operand order) with no else.
func (c *mapOrderCheck) isMinMaxTracking(s *ast.IfStmt) bool {
	cmp, ok := s.Cond.(*ast.BinaryExpr)
	if !ok || s.Else != nil || len(s.Body.List) != 1 {
		return false
	}
	switch cmp.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
	default:
		return false
	}
	asg, ok := s.Body.List[0].(*ast.AssignStmt)
	if !ok || asg.Tok != token.ASSIGN || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	l, r := exprString(c.pass.Fset, asg.Lhs[0]), exprString(c.pass.Fset, asg.Rhs[0])
	x, y := exprString(c.pass.Fset, cmp.X), exprString(c.pass.Fset, cmp.Y)
	return (l == x && r == y) || (l == y && r == x)
}

// readsAssigned returns a loop-mutated object read by e (pure per-
// iteration temporaries excepted), or nil.
func (c *mapOrderCheck) readsAssigned(e ast.Expr) types.Object {
	var found types.Object
	ast.Inspect(e, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := c.pass.ObjectOf(id); obj != nil && c.assigned[obj] && !c.iterPure[obj] {
				found = obj
				return false
			}
		}
		return true
	})
	return found
}

// rhsPure requires every right-hand side to be effect-free and to read no
// loop-mutated variable: `total += weights[k]` is a fixed multiset sum
// whatever the visit order, but `total += other` where the loop also
// mutates other pairs values with keys order-dependently.
func (c *mapOrderCheck) rhsPure(s *ast.AssignStmt) (ast.Node, string) {
	for _, rhs := range s.Rhs {
		if !c.pure(rhs) {
			return s, "right-hand side has effects in visit order"
		}
		if obj := c.readsAssigned(rhs); obj != nil {
			return s, fmt.Sprintf("accumulation reads %s, which the loop also mutates", obj.Name())
		}
	}
	return nil, ""
}

// appendTo matches `xs = append(xs, pureArgs...)` with xs a plain local
// identifier, returning xs's object.
func (c *mapOrderCheck) appendTo(lhs, rhs ast.Expr) (types.Object, bool) {
	lid, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return nil, false
	}
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return nil, false
	}
	fid, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fid.Name != "append" || !c.pass.TypesInfo.Types[call.Fun].IsBuiltin() {
		return nil, false
	}
	first, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok || c.pass.ObjectOf(first) != c.pass.ObjectOf(lid) {
		return nil, false
	}
	for _, arg := range call.Args[1:] {
		if !c.pure(arg) {
			return nil, false
		}
	}
	return c.pass.ObjectOf(lid), true
}

// sortedAfterLoop reports whether a sort.* or slices.Sort* call mentioning
// obj appears after the range loop in the enclosing function.
func (c *mapOrderCheck) sortedAfterLoop(obj types.Object) bool {
	if obj == nil || c.fnBody == nil {
		return false
	}
	sorted := false
	ast.Inspect(c.fnBody, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < c.rs.End() {
			return true
		}
		fn := c.pass.CalleeFunc(call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		pkg := fn.Pkg().Path()
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && c.pass.ObjectOf(id) == obj {
					sorted = true
				}
				return !sorted
			})
		}
		return true
	})
	return sorted
}

// pure reports whether evaluating e has no side effects and no blocking:
// no calls (conversions and len/cap excepted), receives, or function
// literals.
func (c *mapOrderCheck) pure(e ast.Expr) bool {
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if _, isConv := isTypeConversion(c.pass, n); isConv {
				return true
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if c.pass.TypesInfo.Types[n.Fun].IsBuiltin() && (id.Name == "len" || id.Name == "cap" || id.Name == "min" || id.Name == "max") {
					return true
				}
			}
			pure = false
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pure = false
				return false
			}
		case *ast.FuncLit:
			pure = false
			return false
		}
		return pure
	})
	return pure
}
