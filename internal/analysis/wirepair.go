package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// WirepairAnalyzer enforces encode/decode parity for the wire protocol.
// A frame codec is a pair of package-level functions (E|e)ncodeX /
// (D|d)ecodeX; the analyzer extracts each side's primitive-operation
// sequence (u32/u64/i64/f64/length-prefixed bytes, length-prefix+loop)
// and reports when the reader's sequence diverges from the writer's —
// the classic silent killer in multi-process protocols, caught before a
// byte crosses a socket. It understands both codec styles in the tree:
// enc/dec helper methods (internal/wire) and raw
// binary.LittleEndian.AppendUintXX / UintXX with math.Float64bits
// (internal/city). Functions whose shape it cannot prove (data-dependent
// branching with unequal arms, dynamic calls) are skipped, never guessed.
//
// It also closes the (kind, payload) loop: a message kind constant passed
// to shard SendMsg must be handled by a case in some Decoder-shaped
// function ((..., uint32, []byte) (func(), error)) — the facts layer
// records handled kinds across packages, so sending a kind no decoder
// resolves is a finding at the send site.
var WirepairAnalyzer = &Analyzer{
	Name: "wirepair",
	Doc:  "wire codec pairs stay symmetric and every sent message kind reaches a Decoder case",
	Run:  runWirepair,
}

// wop is one primitive wire operation in a codec's shape. Length
// prefixes (count reads, uint32(len(x)) writes) normalize to u32: the
// bytes are identical, only intent differs. Loops carry their body.
type wop struct {
	class string // "u32", "u64", "i64", "f64", "bytes", "loop"
	body  []wop  // loop only
}

func (w wop) String() string {
	if w.class != "loop" {
		return w.class
	}
	parts := make([]string, len(w.body))
	for i, b := range w.body {
		parts[i] = b.String()
	}
	return "loop{" + strings.Join(parts, " ") + "}"
}

func wopsString(ops []wop) string {
	parts := make([]string, len(ops))
	for i, o := range ops {
		parts[i] = o.String()
	}
	return strings.Join(parts, " ")
}

func wopsEqual(a, b []wop) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].class != b[i].class || !wopsEqual(a[i].body, b[i].body) {
			return false
		}
	}
	return true
}

func runWirepair(pass *Pass) error {
	decls := map[string]*ast.FuncDecl{} // name -> package-level func
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Body != nil {
				decls[fd.Name.Name] = fd
			}
		}
	}

	// Pair check: for every encoder with a matching decoder, shapes must
	// agree. Same-case counterparts pair first (EncodeX↔DecodeX,
	// encodeX↔decodeX) so an exported codec never pairs against an
	// internal helper with the same suffix.
	names := make([]string, 0, len(decls))
	for name := range decls {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		var suffix string
		var decNames []string
		switch {
		case strings.HasPrefix(name, "Encode") && len(name) > len("Encode"):
			suffix = name[len("Encode"):]
			decNames = []string{"Decode" + suffix, "decode" + suffix}
		case strings.HasPrefix(name, "encode") && len(name) > len("encode"):
			suffix = name[len("encode"):]
			decNames = []string{"decode" + suffix, "Decode" + suffix}
		default:
			continue
		}
		var decFn *ast.FuncDecl
		for _, dn := range decNames {
			if fd, ok := decls[dn]; ok {
				decFn = fd
				break
			}
		}
		if decFn == nil {
			continue
		}
		ex := &wopExtract{pass: pass, decls: decls, active: map[*ast.FuncDecl]bool{}}
		encOps, encOK := ex.stmts(decls[name].Body.List)
		decOps, decOK := ex.stmts(decFn.Body.List)
		if !encOK || !decOK {
			continue // unprovable shape: skip, never guess
		}
		if !wopsEqual(encOps, decOps) {
			pass.Reportf(decFn.Pos(),
				"%s does not mirror %s: decoder reads [%s], encoder writes [%s] — wire drift corrupts every frame after the divergence",
				decFn.Name.Name, name, wopsString(decOps), wopsString(encOps))
		}
	}

	// Kind check: a named constant passed as SendMsg's kind must be handled
	// by some Decoder case, here or in an already-analyzed package.
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := pass.CalleeFunc(call)
		if !FuncIs(fn, "df3/internal/shard", "Kernel.SendMsg") || len(call.Args) != 6 {
			return true
		}
		kindArg := call.Args[4]
		key := constKeyOf(pass, kindArg)
		if key == "" {
			return true // untyped literal or computed kind: out of scope
		}
		if _, ok := pass.Facts.HandledKind(key); !ok {
			pass.Reportf(kindArg.Pos(),
				"message kind %s is sent but no shard.Decoder case handles it: the receiving node will reject the message",
				shortKey(key))
		}
		return true
	})
	return nil
}

// constKeyOf resolves an expression to a named constant's key
// ("pkgpath.Name"), or "".
func constKeyOf(pass *Pass, e ast.Expr) string {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return ""
	}
	c, ok := pass.ObjectOf(id).(*types.Const)
	if !ok || c.Pkg() == nil {
		return ""
	}
	return c.Pkg().Path() + "." + c.Name()
}

// collectKinds records, as facts, every message-kind constant handled by a
// Decoder-shaped function: params containing a uint32 and a []byte,
// results exactly (func(), error).
func collectKinds(pass *Pass, fx *Facts) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil || !isDecoderShape(sigOf(obj)) {
				continue
			}
			key := FuncKey(obj)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sw, ok := n.(*ast.SwitchStmt)
				if !ok {
					return true
				}
				for _, cc := range sw.Body.List {
					clause, ok := cc.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range clause.List {
						if ck := constKeyOf(pass, e); ck != "" {
							if _, seen := fx.handledKinds[ck]; !seen {
								fx.handledKinds[ck] = key
							}
						}
					}
				}
				return true
			})
		}
	}
}

// isDecoderShape reports whether sig matches the shard.Decoder contract.
func isDecoderShape(sig *types.Signature) bool {
	if sig == nil || sig.Results().Len() != 2 {
		return false
	}
	var hasKind, hasPayload bool
	for i := 0; i < sig.Params().Len(); i++ {
		t := sig.Params().At(i).Type()
		if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.Uint32 {
			hasKind = true
		}
		if s, ok := t.Underlying().(*types.Slice); ok {
			if b, ok := s.Elem().Underlying().(*types.Basic); ok && b.Kind() == types.Uint8 {
				hasPayload = true
			}
		}
	}
	if !hasKind || !hasPayload {
		return false
	}
	r0, ok := sig.Results().At(0).Type().Underlying().(*types.Signature)
	if !ok || r0.Params().Len() != 0 || r0.Results().Len() != 0 {
		return false
	}
	named, ok := sig.Results().At(1).Type().(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// wopExtract walks codec bodies extracting primitive-op sequences.
type wopExtract struct {
	pass   *Pass
	decls  map[string]*ast.FuncDecl
	active map[*ast.FuncDecl]bool // recursion guard
}

// stmts extracts the ops of a statement list in execution order. The
// second result is false when the shape cannot be proven.
func (ex *wopExtract) stmts(list []ast.Stmt) ([]wop, bool) {
	var ops []wop
	for _, s := range list {
		got, ok := ex.stmt(s)
		if !ok {
			return nil, false
		}
		ops = append(ops, got...)
	}
	return ops, true
}

func (ex *wopExtract) stmt(s ast.Stmt) ([]wop, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		return ex.expr(s.X)
	case *ast.AssignStmt:
		var ops []wop
		for _, e := range s.Rhs {
			got, ok := ex.expr(e)
			if !ok {
				return nil, false
			}
			ops = append(ops, got...)
		}
		return ops, true
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return nil, true
		}
		var ops []wop
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, e := range vs.Values {
				got, ok := ex.expr(e)
				if !ok {
					return nil, false
				}
				ops = append(ops, got...)
			}
		}
		return ops, true
	case *ast.ReturnStmt:
		var ops []wop
		for _, e := range s.Results {
			got, ok := ex.expr(e)
			if !ok {
				return nil, false
			}
			ops = append(ops, got...)
		}
		return ops, true
	case *ast.IfStmt:
		ops, ok := ex.initCond(s.Init, s.Cond)
		if !ok {
			return nil, false
		}
		thenOps, ok := ex.stmts(s.Body.List)
		if !ok {
			return nil, false
		}
		var elseOps []wop
		if s.Else != nil {
			elseOps, ok = ex.stmt(s.Else)
			if !ok {
				return nil, false
			}
		}
		// Equal arms collapse to one copy — validation guards (`if bad {
		// return err }`) have op-free arms on both sides, and symmetric
		// writers (`if has { e.u32(1) } else { e.u32(0) }`) match exactly.
		// Unequal arms make the shape data-dependent: unprovable.
		if !wopsEqual(thenOps, elseOps) {
			return nil, false
		}
		return append(ops, thenOps...), true
	case *ast.SwitchStmt:
		ops, ok := ex.initCond(s.Init, s.Tag)
		if !ok {
			return nil, false
		}
		var arms [][]wop
		for _, cc := range s.Body.List {
			clause, ok := cc.(*ast.CaseClause)
			if !ok {
				return nil, false
			}
			arm, ok := ex.stmts(clause.Body)
			if !ok {
				return nil, false
			}
			arms = append(arms, arm)
		}
		for _, arm := range arms[1:] {
			if !wopsEqual(arms[0], arm) {
				return nil, false
			}
		}
		if len(arms) > 0 {
			ops = append(ops, arms[0]...)
		}
		return ops, true
	case *ast.ForStmt:
		ops, ok := ex.initCond(s.Init, s.Cond)
		if !ok {
			return nil, false
		}
		body, ok := ex.stmts(s.Body.List)
		if !ok {
			return nil, false
		}
		if len(body) > 0 {
			ops = append(ops, wop{class: "loop", body: body})
		}
		return ops, true
	case *ast.RangeStmt:
		ops, ok := ex.expr(s.X)
		if !ok {
			return nil, false
		}
		body, ok := ex.stmts(s.Body.List)
		if !ok {
			return nil, false
		}
		if len(body) > 0 {
			ops = append(ops, wop{class: "loop", body: body})
		}
		return ops, true
	case *ast.BlockStmt:
		return ex.stmts(s.List)
	case *ast.BranchStmt, *ast.IncDecStmt, *ast.EmptyStmt:
		return nil, true
	default:
		// Unmodeled control flow (select, go, defer, type switch): fine as
		// long as no wire op hides inside it.
		if ex.hasOps(s) {
			return nil, false
		}
		return nil, true
	}
}

func (ex *wopExtract) initCond(init ast.Stmt, cond ast.Expr) ([]wop, bool) {
	var ops []wop
	if init != nil {
		got, ok := ex.stmt(init)
		if !ok {
			return nil, false
		}
		ops = append(ops, got...)
	}
	if cond != nil {
		got, ok := ex.expr(cond)
		if !ok {
			return nil, false
		}
		ops = append(ops, got...)
	}
	return ops, true
}

// expr extracts ops from one expression in evaluation order.
func (ex *wopExtract) expr(e ast.Expr) ([]wop, bool) {
	if e == nil {
		return nil, true
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		return ex.call(e)
	case *ast.ParenExpr:
		return ex.expr(e.X)
	case *ast.UnaryExpr:
		return ex.expr(e.X)
	case *ast.StarExpr:
		return ex.expr(e.X)
	case *ast.BinaryExpr:
		l, ok := ex.expr(e.X)
		if !ok {
			return nil, false
		}
		r, ok := ex.expr(e.Y)
		if !ok {
			return nil, false
		}
		return append(l, r...), true
	case *ast.IndexExpr:
		return ex.exprs(e.X, e.Index)
	case *ast.SliceExpr:
		return ex.exprs(e.X, e.Low, e.High, e.Max)
	case *ast.SelectorExpr:
		return ex.expr(e.X)
	case *ast.KeyValueExpr:
		return ex.expr(e.Value)
	case *ast.CompositeLit:
		var ops []wop
		for _, el := range e.Elts {
			got, ok := ex.expr(el)
			if !ok {
				return nil, false
			}
			ops = append(ops, got...)
		}
		return ops, true
	case *ast.FuncLit:
		// A literal's body runs later, if at all: unprovable when it
		// carries ops.
		if ex.hasOps(e.Body) {
			return nil, false
		}
		return nil, true
	default:
		return nil, true
	}
}

func (ex *wopExtract) exprs(list ...ast.Expr) ([]wop, bool) {
	var ops []wop
	for _, e := range list {
		got, ok := ex.expr(e)
		if !ok {
			return nil, false
		}
		ops = append(ops, got...)
	}
	return ops, true
}

// call classifies one call. Recognized primitives emit an op and consume
// their sub-pattern; local functions and methods inline; everything else
// is transparent (its arguments are still scanned).
func (ex *wopExtract) call(call *ast.CallExpr) ([]wop, bool) {
	// Conversions: T(x) — scan x.
	if _, isConv := isTypeConversion(ex.pass, call); isConv {
		return ex.exprs(call.Args...)
	}
	fn := ex.pass.CalleeFunc(call)
	if fn == nil {
		// Builtin (len, append, make) or dynamic call: scan arguments; a
		// dynamic call that could hide ops has none to find statically.
		return ex.exprs(call.Args...)
	}
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}

	// Raw style: math.Float64frombits(binary.LittleEndian.Uint64(...)) is
	// one f64 read; the inner Uint64 is consumed, not a second op.
	if pkgPath == "math" && fn.Name() == "Float64frombits" && len(call.Args) == 1 {
		return []wop{{class: "f64"}}, true
	}
	if pkgPath == "encoding/binary" && sigOf(fn).Recv() != nil {
		switch fn.Name() {
		case "Uint32":
			return []wop{{class: "u32"}}, true
		case "Uint64":
			return []wop{{class: "u64"}}, true
		case "AppendUint32":
			return []wop{{class: "u32"}}, true
		case "AppendUint64":
			if len(call.Args) == 2 && isFloatBitsCall(ex.pass, call.Args[1]) {
				return []wop{{class: "f64"}}, true
			}
			return []wop{{class: "u64"}}, true
		}
	}

	// Helper-method style: enc/dec primitives by method name.
	if sigOf(fn).Recv() != nil {
		switch fn.Name() {
		case "u32", "count", "len32":
			return []wop{{class: "u32"}}, true
		case "u64":
			if len(call.Args) == 1 && isFloatBitsCall(ex.pass, call.Args[0]) {
				return []wop{{class: "f64"}}, true
			}
			return []wop{{class: "u64"}}, true
		case "i64":
			return []wop{{class: "i64"}}, true
		case "f64":
			return []wop{{class: "f64"}}, true
		case "bytes":
			return []wop{{class: "bytes"}}, true
		}
	}

	// Same-package callee with a body in this package: inline its shape
	// (argument ops first — they evaluate before the call).
	if fn.Pkg() == ex.pass.Pkg {
		if fd := ex.declOf(fn); fd != nil {
			if ex.active[fd] {
				return nil, false // recursive codec: unprovable
			}
			argOps, ok := ex.exprs(call.Args...)
			if !ok {
				return nil, false
			}
			ex.active[fd] = true
			body, ok := ex.stmts(fd.Body.List)
			delete(ex.active, fd)
			if !ok {
				return nil, false
			}
			return append(argOps, body...), true
		}
	}
	// Foreign call (fmt.Errorf, error wrapping, …): transparent.
	return ex.exprs(call.Args...)
}

// declOf finds fn's declaration in the package under analysis.
func (ex *wopExtract) declOf(fn *types.Func) *ast.FuncDecl {
	if fd, ok := ex.decls[fn.Name()]; ok {
		if obj, _ := ex.pass.TypesInfo.Defs[fd.Name].(*types.Func); obj == fn {
			return fd
		}
	}
	// Methods (dec.need, dec.err, …) are not in the package-level map.
	for _, f := range ex.pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, _ := ex.pass.TypesInfo.Defs[fd.Name].(*types.Func); obj == fn {
				return fd
			}
		}
	}
	return nil
}

// hasOps reports whether any recognizable wire op hides under n.
func (ex *wopExtract) hasOps(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		fn := ex.pass.CalleeFunc(call)
		if fn == nil {
			return true
		}
		if sigOf(fn).Recv() != nil {
			switch fn.Name() {
			case "u32", "u64", "i64", "f64", "bytes", "count", "len32",
				"Uint32", "Uint64", "AppendUint32", "AppendUint64":
				found = true
			}
		}
		return !found
	})
	return found
}

func isFloatBitsCall(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := pass.CalleeFunc(call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "math" && fn.Name() == "Float64bits"
}
